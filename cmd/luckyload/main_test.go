package main

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"luckystore"
)

func decodeReport(t *testing.T, stdout *bytes.Buffer) sloReport {
	t.Helper()
	var rep sloReport
	if err := json.NewDecoder(stdout).Decode(&rep); err != nil {
		t.Fatalf("decode artifact: %v", err)
	}
	return rep
}

// TestSelfhostClosedLoop runs the harness against an in-process KV
// deployment and checks the calm row carries real traffic numbers.
func TestSelfhostClosedLoop(t *testing.T) {
	var stdout bytes.Buffer
	code := run([]string{"-deploy", "kv", "-duration", "400ms", "-keys", "4", "-seed", "3"}, &stdout)
	if code != 0 {
		t.Fatalf("exit %d, output %s", code, stdout.String())
	}
	rep := decodeReport(t, &stdout)
	if rep.Mode != "selfhost" || rep.Loop != "closed" || len(rep.Rows) != 1 {
		t.Fatalf("report shape: %+v", rep)
	}
	row := rep.Rows[0]
	if row.Phase != "calm" || !row.Clean || row.Result.Ops == 0 {
		t.Fatalf("calm row: %+v", row)
	}
	if row.Result.Throughput <= 0 || row.Result.Latency.P99 <= 0 {
		t.Fatalf("missing SLO numbers: %+v", row.Result)
	}
}

// TestExternalOpenLoopWithScrape spins real TCP servers, drives the
// harness in open-loop mode through OpenKVTCP, and asserts the mid-run
// scrape of its own admin plane sees nonzero client-side metrics.
func TestExternalOpenLoopWithScrape(t *testing.T) {
	cfg := luckystore.Config{T: 1, B: 0, NumReaders: 2,
		RoundTimeout: 100 * time.Millisecond, OpTimeout: 20 * time.Second}
	var addrs []string
	for i := 0; i < cfg.S(); i++ {
		srv, err := luckystore.ListenTCPKV(i, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}

	var stdout bytes.Buffer
	code := run([]string{
		"-addrs", addrs[0] + "," + addrs[1] + "," + addrs[2],
		"-t", "1", "-b", "0",
		"-loop", "open", "-rate", "500", "-duration", "600ms", "-keys", "4",
		"-admin", "127.0.0.1:0",
	}, &stdout)
	if code != 0 {
		t.Fatalf("exit %d, output %s", code, stdout.String())
	}
	rep := decodeReport(t, &stdout)
	if rep.Mode != "external" || rep.Loop != "open" {
		t.Fatalf("report shape: %+v", rep)
	}
	row := rep.Rows[0]
	if row.Result.Ops == 0 || !row.Clean {
		t.Fatalf("calm row: %+v", row)
	}
	if len(row.Scrapes) != 1 {
		t.Fatalf("expected the self-admin scrape, got %+v", row.Scrapes)
	}
	if s := row.Scrapes[0]; !s.Healthz || !s.MetricsNonzero {
		t.Fatalf("scrape assertion failed: %+v", s)
	}
}

// TestChaosOverlayRow checks a chaos scenario adds a second summarized
// row through the shared reporting path.
func TestChaosOverlayRow(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos overlay needs a real schedule window")
	}
	var stdout bytes.Buffer
	code := run([]string{
		"-deploy", "kv", "-duration", "400ms", "-keys", "4",
		"-chaos", "crash-restarts",
	}, &stdout)
	if code != 0 {
		t.Fatalf("exit %d, output %s", code, stdout.String())
	}
	rep := decodeReport(t, &stdout)
	if len(rep.Rows) != 2 {
		t.Fatalf("expected calm + chaos rows: %+v", rep.Rows)
	}
	ch := rep.Rows[1]
	if ch.Phase != "chaos:crash-restarts" || ch.Result.Ops == 0 {
		t.Fatalf("chaos row: %+v", ch)
	}
}
