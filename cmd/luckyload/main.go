// Command luckyload is the sustained-load SLO harness: it drives
// traffic against a lucky deployment, optionally scrapes admin planes
// mid-run to assert the telemetry is live, optionally overlays a seeded
// chaos schedule, and emits a BENCH_slo.json artifact with throughput,
// latency percentiles (p50/p95/p99/p99.9), the fast-path fraction, and
// rounds per operation — every row summarized through the same
// workload.Summarize path the chaos engine reports with, so calm and
// fault-injected numbers are directly comparable.
//
// Two ways to reach a system:
//
//	# external: an already-running cluster (e.g. luckyd -kv -admin ...)
//	luckyload -addrs h1:7000,h2:7000,h3:7000 -t 1 -b 0 \
//	          -duration 10s -scrape http://h1:9100 -out BENCH_slo.json
//
//	# selfhost: spin the deployment up in-process (chaos adapters)
//	luckyload -deploy tcpkv -duration 5s -chaos rolling-partitions
//
// The generator is closed-loop by default (each actor paces its own
// operations, workload.Continuous); -loop open switches to a fixed
// offered rate with shed accounting (workload.OpenLoop), the
// coordinated-omission-free shape an SLO wants.
//
// Exit status: 0 on success; 1 when traffic errored, a -scrape
// assertion failed, or a chaos row recorded consistency violations.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"luckystore"
	"luckystore/internal/admin"
	"luckystore/internal/chaos"
	"luckystore/internal/checker"
	"luckystore/internal/workload"
)

// sloReport is the BENCH_slo.json artifact.
type sloReport struct {
	Bench      string   `json:"bench"`
	Mode       string   `json:"mode"` // "external" | "selfhost"
	Deploy     string   `json:"deploy,omitempty"`
	Loop       string   `json:"loop"` // "closed" | "open"
	Seed       int64    `json:"seed"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Rows       []sloRow `json:"rows"`
}

// sloRow is one phase: calm traffic, or traffic under a named chaos
// scenario.
type sloRow struct {
	Phase      string          `json:"phase"`
	Result     workload.Result `json:"result"`
	OpError    string          `json:"op_error,omitempty"`
	Violations []string        `json:"violations,omitempty"`
	Clean      bool            `json:"clean"`
	Scrapes    []scrapeResult  `json:"scrapes,omitempty"`
}

// scrapeResult is one admin plane probed mid-run.
type scrapeResult struct {
	URL            string `json:"url"`
	Healthz        bool   `json:"healthz"`
	MetricsNonzero bool   `json:"metrics_nonzero"`
	Err            string `json:"err,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("luckyload", flag.ContinueOnError)
	var (
		addrs     = fs.String("addrs", "", "comma-separated server addresses of a running cluster; empty self-hosts -deploy in-process")
		tFlag     = fs.Int("t", 1, "crash-fault budget t of the external cluster (with -addrs)")
		bFlag     = fs.Int("b", 0, "Byzantine budget b of the external cluster (with -addrs)")
		readers   = fs.Int("readers", 2, "reader clients")
		writers   = fs.Int("writers", 1, "contending writer identities (selfhost only)")
		deploy    = fs.String("deploy", "tcpkv", "selfhost deployment kind: "+strings.Join(chaos.Kinds(), "|"))
		duration  = fs.Duration("duration", 5*time.Second, "length of each traffic phase")
		seed      = fs.Int64("seed", 1, "seed for key choices and chaos schedules")
		keys      = fs.Int("keys", 16, "distinct keys to exercise")
		hot       = fs.Float64("hot", 0, "probability a read targets the hottest key")
		valsize   = fs.Int("valsize", 0, "padding size of written values")
		loop      = fs.String("loop", "closed", "generator shape: closed (self-paced actors) | open (fixed offered rate)")
		rate      = fs.Float64("rate", 2000, "offered ops/sec in -loop open")
		writeFrac = fs.Float64("writefrac", 0.5, "write fraction of arrivals in -loop open")
		writePace = fs.Duration("writepace", 0, "per-writer pace in -loop closed (0: workload default)")
		readPace  = fs.Duration("readpace", 0, "per-reader pace in -loop closed (0: workload default)")
		chaosList = fs.String("chaos", "", "comma-separated chaos scenarios to overlay as extra phases (selfhost only): "+strings.Join(chaos.Names(), "|"))
		scrape    = fs.String("scrape", "", "comma-separated admin base URLs to probe mid-run (/healthz and /metrics asserted)")
		adminAddr = fs.String("admin", "", "host an admin plane here exposing this harness's client-side registry")
		out       = fs.String("out", "", "write the JSON artifact to this path (empty: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *loop != "closed" && *loop != "open" {
		fmt.Fprintln(os.Stderr, "luckyload: -loop must be closed or open")
		return 2
	}
	if *keys < 1 {
		*keys = 1
	}
	keyList := make([]string, *keys)
	for i := range keyList {
		keyList[i] = fmt.Sprintf("key-%03d", i)
	}
	scrapeURLs := splitList(*scrape)

	rep := &sloReport{
		Bench: "slo", Loop: *loop, Seed: *seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	// Build the system under test.
	var (
		driver workload.Driver
		reg    *luckystore.MetricsRegistry
	)
	if *addrs != "" {
		rep.Mode = "external"
		list := splitList(*addrs)
		cfg := luckystore.Config{
			T: *tFlag, B: *bFlag, NumReaders: *readers,
			RoundTimeout: 100 * time.Millisecond, OpTimeout: 30 * time.Second,
		}
		if len(list) != cfg.S() {
			fmt.Fprintf(os.Stderr, "luckyload: %d addresses for S=2t+b+1=%d\n", len(list), cfg.S())
			return 2
		}
		reg = luckystore.NewMetricsRegistry()
		store, err := luckystore.OpenKVTCP(cfg, luckystore.ServerAddrs(list), luckystore.WithKVMetrics(reg))
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyload: %v\n", err)
			return 1
		}
		defer store.Close()
		driver = workload.KVDriver{S: store, Readers: *readers}
		if *chaosList != "" {
			fmt.Fprintln(os.Stderr, "luckyload: -chaos needs a selfhost deployment (drop -addrs)")
			return 2
		}
	} else {
		rep.Mode, rep.Deploy = "selfhost", *deploy
		d, err := chaos.Open(*deploy, *readers, *writers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyload: %v\n", err)
			return 1
		}
		defer d.Close()
		driver = d
	}

	if *adminAddr != "" {
		adm, err := admin.Listen(*adminAddr, admin.Options{Registry: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyload: %v\n", err)
			return 1
		}
		defer adm.Close()
		log.Printf("luckyload: admin plane on http://%s", adm.Addr())
		if reg != nil {
			scrapeURLs = append(scrapeURLs, "http://"+adm.Addr())
		}
	}

	failed := false

	// Calm phase: sustained traffic on the healthy system, scraped at
	// the midpoint so the asserted telemetry reflects live load.
	calm, err := runCalm(driver, calmParams{
		keys: keyList, seed: *seed, hot: *hot, valsize: *valsize,
		loop: *loop, rate: *rate, writeFrac: *writeFrac,
		writePace: *writePace, readPace: *readPace, writers: *writers,
		duration: *duration, scrapeURLs: scrapeURLs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "luckyload: calm phase: %v\n", err)
		return 1
	}
	if calm.OpError != "" || !scrapesOK(calm.Scrapes) {
		failed = true
	}
	rep.Rows = append(rep.Rows, calm)
	log.Printf("luckyload: calm: %d ops, %.0f ops/s, fast %.3f, p99 %s",
		calm.Result.Ops, calm.Result.Throughput, calm.Result.FastFrac, calm.Result.Latency.P99)

	// Chaos phases: the engine owns traffic and fault timeline; each
	// row reuses its shared-path summary. Every row gets a fresh fleet:
	// the per-phase checker history must account for every stamp a read
	// can return, and a deployment that already served an earlier phase
	// carries installed stamps the new history cannot bind (a read
	// returning one would be flagged as a no-creation violation).
	for _, name := range splitList(*chaosList) {
		sc, err := chaos.Lookup(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyload: %v\n", err)
			return 2
		}
		cdep, err := chaos.Open(*deploy, *readers, *writers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyload: chaos %s: %v\n", name, err)
			return 1
		}
		scrapeDone := scrapeAt(*duration/2, scrapeURLs)
		crep, err := chaos.Run(cdep, sc, *seed, *duration, chaos.Options{})
		cdep.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyload: chaos %s: %v\n", name, err)
			return 1
		}
		row := sloRow{
			Phase:      "chaos:" + name,
			Result:     crep.Traffic,
			OpError:    crep.OpError,
			Violations: crep.Violations,
			Clean:      crep.Clean,
			Scrapes:    <-scrapeDone,
		}
		if len(row.Violations) > 0 || !scrapesOK(row.Scrapes) {
			failed = true
		}
		rep.Rows = append(rep.Rows, row)
		log.Printf("luckyload: %s: %d ops, fast %.3f, p99 %s, clean=%v",
			row.Phase, row.Result.Ops, row.Result.FastFrac, row.Result.Latency.P99, row.Clean)
	}

	// Artifact.
	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyload: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "luckyload: %v\n", err)
		return 1
	}
	if failed {
		return 1
	}
	return 0
}

// calmParams bundles the knobs of the calm traffic phase.
type calmParams struct {
	keys                []string
	seed                int64
	hot                 float64
	valsize             int
	loop                string
	rate, writeFrac     float64
	writePace, readPace time.Duration
	writers             int
	duration            time.Duration
	scrapeURLs          []string
}

// runCalm drives one traffic phase and scrapes the admin planes at its
// midpoint. The returned row carries op errors in-band; the error
// return is for generator misconfiguration only.
func runCalm(d workload.Driver, p calmParams) (sloRow, error) {
	ctx, cancel := context.WithTimeout(context.Background(), p.duration)
	defer cancel()
	scrapeDone := scrapeAt(p.duration/2, p.scrapeURLs)

	start := time.Now()
	var (
		rec *checker.Recorder
		err error
	)
	if p.loop == "open" {
		gen := workload.OpenLoop{
			Keys: p.keys, Rate: p.rate, WriteFrac: p.writeFrac,
			ValueSize: p.valsize, Seed: p.seed, HotFrac: p.hot,
		}
		rec, err = gen.Run(ctx, d)
	} else {
		gen := workload.Continuous{
			Keys: p.keys, Writers: p.writers, ValueSize: p.valsize,
			Seed: p.seed, HotFrac: p.hot,
			WritePace: p.writePace, ReadPace: p.readPace,
		}
		rec, err = gen.Run(ctx, d)
	}
	elapsed := time.Since(start)
	if rec == nil {
		return sloRow{}, err
	}
	row := sloRow{
		Phase:   "calm",
		Result:  workload.Summarize(rec.Ops(), elapsed),
		Scrapes: <-scrapeDone,
	}
	if err != nil {
		row.OpError = err.Error()
	}
	row.Clean = err == nil
	return row, nil
}

// scrapeAt probes the admin URLs after the delay and delivers the
// results; with no URLs it delivers nil immediately. It never blocks
// the traffic being measured.
func scrapeAt(delay time.Duration, urls []string) <-chan []scrapeResult {
	done := make(chan []scrapeResult, 1)
	if len(urls) == 0 {
		done <- nil
		return done
	}
	go func() {
		time.Sleep(delay)
		out := make([]scrapeResult, 0, len(urls))
		for _, u := range urls {
			out = append(out, scrapeOne(u))
		}
		done <- out
	}()
	return done
}

// scrapeOne asserts one admin plane is alive under load: /healthz
// answers 200 and /metrics exposes at least one nonzero lucky_ sample.
func scrapeOne(base string) scrapeResult {
	res := scrapeResult{URL: base}
	cl := &http.Client{Timeout: 5 * time.Second}

	hr, err := cl.Get(base + "/healthz")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	res.Healthz = hr.StatusCode == http.StatusOK

	mr, err := cl.Get(base + "/metrics")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	body, err := io.ReadAll(mr.Body)
	mr.Body.Close()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if mr.StatusCode == http.StatusOK {
		res.MetricsNonzero = hasNonzeroLuckySample(string(body))
	}
	return res
}

// hasNonzeroLuckySample reports whether any lucky_-prefixed sample line
// carries a value other than 0 — the cheap "telemetry is actually
// counting" assertion.
func hasNonzeroLuckySample(body string) bool {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "lucky_") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		switch v := strings.TrimSpace(line[i+1:]); v {
		case "", "0", "0.0", "+Inf", "-Inf", "NaN":
		default:
			return true
		}
	}
	return false
}

// scrapesOK reports whether every scrape passed both assertions.
func scrapesOK(scrapes []scrapeResult) bool {
	for _, s := range scrapes {
		if !s.Healthz || !s.MetricsNonzero || s.Err != "" {
			return false
		}
	}
	return true
}

// splitList splits a comma list, dropping empty elements.
func splitList(v string) []string {
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}
