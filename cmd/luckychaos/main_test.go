package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the CLI with stdout/stderr redirected to temp files and
// returns exit code plus both streams.
func capture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, outF, errF)
	out, _ := os.ReadFile(outF.Name())
	errb, _ := os.ReadFile(errF.Name())
	outF.Close()
	errF.Close()
	return code, string(out), string(errb)
}

func TestListScenarios(t *testing.T) {
	code, out, _ := capture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"rolling-partition", "flapping-link", "crash-restarts",
		"liars-and-partition", "reader-storm-drop", "split-brain-heal"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing %q:\n%s", name, out)
		}
	}
}

func TestUnknownScenarioAndDeploy(t *testing.T) {
	if code, _, _ := capture(t, "-scenario", "nope"); code != 2 {
		t.Errorf("unknown scenario: exit %d, want 2", code)
	}
	if code, _, errOut := capture(t, "-scenario", "crash-restarts", "-deploy", "nope", "-duration", "250ms"); code != 2 {
		t.Errorf("unknown deploy: exit %d, want 2 (%s)", code, errOut)
	}
}

func TestRunSingleScenarioCleanWithHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	dir := t.TempDir()
	code, out, errOut := capture(t,
		"-scenario", "crash-restarts", "-deploy", "core",
		"-seed", "7", "-duration", "400ms", "-history", dir)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "clean") {
		t.Errorf("summary missing clean status:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "crash-restarts-core-seed7.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Clean   bool `json:"clean"`
		Ops     int  `json:"ops"`
		History []struct {
			Kind string `json:"kind"`
		} `json:"history"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("history artifact not valid JSON: %v", err)
	}
	if !rep.Clean || rep.Ops == 0 || len(rep.History) == 0 {
		t.Errorf("artifact clean=%v ops=%d history=%d", rep.Clean, rep.Ops, len(rep.History))
	}
}
