// Command luckychaos runs named chaos scenarios against a freshly
// built deployment and verifies the recorded history with the checker.
//
// Usage:
//
//	luckychaos -list
//	luckychaos -scenario rolling-partition -deploy core -seed 7 -duration 2s
//	luckychaos -scenario all -deploy all -seed 1 -duration 800ms -history out/
//
// Every schedule is a pure function of (seed, deployment shape,
// duration): rerunning with the same flags replays the exact fault
// sequence, which is how a CI chaos-smoke failure is reproduced
// locally — take the seed from the failure artifact and run
// `luckychaos -scenario <name> -deploy <kind> -seed <s>`.
//
// Exit status: 0 when every run is checker-clean, 1 when any run saw a
// consistency violation or operation error, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"luckystore/internal/chaos"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("luckychaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario = fs.String("scenario", "all", "scenario name, or \"all\"")
		deploy   = fs.String("deploy", "core", "deployment kind (core|kv|tcpkv|router|tcprouter|regular), or \"all\"")
		seed     = fs.Int64("seed", 1, "schedule seed; same seed replays the same fault sequence")
		duration = fs.Duration("duration", 2*time.Second, "fault window per run (plus settle time)")
		readers  = fs.Int("readers", 3, "reader clients")
		history  = fs.String("history", "", "directory to write per-run JSON reports with full histories (for failure artifacts)")
		verbose  = fs.Bool("v", false, "log every schedule event as it is applied")
		list     = fs.Bool("list", false, "list scenarios and deployments, then exit")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *list {
		fmt.Fprintln(stdout, "scenarios:")
		for _, sc := range chaos.Scenarios {
			fmt.Fprintf(stdout, "  %-22s %s\n", sc.Name, sc.Description)
		}
		fmt.Fprintf(stdout, "deployments: %v\n", chaos.Kinds())
		return 0
	}

	var scenarios []chaos.Scenario
	if *scenario == "all" {
		scenarios = chaos.Scenarios
	} else {
		sc, err := chaos.Lookup(*scenario)
		if err != nil {
			fmt.Fprintf(stderr, "luckychaos: %v\n", err)
			return 2
		}
		scenarios = []chaos.Scenario{sc}
	}
	var kinds []string
	if *deploy == "all" {
		kinds = chaos.Kinds()
	} else {
		known := false
		for _, k := range chaos.Kinds() {
			if k == *deploy {
				known = true
			}
		}
		if !known {
			fmt.Fprintf(stderr, "luckychaos: unknown deployment %q (core|kv|tcpkv|router|tcprouter|regular|all)\n", *deploy)
			return 2
		}
		kinds = []string{*deploy}
	}
	if *history != "" {
		if err := os.MkdirAll(*history, 0o755); err != nil {
			fmt.Fprintf(stderr, "luckychaos: %v\n", err)
			return 2
		}
	}

	failures := 0
	for _, kind := range kinds {
		for _, sc := range scenarios {
			if code := runOne(stdout, stderr, kind, sc, *seed, *duration, *readers, *history, *verbose); code != 0 {
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "luckychaos: %d run(s) failed\n", failures)
		return 1
	}
	return 0
}

func runOne(stdout, stderr *os.File, kind string, sc chaos.Scenario, seed int64, duration time.Duration, readers int, historyDir string, verbose bool) int {
	d, err := chaos.Open(kind, readers, max(1, sc.Writers))
	if err != nil {
		fmt.Fprintf(stderr, "luckychaos: open %s: %v\n", kind, err)
		return 2
	}
	defer d.Close()

	opts := chaos.Options{}
	if verbose {
		opts.Log = stdout
	}
	rep, err := chaos.Run(d, sc, seed, duration, opts)
	if err != nil {
		fmt.Fprintf(stderr, "luckychaos: run %s/%s: %v\n", kind, sc.Name, err)
		return 1
	}

	status := "clean"
	if !rep.Clean {
		status = "FAILED"
	}
	fmt.Fprintf(stdout, "%-8s %-22s seed=%-4d ops=%-6d writes=%-5d reads=%-6d fast=%.2f %s\n",
		kind, sc.Name, seed, rep.Ops, rep.Writes, rep.Reads, rep.FastFrac, status)
	if rep.OpError != "" {
		fmt.Fprintf(stderr, "  op error: %s\n", rep.OpError)
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(stderr, "  violation: %s\n", v)
	}
	for _, ev := range rep.Events {
		if ev.Err != "" {
			fmt.Fprintf(stderr, "  event error: %s: %s\n", ev.Action, ev.Err)
		}
	}

	if historyDir != "" {
		rep.AttachHistory()
		name := fmt.Sprintf("%s-%s-seed%d.json", sc.Name, kind, seed)
		f, err := os.Create(filepath.Join(historyDir, name))
		if err != nil {
			fmt.Fprintf(stderr, "luckychaos: history: %v\n", err)
			return 1
		}
		werr := rep.WriteJSON(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(stderr, "luckychaos: history write: %v %v\n", werr, cerr)
			return 1
		}
	}
	if !rep.Clean {
		return 1
	}
	return 0
}
