package main

// The -allocs mode: operation-level allocation and heap benchmarks for
// the zero-allocation hot path (DESIGN.md §5), run programmatically via
// testing.Benchmark. The benchmark bodies live in internal/allocbench,
// shared with the root `go test -bench` entry points, so this table and
// the BENCH_core.json it can emit measure exactly the workloads
// EXPERIMENTS.md records.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"luckystore/internal/allocbench"
)

// allocResult is one benchmark row, shaped for both the text table and
// BENCH_core.json.
type allocResult struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	// Extra carries a benchmark-specific metric (e.g. heap bytes per
	// idle key); empty otherwise.
	Extra     float64 `json:"extra,omitempty"`
	ExtraUnit string  `json:"extra_unit,omitempty"`
}

// runAllocs executes the allocation benchmarks and returns exit status.
func runAllocs(jsonPath string) int {
	results := collectAllocResults()
	fmt.Printf("%-22s %12s %10s %12s %s\n", "benchmark", "ns/op", "B/op", "allocs/op", "extra")
	for _, r := range results {
		extra := ""
		if r.ExtraUnit != "" {
			extra = fmt.Sprintf("%.1f %s", r.Extra, r.ExtraUnit)
		}
		fmt.Printf("%-22s %12.0f %10d %12d %s\n", r.Name, r.NsPerOp, r.BPerOp, r.AllocsOp, extra)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckybench -allocs: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "luckybench -allocs: %v\n", err)
			return 1
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return 0
}

func collectAllocResults() []allocResult {
	benches := []struct {
		name      string
		extraUnit string // taken from the benchmark's ReportMetric extras
		fn        func(b *testing.B)
	}{
		{"core/put", "", allocbench.CorePut},
		{"core/get", "", allocbench.CoreGet},
		{"kv/put", "", allocbench.KVPut},
		{"kv/get", "", allocbench.KVGet},
		{"server/idle-key-heap", "heapB/key", allocbench.IdleKeyHeap},
	}
	results := make([]allocResult, 0, len(benches))
	for _, bench := range benches {
		res := testing.Benchmark(bench.fn)
		r := allocResult{
			Name:     bench.name,
			NsPerOp:  float64(res.NsPerOp()),
			BPerOp:   res.AllocedBytesPerOp(),
			AllocsOp: res.AllocsPerOp(),
		}
		if bench.extraUnit != "" {
			r.Extra, r.ExtraUnit = res.Extra[bench.extraUnit], bench.extraUnit
		}
		results = append(results, r)
	}
	return results
}
