// Command luckybench regenerates the paper-reproduction tables: it runs
// the experiments E1–E12 (one per proposition/theorem/proof-figure of
// the paper, see DESIGN.md §3) and prints their measured tables.
//
// Usage:
//
//	luckybench             # run everything
//	luckybench -run E5     # one experiment
//	luckybench -markdown   # emit markdown tables (EXPERIMENTS.md rows)
//	luckybench -list       # list experiment ids and titles
//	luckybench -allocs     # allocation/heap report for the hot path
//	luckybench -allocs -json BENCH_core.json  # machine-readable output
//
// Exit status 1 means at least one measured shape diverged from the
// paper's claim (or, with -allocs, that a benchmark failed).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"luckystore/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("luckybench", flag.ContinueOnError)
	var (
		only     = fs.String("run", "", "run a single experiment id (e.g. E5)")
		markdown = fs.Bool("markdown", false, "emit markdown tables")
		list     = fs.Bool("list", false, "list experiment ids")
		allocs   = fs.Bool("allocs", false, "run allocation/heap benchmarks (B/op, allocs/op) instead of experiments")
		jsonOut  = fs.String("json", "", "with -allocs: also write results as JSON to this path")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}
	if *allocs {
		return runAllocs(*jsonOut)
	}

	var results []*experiments.Result
	if *only != "" {
		res, err := experiments.Run(*only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckybench: %v\n", err)
			return 1
		}
		results = append(results, res)
	} else {
		var err error
		results, err = experiments.All()
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckybench: %v\n", err)
			return 1
		}
	}

	allPass := true
	for _, res := range results {
		if *markdown {
			printMarkdown(res)
		} else {
			fmt.Println(res)
		}
		if !res.Pass {
			allPass = false
		}
	}

	fmt.Printf("\n%d experiments, ", len(results))
	if allPass {
		fmt.Println("all measured shapes match the paper.")
		return 0
	}
	fmt.Println("SOME SHAPES DIVERGED — see FAIL markers above.")
	return 1
}

func printMarkdown(res *experiments.Result) {
	status := "PASS"
	if !res.Pass {
		status = "FAIL"
	}
	fmt.Printf("### %s — %s [%s]\n\n", res.ID, res.Title, status)
	fmt.Printf("Claim: %s\n\n", res.Claim)
	for _, t := range res.Tables {
		fmt.Println(t.Markdown())
	}
	for _, n := range res.Notes {
		fmt.Printf("- note: %s\n", n)
	}
	fmt.Println(strings.Repeat("-", 3))
}
