package main

import "testing"

func TestListFlag(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
}

func TestSingleExperiment(t *testing.T) {
	if code := run([]string{"-run", "E1"}); code != 0 {
		t.Fatalf("-run E1 exit = %d", code)
	}
}

func TestSingleExperimentMarkdown(t *testing.T) {
	if code := run([]string{"-run", "E4", "-markdown"}); code != 0 {
		t.Fatalf("-run E4 -markdown exit = %d", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if code := run([]string{"-run", "E99"}); code == 0 {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}); code == 0 {
		t.Fatal("bad flag accepted")
	}
}
