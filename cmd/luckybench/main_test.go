package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestListFlag(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
}

func TestSingleExperiment(t *testing.T) {
	if code := run([]string{"-run", "E1"}); code != 0 {
		t.Fatalf("-run E1 exit = %d", code)
	}
}

func TestSingleExperimentMarkdown(t *testing.T) {
	if code := run([]string{"-run", "E4", "-markdown"}); code != 0 {
		t.Fatalf("-run E4 -markdown exit = %d", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if code := run([]string{"-run", "E99"}); code == 0 {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}); code == 0 {
		t.Fatal("bad flag accepted")
	}
}

func TestAllocsMode(t *testing.T) {
	if raceEnabled {
		t.Skip("benchmark calibration is too slow under -race")
	}
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	path := filepath.Join(t.TempDir(), "BENCH_core.json")
	if code := run([]string{"-allocs", "-json", path}); code != 0 {
		t.Fatalf("-allocs exit = %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results []allocResult
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("BENCH_core.json is not valid JSON: %v", err)
	}
	want := map[string]bool{
		"core/put": false, "core/get": false,
		"kv/put": false, "kv/get": false,
		"server/idle-key-heap": false,
	}
	for _, r := range results {
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("BENCH_core.json missing benchmark %q", name)
		}
	}
}
