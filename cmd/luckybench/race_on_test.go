//go:build race

package main

// raceEnabled lets the -allocs smoke test skip under the race
// detector, whose instrumentation makes benchmark calibration an
// order of magnitude slower without testing anything extra here.
const raceEnabled = true
