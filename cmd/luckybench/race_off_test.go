//go:build !race

package main

// raceEnabled lets the -allocs smoke test skip under the race
// detector; see race_on_test.go.
const raceEnabled = false
