package main

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"luckystore"
	"luckystore/internal/ring"
)

func startRouter(t *testing.T, args ...string) (string, chan int, chan struct{}) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	exit := make(chan int, 1)
	go func() { exit <- run(args, ready, stop) }()
	select {
	case addrs := <-ready:
		return addrs, exit, stop
	case code := <-exit:
		t.Fatalf("luckyrouter exited with %d before listening", code)
		return "", nil, nil
	}
}

func stopRouter(t *testing.T, exit chan int, stop chan struct{}) {
	t.Helper()
	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("luckyrouter exit = %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("luckyrouter did not shut down")
	}
}

// End-to-end acceptance: two real TCP-KV clusters behind a luckyrouter
// daemon, driven by an unmodified OpenKVTCP client. Every key reads
// back through the router, and each cluster ends up owning its ring
// share of the keys.
func TestRouterFrontsTwoClusters(t *testing.T) {
	const numKeys = 20
	cfg := luckystore.Config{T: 0, B: 0, Fw: 0, NumReaders: 1,
		RoundTimeout: 100 * time.Millisecond, OpTimeout: 10 * time.Second}

	// Two S=1 clusters of real sharded KV listeners.
	var clusterAddrs []string
	for i := 0; i < 2; i++ {
		srv, err := luckystore.ListenTCPKV(0, "127.0.0.1:0", luckystore.WithTCPShards(2))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		clusterAddrs = append(clusterAddrs, srv.Addr())
	}

	addrs, exit, stop := startRouter(t,
		"-cluster", clusterAddrs[0],
		"-cluster", clusterAddrs[1],
		"-seed", "1")
	defer stopRouter(t, exit, stop)

	store, err := luckystore.OpenKVTCP(cfg, luckystore.ServerAddrs(strings.Split(addrs, ",")))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	keys := make([]string, numKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		if err := store.Put(keys[i], luckystore.Value("v-"+keys[i])); err != nil {
			t.Fatal(err)
		}
	}
	got, err := store.GetBatch(0, keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if got[k].Val != luckystore.Value("v-"+k) {
			t.Errorf("GetBatch[%s] = %q through the router, want %q", k, got[k].Val, "v-"+k)
		}
	}

	// Placement: read each cluster directly (reader-only — the writer
	// connection is dialed lazily and never needed). A key must be
	// present exactly on its ring owner.
	rg, err := ring.New(1, 0, []ring.ClusterID{ring.ID(0), ring.ID(1)})
	if err != nil {
		t.Fatal(err)
	}
	owned := map[ring.ClusterID]int{}
	for i, addr := range clusterAddrs {
		id := ring.ID(i)
		direct, err := luckystore.OpenKVTCP(cfg, luckystore.ServerAddrs([]string{addr}))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			v, err := direct.Get(0, k)
			if err != nil {
				t.Fatal(err)
			}
			if owner := rg.Lookup(k); owner == id {
				owned[id]++
				if v.IsBottom() {
					t.Errorf("key %q missing from its owner %s", k, id)
				}
			} else if !v.IsBottom() {
				t.Errorf("key %q leaked onto %s (owner %s)", k, id, owner)
			}
		}
		direct.Close()
	}
	for id, n := range owned {
		if n == 0 {
			t.Errorf("cluster %s owns no keys out of %d", id, numKeys)
		}
	}
}

func TestBadFlagsExitNonzero(t *testing.T) {
	if code := run([]string{"-no-such-flag"}, nil, nil); code != 2 {
		t.Errorf("unknown flag exit = %d, want 2", code)
	}
	if code := run(nil, nil, nil); code != 2 {
		t.Errorf("missing -cluster exit = %d, want 2", code)
	}
	if code := run([]string{"-cluster", "a:1", "-cluster", "b:1,b:2"}, nil, nil); code != 1 {
		t.Errorf("mismatched cluster sizes exit = %d, want 1", code)
	}
}
