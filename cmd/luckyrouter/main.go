// Command luckyrouter fronts a fleet of TCP key-value clusters behind
// the ordinary single-cluster wire protocol: it listens on S virtual
// server sockets and forwards every keyed message to the same-index
// server of whichever cluster the consistent-hash ring assigns the
// key to. An unmodified OpenKVTCP client pointed at the router's
// addresses transparently spreads its keyspace over the whole fleet.
//
// Usage:
//
//	# two clusters of S=3 luckyd -kv servers each
//	luckyrouter -cluster host1:7000,host2:7000,host3:7000 \
//	            -cluster host4:7000,host5:7000,host6:7000 \
//	            -listen 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//
// Every -cluster flag names one cluster's S server addresses in index
// order; all clusters must have the same S, and -listen (when given)
// must name exactly S addresses. Every router fronting the same fleet
// must use the same -seed and -vnodes, or placements disagree.
//
// The fleet is fixed for the router's lifetime: live rebalancing needs
// the client-side routing layer (internal/router.Router), which owns
// the read-then-write-forward handoff. Resize a proxied fleet by
// draining, migrating offline, and restarting the router with the new
// cluster list.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"luckystore/internal/ring"
	"luckystore/internal/router"
)

// clusterList collects repeated -cluster flags, each one cluster's
// comma-separated server addresses.
type clusterList [][]string

func (c *clusterList) String() string {
	parts := make([]string, len(*c))
	for i, addrs := range *c {
		parts[i] = strings.Join(addrs, ",")
	}
	return strings.Join(parts, " ")
}

func (c *clusterList) Set(v string) error {
	addrs := splitAddrs(v)
	if len(addrs) == 0 {
		return errors.New("empty cluster address list")
	}
	*c = append(*c, addrs)
	return nil
}

// splitAddrs splits a comma list, dropping empty elements.
func splitAddrs(v string) []string {
	var out []string
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func main() {
	os.Exit(run(os.Args[1:], nil, nil))
}

// run starts the router and blocks until a termination signal (or, in
// tests, until stop closes). A non-nil ready receives the bound listen
// addresses, comma-separated in virtual-server index order.
func run(args []string, ready chan<- string, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("luckyrouter", flag.ContinueOnError)
	var clusters clusterList
	fs.Var(&clusters, "cluster", "one cluster's comma-separated server addresses, in index order (repeat per cluster)")
	var (
		listen = fs.String("listen", "", "comma-separated virtual-server listen addresses (default: S loopback sockets on free ports)")
		seed   = fs.Int64("seed", 1, "consistent-hash ring seed (must match every router of the fleet)")
		vnodes = fs.Int("vnodes", 0, "virtual nodes per cluster on the ring; 0 means the default")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if len(clusters) == 0 {
		fmt.Fprintln(os.Stderr, "luckyrouter: at least one -cluster is required")
		return 2
	}

	cfg := router.ProxyConfig{
		Seed:     *seed,
		Vnodes:   *vnodes,
		Clusters: make(map[ring.ClusterID][]string, len(clusters)),
		Listen:   splitAddrs(*listen),
	}
	for i, addrs := range clusters {
		cfg.Clusters[ring.ID(i)] = addrs
	}
	p, err := router.NewProxy(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "luckyrouter: %v\n", err)
		return 1
	}
	addrs := strings.Join(p.Addrs(), ",")
	log.Printf("luckyrouter: fronting %d clusters (seed %d) on %s", len(clusters), *seed, addrs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	if ready != nil {
		ready <- addrs
	}
	select {
	case <-sig:
	case <-stop:
	}
	log.Print("luckyrouter: shutting down")
	if err := p.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "luckyrouter: close: %v\n", err)
		return 1
	}
	return 0
}
