// Command luckyrouter fronts a fleet of TCP key-value clusters behind
// the ordinary single-cluster wire protocol: it listens on S virtual
// server sockets and forwards every keyed message to the same-index
// server of whichever cluster the consistent-hash ring assigns the
// key to. An unmodified OpenKVTCP client pointed at the router's
// addresses transparently spreads its keyspace over the whole fleet.
//
// Usage:
//
//	# two clusters of S=3 luckyd -kv servers each
//	luckyrouter -cluster host1:7000,host2:7000,host3:7000 \
//	            -cluster host4:7000,host5:7000,host6:7000 \
//	            -listen 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//
// Every -cluster flag names one cluster's S server addresses in index
// order; all clusters must have the same S, and -listen (when given)
// must name exactly S addresses. Every router fronting the same fleet
// must use the same -seed and -vnodes, or placements disagree.
//
// The fleet is fixed for the router's lifetime: live rebalancing needs
// the client-side routing layer (internal/router.Router), which owns
// the read-then-write-forward handoff. Resize a proxied fleet by
// draining, migrating offline, and restarting the router with the new
// cluster list.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"luckystore/internal/admin"
	"luckystore/internal/metrics"
	"luckystore/internal/ring"
	"luckystore/internal/router"
)

// clusterList collects repeated -cluster flags, each one cluster's
// comma-separated server addresses.
type clusterList [][]string

func (c *clusterList) String() string {
	parts := make([]string, len(*c))
	for i, addrs := range *c {
		parts[i] = strings.Join(addrs, ",")
	}
	return strings.Join(parts, " ")
}

func (c *clusterList) Set(v string) error {
	addrs := splitAddrs(v)
	if len(addrs) == 0 {
		return errors.New("empty cluster address list")
	}
	*c = append(*c, addrs)
	return nil
}

// splitAddrs splits a comma list, dropping empty elements.
func splitAddrs(v string) []string {
	var out []string
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// quorumReachable probes every cluster's servers with short TCP dials
// and reports the first cluster that cannot assemble a majority. The
// protocol's quorums are S-t sized, but t is a client-side parameter
// the router does not know; a majority is the weakest threshold any
// valid (t, b) choice needs, so it is the honest readiness bar here.
func quorumReachable(clusters map[ring.ClusterID][]string) error {
	for id, addrs := range clusters {
		up := 0
		for _, a := range addrs {
			c, err := net.DialTimeout("tcp", a, time.Second)
			if err != nil {
				continue
			}
			_ = c.Close()
			up++
		}
		if up <= len(addrs)/2 {
			return fmt.Errorf("cluster %s: %d/%d servers reachable, majority needed", id, up, len(addrs))
		}
	}
	return nil
}

// ringHandler serves the routing table: the seed and each cluster's
// servers, in sorted cluster order — enough for an operator to check
// two routers front the same fleet the same way.
func ringHandler(seed int64, clusters map[ring.ClusterID][]string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "seed %d\n", seed)
		ids := make([]string, 0, len(clusters))
		for id := range clusters {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(w, "%s %s\n", id, strings.Join(clusters[ring.ClusterID(id)], ","))
		}
	})
}

func main() {
	os.Exit(run(os.Args[1:], nil, nil))
}

// run starts the router and blocks until a termination signal (or, in
// tests, until stop closes). A non-nil ready receives the bound listen
// addresses, comma-separated in virtual-server index order.
func run(args []string, ready chan<- string, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("luckyrouter", flag.ContinueOnError)
	var clusters clusterList
	fs.Var(&clusters, "cluster", "one cluster's comma-separated server addresses, in index order (repeat per cluster)")
	var (
		listen    = fs.String("listen", "", "comma-separated virtual-server listen addresses (default: S loopback sockets on free ports)")
		seed      = fs.Int64("seed", 1, "consistent-hash ring seed (must match every router of the fleet)")
		vnodes    = fs.Int("vnodes", 0, "virtual nodes per cluster on the ring; 0 means the default")
		adminAddr = fs.String("admin", "", "HTTP admin listen address serving /metrics, /healthz, /readyz, /debug/ring; empty disables")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if len(clusters) == 0 {
		fmt.Fprintln(os.Stderr, "luckyrouter: at least one -cluster is required")
		return 2
	}

	cfg := router.ProxyConfig{
		Seed:     *seed,
		Vnodes:   *vnodes,
		Clusters: make(map[ring.ClusterID][]string, len(clusters)),
		Listen:   splitAddrs(*listen),
	}
	for i, addrs := range clusters {
		cfg.Clusters[ring.ID(i)] = addrs
	}
	var reg *metrics.Registry
	if *adminAddr != "" {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}
	p, err := router.NewProxy(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "luckyrouter: %v\n", err)
		return 1
	}
	var adm *admin.Server
	if *adminAddr != "" {
		adm, err = admin.Listen(*adminAddr, admin.Options{
			Registry: reg,
			Ready:    func() error { return quorumReachable(cfg.Clusters) },
			Extra: map[string]http.Handler{
				"/debug/ring": ringHandler(*seed, cfg.Clusters),
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyrouter: %v\n", err)
			_ = p.Close()
			return 1
		}
		log.Printf("luckyrouter: admin plane on http://%s", adm.Addr())
	}
	addrs := strings.Join(p.Addrs(), ",")
	log.Printf("luckyrouter: fronting %d clusters (seed %d) on %s", len(clusters), *seed, addrs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	if ready != nil {
		ready <- addrs
	}
	select {
	case <-sig:
	case <-stop:
	}
	log.Print("luckyrouter: shutting down")
	if adm != nil {
		_ = adm.Close()
	}
	if err := p.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "luckyrouter: close: %v\n", err)
		return 1
	}
	return 0
}
