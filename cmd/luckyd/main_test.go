package main

import (
	"testing"
	"time"

	"luckystore"
)

// startDaemon runs the daemon in-process and returns its bound address
// and a channel carrying the exit code after stop closes.
func startDaemon(t *testing.T, args ...string) (string, chan int, chan struct{}) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	exit := make(chan int, 1)
	go func() { exit <- run(args, ready, stop) }()
	select {
	case addr := <-ready:
		return addr, exit, stop
	case code := <-exit:
		t.Fatalf("luckyd exited with %d before listening", code)
		return "", nil, nil
	}
}

func stopDaemon(t *testing.T, exit chan int, stop chan struct{}) {
	t.Helper()
	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("luckyd exit = %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("luckyd did not shut down")
	}
}

// TestKVModeServesShardedStore brings up a full S=1 cluster of luckyd
// -kv -shards daemons and drives it with an OpenKVTCP client:
// acceptance that `luckyd -kv -shards N` serves the sharded KV
// automaton end to end.
func TestKVModeServesShardedStore(t *testing.T) {
	cfg := luckystore.Config{T: 0, B: 0, Fw: 0, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 10 * time.Second}

	addr, exit, stop := startDaemon(t, "-index", "0", "-listen", "127.0.0.1:0", "-kv", "-shards", "2")
	defer stopDaemon(t, exit, stop)

	store, err := luckystore.OpenKVTCP(cfg, luckystore.ServerAddrs([]string{addr}))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	puts := map[string]luckystore.Value{"a": "1", "b": "2", "c": "3"}
	if err := store.PutBatch(puts); err != nil {
		t.Fatal(err)
	}
	got, err := store.GetBatch(0, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range puts {
		if got[k].Val != want {
			t.Errorf("GetBatch[%s] = %q, want %q", k, got[k].Val, want)
		}
	}
}

// TestRegisterModeStillServes checks the default single-register mode
// is unchanged: luckyctl-style clients read what they wrote.
func TestRegisterModeStillServes(t *testing.T) {
	cfg := luckystore.Config{T: 0, B: 0, Fw: 0, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 10 * time.Second}

	addr, exit, stop := startDaemon(t, "-index", "0", "-listen", "127.0.0.1:0")
	defer stopDaemon(t, exit, stop)

	addrs := luckystore.ServerAddrs([]string{addr})
	writer, wc, err := luckystore.NewTCPWriter(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if err := writer.Write("daemon"); err != nil {
		t.Fatal(err)
	}
	reader, rc, err := luckystore.NewTCPReader(cfg, 0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got, err := reader.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "daemon" {
		t.Errorf("Read() = %v", got)
	}
}

// TestDataDirSurvivesRestart is the durability acceptance for the
// daemon: a -kv -data daemon is stopped via its termination path (the
// graceful-shutdown flow SIGTERM triggers, which flushes and fsyncs the
// WAL after the listener stops) and restarted on the same directory and
// address — the reborn daemon must serve the exact pre-shutdown pairs,
// stamps included, and still accept new writes.
func TestDataDirSurvivesRestart(t *testing.T) {
	// Writers: 2 puts the client in multi-writer mode: the writer that
	// dials the reborn daemon is a fresh process, and only the MW
	// stamp-query round lets it bind above the recovered timestamps.
	cfg := luckystore.Config{T: 0, B: 0, Fw: 0, NumReaders: 1, Writers: 2,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 10 * time.Second}
	dir := t.TempDir()

	addr, exit, stop := startDaemon(t, "-index", "0", "-listen", "127.0.0.1:0",
		"-kv", "-shards", "2", "-data", dir)
	store, err := luckystore.OpenKVTCP(cfg, luckystore.ServerAddrs([]string{addr}))
	if err != nil {
		t.Fatal(err)
	}
	puts := map[string]luckystore.Value{"a": "1", "b": "2", "c": "3"}
	if err := store.PutBatch(puts); err != nil {
		t.Fatal(err)
	}
	want, err := store.GetBatch(0, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	store.Close()
	stopDaemon(t, exit, stop) // graceful: listener down, then WAL fsync

	var exit2 chan int
	var stop2 chan struct{}
	// The kernel may briefly hold the port; retry like a supervisor would.
	for attempt := 0; ; attempt++ {
		ready := make(chan string, 1)
		stop2 = make(chan struct{})
		exit2 = make(chan int, 1)
		go func() {
			exit2 <- run([]string{"-index", "0", "-listen", addr,
				"-kv", "-shards", "2", "-data", dir}, ready, stop2)
		}()
		select {
		case <-ready:
		case <-exit2:
			if attempt < 100 {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			t.Fatal("reborn luckyd never bound its old address")
		}
		break
	}
	defer stopDaemon(t, exit2, stop2)

	store2, err := luckystore.OpenKVTCP(cfg, luckystore.ServerAddrs([]string{addr}))
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	got, err := store2.GetBatch(0, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("after restart %s = %+v, want pre-shutdown %+v", k, got[k], w)
		}
	}
	if err := store2.Put("a", "4"); err != nil {
		t.Fatalf("post-restart put: %v", err)
	}
	g, err := store2.Get(0, "a")
	if err != nil || g.Val != "4" {
		t.Fatalf("post-restart rw cycle = %v, %v", g, err)
	}
}

func TestFlagValidation(t *testing.T) {
	tests := []struct {
		args []string
		want int
	}{
		{[]string{"-index", "-1"}, 2},                    // negative index
		{[]string{"-shards", "4"}, 2},                    // -shards without -kv
		{[]string{"-listen", "256.0.0.1:bad", "-kv"}, 1}, // unbindable address
		{[]string{"-not-a-flag"}, 2},                     // unknown flag
		{[]string{"-h"}, 0},                              // help is not an error
	}
	for _, tc := range tests {
		if code := run(tc.args, nil, nil); code != tc.want {
			t.Errorf("run(%v) = %d, want %d", tc.args, code, tc.want)
		}
	}
}
