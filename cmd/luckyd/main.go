// Command luckyd runs one storage server of the lucky atomic register
// over TCP.
//
// Usage:
//
//	luckyd -index 0 -listen 127.0.0.1:7000
//
// Start 2t+b+1 of these (indexes 0..S-1), then point luckyctl at them.
// Stopping the process is, to the rest of the cluster, a crash failure
// — which the protocol tolerates for up to t servers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"luckystore"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		index  = flag.Int("index", 0, "server index i (process id becomes s<i>)")
		listen = flag.String("listen", "127.0.0.1:0", "TCP listen address")
	)
	flag.Parse()
	if *index < 0 {
		fmt.Fprintln(os.Stderr, "luckyd: -index must be non-negative")
		return 2
	}

	srv, err := luckystore.ListenTCP(*index, *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "luckyd: %v\n", err)
		return 1
	}
	log.Printf("luckyd: server %s listening on %s", srv.ID(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("luckyd: shutting down %s", srv.ID())
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "luckyd: close: %v\n", err)
		return 1
	}
	return 0
}
