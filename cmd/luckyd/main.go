// Command luckyd runs one storage server of the lucky atomic register
// over TCP.
//
// Usage:
//
//	luckyd -index 0 -listen 127.0.0.1:7000          # single register
//	luckyd -index 0 -listen 127.0.0.1:7000 -kv      # key-value store
//	luckyd -index 0 -listen 127.0.0.1:7000 -kv -shards 8
//	luckyd -index 0 -listen 127.0.0.1:7000 -kv -data /var/lib/lucky/s0
//
// Start 2t+b+1 of these (indexes 0..S-1), then point luckyctl (single
// register) or an OpenKVTCP client (-kv) at them. In -kv mode every key
// is an independent lucky register, stepped across a pool of shard
// workers (-shards; 0 means one per CPU) so independent keys never
// serialize on one lock.
//
// With -admin the server additionally exposes an operational HTTP
// plane: /metrics (Prometheus text: per-key-class service latency,
// WAL fsync latency, shard queue depths, frame counters), /healthz,
// /readyz (probes the data listener end to end), and /debug/stamps
// (the per-key ⟨seq, writer⟩ stamps currently held, walked race-free
// on the shard workers).
//
// With -data the server is durable: it writes a WAL (plus snapshots)
// under the directory before acknowledging, and on startup replays the
// directory — truncating any torn tail a crash left — before accepting
// connections. SIGTERM/SIGINT shut down gracefully: the listener stops
// first, then the WAL flushes and fsyncs, so every acknowledged
// operation is on disk when the process exits and the next start
// recovers it. Without -data, stopping the process is an amnesiac
// restart, which the failure model can only count as Byzantine; with
// -data it is an ordinary crash failure the protocol tolerates for up
// to t servers.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"luckystore"
	"luckystore/internal/admin"
)

func main() {
	os.Exit(run(os.Args[1:], nil, nil))
}

// run starts the daemon and blocks until a termination signal (or, in
// tests, until stop closes). A non-nil ready receives the bound listen
// address once the server is up.
func run(args []string, ready chan<- string, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("luckyd", flag.ContinueOnError)
	var (
		index   = fs.Int("index", 0, "server index i (process id becomes s<i>)")
		listen  = fs.String("listen", "127.0.0.1:0", "TCP listen address")
		kvMode  = fs.Bool("kv", false, "serve the key-value store (one lucky register per key) instead of the single register")
		shards  = fs.Int("shards", 0, "shard workers stepping the KV registers; 0 means one per CPU (requires -kv)")
		dataDir   = fs.String("data", "", "data directory for the WAL and snapshots; empty keeps state in memory only")
		adminAddr = fs.String("admin", "", "HTTP admin listen address serving /metrics, /healthz, /readyz, /debug/stamps; empty disables")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *index < 0 {
		fmt.Fprintln(os.Stderr, "luckyd: -index must be non-negative")
		return 2
	}
	if *shards != 0 && !*kvMode {
		fmt.Fprintln(os.Stderr, "luckyd: -shards requires -kv (a single register has no keys to shard)")
		return 2
	}

	var (
		srv *luckystore.TCPServer
		err error
	)
	var opts []luckystore.TCPOption
	if *dataDir != "" {
		opts = append(opts, luckystore.WithTCPDataDir(*dataDir))
	}
	var reg *luckystore.MetricsRegistry
	if *adminAddr != "" {
		reg = luckystore.NewMetricsRegistry()
		opts = append(opts, luckystore.WithTCPMetrics(reg))
	}
	if *kvMode {
		srv, err = luckystore.ListenTCPKV(*index, *listen, append(opts, luckystore.WithTCPShards(*shards))...)
	} else {
		srv, err = luckystore.ListenTCP(*index, *listen, opts...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "luckyd: %v\n", err)
		return 1
	}
	var adm *admin.Server
	if *adminAddr != "" {
		adm, err = admin.Listen(*adminAddr, admin.Options{
			Registry: reg,
			// Readiness probes the data plane end to end: the listener
			// must still accept a connection.
			Ready: func() error {
				c, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
				if err != nil {
					return err
				}
				return c.Close()
			},
			Stamps: srv.WriteStamps,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyd: %v\n", err)
			_ = srv.Close()
			return 1
		}
		log.Printf("luckyd: admin plane on http://%s", adm.Addr())
	}
	mode := "register"
	if *kvMode {
		mode = "kv"
	}
	durability := "in-memory"
	if *dataDir != "" {
		durability = "durable in " + *dataDir
	}
	log.Printf("luckyd: %s server %s listening on %s (%s)", mode, srv.ID(), srv.Addr(), durability)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	if ready != nil {
		ready <- srv.Addr()
	}
	select {
	case <-sig:
	case <-stop:
	}
	log.Printf("luckyd: shutting down %s", srv.ID())
	if adm != nil {
		_ = adm.Close()
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "luckyd: close: %v\n", err)
		return 1
	}
	return 0
}
