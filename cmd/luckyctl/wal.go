package main

// The offline `wal` subcommand: inspect a durable server's data
// directory (or one segment file) without a running cluster — the
// post-mortem companion to luckyd -data.

import (
	"flag"
	"fmt"
	"os"

	"luckystore/internal/storage"
	"luckystore/internal/wire"
)

func runWAL(args []string) int {
	fs := flag.NewFlagSet("luckyctl wal", flag.ContinueOnError)
	dump := fs.Bool("dump", false, "decode and print every valid record, not just segment summaries")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "luckyctl: wal needs exactly one path (a server data directory or a segment file)")
		return 2
	}
	path := fs.Arg(0)
	st, err := os.Stat(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "luckyctl: wal: %v\n", err)
		return 1
	}

	var infos []storage.SegmentInfo
	if st.IsDir() {
		infos, err = storage.InspectDir(path)
		if err == nil && len(infos) == 0 {
			err = fmt.Errorf("%s: no snapshot or log segments", path)
		}
	} else {
		var info storage.SegmentInfo
		info, err = storage.InspectFile(path)
		infos = append(infos, info)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "luckyctl: wal: %v\n", err)
		return 1
	}

	damaged := false
	records := 0
	for _, info := range infos {
		records += info.Records
		fmt.Printf("%s: %d records, %d bytes, %s\n", info.Path, info.Records, info.Bytes, verdict(info))
		if info.BadMagic || info.Truncated() {
			damaged = true
		}
		if *dump {
			err := storage.DumpRecords(info.Path, func(i int, off int64, env wire.Envelope) error {
				fmt.Printf("  #%d @%d %s→%s %v\n", i, off, env.From, env.To, env.Msg)
				return nil
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "luckyctl: wal: dump %s: %v\n", info.Path, err)
				return 1
			}
		}
	}
	fmt.Printf("total: %d segments, %d records\n", len(infos), records)
	if damaged {
		return 1
	}
	return 0
}

// verdict renders one segment's health: CRC-clean, or where and why
// recovery would truncate.
func verdict(info storage.SegmentInfo) string {
	switch {
	case info.BadMagic:
		return "DAMAGED: " + info.Reason
	case info.Truncated():
		return fmt.Sprintf("TORN at byte %d (%s) — recovery truncates %d trailing bytes",
			info.Valid, info.Reason, info.Bytes-info.Valid)
	default:
		return "clean"
	}
}
