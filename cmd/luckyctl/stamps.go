package main

// The offline `stamps` subcommand: replay a durable server's data
// directory through a real server automaton and print, per register,
// the installed ⟨seq, writer⟩ stamps a recovering server would hold —
// the multi-writer post-mortem companion to `luckyctl wal`. With
// contending writers the Writer component of each stamp names the
// identity that installed it, so a crashed node's directory answers
// "whose write won on this key" without a running cluster.

import (
	"flag"
	"fmt"
	"os"

	"luckystore/internal/core"
	"luckystore/internal/keyed"
	"luckystore/internal/node"
	"luckystore/internal/storage"
	"luckystore/internal/wire"
)

func runStamps(args []string) int {
	fs := flag.NewFlagSet("luckyctl stamps", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "luckyctl: stamps needs exactly one server data directory")
		return 2
	}
	dir := fs.Arg(0)
	st, err := os.Stat(dir)
	if err == nil && !st.IsDir() {
		err = fmt.Errorf("%s: not a directory", dir)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "luckyctl: stamps: %v\n", err)
		return 1
	}
	infos, err := storage.InspectDir(dir)
	if err == nil && len(infos) == 0 {
		err = fmt.Errorf("%s: no snapshot or log segments", dir)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "luckyctl: stamps: %v\n", err)
		return 1
	}

	// Replay through genuine server automata: keyed records build one
	// core register per key, unkeyed records (a single-register core
	// WAL) feed one bare register. Every server merge is a monotone
	// max-merge, so replaying snapshots then logs in name order —
	// duplicates included — converges on exactly the installed state a
	// recovering server would reach.
	ks := keyed.NewServer(func() node.Automaton { return core.NewServer() })
	var bare *core.Server
	records := 0
	for _, info := range infos {
		if info.BadMagic {
			fmt.Fprintf(os.Stderr, "luckyctl: stamps: %s: DAMAGED: %s\n", info.Path, info.Reason)
			return 1
		}
		if info.Truncated() {
			fmt.Fprintf(os.Stderr, "luckyctl: stamps: note: %s torn at byte %d (%s); trailing bytes hold only unacked records and are ignored, as recovery would\n",
				info.Path, info.Valid, info.Reason)
		}
		err := storage.DumpRecords(info.Path, func(_ int, _ int64, env wire.Envelope) error {
			records++
			if _, ok := env.Msg.(wire.Keyed); ok {
				ks.Step(env.From, env.Msg)
				return nil
			}
			if bare == nil {
				bare = core.NewServer()
			}
			bare.Step(env.From, env.Msg)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyctl: stamps: %s: %v\n", info.Path, err)
			return 1
		}
	}

	registers := 0
	if bare != nil {
		printReg("(register)", bare)
		registers++
	}
	ks.Range(func(key string, reg node.Automaton) {
		printReg(key, reg.(*core.Server))
		registers++
	})
	fmt.Printf("total: %d segments, %d records, %d registers\n", len(infos), records, registers)
	return 0
}

// printReg renders one register's installed pairs — pw (pre-written),
// w (written) and vw (the third write round's view-written field) —
// as ⟨seq.writer⟩ stamps plus the written value.
func printReg(key string, s *core.Server) {
	pw, w, vw := s.State()
	fmt.Printf("%s: pw=⟨%s⟩ w=⟨%s⟩ vw=⟨%s⟩ value=%q\n",
		key, pw.Stamp(), w.Stamp(), vw.Stamp(), string(w.Val))
}
