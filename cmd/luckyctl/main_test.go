package main

import (
	"strings"
	"testing"

	"luckystore"
)

// startServers brings up S TCP servers for t=1, b=0 (S=3) and returns
// the -servers flag value.
func startServers(t *testing.T, s int) string {
	t.Helper()
	addrs := make([]string, s)
	for i := 0; i < s; i++ {
		srv, err := luckystore.ListenTCP(i, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	return strings.Join(addrs, ",")
}

func TestWriteThenReadEndToEnd(t *testing.T) {
	servers := startServers(t, 3)
	base := []string{"-t", "1", "-b", "0", "-fw", "1", "-servers", servers}

	if code := run(append(base, "write", "cli-value")); code != 0 {
		t.Fatalf("write exit = %d", code)
	}
	if code := run(append(base, "read")); code != 0 {
		t.Fatalf("read exit = %d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	tests := [][]string{
		{},                                // no subcommand
		{"-servers", "a,b", "write", "v"}, // wrong server count for defaults
		{"-t", "1", "-b", "2", "read"},    // invalid config
		{"-t", "0", "-b", "0", "-fw", "0", "-servers", "x", "frobnicate"}, // unknown subcommand
		{"-t", "0", "-b", "0", "-fw", "0", "-servers", "x", "write"},      // missing value
	}
	for _, args := range tests {
		if code := run(args); code == 0 {
			t.Errorf("run(%v) = 0, want non-zero", args)
		}
	}
}

func TestReadAgainstDeadClusterFails(t *testing.T) {
	args := []string{"-t", "0", "-b", "0", "-fw", "0",
		"-servers", "127.0.0.1:1", "-timeout", "300ms", "read"}
	if code := run(args); code == 0 {
		t.Error("read against a dead cluster succeeded")
	}
}
