// Command luckyctl is the client CLI for a TCP lucky-register cluster.
//
// Usage:
//
//	luckyctl -t 2 -b 1 -fw 1 -servers host:p0,host:p1,... write "value"
//	luckyctl -t 2 -b 1 -fw 1 -servers host:p0,host:p1,... read
//	luckyctl wal <data-dir | segment-file>   # offline WAL inspection
//	luckyctl wal -dump <segment-file>
//	luckyctl stamps <data-dir>               # offline installed-stamp dump
//
// The server list must contain exactly S = 2t+b+1 addresses, in server
// index order. The exit status is 0 on success; the read subcommand
// prints "ts=<k> value=<v>" plus the round-trip count observed.
//
// The wal and stamps subcommands need no cluster. wal scans a server's
// data directory (or one snapshot/log segment) offline, reporting per
// segment the record count, byte size, CRC verdict and — for a file
// with a torn tail — the byte offset where recovery would truncate;
// exit status 1 means at least one segment is damaged. stamps replays
// the directory's segments through a real server automaton and prints,
// per register, the installed ⟨seq, writer⟩ stamps (pw/w/vw) and the
// written value a recovering server would hold — with multiple writer
// identities, the stamp's writer component names whose write won.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"luckystore"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("luckyctl", flag.ContinueOnError)
	var (
		t       = fs.Int("t", 2, "failures tolerated (t)")
		b       = fs.Int("b", 1, "Byzantine failures tolerated (b ≤ t)")
		fw      = fs.Int("fw", 1, "fast-write failure budget (0 ≤ fw ≤ t−b)")
		servers = fs.String("servers", "", "comma-separated S server addresses, index order")
		reader  = fs.Int("reader", 0, "reader index for the read subcommand")
		timeout = fs.Duration("timeout", 5*time.Second, "per-operation timeout")
		rtt     = fs.Duration("rtt", 100*time.Millisecond, "round-trip synchrony bound (round-1 timer)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "luckyctl: need a subcommand: write <value> | read | wal <path> | stamps <dir>")
		return 2
	}
	// The wal and stamps subcommands are offline — dispatch before any
	// cluster configuration is demanded or validated.
	if fs.Arg(0) == "wal" {
		return runWAL(fs.Args()[1:])
	}
	if fs.Arg(0) == "stamps" {
		return runStamps(fs.Args()[1:])
	}

	cfg := luckystore.Config{T: *t, B: *b, Fw: *fw,
		RoundTimeout: *rtt, OpTimeout: *timeout}
	if err := luckystore.ValidateConfig(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "luckyctl: %v\n", err)
		return 2
	}
	addrList := strings.Split(*servers, ",")
	if *servers == "" || len(addrList) != cfg.S() {
		fmt.Fprintf(os.Stderr, "luckyctl: -servers must list exactly S=%d addresses\n", cfg.S())
		return 2
	}
	addrs := luckystore.ServerAddrs(addrList)

	switch fs.Arg(0) {
	case "write":
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "luckyctl: write needs exactly one value argument")
			return 2
		}
		w, closer, err := luckystore.NewTCPWriter(cfg, addrs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyctl: %v\n", err)
			return 1
		}
		defer closer.Close()
		if err := w.Write(luckystore.Value(fs.Arg(1))); err != nil {
			fmt.Fprintf(os.Stderr, "luckyctl: write: %v\n", err)
			return 1
		}
		m := w.LastMeta()
		fmt.Printf("ok ts=%d rounds=%d fast=%v\n", m.TS, m.Rounds, m.Fast)
		return 0

	case "read":
		r, closer, err := luckystore.NewTCPReader(cfg, *reader, addrs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyctl: %v\n", err)
			return 1
		}
		defer closer.Close()
		got, err := r.Read()
		if err != nil {
			fmt.Fprintf(os.Stderr, "luckyctl: read: %v\n", err)
			return 1
		}
		m := r.LastMeta()
		fmt.Printf("ts=%d value=%q rounds=%d fast=%v\n", got.TS, string(got.Val), m.Rounds(), m.Fast())
		return 0

	default:
		fmt.Fprintf(os.Stderr, "luckyctl: unknown subcommand %q\n", fs.Arg(0))
		return 2
	}
}
