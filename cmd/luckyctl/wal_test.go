package main

import (
	"os"
	"path/filepath"
	"testing"

	"luckystore/internal/core"
	"luckystore/internal/node"
	"luckystore/internal/storage"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// writeWAL fills dir with a real backend's output: n committed PW
// records against a single-register automaton.
func writeWAL(t *testing.T, dir string, n int) {
	t.Helper()
	back, err := storage.NewFile(dir, func() storage.Automaton { return core.NewServer() })
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		m := wire.PW{TS: types.TS(k), PW: types.Tagged{TS: types.TS(k), Val: "v"}}
		p, err := storage.AppendRecord(nil, types.WriterID(), types.ServerID(0), m)
		if err != nil {
			t.Fatal(err)
		}
		if err := back.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := back.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := back.Close(); err != nil {
		t.Fatal(err)
	}
}

// walSegments lists the segment files recovery would scan.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, filepath.Join(dir, e.Name()))
	}
	if len(out) == 0 {
		t.Fatalf("backend left no segment files in %s", dir)
	}
	return out
}

func TestWALSubcommandCleanDirectory(t *testing.T) {
	dir := t.TempDir()
	writeWAL(t, dir, 5)
	if code := run([]string{"wal", dir}); code != 0 {
		t.Errorf("wal on clean directory = %d, want 0", code)
	}
	if code := run([]string{"wal", "-dump", dir}); code != 0 {
		t.Errorf("wal -dump on clean directory = %d, want 0", code)
	}
}

// A torn tail (half-written final record, as a crash mid-write leaves
// it) must be reported — and flip the exit status — without breaking
// the scan of the valid prefix.
func TestWALSubcommandReportsTornTail(t *testing.T) {
	dir := t.TempDir()
	writeWAL(t, dir, 5)
	segs := walSegments(t, dir)
	seg := segs[len(segs)-1]
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if code := run([]string{"wal", seg}); code != 1 {
		t.Errorf("wal on torn segment = %d, want 1", code)
	}
	info, err := storage.InspectFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated() || info.Records != 5 {
		t.Errorf("inspect after tear: records=%d truncated=%v, want 5/true", info.Records, info.Truncated())
	}
	// The damaged tail must still replay its valid prefix: this is the
	// contract the daemon's startup fsck relies on.
	back, err := storage.NewFile(dir, func() storage.Automaton { return core.NewServer() })
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	n := 0
	err = back.Replay(func(p []byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("replay after tear = %d records, want 5", n)
	}
}

func TestWALSubcommandUsageErrors(t *testing.T) {
	tests := [][]string{
		{"wal"},                        // missing path
		{"wal", "a", "b"},              // too many paths
		{"wal", "/does/not/exist-wal"}, // absent path
		{"wal", "-not-a-flag", "x"},    // unknown flag
	}
	for _, args := range tests {
		if code := run(args); code == 0 {
			t.Errorf("run(%v) = 0, want non-zero", args)
		}
	}
	// An empty directory has nothing recovery could use; say so.
	if code := run([]string{"wal", t.TempDir()}); code != 1 {
		t.Error("wal on empty directory should fail with 1")
	}
}

var _ node.Automaton = (*core.Server)(nil)
