package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"luckystore/internal/core"
	"luckystore/internal/kv"
	"luckystore/internal/storage"
)

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns what it printed plus its exit code.
func captureStdout(t *testing.T, fn func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), code
}

// A durable multi-writer store writes two keys under two writer
// identities; after close, `stamps` on the servers' data directories
// must attribute each key's installed stamp to the identity that wrote
// it. Each put commits on a quorum before acking, so at least one
// server's directory holds both keys' records — the assertion requires
// one directory showing both, with beta's stamp carrying writer 1's
// ⟨seq.1⟩ suffix.
func TestStampsSubcommandAttributesWriters(t *testing.T) {
	root := t.TempDir()
	cfg := core.Config{T: 1, B: 0, Fw: 1, NumReaders: 1}
	prov := storage.NewDirProvider(root, kv.NewStorageAutomaton)
	st, err := kv.Open(cfg, kv.WithStorage(prov), kv.WithContenders(1))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := st.OpenContender(1)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	if err := st.AdoptContender(ct); err != nil {
		ct.Close()
		st.Close()
		t.Fatal(err)
	}
	if err := st.Put("alpha", "a0"); err != nil {
		t.Fatal(err)
	}
	if err := st.PutAs(1, "beta", "b1"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	sawBoth := false
	for i := 0; i < cfg.S(); i++ {
		dir := filepath.Join(root, "s"+string(rune('0'+i)))
		if _, err := os.Stat(dir); err != nil {
			continue
		}
		out, code := captureStdout(t, func() int { return run([]string{"stamps", dir}) })
		if code != 0 {
			t.Errorf("stamps %s = %d, want 0\n%s", dir, code, out)
			continue
		}
		hasAlpha := strings.Contains(out, "alpha: pw=⟨1⟩")
		hasBeta := strings.Contains(out, "beta: pw=⟨1.1⟩")
		if hasBeta && !strings.Contains(out, `value="b1"`) && !strings.Contains(out, "1.1") {
			t.Errorf("stamps %s: beta line lost its writer suffix:\n%s", dir, out)
		}
		if hasAlpha && hasBeta {
			sawBoth = true
		}
	}
	if !sawBoth {
		t.Error("no server directory showed both keys' installed stamps with writer attribution")
	}
}

func TestStampsSubcommandUsageErrors(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := [][]string{
		{"stamps"},                        // missing dir
		{"stamps", "a", "b"},              // too many args
		{"stamps", "/does/not/exist-stp"}, // absent path
		{"stamps", file},                  // not a directory
		{"stamps", t.TempDir()},           // no segments
	}
	for _, args := range tests {
		if _, code := captureStdout(t, func() int { return run(args) }); code == 0 {
			t.Errorf("run(%v) = 0, want non-zero", args)
		}
	}
}
