package luckystore_test

// Crash-restart e2e over the TCP KV deployment (PR 5 satellite): one
// server process is torn down and restarted on the same address while
// a writer and readers keep operating, and the full recorded history
// must stay checker-clean per key.
//
// A restarted TCP server rejoins with empty register state — an
// amnesiac recovery, which the failure model can only classify as
// Byzantine (it answers protocol-correctly from initial state). The
// test therefore runs with b=1 so the one amnesiac server stays inside
// the Byzantine budget, exactly the accounting the chaos engine's
// budget guard applies to cold restarts.

import (
	"context"
	"testing"
	"time"

	"luckystore"
	"luckystore/internal/checker"
	"luckystore/internal/workload"
)

func TestTCPKVCrashRestartCheckerClean(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-restart e2e skipped in -short mode")
	}
	cfg := luckystore.Config{T: 2, B: 1, Fw: 0, NumReaders: 2,
		RoundTimeout: 20 * time.Millisecond, OpTimeout: 20 * time.Second}
	servers, addrMap := startKVCluster(t, cfg, luckystore.WithTCPShards(2))

	store, err := luckystore.OpenKVTCP(cfg, addrMap)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Continuous recorded traffic over a few keys.
	ctx, cancel := context.WithCancel(context.Background())
	gen := workload.Continuous{
		Keys: []string{"alpha", "beta", "gamma"}, Seed: 11,
	}
	type result struct {
		rec *checker.Recorder
		err error
	}
	done := make(chan result, 1)
	go func() {
		rec, err := gen.Run(ctx, workload.KVDriver{S: store, Readers: cfg.NumReaders})
		done <- result{rec, err}
	}()

	// Let traffic establish, then crash-restart server 3 on its
	// address mid-workload.
	time.Sleep(150 * time.Millisecond)
	victim := 3
	addr := servers[victim].Addr()
	if err := servers[victim].Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // stay down long enough to matter
	var restarted *luckystore.TCPServer
	for attempt := 0; attempt < 100; attempt++ {
		restarted, err = luckystore.ListenTCPKV(victim, addr, luckystore.WithTCPShards(2))
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer restarted.Close()
	restartedAt := time.Now()

	// Keep going after the restart so the amnesiac server serves real
	// traffic, then stop and check.
	time.Sleep(400 * time.Millisecond)
	cancel()
	res := <-done
	if res.err != nil {
		t.Fatalf("workload error across restart: %v", res.err)
	}
	ops := res.rec.Ops()
	var afterRestart int
	for _, op := range ops {
		if op.Err == nil && op.Invoke.After(restartedAt) {
			afterRestart++
		}
	}
	if len(ops) == 0 {
		t.Fatal("no operations recorded")
	}
	if afterRestart == 0 {
		t.Error("no operation completed after the restart")
	}
	for _, v := range checker.CheckAtomicityPerKey(ops) {
		t.Errorf("violation: %v", v)
	}
	t.Logf("ops=%d (after restart: %d) across %d keys", len(ops), afterRestart, 3)

	// The restarted server is reachable again: a fresh put/get cycle
	// still round-trips on every key.
	for _, k := range []string{"alpha", "beta", "gamma"} {
		if err := store.Put(k, "final"); err != nil {
			t.Fatalf("final put %q: %v", k, err)
		}
		got, err := store.Get(0, k)
		if err != nil || got.Val != "final" {
			t.Fatalf("final get %q = %v, %v", k, got, err)
		}
	}
}
