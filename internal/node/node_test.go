package node

import (
	"testing"
	"time"

	"luckystore/internal/simnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// echoAutomaton replies to every ABDRead with an ABDReadAck carrying a
// step counter in the timestamp.
type echoAutomaton struct {
	stepCount int
}

func (e *echoAutomaton) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	e.stepCount++
	if _, ok := m.(wire.ABDRead); !ok {
		return nil
	}
	return []transport.Outgoing{{
		To:  from,
		Msg: wire.ABDReadAck{Seq: int64(e.stepCount), C: types.Bottom()},
	}}
}

func setup(t *testing.T) (*simnet.Network, transport.Endpoint, *Runner) {
	t.Helper()
	n, err := simnet.New([]types.ProcID{types.WriterID(), types.ServerID(0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	cli, err := n.Endpoint(types.WriterID())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := n.Endpoint(types.ServerID(0))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(srv, &echoAutomaton{})
	return n, cli, r
}

func recvOrFail(t *testing.T, ep transport.Endpoint) wire.Envelope {
	t.Helper()
	select {
	case env, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return env
	case <-time.After(5 * time.Second):
		t.Fatal("no reply")
		return wire.Envelope{}
	}
}

func TestRunnerEchoes(t *testing.T) {
	_, cli, r := setup(t)
	r.Start()
	r.Start() // idempotent
	defer r.Stop()
	if err := cli.Send(types.ServerID(0), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	env := recvOrFail(t, cli)
	if env.From != types.ServerID(0) {
		t.Errorf("reply from %s, want s0", env.From)
	}
	if _, ok := env.Msg.(wire.ABDReadAck); !ok {
		t.Errorf("reply = %T, want ABDReadAck", env.Msg)
	}
	if r.Steps() != 1 {
		t.Errorf("Steps() = %d, want 1", r.Steps())
	}
}

func TestCrashStopsProcessing(t *testing.T) {
	_, cli, r := setup(t)
	r.Start()
	if err := cli.Send(types.ServerID(0), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	recvOrFail(t, cli)
	r.Crash()
	r.Crash() // idempotent
	if err := cli.Send(types.ServerID(0), wire.ABDRead{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-cli.Recv():
		t.Fatalf("crashed server replied: %+v", env)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestCrashAfterSteps(t *testing.T) {
	_, cli, r := setup(t)
	r.Start()
	defer r.Stop()
	r.CrashAfterSteps(2)
	for i := 0; i < 5; i++ {
		if err := cli.Send(types.ServerID(0), wire.ABDRead{Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Exactly two replies must come back.
	for i := 0; i < 2; i++ {
		recvOrFail(t, cli)
	}
	select {
	case env := <-cli.Recv():
		t.Fatalf("got a third reply after scheduled crash: %+v", env)
	case <-time.After(100 * time.Millisecond):
	}
	if got := r.Steps(); got != 2 {
		t.Errorf("Steps() = %d, want 2", got)
	}
}

// Crashing a runner that was never started must not hang, and a later
// Start must not resurrect it — this models an initially crashed
// server (core's WithCrashedServer).
func TestCrashBeforeStart(t *testing.T) {
	_, cli, r := setup(t)
	done := make(chan struct{})
	go func() {
		r.Crash()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Crash on a never-started runner hung")
	}
	r.Start() // must be a no-op
	if err := cli.Send(types.ServerID(0), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-cli.Recv():
		t.Fatalf("crashed-before-start server replied: %+v", env)
	case <-time.After(100 * time.Millisecond):
	}
	r.Stop() // still idempotent
}

func TestRunnerExitsWhenEndpointCloses(t *testing.T) {
	n, _, r := setup(t)
	r.Start()
	n.Close()
	done := make(chan struct{})
	go func() {
		r.Stop() // must return promptly: pump saw the closed channel
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("runner did not exit after endpoint close")
	}
}
