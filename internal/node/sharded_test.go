package node

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"luckystore/internal/simnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// shardEcho replies to ABDRead with an ack naming the shard in the Seq
// field. It is deliberately not concurrency-safe: exclusive shard
// ownership is what makes it correct, and the -race runs would flag any
// violation.
type shardEcho struct {
	shard int
	steps int
}

func (e *shardEcho) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	e.steps++
	if _, ok := m.(wire.ABDRead); !ok {
		return nil
	}
	return []transport.Outgoing{{
		To:  from,
		Msg: wire.ABDReadAck{Seq: int64(e.shard), C: types.Bottom()},
	}}
}

// routeBySeq routes ABDRead{Seq} to shard Seq % n, everything else to 0.
func routeBySeq(n int) func(wire.Message) int {
	return func(m wire.Message) int {
		if r, ok := m.(wire.ABDRead); ok {
			return int(r.Seq) % n
		}
		return 0
	}
}

func setupSharded(t *testing.T, shards int) (*simnet.Network, transport.Endpoint, *ShardedRunner, []*shardEcho) {
	t.Helper()
	n, err := simnet.New([]types.ProcID{types.WriterID(), types.ServerID(0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	cli, err := n.Endpoint(types.WriterID())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := n.Endpoint(types.ServerID(0))
	if err != nil {
		t.Fatal(err)
	}
	autos := make([]*shardEcho, shards)
	as := make([]Automaton, shards)
	for i := range autos {
		autos[i] = &shardEcho{shard: i}
		as[i] = autos[i]
	}
	r := NewShardedRunner(srv, as, routeBySeq(shards))
	return n, cli, r, autos
}

func TestShardedRunnerRoutesToOwningShard(t *testing.T) {
	_, cli, r, autos := setupSharded(t, 4)
	r.Start()
	r.Start() // idempotent
	defer r.Stop()

	const msgs = 40
	for i := 0; i < msgs; i++ {
		if err := cli.Send(types.ServerID(0), wire.ABDRead{Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	perShard := make(map[int64]int)
	for i := 0; i < msgs; i++ {
		env := recvOrFail(t, cli)
		ack, ok := env.Msg.(wire.ABDReadAck)
		if !ok {
			t.Fatalf("reply = %T, want ABDReadAck", env.Msg)
		}
		perShard[ack.Seq]++
	}
	for s := int64(0); s < 4; s++ {
		if perShard[s] != msgs/4 {
			t.Errorf("shard %d handled %d messages, want %d", s, perShard[s], msgs/4)
		}
	}
	r.Stop() // quiesce before reading automaton state
	total := 0
	for _, a := range autos {
		total += a.steps
	}
	if total != msgs {
		t.Errorf("automata stepped %d times, want %d", total, msgs)
	}
	if got := r.Steps(); got != msgs {
		t.Errorf("Steps() = %d, want %d", got, msgs)
	}
}

func TestShardedRunnerCrashStopsAllShards(t *testing.T) {
	_, cli, r, _ := setupSharded(t, 4)
	r.Start()
	if err := cli.Send(types.ServerID(0), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	recvOrFail(t, cli)
	r.Crash()
	r.Crash() // idempotent
	for i := 0; i < 4; i++ {
		if err := cli.Send(types.ServerID(0), wire.ABDRead{Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case env := <-cli.Recv():
		t.Fatalf("crashed server replied: %+v", env)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestShardedRunnerCrashAfterStepsExact floods every shard concurrently
// and checks the pool processes exactly n more messages: the step
// budget is an atomic ticket, not a per-shard approximation.
func TestShardedRunnerCrashAfterStepsExact(t *testing.T) {
	_, cli, r, _ := setupSharded(t, 8)
	r.Start()
	defer r.Stop()
	const budget = 25
	r.CrashAfterSteps(budget)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = cli.Send(types.ServerID(0), wire.ABDRead{Seq: int64(g*20 + i)})
			}
		}(g)
	}
	wg.Wait()

	replies := 0
	for {
		select {
		case _, ok := <-cli.Recv():
			if !ok {
				t.Fatal("client inbox closed")
			}
			replies++
			if replies > budget {
				t.Fatalf("got %d replies, budget was %d", replies, budget)
			}
		case <-time.After(300 * time.Millisecond):
			if replies != budget {
				t.Fatalf("got %d replies, want exactly %d", replies, budget)
			}
			if got := r.Steps(); got != budget {
				t.Errorf("Steps() = %d, want %d", got, budget)
			}
			return
		}
	}
}

func TestShardedRunnerCrashBeforeStart(t *testing.T) {
	_, cli, r, _ := setupSharded(t, 2)
	done := make(chan struct{})
	go func() {
		r.Crash()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Crash on a never-started sharded runner hung")
	}
	r.Start() // must be a no-op
	if err := cli.Send(types.ServerID(0), wire.ABDRead{Seq: 0}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-cli.Recv():
		t.Fatalf("crashed-before-start server replied: %+v", env)
	case <-time.After(100 * time.Millisecond):
	}
	r.Stop() // still idempotent
}

// idleEndpoint is an endpoint nothing ever arrives on, for runners that
// are never started.
type idleEndpoint struct{ ch chan wire.Envelope }

func (idleEndpoint) ID() types.ProcID                      { return types.ServerID(0) }
func (idleEndpoint) Send(types.ProcID, wire.Message) error { return nil }
func (e idleEndpoint) Recv() <-chan wire.Envelope          { return e.ch }
func (idleEndpoint) Close() error                          { return nil }

// TestShardedRunnerCrashBeforeStartJoinsQueues verifies a crashed,
// never-started runner leaves no goroutines behind: the per-shard queue
// drainers must be closed by Crash when the Start path never runs.
func TestShardedRunnerCrashBeforeStartJoinsQueues(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		autos := make([]Automaton, 8)
		for j := range autos {
			autos[j] = &shardEcho{shard: j}
		}
		r := NewShardedRunner(idleEndpoint{ch: make(chan wire.Envelope)}, autos, routeBySeq(8))
		r.Crash()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	// 10 runners × 8 shards would leak 80 drainers; allow slack for
	// unrelated runtime goroutines.
	if got := runtime.NumGoroutine(); got > before+5 {
		t.Errorf("goroutines grew %d → %d: crash-before-start leaks shard queues", before, got)
	}
}

func TestShardedRunnerExitsWhenEndpointCloses(t *testing.T) {
	n, _, r, _ := setupSharded(t, 2)
	r.Start()
	n.Close()
	done := make(chan struct{})
	go func() {
		r.Stop() // must return promptly: dispatcher saw the closed channel
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sharded runner did not exit after endpoint close")
	}
}

func TestShardedRunnerOutOfRangeRouteClamps(t *testing.T) {
	n, err := simnet.New([]types.ProcID{types.WriterID(), types.ServerID(0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	cli, _ := n.Endpoint(types.WriterID())
	srv, _ := n.Endpoint(types.ServerID(0))
	a := &shardEcho{shard: 7}
	r := NewShardedRunner(srv, []Automaton{a}, func(wire.Message) int { return 99 })
	r.Start()
	defer r.Stop()
	if err := cli.Send(types.ServerID(0), wire.ABDRead{Seq: 3}); err != nil {
		t.Fatal(err)
	}
	env := recvOrFail(t, cli)
	if ack := env.Msg.(wire.ABDReadAck); ack.Seq != 7 {
		t.Errorf("reply came from shard-tagged ack %d, want 7 (shard 0 clamped)", ack.Seq)
	}
}
