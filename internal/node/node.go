// Package node runs server automata: it pumps messages from an
// endpoint's inbox into a pure step function and sends the produced
// replies. Separating the (deterministic, synchronous) automaton from
// its (concurrent) driver keeps protocol logic unit-testable and makes
// crash injection trivial — crashing a server is stopping its pump.
package node

import (
	"sync"
	"sync/atomic"

	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// Automaton is a deterministic message-driven state machine: one step
// consumes a message and yields the messages to send. Implementations
// are not required to be concurrency-safe; the Runner serializes steps.
type Automaton interface {
	Step(from types.ProcID, m wire.Message) []transport.Outgoing
}

// AppendStepper is the allocation-free variant of Automaton's step: the
// caller passes a reusable output buffer and the automaton appends its
// replies instead of allocating a fresh slice per message.
//
// Buffer ownership (the step-sink contract, DESIGN.md §5): the caller
// owns the backing array and may reuse it as soon as it has finished
// with the returned slice; the callee must not retain the slice (or any
// subslice) past the call. The message *values* appended are handed off
// for good — they travel through mailboxes and sockets — so a callee
// must never append a message it plans to mutate later.
type AppendStepper interface {
	StepAppend(from types.ProcID, m wire.Message, out []transport.Outgoing) []transport.Outgoing
}

// StepInto drives one step through the append-based API when a
// implements it, falling back to Step and copying its result. Every
// driver (Runner, ShardedRunner, StepPool, tcpnet's serve loops) steps
// through this helper, so an automaton only has to implement
// AppendStepper to put its whole deployment on the zero-allocation
// path.
func StepInto(a Automaton, from types.ProcID, m wire.Message, out []transport.Outgoing) []transport.Outgoing {
	if as, ok := a.(AppendStepper); ok {
		return as.StepAppend(from, m, out)
	}
	return append(out, a.Step(from, m)...)
}

// Process is the lifecycle surface every runner flavor shares. It lets
// a deployment hold heterogeneous runners — a ShardedRunner for a keyed
// server, a plain Runner after a chaos schedule swapped in a Byzantine
// behavior — behind one crash/stop interface.
type Process interface {
	Start()
	Crash()
	Stop()
	CrashAfterSteps(n int)
	Steps() int64
}

var (
	_ Process = (*Runner)(nil)
	_ Process = (*ShardedRunner)(nil)
)

// Runner drives one automaton from one endpoint.
type Runner struct {
	ep transport.Endpoint
	a  Automaton

	steps      atomic.Int64
	crashAfter atomic.Int64 // crash once steps reaches this value; <0 means never

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewRunner creates a runner for the automaton a attached to ep. The
// runner does not start pumping until Start is called.
func NewRunner(ep transport.Endpoint, a Automaton) *Runner {
	r := &Runner{
		ep:   ep,
		a:    a,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	r.crashAfter.Store(-1)
	return r
}

// Start launches the pump goroutine. Calling Start more than once, or
// after Crash, is a no-op.
func (r *Runner) Start() {
	r.startOnce.Do(func() { go r.run() })
}

// Crash stops the process immediately, as a crash failure: messages
// already queued but not yet stepped are never processed, matching the
// model where a crashed process takes no further steps. Crash is
// idempotent and safe to call concurrently; it waits for the pump to
// exit. Crashing a runner that was never started marks it permanently
// stopped (an initially crashed server).
func (r *Runner) Crash() {
	r.stopOnce.Do(func() { close(r.stop) })
	// If Start never ran, consume the once so the pump can no longer
	// launch, and close done ourselves; if Start ran first, this is a
	// no-op and the pump closes done on exit.
	r.startOnce.Do(func() { close(r.done) })
	<-r.done
}

// CrashAfterSteps schedules a crash after n further automaton steps.
// The process handles exactly n more messages and then stops — used to
// script failures "in the middle" of an operation.
func (r *Runner) CrashAfterSteps(n int) {
	r.crashAfter.Store(r.steps.Load() + int64(n))
}

// Steps reports the number of messages processed so far.
func (r *Runner) Steps() int64 { return r.steps.Load() }

// Stop is an alias of Crash: in this model a graceful shutdown and a
// crash are indistinguishable to the rest of the system.
func (r *Runner) Stop() { r.Crash() }

func (r *Runner) run() {
	defer close(r.done)
	// scratch is the pump's reusable step-output buffer: one backing
	// array for the runner's lifetime instead of one slice per message
	// (see the AppendStepper ownership contract).
	var scratch []transport.Outgoing
	for {
		select {
		case <-r.stop:
			return
		case env, ok := <-r.ep.Recv():
			if !ok {
				return
			}
			// A crash scheduled for this step point takes effect before
			// the message is processed.
			if ca := r.crashAfter.Load(); ca >= 0 && r.steps.Load() >= ca {
				r.stopOnce.Do(func() { close(r.stop) })
				return
			}
			scratch = StepInto(r.a, env.From, env.Msg, scratch[:0])
			r.steps.Add(1)
			// Best effort: the network may be shutting down underneath a
			// still-running server; a correct server has nothing better
			// to do with a send error than keep serving.
			_ = transport.SendAll(r.ep, scratch)
		}
	}
}
