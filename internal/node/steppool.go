package node

import (
	"sync"

	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// stepQueueDepth bounds each shard's job queue. A full queue blocks
// Submit — backpressure on whoever feeds the pool (e.g. a TCP read
// loop, which then stops reading its socket) instead of unbounded
// memory growth under overload.
const stepQueueDepth = 256

// poolJob is one queued automaton step plus the callback that receives
// its output — or, when do is set, an arbitrary closure run with
// exclusive ownership of the shard automaton (see Do).
type poolJob struct {
	from types.ProcID
	msg  wire.Message
	sink func([]transport.Outgoing)
	do   func(Automaton)
}

// StepPool drives shard automata from explicit submissions, the
// synchronous sibling of ShardedRunner: where the runner pumps an
// endpoint and sends the outputs back through it, the pool lets a
// caller submit individual steps and collect each step's output through
// a per-submission callback. One worker goroutine owns each shard
// exclusively, so shard automata (e.g. keyed.ShardedServer's unlocked
// per-shard maps) need no locking, and independent shards step in
// parallel.
//
// The sink callback runs on the shard's worker goroutine and therefore
// must not block; a blocking sink stalls every key on that shard. The
// slice handed to the sink is the worker's reusable scratch buffer
// (the step-sink contract, DESIGN.md §5): it is valid only for the
// duration of the callback, so a sink that needs the replies later
// must copy the message values out (the values themselves are safe to
// retain — only the slice is reused).
type StepPool struct {
	shards []Automaton
	route  func(wire.Message) int
	queues []chan poolJob

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewStepPool creates a pool stepping the shard automata and starts one
// worker per shard. route maps a message to a shard index (out-of-range
// results are clamped into [0, len(shards))); it must be pure so every
// message for one key lands on one shard.
func NewStepPool(shards []Automaton, route func(wire.Message) int) *StepPool {
	if len(shards) == 0 {
		panic("node: step pool needs at least one shard")
	}
	p := &StepPool{
		shards: shards,
		route:  route,
		queues: make([]chan poolJob, len(shards)),
		stop:   make(chan struct{}),
	}
	for i := range p.queues {
		p.queues[i] = make(chan poolJob, stepQueueDepth)
	}
	p.wg.Add(len(shards))
	for i := range shards {
		go p.work(i)
	}
	return p
}

// Submit queues one step on the message's shard and returns true, or
// returns false if the pool is closed (the sink will never be called).
// Submit blocks while the shard's queue is full. A true return means
// the job was queued, not that it will run: Close drops queued jobs,
// so a caller waiting on a sink must also watch its own shutdown
// signal (as tcpnet's write pump does).
func (p *StepPool) Submit(from types.ProcID, m wire.Message, sink func([]transport.Outgoing)) bool {
	i := p.route(m)
	if i < 0 || i >= len(p.queues) {
		i = 0
	}
	select {
	case <-p.stop:
		return false
	case p.queues[i] <- poolJob{from: from, msg: m, sink: sink}:
		return true
	}
}

// Do runs fn on shard i's worker goroutine with exclusive ownership of
// that shard's automaton — the race-free way to inspect (or mutate)
// live shard state without stopping the pool; the admin API's
// /debug/stamps walks shards this way. Do blocks until fn has run and
// returns true, or returns false without running fn if the pool is
// closed (or closes while the job is queued). fn must not block on the
// pool itself: its shard steps nothing until fn returns.
func (p *StepPool) Do(i int, fn func(Automaton)) bool {
	if i < 0 || i >= len(p.queues) {
		return false
	}
	done := make(chan struct{})
	job := poolJob{do: func(a Automaton) {
		defer close(done)
		fn(a)
	}}
	select {
	case <-p.stop:
		return false
	case p.queues[i] <- job:
	}
	select {
	case <-done:
		return true
	case <-p.stop:
		// Close may have dropped the queued job; it may also already be
		// running. Either way the worker exits without stepping further,
		// so waiting on done could hang — report failure.
		return false
	}
}

// NumShards reports the pool's shard count.
func (p *StepPool) NumShards() int { return len(p.queues) }

// QueueLen reports the number of jobs queued on shard i — the live
// backpressure signal the admin metrics export per shard.
func (p *StepPool) QueueLen(i int) int {
	if i < 0 || i >= len(p.queues) {
		return 0
	}
	return len(p.queues[i])
}

// Close stops every worker and waits for them to exit. Jobs queued but
// not yet stepped are dropped — to a client this is indistinguishable
// from the server crashing with those messages in flight, which the
// protocols tolerate. Close is idempotent.
func (p *StepPool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// work is shard i's worker: the only goroutine ever stepping shards[i],
// and the exclusive owner of the scratch buffer its sinks see.
func (p *StepPool) work(i int) {
	defer p.wg.Done()
	var scratch []transport.Outgoing
	for {
		select {
		case <-p.stop:
			return
		case job := <-p.queues[i]:
			if job.do != nil {
				job.do(p.shards[i])
				continue
			}
			scratch = StepInto(p.shards[i], job.from, job.msg, scratch[:0])
			if job.sink != nil {
				job.sink(scratch)
			}
		}
	}
}
