package node

import (
	"sync"
	"sync/atomic"

	"luckystore/internal/transport"
	"luckystore/internal/wire"
)

// ShardedRunner drives a set of shard automata from one endpoint with a
// pool of worker goroutines: a dispatcher routes each inbound envelope
// to the shard the route function names, and that shard's worker — the
// only goroutine ever stepping that automaton — processes it. Because
// shard ownership is exclusive, shard automata need no locking of their
// own, and no lock is shared between shards on the hot path (each
// shard's queue has its own, uncontended, internal mutex).
//
// The runner presents the same crash interface as Runner, applied to
// the whole pool: Crash stops the process (all shards at once —
// machines fail, not shards), CrashAfterSteps counts automaton steps
// across every shard, and Steps reports the pool-wide total. Step
// budgets are enforced with an atomic ticket, so "handle exactly n more
// messages, then stop" holds even under concurrent workers.
type ShardedRunner struct {
	ep     transport.Endpoint
	shards []Automaton
	route  func(wire.Message) int
	queues []*transport.Mailbox

	steps      atomic.Int64
	crashAfter atomic.Int64 // crash once steps reaches this value; <0 means never

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewShardedRunner creates a runner pumping ep into the shard automata.
// route maps a message to a shard index (out-of-range results are
// clamped into [0, len(shards))); it must be pure so every message for
// one key lands on one shard. The runner does not start until Start.
func NewShardedRunner(ep transport.Endpoint, shards []Automaton, route func(wire.Message) int) *ShardedRunner {
	if len(shards) == 0 {
		panic("node: sharded runner needs at least one shard")
	}
	r := &ShardedRunner{
		ep:     ep,
		shards: shards,
		route:  route,
		queues: make([]*transport.Mailbox, len(shards)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i := range r.queues {
		r.queues[i] = transport.NewMailbox()
	}
	r.crashAfter.Store(-1)
	return r
}

// Start launches the dispatcher and one worker per shard. Calling Start
// more than once, or after Crash, is a no-op.
func (r *ShardedRunner) Start() {
	r.startOnce.Do(func() {
		var wg sync.WaitGroup
		wg.Add(1 + len(r.shards))
		go func() {
			defer wg.Done()
			r.dispatch()
		}()
		for i := range r.shards {
			go func(i int) {
				defer wg.Done()
				r.work(i)
			}(i)
		}
		go func() {
			wg.Wait()
			// Joining the queues' drainer goroutines after every worker
			// has exited: no goroutine outlives the runner.
			for _, q := range r.queues {
				q.Close()
			}
			close(r.done)
		}()
	})
}

// Crash stops the process immediately, as a crash failure: messages
// queued on any shard but not yet stepped are never processed. Crash is
// idempotent, safe to call concurrently, and waits for every pump
// goroutine to exit. Crashing a runner that was never started marks it
// permanently stopped.
func (r *ShardedRunner) Crash() {
	r.stopOnce.Do(func() { close(r.stop) })
	// If Start never ran, consume the once so the pumps can no longer
	// launch; the queues' drainer goroutines must be joined here since
	// the Start path that normally closes them will never run.
	r.startOnce.Do(func() {
		for _, q := range r.queues {
			q.Close()
		}
		close(r.done)
	})
	<-r.done
}

// CrashAfterSteps schedules a crash after n further automaton steps,
// counted across all shards: the pool reserves step tickets atomically,
// handles exactly n more messages, and stops.
func (r *ShardedRunner) CrashAfterSteps(n int) {
	r.crashAfter.Store(r.steps.Load() + int64(n))
}

// Steps reports the number of messages processed so far across all
// shards.
func (r *ShardedRunner) Steps() int64 { return r.steps.Load() }

// QueueLen reports the total number of envelopes queued across every
// shard mailbox but not yet stepped — the live backpressure signal the
// admin metrics export per server.
func (r *ShardedRunner) QueueLen() int {
	n := 0
	for _, q := range r.queues {
		n += q.Len()
	}
	return n
}

// Stop is an alias of Crash: in this model a graceful shutdown and a
// crash are indistinguishable to the rest of the system.
func (r *ShardedRunner) Stop() { r.Crash() }

// dispatch routes inbound envelopes to shard queues. Queues are
// unbounded, so a slow shard never blocks the dispatcher (or starves
// the other shards).
func (r *ShardedRunner) dispatch() {
	for {
		select {
		case <-r.stop:
			return
		case env, ok := <-r.ep.Recv():
			if !ok {
				r.stopOnce.Do(func() { close(r.stop) })
				return
			}
			i := r.route(env.Msg)
			if i < 0 || i >= len(r.queues) {
				i = 0
			}
			_ = r.queues[i].Put(env)
		}
	}
}

// work is shard i's pump: it owns r.shards[i] exclusively, including
// the worker-local step-output buffer reused across its steps.
func (r *ShardedRunner) work(i int) {
	var scratch []transport.Outgoing
	for {
		select {
		case <-r.stop:
			return
		case env, ok := <-r.queues[i].Out():
			if !ok {
				return
			}
			if !r.reserveStep() {
				return
			}
			scratch = StepInto(r.shards[i], env.From, env.Msg, scratch[:0])
			// Best effort: the network may be shutting down underneath a
			// still-running server; a correct server has nothing better
			// to do with a send error than keep serving.
			_ = transport.SendAll(r.ep, scratch)
		}
	}
}

// reserveStep claims one step ticket, or triggers the scheduled crash
// and reports false if the budget is exhausted. The CAS loop makes the
// budget exact across concurrent workers: each ticket admits one
// message, the (n+1)-th reservation crashes the pool instead.
func (r *ShardedRunner) reserveStep() bool {
	for {
		s := r.steps.Load()
		if ca := r.crashAfter.Load(); ca >= 0 && s >= ca {
			r.stopOnce.Do(func() { close(r.stop) })
			return false
		}
		if r.steps.CompareAndSwap(s, s+1) {
			return true
		}
	}
}
