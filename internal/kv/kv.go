// Package kv is the multi-register layer: a key-value store in which
// every key is an independent atomic register of the lucky protocol,
// multiplexed over one set of 2t+b+1 servers via internal/keyed. Each
// key keeps the full per-register guarantees — atomicity, wait-freedom,
// one-round lucky operations — and atomicity composes across keys
// (linearizable objects are locally composable).
//
// By default each key is SWMR: one Store owns the writer role for every
// key; readers are per-process handles. Multi-writer deployments open
// contending stores with distinct writer identities (WithContenders +
// OpenContender, or WithWriterID over TCP): every store may then Put
// any key, with per-key atomicity across stores provided by the
// composite 〈seq, writer〉 stamps and the writers' stamp-query round.
//
// The engine is sharded and pipelined: every server runs its per-key
// automata across a pool of shard workers (node.ShardedRunner over
// keyed.ShardedServer), so no global lock serializes independent keys,
// and client endpoints coalesce concurrent outbound messages into
// wire.Batch frames. Blocking Put/Get stay the simple interface;
// PutAsync/GetAsync/PutBatch/GetBatch expose the pipeline directly.
package kv

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/keyed"
	"luckystore/internal/metrics"
	"luckystore/internal/node"
	"luckystore/internal/simnet"
	"luckystore/internal/storage"
	"luckystore/internal/transport"
	"luckystore/internal/types"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = transport.ErrClosed

// DefaultShards is the per-server shard count used when WithShards is
// not given: one worker per CPU, capped — past the cap, scheduling
// overhead outweighs parallelism for register-sized work.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// Option configures Open (and, for the client-identity options,
// OpenWithEndpoints).
type Option func(*openOptions)

type openOptions struct {
	shards     int
	simOpts    []simnet.Option
	contenders int
	writerID   types.ProcID
	readerBase int
	store      storage.Provider
	metrics    *metrics.Registry
}

// WithShards sets the number of shard workers each server runs its
// per-key automata on. Values below 1 mean DefaultShards.
func WithShards(n int) Option {
	return func(o *openOptions) { o.shards = n }
}

// WithSimOptions forwards options to the in-memory network Open builds.
func WithSimOptions(opts ...simnet.Option) Option {
	return func(o *openOptions) { o.simOpts = append(o.simOpts, opts...) }
}

// WithContenders pre-registers n additional writer identities
// ("w1" … "wn") plus their reader id blocks on the store's network, so
// that up to n contending Stores can later be opened on the same
// keyspace with OpenContender. The identities must exist at Open time
// because the in-memory network's process set is fixed at construction.
// If cfg.Writers is below 1+n it is raised to match, putting every
// writer — the primary included — in multi-writer mode (stamp query
// round per Put).
func WithContenders(n int) Option {
	return func(o *openOptions) { o.contenders = n }
}

// WithWriterID sets the writer identity the store binds stamps under
// (default types.WriterID(), the canonical writer "w"). TCP contender
// clients use this with OpenWithEndpoints after dialing under the same
// identity.
func WithWriterID(id types.ProcID) Option {
	return func(o *openOptions) { o.writerID = id }
}

// WithStorage gives every server a durable backend from the provider
// (one per server, named by server identity). Every shard of a server
// writes through the shared backend before acknowledging — the file
// backend's group commit batches the shards' concurrent fsyncs — and
// RestartServer rebuilds the whole keyed state by replaying the
// backend instead of trusting what the dead process left in memory.
// The provider's factory must produce keyed automata (e.g.
// kv.NewServerAutomaton) so compaction and recovery route wire.Keyed
// records correctly.
func WithStorage(p storage.Provider) Option {
	return func(o *openOptions) { o.store = p }
}

// WithMetrics threads live instrumentation through every layer of the
// store into reg: per-key-class Put/Get latency at the API boundary,
// core writer/reader rounds and path counters (core.Metrics), server
// message counters, per-server queue depths, send-side coalescer batch
// widths, and — with WithStorage — WAL append/fsync latency and
// group-commit batch sizes. The hot path stays allocation-free
// (DESIGN.md §13); without this option every hook is a single nil
// pointer test.
func WithMetrics(reg *metrics.Registry) Option {
	return func(o *openOptions) { o.metrics = reg }
}

// WithReaderBase offsets the store's reader identities: local reader
// idx speaks as types.ReaderID(base+idx). Contending stores need
// disjoint reader ids — servers key the freezing machinery by reader
// process id, so two clients sharing "r0" would corrupt each other's
// slow reads.
func WithReaderBase(base int) Option {
	return func(o *openOptions) { o.readerBase = base }
}

// Store is a running multi-register deployment plus its clients.
//
// Handle lookup is lock-free on the hot path: the per-key writer and
// reader handles live in sync.Maps, so concurrent Put/Get on existing
// keys never contend on a store-wide lock (the old mu serialized every
// operation's handle fetch). openMu serializes only the cold path —
// opening a demux endpoint for a key's first operation — and closed is
// an atomic flag checked there; operations racing Close are cut off by
// their endpoints closing under them, which surfaces ErrClosed.
type Store struct {
	cfg        core.Config
	shards     int
	net        transport.Network
	sim        *simnet.Network
	contenders int                    // contender identities pre-registered at Open
	writerID   types.ProcID           // identity this store's writers bind stamps under
	readerBase int                    // local reader idx speaks as ReaderID(readerBase+idx)
	runners    []node.Process         // per-server pumps (sharded, or plain after a swap)
	srvs       []*keyed.ShardedServer // per-server keyed state, retained for warm restarts

	store    storage.Provider
	backends []storage.Backend // per server; nil when not durable

	met       *StoreMetrics        // nil when uninstrumented
	srvMet    *core.ServerMetrics  // shared by every server automaton
	durMet    *storage.DurableMetrics
	runnersMu sync.RWMutex // guards runners[i] replacement vs gauge reads

	writerDemux  *keyed.Demux
	readerDemuxs []*keyed.Demux

	writers sync.Map   // key string → *writerHandle
	readers []sync.Map // per reader client: key string → *readerHandle

	// adopted is the writer-identity map: contending stores attached
	// with AdoptContender, index k−1 holding identity "wk". It turns
	// this store into a single façade over every writer identity of its
	// cluster (PutAs/PutMetaAs), which is how fleet layers
	// (internal/router) route multi-writer traffic without tracking
	// contender stores themselves. Populated at assembly time, before
	// the store is shared — never mutated concurrently with operations.
	adopted []*Store

	openMu sync.Mutex // cold path: first-use handle creation
	closed atomic.Bool

	closeOnce sync.Once
}

// writerHandle serializes per-key writes (one writer per register, one
// operation at a time) while allowing different keys to write
// concurrently.
type writerHandle struct {
	mu sync.Mutex
	w  *core.Writer
}

// readerHandle serializes one reader client's operations per key.
type readerHandle struct {
	mu sync.Mutex
	r  *core.Reader
}

// Open builds and starts a store for cfg on an in-memory network.
func Open(cfg core.Config, opts ...Option) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := openOptions{shards: DefaultShards()}
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards < 1 {
		o.shards = DefaultShards()
	}
	if o.contenders < 0 {
		return nil, fmt.Errorf("kv: contenders = %d must be non-negative", o.contenders)
	}
	if o.contenders > 0 && cfg.Writers < o.contenders+1 {
		cfg.Writers = o.contenders + 1 // every writer must run the MW query round
	}
	ids := append(types.ServerIDs(cfg.S()), types.WriterIDs(o.contenders+1)...)
	ids = append(ids, types.ReaderIDs((o.contenders+1)*cfg.NumReaders)...)
	sim, err := simnet.New(ids, o.simOpts...)
	if err != nil {
		return nil, err
	}
	if o.metrics != nil {
		cfg.Metrics = core.NewMetrics(o.metrics)
	}
	st := &Store{
		cfg:        cfg,
		shards:     o.shards,
		net:        sim,
		sim:        sim,
		contenders: o.contenders,
		writerID:   types.WriterID(),
		readers:    make([]sync.Map, cfg.NumReaders),
		store:      o.store,
	}
	if o.metrics != nil {
		st.met = newStoreMetrics(o.metrics)
		st.srvMet = core.NewServerMetrics(o.metrics)
		st.durMet = storage.NewDurableMetrics(o.metrics)
	}
	for i := 0; i < cfg.S(); i++ {
		ep, err := sim.Endpoint(types.ServerID(i))
		if err != nil {
			st.Close()
			return nil, err
		}
		srv := st.newServer()
		var back storage.Backend
		if st.store != nil {
			back, err = st.openAndRecover(i, srv)
			if err != nil {
				st.Close()
				return nil, fmt.Errorf("kv server %d storage: %w", i, err)
			}
		}
		r := node.NewShardedRunner(ep, st.durableShards(srv, back, i), srv.Route())
		st.srvs = append(st.srvs, srv)
		st.backends = append(st.backends, back)
		st.runners = append(st.runners, r)
		r.Start()
	}
	if st.met != nil {
		for i := range st.runners {
			idx := i
			st.met.reg.GaugeFunc("lucky_kv_server_queue_depth",
				"Envelopes queued on a server's shard mailboxes, not yet stepped.",
				func() int64 {
					st.runnersMu.RLock()
					r := st.runners[idx]
					st.runnersMu.RUnlock()
					if q, ok := r.(interface{ QueueLen() int }); ok {
						return int64(q.QueueLen())
					}
					return 0
				}, metrics.L("server", string(types.ServerID(idx))))
		}
	}
	wep, err := sim.Endpoint(types.WriterID())
	if err != nil {
		st.Close()
		return nil, err
	}
	st.writerDemux = keyed.NewDemux(st.newCoalescer(wep, "writer"))
	for i := 0; i < cfg.NumReaders; i++ {
		rep, err := sim.Endpoint(types.ReaderID(i))
		if err != nil {
			st.Close()
			return nil, err
		}
		st.readerDemuxs = append(st.readerDemuxs, keyed.NewDemux(st.newCoalescer(rep, "reader")))
	}
	return st, nil
}

// newServer builds one sharded keyed server whose per-register
// automata share the store's server metrics (nil when uninstrumented —
// the hooks are no-ops).
func (s *Store) newServer() *keyed.ShardedServer {
	sm := s.srvMet
	return keyed.NewShardedServer(s.shards, func() node.Automaton {
		srv := core.NewServer()
		srv.SetMetrics(sm)
		return srv
	})
}

// newCoalescer wraps ep in a send-side coalescer, instrumented under
// the given role label when the store carries metrics.
func (s *Store) newCoalescer(ep transport.Endpoint, role string) *transport.Coalescer {
	c := transport.NewCoalescer(ep)
	if s.met != nil {
		c.SetMetrics(transport.NewCoalescerMetrics(s.met.reg, role))
	}
	return c
}

// NewServerAutomaton returns the keyed server automaton a KV server
// process runs when its driver steps it from a single goroutine (e.g.
// tcpnet.Listen, which serializes steps per server): one core register
// per key. Sharded deployments use keyed.NewShardedServer with
// node.NewShardedRunner instead, which is what Open assembles.
func NewServerAutomaton() node.Automaton {
	return keyed.NewServer(func() node.Automaton { return core.NewServer() })
}

// NewShardedServerAutomaton returns the sharded keyed server a KV
// server process runs when its driver steps shards in parallel (e.g.
// tcpnet.ListenSharded, or node.NewShardedRunner as Open assembles):
// per-register core automata split across n shards, routed by key.
// Values below 1 mean DefaultShards.
func NewShardedServerAutomaton(n int) *keyed.ShardedServer {
	if n < 1 {
		n = DefaultShards()
	}
	return keyed.NewShardedServer(n, func() node.Automaton { return core.NewServer() })
}

// NewShardedServerAutomatonInstrumented is NewShardedServerAutomaton
// with every register automaton sharing sm (nil is allowed and leaves
// the hooks disabled) — the path an instrumented TCP server process
// takes (luckystore.ListenTCPKV with metrics).
func NewShardedServerAutomatonInstrumented(n int, sm *core.ServerMetrics) *keyed.ShardedServer {
	if n < 1 {
		n = DefaultShards()
	}
	return keyed.NewShardedServer(n, func() node.Automaton {
		srv := core.NewServer()
		srv.SetMetrics(sm)
		return srv
	})
}

// MetricsRegistry extracts the registry carried by a WithMetrics option
// in opts, nil if none. Transport assemblers (luckystore.OpenKVTCP)
// use it to instrument the endpoints they dial before handing them to
// OpenWithEndpoints.
func MetricsRegistry(opts ...Option) *metrics.Registry {
	var o openOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o.metrics
}

// NewStorageAutomaton returns the automaton storage backends rebuild
// state into during compaction and recovery: a serialized keyed server
// of core registers that can snapshot itself. Pass it as the factory
// of storage.NewMemProvider / storage.NewDirProvider when opening a
// store (or TCP server) with durable storage.
func NewStorageAutomaton() storage.Automaton {
	return keyed.NewServer(func() node.Automaton { return core.NewServer() })
}

// OpenWithEndpoints builds a client-side store over externally provided
// endpoints (e.g. tcpnet clients dialed to a remote cluster): one
// writer endpoint and one endpoint per reader client. The store takes
// ownership of the endpoints and closes them on Close; the servers are
// managed externally. Outbound traffic on every endpoint is coalesced
// into wire.Batch frames under concurrent multi-key load.
//
// A contending client gives its store a distinct identity with
// WithWriterID and WithReaderBase — the endpoints must have been dialed
// under the matching process ids, and cfg.Writers must cover every
// contender so Puts run the multi-writer stamp query.
func OpenWithEndpoints(cfg core.Config, writerEP transport.Endpoint, readerEPs []transport.Endpoint, opts ...Option) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var o openOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.writerID == "" {
		o.writerID = types.WriterID()
	}
	if !o.writerID.IsWriter() {
		return nil, fmt.Errorf("kv: %q is not a writer id", o.writerID)
	}
	if o.readerBase < 0 {
		return nil, fmt.Errorf("kv: reader base = %d must be non-negative", o.readerBase)
	}
	if o.metrics != nil {
		cfg.Metrics = core.NewMetrics(o.metrics)
	}
	st := &Store{
		cfg:        cfg,
		writerID:   o.writerID,
		readerBase: o.readerBase,
		readers:    make([]sync.Map, len(readerEPs)),
	}
	if o.metrics != nil {
		st.met = newStoreMetrics(o.metrics)
	}
	st.writerDemux = keyed.NewDemux(st.newCoalescer(writerEP, "writer"))
	for _, rep := range readerEPs {
		st.readerDemuxs = append(st.readerDemuxs, keyed.NewDemux(st.newCoalescer(rep, "reader")))
	}
	return st, nil
}

// OpenContender opens the k-th contending store (1 ≤ k ≤ the count
// given to WithContenders) on this store's network: a client-only
// Store whose writers bind stamps as "wk" and whose readers occupy the
// k-th reader id block. Both stores Put and Get the same keys — the
// same registers — concurrently; per-key atomicity across them is the
// multi-writer protocol's job. The contender owns its endpoints and
// must be Closed independently; it cannot crash or restart servers.
func (s *Store) OpenContender(k int) (*Store, error) {
	if s.sim == nil {
		return nil, fmt.Errorf("kv: contenders need the store that owns the network (Open)")
	}
	if k < 1 || k > s.contenders {
		return nil, fmt.Errorf("kv: contender %d out of range [1,%d] (pass WithContenders to Open)", k, s.contenders)
	}
	wep, err := s.sim.Endpoint(types.WriterIDN(k))
	if err != nil {
		return nil, fmt.Errorf("kv contender %d: %w", k, err)
	}
	readerEPs := make([]transport.Endpoint, s.cfg.NumReaders)
	for j := range readerEPs {
		rep, err := s.sim.Endpoint(types.ReaderID(k*s.cfg.NumReaders + j))
		if err != nil {
			return nil, fmt.Errorf("kv contender %d reader %d: %w", k, j, err)
		}
		readerEPs[j] = rep
	}
	copts := []Option{WithWriterID(types.WriterIDN(k)), WithReaderBase(k * s.cfg.NumReaders)}
	if s.met != nil {
		// Contender traffic lands in the same registry: the admin surface
		// sees the whole fleet, not just the primary identity.
		copts = append(copts, WithMetrics(s.met.reg))
	}
	return OpenWithEndpoints(s.cfg, wep, readerEPs, copts...)
}

// AdoptContender attaches a contending store — OpenContender's result,
// or a TCP client store dialed under a contender identity — to this
// store as its next writer identity, transferring ownership: Close
// closes adopted stores too. Contenders must be adopted in identity
// order ("w1", "w2", …); the store checks and refuses mismatches, so a
// fleet assembled out of order fails loudly at build time rather than
// binding stamps under the wrong identity. Adopt before sharing the
// store across goroutines — adoption is assembly, not an operation.
func (s *Store) AdoptContender(c *Store) error {
	k := len(s.adopted) + 1
	if want := types.WriterIDN(k); c.writerID != want {
		return fmt.Errorf("kv: adopting store with writer id %q as identity %d (want %q)", c.writerID, k, want)
	}
	s.adopted = append(s.adopted, c)
	return nil
}

// NumWriters reports the writer identities reachable through this
// store: itself plus every adopted contender.
func (s *Store) NumWriters() int { return 1 + len(s.adopted) }

// PutAs writes value under key through writer identity w: 0 is this
// store's own writer (identical to Put), w ≥ 1 the w-th adopted
// contender. Distinct identities may Put the same key concurrently —
// per-key atomicity across them is the multi-writer protocol's job.
func (s *Store) PutAs(w int, key string, value types.Value) error {
	st, err := s.writerStore(w)
	if err != nil {
		return err
	}
	return st.Put(key, value)
}

// PutMetaAs returns the metadata of writer identity w's last Put on
// key (see PutMeta).
func (s *Store) PutMetaAs(w int, key string) (core.WriteMeta, error) {
	st, err := s.writerStore(w)
	if err != nil {
		return core.WriteMeta{}, err
	}
	return st.PutMeta(key)
}

// writerStore resolves writer identity w to its backing store.
func (s *Store) writerStore(w int) (*Store, error) {
	if w == 0 {
		return s, nil
	}
	if w < 1 || w > len(s.adopted) {
		return nil, fmt.Errorf("kv: writer identity %d out of range [0,%d] (AdoptContender)", w, len(s.adopted))
	}
	return s.adopted[w-1], nil
}

// Config returns the store's configuration.
func (s *Store) Config() core.Config { return s.cfg }

// Shards reports the per-server shard worker count, or 0 when the
// servers are managed externally (OpenWithEndpoints): their sharding is
// not this store's to know.
func (s *Store) Shards() int { return s.shards }

// Put writes value under key. Puts to different keys may run
// concurrently; puts to one key are serialized (SWMR per register).
func (s *Store) Put(key string, value types.Value) error {
	h, err := s.writerFor(key)
	if err != nil {
		return err
	}
	var t0 time.Time
	if s.met != nil {
		t0 = time.Now()
	}
	h.mu.Lock()
	err = h.w.Write(value)
	h.mu.Unlock()
	if err == nil {
		s.met.observePut(key, t0)
	}
	return err
}

// PutMeta returns the write metadata of the last Put on key (only
// meaningful after a successful Put). A key never Put returns the zero
// meta: inspecting metadata is a pure lookup and allocates no writer
// state for the key.
func (s *Store) PutMeta(key string) (core.WriteMeta, error) {
	v, ok := s.writers.Load(key)
	if !ok {
		return core.WriteMeta{}, nil
	}
	h := v.(*writerHandle)
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.w.LastMeta(), nil
}

// ForwardPut installs an exact 〈ts, value〉 pair under key: the
// rebalance handoff primitive (internal/router). Unlike Put, which
// binds the next timestamp, ForwardPut replays a pair read from
// another cluster at its original timestamp, so the checker's per-key
// timestamp order is preserved across a migration. A pair at or below
// the key's current write timestamp is skipped (the handoff already
// happened, or a newer write landed here first); a bottom pair means
// the key was never written and there is nothing to carry over.
func (s *Store) ForwardPut(key string, last types.Tagged) error {
	if last.IsBottom() {
		return nil
	}
	h, err := s.writerFor(key)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.w.WriteAt(last)
}

// Flush blocks until every outbound message of every key — writer and
// all readers — has been handed to the underlying transport, giving
// callers a deterministic drain point (the router flushes a cluster's
// store before retiring it at a rebalance boundary).
func (s *Store) Flush() error {
	err := s.writerDemux.Flush()
	for _, d := range s.readerDemuxs {
		if e := d.Flush(); err == nil {
			err = e
		}
	}
	return err
}

// Get reads key through reader client idx. A key never written returns
// the initial pair 〈0,⊥〉.
func (s *Store) Get(idx int, key string) (types.Tagged, error) {
	h, err := s.readerFor(idx, key)
	if err != nil {
		return types.Tagged{}, err
	}
	var t0 time.Time
	if s.met != nil {
		t0 = time.Now()
	}
	h.mu.Lock()
	v, err := h.r.Read()
	h.mu.Unlock()
	if err == nil {
		s.met.observeGet(key, t0)
	}
	return v, err
}

// GetMeta returns the read metadata of reader idx's last Get on key. A
// key the reader never Got returns the zero meta: like PutMeta, a pure
// lookup that opens no endpoint for the key.
func (s *Store) GetMeta(idx int, key string) (core.ReadMeta, error) {
	if idx < 0 || idx >= len(s.readerDemuxs) {
		return core.ReadMeta{}, fmt.Errorf("kv: reader index %d out of range [0,%d)", idx, len(s.readerDemuxs))
	}
	v, ok := s.readers[idx].Load(key)
	if !ok {
		return core.ReadMeta{}, nil
	}
	h := v.(*readerHandle)
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.r.LastMeta(), nil
}

// PutFuture is a pending asynchronous Put.
type PutFuture struct {
	done chan struct{}
	meta core.WriteMeta
	err  error
}

// Done returns a channel closed when the put has completed.
func (f *PutFuture) Done() <-chan struct{} { return f.done }

// Wait blocks until the put completes and returns its error.
func (f *PutFuture) Wait() error {
	<-f.done
	return f.err
}

// Meta blocks until the put completes and returns its write metadata
// (only meaningful when Wait returns nil).
func (f *PutFuture) Meta() core.WriteMeta {
	<-f.done
	return f.meta
}

// GetFuture is a pending asynchronous Get.
type GetFuture struct {
	done chan struct{}
	val  types.Tagged
	err  error
}

// Done returns a channel closed when the get has completed.
func (f *GetFuture) Done() <-chan struct{} { return f.done }

// Wait blocks until the get completes and returns its result.
func (f *GetFuture) Wait() (types.Tagged, error) {
	<-f.done
	return f.val, f.err
}

// PutAsync starts a Put and returns immediately with its future.
// Concurrent async puts to one key serialize in an unspecified order
// (the register stays SWMR); puts to different keys run concurrently,
// their outbound messages sharing wire.Batch frames.
func (s *Store) PutAsync(key string, value types.Value) *PutFuture {
	f := &PutFuture{done: make(chan struct{})}
	h, err := s.writerFor(key)
	if err != nil {
		f.err = err
		close(f.done)
		return f
	}
	var t0 time.Time
	if s.met != nil {
		t0 = time.Now()
	}
	go func() {
		defer close(f.done)
		h.mu.Lock()
		defer h.mu.Unlock()
		f.err = h.w.Write(value)
		f.meta = h.w.LastMeta()
		if f.err == nil {
			s.met.observeAsyncPut(t0)
		}
	}()
	return f
}

// GetAsync starts a Get through reader idx and returns immediately with
// its future.
func (s *Store) GetAsync(idx int, key string) *GetFuture {
	f := &GetFuture{done: make(chan struct{})}
	h, err := s.readerFor(idx, key)
	if err != nil {
		f.err = err
		close(f.done)
		return f
	}
	var t0 time.Time
	if s.met != nil {
		t0 = time.Now()
	}
	go func() {
		defer close(f.done)
		h.mu.Lock()
		defer h.mu.Unlock()
		f.val, f.err = h.r.Read()
		if f.err == nil {
			s.met.observeAsyncGet(t0)
		}
	}()
	return f
}

// PutBatch writes every entry of puts concurrently, coalescing the
// fan-out into batched frames, and returns once all writes completed —
// nil only if every one succeeded (errors.Join of the failures
// otherwise). Each key individually keeps its atomic-register
// guarantees; a batch is not a transaction and offers no cross-key
// atomicity.
func (s *Store) PutBatch(puts map[string]types.Value) error {
	futures := make([]*PutFuture, 0, len(puts))
	for key, value := range puts {
		futures = append(futures, s.PutAsync(key, value))
	}
	var errs []error
	for _, f := range futures {
		if err := f.Wait(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// GetBatch reads every key through reader idx concurrently and returns
// the values by key. Keys never written map to the initial pair 〈0,⊥〉.
// On failures it returns the successful subset together with an
// errors.Join of the failures.
func (s *Store) GetBatch(idx int, keys []string) (map[string]types.Tagged, error) {
	futures := make([]*GetFuture, len(keys))
	for i, key := range keys {
		futures[i] = s.GetAsync(idx, key)
	}
	out := make(map[string]types.Tagged, len(keys))
	var errs []error
	for i, f := range futures {
		v, err := f.Wait()
		if err != nil {
			errs = append(errs, fmt.Errorf("get %q: %w", keys[i], err))
			continue
		}
		out[keys[i]] = v
	}
	return out, errors.Join(errs...)
}

// CrashServer crash-stops server i (all registers and shards on it at
// once — machines fail, not registers).
func (s *Store) CrashServer(i int) { s.runners[i].Crash() }

// RestartServer restarts server i after a crash — crash-recovery with
// stable storage, so the server is merely slow, not faulty, in the
// model's terms. With a WithStorage backend a fresh keyed server is
// rebuilt by replaying the server's WAL (the in-memory state died with
// the process); without one the server object is simply kept, which
// models stable storage only for in-process crashes. Only valid on a
// store that owns its servers (Open); stores over external endpoints
// return an error.
//
// Restart methods are for use by one coordinating goroutine (a chaos
// schedule); they do not synchronize with each other.
func (s *Store) RestartServer(i int) error {
	srv, err := s.serverFor(i)
	if err != nil {
		return err
	}
	back := s.backends[i]
	if back != nil {
		srv = s.newServer()
		if _, err := storage.Recover(back, srv); err != nil {
			return fmt.Errorf("kv restart server %d: %w", i, err)
		}
		s.srvs[i] = srv
	}
	return s.restart(i, func(ep transport.Endpoint) node.Process {
		return node.NewShardedRunner(ep, s.durableShards(srv, back, i), srv.Route())
	})
}

// RestartServerFresh restarts server i with empty register state AND a
// wiped backend — a crash-recovery with NO stable storage, the only
// amnesiac path. An amnesiac server answers protocol-correctly from
// initial state, which the model can only classify as Byzantine;
// schedules must count fresh restarts against b.
func (s *Store) RestartServerFresh(i int) error {
	if _, err := s.serverFor(i); err != nil {
		return err
	}
	back := s.backends[i]
	if back != nil {
		if err := back.Wipe(); err != nil {
			return fmt.Errorf("kv fresh-restart server %d: %w", i, err)
		}
	}
	srv := s.newServer()
	s.srvs[i] = srv
	return s.restart(i, func(ep transport.Endpoint) node.Process {
		return node.NewShardedRunner(ep, s.durableShards(srv, back, i), srv.Route())
	})
}

// SwapServerAutomaton crash-stops server i and brings it back running
// the given automaton on a plain (serialized) pump — the hook chaos
// schedules use to turn a server Byzantine mid-run. For KV traffic the
// automaton should understand wire.Keyed (see fault.Keyed).
func (s *Store) SwapServerAutomaton(i int, a node.Automaton) error {
	if _, err := s.serverFor(i); err != nil {
		return err
	}
	return s.restart(i, func(ep transport.Endpoint) node.Process {
		return node.NewRunner(ep, a)
	})
}

// openAndRecover opens server i's backend and replays whatever it
// already holds into srv — nothing on a fresh provider, the pre-crash
// keyed state on a reopened data directory. Replay routes through
// ShardedServer.Step before the shard workers start, so no locking.
func (s *Store) openAndRecover(i int, srv *keyed.ShardedServer) (storage.Backend, error) {
	back, err := s.store.Open(string(types.ServerID(i)))
	if err != nil {
		return nil, err
	}
	if s.met != nil {
		// Instrument the backend when it supports it (the file backend,
		// possibly under a fault wrapper that forwards the method).
		if fb, ok := back.(interface{ SetMetrics(*storage.FileMetrics) }); ok {
			fb.SetMetrics(storage.NewFileMetrics(s.met.reg))
		}
	}
	if _, err := storage.Recover(back, srv); err != nil {
		back.Close()
		return nil, err
	}
	return back, nil
}

// durableShards returns the automata the shard workers step: the bare
// shards when back is nil, or each shard wrapped in a storage.Durable
// sharing the server's one backend — their records land in a single
// ordered log and their commits share group fsyncs.
func (s *Store) durableShards(srv *keyed.ShardedServer, back storage.Backend, i int) []node.Automaton {
	shards := srv.Shards()
	if back == nil {
		return shards
	}
	out := make([]node.Automaton, len(shards))
	for j, sh := range shards {
		d := storage.NewDurable(sh, back, types.ServerID(i))
		d.SetMetrics(s.durMet)
		out[j] = d
	}
	return out
}

// ServerBackend returns server i's storage backend, nil when the store
// runs without WithStorage. Chaos deployments use it to arm injected
// disk faults.
func (s *Store) ServerBackend(i int) storage.Backend { return s.backends[i] }

func (s *Store) serverFor(i int) (*keyed.ShardedServer, error) {
	if s.sim == nil {
		return nil, fmt.Errorf("kv: store does not own its servers")
	}
	if i < 0 || i >= len(s.runners) {
		return nil, fmt.Errorf("kv: server %d out of range [0,%d)", i, len(s.runners))
	}
	return s.srvs[i], nil
}

func (s *Store) restart(i int, build func(transport.Endpoint) node.Process) error {
	s.runners[i].Crash() // idempotent; joins the old pump
	ep, err := s.sim.Endpoint(types.ServerID(i))
	if err != nil {
		return fmt.Errorf("kv restart server %d: %w", i, err)
	}
	r := build(ep)
	s.runnersMu.Lock()
	s.runners[i] = r
	s.runnersMu.Unlock()
	r.Start()
	return nil
}

// Sim returns the underlying simulated network.
func (s *Store) Sim() *simnet.Network { return s.sim }

// Close stops every server and client, joining all goroutines. It is
// idempotent and safe to call concurrently; every call returns only
// once teardown has completed. Operations in flight when Close runs
// (including PutAsync/GetAsync futures) complete with ErrClosed — their
// endpoints close under them — and operations started after Close fail
// fast with ErrClosed.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		if s.writerDemux != nil {
			_ = s.writerDemux.Close()
		}
		for _, d := range s.readerDemuxs {
			_ = d.Close()
		}
		if s.net != nil {
			_ = s.net.Close()
		}
		for _, r := range s.runners {
			r.Stop()
		}
		for _, b := range s.backends {
			if b != nil {
				_ = b.Close()
			}
		}
		for _, c := range s.adopted {
			c.Close()
		}
	})
}

// writerFor returns key's writer handle. The hot path is one lock-free
// sync.Map load; only a key's first Put takes the cold path below.
func (s *Store) writerFor(key string) (*writerHandle, error) {
	if v, ok := s.writers.Load(key); ok {
		return v.(*writerHandle), nil
	}
	s.openMu.Lock()
	defer s.openMu.Unlock()
	if s.closed.Load() {
		return nil, fmt.Errorf("kv writer for %q: %w", key, ErrClosed)
	}
	if v, ok := s.writers.Load(key); ok {
		return v.(*writerHandle), nil // lost the open race; reuse the winner
	}
	ep, err := s.writerDemux.Open(key)
	if err != nil {
		return nil, fmt.Errorf("kv writer for %q: %w", key, err)
	}
	h := &writerHandle{w: core.NewWriter(s.cfg, s.writerID, ep)}
	s.writers.Store(key, h)
	return h, nil
}

// readerFor returns reader idx's handle for key, lock-free once the
// handle exists (see writerFor).
func (s *Store) readerFor(idx int, key string) (*readerHandle, error) {
	if idx < 0 || idx >= len(s.readerDemuxs) {
		return nil, fmt.Errorf("kv: reader index %d out of range [0,%d)", idx, len(s.readerDemuxs))
	}
	if v, ok := s.readers[idx].Load(key); ok {
		return v.(*readerHandle), nil
	}
	s.openMu.Lock()
	defer s.openMu.Unlock()
	if s.closed.Load() {
		return nil, fmt.Errorf("kv reader %d for %q: %w", idx, key, ErrClosed)
	}
	if v, ok := s.readers[idx].Load(key); ok {
		return v.(*readerHandle), nil
	}
	ep, err := s.readerDemuxs[idx].Open(key)
	if err != nil {
		return nil, fmt.Errorf("kv reader %d for %q: %w", idx, key, err)
	}
	h := &readerHandle{r: core.NewReader(s.cfg, types.ReaderID(s.readerBase+idx), ep)}
	s.readers[idx].Store(key, h)
	return h, nil
}
