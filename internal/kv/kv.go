// Package kv is the multi-register layer: a key-value store in which
// every key is an independent SWMR atomic register of the lucky
// protocol, multiplexed over one set of 2t+b+1 servers via
// internal/keyed. Each key keeps the full per-register guarantees —
// atomicity, wait-freedom, one-round lucky operations — and atomicity
// composes across keys (linearizable objects are locally composable).
//
// The SWMR constraint carries over per key: a single Store owns the
// writer role for every key; readers are per-process handles.
package kv

import (
	"fmt"
	"sync"

	"luckystore/internal/core"
	"luckystore/internal/keyed"
	"luckystore/internal/node"
	"luckystore/internal/simnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
)

// Store is a running multi-register deployment plus its clients.
type Store struct {
	cfg     core.Config
	net     transport.Network
	sim     *simnet.Network
	runners []*node.Runner

	writerDemux  *keyed.Demux
	readerDemuxs []*keyed.Demux

	mu      sync.Mutex
	writers map[string]*writerHandle
	readers map[int]map[string]*readerHandle
}

// writerHandle serializes per-key writes (one writer per register, one
// operation at a time) while allowing different keys to write
// concurrently.
type writerHandle struct {
	mu sync.Mutex
	w  *core.Writer
}

// readerHandle serializes one reader client's operations per key.
type readerHandle struct {
	mu sync.Mutex
	r  *core.Reader
}

// Open builds and starts a store for cfg on an in-memory network.
func Open(cfg core.Config, simOpts ...simnet.Option) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ids := append(types.ServerIDs(cfg.S()), types.WriterID())
	ids = append(ids, types.ReaderIDs(cfg.NumReaders)...)
	sim, err := simnet.New(ids, simOpts...)
	if err != nil {
		return nil, err
	}
	st := &Store{
		cfg:     cfg,
		net:     sim,
		sim:     sim,
		writers: make(map[string]*writerHandle),
		readers: make(map[int]map[string]*readerHandle),
	}
	for i := 0; i < cfg.S(); i++ {
		ep, err := sim.Endpoint(types.ServerID(i))
		if err != nil {
			st.Close()
			return nil, err
		}
		srv := keyed.NewServer(func() node.Automaton { return core.NewServer() })
		r := node.NewRunner(ep, srv)
		st.runners = append(st.runners, r)
		r.Start()
	}
	wep, err := sim.Endpoint(types.WriterID())
	if err != nil {
		st.Close()
		return nil, err
	}
	st.writerDemux = keyed.NewDemux(wep)
	for i := 0; i < cfg.NumReaders; i++ {
		rep, err := sim.Endpoint(types.ReaderID(i))
		if err != nil {
			st.Close()
			return nil, err
		}
		st.readerDemuxs = append(st.readerDemuxs, keyed.NewDemux(rep))
		st.readers[i] = make(map[string]*readerHandle)
	}
	return st, nil
}

// NewServerAutomaton returns the keyed server automaton a KV server
// process runs: one core register per key. Use it with tcpnet.Listen
// (or luckystore.ListenTCPKV) to host the store's server side.
func NewServerAutomaton() node.Automaton {
	return keyed.NewServer(func() node.Automaton { return core.NewServer() })
}

// OpenWithEndpoints builds a client-side store over externally provided
// endpoints (e.g. tcpnet clients dialed to a remote cluster): one
// writer endpoint and one endpoint per reader client. The store takes
// ownership of the endpoints and closes them on Close; the servers are
// managed externally.
func OpenWithEndpoints(cfg core.Config, writerEP transport.Endpoint, readerEPs []transport.Endpoint) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := &Store{
		cfg:         cfg,
		writerDemux: keyed.NewDemux(writerEP),
		writers:     make(map[string]*writerHandle),
		readers:     make(map[int]map[string]*readerHandle),
	}
	for i, rep := range readerEPs {
		st.readerDemuxs = append(st.readerDemuxs, keyed.NewDemux(rep))
		st.readers[i] = make(map[string]*readerHandle)
	}
	return st, nil
}

// Config returns the store's configuration.
func (s *Store) Config() core.Config { return s.cfg }

// Put writes value under key. Puts to different keys may run
// concurrently; puts to one key are serialized (SWMR per register).
func (s *Store) Put(key string, value types.Value) error {
	h, err := s.writerFor(key)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.w.Write(value)
}

// PutMeta returns the write metadata of the last Put on key (only
// meaningful after a successful Put).
func (s *Store) PutMeta(key string) (core.WriteMeta, error) {
	h, err := s.writerFor(key)
	if err != nil {
		return core.WriteMeta{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.w.LastMeta(), nil
}

// Get reads key through reader client idx. A key never written returns
// the initial pair 〈0,⊥〉.
func (s *Store) Get(idx int, key string) (types.Tagged, error) {
	h, err := s.readerFor(idx, key)
	if err != nil {
		return types.Tagged{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.r.Read()
}

// GetMeta returns the read metadata of reader idx's last Get on key.
func (s *Store) GetMeta(idx int, key string) (core.ReadMeta, error) {
	h, err := s.readerFor(idx, key)
	if err != nil {
		return core.ReadMeta{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.r.LastMeta(), nil
}

// CrashServer crash-stops server i (all registers on it at once —
// machines fail, not registers).
func (s *Store) CrashServer(i int) { s.runners[i].Crash() }

// Sim returns the underlying simulated network.
func (s *Store) Sim() *simnet.Network { return s.sim }

// Close stops every server and client, joining all goroutines.
func (s *Store) Close() {
	if s.writerDemux != nil {
		_ = s.writerDemux.Close()
	}
	for _, d := range s.readerDemuxs {
		_ = d.Close()
	}
	if s.net != nil {
		_ = s.net.Close()
	}
	for _, r := range s.runners {
		r.Stop()
	}
}

func (s *Store) writerFor(key string) (*writerHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.writers[key]; ok {
		return h, nil
	}
	ep, err := s.writerDemux.Open(key)
	if err != nil {
		return nil, fmt.Errorf("kv writer for %q: %w", key, err)
	}
	h := &writerHandle{w: core.NewWriter(s.cfg, ep)}
	s.writers[key] = h
	return h, nil
}

func (s *Store) readerFor(idx int, key string) (*readerHandle, error) {
	if idx < 0 || idx >= len(s.readerDemuxs) {
		return nil, fmt.Errorf("kv: reader index %d out of range [0,%d)", idx, len(s.readerDemuxs))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.readers[idx][key]; ok {
		return h, nil
	}
	ep, err := s.readerDemuxs[idx].Open(key)
	if err != nil {
		return nil, fmt.Errorf("kv reader %d for %q: %w", idx, key, err)
	}
	h := &readerHandle{r: core.NewReader(s.cfg, types.ReaderID(idx), ep)}
	s.readers[idx][key] = h
	return h, nil
}
