package kv

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/core"
	"luckystore/internal/types"
)

// TestShardedStoreAtomicUnderCrashes floods one sharded server set with
// concurrent multi-key traffic — a writer goroutine and two reader
// goroutines per key — while two servers (t = 2) crash mid-run, and
// then verifies every key's history against the paper's atomicity
// definition. Run with -race this doubles as the engine's data-race
// certification: client handles, shard workers, demux pumps and the
// coalescer all interleave here.
func TestShardedStoreAtomicUnderCrashes(t *testing.T) {
	cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 2,
		RoundTimeout: 15 * time.Millisecond}
	st, err := Open(cfg, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const keys = 10
	const writesPerKey = 12

	recorders := make([]*checker.Recorder, keys)
	for k := range recorders {
		recorders[k] = checker.NewRecorder()
	}

	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		rec := recorders[k]

		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= writesPerKey; i++ {
				val := types.Value(fmt.Sprintf("v%d", i))
				invoke := time.Now()
				err := st.Put(key, val)
				rec.Add(checker.Op{
					Client: types.WriterID(),
					Kind:   checker.KindWrite,
					// The single writer assigns timestamps 1,2,3,… per
					// register, so write i carries timestamp i.
					Value:  types.Tagged{TS: types.TS(i), Val: val},
					Invoke: invoke,
					Return: time.Now(),
					Err:    err,
				})
				if err != nil {
					t.Errorf("put %s #%d: %v", key, i, err)
					return
				}
			}
		}()

		for r := 0; r < cfg.NumReaders; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; i < writesPerKey; i++ {
					invoke := time.Now()
					got, err := st.Get(r, key)
					rec.Add(checker.Op{
						Client: types.ReaderID(r),
						Kind:   checker.KindRead,
						Value:  got,
						Invoke: invoke,
						Return: time.Now(),
						Err:    err,
					})
					if err != nil {
						t.Errorf("get %s via r%d: %v", key, r, err)
						return
					}
				}
			}(r)
		}
	}

	// Crash t servers while the traffic is in flight: first within fw
	// (writes stay fast), then the second (slow paths, still live).
	time.Sleep(5 * time.Millisecond)
	st.CrashServer(0)
	time.Sleep(5 * time.Millisecond)
	st.CrashServer(1)

	wg.Wait()

	for k := 0; k < keys; k++ {
		if vs := checker.CheckAtomicity(recorders[k].Ops()); len(vs) != 0 {
			t.Errorf("key-%d atomicity violations: %v", k, vs)
		}
	}

	// Every key still readable after the run, final value intact.
	for k := 0; k < keys; k++ {
		got, err := st.Get(0, fmt.Sprintf("key-%d", k))
		if err != nil {
			t.Fatal(err)
		}
		want := types.Tagged{TS: writesPerKey, Val: types.Value(fmt.Sprintf("v%d", writesPerKey))}
		if got != want {
			t.Errorf("key-%d final = %+v, want %+v", k, got, want)
		}
	}
}
