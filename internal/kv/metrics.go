package kv

import (
	"time"

	"luckystore/internal/metrics"
)

// StoreMetrics instruments a store end to end: per-key-class Put/Get
// latency at the blocking API boundary, async-future latency
// (submit→done, scheduling and handle serialization included), and —
// wired in by Open — the coalescer, core client, core server, and
// per-server queue-depth instruments sharing the same registry. A nil
// *StoreMetrics disables everything at the cost of one pointer test.
type StoreMetrics struct {
	reg *metrics.Registry

	putLatency [metrics.NumKeyClasses]*metrics.Histogram
	getLatency [metrics.NumKeyClasses]*metrics.Histogram
	asyncPut   *metrics.Histogram
	asyncGet   *metrics.Histogram
}

// newStoreMetrics wires the store-level instruments into reg.
func newStoreMetrics(reg *metrics.Registry) *StoreMetrics {
	m := &StoreMetrics{reg: reg}
	for c := 0; c < metrics.NumKeyClasses; c++ {
		l := metrics.L("class", metrics.KeyClassLabels[c])
		m.putLatency[c] = reg.Histogram("lucky_kv_put_latency_ns",
			"Blocking Put latency by key class, nanoseconds.", l)
		m.getLatency[c] = reg.Histogram("lucky_kv_get_latency_ns",
			"Blocking Get latency by key class, nanoseconds.", l)
	}
	m.asyncPut = reg.Histogram("lucky_kv_async_put_latency_ns",
		"PutAsync submit-to-done latency, nanoseconds.")
	m.asyncGet = reg.Histogram("lucky_kv_async_get_latency_ns",
		"GetAsync submit-to-done latency, nanoseconds.")
	return m
}

// Registry returns the registry the store's instruments live in (nil
// on an uninstrumented store) — what luckyd hands to the admin
// listener's /metrics.
func (s *Store) Registry() *metrics.Registry {
	if s.met == nil {
		return nil
	}
	return s.met.reg
}

func (m *StoreMetrics) observePut(key string, t0 time.Time) {
	if m == nil {
		return
	}
	m.putLatency[metrics.KeyClass(key)].ObserveSince(t0)
}

func (m *StoreMetrics) observeGet(key string, t0 time.Time) {
	if m == nil {
		return
	}
	m.getLatency[metrics.KeyClass(key)].ObserveSince(t0)
}

func (m *StoreMetrics) observeAsyncPut(t0 time.Time) {
	if m == nil {
		return
	}
	m.asyncPut.ObserveSince(t0)
}

func (m *StoreMetrics) observeAsyncGet(t0 time.Time) {
	if m == nil {
		return
	}
	m.asyncGet.ObserveSince(t0)
}
