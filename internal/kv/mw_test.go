package kv

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/types"
)

func mwKVConfig() core.Config {
	return core.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 10 * time.Millisecond}
}

// Two stores with distinct writer identities Put the same key
// concurrently: every write binds a distinct stamp, and a Get through
// either store returns the value bound at the highest stamp.
func TestContendingStoresSameKey(t *testing.T) {
	st, err := Open(mwKVConfig(), WithContenders(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Config().Writers; got != 2 {
		t.Fatalf("WithContenders(1) left Writers = %d, want 2", got)
	}
	ct, err := st.OpenContender(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	const key, perStore = "hot", 8
	stores := []*Store{st, ct}
	stamps := make([][]types.Stamp, len(stores))
	var wg sync.WaitGroup
	for i, s := range stores {
		wg.Add(1)
		go func(i int, s *Store) {
			defer wg.Done()
			for k := 0; k < perStore; k++ {
				if err := s.Put(key, types.Value(fmt.Sprintf("s%d-%d", i, k))); err != nil {
					t.Errorf("store %d put %d: %v", i, k, err)
					return
				}
				m, err := s.PutMeta(key)
				if err != nil {
					t.Errorf("store %d meta %d: %v", i, k, err)
					return
				}
				stamps[i] = append(stamps[i], m.Stamp())
			}
		}(i, s)
	}
	wg.Wait()

	written := make(map[types.Stamp]types.Value)
	var maxSt types.Stamp
	for i, ss := range stamps {
		for k, s := range ss {
			if s.Writer != types.WID(i) {
				t.Errorf("store %d bound writer component %d", i, s.Writer)
			}
			if _, dup := written[s]; dup {
				t.Fatalf("stamp %v bound by two stores", s)
			}
			written[s] = types.Value(fmt.Sprintf("s%d-%d", i, k))
			if maxSt.Less(s) {
				maxSt = s
			}
		}
	}

	for i, s := range stores {
		got, err := s.Get(0, key)
		if err != nil {
			t.Fatalf("store %d get: %v", i, err)
		}
		if got.Stamp() != maxSt || got.Val != written[maxSt] {
			t.Errorf("store %d read %+v, want stamp %v value %q", i, got, maxSt, written[maxSt])
		}
	}
}

// Contending stores keep non-contended keys independent: each store's
// writes to its own key are unaffected by the other store's identity.
func TestContendersDisjointKeys(t *testing.T) {
	st, err := Open(mwKVConfig(), WithContenders(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	stores := []*Store{st}
	for k := 1; k <= 2; k++ {
		ct, err := st.OpenContender(k)
		if err != nil {
			t.Fatal(err)
		}
		defer ct.Close()
		stores = append(stores, ct)
	}
	for i, s := range stores {
		key := fmt.Sprintf("own-%d", i)
		if err := s.Put(key, types.Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		m, err := s.PutMeta(key)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Queried {
			t.Errorf("store %d skipped the MW query round", i)
		}
		if m.Stamp() != (types.Stamp{Seq: 1, Writer: types.WID(i)}) {
			t.Errorf("store %d stamp = %v", i, m.Stamp())
		}
		got, err := s.Get(0, key)
		if err != nil {
			t.Fatal(err)
		}
		if got.Val != types.Value(fmt.Sprintf("v%d", i)) {
			t.Errorf("store %d read %+v", i, got)
		}
	}
}

// OpenContender is guarded: out-of-range indices and stores that do not
// own a network are refused.
func TestOpenContenderValidation(t *testing.T) {
	st, err := Open(mwKVConfig(), WithContenders(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, k := range []int{0, -1, 2} {
		if _, err := st.OpenContender(k); err == nil {
			t.Errorf("OpenContender(%d) accepted", k)
		}
	}
	ct, err := st.OpenContender(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if _, err := ct.OpenContender(1); err == nil {
		t.Error("contender of a contender accepted")
	}
}
