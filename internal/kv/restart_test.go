package kv

// Crash-restart support on the sharded KV store: warm restarts revive
// the same keyed shard state, fresh restarts lose it, swaps install an
// arbitrary automaton (chaos Byzantine hook).

import (
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/fault"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func restartCfg() core.Config {
	return core.Config{T: 1, B: 0, Fw: 0, NumReaders: 1,
		RoundTimeout: 10 * time.Millisecond, OpTimeout: 3 * time.Second}
}

// With S=3 and t=1: crash s0, restart it, crash s1 — every operation
// now needs the restarted server in its quorum, so completion proves
// the restart worked and values prove the state survived.
func TestStoreRestartServerRevivesQuorumMember(t *testing.T) {
	st, err := Open(restartCfg(), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for _, k := range []string{"a", "b"} {
		if err := st.Put(k, "v1"); err != nil {
			t.Fatal(err)
		}
	}
	st.CrashServer(0)
	if err := st.Put("a", "v2"); err != nil {
		t.Fatalf("put with one crashed server: %v", err)
	}
	if err := st.RestartServer(0); err != nil {
		t.Fatal(err)
	}
	st.CrashServer(1)

	if err := st.Put("b", "v2"); err != nil {
		t.Fatalf("put needing the restarted server: %v", err)
	}
	for _, k := range []string{"a", "b"} {
		got, err := st.Get(0, k)
		if err != nil {
			t.Fatalf("get %q needing the restarted server: %v", k, err)
		}
		if got.Val != "v2" {
			t.Errorf("Get(%q) = %v, want v2", k, got)
		}
	}
}

func TestStoreRestartServerFreshAndSwap(t *testing.T) {
	st, err := Open(restartCfg(), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put("k", "v1"); err != nil {
		t.Fatal(err)
	}
	st.CrashServer(2)
	if err := st.RestartServerFresh(2); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k", "v2"); err != nil {
		t.Fatal(err)
	}
	if got, err := st.Get(0, "k"); err != nil || got.Val != "v2" {
		t.Fatalf("Get after fresh restart = %v, %v", got, err)
	}

	// Swap a server for a keyed mute liar: still within t=1 (b=0 — a
	// mute server is indistinguishable from a crashed one).
	if err := st.SwapServerAutomaton(1, fault.Keyed(fault.Mute())); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k", "v3"); err != nil {
		t.Fatalf("put with muted server: %v", err)
	}
	if got, err := st.Get(0, "k"); err != nil || got.Val != "v3" {
		t.Fatalf("Get with muted server = %v, %v", got, err)
	}

	if err := st.RestartServer(99); err == nil {
		t.Error("restart of out-of-range server succeeded")
	}
}

// Stores over external endpoints do not own servers: restart must
// refuse, not panic.
func TestExternalStoreRejectsRestart(t *testing.T) {
	cfg := restartCfg()
	st, err := OpenWithEndpoints(cfg, newNopEndpoint(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.RestartServer(0); err == nil {
		t.Error("external store accepted RestartServer")
	}
	if err := st.SwapServerAutomaton(0, fault.Mute()); err == nil {
		t.Error("external store accepted SwapServerAutomaton")
	}
}

// nopEndpoint is the minimal transport.Endpoint for construction-only
// tests; its inbox is already closed so pump goroutines exit at once.
type nopEndpoint struct{ ch chan wire.Envelope }

func newNopEndpoint() nopEndpoint {
	ch := make(chan wire.Envelope)
	close(ch)
	return nopEndpoint{ch: ch}
}

func (nopEndpoint) ID() types.ProcID                      { return types.WriterID() }
func (nopEndpoint) Send(types.ProcID, wire.Message) error { return nil }
func (e nopEndpoint) Recv() <-chan wire.Envelope          { return e.ch }
func (nopEndpoint) Close() error                          { return nil }
