package kv_test

import (
	"testing"

	"luckystore/internal/core"
	"luckystore/internal/kv"
	"luckystore/internal/storage"
	"luckystore/internal/types"
)

// TestStoreRestartRecoversFromBackend pins the durable KV path: with
// WithStorage, RestartServer rebuilds every key's register by
// replaying the server's WAL — whatever the restarted server knows, it
// learned from the log, across all shards sharing one backend.
func TestStoreRestartRecoversFromBackend(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, NumReaders: 1}
	prov := storage.NewMemProvider(kv.NewStorageAutomaton)
	s, err := kv.Open(cfg, kv.WithStorage(prov), kv.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for round, suffix := range []string{"-1", "-2"} {
		for _, k := range keys {
			if err := s.Put(k, types.Value(k+suffix)); err != nil {
				t.Fatalf("put round %d %q: %v", round, k, err)
			}
		}
	}

	for i := 0; i < cfg.S(); i++ {
		s.CrashServer(i)
		if err := s.RestartServer(i); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
	}

	for _, k := range keys {
		got, err := s.Get(0, k)
		if err != nil {
			t.Fatalf("get %q after restarts: %v", k, err)
		}
		if want := types.Value(k + "-2"); got.Val != want {
			t.Fatalf("get %q = %q after restarts, want %q", k, got.Val, want)
		}
	}
	if st := s.ServerBackend(0).Stats(); st.Records == 0 {
		t.Fatalf("backend recorded nothing")
	}
}

// TestStoreFreshRestartWipesBackend pins that RestartServerFresh is
// the only amnesiac path for a durable KV server.
func TestStoreFreshRestartWipesBackend(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, NumReaders: 1}
	prov := storage.NewMemProvider(kv.NewStorageAutomaton)
	s, err := kv.Open(cfg, kv.WithStorage(prov))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	s.CrashServer(2)
	if err := s.RestartServerFresh(2); err != nil {
		t.Fatal(err)
	}
	if st := s.ServerBackend(2).Stats(); st.Records != 0 {
		t.Fatalf("fresh restart left %d records in the backend", st.Records)
	}
}

// TestStoreFileBackedEndToEnd runs a disk-backed store on the real
// file WAL: write a few keys, crash+restart every server, read back.
func TestStoreFileBackedEndToEnd(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, NumReaders: 1}
	prov := storage.NewDirProvider(t.TempDir(), kv.NewStorageAutomaton)
	s, err := kv.Open(cfg, kv.WithStorage(prov), kv.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, k := range []string{"x", "y", "z"} {
		if err := s.Put(k, types.Value("durable-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < cfg.S(); i++ {
		s.CrashServer(i)
		if err := s.RestartServer(i); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
	}
	got, err := s.Get(0, "y")
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "durable-y" {
		t.Fatalf("get y = %q, want %q", got.Val, "durable-y")
	}
}
