//go:build !race

package kv

import (
	"testing"

	"luckystore/internal/core"
	"luckystore/internal/metrics"
)

// metricsExtraAllocBudget mirrors core's: a fully instrumented store —
// per-key-class latency histograms, per-server queue gauges, coalescer
// batch widths, core path counters — may add at most one allocation per
// operation over the uninstrumented engine contract.
const metricsExtraAllocBudget = 1

// TestMWFastPathPutAllocsInstrumented re-pins the engine-level MW
// contract with a live registry attached: the speculative Put must stay
// within kvMWAllocBudget plus the metrics margin.
func TestMWFastPathPutAllocsInstrumented(t *testing.T) {
	reg := metrics.NewRegistry()
	st, err := Open(core.Config{T: 1, B: 0, Fw: 0, NumReaders: 1},
		WithContenders(1), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const key = "hot"
	for i := 0; i < 64; i++ {
		if err := st.Put(key, "warm"); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		if err := st.Put(key, "steady-state-value"); err != nil {
			t.Fatal(err)
		}
	})
	m, err := st.PutMeta(key)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Fast || !m.Spec || m.Queried {
		t.Fatalf("measurement missed the speculative fast path: %+v", m)
	}
	if allocs > kvMWAllocBudget+metricsExtraAllocBudget+0.5 {
		t.Errorf("instrumented speculative MW Put: %.1f allocs/op, budget %d+%d",
			allocs, kvMWAllocBudget, metricsExtraAllocBudget)
	}

	// The contract is only meaningful if the telemetry actually
	// observed the traffic it rode along with.
	cls := metrics.KeyClass(key)
	if st.met.putLatency[cls].Count() < 300 {
		t.Fatalf("per-key-class put histogram did not move: %d", st.met.putLatency[cls].Count())
	}
}

// TestGetSteadyStateAllocsInstrumented pins the read side of the same
// contract on a plain store.
func TestGetSteadyStateAllocsInstrumented(t *testing.T) {
	reg := metrics.NewRegistry()
	st, err := Open(core.Config{T: 1, B: 0, Fw: 0, NumReaders: 1}, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const key = "hot"
	if err := st.Put(key, "stored"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := st.Get(0, key); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		if _, err := st.Get(0, key); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > kvMWAllocBudget+metricsExtraAllocBudget+0.5 {
		t.Errorf("instrumented Get: %.1f allocs/op, budget %d+%d",
			allocs, kvMWAllocBudget, metricsExtraAllocBudget)
	}
	cls := metrics.KeyClass(key)
	if st.met.getLatency[cls].Count() < 300 {
		t.Fatalf("per-key-class get histogram did not move: %d", st.met.getLatency[cls].Count())
	}
}
