//go:build !race

package kv

import (
	"testing"

	"luckystore/internal/core"
)

// kvMWAllocBudget is the engine-level allocation budget for a
// speculative multi-writer Put: the core contract (1 + S message
// boxings) plus the store's own hot path — per-key handle lookup and
// the write lock — which must stay allocation-free, leaving headroom
// for runtime noise only. Excluded under -race, whose instrumentation
// inflates counts.
const kvMWAllocBudget = 10

func TestMWFastPathPutAllocs(t *testing.T) {
	st, err := Open(core.Config{T: 1, B: 0, Fw: 0, NumReaders: 1},
		WithContenders(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const key = "hot"
	for i := 0; i < 64; i++ {
		if err := st.Put(key, "warm"); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		if err := st.Put(key, "steady-state-value"); err != nil {
			t.Fatal(err)
		}
	})
	m, err := st.PutMeta(key)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Fast || !m.Spec || m.Queried {
		t.Fatalf("measurement missed the speculative fast path: %+v", m)
	}
	if allocs > kvMWAllocBudget+0.5 {
		t.Errorf("speculative MW Put: %.1f allocs/op, budget %d", allocs, kvMWAllocBudget)
	}
}
