package kv

import (
	"errors"
	"sync"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/types"
)

func fixCfg() core.Config {
	return core.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 15 * time.Millisecond, OpTimeout: 10 * time.Second}
}

// TestMetaLookupDoesNotCreate is the regression test for
// PutMeta/GetMeta silently allocating a handle and opening a demux
// endpoint for a key that was never used: they must be pure lookups
// returning the zero meta.
func TestMetaLookupDoesNotCreate(t *testing.T) {
	st, err := Open(fixCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	pm, err := st.PutMeta("never-put")
	if err != nil {
		t.Fatal(err)
	}
	if pm != (core.WriteMeta{}) {
		t.Errorf("PutMeta on unused key = %+v, want zero meta", pm)
	}
	gm, err := st.GetMeta(0, "never-got")
	if err != nil {
		t.Fatal(err)
	}
	if gm.Rounds() != 0 {
		t.Errorf("GetMeta on unused key = %+v, want zero meta", gm)
	}
	nw, nr := 0, 0
	st.writers.Range(func(_, _ any) bool { nw++; return true })
	st.readers[0].Range(func(_, _ any) bool { nr++; return true })
	if nw != 0 || nr != 0 {
		t.Errorf("meta lookups allocated handles: %d writers, %d readers", nw, nr)
	}

	// Out-of-range reader index still errors.
	if _, err := st.GetMeta(5, "x"); err == nil {
		t.Error("GetMeta accepted an out-of-range reader index")
	}

	// After real operations, metadata flows as before.
	if err := st.Put("used", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(0, "used"); err != nil {
		t.Fatal(err)
	}
	pm, err = st.PutMeta("used")
	if err != nil {
		t.Fatal(err)
	}
	if pm.TS != 1 {
		t.Errorf("PutMeta after Put = %+v", pm)
	}
	gm, err = st.GetMeta(0, "used")
	if err != nil {
		t.Fatal(err)
	}
	if gm.Rounds() == 0 {
		t.Errorf("GetMeta after Get = %+v, want recorded rounds", gm)
	}
}

// TestCloseIdempotent is the regression test for Close not being
// idempotent: double Close (sequential and concurrent) must be safe,
// and operations after Close fail fast with ErrClosed.
func TestCloseIdempotent(t *testing.T) {
	st, err := Open(fixCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st.Close() // second close: no panic, no hang

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); st.Close() }()
	}
	wg.Wait()

	if err := st.Put("k", "v2"); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
	if _, err := st.Get(0, "k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after Close = %v, want ErrClosed", err)
	}
	if err := st.PutAsync("k", "v3").Wait(); !errors.Is(err, ErrClosed) {
		t.Errorf("PutAsync after Close = %v, want ErrClosed", err)
	}
	if _, err := st.GetAsync(0, "k").Wait(); !errors.Is(err, ErrClosed) {
		t.Errorf("GetAsync after Close = %v, want ErrClosed", err)
	}
}

// TestAsyncFuturesDrainOnClose pins async operations in flight by
// holding all their traffic, then closes the store: every future must
// complete with an error (their endpoints closed under them) instead of
// hanging, and Close itself must not deadlock on them.
func TestAsyncFuturesDrainOnClose(t *testing.T) {
	st, err := Open(fixCfg())
	if err != nil {
		t.Fatal(err)
	}

	// Strand the writer's and reader 0's outbound messages in transit.
	st.Sim().HoldAllFrom(types.WriterID())
	st.Sim().HoldAllFrom(types.ReaderID(0))

	var puts []*PutFuture
	var gets []*GetFuture
	for i := 0; i < 8; i++ {
		puts = append(puts, st.PutAsync("key", "stuck"))
		gets = append(gets, st.GetAsync(0, "key"))
	}
	time.Sleep(20 * time.Millisecond) // let the operations enter their wait loops

	closed := make(chan struct{})
	go func() { defer close(closed); st.Close() }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on in-flight async operations")
	}

	deadline := time.After(10 * time.Second)
	for i, f := range puts {
		select {
		case <-f.Done():
			if err := f.Wait(); err == nil {
				t.Errorf("put future %d succeeded on a closed store", i)
			}
		case <-deadline:
			t.Fatal("put future hung after Close")
		}
	}
	for i, f := range gets {
		select {
		case <-f.Done():
			if _, err := f.Wait(); err == nil {
				t.Errorf("get future %d succeeded on a closed store", i)
			}
		case <-deadline:
			t.Fatal("get future hung after Close")
		}
	}
}
