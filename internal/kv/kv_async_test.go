package kv

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/keyed"
	"luckystore/internal/node"
	"luckystore/internal/simnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func TestPutAsyncGetAsync(t *testing.T) {
	st := testStore(t)
	pf := st.PutAsync("k", "v1")
	if err := pf.Wait(); err != nil {
		t.Fatal(err)
	}
	if m := pf.Meta(); !m.Fast || m.TS != 1 {
		t.Errorf("async put meta = %+v, want fast ts=1", m)
	}
	gf := st.GetAsync(0, "k")
	got, err := gf.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 1, Val: "v1"}) {
		t.Errorf("async get = %v", got)
	}
	select {
	case <-gf.Done():
	default:
		t.Error("Done() not closed after Wait returned")
	}
}

func TestPutAsyncInvalidKeyResolvesImmediately(t *testing.T) {
	st := testStore(t)
	if err := st.PutAsync("", "v").Wait(); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := st.GetAsync(99, "k").Wait(); err == nil {
		t.Error("out-of-range reader accepted")
	}
}

func TestPutBatchAndGetBatch(t *testing.T) {
	st := testStore(t)
	puts := make(map[string]types.Value)
	keys := make([]string, 0, 16)
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("key-%d", i)
		puts[k] = types.Value(fmt.Sprintf("val-%d", i))
		keys = append(keys, k)
	}
	if err := st.PutBatch(puts); err != nil {
		t.Fatal(err)
	}
	got, err := st.GetBatch(0, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("GetBatch returned %d entries, want %d", len(got), len(keys))
	}
	for k, want := range puts {
		if got[k] != (types.Tagged{TS: 1, Val: want}) {
			t.Errorf("%s = %+v, want %q at ts 1", k, got[k], want)
		}
	}
}

func TestGetBatchUnwrittenKeysReturnBottom(t *testing.T) {
	st := testStore(t)
	got, err := st.GetBatch(1, []string{"nope-1", "nope-2"})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range got {
		if !v.IsBottom() {
			t.Errorf("%s = %+v, want ⊥", k, v)
		}
	}
}

func TestPutBatchReportsPartialFailures(t *testing.T) {
	st := testStore(t)
	err := st.PutBatch(map[string]types.Value{
		"good": "v",
		"":     "invalid-key",
	})
	if err == nil {
		t.Fatal("PutBatch with an invalid key reported success")
	}
	got, err := st.Get(0, "good")
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("good key = %+v, want the write applied despite sibling failure", got)
	}
}

// slowEndpoint delays every frame write and records the frames sent
// through it. Sitting between the store's coalescer and the network, it
// models a transport where frames cost real time — which is exactly
// when group commit must kick in: while the flusher is stuck in one
// Send, concurrent puts pile up and must leave as wire.Batch frames.
type slowEndpoint struct {
	transport.Endpoint
	mu     sync.Mutex
	frames []wire.Message
}

func (s *slowEndpoint) Send(to types.ProcID, m wire.Message) error {
	time.Sleep(time.Millisecond)
	s.mu.Lock()
	s.frames = append(s.frames, m)
	s.mu.Unlock()
	return s.Endpoint.Send(to, m)
}

// TestBatchTrafficCoalesces drives a wide PutBatch through a store
// whose writer endpoint is slow and checks the concurrent fan-out was
// fused into wire.Batch frames rather than sent one frame per message.
func TestBatchTrafficCoalesces(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond}
	ids := append(types.ServerIDs(cfg.S()), types.WriterID(), types.ReaderID(0))
	sim, err := simnet.New(ids)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	var runners []*node.ShardedRunner
	for i := 0; i < cfg.S(); i++ {
		ep, err := sim.Endpoint(types.ServerID(i))
		if err != nil {
			t.Fatal(err)
		}
		srv := keyed.NewShardedServer(2, func() node.Automaton { return core.NewServer() })
		r := node.NewShardedRunner(ep, srv.Shards(), srv.Route())
		r.Start()
		runners = append(runners, r)
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()
	wep, err := sim.Endpoint(types.WriterID())
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowEndpoint{Endpoint: wep}
	rep, err := sim.Endpoint(types.ReaderID(0))
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenWithEndpoints(cfg, slow, []transport.Endpoint{rep})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const keys = 32
	puts := make(map[string]types.Value)
	for i := 0; i < keys; i++ {
		puts[fmt.Sprintf("key-%d", i)] = "v"
	}
	if err := st.PutBatch(puts); err != nil {
		t.Fatal(err)
	}

	slow.mu.Lock()
	frames := len(slow.frames)
	var batched, inner int
	for _, m := range slow.frames {
		if b, ok := m.(wire.Batch); ok {
			batched++
			inner += len(b.Msgs)
		} else {
			inner++
		}
	}
	slow.mu.Unlock()

	if batched == 0 {
		t.Fatalf("%d frames carried %d messages without a single batch", frames, inner)
	}
	if frames >= inner {
		t.Errorf("frames %d, messages %d: coalescing saved nothing", frames, inner)
	}
	// Batching must not change what the store means: every key readable.
	got, err := st.GetBatch(0, keysOf(puts))
	if err != nil {
		t.Fatal(err)
	}
	for k := range puts {
		if got[k].Val != "v" {
			t.Errorf("%s = %+v after batched puts", k, got[k])
		}
	}
}

func keysOf(m map[string]types.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestShardOptionPlumbed(t *testing.T) {
	st, err := Open(core.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 15 * time.Millisecond}, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Shards() != 3 {
		t.Errorf("Shards() = %d, want 3", st.Shards())
	}
	if err := st.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(0, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("Get = %+v", got)
	}
	if def, err := Open(core.Config{T: 1, B: 0, Fw: 1, NumReaders: 1}); err != nil {
		t.Fatal(err)
	} else {
		defer def.Close()
		if def.Shards() != DefaultShards() {
			t.Errorf("default Shards() = %d, want %d", def.Shards(), DefaultShards())
		}
	}
}
