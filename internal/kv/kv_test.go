package kv

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/types"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	st, err := Open(core.Config{T: 2, B: 1, Fw: 1, NumReaders: 2,
		RoundTimeout: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st
}

func TestPutGetRoundTrip(t *testing.T) {
	st := testStore(t)
	if err := st.Put("greeting", "hello"); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(0, "greeting")
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 1, Val: "hello"}) {
		t.Errorf("Get = %v", got)
	}
	pm, err := st.PutMeta("greeting")
	if err != nil {
		t.Fatal(err)
	}
	gm, err := st.GetMeta(0, "greeting")
	if err != nil {
		t.Fatal(err)
	}
	if !pm.Fast || !gm.Fast() {
		t.Errorf("lucky KV ops not fast: put %+v get %+v", pm, gm)
	}
}

func TestKeysAreIndependentRegisters(t *testing.T) {
	st := testStore(t)
	if err := st.Put("a", "va"); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("a", "va2"); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("b", "vb"); err != nil {
		t.Fatal(err)
	}
	gotA, err := st.Get(0, "a")
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := st.Get(0, "b")
	if err != nil {
		t.Fatal(err)
	}
	// Per-key timestamp spaces: a is at ts 2, b at ts 1.
	if gotA != (types.Tagged{TS: 2, Val: "va2"}) {
		t.Errorf("a = %v", gotA)
	}
	if gotB != (types.Tagged{TS: 1, Val: "vb"}) {
		t.Errorf("b = %v", gotB)
	}
}

// ForwardPut is the rebalance handoff primitive: it replays a pair at
// its exact original timestamp, skips stale or bottom pairs, and keeps
// the key's timestamps monotonic so a subsequent Put continues the
// sequence.
func TestForwardPutReplaysExactPair(t *testing.T) {
	st := testStore(t)
	if err := st.ForwardPut("k", types.Tagged{TS: 7, Val: "carried"}); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(0, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 7, Val: "carried"}) {
		t.Errorf("Get after ForwardPut = %v, want 〈7,carried〉", got)
	}
	// Stale and bottom handoffs are no-ops.
	if err := st.ForwardPut("k", types.Tagged{TS: 3, Val: "old"}); err != nil {
		t.Fatal(err)
	}
	if err := st.ForwardPut("k", types.Bottom()); err != nil {
		t.Fatal(err)
	}
	if got, _ = st.Get(1, "k"); got != (types.Tagged{TS: 7, Val: "carried"}) {
		t.Errorf("stale ForwardPut overwrote the register: %v", got)
	}
	// The local writer continues from the forwarded timestamp.
	if err := st.Put("k", "next"); err != nil {
		t.Fatal(err)
	}
	if got, _ = st.Get(0, "k"); got != (types.Tagged{TS: 8, Val: "next"}) {
		t.Errorf("Put after ForwardPut = %v, want 〈8,next〉", got)
	}
	if err := st.Flush(); err != nil {
		t.Errorf("Flush = %v", err)
	}
}

func TestGetUnwrittenKeyReturnsBottom(t *testing.T) {
	st := testStore(t)
	got, err := st.Get(1, "never-written")
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsBottom() {
		t.Errorf("Get = %v, want ⊥", got)
	}
}

func TestInvalidInputs(t *testing.T) {
	st := testStore(t)
	if err := st.Put("", "v"); err == nil {
		t.Error("empty key accepted")
	}
	if err := st.Put("k", ""); err == nil {
		t.Error("⊥ value accepted")
	}
	if _, err := st.Get(99, "k"); err == nil {
		t.Error("out-of-range reader accepted")
	}
	if _, err := Open(core.Config{T: 1, B: 2}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestConcurrentKeysAndReaders(t *testing.T) {
	st := testStore(t)
	const keys, writesPerKey = 6, 10
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", k)
			for i := 1; i <= writesPerKey; i++ {
				if err := st.Put(key, types.Value(fmt.Sprintf("v%d", i))); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", k)
			var last types.TS
			for i := 0; i < writesPerKey; i++ {
				got, err := st.Get(k%2, key)
				if err != nil {
					t.Errorf("get %s: %v", key, err)
					return
				}
				if got.TS < last {
					t.Errorf("%s: timestamp regressed %d → %d", key, last, got.TS)
					return
				}
				last = got.TS
			}
		}()
	}
	wg.Wait()

	// Every key converged to its last value.
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		got, err := st.Get(0, key)
		if err != nil {
			t.Fatal(err)
		}
		if got != (types.Tagged{TS: writesPerKey, Val: types.Value(fmt.Sprintf("v%d", writesPerKey))}) {
			t.Errorf("%s final = %v", key, got)
		}
	}
}

func TestStoreToleratesFailures(t *testing.T) {
	st := testStore(t)
	if err := st.Put("k", "v1"); err != nil {
		t.Fatal(err)
	}
	st.CrashServer(0) // within fw: puts stay fast
	if err := st.Put("k", "v2"); err != nil {
		t.Fatal(err)
	}
	pm, _ := st.PutMeta("k")
	if !pm.Fast {
		t.Errorf("put meta = %+v, want fast with one crash", pm)
	}
	st.CrashServer(1) // t failures total: still available, maybe slow
	if err := st.Put("k", "v3"); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(0, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v3" {
		t.Errorf("Get = %v", got)
	}
}
