// Package tcpnet runs the protocol over real TCP connections: servers
// listen, clients dial every server, and envelopes travel as
// length-prefixed binary frames (internal/wire's versioned codec; see
// DESIGN.md §4). The client side implements transport.Endpoint, so the
// writers and readers of every protocol variant work unchanged over
// TCP.
//
// The hot path is allocation- and syscall-frugal: each connection reads
// through a bufio.Reader, server replies accumulate in a bufio.Writer
// flushed once per request frame, the client encodes into a per-
// connection reusable buffer written with one syscall per frame, and
// coalesced batches are encoded directly into that buffer
// (transport.BatchSender) instead of materializing intermediate Batch
// values.
//
// Identity handling matches the model's point-to-point channels: a
// client announces its ProcID in a handshake; the server replies only
// on that connection, and the client stamps every inbound envelope with
// the server identity it dialed — a peer cannot impersonate another
// process (it can still lie about its state, which is the protocol's
// problem, not the transport's).
package tcpnet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"luckystore/internal/node"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// handshakeTimeout bounds how long a server waits for a client hello.
const handshakeTimeout = 10 * time.Second

// maxIDLen bounds the handshake identity length.
const maxIDLen = 64

// connBufSize sizes the per-connection read and write buffers. Frames
// on the hot path are tens to hundreds of bytes; 32 KiB amortizes one
// syscall over many frames without pinning real memory per connection.
const connBufSize = 32 << 10

// maxRetainedConnBuf caps the encode buffer a client connection keeps
// between sends; a one-off giant frame should not pin its memory for
// the connection's lifetime.
const maxRetainedConnBuf = 1 << 20

// Server serves one automaton over TCP, in one of two stepping modes:
// Listen serializes every step behind a mutex (one plain automaton),
// ListenSharded steps a shard pool in parallel (see sharded.go).
type Server struct {
	id   types.ProcID
	ln   net.Listener
	auto node.Automaton // serialized mode; nil when sharded
	pool *node.StepPool // sharded mode; nil when serialized
	met  *ServerMetrics // nil when uninstrumented

	mu        sync.Mutex // serializes automaton steps across connections
	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
}

// ServerOption configures Listen and ListenSharded.
type ServerOption func(*Server)

// WithServerMetrics attaches live instrumentation to the server.
func WithServerMetrics(m *ServerMetrics) ServerOption {
	return func(s *Server) { s.met = m }
}

// Listen starts a server for the automaton on addr (e.g.
// "127.0.0.1:0"); the chosen address is available via Addr. Every
// automaton step is serialized behind one mutex; a keyed store meant to
// step independent keys in parallel should use ListenSharded instead.
func Listen(id types.ProcID, addr string, auto node.Automaton, opts ...ServerOption) (*Server, error) {
	s, err := listen(id, addr)
	if err != nil {
		return nil, err
	}
	for _, o := range opts {
		o(s)
	}
	s.auto = auto
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// listen validates the id and binds the listener; the caller installs
// the stepping backend and starts the accept loop.
func listen(id types.ProcID, addr string) (*Server, error) {
	if !id.IsServer() {
		return nil, fmt.Errorf("tcpnet: %q is not a server id", id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet listen %s: %w", addr, err)
	}
	return &Server{
		id: id, ln: ln,
		conns:  make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ID returns the server's process id.
func (s *Server) ID() types.ProcID { return s.id }

// Pool returns the sharded step pool, nil in serialized mode. The
// admin surface uses it for per-shard queue-depth gauges and for
// walking live shard state on the worker goroutines (StepPool.Do).
func (s *Server) Pool() *node.StepPool { return s.pool }

// Close stops the listener and every connection, waiting for all
// server goroutines to exit. It is idempotent and safe to call
// concurrently; every call returns only once teardown has completed.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.ln.Close()
		s.connMu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
		if s.pool != nil {
			s.pool.Close()
		}
	})
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		select {
		case <-s.closed:
			s.connMu.Unlock()
			_ = conn.Close()
			return
		default:
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		_ = conn.Close()
	}()

	peer, err := readHello(conn)
	if err != nil || !peer.Valid() || peer.IsServer() {
		return // reject unidentified or server-impersonating peers
	}
	if s.pool != nil {
		s.servePipelined(conn, peer)
		return
	}
	br := bufio.NewReaderSize(conn, connBufSize)
	bw := bufio.NewWriterSize(conn, connBufSize)
	// Per-connection reusable buffers: the automaton appends step output
	// into scratch (the step-sink contract) and peer-bound replies
	// accumulate in replies, both backed by one array across frames.
	var scratch []transport.Outgoing
	var replies []wire.Message
	for {
		env, err := wire.DecodeFrame(br)
		if err != nil {
			return // EOF, malformed frame, or closed
		}
		s.met.frameIn()
		// A batch frame unwraps at the endpoint boundary: each inner
		// message is a separate automaton step. Replies to one batch
		// coalesce back into a single frame, so a lucky multi-key round
		// trip costs one frame each way.
		replies = replies[:0]
		for _, e := range wire.Expand(env) {
			// The connection authenticates the sender: ignore the claimed
			// From and use the handshake identity.
			s.mu.Lock()
			scratch = node.StepInto(s.auto, peer, e.Msg, scratch[:0])
			s.mu.Unlock()
			for _, o := range scratch {
				if o.To != peer {
					continue // a data-centric server replies only to the requester
				}
				replies = append(replies, o.Msg)
			}
		}
		// One flush per request frame: the buffered writer turns a
		// multi-frame reply set into one syscall, and flushing here (not
		// later) keeps the one-reply-frame-per-round-trip latency
		// contract — nothing a client is waiting for sits in the buffer.
		if err := writeReplies(bw, s.id, peer, replies); err != nil {
			return
		}
		s.met.replies(len(replies))
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// writeReplies frames a step's replies back to the peer: runs of keyed
// replies share Batch frames, encoded straight into a pooled buffer and
// handed to w in one Write (wire.WriteCoalesced applies the same batch
// budgets as wire.CoalesceKeyed).
func writeReplies(w io.Writer, from, to types.ProcID, replies []wire.Message) error {
	return wire.WriteCoalesced(w, from, to, replies)
}

// Client is a transport.Endpoint over TCP: it dials every configured
// server lazily and merges all inbound frames into one mailbox.
type Client struct {
	id    types.ProcID
	addrs map[types.ProcID]string
	mbox  *transport.Mailbox
	dial  func(addr string) (net.Conn, error) // swappable in tests
	met   *ClientMetrics                      // nil when uninstrumented

	mu     sync.Mutex
	conns  map[types.ProcID]*clientConn
	dials  map[types.ProcID]*dialCall // in-flight dials, one per destination
	closed bool
	wg     sync.WaitGroup
}

// ClientOption configures Dial.
type ClientOption func(*Client)

// WithClientMetrics attaches live instrumentation to the client.
func WithClientMetrics(m *ClientMetrics) ClientOption {
	return func(c *Client) { c.met = m }
}

type clientConn struct {
	conn net.Conn
	mu   sync.Mutex // serializes frame writes
	buf  []byte     // reusable encode buffer, guarded by mu
}

// write encodes env into the connection's reusable buffer and writes it
// as one frame with a single syscall. Callers hold cc.mu.
func (cc *clientConn) write(env wire.Envelope) error {
	buf, err := wire.AppendFrame(cc.buf[:0], env)
	if err != nil {
		return err
	}
	cc.buf = buf
	_, werr := cc.conn.Write(buf)
	cc.shrink()
	return werr
}

// shrink drops an oversized encode buffer so one giant frame does not
// pin megabytes for the connection's lifetime. Callers hold cc.mu.
func (cc *clientConn) shrink() {
	if cap(cc.buf) > maxRetainedConnBuf {
		cc.buf = nil
	}
}

// dialCall is a single-flight dial to one destination: the first sender
// dials, concurrent senders to the same destination wait on done and
// share the result. Senders to other destinations are never involved —
// c.mu is not held while dialing, so one unreachable server cannot
// stall traffic to live ones.
type dialCall struct {
	done chan struct{}
	cc   *clientConn
	err  error
}

var (
	_ transport.Endpoint    = (*Client)(nil)
	_ transport.BatchSender = (*Client)(nil)
)

// Dial creates a client endpoint for the process id, configured with
// the server address map. Connections are established on first send to
// each server.
func Dial(id types.ProcID, servers map[types.ProcID]string, opts ...ClientOption) (*Client, error) {
	if !id.Valid() || id.IsServer() {
		return nil, fmt.Errorf("tcpnet: %q is not a client id", id)
	}
	addrs := make(map[types.ProcID]string, len(servers))
	for sid, addr := range servers {
		if !sid.IsServer() {
			return nil, fmt.Errorf("tcpnet: %q is not a server id", sid)
		}
		addrs[sid] = addr
	}
	c := &Client{
		id:    id,
		addrs: addrs,
		mbox:  transport.NewMailbox(),
		dial:  func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) },
		conns: make(map[types.ProcID]*clientConn),
		dials: make(map[types.ProcID]*dialCall),
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// ID implements transport.Endpoint.
func (c *Client) ID() types.ProcID { return c.id }

// Recv implements transport.Endpoint.
func (c *Client) Recv() <-chan wire.Envelope { return c.mbox.Out() }

// Send implements transport.Endpoint. Send failures to unreachable
// servers are reported but non-fatal to the protocol: a dead server is
// a crashed server.
//
// A write failure on an established connection triggers one
// transparent redial-and-retry: after a peer crash-restarts on the same
// address, the cached connection is dead and the first write to it
// fails, but the server itself is back — without the retry every
// client would pay one lost message per restart (and only dropConn
// would clean up), which breaks crash-restart schedules over TCP.
// Dial failures are not retried: they mean the server is actually
// down, not that our connection went stale.
func (c *Client) Send(to types.ProcID, m wire.Message) error {
	env := wire.Envelope{From: c.id, To: to, Msg: m}
	retried, err := c.sendOnce(to, env)
	if err != nil && retried {
		c.met.redial()
		_, err = c.sendOnce(to, env)
	}
	return err
}

// sendOnce writes one frame to the cached (or freshly dialed)
// connection. retryable reports whether a failure happened on an
// established connection's write — the stale-connection case worth one
// redial — as opposed to a dial failure.
func (c *Client) sendOnce(to types.ProcID, env wire.Envelope) (retryable bool, err error) {
	cc, err := c.connFor(to)
	if err != nil {
		return false, err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if err := cc.write(env); err != nil {
		c.dropConn(to, cc)
		return true, fmt.Errorf("tcpnet send to %s: %w", to, err)
	}
	c.met.frameOut()
	return false, nil
}

// SendBatched implements transport.BatchSender: a drained
// per-destination queue is encoded directly into the connection's
// reusable buffer — runs of keyed messages streamed into Batch frames,
// split by the wire package's batch budgets — and every resulting frame
// leaves in a single Write call. The bytes on the wire are identical to
// looping Send over wire.CoalesceKeyed's frames; the savings are the
// intermediate []Message runs, the Batch values, the per-frame encode
// walk, and the per-frame syscalls.
func (c *Client) SendBatched(to types.ProcID, msgs []wire.Message) error {
	if len(msgs) == 0 {
		return nil
	}
	retried, err := c.sendBatchedOnce(to, msgs)
	if err != nil && retried {
		// Same stale-connection redial as Send: the peer may have
		// crash-restarted on its address since this batch's conn was
		// cached.
		c.met.redial()
		_, err = c.sendBatchedOnce(to, msgs)
	}
	return err
}

func (c *Client) sendBatchedOnce(to types.ProcID, msgs []wire.Message) (retryable bool, err error) {
	cc, err := c.connFor(to)
	if err != nil {
		return false, err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	buf, encErr := wire.AppendCoalesced(cc.buf[:0], c.id, to, msgs)
	cc.buf = buf
	if len(buf) > 0 {
		if _, err := cc.conn.Write(buf); err != nil {
			c.dropConn(to, cc)
			return true, fmt.Errorf("tcpnet send to %s: %w", to, err)
		}
		c.met.frameOut()
	}
	cc.shrink()
	return false, encErr
}

// Close tears down every connection and the mailbox, joining all
// reader goroutines.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*clientConn, 0, len(c.conns))
	for _, cc := range c.conns {
		conns = append(conns, cc)
	}
	c.mu.Unlock()
	for _, cc := range conns {
		_ = cc.conn.Close()
	}
	c.wg.Wait()
	c.mbox.Close()
	return nil
}

// connFor returns the connection to one server, dialing it on first
// use. The dial itself runs outside c.mu behind a per-destination
// single-flight, so a slow or unreachable server only delays senders to
// that server — sends to live servers proceed concurrently.
func (c *Client) connFor(to types.ProcID) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if cc, ok := c.conns[to]; ok {
		c.mu.Unlock()
		return cc, nil
	}
	addr, ok := c.addrs[to]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("tcpnet %s: %w", to, transport.ErrUnknownPeer)
	}
	if call, inFlight := c.dials[to]; inFlight {
		c.mu.Unlock()
		<-call.done
		return call.cc, call.err
	}
	call := &dialCall{done: make(chan struct{})}
	c.dials[to] = call
	c.mu.Unlock()

	call.cc, call.err = c.dialConn(to, addr)
	close(call.done)
	return call.cc, call.err
}

// dialConn dials and registers the connection for one destination. It
// owns the destination's dialCall; on return (and only then) the call
// entry is cleared, so a failed dial can be retried by a later send.
func (c *Client) dialConn(to types.ProcID, addr string) (*clientConn, error) {
	conn, err := c.dial(addr)
	if err == nil {
		if herr := writeHello(conn, c.id); herr != nil {
			_ = conn.Close()
			err = fmt.Errorf("tcpnet hello to %s: %w", to, herr)
		}
	} else {
		err = fmt.Errorf("tcpnet dial %s (%s): %w", to, addr, err)
	}

	c.mu.Lock()
	delete(c.dials, to)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if c.closed {
		// Close ran while we were dialing: it cannot have seen this
		// connection, so close it here rather than leak it.
		c.mu.Unlock()
		_ = conn.Close()
		return nil, transport.ErrClosed
	}
	cc := &clientConn{conn: conn}
	c.conns[to] = cc
	c.wg.Add(1) // under c.mu and before closed: never races Close's Wait
	c.mu.Unlock()
	go c.readLoop(to, cc)
	return cc, nil
}

func (c *Client) dropConn(id types.ProcID, cc *clientConn) {
	_ = cc.conn.Close()
	c.mu.Lock()
	if c.conns[id] == cc {
		delete(c.conns, id)
	}
	c.mu.Unlock()
}

func (c *Client) readLoop(from types.ProcID, cc *clientConn) {
	defer c.wg.Done()
	br := bufio.NewReaderSize(cc.conn, connBufSize)
	for {
		env, err := wire.DecodeFrame(br)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				// The server went away (EOF on crash/shutdown) or the
				// stream broke: uncache the connection now so the next
				// send dials fresh instead of writing into a half-closed
				// socket — such a write "succeeds" locally and the
				// message is silently lost, which wedges one-shot
				// operations against a restarted cluster. ErrClosed means
				// our own side tore the connection down (Close or a
				// concurrent dropConn); nothing to uncache.
				c.dropConn(from, cc)
			}
			return
		}
		c.met.frameIn()
		// Stamp the authenticated origin — the server this connection
		// was dialed to — and unwrap batch frames at the endpoint
		// boundary (non-batch frames take the allocation-free path).
		if _, batch := env.Msg.(wire.Batch); !batch {
			env.From = from
			env.To = c.id
			if c.mbox.Put(env) != nil {
				return
			}
			continue
		}
		for _, e := range wire.Expand(env) {
			e.From = from
			e.To = c.id
			if c.mbox.Put(e) != nil {
				return
			}
		}
	}
}

// ReadHello reads the client identity announced on a fresh inbound
// connection — the same handshake Server performs. Exported for
// listeners that speak the tcpnet wire protocol without being a
// storage server themselves (the router proxy's virtual servers).
func ReadHello(conn net.Conn) (types.ProcID, error) { return readHello(conn) }

// writeHello announces the client identity: one length byte + the id.
func writeHello(w io.Writer, id types.ProcID) error {
	if len(id) == 0 || len(id) > maxIDLen {
		return fmt.Errorf("tcpnet: bad hello id %q", id)
	}
	buf := append([]byte{byte(len(id))}, id...)
	_, err := w.Write(buf)
	return err
}

// readHello reads the peer identity announced on a fresh connection.
func readHello(conn net.Conn) (types.ProcID, error) {
	if err := conn.SetReadDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return "", err
	}
	defer func() { _ = conn.SetReadDeadline(time.Time{}) }()
	var lenBuf [1]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return "", err
	}
	n := int(lenBuf[0])
	if n == 0 || n > maxIDLen {
		return "", fmt.Errorf("tcpnet: bad hello length %d", n)
	}
	idBuf := make([]byte, n)
	if _, err := io.ReadFull(conn, idBuf); err != nil {
		return "", err
	}
	return types.ProcID(idBuf), nil
}
