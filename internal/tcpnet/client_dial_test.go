package tcpnet

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// TestDialToUnreachableServerDoesNotBlockOtherSends is the regression
// test for connFor holding the client-wide mutex across net.Dial: a
// send stuck dialing a blackholed server must not stall sends to live
// servers.
func TestDialToUnreachableServerDoesNotBlockOtherSends(t *testing.T) {
	live, err := Listen(types.ServerID(1), "127.0.0.1:0", core.NewServer())
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	c, err := Dial(types.WriterID(), map[types.ProcID]string{
		types.ServerID(0): "blackhole:0", // never actually dialed — see below
		types.ServerID(1): live.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Blackhole server 0: its dial blocks until the test releases it,
	// deterministically modeling an unreachable address mid-timeout.
	release := make(chan struct{})
	realDial := c.dial
	c.dial = func(addr string) (net.Conn, error) {
		if addr == "blackhole:0" {
			<-release
			return nil, net.ErrClosed
		}
		return realDial(addr)
	}

	stuck := make(chan struct{})
	go func() {
		defer close(stuck)
		_ = c.Send(types.ServerID(0), wire.Read{TSR: 1, Round: 1})
	}()

	// Give the stuck send time to enter the dial, then require a send to
	// the live server to complete while the other dial is still blocked.
	time.Sleep(20 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- c.Send(types.ServerID(1), wire.Read{TSR: 1, Round: 1}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("send to live server failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Error("send to live server blocked behind the dial to the unreachable one")
	}

	close(release)
	<-stuck
}

// TestDialSingleFlight checks concurrent senders to one destination
// share a single dial instead of racing several connections.
func TestDialSingleFlight(t *testing.T) {
	srv, err := Listen(types.ServerID(0), "127.0.0.1:0", core.NewServer())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(types.WriterID(), map[types.ProcID]string{types.ServerID(0): srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var dials atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	realDial := c.dial
	c.dial = func(addr string) (net.Conn, error) {
		dials.Add(1)
		close(entered)
		<-release
		return realDial(addr)
	}

	const senders = 8
	done := make(chan error, senders)
	go func() { done <- c.Send(types.ServerID(0), wire.Read{TSR: 1, Round: 1}) }()
	<-entered // the first sender owns the dial; the rest must wait on it
	for i := 1; i < senders; i++ {
		go func() { done <- c.Send(types.ServerID(0), wire.Read{TSR: 1, Round: 1}) }()
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	for i := 0; i < senders; i++ {
		if err := <-done; err != nil {
			t.Errorf("send %d: %v", i, err)
		}
	}
	if n := dials.Load(); n != 1 {
		t.Errorf("%d dials for one destination, want 1", n)
	}
}

// TestCloseDuringDialClosesNewConn covers the Close-during-dial race:
// a connection that completes dialing after Close must be closed, not
// leaked, and the sender gets ErrClosed.
func TestCloseDuringDialClosesNewConn(t *testing.T) {
	srv, err := Listen(types.ServerID(0), "127.0.0.1:0", core.NewServer())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(types.WriterID(), map[types.ProcID]string{types.ServerID(0): srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var dialed atomic.Pointer[net.TCPConn]
	realDial := c.dial
	c.dial = func(addr string) (net.Conn, error) {
		close(entered)
		<-release
		conn, err := realDial(addr)
		if err == nil {
			dialed.Store(conn.(*net.TCPConn))
		}
		return conn, err
	}

	sendErr := make(chan error, 1)
	go func() { sendErr <- c.Send(types.ServerID(0), wire.Read{TSR: 1, Round: 1}) }()
	<-entered
	closed := make(chan error, 1)
	go func() { closed <- c.Close() }()
	time.Sleep(20 * time.Millisecond) // let Close reach its wait
	close(release)

	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	if err := <-sendErr; !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send on a client closed mid-dial = %v, want transport.ErrClosed", err)
	}
	conn := dialed.Load()
	if conn == nil {
		t.Fatal("dial never completed")
	}
	// The freshly dialed connection must have been closed by the client:
	// a read errors immediately instead of blocking on the live server.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection dialed during Close was left open")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Error("connection dialed during Close was leaked (read timed out on an open conn)")
	}
}
