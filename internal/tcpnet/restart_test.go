package tcpnet

// Regression (PR 5 satellite): after a server crash-restarts on the
// same address, a client's first Send hits the stale cached connection.
// Send must transparently redial-and-retry once instead of surfacing
// the error, so crash-restart schedules work over TCP.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// restartServer closes srv and listens again on the same address,
// retrying briefly in case the kernel has not released the port yet.
func restartServer(t *testing.T, srv *Server, auto interface {
	Step(types.ProcID, wire.Message) []transport.Outgoing
}) *Server {
	t.Helper()
	id, addr := srv.ID(), srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var (
		next *Server
		err  error
	)
	for i := 0; i < 50; i++ {
		next, err = Listen(id, addr, auto)
		if err == nil {
			return next
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("rebind %s: %v", addr, err)
	return nil
}

func TestSendRedialsAfterServerRestart(t *testing.T) {
	srv, err := Listen(types.ServerID(0), "127.0.0.1:0", core.NewServer())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(types.WriterID(), map[types.ProcID]string{srv.ID(): srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	send := func(ts types.TS) error {
		return cl.Send(types.ServerID(0), wire.PW{TS: ts, PW: types.Tagged{TS: ts, Val: "v"}, W: types.Bottom()})
	}
	awaitAck := func(within time.Duration) bool {
		select {
		case env, ok := <-cl.Recv():
			return ok && env.Msg.(wire.PWAck).TS > 0
		case <-time.After(within):
			return false
		}
	}

	// Establish the connection.
	if err := send(1); err != nil {
		t.Fatal(err)
	}
	if !awaitAck(2 * time.Second) {
		t.Fatal("no ack before restart")
	}

	// Crash-restart the server on the same address. The client still
	// holds the now-dead connection.
	srv = restartServer(t, srv, core.NewServer())
	defer srv.Close()

	// Sends across the restart must never error: the first write to
	// the dead socket may be silently buffered by TCP, but as soon as
	// the reset surfaces, Send must redial transparently rather than
	// fail. Eventually a send reaches the restarted server and is
	// acked.
	deadline := time.Now().Add(5 * time.Second)
	ts := types.TS(2)
	for time.Now().Before(deadline) {
		if err := send(ts); err != nil {
			t.Fatalf("Send surfaced a stale-connection error: %v", err)
		}
		ts++
		if awaitAck(100 * time.Millisecond) {
			return // reconnected and served
		}
	}
	t.Fatal("restarted server never reachable through the old client")
}

// A restart mid-workload: concurrent senders keep going, none of them
// observes an error, and the server answers again after the restart.
func TestConcurrentSendsSurviveRestart(t *testing.T) {
	srv, err := Listen(types.ServerID(0), "127.0.0.1:0", core.NewServer())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(types.WriterID(), map[types.ProcID]string{srv.ID(): srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var sendErr error
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ts types.TS = 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := cl.Send(types.ServerID(0), wire.PW{TS: ts, PW: types.Tagged{TS: ts, Val: "v"}, W: types.Bottom()})
				if err != nil && !errors.Is(err, transport.ErrClosed) {
					mu.Lock()
					if sendErr == nil {
						sendErr = err
					}
					mu.Unlock()
					return
				}
				ts++
				time.Sleep(time.Millisecond)
			}
		}()
	}
	// Drain acks so nothing blocks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case _, ok := <-cl.Recv():
				if !ok {
					return
				}
			}
		}
	}()

	time.Sleep(100 * time.Millisecond)
	srv = restartServer(t, srv, core.NewServer())
	defer srv.Close()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if sendErr != nil {
		t.Fatalf("a sender observed an error across the restart: %v", sendErr)
	}
}
