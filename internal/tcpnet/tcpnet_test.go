package tcpnet

import (
	"net"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/types"
)

// startCluster brings up S core servers on loopback TCP and returns
// their address map.
func startCluster(t *testing.T, s int) map[types.ProcID]string {
	t.Helper()
	addrs := make(map[types.ProcID]string, s)
	for i := 0; i < s; i++ {
		srv, err := Listen(types.ServerID(i), "127.0.0.1:0", core.NewServer())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[srv.ID()] = srv.Addr()
	}
	return addrs
}

func testCfg() core.Config {
	return core.Config{T: 2, B: 1, Fw: 1, NumReaders: 2,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 10 * time.Second}
}

func TestListenRejectsNonServerID(t *testing.T) {
	if _, err := Listen(types.WriterID(), "127.0.0.1:0", core.NewServer()); err == nil {
		t.Error("Listen accepted a writer id")
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(types.ServerID(0), nil); err == nil {
		t.Error("Dial accepted a server id as client")
	}
	if _, err := Dial(types.WriterID(), map[types.ProcID]string{"w": "x"}); err == nil {
		t.Error("Dial accepted a non-server id in the address map")
	}
}

func TestWriteReadOverTCP(t *testing.T) {
	cfg := testCfg()
	addrs := startCluster(t, cfg.S())

	wc, err := Dial(types.WriterID(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	writer := core.NewWriter(cfg, types.WriterID(), wc)
	if err := writer.Write("over-tcp"); err != nil {
		t.Fatal(err)
	}
	if m := writer.LastMeta(); !m.Fast {
		t.Errorf("TCP loopback write meta = %+v, want fast", m)
	}

	rc, err := Dial(types.ReaderID(0), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	reader := core.NewReader(cfg, types.ReaderID(0), rc)
	got, err := reader.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 1, Val: "over-tcp"}) {
		t.Errorf("Read() = %v", got)
	}
	if m := reader.LastMeta(); !m.Fast() {
		t.Errorf("TCP loopback read meta = %+v, want fast", m)
	}
}

func TestCrashToleranceOverTCP(t *testing.T) {
	cfg := testCfg()
	addrs := startCluster(t, cfg.S())

	wc, err := Dial(types.WriterID(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	writer := core.NewWriter(cfg, types.WriterID(), wc)
	if err := writer.Write("v1"); err != nil {
		t.Fatal(err)
	}

	// Point one server id at a dead address to simulate its crash.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()
	addrs2 := make(map[types.ProcID]string, len(addrs))
	for k, v := range addrs {
		addrs2[k] = v
	}
	addrs2[types.ServerID(0)] = deadAddr

	rc, err := Dial(types.ReaderID(1), addrs2)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	reader := core.NewReader(cfg, types.ReaderID(1), rc)
	got, err := reader.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v1" {
		t.Errorf("Read() with one dead server = %v", got)
	}
}

func TestServerRejectsServerImpersonation(t *testing.T) {
	srv, err := Listen(types.ServerID(0), "127.0.0.1:0", core.NewServer())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Hello claiming to be another server must be rejected: the
	// connection is closed without serving.
	if err := writeHello(conn, types.ServerID(3)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("server kept serving a server-impersonating peer")
	}
}

func TestServerSurvivesGarbageConnection(t *testing.T) {
	srv, err := Listen(types.ServerID(0), "127.0.0.1:0", core.NewServer())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The server still works for legitimate clients.
	cfg := core.Config{T: 0, B: 0, Fw: 0, RoundTimeout: 50 * time.Millisecond, OpTimeout: 5 * time.Second}
	wc, err := Dial(types.WriterID(), map[types.ProcID]string{types.ServerID(0): srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	writer := core.NewWriter(cfg, types.WriterID(), wc)
	if err := writer.Write("still-alive"); err != nil {
		t.Fatalf("server dead after garbage connection: %v", err)
	}
}

func TestClientCloseIdempotent(t *testing.T) {
	addrs := startCluster(t, 1)
	c, err := Dial(types.ReaderID(0), addrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(types.ServerID(0), nil); err == nil {
		t.Error("Send succeeded after Close")
	}
}
