package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/keyed"
	"luckystore/internal/kv"
	"luckystore/internal/node"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// listenShardedKV brings up one sharded KV server for tests.
func listenShardedKV(t *testing.T, shards int) (*Server, *keyed.ShardedServer) {
	t.Helper()
	auto := kv.NewShardedServerAutomaton(shards)
	srv, err := ListenSharded(types.ServerID(0), "127.0.0.1:0", auto.Shards(), auto.Route())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, auto
}

// TestShardedBatchFrameOverTCP is the sharded twin of
// TestBatchFrameOverTCP: one batch frame fans out across shard workers
// and every key's reply comes back, unwrapped, at the client endpoint.
func TestShardedBatchFrameOverTCP(t *testing.T) {
	srv, auto := listenShardedKV(t, 4)

	c, err := Dial(types.ReaderID(0), map[types.ProcID]string{types.ServerID(0): srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	b := wire.Batch{}
	for _, k := range keys {
		b.Msgs = append(b.Msgs, wire.Keyed{Key: k, Inner: wire.Read{TSR: 1, Round: 1}})
	}
	if err := c.Send(types.ServerID(0), b); err != nil {
		t.Fatal(err)
	}

	got := make(map[string]bool)
	for range keys {
		select {
		case env, ok := <-c.Recv():
			if !ok {
				t.Fatal("recv channel closed")
			}
			k, isKeyed := env.Msg.(wire.Keyed)
			if !isKeyed {
				t.Fatalf("client surfaced %T, want unwrapped wire.Keyed", env.Msg)
			}
			if _, isAck := k.Inner.(wire.ReadAck); !isAck {
				t.Fatalf("reply for %q is %T, want ReadAck", k.Key, k.Inner)
			}
			got[k.Key] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out; replies so far: %v", got)
		}
	}
	for _, k := range keys {
		if !got[k] {
			t.Errorf("no reply for key %q", k)
		}
	}
	if n := auto.Regs(); n != len(keys) {
		t.Errorf("server instantiated %d registers, want %d", n, len(keys))
	}
}

// TestShardedBatchRepliesShareOneFrame checks the sharded pipeline
// preserves the serialized server's reply contract: all replies to one
// request batch coalesce into a single outbound frame even though the
// steps ran on different shard workers.
func TestShardedBatchRepliesShareOneFrame(t *testing.T) {
	srv, _ := listenShardedKV(t, 4)

	conn := dialRaw(t, srv.Addr(), types.ReaderID(0))
	defer conn.Close()

	b := wire.Batch{}
	for _, k := range []string{"x", "y", "z"} {
		b.Msgs = append(b.Msgs, wire.Keyed{Key: k, Inner: wire.Read{TSR: 1, Round: 1}})
	}
	env := wire.Envelope{From: types.ReaderID(0), To: types.ServerID(0), Msg: b}
	if err := wire.EncodeFrame(conn, env); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.DecodeFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	rb, ok := reply.Msg.(wire.Batch)
	if !ok {
		t.Fatalf("reply frame is %T, want wire.Batch", reply.Msg)
	}
	if len(rb.Msgs) != 3 {
		t.Errorf("reply batch carries %d messages, want 3", len(rb.Msgs))
	}
}

// blockingAutomaton blocks its first step until release closes, then
// acknowledges every step. It stands in for a slow shard.
type blockingAutomaton struct {
	release <-chan struct{}
	once    sync.Once
}

func (a *blockingAutomaton) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	a.once.Do(func() { <-a.release })
	k, _ := m.(wire.Keyed)
	return []transport.Outgoing{{To: from, Msg: wire.Keyed{Key: k.Key, Inner: wire.WAck{Round: 1, Tag: 1}}}}
}

// signalAutomaton closes stepped on its first step, then acknowledges.
type signalAutomaton struct {
	stepped chan struct{}
	once    sync.Once
}

func (a *signalAutomaton) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	a.once.Do(func() { close(a.stepped) })
	k, _ := m.(wire.Keyed)
	return []transport.Outgoing{{To: from, Msg: wire.Keyed{Key: k.Key, Inner: wire.WAck{Round: 1, Tag: 2}}}}
}

// TestShardedStepsShardsInParallel proves the pipeline actually steps
// shards concurrently: shard 0 blocks until shard 1 has stepped. Under
// the serialized server (one mutex, in-order stepping of a single
// connection's messages) this deadlocks; with per-shard workers the
// second message overtakes the first and both replies arrive.
func TestShardedStepsShardsInParallel(t *testing.T) {
	release := make(chan struct{})
	stepped := make(chan struct{})
	shards := []node.Automaton{
		&blockingAutomaton{release: release},
		&signalAutomaton{stepped: stepped},
	}
	route := func(m wire.Message) int {
		if k, ok := m.(wire.Keyed); ok && k.Key == "slow" {
			return 0
		}
		return 1
	}
	srv, err := ListenSharded(types.ServerID(0), "127.0.0.1:0", shards, route)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	go func() {
		// The slow shard unblocks only once the fast shard has stepped —
		// the parallelism under test.
		select {
		case <-stepped:
		case <-time.After(5 * time.Second):
		}
		close(release)
	}()

	conn := dialRaw(t, srv.Addr(), types.WriterID())
	defer conn.Close()
	for _, key := range []string{"slow", "fast"} {
		env := wire.Envelope{From: types.WriterID(), To: types.ServerID(0),
			Msg: wire.Keyed{Key: key, Inner: wire.Read{TSR: 1, Round: 1}}}
		if err := wire.EncodeFrame(conn, env); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(4 * time.Second)
	conn.SetReadDeadline(deadline)
	for i := 0; i < 2; i++ {
		if _, err := wire.DecodeFrame(conn); err != nil {
			t.Fatalf("reply %d: %v (shards did not step in parallel?)", i, err)
		}
	}
}

// TestShardedReplyOrderPerKey checks per-(peer,key) FIFO: many frames
// for one key come back strictly in request order, even with several
// shard workers running.
func TestShardedReplyOrderPerKey(t *testing.T) {
	srv, _ := listenShardedKV(t, 8)
	conn := dialRaw(t, srv.Addr(), types.ReaderID(0))
	defer conn.Close()

	const n = 100
	for i := 1; i <= n; i++ {
		env := wire.Envelope{From: types.ReaderID(0), To: types.ServerID(0),
			Msg: wire.Keyed{Key: "k", Inner: wire.Read{TSR: types.ReaderTS(i), Round: 1}}}
		if err := wire.EncodeFrame(conn, env); err != nil {
			t.Fatal(err)
		}
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for i := 1; i <= n; i++ {
		reply, err := wire.DecodeFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		k, ok := reply.Msg.(wire.Keyed)
		if !ok {
			t.Fatalf("reply %d is %T", i, reply.Msg)
		}
		ack, ok := k.Inner.(wire.ReadAck)
		if !ok {
			t.Fatalf("reply %d inner is %T", i, k.Inner)
		}
		if ack.TSR != types.ReaderTS(i) {
			t.Fatalf("reply %d has tsr %d: replies reordered", i, ack.TSR)
		}
	}
}

// TestShardedServerCloseUnderLoad closes the server while clients are
// mid-traffic: Close must join every goroutine (the test hangs
// otherwise) and later frames are simply dropped, like a crash.
func TestShardedServerCloseUnderLoad(t *testing.T) {
	auto := kv.NewShardedServerAutomaton(4)
	srv, err := ListenSharded(types.ServerID(0), "127.0.0.1:0", auto.Shards(), auto.Route())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				return // server already gone
			}
			defer conn.Close()
			if err := writeHello(conn, types.ReaderID(c)); err != nil {
				return
			}
			for i := 1; ; i++ {
				env := wire.Envelope{From: types.ReaderID(c), To: types.ServerID(0),
					Msg: wire.Keyed{Key: fmt.Sprintf("k%d", i%17), Inner: wire.Read{TSR: types.ReaderTS(i), Round: 1}}}
				if err := wire.EncodeFrame(conn, env); err != nil {
					return // server gone
				}
			}
		}(c)
	}
	time.Sleep(50 * time.Millisecond)
	// Concurrent Close calls: idempotent, no double-close panic, all
	// return only after teardown.
	var closers sync.WaitGroup
	for i := 0; i < 4; i++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			_ = srv.Close()
		}()
	}
	closers.Wait()
	wg.Wait()
}

// TestShardedEndToEndProtocol runs the real writer and reader clients
// against a sharded server cluster — the full protocol over the
// pipelined path, not just echoes.
func TestShardedEndToEndProtocol(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 10 * time.Second}
	addrs := make(map[types.ProcID]string, cfg.S())
	for i := 0; i < cfg.S(); i++ {
		auto := kv.NewShardedServerAutomaton(4)
		srv, err := ListenSharded(types.ServerID(i), "127.0.0.1:0", auto.Shards(), auto.Route())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[srv.ID()] = srv.Addr()
	}

	wc, err := Dial(types.WriterID(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	wd := keyed.NewDemux(wc) // owns wc
	defer wd.Close()
	wep, err := wd.Open("reg")
	if err != nil {
		t.Fatal(err)
	}
	writer := core.NewWriter(cfg, types.WriterID(), wep)
	if err := writer.Write("sharded-tcp"); err != nil {
		t.Fatal(err)
	}
	if m := writer.LastMeta(); !m.Fast {
		t.Errorf("write meta = %+v, want fast", m)
	}

	rc, err := Dial(types.ReaderID(0), addrs)
	if err != nil {
		t.Fatal(err)
	}
	rd := keyed.NewDemux(rc) // owns rc
	defer rd.Close()
	rep, err := rd.Open("reg")
	if err != nil {
		t.Fatal(err)
	}
	reader := core.NewReader(cfg, types.ReaderID(0), rep)
	got, err := reader.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 1, Val: "sharded-tcp"}) {
		t.Errorf("Read() = %v", got)
	}
}
