package tcpnet

import (
	"net"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/keyed"
	"luckystore/internal/node"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// TestBatchFrameOverTCP sends one Batch frame carrying reads for three
// keys and expects the server to step each inner message; the replies
// travel back coalesced and the client endpoint surfaces them unwrapped,
// one envelope per key.
func TestBatchFrameOverTCP(t *testing.T) {
	auto := keyed.NewServer(func() node.Automaton { return core.NewServer() })
	srv, err := Listen(types.ServerID(0), "127.0.0.1:0", auto)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(types.ReaderID(0), map[types.ProcID]string{types.ServerID(0): srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := []string{"a", "b", "c"}
	b := wire.Batch{}
	for _, k := range keys {
		b.Msgs = append(b.Msgs, wire.Keyed{Key: k, Inner: wire.Read{TSR: 1, Round: 1}})
	}
	if err := c.Send(types.ServerID(0), b); err != nil {
		t.Fatal(err)
	}

	got := make(map[string]bool)
	for range keys {
		select {
		case env, ok := <-c.Recv():
			if !ok {
				t.Fatal("recv channel closed")
			}
			k, isKeyed := env.Msg.(wire.Keyed)
			if !isKeyed {
				t.Fatalf("client surfaced %T, want unwrapped wire.Keyed", env.Msg)
			}
			if _, isAck := k.Inner.(wire.ReadAck); !isAck {
				t.Fatalf("reply for %q is %T, want ReadAck", k.Key, k.Inner)
			}
			got[k.Key] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out; replies so far: %v", got)
		}
	}
	for _, k := range keys {
		if !got[k] {
			t.Errorf("no reply for key %q", k)
		}
	}
	if n := auto.Regs(); n != len(keys) {
		t.Errorf("server instantiated %d registers, want %d", n, len(keys))
	}
}

// TestBatchRepliesShareOneFrame checks the server side coalesces the
// acknowledgements of one inbound batch into a single outbound frame:
// a raw connection decodes exactly one frame carrying all three acks.
func TestBatchRepliesShareOneFrame(t *testing.T) {
	auto := keyed.NewServer(func() node.Automaton { return core.NewServer() })
	srv, err := Listen(types.ServerID(0), "127.0.0.1:0", auto)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn := dialRaw(t, srv.Addr(), types.ReaderID(0))
	defer conn.Close()

	b := wire.Batch{}
	for _, k := range []string{"x", "y", "z"} {
		b.Msgs = append(b.Msgs, wire.Keyed{Key: k, Inner: wire.Read{TSR: 1, Round: 1}})
	}
	env := wire.Envelope{From: types.ReaderID(0), To: types.ServerID(0), Msg: b}
	if err := wire.EncodeFrame(conn, env); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.DecodeFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	rb, ok := reply.Msg.(wire.Batch)
	if !ok {
		t.Fatalf("reply frame is %T, want wire.Batch", reply.Msg)
	}
	if len(rb.Msgs) != 3 {
		t.Errorf("reply batch carries %d messages, want 3", len(rb.Msgs))
	}
}

func dialRaw(t *testing.T, addr string, id types.ProcID) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeHello(conn, id); err != nil {
		t.Fatal(err)
	}
	return conn
}
