package tcpnet

import "luckystore/internal/metrics"

// ServerMetrics instruments one TCP server process: request frames
// decoded, reply messages sent, and — on the sharded path — per-key-
// class service latency from shard submission to the reply leaving the
// step worker (queueing included, socket write excluded). Class labels
// come from metrics.KeyClass, so a serving luckyd exposes the same
// class partition clients measure against. Nil disables everything.
type ServerMetrics struct {
	FramesIn *metrics.Counter
	Replies  *metrics.Counter
	Service  [metrics.NumKeyClasses]*metrics.Histogram
}

// NewServerMetrics wires the server instruments into reg.
func NewServerMetrics(reg *metrics.Registry) *ServerMetrics {
	m := &ServerMetrics{
		FramesIn: reg.Counter("lucky_tcp_frames_in_total",
			"Request frames decoded from client connections."),
		Replies: reg.Counter("lucky_tcp_replies_total",
			"Reply messages sent back to clients."),
	}
	for c := 0; c < metrics.NumKeyClasses; c++ {
		m.Service[c] = reg.Histogram("lucky_tcp_service_latency_ns",
			"Shard service latency by key class: submit to reply-filled, nanoseconds.",
			metrics.L("class", metrics.KeyClassLabels[c]))
	}
	return m
}

func (m *ServerMetrics) frameIn() {
	if m == nil {
		return
	}
	m.FramesIn.Inc()
}

func (m *ServerMetrics) replies(n int) {
	if m == nil || n == 0 {
		return
	}
	m.Replies.Add(int64(n))
}

// ClientMetrics instruments one TCP client endpoint: frames written,
// frames received, and stale-connection redials (the transparent
// retry a crash-restarted server triggers). Nil disables everything.
type ClientMetrics struct {
	FramesOut *metrics.Counter
	FramesIn  *metrics.Counter
	Redials   *metrics.Counter
}

// NewClientMetrics wires the client instruments into reg under the
// given role label (e.g. "writer", "reader").
func NewClientMetrics(reg *metrics.Registry, role string) *ClientMetrics {
	l := metrics.L("role", role)
	return &ClientMetrics{
		FramesOut: reg.Counter("lucky_tcp_client_frames_out_total",
			"Frame-carrying writes to servers (a batched write may carry several frames).", l),
		FramesIn: reg.Counter("lucky_tcp_client_frames_in_total",
			"Frames decoded from servers.", l),
		Redials: reg.Counter("lucky_tcp_client_redials_total",
			"Stale-connection retries: writes that redialed after a peer restart.", l),
	}
}

func (m *ClientMetrics) frameOut() {
	if m == nil {
		return
	}
	m.FramesOut.Inc()
}

func (m *ClientMetrics) frameIn() {
	if m == nil {
		return
	}
	m.FramesIn.Inc()
}

func (m *ClientMetrics) redial() {
	if m == nil {
		return
	}
	m.Redials.Inc()
}
