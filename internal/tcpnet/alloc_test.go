//go:build !race

package tcpnet

import (
	"testing"

	"luckystore/internal/core"
	"luckystore/internal/types"
)

// tcpSteadyStateAllocBudget bounds a steady-state fast operation over
// loopback TCP, across all goroutines. On top of simnet's boxings
// (request + S acks) the TCP path pays one decode boxing per frame on
// each side (the codec's unavoidable Message boxing, see
// wire.TestCodecSteadyStateAllocs) — but no per-frame buffers: encode
// goes through pooled/reusable buffers on both client and server, and
// decode through the codec's chunk pool. Structurally that is
// 1 + 2·S boxings client+server plus S decode boxings back at the
// client = 10 for S = 3; the budget has two allocs of headroom.
//
// The tests write one-byte values (interned by the runtime) to pin the
// *structural* cost: multi-byte payloads additionally pay the
// unavoidable one-string-per-decoded-value term, which scales with the
// number of value fields decoded (2·S for PW, up to 3·S for READ_ACK),
// not with the pipeline.
const tcpSteadyStateAllocBudget = 12

// tcpAllocCluster starts S serialized-mode servers and a client
// endpoint for id over loopback TCP.
func tcpAllocCluster(t *testing.T, cfg core.Config, id types.ProcID) *Client {
	t.Helper()
	servers := make(map[types.ProcID]string, cfg.S())
	for i := 0; i < cfg.S(); i++ {
		srv, err := Listen(types.ServerID(i), "127.0.0.1:0", core.NewServer())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		servers[srv.ID()] = srv.Addr()
	}
	c, err := Dial(id, servers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestPutSteadyStateAllocsTCP(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, Fw: 0, NumReaders: 1}
	c := tcpAllocCluster(t, cfg, types.WriterID())
	w := core.NewWriter(cfg, types.WriterID(), c)
	for i := 0; i < 64; i++ {
		if err := w.Write("warm"); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := w.Write("v"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > tcpSteadyStateAllocBudget+0.5 {
		t.Errorf("steady-state Write over TCP: %.1f allocs/op, budget %d", allocs, tcpSteadyStateAllocBudget)
	}
	if !w.LastMeta().Fast {
		t.Fatal("writes were not fast; the measurement did not hit the steady-state path")
	}
}

func TestGetSteadyStateAllocsTCP(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, Fw: 0, NumReaders: 1}
	wc := tcpAllocCluster(t, cfg, types.WriterID())
	w := core.NewWriter(cfg, types.WriterID(), wc)
	if err := w.Write("s"); err != nil {
		t.Fatal(err)
	}
	rc, err := Dial(types.ReaderID(0), wc.addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rc.Close() })
	r := core.NewReader(cfg, types.ReaderID(0), rc)
	for i := 0; i < 64; i++ {
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > tcpSteadyStateAllocBudget+0.5 {
		t.Errorf("steady-state Read over TCP: %.1f allocs/op, budget %d", allocs, tcpSteadyStateAllocBudget)
	}
	if !r.LastMeta().Fast() {
		t.Fatal("reads were not fast; the measurement did not hit the steady-state path")
	}
}
