package tcpnet

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"luckystore/internal/metrics"
	"luckystore/internal/node"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// framePipelineDepth bounds how many request frames per connection may
// be in flight between the read loop and the write pump. A full
// pipeline blocks the read loop — backpressure through TCP flow control
// onto a client that stopped reading its replies.
const framePipelineDepth = 64

// ListenSharded starts a server whose automaton is split into shards
// stepped in parallel: a node.StepPool owns one worker per shard, every
// connection's read loop routes each inbound message to its shard, and
// a per-connection write pump sends the replies. Unlike Listen, no
// mutex serializes steps across connections — messages for different
// shards (different keys, under keyed.ShardedServer's routing) are
// stepped concurrently, across and within connections.
//
// The reply contract matches Listen's serialized loop: all replies to
// one request frame coalesce into batch frames (one frame per round
// trip for a batched multi-key request), reply frames for one
// connection go out in request order, and so per-(peer,key) FIFO order
// is preserved end to end.
//
// The shards and route function typically come from a
// keyed.ShardedServer's Shards and Route methods.
func ListenSharded(id types.ProcID, addr string, shards []node.Automaton, route func(wire.Message) int, opts ...ServerOption) (*Server, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("tcpnet: sharded server needs at least one shard")
	}
	s, err := listen(id, addr)
	if err != nil {
		return nil, err
	}
	for _, o := range opts {
		o(s)
	}
	s.pool = node.NewStepPool(shards, route)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// replySlot holds one inner message's replies to the peer. A step of
// this protocol family produces at most one reply to the requester, so
// the slot stores that message inline; rest exists only for exotic
// automata and stays nil on the hot path.
type replySlot struct {
	msg  wire.Message
	rest []wire.Message
}

// pendingFrame collects the replies of one request frame: one slot per
// inner message, filled by shard workers as steps complete, in whatever
// order the shards finish. ready closes when every slot is filled, and
// the write pump reads the slots in request order — intra-frame reply
// order is deterministic even though stepping was parallel.
//
// Frames are pooled: in the steady state a request frame costs one
// channel allocation, not a struct + slot array + per-slot reply slice.
type pendingFrame struct {
	slots     []replySlot
	remaining atomic.Int32
	ready     chan struct{}
}

var framePool = sync.Pool{New: func() any { return new(pendingFrame) }}

func newPendingFrame(n int) *pendingFrame {
	pf := framePool.Get().(*pendingFrame)
	if cap(pf.slots) < n {
		pf.slots = make([]replySlot, n)
	} else {
		pf.slots = pf.slots[:n]
	}
	pf.ready = make(chan struct{})
	pf.remaining.Store(int32(n))
	return pf
}

// release clears the slots' message references (so pooling does not
// pin replies for GC) and returns the frame to the pool. Only the
// write pump calls it, after the frame has been written or dropped.
func (pf *pendingFrame) release() {
	clear(pf.slots)
	framePool.Put(pf)
}

// fill stores slot i's replies — selected from the worker's scratch
// output, which is only valid during this call — and closes ready when
// it was the last outstanding slot. Each slot is filled exactly once,
// by the worker that stepped its message; the atomic decrement orders
// every fill before the close, so the pump reads the slots race-free.
func (pf *pendingFrame) fill(i int, out []transport.Outgoing, peer types.ProcID) {
	slot := &pf.slots[i]
	for _, o := range out {
		if o.To != peer {
			continue // a data-centric server replies only to the requester
		}
		if slot.msg == nil {
			slot.msg = o.Msg
		} else {
			slot.rest = append(slot.rest, o.Msg)
		}
	}
	if pf.remaining.Add(-1) == 0 {
		close(pf.ready)
	}
}

// appendReplies appends all replies in request order to buf. Only valid
// after ready.
func (pf *pendingFrame) appendReplies(buf []wire.Message) []wire.Message {
	for i := range pf.slots {
		if pf.slots[i].msg != nil {
			buf = append(buf, pf.slots[i].msg)
		}
		buf = append(buf, pf.slots[i].rest...)
	}
	return buf
}

// servePipelined handles one connection on the sharded path: the read
// loop (this goroutine) decodes frames and submits each inner message
// to its shard worker, and the write pump goroutine sends each frame's
// coalesced replies once its steps complete, in request order.
func (s *Server) servePipelined(conn net.Conn, peer types.ProcID) {
	frames := make(chan *pendingFrame, framePipelineDepth)
	pumpDone := make(chan struct{})
	go s.writePump(conn, peer, frames, pumpDone)

	br := bufio.NewReaderSize(conn, connBufSize)
readLoop:
	for {
		env, err := wire.DecodeFrame(br)
		if err != nil {
			break // EOF, malformed frame, or closed
		}
		s.met.frameIn()
		inner := wire.Expand(env)
		if len(inner) == 0 {
			continue
		}
		pf := newPendingFrame(len(inner))
		select {
		case frames <- pf:
		case <-s.closed:
			pf.release() // never reached the pump; don't leak it from the pool
			break readLoop
		}
		for i, e := range inner {
			slot := i
			// Per-key-class service latency: submit to reply-filled,
			// measured only for keyed messages on an instrumented server
			// (cls stays -1 otherwise and the sink skips the observe).
			var t0 time.Time
			cls := -1
			if s.met != nil {
				if k, isKeyed := e.Msg.(wire.Keyed); isKeyed {
					cls = metrics.KeyClass(k.Key)
					t0 = time.Now()
				}
			}
			// The connection authenticates the sender: ignore the
			// claimed From and use the handshake identity. The sink runs
			// on the shard worker; it only copies the peer-bound replies
			// out of the worker's scratch and decrements.
			ok := s.pool.Submit(peer, e.Msg, func(out []transport.Outgoing) {
				pf.fill(slot, out, peer)
				if cls >= 0 {
					s.met.Service[cls].ObserveSince(t0)
				}
			})
			if !ok {
				// Pool closed mid-frame: complete the slot empty so the
				// pump can drain and exit.
				pf.fill(slot, nil, peer)
			}
		}
	}
	close(frames)
	<-pumpDone
}

// writePump is the connection's dedicated writer: it takes completed
// frames in request order and writes each frame's replies coalesced
// into batch frames (writeReplies), so concurrent shard workers never
// interleave writes on one socket. Completed frames are recycled into
// the frame pool, and the reply list is gathered into a pump-local
// reusable buffer.
//
// Replies accumulate in a buffered writer with two flush points, both
// chosen so no client ever waits on buffered bytes: before blocking —
// on a frame whose steps are still running, or on an empty pipeline —
// everything written so far is flushed; while completed frames are
// already queued, replies keep accumulating, amortizing one syscall
// over a burst. The one-reply-frame-per-request contract and request-
// order frame sequence are untouched: buffering delays bytes, never
// reorders or merges frames.
func (s *Server) writePump(conn net.Conn, peer types.ProcID, frames <-chan *pendingFrame, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(conn, connBufSize)
	var replyBuf []wire.Message
	broken := false
	flush := func() {
		if !broken && bw.Flush() != nil {
			broken = true
			_ = conn.Close() // stop the read loop too
		}
	}
	for pf := range frames {
		if broken {
			s.awaitAndRelease(pf) // keep draining so the read loop never blocks
			continue
		}
		select {
		case <-pf.ready:
		default:
			// This frame's steps are still running: flush what earlier
			// frames buffered, then wait.
			flush()
			select {
			case <-pf.ready:
			case <-s.closed:
				broken = true
				_ = conn.Close()
				s.awaitAndRelease(pf)
				continue
			}
			if broken {
				pf.release()
				continue
			}
		}
		replyBuf = pf.appendReplies(replyBuf[:0])
		pf.release()
		if err := writeReplies(bw, s.id, peer, replyBuf); err != nil {
			broken = true
			_ = conn.Close() // stop the read loop too
			continue
		}
		s.met.replies(len(replyBuf))
		if len(frames) == 0 {
			flush() // nothing completed is queued: the pipe would go idle
		}
	}
	flush()
}

// awaitAndRelease returns a dropped frame to the pool once its last
// fill has happened — a frame still being filled by shard workers must
// not be recycled under them.
func (s *Server) awaitAndRelease(pf *pendingFrame) {
	select {
	case <-pf.ready:
		pf.release()
	default:
		// Workers are still filling slots (or the pool dropped the jobs
		// on Close and ready will never close): leave the frame to the
		// GC rather than risk recycling it mid-fill.
	}
}
