package tcpnet

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"

	"luckystore/internal/node"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// framePipelineDepth bounds how many request frames per connection may
// be in flight between the read loop and the write pump. A full
// pipeline blocks the read loop — backpressure through TCP flow control
// onto a client that stopped reading its replies.
const framePipelineDepth = 64

// ListenSharded starts a server whose automaton is split into shards
// stepped in parallel: a node.StepPool owns one worker per shard, every
// connection's read loop routes each inbound message to its shard, and
// a per-connection write pump sends the replies. Unlike Listen, no
// mutex serializes steps across connections — messages for different
// shards (different keys, under keyed.ShardedServer's routing) are
// stepped concurrently, across and within connections.
//
// The reply contract matches Listen's serialized loop: all replies to
// one request frame coalesce into batch frames (one frame per round
// trip for a batched multi-key request), reply frames for one
// connection go out in request order, and so per-(peer,key) FIFO order
// is preserved end to end.
//
// The shards and route function typically come from a
// keyed.ShardedServer's Shards and Route methods.
func ListenSharded(id types.ProcID, addr string, shards []node.Automaton, route func(wire.Message) int) (*Server, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("tcpnet: sharded server needs at least one shard")
	}
	s, err := listen(id, addr)
	if err != nil {
		return nil, err
	}
	s.pool = node.NewStepPool(shards, route)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// pendingFrame collects the replies of one request frame: one slot per
// inner message, filled by shard workers as steps complete, in whatever
// order the shards finish. ready closes when every slot is filled, and
// the write pump flattens the slots in request order — intra-frame
// reply order is deterministic even though stepping was parallel.
type pendingFrame struct {
	replies   [][]wire.Message
	remaining atomic.Int32
	ready     chan struct{}
}

func newPendingFrame(n int) *pendingFrame {
	pf := &pendingFrame{
		replies: make([][]wire.Message, n),
		ready:   make(chan struct{}),
	}
	pf.remaining.Store(int32(n))
	return pf
}

// fill stores slot i's replies and closes ready when it was the last
// outstanding slot. Each slot is filled exactly once, by the worker
// that stepped its message; the atomic decrement orders every fill
// before the close, so the pump reads the slots race-free.
func (pf *pendingFrame) fill(i int, msgs []wire.Message) {
	pf.replies[i] = msgs
	if pf.remaining.Add(-1) == 0 {
		close(pf.ready)
	}
}

// flatten returns all replies in request order. Only valid after ready.
func (pf *pendingFrame) flatten() []wire.Message {
	var n int
	for _, r := range pf.replies {
		n += len(r)
	}
	out := make([]wire.Message, 0, n)
	for _, r := range pf.replies {
		out = append(out, r...)
	}
	return out
}

// servePipelined handles one connection on the sharded path: the read
// loop (this goroutine) decodes frames and submits each inner message
// to its shard worker, and the write pump goroutine sends each frame's
// coalesced replies once its steps complete, in request order.
func (s *Server) servePipelined(conn net.Conn, peer types.ProcID) {
	frames := make(chan *pendingFrame, framePipelineDepth)
	pumpDone := make(chan struct{})
	go s.writePump(conn, peer, frames, pumpDone)

	br := bufio.NewReaderSize(conn, connBufSize)
readLoop:
	for {
		env, err := wire.DecodeFrame(br)
		if err != nil {
			break // EOF, malformed frame, or closed
		}
		inner := wire.Expand(env)
		if len(inner) == 0 {
			continue
		}
		pf := newPendingFrame(len(inner))
		select {
		case frames <- pf:
		case <-s.closed:
			break readLoop
		}
		for i, e := range inner {
			slot := i
			// The connection authenticates the sender: ignore the
			// claimed From and use the handshake identity. The sink runs
			// on the shard worker; it only stores and decrements.
			ok := s.pool.Submit(peer, e.Msg, func(out []transport.Outgoing) {
				var replies []wire.Message
				for _, o := range out {
					if o.To != peer {
						continue // a data-centric server replies only to the requester
					}
					replies = append(replies, o.Msg)
				}
				pf.fill(slot, replies)
			})
			if !ok {
				// Pool closed mid-frame: complete the slot empty so the
				// pump can drain and exit.
				pf.fill(slot, nil)
			}
		}
	}
	close(frames)
	<-pumpDone
}

// writePump is the connection's dedicated writer: it takes completed
// frames in request order and writes each frame's replies coalesced
// into batch frames (writeReplies), so concurrent shard workers never
// interleave writes on one socket.
//
// Replies accumulate in a buffered writer with two flush points, both
// chosen so no client ever waits on buffered bytes: before blocking —
// on a frame whose steps are still running, or on an empty pipeline —
// everything written so far is flushed; while completed frames are
// already queued, replies keep accumulating, amortizing one syscall
// over a burst. The one-reply-frame-per-request contract and request-
// order frame sequence are untouched: buffering delays bytes, never
// reorders or merges frames.
func (s *Server) writePump(conn net.Conn, peer types.ProcID, frames <-chan *pendingFrame, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(conn, connBufSize)
	broken := false
	flush := func() {
		if !broken && bw.Flush() != nil {
			broken = true
			_ = conn.Close() // stop the read loop too
		}
	}
	for pf := range frames {
		if broken {
			continue // keep draining so the read loop never blocks
		}
		select {
		case <-pf.ready:
		default:
			// This frame's steps are still running: flush what earlier
			// frames buffered, then wait.
			flush()
			select {
			case <-pf.ready:
			case <-s.closed:
				broken = true
				_ = conn.Close()
				continue
			}
			if broken {
				continue
			}
		}
		if err := writeReplies(bw, s.id, peer, pf.flatten()); err != nil {
			broken = true
			_ = conn.Close() // stop the read loop too
			continue
		}
		if len(frames) == 0 {
			flush() // nothing completed is queued: the pipe would go idle
		}
	}
	flush()
}
