package router

import (
	"fmt"
	"net"
	"sync"

	"luckystore/internal/metrics"
	"luckystore/internal/ring"
	"luckystore/internal/tcpnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// Proxy fronts a static fleet of TCP-KV clusters behind the ordinary
// single-cluster wire protocol: it listens on S sockets that look like
// the S servers of one cluster, and forwards every keyed message to
// the same-index server of whichever cluster the ring says owns the
// key. An unmodified OpenKVTCP client pointed at the proxy's addresses
// transparently spreads its keyspace over the whole fleet.
//
// Forwarded traffic re-coalesces per (client, cluster): each session
// runs one Coalescer-wrapped upstream client per cluster, so a batch
// frame arriving from a downstream client is expanded, split by owner,
// and leaves as one batched frame per cluster — the same per-cluster
// batching the in-process Router gets from its backends' coalescers.
//
// The proxy's fleet is fixed at start: live rebalancing is the
// client-side Router's feature, because moving a key between clusters
// requires the read-then-write-forward handoff through a writer, and
// the proxy deliberately holds no register state to hand off. Resizing
// a proxied fleet is a stop-the-world operation (drain, migrate
// offline, restart with the new ClusterMap).
type Proxy struct {
	ring  *ring.Ring
	addrs map[ring.ClusterID]map[types.ProcID]string // per-cluster dial map
	ls    []net.Listener
	met   *proxyMetrics

	mu       sync.Mutex
	sessions map[types.ProcID]*session
	closed   bool
	wg       sync.WaitGroup
}

// proxyMetrics instruments the forwarding plane: inbound request
// frames, forwarded messages by owning cluster (the proxy's view of how
// the ring spreads traffic), and live session count. Nil disables
// everything.
type proxyMetrics struct {
	reg      *metrics.Registry
	framesIn *metrics.Counter
	forwards sync.Map // ring.ClusterID → *metrics.Counter
}

func newProxyMetrics(reg *metrics.Registry, p *Proxy) *proxyMetrics {
	reg.GaugeFunc("lucky_proxy_clusters", "Clusters the proxy fronts.",
		func() int64 { return int64(len(p.addrs)) })
	reg.GaugeFunc("lucky_proxy_sessions", "Downstream client sessions.",
		func() int64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return int64(len(p.sessions))
		})
	return &proxyMetrics{
		reg: reg,
		framesIn: reg.Counter("lucky_proxy_frames_in_total",
			"Request frames received from downstream clients."),
	}
}

func (m *proxyMetrics) frameIn() {
	if m == nil {
		return
	}
	m.framesIn.Inc()
}

func (m *proxyMetrics) forward(c ring.ClusterID) {
	if m == nil {
		return
	}
	if v, ok := m.forwards.Load(c); ok {
		v.(*metrics.Counter).Inc()
		return
	}
	ctr := m.reg.Counter("lucky_proxy_forwards_total",
		"Messages forwarded upstream, by owning cluster.",
		metrics.L("cluster", string(c)))
	v, _ := m.forwards.LoadOrStore(c, ctr)
	v.(*metrics.Counter).Inc()
}

// ProxyConfig configures NewProxy.
type ProxyConfig struct {
	// Seed and Vnodes must match every other router/proxy fronting the
	// same fleet.
	Seed   int64
	Vnodes int
	// Clusters maps each cluster id to its ordered server addresses.
	// Every cluster must have the same server count S.
	Clusters map[ring.ClusterID][]string
	// Listen holds the S downstream addresses to listen on; empty
	// means S times "127.0.0.1:0".
	Listen []string
	// Metrics, when non-nil, receives the proxy's live instruments.
	Metrics *metrics.Registry
}

// session is one downstream client identity's forwarding state: its
// current connection per virtual server slot, and one coalesced
// upstream client per cluster. Sessions outlive reconnects so upstream
// connections (and their lazy dials) are reused.
type session struct {
	p      *Proxy
	client types.ProcID

	mu        sync.Mutex
	conns     []*downConn // slot i: the client's connection to virtual server i
	upstreams map[ring.ClusterID]*transport.Coalescer
}

// downConn serializes reply frames onto one downstream connection.
type downConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewProxy validates the fleet, builds the ring, and starts listening.
func NewProxy(cfg ProxyConfig) (*Proxy, error) {
	if len(cfg.Clusters) == 0 {
		return nil, fmt.Errorf("router: proxy needs at least one cluster")
	}
	ids := make([]ring.ClusterID, 0, len(cfg.Clusters))
	s := -1
	for id, addrs := range cfg.Clusters {
		if s == -1 {
			s = len(addrs)
		} else if len(addrs) != s {
			return nil, fmt.Errorf("router: cluster %s has %d servers, others have %d", id, len(addrs), s)
		}
		ids = append(ids, id)
	}
	if s == 0 {
		return nil, fmt.Errorf("router: clusters with no servers")
	}
	rg, err := ring.New(cfg.Seed, cfg.Vnodes, ids)
	if err != nil {
		return nil, err
	}
	listen := cfg.Listen
	if len(listen) == 0 {
		listen = make([]string, s)
		for i := range listen {
			listen[i] = "127.0.0.1:0"
		}
	}
	if len(listen) != s {
		return nil, fmt.Errorf("router: %d listen addresses for S=%d", len(listen), s)
	}
	p := &Proxy{
		ring:     rg,
		addrs:    make(map[ring.ClusterID]map[types.ProcID]string, len(cfg.Clusters)),
		sessions: make(map[types.ProcID]*session),
	}
	for id, addrs := range cfg.Clusters {
		m := make(map[types.ProcID]string, len(addrs))
		for i, a := range addrs {
			m[types.ServerID(i)] = a
		}
		p.addrs[id] = m
	}
	if cfg.Metrics != nil {
		p.met = newProxyMetrics(cfg.Metrics, p)
	}
	for i, a := range listen {
		l, err := net.Listen("tcp", a)
		if err != nil {
			for _, prev := range p.ls {
				_ = prev.Close()
			}
			return nil, fmt.Errorf("router: listen virtual server %d on %s: %w", i, a, err)
		}
		p.ls = append(p.ls, l)
		p.wg.Add(1)
		go p.acceptLoop(i, l)
	}
	return p, nil
}

// Addrs returns the S downstream addresses, index i being virtual
// server i — the map for a client's OpenKVTCP.
func (p *Proxy) Addrs() []string {
	out := make([]string, len(p.ls))
	for i, l := range p.ls {
		out[i] = l.Addr().String()
	}
	return out
}

// Clusters returns the fronted cluster ids in sorted order.
func (p *Proxy) Clusters() []ring.ClusterID { return p.ring.Clusters() }

func (p *Proxy) acceptLoop(idx int, l net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		p.wg.Add(1)
		go p.serveConn(idx, conn)
	}
}

// serveConn speaks the tcpnet server side on one downstream
// connection: handshake, then forward every keyed frame to the owning
// cluster. Decode errors end the connection — the same stance
// tcpnet.Server takes.
func (p *Proxy) serveConn(idx int, conn net.Conn) {
	defer p.wg.Done()
	id, err := tcpnet.ReadHello(conn)
	if err != nil || !id.Valid() || id.IsServer() {
		_ = conn.Close()
		return
	}
	sess := p.sessionFor(id)
	if sess == nil {
		_ = conn.Close()
		return
	}
	dc := sess.attach(idx, conn)
	defer sess.detach(idx, dc)
	for {
		env, err := wire.DecodeFrame(conn)
		if err != nil {
			_ = conn.Close()
			return
		}
		p.met.frameIn()
		for _, e := range wire.Expand(env) {
			k, ok := e.Msg.(wire.Keyed)
			if !ok {
				continue // only the keyed protocol is routable by key
			}
			owner := p.ring.Lookup(k.Key)
			up, err := sess.upstream(owner)
			if err != nil {
				continue // dead cluster == crashed servers; clients tolerate
			}
			if up.Send(e.To, e.Msg) == nil {
				p.met.forward(owner)
			}
		}
	}
}

// sessionFor returns the client's session, creating it on first
// contact; nil after Close.
func (p *Proxy) sessionFor(id types.ProcID) *session {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	s := p.sessions[id]
	if s == nil {
		s = &session{
			p:         p,
			client:    id,
			conns:     make([]*downConn, len(p.ls)),
			upstreams: make(map[ring.ClusterID]*transport.Coalescer),
		}
		p.sessions[id] = s
	}
	return s
}

// attach installs conn as the client's connection to virtual server
// idx, displacing a predecessor from a stale reconnect.
func (s *session) attach(idx int, conn net.Conn) *downConn {
	dc := &downConn{conn: conn}
	s.mu.Lock()
	old := s.conns[idx]
	s.conns[idx] = dc
	s.mu.Unlock()
	if old != nil {
		_ = old.conn.Close()
	}
	return dc
}

// detach clears the slot if dc still owns it.
func (s *session) detach(idx int, dc *downConn) {
	s.mu.Lock()
	if s.conns[idx] == dc {
		s.conns[idx] = nil
	}
	s.mu.Unlock()
	_ = dc.conn.Close()
}

// upstream returns the session's coalesced client for a cluster,
// dialing it on first use and starting its reply pump.
func (s *session) upstream(cluster ring.ClusterID) (*transport.Coalescer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if up := s.upstreams[cluster]; up != nil {
		return up, nil
	}
	addrs := s.p.addrs[cluster]
	if addrs == nil {
		return nil, fmt.Errorf("router: unknown cluster %s", cluster)
	}
	cl, err := tcpnet.Dial(s.client, addrs)
	if err != nil {
		return nil, err
	}
	up := transport.NewCoalescer(cl)
	s.upstreams[cluster] = up
	s.p.wg.Add(1)
	go s.pump(up)
	return up, nil
}

// pump routes one upstream's replies back to the downstream connection
// of the same server index: cluster server si answers through virtual
// server si, so the client's per-server accounting (quorums, fault
// suspicion) keeps working unmodified.
func (s *session) pump(up *transport.Coalescer) {
	defer s.p.wg.Done()
	for env := range up.Recv() {
		idx := env.From.Index()
		s.mu.Lock()
		var dc *downConn
		if idx >= 0 && idx < len(s.conns) {
			dc = s.conns[idx]
		}
		s.mu.Unlock()
		if dc == nil {
			continue // client gone from this slot; reply undeliverable
		}
		dc.mu.Lock()
		err := wire.EncodeFrame(dc.conn, wire.Envelope{From: env.From, To: s.client, Msg: env.Msg})
		dc.mu.Unlock()
		if err != nil {
			_ = dc.conn.Close()
		}
	}
}

// Close stops the listeners, tears down every session's connections
// and upstream clients, and waits for all proxy goroutines.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	sessions := p.sessions
	p.sessions = nil
	p.mu.Unlock()

	for _, l := range p.ls {
		_ = l.Close()
	}
	for _, s := range sessions {
		s.mu.Lock()
		conns := append([]*downConn(nil), s.conns...)
		ups := make([]*transport.Coalescer, 0, len(s.upstreams))
		for _, up := range s.upstreams {
			ups = append(ups, up)
		}
		s.mu.Unlock()
		for _, dc := range conns {
			if dc != nil {
				_ = dc.conn.Close()
			}
		}
		for _, up := range ups {
			_ = up.Close() // closes the tcpnet client, ending its pump
		}
	}
	p.wg.Wait()
	return nil
}
