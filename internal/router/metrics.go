package router

import (
	"sync"

	"luckystore/internal/metrics"
	"luckystore/internal/ring"
)

// Metrics instruments the routing layer: per-cluster operation counts
// (how the ring spreads traffic), the routing epoch, and migration
// activity — placements moved by a fleet change, and how many of those
// carried data (the read-then-write-forward handoff). Per-cluster
// counters are cached in sync.Maps so the hot path after the first
// operation per cluster is one lock-free load plus an atomic add. Nil
// disables everything.
type Metrics struct {
	reg        *metrics.Registry
	Migrations *metrics.Counter // placements moved to a new owner
	Handoffs   *metrics.Counter // migrations that forwarded a pair

	puts sync.Map // ring.ClusterID → *metrics.Counter
	gets sync.Map
}

// NewMetrics wires the router instruments into reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		reg: reg,
		Migrations: reg.Counter("lucky_router_migrations_total",
			"Key placements moved to a new owning cluster."),
		Handoffs: reg.Counter("lucky_router_handoffs_total",
			"Migrations that forwarded a pair (read-then-write-forward)."),
	}
}

func (m *Metrics) counterFor(cache *sync.Map, name, help string, c ring.ClusterID) *metrics.Counter {
	if v, ok := cache.Load(c); ok {
		return v.(*metrics.Counter)
	}
	ctr := m.reg.Counter(name, help, metrics.L("cluster", string(c)))
	v, _ := cache.LoadOrStore(c, ctr)
	return v.(*metrics.Counter)
}

func (m *Metrics) put(c ring.ClusterID) {
	if m == nil {
		return
	}
	m.counterFor(&m.puts, "lucky_router_puts_total",
		"Puts routed, by owning cluster.", c).Inc()
}

func (m *Metrics) get(c ring.ClusterID) {
	if m == nil {
		return
	}
	m.counterFor(&m.gets, "lucky_router_gets_total",
		"Gets routed, by owning cluster.", c).Inc()
}

func (m *Metrics) migrated(handoff bool) {
	if m == nil {
		return
	}
	m.Migrations.Inc()
	if handoff {
		m.Handoffs.Inc()
	}
}
