package router

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/kv"
	"luckystore/internal/ring"
	"luckystore/internal/types"
)

// testCluster opens one cheap simnet cluster: T=0, B=0 gives S=1, so a
// fleet of them is inexpensive enough for property and stress tests.
func testCluster(t *testing.T, readers int) *kv.Store {
	t.Helper()
	st, err := kv.Open(core.Config{NumReaders: readers, RoundTimeout: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// testRouter builds a router over n fresh clusters. The router owns the
// backends; Cleanup closes everything through it.
func testRouter(t *testing.T, n, readers int) (*Router, map[ring.ClusterID]Backend) {
	t.Helper()
	backends := make(map[ring.ClusterID]Backend, n)
	for i := 0; i < n; i++ {
		backends[ring.ID(i)] = testCluster(t, readers)
	}
	r, err := New(Options{Seed: 1, Readers: readers}, backends)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r, backends
}

func TestRouterRoutesAcrossClusters(t *testing.T) {
	const numKeys = 40
	r, backends := testRouter(t, 3, 2)

	for i := 0; i < numKeys; i++ {
		key := fmt.Sprintf("key-%d", i)
		meta, err := r.Put(key, types.Value("v-"+key))
		if err != nil {
			t.Fatal(err)
		}
		if !meta.Fast {
			t.Errorf("put %q not fast on an idle cluster: %+v", key, meta)
		}
	}
	for i := 0; i < numKeys; i++ {
		key := fmt.Sprintf("key-%d", i)
		got, meta, err := r.Get(i%2, key)
		if err != nil {
			t.Fatal(err)
		}
		if got != (types.Tagged{TS: 1, Val: types.Value("v-" + key)}) {
			t.Errorf("Get(%q) = %v", key, got)
		}
		if !meta.Fast() {
			t.Errorf("get %q not fast: %+v", key, meta)
		}
	}

	// The keys must actually spread: every cluster owns at least one,
	// and each key lives on exactly the cluster the ring names.
	rg, err := ring.New(1, 0, r.Clusters())
	if err != nil {
		t.Fatal(err)
	}
	perCluster := map[ring.ClusterID]int{}
	for i := 0; i < numKeys; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner := rg.Lookup(key)
		perCluster[owner]++
		got, err := backends[owner].(*kv.Store).Get(0, key)
		if err != nil {
			t.Fatal(err)
		}
		if got.IsBottom() {
			t.Errorf("key %q missing from its owner %s", key, owner)
		}
	}
	for _, id := range r.Clusters() {
		if perCluster[id] == 0 {
			t.Errorf("cluster %s owns no keys out of %d", id, numKeys)
		}
	}
}

func TestRouterAddClusterMigratesKeys(t *testing.T) {
	const numKeys = 30
	r, _ := testRouter(t, 2, 1)

	for i := 0; i < numKeys; i++ {
		if _, err := r.Put(fmt.Sprintf("key-%d", i), "v1"); err != nil {
			t.Fatal(err)
		}
	}
	if r.Epoch() != 1 {
		t.Fatalf("fresh router at epoch %d, want 1", r.Epoch())
	}

	joined := testCluster(t, 1)
	if err := r.AddCluster(ring.ID(2), joined); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 2 {
		t.Errorf("epoch after AddCluster = %d, want 2", r.Epoch())
	}

	// Every key still reads its value at its original timestamp — the
	// handoff replays pairs, it does not rewrite them.
	moved := 0
	after, err := ring.New(1, 0, r.Clusters())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < numKeys; i++ {
		key := fmt.Sprintf("key-%d", i)
		got, _, err := r.Get(0, key)
		if err != nil {
			t.Fatal(err)
		}
		if got != (types.Tagged{TS: 1, Val: "v1"}) {
			t.Errorf("Get(%q) after rebalance = %v, want 〈1,v1〉", key, got)
		}
		if after.Lookup(key) == ring.ID(2) {
			moved++
			// A migrated key's next write continues its timestamp
			// sequence on the new cluster.
			if _, err := r.Put(key, "v2"); err != nil {
				t.Fatal(err)
			}
			got, err := joined.Get(0, key)
			if err != nil {
				t.Fatal(err)
			}
			if got != (types.Tagged{TS: 2, Val: "v2"}) {
				t.Errorf("post-migration write of %q = %v on the joined cluster, want 〈2,v2〉", key, got)
			}
		}
	}
	if moved == 0 {
		t.Error("no key moved to the joined cluster")
	}
}

func TestRouterRemoveClusterHandsOff(t *testing.T) {
	const numKeys = 30
	r, _ := testRouter(t, 3, 1)

	for i := 0; i < numKeys; i++ {
		if _, err := r.Put(fmt.Sprintf("key-%d", i), "v1"); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RemoveCluster(ring.ID(0)); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Clusters()); got != 2 {
		t.Fatalf("%d clusters after removal, want 2", got)
	}
	for i := 0; i < numKeys; i++ {
		key := fmt.Sprintf("key-%d", i)
		got, _, err := r.Get(0, key)
		if err != nil {
			t.Fatal(err)
		}
		if got != (types.Tagged{TS: 1, Val: "v1"}) {
			t.Errorf("Get(%q) after removal = %v, want 〈1,v1〉", key, got)
		}
	}

	// Fleet-change edge cases.
	if err := r.RemoveCluster(ring.ID(0)); err == nil {
		t.Error("removing an already-removed cluster succeeded")
	}
	if err := r.AddCluster(ring.ID(0), testCluster(t, 1)); err == nil {
		t.Error("reusing a retired cluster id succeeded")
	}
	if err := r.RemoveCluster(ring.ID(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveCluster(ring.ID(2)); err == nil {
		t.Error("removing the last cluster succeeded")
	}
}

func TestRouterBatches(t *testing.T) {
	const numKeys = 64
	r, _ := testRouter(t, 4, 1)

	puts := make(map[string]types.Value, numKeys)
	keys := make([]string, 0, numKeys+1)
	for i := 0; i < numKeys; i++ {
		key := fmt.Sprintf("key-%d", i)
		puts[key] = types.Value("v-" + key)
		keys = append(keys, key)
	}
	keys = append(keys, "key-0") // duplicate: must not deadlock or error
	if err := r.PutBatch(puts); err != nil {
		t.Fatal(err)
	}
	got, err := r.GetBatch(0, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != numKeys {
		t.Fatalf("GetBatch returned %d keys, want %d", len(got), numKeys)
	}
	for key, want := range puts {
		if got[key] != (types.Tagged{TS: 1, Val: want}) {
			t.Errorf("GetBatch[%q] = %v, want 〈1,%s〉", key, got[key], want)
		}
	}
}

func TestRouterClosed(t *testing.T) {
	r, _ := testRouter(t, 2, 1)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("k", "v"); err != ErrClosed {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
	if _, _, err := r.Get(0, "k"); err != ErrClosed {
		t.Errorf("Get after Close = %v, want ErrClosed", err)
	}
	if err := r.AddCluster(ring.ID(9), testCluster(t, 1)); err != ErrClosed {
		t.Errorf("AddCluster after Close = %v, want ErrClosed", err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

// The -race stress test of the acceptance criteria: continuous per-key
// SWMR traffic (each key has exactly one writer goroutine) racing a
// sequence of cluster joins and removals. Every read must return the
// key's last completed write — across however many handoffs the key
// went through.
func TestRouterStressRebalance(t *testing.T) {
	const (
		writers     = 4
		keysPerG    = 3
		itersPerKey = 60
	)
	r, _ := testRouter(t, 2, 1)

	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 1; n <= itersPerKey; n++ {
				for k := 0; k < keysPerG; k++ {
					key := fmt.Sprintf("g%d-k%d", g, k)
					want := types.Value(fmt.Sprintf("v%d", n))
					if n%8 == 0 {
						// Exercise the batch path under rebalance too.
						if err := r.PutBatch(map[string]types.Value{key: want}); err != nil {
							errc <- fmt.Errorf("putbatch %s: %w", key, err)
							return
						}
					} else if _, err := r.Put(key, want); err != nil {
						errc <- fmt.Errorf("put %s: %w", key, err)
						return
					}
					got, _, err := r.Get(0, key)
					if err != nil {
						errc <- fmt.Errorf("get %s: %w", key, err)
						return
					}
					if got.Val != want || got.TS != types.TS(n) {
						errc <- fmt.Errorf("get %s = %v, want 〈%d,%s〉", key, got, n, want)
						return
					}
				}
			}
		}(g)
	}

	// Rebalance while the traffic runs: grow to 4 clusters, then shrink.
	next := 2
	for _, step := range []string{"add", "add", "remove", "add", "remove"} {
		time.Sleep(30 * time.Millisecond)
		switch step {
		case "add":
			if err := r.AddCluster(ring.ID(next), testCluster(t, 1)); err != nil {
				t.Fatal(err)
			}
			next++
		case "remove":
			// Always safe: we never go below 2 active clusters.
			if err := r.RemoveCluster(r.Clusters()[0]); err != nil {
				t.Fatal(err)
			}
		}
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Final sweep: every key readable at its final pair.
	for g := 0; g < writers; g++ {
		for k := 0; k < keysPerG; k++ {
			key := fmt.Sprintf("g%d-k%d", g, k)
			got, _, err := r.Get(0, key)
			if err != nil {
				t.Fatal(err)
			}
			if got != (types.Tagged{TS: itersPerKey, Val: types.Value(fmt.Sprintf("v%d", itersPerKey))}) {
				t.Errorf("final Get(%q) = %v", key, got)
			}
		}
	}
}
