// Package router implements horizontal scale-out for the lucky
// key-value store: N independent clusters — each a full 2t+b+1 quorum
// group with its own writer and readers — fronted by one client-side
// Router that maps every key to its owning cluster through a seeded
// consistent-hash ring (internal/ring).
//
// Each cluster stays a plain kv.Store, so the per-cluster machinery
// (zero-alloc codec, per-destination Coalescer, sharded stepping) is
// reused unchanged; the router adds only the placement layer. Batches
// split per destination cluster for free: PutBatch fires the per-key
// asynchronous puts on whichever backend owns each key, and every
// backend's own Coalescer groups its share into batched frames — one
// coalesced fan-out per cluster, futures joined transparently.
//
// Live rebalancing works by ClusterMap epoch: AddCluster/RemoveCluster
// install a new ring under a bumped epoch, then migrate keys whose
// owner changed with a read-then-write-forward handoff (read the
// latest pair from the old owner, ForwardPut it at its exact timestamp
// on the new one). Safety argument in DESIGN.md §9: atomic reads are
// monotone, so the forwarded pair is at least as new as anything any
// client was ever returned; the per-key lock blocks that key's
// operations for the duration of its handoff; and ForwardPut skips
// pairs at or below the destination's write timestamp, so a handoff
// can never roll a register back.
package router

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"luckystore/internal/core"
	"luckystore/internal/kv"
	"luckystore/internal/metrics"
	"luckystore/internal/ring"
	"luckystore/internal/types"
)

// ErrClosed is returned by operations on a closed router.
var ErrClosed = errors.New("router closed")

// Backend is one cluster as the router consumes it: the kv.Store
// surface the routing layer needs. *kv.Store implements it for both
// simnet (kv.Open) and TCP (kv.OpenWithEndpoints) deployments.
type Backend interface {
	Put(key string, value types.Value) error
	PutMeta(key string) (core.WriteMeta, error)
	Get(idx int, key string) (types.Tagged, error)
	GetMeta(idx int, key string) (core.ReadMeta, error)
	PutAsync(key string, value types.Value) *kv.PutFuture
	GetAsync(idx int, key string) *kv.GetFuture
	ForwardPut(key string, last types.Tagged) error
	Flush() error
	Close()
}

var _ Backend = (*kv.Store)(nil)

// MultiWriterBackend is the optional capability of backends exposing
// contending writer identities: a kv.Store that adopted contender
// stores (kv.AdoptContender) implements it, for simnet and TCP fleets
// alike. PutAs(0, …) is the backend's own writer; higher identities
// contend on the same registers.
type MultiWriterBackend interface {
	Backend
	NumWriters() int
	PutAs(w int, key string, value types.Value) error
	PutMetaAs(w int, key string) (core.WriteMeta, error)
}

var _ MultiWriterBackend = (*kv.Store)(nil)

// Options configures a Router.
type Options struct {
	// Seed seeds the consistent-hash ring. Every router and proxy
	// fronting the same fleet must use the same seed.
	Seed int64
	// Vnodes is the virtual-node count per cluster (0 means
	// ring.DefaultVnodes).
	Vnodes int
	// Readers is the reader-client count of every backend; Get indexes
	// below it route to the same reader on whichever cluster owns the
	// key.
	Readers int
	// Metrics, when non-nil, threads live instrumentation through the
	// routing layer into the registry: per-cluster op counts, the
	// routing epoch, and migration/handoff counters.
	Metrics *metrics.Registry
}

// state is the router's immutable routing epoch: swapped whole on every
// fleet change, read with one atomic load on the hot path.
type state struct {
	epoch   uint64
	ring    *ring.Ring
	active  map[ring.ClusterID]Backend
	retired map[ring.ClusterID]Backend
}

// keyState caches one key's placement. epoch says which routing epoch
// the placement was computed under; 0 means never placed. The RWMutex
// is the migration barrier: operations hold it shared for their whole
// backend call, a handoff holds it exclusively — so an in-flight
// operation never spans a migration of its key.
type keyState struct {
	mu      sync.RWMutex
	epoch   uint64
	cluster ring.ClusterID
}

// Router routes every operation to the cluster owning its key. It owns
// the backends: Close closes them all, including clusters retired by
// RemoveCluster (kept alive until then so lazily-migrated keys can
// still be handed off out of them).
type Router struct {
	opts Options
	met  *Metrics // nil when uninstrumented

	mu sync.Mutex // serializes fleet changes and Close
	st atomic.Pointer[state]

	keys sync.Map // key -> *keyState
}

// New builds a router over the given backends. The router takes
// ownership of every backend.
func New(opts Options, backends map[ring.ClusterID]Backend) (*Router, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("router: no backends")
	}
	ids := make([]ring.ClusterID, 0, len(backends))
	for id := range backends {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rg, err := ring.New(opts.Seed, opts.Vnodes, ids)
	if err != nil {
		return nil, err
	}
	active := make(map[ring.ClusterID]Backend, len(backends))
	for id, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("router: nil backend for %s", id)
		}
		active[id] = b
	}
	r := &Router{opts: opts}
	r.st.Store(&state{
		epoch:   1,
		ring:    rg,
		active:  active,
		retired: map[ring.ClusterID]Backend{},
	})
	if opts.Metrics != nil {
		r.met = NewMetrics(opts.Metrics)
		opts.Metrics.GaugeFunc("lucky_router_epoch",
			"Current routing epoch (bumped by every fleet change; 0 after Close).",
			func() int64 { return int64(r.Epoch()) })
		opts.Metrics.GaugeFunc("lucky_router_clusters",
			"Active clusters in the ring.",
			func() int64 { return int64(len(r.Clusters())) })
	}
	return r, nil
}

// Epoch returns the current routing epoch (bumped by every fleet
// change), 0 after Close.
func (r *Router) Epoch() uint64 {
	if st := r.st.Load(); st != nil {
		return st.epoch
	}
	return 0
}

// Clusters returns the active cluster ids in sorted order.
func (r *Router) Clusters() []ring.ClusterID {
	st := r.st.Load()
	if st == nil {
		return nil
	}
	return st.ring.Clusters()
}

// NumReaders returns the per-cluster reader-client count.
func (r *Router) NumReaders() int { return r.opts.Readers }

// NumWriters reports how many contending writer identities are usable
// fleet-wide: the minimum over the active clusters' writer-identity
// maps, 1 as soon as any backend is single-writer. A key may migrate
// to any cluster, so an identity is only usable if every cluster can
// serve it.
func (r *Router) NumWriters() int {
	st := r.st.Load()
	if st == nil {
		return 0
	}
	n := 0
	for _, b := range st.active {
		m, ok := b.(MultiWriterBackend)
		if !ok {
			return 1
		}
		if nw := m.NumWriters(); n == 0 || nw < n {
			n = nw
		}
	}
	return max(n, 1)
}

// keyStateFor returns key's placement cache entry, creating it on
// first touch.
func (r *Router) keyStateFor(key string) *keyState {
	if v, ok := r.keys.Load(key); ok {
		return v.(*keyState)
	}
	v, _ := r.keys.LoadOrStore(key, &keyState{})
	return v.(*keyState)
}

// acquire resolves key's owning backend under the key's shared lock.
// On success the caller holds ks.mu.RLock and must RUnlock after its
// backend call; a stale placement is migrated (exclusively) first,
// then re-acquired.
func (r *Router) acquire(key string) (*keyState, Backend, error) {
	ks := r.keyStateFor(key)
	for {
		ks.mu.RLock()
		st := r.st.Load()
		if st == nil {
			ks.mu.RUnlock()
			return nil, nil, ErrClosed
		}
		if ks.epoch == st.epoch {
			return ks, st.active[ks.cluster], nil
		}
		ks.mu.RUnlock()
		ks.mu.Lock()
		err := r.migrateLocked(key, ks)
		ks.mu.Unlock()
		if err != nil {
			return nil, nil, err
		}
	}
}

// migrateLocked brings key's placement up to the current epoch; caller
// holds ks.mu exclusively. If the owner changed, the latest pair is
// read from the old cluster (active or retired) and forwarded to the
// new one at its exact timestamp before the placement is updated — the
// read-then-write-forward handoff.
func (r *Router) migrateLocked(key string, ks *keyState) error {
	st := r.st.Load()
	if st == nil {
		return ErrClosed
	}
	owner := st.ring.Lookup(key)
	if ks.epoch == 0 || ks.cluster == owner {
		ks.cluster = owner
		ks.epoch = st.epoch
		return nil
	}
	oldB := st.active[ks.cluster]
	if oldB == nil {
		oldB = st.retired[ks.cluster]
	}
	newB := st.active[owner]
	if newB == nil {
		return fmt.Errorf("router: no backend for owner %s of %q", owner, key)
	}
	if oldB != nil {
		last, err := oldB.Get(0, key)
		if err != nil {
			return fmt.Errorf("router: handoff read of %q from %s: %w", key, ks.cluster, err)
		}
		if err := newB.ForwardPut(key, last); err != nil {
			return fmt.Errorf("router: handoff write of %q to %s: %w", key, owner, err)
		}
	}
	r.met.migrated(oldB != nil)
	ks.cluster = owner
	ks.epoch = st.epoch
	return nil
}

// migrateAll eagerly migrates every key touched so far to the current
// epoch. Keys a concurrent sync.Map.Range misses — or keys first
// touched later — migrate lazily in acquire, which is why retired
// backends stay alive until Close.
func (r *Router) migrateAll() error {
	var errs []error
	r.keys.Range(func(k, v any) bool {
		ks := v.(*keyState)
		ks.mu.Lock()
		if err := r.migrateLocked(k.(string), ks); err != nil {
			errs = append(errs, err)
		}
		ks.mu.Unlock()
		return true
	})
	return errors.Join(errs...)
}

// AddCluster joins a new cluster to the fleet under the given id: the
// routing epoch is bumped, and every key whose owner becomes the new
// cluster is handed off to it. The router takes ownership of b. A
// retired id cannot be reused — placement history would be ambiguous.
func (r *Router) AddCluster(id ring.ClusterID, b Backend) error {
	if b == nil {
		return fmt.Errorf("router: nil backend for %s", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.st.Load()
	if st == nil {
		return ErrClosed
	}
	if _, ok := st.active[id]; ok {
		return fmt.Errorf("router: cluster %s already active", id)
	}
	if _, ok := st.retired[id]; ok {
		return fmt.Errorf("router: cluster id %s was retired and cannot be reused", id)
	}
	ids := append(append([]ring.ClusterID{}, st.ring.Clusters()...), id)
	rg, err := ring.New(r.opts.Seed, r.opts.Vnodes, ids)
	if err != nil {
		return err
	}
	active := make(map[ring.ClusterID]Backend, len(st.active)+1)
	for cid, cb := range st.active {
		active[cid] = cb
	}
	active[id] = b
	r.st.Store(&state{epoch: st.epoch + 1, ring: rg, active: active, retired: st.retired})
	return r.migrateAll()
}

// RemoveCluster retires a cluster: the epoch is bumped, every touched
// key it owned is handed off to its new owner, and the backend is
// flushed but kept open (and owned) until Close, so keys that migrate
// lazily later can still read their pair out of it. The last cluster
// cannot be removed.
func (r *Router) RemoveCluster(id ring.ClusterID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.st.Load()
	if st == nil {
		return ErrClosed
	}
	b, ok := st.active[id]
	if !ok {
		return fmt.Errorf("router: cluster %s not active", id)
	}
	if len(st.active) == 1 {
		return fmt.Errorf("router: cannot remove the last cluster %s", id)
	}
	ids := make([]ring.ClusterID, 0, len(st.active)-1)
	for _, cid := range st.ring.Clusters() {
		if cid != id {
			ids = append(ids, cid)
		}
	}
	rg, err := ring.New(r.opts.Seed, r.opts.Vnodes, ids)
	if err != nil {
		return err
	}
	active := make(map[ring.ClusterID]Backend, len(ids))
	for cid, cb := range st.active {
		if cid != id {
			active[cid] = cb
		}
	}
	retired := make(map[ring.ClusterID]Backend, len(st.retired)+1)
	for cid, cb := range st.retired {
		retired[cid] = cb
	}
	retired[id] = b
	r.st.Store(&state{epoch: st.epoch + 1, ring: rg, active: active, retired: retired})
	err = r.migrateAll()
	if ferr := b.Flush(); err == nil {
		err = ferr
	}
	return err
}

// Put writes value under key on the owning cluster and returns the
// write's metadata. Puts to one key are serialized (each backend
// register stays SWMR); puts to different keys run concurrently even
// across clusters.
func (r *Router) Put(key string, value types.Value) (core.WriteMeta, error) {
	ks, b, err := r.acquire(key)
	if err != nil {
		return core.WriteMeta{}, err
	}
	defer ks.mu.RUnlock()
	r.met.put(ks.cluster)
	if err := b.Put(key, value); err != nil {
		return core.WriteMeta{}, err
	}
	return b.PutMeta(key)
}

// PutAs writes value under key through contending writer identity w of
// the owning cluster; PutAs(0, …) is Put. Distinct identities may run
// concurrently on the same key — the per-key migration lock is shared,
// so contending puts proceed in parallel while a handoff still excludes
// them all. Identity w must exist on every cluster (NumWriters).
func (r *Router) PutAs(w int, key string, value types.Value) (core.WriteMeta, error) {
	if w == 0 {
		return r.Put(key, value)
	}
	ks, b, err := r.acquire(key)
	if err != nil {
		return core.WriteMeta{}, err
	}
	defer ks.mu.RUnlock()
	r.met.put(ks.cluster)
	m, ok := b.(MultiWriterBackend)
	if !ok {
		return core.WriteMeta{}, fmt.Errorf("router: cluster owning %q exposes a single writer identity", key)
	}
	if err := m.PutAs(w, key, value); err != nil {
		return core.WriteMeta{}, err
	}
	return m.PutMetaAs(w, key)
}

// Get reads key through reader idx of the owning cluster.
func (r *Router) Get(idx int, key string) (types.Tagged, core.ReadMeta, error) {
	ks, b, err := r.acquire(key)
	if err != nil {
		return types.Tagged{}, core.ReadMeta{}, err
	}
	defer ks.mu.RUnlock()
	r.met.get(ks.cluster)
	v, err := b.Get(idx, key)
	if err != nil {
		return types.Tagged{}, core.ReadMeta{}, err
	}
	meta, err := b.GetMeta(idx, key)
	return v, meta, err
}

// PutBatch writes every entry concurrently. The fan-out splits per
// destination cluster by construction: each key's asynchronous put
// fires on its owning backend, and every backend's Coalescer groups
// its share of the batch into coalesced frames — one batched fan-out
// per cluster, one join here. Like kv.PutBatch this is not a
// transaction; each key individually keeps its register guarantees.
func (r *Router) PutBatch(puts map[string]types.Value) error {
	type pending struct {
		ks  *keyState
		f   *kv.PutFuture
		key string
	}
	pends := make([]pending, 0, len(puts))
	var errs []error
	for key, value := range puts {
		ks, b, err := r.acquire(key)
		if err != nil {
			errs = append(errs, fmt.Errorf("put %q: %w", key, err))
			continue
		}
		r.met.put(ks.cluster)
		pends = append(pends, pending{ks: ks, f: b.PutAsync(key, value), key: key})
	}
	for _, p := range pends {
		if err := p.f.Wait(); err != nil {
			errs = append(errs, fmt.Errorf("put %q: %w", p.key, err))
		}
		p.ks.mu.RUnlock()
	}
	return errors.Join(errs...)
}

// GetBatch reads every key through reader idx of its owning cluster,
// with the same per-cluster coalescing as PutBatch. Keys never written
// map to the initial pair 〈0,⊥〉; on failures the successful subset is
// returned with an errors.Join of the failures.
func (r *Router) GetBatch(idx int, keys []string) (map[string]types.Tagged, error) {
	type pending struct {
		ks  *keyState
		f   *kv.GetFuture
		key string
	}
	pends := make([]pending, 0, len(keys))
	var errs []error
	seen := make(map[string]bool, len(keys))
	for _, key := range keys {
		// Dedup: a repeated key would re-RLock its own keyState, which
		// can deadlock against a waiting migration writer.
		if seen[key] {
			continue
		}
		seen[key] = true
		ks, b, err := r.acquire(key)
		if err != nil {
			errs = append(errs, fmt.Errorf("get %q: %w", key, err))
			continue
		}
		r.met.get(ks.cluster)
		pends = append(pends, pending{ks: ks, f: b.GetAsync(idx, key), key: key})
	}
	out := make(map[string]types.Tagged, len(pends))
	for _, p := range pends {
		v, err := p.f.Wait()
		if err != nil {
			errs = append(errs, fmt.Errorf("get %q: %w", p.key, err))
		} else {
			out[p.key] = v
		}
		p.ks.mu.RUnlock()
	}
	return out, errors.Join(errs...)
}

// Flush drains every active backend's outbound queues.
func (r *Router) Flush() error {
	st := r.st.Load()
	if st == nil {
		return ErrClosed
	}
	var errs []error
	for _, b := range st.active {
		if err := b.Flush(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close closes every backend, active and retired. Idempotent.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.st.Swap(nil)
	if st == nil {
		return nil
	}
	for _, b := range st.active {
		b.Close()
	}
	for _, b := range st.retired {
		b.Close()
	}
	return nil
}
