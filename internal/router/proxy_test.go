package router

import (
	"fmt"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/kv"
	"luckystore/internal/ring"
	"luckystore/internal/tcpnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
)

// listenTCPCluster starts one S=1 TCP-KV cluster and returns its
// server address.
func listenTCPCluster(t *testing.T) string {
	t.Helper()
	auto := kv.NewShardedServerAutomaton(2)
	srv, err := tcpnet.ListenSharded(types.ServerID(0), "127.0.0.1:0", auto.Shards(), auto.Route())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv.Addr()
}

// dialStore opens a kv store over TCP endpoints for the given ordered
// server addresses.
func dialStore(t *testing.T, cfg core.Config, addrs []string) *kv.Store {
	t.Helper()
	m := make(map[types.ProcID]string, len(addrs))
	for i, a := range addrs {
		m[types.ServerID(i)] = a
	}
	wep, err := tcpnet.Dial(types.WriterID(), m)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]transport.Endpoint, cfg.NumReaders)
	for i := range reps {
		if reps[i], err = tcpnet.Dial(types.ReaderID(i), m); err != nil {
			t.Fatal(err)
		}
	}
	st, err := kv.OpenWithEndpoints(cfg, wep, reps)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// An unmodified TCP-KV client pointed at the proxy spreads its keys
// over the fleet: every key reads back correctly through the proxy,
// and afterwards each key's pair is found on exactly the cluster the
// ring assigns it to.
func TestProxyRoutesAcrossTCPClusters(t *testing.T) {
	const numKeys = 24
	cfg := core.Config{NumReaders: 1, RoundTimeout: 100 * time.Millisecond}

	clusters := map[ring.ClusterID][]string{
		"c0": {listenTCPCluster(t)},
		"c1": {listenTCPCluster(t)},
	}
	p, err := NewProxy(ProxyConfig{Seed: 1, Clusters: clusters})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()

	st := dialStore(t, cfg, p.Addrs())
	keys := make([]string, numKeys)
	puts := make(map[string]types.Value, numKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		puts[keys[i]] = types.Value("v-" + keys[i])
	}
	// The batch path exercises proxy-side expand + per-cluster
	// re-coalescing; singles exercise the plain path.
	if err := st.PutBatch(puts); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		got, err := st.Get(0, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != (types.Tagged{TS: 1, Val: puts[k]}) {
			t.Errorf("Get(%q) through proxy = %v", k, got)
		}
	}
	st.Close()

	// Placement check: dial each cluster directly — a key must be
	// present on its ring owner and absent everywhere else.
	rg, err := ring.New(1, 0, p.Clusters())
	if err != nil {
		t.Fatal(err)
	}
	perCluster := map[ring.ClusterID]int{}
	for id, addrs := range clusters {
		direct := dialStore(t, cfg, addrs)
		for _, k := range keys {
			got, err := direct.Get(0, k)
			if err != nil {
				t.Fatal(err)
			}
			if owner := rg.Lookup(k); owner == id {
				perCluster[id]++
				if got.IsBottom() {
					t.Errorf("key %q missing from its owner %s", k, id)
				}
			} else if !got.IsBottom() {
				t.Errorf("key %q leaked onto %s (owner %s)", k, id, owner)
			}
		}
		direct.Close()
	}
	for id := range clusters {
		if perCluster[id] == 0 {
			t.Errorf("cluster %s received no keys out of %d", id, numKeys)
		}
	}
}
