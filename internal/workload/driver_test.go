package workload

import (
	"context"
	"testing"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/core"
	"luckystore/internal/kv"
	"luckystore/internal/regular"
	"luckystore/internal/twophase"
)

// Mixed through the Driver interface must behave identically across
// deployments: every history checker-clean under the deployment's
// contract.
func TestMixedRunDriverAcrossDeployments(t *testing.T) {
	mix := Mixed{Writes: 15, ReadsPerReader: 10}

	t.Run("core", func(t *testing.T) {
		c, err := core.NewCluster(core.Config{T: 1, B: 0, Fw: 0, NumReaders: 2,
			RoundTimeout: 10 * time.Millisecond, OpTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rec, err := mix.RunDriver(ClusterDriver{C: c})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range checker.CheckAtomicity(rec.Ops()) {
			t.Error(v)
		}
	})

	t.Run("kv", func(t *testing.T) {
		st, err := kv.Open(core.Config{T: 1, B: 0, Fw: 0, NumReaders: 2,
			RoundTimeout: 10 * time.Millisecond, OpTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		rec, err := mix.RunDriver(KVDriver{S: st, Readers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range checker.CheckAtomicityPerKey(rec.Ops()) {
			t.Error(v)
		}
	})

	t.Run("regular", func(t *testing.T) {
		c, err := regular.NewCluster(regular.Config{T: 1, B: 0, NumReaders: 2,
			RoundTimeout: 10 * time.Millisecond, OpTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rec, err := mix.RunDriver(RegularDriver{C: c})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range checker.CheckRegularity(rec.Ops()) {
			t.Error(v)
		}
	})

	t.Run("twophase", func(t *testing.T) {
		c, err := twophase.NewCluster(twophase.Config{T: 1, B: 0, Fr: 0, NumReaders: 2,
			RoundTimeout: 10 * time.Millisecond, OpTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rec, err := mix.RunDriver(&TwoPhaseDriver{C: c})
		if err != nil {
			t.Fatal(err)
		}
		ops := rec.Ops()
		for _, v := range checker.CheckAtomicity(ops) {
			t.Error(v)
		}
		// The driver's timestamp mirror must agree with the values the
		// checker correlates — any drift would have shown up as
		// no-creation violations above; assert writes carry 1..N.
		seen := map[int64]bool{}
		for _, op := range ops {
			if op.Kind == checker.KindWrite {
				seen[int64(op.Value.TS)] = true
			}
		}
		for i := int64(1); i <= int64(mix.Writes); i++ {
			if !seen[i] {
				t.Errorf("write ts %d missing from history", i)
			}
		}
	})
}

// Continuous drives multi-key traffic until cancelled, records per-key
// ops, and stays checker-clean per key.
func TestContinuousMultiKey(t *testing.T) {
	st, err := kv.Open(core.Config{T: 1, B: 0, Fw: 0, NumReaders: 2,
		RoundTimeout: 10 * time.Millisecond, OpTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	rec, err := Continuous{
		Keys: []string{"x", "y", "z"}, Seed: 5, HotFrac: 0.5,
		WritePace: time.Millisecond, ReadPace: 500 * time.Microsecond,
	}.Run(ctx, KVDriver{S: st, Readers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	if len(ops) == 0 {
		t.Fatal("no ops recorded")
	}
	byKey := checker.ByKey(ops)
	for _, k := range []string{"x", "y", "z"} {
		if len(byKey[k]) == 0 {
			t.Errorf("key %q saw no traffic", k)
		}
	}
	for _, v := range checker.CheckAtomicityPerKey(ops) {
		t.Error(v)
	}
}

// On a single-register driver the key set collapses to one register.
func TestContinuousCollapsesKeysForSingleRegister(t *testing.T) {
	c, err := core.NewCluster(core.Config{T: 1, B: 0, Fw: 0, NumReaders: 1,
		RoundTimeout: 10 * time.Millisecond, OpTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	rec, err := Continuous{Keys: []string{"a", "b"}, Seed: 1}.Run(ctx, ClusterDriver{C: c})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range rec.Ops() {
		if op.Key != "" {
			t.Fatalf("single-register driver recorded key %q", op.Key)
		}
	}
	for _, v := range checker.CheckAtomicity(rec.Ops()) {
		t.Error(v)
	}
}
