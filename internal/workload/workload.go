// Package workload drives clusters with reproducible operation mixes
// and records the resulting histories for the checker. It is the shared
// engine behind the experiments (internal/experiments), the benchmarks
// (bench_test.go) and several integration tests.
package workload

import (
	"fmt"
	"sync"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/core"
	"luckystore/internal/types"
)

// Value returns the deterministic payload of the i-th write, padded to
// size bytes (size 0 keeps the short form). Values are unique per index
// so the checker can associate reads with writes unambiguously.
func Value(i, size int) types.Value {
	v := fmt.Sprintf("v%d", i)
	if size > len(v) {
		v += string(make([]byte, size-len(v)))
	}
	return types.Value(v)
}

// WriterValue is Value for contending-writer workloads: the payload
// additionally carries the writer index, so values stay unique across
// writers and the checker's read-to-write association is unambiguous.
func WriterValue(w, i, size int) types.Value {
	v := fmt.Sprintf("w%d.v%d", w, i)
	if size > len(v) {
		v += string(make([]byte, size-len(v)))
	}
	return types.Value(v)
}

// Mixed drives writes sequentially from the cluster writer while
// nReaders reader clients loop concurrently, recording every operation.
type Mixed struct {
	Writes         int
	ReadsPerReader int
	ValueSize      int
}

// Run executes the workload on a core cluster and returns the recorded
// history. The first error from any client is returned after all
// goroutines have stopped.
func (m Mixed) Run(c *core.Cluster) (*checker.Recorder, error) {
	return m.RunDriver(ClusterDriver{C: c})
}

// RunDriver executes the workload against any deployment through its
// Driver. Single-register semantics: all traffic targets one register
// (DefaultKey on multi-key drivers).
func (m Mixed) RunDriver(d Driver) (*checker.Recorder, error) {
	key := ""
	if d.MultiKey() {
		key = DefaultKey
	}
	rec := checker.NewRecorder()
	var wg sync.WaitGroup
	errs := make(chan error, 1+d.NumReaders())

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= m.Writes; i++ {
			v := Value(i, m.ValueSize)
			inv := time.Now()
			got, meta, err := d.Write(key, v)
			ret := time.Now()
			if err != nil {
				errs <- fmt.Errorf("write %d: %w", i, err)
				return
			}
			rec.Add(checker.Op{
				Client: types.WriterID(), Kind: checker.KindWrite, Key: key,
				Value:  got,
				Invoke: inv, Return: ret, Rounds: meta.Rounds, Fast: meta.Fast,
			})
		}
	}()

	for r := 0; r < d.NumReaders(); r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < m.ReadsPerReader; i++ {
				inv := time.Now()
				got, meta, err := d.Read(r, key)
				ret := time.Now()
				if err != nil {
					errs <- fmt.Errorf("reader %d op %d: %w", r, i, err)
					return
				}
				rec.Add(checker.Op{
					Client: types.ReaderID(r), Kind: checker.KindRead, Key: key,
					Value:  got,
					Invoke: inv, Return: ret, Rounds: meta.Rounds, Fast: meta.Fast,
				})
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-errs:
		return rec, err
	default:
		return rec, nil
	}
}

// Sequential drives n writes, each followed by one read from reader 0,
// with no concurrency at all: every operation is contention-free, and
// on a synchronous network therefore lucky.
func Sequential(c *core.Cluster, n int) (*checker.Recorder, error) {
	rec := checker.NewRecorder()
	for i := 1; i <= n; i++ {
		v := Value(i, 0)
		inv := time.Now()
		if err := c.Writer().Write(v); err != nil {
			return rec, fmt.Errorf("write %d: %w", i, err)
		}
		wm := c.Writer().LastMeta()
		rec.Add(checker.Op{
			Client: types.WriterID(), Kind: checker.KindWrite,
			Value:  wm.Value(v),
			Invoke: inv, Return: time.Now(), Rounds: wm.Rounds, Fast: wm.Fast,
		})
		inv = time.Now()
		got, err := c.Reader(0).Read()
		if err != nil {
			return rec, fmt.Errorf("read %d: %w", i, err)
		}
		rm := c.Reader(0).LastMeta()
		rec.Add(checker.Op{
			Client: types.ReaderID(0), Kind: checker.KindRead,
			Value:  got,
			Invoke: inv, Return: time.Now(), Rounds: rm.Rounds(), Fast: rm.Fast(),
		})
	}
	return rec, nil
}

// RoundStats extracts per-kind round distributions from a history.
func RoundStats(ops []checker.Op) (writes, reads map[int]int) {
	writes, reads = make(map[int]int), make(map[int]int)
	for _, op := range ops {
		if op.Err != nil {
			continue
		}
		switch op.Kind {
		case checker.KindWrite:
			writes[op.Rounds]++
		case checker.KindRead:
			reads[op.Rounds]++
		}
	}
	return writes, reads
}
