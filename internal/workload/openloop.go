package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/types"
)

// ErrOverload marks an operation the open-loop generator had to shed:
// its arrival found the target actor's queue full, meaning the system
// fell behind the offered rate. Shed arrivals are recorded as failed
// ops (and surface as Errors in a Result) instead of silently vanishing
// — an open-loop harness that drops load without accounting overstates
// the system it measures.
var ErrOverload = errors.New("workload: open-loop arrival shed (actor queue full)")

// OpenLoop generates traffic at a fixed offered rate, independent of
// operation completions — the harness shape that exposes queueing
// delay, unlike Continuous's closed loop where a slow system simply
// slows its own clients. Arrivals are produced by one central clock and
// dispatched to per-actor queues: one worker per key serializes that
// key's writes (the SWMR contract), one worker per reader client
// serializes its reads. Latency is measured from arrival, so time spent
// queued behind a slow operation counts — the coordinated-omission-free
// number an SLO wants.
type OpenLoop struct {
	// Keys are the registers to exercise (required; open loop drives
	// multi-key drivers only).
	Keys []string
	// Rate is the offered load in operations per second, arrivals
	// spaced evenly. Required.
	Rate float64
	// WriteFrac is the probability an arrival is a write; zero means
	// 0.5.
	WriteFrac float64
	// ValueSize pads written values (0 keeps the short form).
	ValueSize int
	// Seed drives arrival choices (op kind, key) reproducibly.
	Seed int64
	// HotFrac is the probability a read targets Keys[0].
	HotFrac float64
	// QueueDepth bounds each actor's pending-arrival queue; an arrival
	// finding it full is shed and recorded with ErrOverload. Zero means
	// 128.
	QueueDepth int
}

// openJob is one arrival: the instant it entered the system and, for
// writes, nothing else — the worker owns value sequencing.
type openJob struct {
	key     string
	arrival time.Time
}

// Run offers load to d until ctx is cancelled and returns the recorded
// history with the first operation error (shed arrivals are recorded
// but do not count as operation errors). Wall time between Run's start
// and return is the window to pass Summarize.
func (g OpenLoop) Run(ctx context.Context, d Driver) (*checker.Recorder, error) {
	if !d.MultiKey() {
		return nil, fmt.Errorf("workload: open loop requires a multi-key driver, got %T", d)
	}
	keys := g.Keys
	if len(keys) == 0 {
		keys = []string{DefaultKey}
	}
	if g.Rate <= 0 {
		return nil, fmt.Errorf("workload: open loop needs a positive Rate, got %v", g.Rate)
	}
	writeFrac := g.WriteFrac
	if writeFrac == 0 {
		writeFrac = 0.5
	}
	depth := g.QueueDepth
	if depth <= 0 {
		depth = 128
	}

	rec := checker.NewRecorder()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// One write worker per key: arrivals for a key serialize through
	// its queue, preserving the SWMR per-key contract while different
	// keys proceed concurrently.
	writeQ := make(map[string]chan openJob, len(keys))
	for _, key := range keys {
		key := key
		q := make(chan openJob, depth)
		writeQ[key] = q
		wg.Add(1)
		go func() {
			defer wg.Done()
			broken := false
			for i := 1; ; i++ {
				job, ok := <-q
				if !ok {
					return
				}
				if broken {
					// The writer already failed; account the queued
					// arrival as shed rather than retrying on a dead path.
					rec.Add(checker.Op{
						Client: types.WriterID(), Kind: checker.KindWrite, Key: key,
						Invoke: job.arrival, Return: time.Now(), Err: ErrOverload,
					})
					continue
				}
				v := Value(i, g.ValueSize)
				got, meta, err := d.Write(key, v)
				ret := time.Now()
				if err != nil {
					got = types.Tagged{Val: v}
				}
				if !meta.Ghost.IsZero() {
					rec.Add(checker.Op{
						Client: types.WriterID(), Kind: checker.KindWrite, Key: key,
						Value:  types.Tagged{TS: meta.Ghost.Seq, W: meta.Ghost.Writer, Val: v},
						Invoke: job.arrival, Return: ret, Err: ErrSpecGhost,
					})
				}
				rec.Add(checker.Op{
					Client: types.WriterID(), Kind: checker.KindWrite, Key: key,
					Value:  got,
					Invoke: job.arrival, Return: ret, Rounds: meta.Rounds, Fast: meta.Fast, Err: err,
				})
				if err != nil {
					fail(fmt.Errorf("open-loop writer %q #%d: %w", key, i, err))
					broken = true
				}
			}
		}()
	}

	// One read worker per reader client, honoring the per-reader
	// serialization contract; arrivals round-robin over them.
	readQs := make([]chan openJob, d.NumReaders())
	for r := range readQs {
		r := r
		q := make(chan openJob, depth)
		readQs[r] = q
		wg.Add(1)
		go func() {
			defer wg.Done()
			broken := false
			for i := 0; ; i++ {
				job, ok := <-q
				if !ok {
					return
				}
				if broken {
					rec.Add(checker.Op{
						Client: types.ReaderID(r), Kind: checker.KindRead, Key: job.key,
						Invoke: job.arrival, Return: time.Now(), Err: ErrOverload,
					})
					continue
				}
				got, meta, err := d.Read(r, job.key)
				ret := time.Now()
				rec.Add(checker.Op{
					Client: types.ReaderID(r), Kind: checker.KindRead, Key: job.key,
					Value:  got,
					Invoke: job.arrival, Return: ret, Rounds: meta.Rounds, Fast: meta.Fast, Err: err,
				})
				if err != nil {
					fail(fmt.Errorf("open-loop reader %d op %d on %q: %w", r, i, job.key, err))
					broken = true
				}
			}
		}()
	}

	// Arrival clock: evenly spaced ticks at the offered rate, each
	// dispatching one operation. A full queue sheds the arrival
	// immediately — the clock never blocks, or the loop would degrade
	// into a closed one.
	rng := rand.New(rand.NewSource(g.Seed))
	interval := time.Duration(float64(time.Second) / g.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	nextReader := 0
arrivals:
	for {
		select {
		case <-ctx.Done():
			break arrivals
		case <-tick.C:
		}
		key := keys[rng.Intn(len(keys))]
		now := time.Now()
		if rng.Float64() < writeFrac {
			select {
			case writeQ[key] <- openJob{key: key, arrival: now}:
			default:
				rec.Add(checker.Op{
					Client: types.WriterID(), Kind: checker.KindWrite, Key: key,
					Invoke: now, Return: now, Err: ErrOverload,
				})
			}
		} else {
			if g.HotFrac > 0 && rng.Float64() < g.HotFrac {
				key = keys[0]
			}
			q := readQs[nextReader]
			nextReader = (nextReader + 1) % len(readQs)
			select {
			case q <- openJob{key: key, arrival: now}:
			default:
				rec.Add(checker.Op{
					Client: types.ReaderID(0), Kind: checker.KindRead, Key: key,
					Invoke: now, Return: now, Err: ErrOverload,
				})
			}
		}
	}
	for _, q := range writeQ {
		close(q)
	}
	for _, q := range readQs {
		close(q)
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return rec, firstErr
}
