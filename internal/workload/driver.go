package workload

// The Driver interface decouples workload generation from the
// deployment it runs against: the same operation mix (and the same
// chaos schedule) drives the core simnet cluster, the sharded KV
// engine, the loopback-TCP KV deployment, and the protocol variants.
//
// The contract mirrors the model: one writer (per key — SWMR), a fixed
// set of reader clients, and per-operation metadata for round-trip
// accounting. A Driver's Write for one key must not be called
// concurrently with itself, and Read must not be called concurrently
// for the same reader index; the workloads in this package respect
// both by construction (one goroutine per writer key, one per reader).
//
// Deployments configured with multiple writer identities additionally
// implement MultiWriter: WriteAs(w, …) routes a write through writer w,
// and distinct w values MAY be called concurrently — even on the same
// key. Contending writes bind totally ordered ⟨seq, writer⟩ stamps.

import (
	"luckystore/internal/core"
	"luckystore/internal/kv"
	"luckystore/internal/regular"
	"luckystore/internal/router"
	"luckystore/internal/twophase"
	"luckystore/internal/types"
)

// DefaultKey is the register multi-key drivers use when a workload is
// single-register in spirit (Mixed, Sequential): keyed transports
// reject the empty key, so "k0" stands in for "the one register".
const DefaultKey = "k0"

// OpMeta is the per-operation round accounting every driver reports.
type OpMeta struct {
	Rounds int
	Fast   bool
	// Spec reports a write that completed on the speculative
	// multi-writer fast path (no stamp-query round, DESIGN.md §12).
	Spec bool
	// Ghost is the stamp of a speculative pre-write attempt that was
	// NACKed or starved and abandoned mid-operation, zero when none.
	// Workloads must record it as a failed write in checker histories:
	// the abandoned pair can linger on servers and concurrent reads may
	// legitimately return it.
	Ghost types.Stamp
}

// Driver abstracts a running deployment for workload generation.
type Driver interface {
	// NumReaders reports how many reader clients the deployment has.
	NumReaders() int
	// MultiKey reports whether the deployment exposes independent
	// registers by key. Single-register drivers ignore the key
	// arguments, and workloads collapse the key set to {""} for them.
	MultiKey() bool
	// Write stores v under key through the deployment's writer and
	// returns the 〈stamp, value〉 pair the write bound. On error the
	// pair is unspecified and recorded with a zero stamp.
	Write(key string, v types.Value) (types.Tagged, OpMeta, error)
	// Read reads key through reader client r.
	Read(r int, key string) (types.Tagged, OpMeta, error)
}

// MultiWriter is the optional capability of deployments that expose
// more than one writer identity. WriteAs(0, …) is the deployment's
// primary writer (identical to Write); WriteAs(w, …) for w ≥ 1 routes
// through the w-th contending writer. Calls with distinct w values may
// run concurrently, including on the same key — that is the point.
type MultiWriter interface {
	// NumWriters reports how many writer identities the deployment has.
	NumWriters() int
	// WriteAs stores v under key through writer w.
	WriteAs(w int, key string, v types.Value) (types.Tagged, OpMeta, error)
}

// ClusterDriver drives a core single-register cluster.
type ClusterDriver struct{ C *core.Cluster }

// NumReaders implements Driver.
func (d ClusterDriver) NumReaders() int { return d.C.Config().NumReaders }

// MultiKey implements Driver.
func (d ClusterDriver) MultiKey() bool { return false }

// Write implements Driver.
func (d ClusterDriver) Write(key string, v types.Value) (types.Tagged, OpMeta, error) {
	return d.WriteAs(0, key, v)
}

// NumWriters implements MultiWriter.
func (d ClusterDriver) NumWriters() int { return d.C.NumWriters() }

// WriteAs implements MultiWriter.
func (d ClusterDriver) WriteAs(w int, _ string, v types.Value) (types.Tagged, OpMeta, error) {
	wr := d.C.WriterN(w)
	if err := wr.Write(v); err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	m := wr.LastMeta()
	return m.Value(v), OpMeta{Rounds: m.Rounds, Fast: m.Fast, Spec: m.Spec, Ghost: m.Ghost}, nil
}

// Read implements Driver.
func (d ClusterDriver) Read(r int, _ string) (types.Tagged, OpMeta, error) {
	got, err := d.C.Reader(r).Read()
	if err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	m := d.C.Reader(r).LastMeta()
	return got, OpMeta{Rounds: m.Rounds(), Fast: m.Fast()}, nil
}

// KVDriver drives a multi-register kv.Store — both the in-memory
// sharded engine (kv.Open) and a TCP deployment's client store
// (kv.OpenWithEndpoints / luckystore.OpenKVTCP).
type KVDriver struct {
	S *kv.Store
	// Readers is the number of reader clients the store was opened
	// with (the store does not expose it for external-endpoint opens).
	Readers int
	// Contenders are additional stores sharing S's servers under
	// distinct writer identities (kv.OpenContender). When non-empty the
	// driver implements multi-writer workloads: WriteAs(k) for k ≥ 1
	// routes through Contenders[k-1].
	Contenders []*kv.Store
}

// NumReaders implements Driver.
func (d KVDriver) NumReaders() int { return d.Readers }

// MultiKey implements Driver.
func (d KVDriver) MultiKey() bool { return true }

// Write implements Driver.
func (d KVDriver) Write(key string, v types.Value) (types.Tagged, OpMeta, error) {
	return d.WriteAs(0, key, v)
}

// NumWriters implements MultiWriter.
func (d KVDriver) NumWriters() int { return 1 + len(d.Contenders) }

// WriteAs implements MultiWriter.
func (d KVDriver) WriteAs(w int, key string, v types.Value) (types.Tagged, OpMeta, error) {
	s := d.S
	if w > 0 {
		s = d.Contenders[w-1]
	}
	if err := s.Put(key, v); err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	m, err := s.PutMeta(key)
	if err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	return m.Value(v), OpMeta{Rounds: m.Rounds, Fast: m.Fast, Spec: m.Spec, Ghost: m.Ghost}, nil
}

// Read implements Driver.
func (d KVDriver) Read(r int, key string) (types.Tagged, OpMeta, error) {
	got, err := d.S.Get(r, key)
	if err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	m, err := d.S.GetMeta(r, key)
	if err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	return got, OpMeta{Rounds: m.Rounds(), Fast: m.Fast()}, nil
}

// RouterDriver drives a scale-out fleet through its router: every
// operation routes to the cluster owning its key, so the same
// workloads (and chaos schedules) exercise placement, per-cluster
// coalescing, and live rebalancing.
type RouterDriver struct{ R *router.Router }

// NumReaders implements Driver.
func (d RouterDriver) NumReaders() int { return d.R.NumReaders() }

// MultiKey implements Driver.
func (d RouterDriver) MultiKey() bool { return true }

// Write implements Driver.
func (d RouterDriver) Write(key string, v types.Value) (types.Tagged, OpMeta, error) {
	m, err := d.R.Put(key, v)
	if err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	return m.Value(v), OpMeta{Rounds: m.Rounds, Fast: m.Fast, Spec: m.Spec, Ghost: m.Ghost}, nil
}

// NumWriters implements MultiWriter: the fleet-wide usable identity
// count (minimum over clusters).
func (d RouterDriver) NumWriters() int { return d.R.NumWriters() }

// WriteAs implements MultiWriter via the router's writer-identity map.
func (d RouterDriver) WriteAs(w int, key string, v types.Value) (types.Tagged, OpMeta, error) {
	m, err := d.R.PutAs(w, key, v)
	if err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	return m.Value(v), OpMeta{Rounds: m.Rounds, Fast: m.Fast, Spec: m.Spec, Ghost: m.Ghost}, nil
}

// Read implements Driver.
func (d RouterDriver) Read(r int, key string) (types.Tagged, OpMeta, error) {
	got, m, err := d.R.Get(r, key)
	if err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	return got, OpMeta{Rounds: m.Rounds(), Fast: m.Fast()}, nil
}

// RegularDriver drives an Appendix D regular-variant cluster. Its
// histories satisfy regularity, not atomicity — check them with
// checker.CheckRegularity.
type RegularDriver struct{ C *regular.Cluster }

// NumReaders implements Driver.
func (d RegularDriver) NumReaders() int { return d.C.Config().NumReaders }

// MultiKey implements Driver.
func (d RegularDriver) MultiKey() bool { return false }

// Write implements Driver.
func (d RegularDriver) Write(_ string, v types.Value) (types.Tagged, OpMeta, error) {
	if err := d.C.Writer().Write(v); err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	m := d.C.Writer().LastMeta()
	return m.Value(v), OpMeta{Rounds: m.Rounds, Fast: m.Fast}, nil
}

// Read implements Driver.
func (d RegularDriver) Read(r int, _ string) (types.Tagged, OpMeta, error) {
	got, err := d.C.Reader(r).Read()
	if err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	m := d.C.Reader(r).LastMeta()
	return got, OpMeta{Rounds: m.Rounds(), Fast: m.Fast()}, nil
}

// TwoPhaseDriver drives an Appendix C two-phase cluster. The variant's
// writer does not expose per-operation metadata, but it assigns
// timestamps 1, 2, 3, … in invocation order and every WRITE takes
// exactly two round-trips, so the driver tracks both itself.
type TwoPhaseDriver struct {
	C *twophase.Cluster
	// ts mirrors the writer's internal timestamp; the driver must own
	// all writes for the count to stay in sync (SWMR guarantees it).
	ts types.TS
}

// NumReaders implements Driver.
func (d *TwoPhaseDriver) NumReaders() int { return d.C.Config().NumReaders }

// MultiKey implements Driver.
func (d *TwoPhaseDriver) MultiKey() bool { return false }

// Write implements Driver.
func (d *TwoPhaseDriver) Write(_ string, v types.Value) (types.Tagged, OpMeta, error) {
	d.ts++ // the writer advances its timestamp on every attempt
	if err := d.C.Writer().Write(v); err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	return types.Tagged{TS: d.ts, Val: v}, OpMeta{Rounds: d.C.Writer().Rounds(), Fast: false}, nil
}

// Read implements Driver.
func (d *TwoPhaseDriver) Read(r int, _ string) (types.Tagged, OpMeta, error) {
	got, err := d.C.Reader(r).Read()
	if err != nil {
		return types.Tagged{}, OpMeta{}, err
	}
	m := d.C.Reader(r).LastMeta()
	return got, OpMeta{Rounds: m.Rounds(), Fast: m.Fast()}, nil
}
