package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/types"
)

// ErrMWUnsupported is returned by Continuous.Run when the workload asks
// for contending writer identities (Writers > 1) but the deployment
// exposes only one. The silent fall-back to a single writer this
// replaces made multi-writer scenarios vacuously pass on deployments
// that never exercised contention; callers that genuinely want
// best-effort degradation (the chaos matrix running one scenario set
// over every deployment kind) clamp Writers themselves and say so.
var ErrMWUnsupported = errors.New("workload: multi-writer traffic unsupported (deployment exposes a single writer identity)")

// ErrSpecGhost marks the failed-write history entry recorded for a
// speculative pre-write attempt that was NACKed or starved and
// abandoned (OpMeta.Ghost). The pair may linger on servers, so the
// checker must know the stamp was bound — as by a crashed writer —
// without treating the attempt as a completed write.
var ErrSpecGhost = errors.New("speculative pre-write aborted (stamp may linger on servers)")

// Continuous generates open-ended traffic until its context is
// cancelled: one writer goroutine per key and one goroutine per reader
// client, each pacing its own operations. It is the traffic source the
// chaos engine runs underneath a fault schedule, so it is built to keep
// going while servers crash, links flap and partitions roll — an
// operation error is recorded (and stops only the actor that hit it),
// never panics the run.
//
// Key choice per read is driven by a seeded RNG, so the operation mix
// is reproducible up to scheduling. HotFrac concentrates reads on
// Keys[0], which is how scenarios script contention phases.
type Continuous struct {
	// Keys are the registers to exercise. Empty (or a single-register
	// driver) collapses to the one unnamed register.
	Keys []string
	// Writers is how many writer identities contend on every key. Zero
	// or one keeps the classic SWMR shape. Higher values require a
	// driver implementing MultiWriter and are capped at its
	// NumWriters(); drivers without the capability fall back to one
	// writer, so the same scenario runs benignly everywhere.
	Writers int
	// ValueSize pads written values (0 keeps the short form).
	ValueSize int
	// Seed makes each actor's key choices reproducible.
	Seed int64
	// HotFrac is the probability a read targets Keys[0] instead of a
	// uniformly chosen key — the contention knob.
	HotFrac float64
	// WritePace and ReadPace are per-actor sleeps between operations;
	// zero means DefaultWritePace/DefaultReadPace. Pacing bounds the
	// history size so checking stays cheap even on a fast simnet.
	WritePace time.Duration
	ReadPace  time.Duration
}

// Default paces: fast enough for heavy contention, slow enough that a
// multi-second run yields a checkable (not million-op) history.
const (
	DefaultWritePace = 2 * time.Millisecond
	DefaultReadPace  = time.Millisecond
)

// Run drives d until ctx is cancelled and returns the recorded
// history together with the first operation error (nil in a clean
// run). Every recorded Op carries its key, so per-key checking applies
// directly.
func (g Continuous) Run(ctx context.Context, d Driver) (*checker.Recorder, error) {
	keys := g.Keys
	if !d.MultiKey() {
		keys = []string{""}
	} else if len(keys) == 0 {
		keys = []string{DefaultKey}
	}
	writePace, readPace := g.WritePace, g.ReadPace
	if writePace <= 0 {
		writePace = DefaultWritePace
	}
	if readPace <= 0 {
		readPace = DefaultReadPace
	}

	rec := checker.NewRecorder()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// One writer goroutine per (key, writer): a single identity per
	// register is the classic SWMR shape, and with Writers > 1 the
	// identities contend on every key through MultiWriter.WriteAs. A
	// given writer identity still never runs two of its own writes
	// concurrently — contention is across identities, as in the model.
	// Asking for contention a deployment cannot deliver is an error,
	// not a quiet downgrade (ErrMWUnsupported).
	writers := 1
	var mw MultiWriter
	if g.Writers > 1 {
		m, ok := d.(MultiWriter)
		if !ok || m.NumWriters() <= 1 {
			return rec, fmt.Errorf("%w: driver %T, Writers=%d", ErrMWUnsupported, d, g.Writers)
		}
		mw = m
		writers = min(g.Writers, m.NumWriters())
	}
	for _, key := range keys {
		for w := 0; w < writers; w++ {
			key, w := key, w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 1; ; i++ {
					// Writer-distinct values keep the checker's
					// read-to-write association unambiguous under
					// contention.
					v := WriterValue(w, i, g.ValueSize)
					if writers == 1 {
						v = Value(i, g.ValueSize)
					}
					inv := time.Now()
					var (
						got  types.Tagged
						meta OpMeta
						err  error
					)
					if mw != nil {
						got, meta, err = mw.WriteAs(w, key, v)
					} else {
						got, meta, err = d.Write(key, v)
					}
					ret := time.Now()
					if err != nil {
						got = types.Tagged{Val: v}
					}
					if !meta.Ghost.IsZero() {
						// The operation abandoned a speculative pre-write
						// at this stamp before completing at got's: record
						// it as a failed write so the checker accepts
						// concurrent reads that return the lingering pair.
						rec.Add(checker.Op{
							Client: types.WriterIDN(w), Kind: checker.KindWrite, Key: key,
							Value:  types.Tagged{TS: meta.Ghost.Seq, W: meta.Ghost.Writer, Val: v},
							Invoke: inv, Return: ret, Err: ErrSpecGhost,
						})
					}
					op := checker.Op{
						Client: types.WriterIDN(w), Kind: checker.KindWrite, Key: key,
						Value:  got,
						Invoke: inv, Return: ret, Rounds: meta.Rounds, Fast: meta.Fast, Err: err,
					}
					rec.Add(op)
					if err != nil {
						fail(fmt.Errorf("writer %d %q #%d: %w", w, key, i, err))
						return
					}
					if !sleepCtx(ctx, writePace) {
						return
					}
				}
			}()
		}
	}

	for r := 0; r < d.NumReaders(); r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(g.Seed*1000003 + int64(r)))
			for i := 0; ; i++ {
				key := keys[rng.Intn(len(keys))]
				if g.HotFrac > 0 && rng.Float64() < g.HotFrac {
					key = keys[0]
				}
				inv := time.Now()
				got, meta, err := d.Read(r, key)
				ret := time.Now()
				op := checker.Op{
					Client: types.ReaderID(r), Kind: checker.KindRead, Key: key,
					Value:  got,
					Invoke: inv, Return: ret, Rounds: meta.Rounds, Fast: meta.Fast, Err: err,
				}
				rec.Add(op)
				if err != nil {
					fail(fmt.Errorf("reader %d op %d on %q: %w", r, i, key, err))
					return
				}
				if !sleepCtx(ctx, readPace) {
					return
				}
			}
		}()
	}

	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return rec, firstErr
}

// sleepCtx sleeps for d or until ctx is done; it reports whether the
// caller should continue.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
