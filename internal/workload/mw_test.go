package workload

import (
	"context"
	"errors"
	"testing"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/core"
	"luckystore/internal/kv"
	"luckystore/internal/types"
)

// Continuous with Writers > 1 runs contending writer identities on
// every key of a core MW cluster; the history carries both identities
// and stays atomic under the stamp order.
func TestContinuousContendingWritersCore(t *testing.T) {
	c, err := core.NewCluster(core.Config{T: 1, B: 0, Fw: 0, NumReaders: 2,
		Writers: 2, RoundTimeout: 10 * time.Millisecond, OpTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	rec, err := Continuous{Writers: 2, Seed: 3,
		WritePace: time.Millisecond, ReadPace: 500 * time.Microsecond,
	}.Run(ctx, ClusterDriver{C: c})
	if err != nil {
		t.Fatal(err)
	}

	byWriter := map[types.ProcID]int{}
	for _, op := range rec.Ops() {
		if op.Kind == checker.KindWrite {
			byWriter[op.Client]++
		}
	}
	for w := 0; w < 2; w++ {
		if byWriter[types.WriterIDN(w)] == 0 {
			t.Errorf("writer %d recorded no writes", w)
		}
	}
	for _, v := range checker.CheckAtomicity(rec.Ops()) {
		t.Error(v)
	}
}

// The same contending workload through kv contender stores: two Store
// handles with distinct writer identities share every key, and the
// per-key histories stay atomic.
func TestContinuousContendingWritersKV(t *testing.T) {
	st, err := kv.Open(core.Config{T: 1, B: 0, Fw: 0, NumReaders: 2,
		RoundTimeout: 10 * time.Millisecond, OpTimeout: 5 * time.Second},
		kv.WithContenders(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ct, err := st.OpenContender(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	d := KVDriver{S: st, Readers: 2, Contenders: []*kv.Store{ct}}
	if d.NumWriters() != 2 {
		t.Fatalf("NumWriters() = %d, want 2", d.NumWriters())
	}
	rec, err := Continuous{Keys: []string{"hot", "cold"}, Writers: 2, Seed: 7, HotFrac: 0.6,
		WritePace: time.Millisecond, ReadPace: 500 * time.Microsecond,
	}.Run(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for _, op := range rec.Ops() {
		if op.Kind == checker.KindWrite && op.Err == nil {
			writes++
			if idx := op.Client.WriterIndex(); idx >= 0 &&
				op.Value.Stamp().Writer != types.WID(idx) {
				t.Errorf("op by %s bound writer component %d", op.Client, op.Value.Stamp().Writer)
			}
		}
	}
	if writes == 0 {
		t.Fatal("no writes recorded")
	}
	for _, v := range checker.CheckAtomicityPerKey(rec.Ops()) {
		t.Error(v)
	}
}

// Drivers without the MultiWriter capability (or with Writers left at
// the default) degrade to the classic single-writer shape.
func TestContinuousWritersUnsupportedIsExplicit(t *testing.T) {
	st, err := kv.Open(core.Config{T: 1, B: 0, Fw: 0, NumReaders: 1,
		RoundTimeout: 10 * time.Millisecond, OpTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	// Writers: 3 requested, but the driver has a single identity: the
	// run must refuse rather than silently degrade to one writer — a
	// degraded run would make contention scenarios vacuously pass.
	rec, err := Continuous{Writers: 3, Seed: 9,
		WritePace: time.Millisecond}.Run(ctx, KVDriver{S: st, Readers: 1})
	if !errors.Is(err, ErrMWUnsupported) {
		t.Fatalf("Run with Writers=3 on a single-writer driver: err = %v, want ErrMWUnsupported", err)
	}
	if rec == nil || len(rec.Ops()) != 0 {
		t.Fatalf("refused run must record no operations, got %v", rec)
	}
}
