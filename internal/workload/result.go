package workload

import (
	"errors"
	"math"
	"sort"
	"time"

	"luckystore/internal/checker"
)

// Result summarizes one traffic run's recorded history: operation and
// round counts, the fast-path fraction, ghost-stamp retries, and
// client-observed latency percentiles. It is the single reporting path
// shared by the chaos engine and the luckyload SLO harness — both
// summarize a checker history through Summarize, so their numbers are
// computed the same way and their JSON artifacts stay comparable.
type Result struct {
	// Ops counts successful operations; Writes + Reads == Ops.
	Ops    int `json:"ops"`
	Writes int `json:"writes"`
	Reads  int `json:"reads"`
	// Errors counts failed operations, excluding ghost entries.
	Errors int `json:"errors,omitempty"`
	// Ghosts counts abandoned speculative pre-writes (stamps that may
	// linger on servers and were retried at a later stamp). They are a
	// write-path retry signal, not completed operations.
	Ghosts int `json:"ghosts,omitempty"`
	// Rounds is the total communication round-trip count of successful
	// operations; RoundsPerOp is the mean.
	Rounds      int     `json:"rounds"`
	RoundsPerOp float64 `json:"rounds_per_op"`
	// FastFrac is the fraction of successful operations that finished
	// in one round — the protocol's headline "lucky" metric.
	FastFrac float64 `json:"fast_frac"`
	// Elapsed is the wall-clock window the summary covers; Throughput
	// is successful operations per second over it. Both are zero when
	// Summarize was given no window.
	Elapsed    time.Duration `json:"elapsed_ns,omitempty"`
	Throughput float64       `json:"throughput_ops_per_sec,omitempty"`
	// Latency percentiles of successful operations, overall and by
	// kind.
	Latency      LatencySummary `json:"latency"`
	WriteLatency LatencySummary `json:"write_latency"`
	ReadLatency  LatencySummary `json:"read_latency"`
}

// LatencySummary holds client-observed latency percentiles in
// nanoseconds (JSON) / time.Duration (Go).
type LatencySummary struct {
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
}

// summarizeLatency computes percentiles over a sample set; it sorts
// its argument in place.
func summarizeLatency(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(q float64) time.Duration {
		// Nearest-rank: the smallest sample ≥ q of the distribution.
		i := int(math.Ceil(q*float64(len(samples)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	return LatencySummary{P50: at(0.50), P95: at(0.95), P99: at(0.99), P999: at(0.999)}
}

// Summarize reduces a recorded history to a Result. elapsed is the
// wall-clock window the ops were generated in (pass 0 if unknown; the
// throughput fields stay zero).
func Summarize(ops []checker.Op, elapsed time.Duration) Result {
	res := Result{Elapsed: elapsed}
	var all, writes, reads []time.Duration
	for _, op := range ops {
		if op.Err != nil {
			if errors.Is(op.Err, ErrSpecGhost) {
				res.Ghosts++
			} else {
				res.Errors++
			}
			continue
		}
		res.Ops++
		res.Rounds += op.Rounds
		if op.Fast {
			res.FastFrac++ // counted here, normalized below
		}
		lat := op.Return.Sub(op.Invoke)
		all = append(all, lat)
		switch op.Kind {
		case checker.KindWrite:
			res.Writes++
			writes = append(writes, lat)
		case checker.KindRead:
			res.Reads++
			reads = append(reads, lat)
		}
	}
	if res.Ops > 0 {
		res.FastFrac /= float64(res.Ops)
		res.RoundsPerOp = float64(res.Rounds) / float64(res.Ops)
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	res.Latency = summarizeLatency(all)
	res.WriteLatency = summarizeLatency(writes)
	res.ReadLatency = summarizeLatency(reads)
	return res
}
