package workload

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/core"
	"luckystore/internal/kv"
	"luckystore/internal/types"
)

func TestSummarize(t *testing.T) {
	base := time.Now()
	op := func(kind checker.OpKind, lat time.Duration, rounds int, fast bool, err error) checker.Op {
		return checker.Op{
			Kind: kind, Invoke: base, Return: base.Add(lat),
			Rounds: rounds, Fast: fast, Err: err,
		}
	}
	ops := []checker.Op{
		op(checker.KindWrite, 1*time.Millisecond, 1, true, nil),
		op(checker.KindWrite, 3*time.Millisecond, 2, false, nil),
		op(checker.KindRead, 2*time.Millisecond, 1, true, nil),
		op(checker.KindRead, 4*time.Millisecond, 2, false, nil),
		op(checker.KindWrite, 0, 0, false, ErrSpecGhost),
		op(checker.KindRead, 0, 0, false, errors.New("boom")),
	}
	res := Summarize(ops, 2*time.Second)
	if res.Ops != 4 || res.Writes != 2 || res.Reads != 2 {
		t.Fatalf("counts: %+v", res)
	}
	if res.Ghosts != 1 || res.Errors != 1 {
		t.Fatalf("ghosts=%d errors=%d", res.Ghosts, res.Errors)
	}
	if res.Rounds != 6 || res.RoundsPerOp != 1.5 {
		t.Fatalf("rounds=%d per-op=%v", res.Rounds, res.RoundsPerOp)
	}
	if res.FastFrac != 0.5 {
		t.Fatalf("fast frac %v", res.FastFrac)
	}
	if res.Throughput != 2.0 {
		t.Fatalf("throughput %v", res.Throughput)
	}
	if res.Latency.P50 != 2*time.Millisecond || res.Latency.P999 != 4*time.Millisecond {
		t.Fatalf("latency %+v", res.Latency)
	}
	if res.WriteLatency.P50 != 1*time.Millisecond || res.ReadLatency.P50 != 2*time.Millisecond {
		t.Fatalf("by-kind latency %+v %+v", res.WriteLatency, res.ReadLatency)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	res := Summarize(nil, 0)
	if res.Ops != 0 || res.Throughput != 0 || res.Latency.P99 != 0 {
		t.Fatalf("zero history should summarize to zero: %+v", res)
	}
}

// TestOpenLoopKV offers fixed-rate load to an in-memory KV store and
// checks the history is non-trivial, atomic per key, and summarizes
// with the open-loop window.
func TestOpenLoopKV(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, NumReaders: 2,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 10 * time.Second}
	st, err := kv.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	gen := OpenLoop{
		Keys: []string{"a", "b", "c"},
		Rate: 2000, Seed: 7, QueueDepth: 64,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	rec, err := gen.Run(ctx, KVDriver{S: st, Readers: cfg.NumReaders})
	if err != nil {
		t.Fatalf("open loop: %v", err)
	}
	res := Summarize(rec.Ops(), time.Since(start))
	if res.Ops < 100 {
		t.Fatalf("too few ops for a 500ms window at 2k/s: %+v", res)
	}
	if res.Writes == 0 || res.Reads == 0 {
		t.Fatalf("mix collapsed: %+v", res)
	}
	if res.Latency.P50 <= 0 {
		t.Fatalf("latency percentiles missing: %+v", res)
	}
	if vs := checker.CheckAtomicityPerKey(rec.Ops()); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

// TestOpenLoopShedsWhenBehind drives an offered rate far beyond what a
// one-op-at-a-time blocked driver can serve and checks arrivals are
// shed with ErrOverload instead of blocking the clock.
func TestOpenLoopShedsWhenBehind(t *testing.T) {
	d := &slowDriver{readers: 1, delay: 20 * time.Millisecond}
	gen := OpenLoop{Keys: []string{"k"}, Rate: 5000, Seed: 1, QueueDepth: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	rec, err := gen.Run(ctx, d)
	if err != nil {
		t.Fatalf("open loop: %v", err)
	}
	res := Summarize(rec.Ops(), 200*time.Millisecond)
	if res.Errors == 0 {
		t.Fatalf("expected shed arrivals, got %+v", res)
	}
}

// slowDriver serves every operation after a fixed delay — a stand-in
// for a saturated deployment.
type slowDriver struct {
	readers int
	delay   time.Duration
	seq     atomic.Int64
}

func (d *slowDriver) NumReaders() int { return d.readers }
func (d *slowDriver) MultiKey() bool  { return true }

func (d *slowDriver) Write(_ string, v types.Value) (types.Tagged, OpMeta, error) {
	time.Sleep(d.delay)
	return types.Tagged{TS: types.TS(d.seq.Add(1)), Val: v}, OpMeta{Rounds: 1, Fast: true}, nil
}

func (d *slowDriver) Read(int, string) (types.Tagged, OpMeta, error) {
	time.Sleep(d.delay)
	return types.Tagged{TS: types.TS(d.seq.Load())}, OpMeta{Rounds: 1, Fast: true}, nil
}
