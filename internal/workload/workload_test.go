package workload

import (
	"testing"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/core"
)

func testCluster(t *testing.T) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Config{
		T: 2, B: 1, Fw: 1, NumReaders: 2, RoundTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestValueUniqueAndPadded(t *testing.T) {
	if Value(1, 0) == Value(2, 0) {
		t.Error("values not unique")
	}
	if got := len(Value(3, 64)); got != 64 {
		t.Errorf("padded value length = %d, want 64", got)
	}
	if got := Value(12, 0); got != "v12" {
		t.Errorf("Value(12,0) = %q", got)
	}
}

func TestSequentialWorkloadAllFastAndAtomic(t *testing.T) {
	c := testCluster(t)
	rec, err := Sequential(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	if len(ops) != 20 {
		t.Fatalf("recorded %d ops, want 20", len(ops))
	}
	for _, op := range ops {
		if !op.Fast {
			t.Errorf("sequential lucky op not fast: %+v", op)
		}
	}
	if vs := checker.CheckAtomicity(ops); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
	writes, reads := RoundStats(ops)
	if writes[1] != 10 || reads[1] != 10 {
		t.Errorf("round stats writes=%v reads=%v, want all 1-round", writes, reads)
	}
}

func TestMixedWorkloadAtomic(t *testing.T) {
	c := testCluster(t)
	rec, err := Mixed{Writes: 25, ReadsPerReader: 15}.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	if len(ops) != 25+2*15 {
		t.Fatalf("recorded %d ops", len(ops))
	}
	if vs := checker.CheckAtomicity(ops); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestMixedWorkloadReportsClientErrors(t *testing.T) {
	c := testCluster(t)
	// Crash t+1 servers: operations cannot finish; Run must surface the
	// timeout instead of hanging (cluster OpTimeout guards each op).
	cShort, err := core.NewCluster(core.Config{
		T: 2, B: 1, Fw: 1, NumReaders: 1,
		RoundTimeout: 5 * time.Millisecond, OpTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cShort.Close)
	for i := 0; i < 3; i++ {
		cShort.CrashServer(i)
	}
	if _, err := (Mixed{Writes: 1, ReadsPerReader: 1}).Run(cShort); err == nil {
		t.Error("Run swallowed client errors")
	}
	_ = c
}
