// Package transport defines the process-to-process communication
// abstraction shared by the in-memory simulated network
// (internal/simnet) and the TCP network (internal/tcpnet).
//
// The paper's model (Section 2) assumes point-to-point reliable
// channels: every message sent between two non-faulty processes is
// eventually delivered, possibly after an arbitrary delay. The key
// consequence for an implementation is that a sender must never block
// on a slow receiver; the Mailbox type provides the required unbounded
// buffering.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// ErrClosed is returned by operations on a closed endpoint or network.
var ErrClosed = errors.New("transport closed")

// ErrUnknownPeer is returned when sending to an unregistered process.
var ErrUnknownPeer = errors.New("unknown peer")

// Endpoint is one process's attachment to a network. Send enqueues a
// message for asynchronous delivery (it never blocks on the receiver);
// Recv exposes the process's inbox. The channel is closed after Close.
type Endpoint interface {
	ID() types.ProcID
	Send(to types.ProcID, m wire.Message) error
	Recv() <-chan wire.Envelope
	Close() error
}

// BatchSender is an optional Endpoint fast path for drained send
// queues: a transport that can frame a whole per-destination run itself
// — e.g. tcpnet's client, which streams keyed runs into Batch frames
// directly inside its connection buffer — implements it, and the
// Coalescer hands the queue over instead of materializing intermediate
// wire.Batch values and encoding them frame by frame. Implementations
// must produce exactly the frames wire.CoalesceKeyed would (same
// splitting budgets, same order), so the fast path is indistinguishable
// on the wire.
type BatchSender interface {
	SendBatched(to types.ProcID, msgs []wire.Message) error
}

// Flusher is an optional Endpoint capability: Flush blocks until every
// message accepted by Send before the call has been handed to the
// underlying transport. Layers that buffer sends (the Coalescer, and
// anything stacked on one — keyed.Demux, kv.Store) implement it so
// callers can establish a deterministic drain point, e.g. the router's
// rebalance boundary before a cluster is retired.
type Flusher interface {
	Flush() error
}

// Network hands out endpoints for registered processes.
type Network interface {
	// Endpoint returns the endpoint of the process with the given id.
	Endpoint(id types.ProcID) (Endpoint, error)
	// Close shuts the network down and closes every endpoint.
	Close() error
}

// Outgoing couples a destination with a message; automata return slices
// of Outgoing from their step functions so they stay pure and testable.
type Outgoing struct {
	To  types.ProcID
	Msg wire.Message
}

// SendAll delivers each outgoing message through ep, attempting every
// send. A failed send to an individual peer is tolerated silently: on a
// real transport it means the peer has crashed, which the protocols
// already tolerate (the model's reliable channels only bind correct
// processes). SendAll returns the first error only when every send
// failed — e.g. the endpoint itself is closed — since then the
// operation cannot make progress.
func SendAll(ep Endpoint, out []Outgoing) error {
	var firstErr error
	failed := 0
	for _, o := range out {
		if err := ep.Send(o.To, o.Msg); err != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("send to %s: %w", o.To, err)
			}
		}
	}
	if len(out) > 0 && failed == len(out) {
		return firstErr
	}
	return nil
}

// Mailbox is an unbounded FIFO queue of envelopes bridging a
// never-blocking Put to a channel-based consumer. It models a reliable
// asynchronous channel: Put always succeeds until Close, and every
// envelope put before Close is eventually emitted on Out (unless the
// consumer abandons the mailbox, in which case Close discards the
// backlog).
//
// The implementation uses a queue guarded by a mutex and a single
// drainer goroutine, which is joined by Close — no goroutine outlives
// the mailbox. The queue is a slice with a head index, compacted in
// place when it fills: the backing array is reused across
// put/drain cycles instead of sliding forward and reallocating, so a
// steady-state mailbox allocates nothing per envelope.
type Mailbox struct {
	mu     sync.Mutex
	queue  []wire.Envelope
	head   int           // index of the next envelope to deliver
	wake   chan struct{} // capacity 1: signals the drainer that queue or closed changed
	closed bool

	out  chan wire.Envelope
	done chan struct{} // closed when the drainer goroutine has exited
}

// NewMailbox creates a mailbox and starts its drainer goroutine.
func NewMailbox() *Mailbox {
	m := &Mailbox{
		wake: make(chan struct{}, 1),
		out:  make(chan wire.Envelope),
		done: make(chan struct{}),
	}
	go m.drain()
	return m
}

// Put enqueues an envelope. It returns ErrClosed after Close and never
// blocks on the consumer.
func (m *Mailbox) Put(env wire.Envelope) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if m.head > 0 && len(m.queue) == cap(m.queue) {
		// Compact instead of growing: reclaim the delivered prefix so
		// the backing array is reused rather than reallocated.
		n := copy(m.queue, m.queue[m.head:])
		clear(m.queue[n:]) // drop stale references past the new tail
		m.queue = m.queue[:n]
		m.head = 0
	}
	m.queue = append(m.queue, env)
	m.mu.Unlock()
	m.signal()
	return nil
}

// Out returns the delivery channel. It is closed once the mailbox is
// closed and the drainer has exited; pending envelopes at Close time are
// discarded (the consumer is gone — this models a crashed process).
func (m *Mailbox) Out() <-chan wire.Envelope { return m.out }

// Close stops the mailbox and waits for the drainer goroutine to exit.
// It is idempotent.
func (m *Mailbox) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.done
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.signal()
	<-m.done
}

// Len reports the number of queued, not-yet-delivered envelopes.
func (m *Mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue) - m.head
}

func (m *Mailbox) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

func (m *Mailbox) drain() {
	defer close(m.done)
	defer close(m.out)
	for {
		m.mu.Lock()
		if m.closed {
			m.queue, m.head = nil, 0
			m.mu.Unlock()
			return
		}
		if m.head == len(m.queue) {
			m.queue, m.head = m.queue[:0], 0 // empty: rewind to reuse the array
			m.mu.Unlock()
			<-m.wake
			continue
		}
		// Peek rather than pop: the head only advances after delivery,
		// so a spurious wake needs no requeue (which would race with
		// Put's compaction of the delivered prefix).
		env := m.queue[m.head]
		m.mu.Unlock()

		// Block on the consumer, but abort if Close happens while the
		// consumer is gone so shutdown never deadlocks.
		select {
		case m.out <- env:
			m.mu.Lock()
			// Compaction keeps head pointing at the peeked envelope, so
			// this clears and skips exactly the delivered one.
			m.queue[m.head] = wire.Envelope{} // let the GC have it once delivered
			m.head++
			m.mu.Unlock()
		case <-m.wake:
			m.mu.Lock()
			closed := m.closed
			m.mu.Unlock()
			if closed {
				return
			}
			// Spurious wake from a concurrent Put: the envelope is still
			// at the head; loop and retry, preserving FIFO order.
		}
	}
}
