package transport

import (
	"sync"
	"testing"
	"time"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// gateEndpoint records sends and can block inside Send so a test can
// pile up messages behind an in-flight flush. When gated, each Send
// records the frame, signals entered, and then waits for one token on
// gate — so after receiving entered, the frame is visible in sent.
type gateEndpoint struct {
	sent    []wire.Envelope // owned by the flusher goroutine while gated
	gate    chan struct{}
	entered chan struct{}
	mbox    *Mailbox
}

func newGateEndpoint() *gateEndpoint {
	return &gateEndpoint{
		gate:    make(chan struct{}),
		entered: make(chan struct{}, 64),
		mbox:    NewMailbox(),
	}
}

func (g *gateEndpoint) ID() types.ProcID { return types.WriterID() }

func (g *gateEndpoint) Send(to types.ProcID, m wire.Message) error {
	g.sent = append(g.sent, wire.Envelope{To: to, Msg: m})
	g.entered <- struct{}{}
	<-g.gate
	return nil
}

func (g *gateEndpoint) Recv() <-chan wire.Envelope { return g.mbox.Out() }

func (g *gateEndpoint) Close() error {
	g.mbox.Close()
	return nil
}

// release waits for the flusher to enter Send (frame recorded) and lets
// it through.
func (g *gateEndpoint) release(t *testing.T) {
	t.Helper()
	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flusher never entered Send")
	}
	g.gate <- struct{}{}
}

func keyedMsg(key string, tsr types.ReaderTS) wire.Message {
	return wire.Keyed{Key: key, Inner: wire.Read{TSR: tsr, Round: 1}}
}

func TestCoalescerLoneSendUnbatched(t *testing.T) {
	inner := newGateEndpoint()
	c := NewCoalescer(inner)
	if err := c.Send(types.ServerID(0), keyedMsg("k", 1)); err != nil {
		t.Fatal(err)
	}
	inner.release(t)
	c.Close()
	if len(inner.sent) != 1 {
		t.Fatalf("sent %d frames, want 1", len(inner.sent))
	}
	if _, ok := inner.sent[0].Msg.(wire.Keyed); !ok {
		t.Errorf("lone send framed as %T, want wire.Keyed", inner.sent[0].Msg)
	}
}

func TestCoalescerBatchesConcurrentSends(t *testing.T) {
	inner := newGateEndpoint()
	c := NewCoalescer(inner)

	// First send: the flusher picks it up and blocks inside inner.Send.
	if err := c.Send(types.ServerID(0), keyedMsg("k0", 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inner.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flusher never started")
	}

	// With the flusher stuck, these queue: three keyed messages for
	// server 1 and one more for server 0.
	for i := 1; i <= 3; i++ {
		if err := c.Send(types.ServerID(1), keyedMsg("k", types.ReaderTS(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Send(types.ServerID(0), keyedMsg("k1", 2)); err != nil {
		t.Fatal(err)
	}

	inner.gate <- struct{}{} // release the first frame
	inner.release(t)         // second frame
	inner.release(t)         // third frame
	c.Close()

	sent := inner.sent
	if len(sent) != 3 {
		t.Fatalf("sent %d frames, want 3 (first + one per destination): %+v", len(sent), sent)
	}
	var batched int
	for _, env := range sent[1:] {
		if b, ok := env.Msg.(wire.Batch); ok {
			if env.To != types.ServerID(1) {
				t.Errorf("batch went to %s, want s1", env.To)
			}
			if len(b.Msgs) != 3 {
				t.Errorf("batch carries %d messages, want 3", len(b.Msgs))
			}
			batched++
		}
	}
	if batched != 1 {
		t.Errorf("saw %d batch frames, want exactly 1", batched)
	}
}

func TestCoalescerDoesNotBatchUnkeyed(t *testing.T) {
	inner := newGateEndpoint()
	c := NewCoalescer(inner)

	if err := c.Send(types.ServerID(0), keyedMsg("k", 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inner.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flusher never started")
	}
	if err := c.Send(types.ServerID(1), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(types.ServerID(1), wire.ABDRead{Seq: 2}); err != nil {
		t.Fatal(err)
	}

	inner.gate <- struct{}{}
	inner.release(t)
	inner.release(t)
	c.Close()

	if len(inner.sent) != 3 {
		t.Fatalf("sent %d frames, want 3", len(inner.sent))
	}
	for _, env := range inner.sent {
		if _, ok := env.Msg.(wire.Batch); ok {
			t.Errorf("unkeyed messages were batched: %+v", env.Msg)
		}
	}
}

func TestCoalescerPreservesPerDestinationOrder(t *testing.T) {
	inner := newGateEndpoint()
	c := NewCoalescer(inner)

	if err := c.Send(types.ServerID(1), keyedMsg("k", 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inner.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flusher never started")
	}
	for i := 2; i <= 4; i++ {
		if err := c.Send(types.ServerID(1), keyedMsg("k", types.ReaderTS(i))); err != nil {
			t.Fatal(err)
		}
	}
	inner.gate <- struct{}{}
	inner.release(t)
	c.Close()

	if len(inner.sent) != 2 {
		t.Fatalf("sent %d frames, want 2", len(inner.sent))
	}
	b, ok := inner.sent[1].Msg.(wire.Batch)
	if !ok {
		t.Fatalf("second frame is %T, want wire.Batch", inner.sent[1].Msg)
	}
	for i, m := range b.Msgs {
		got := m.(wire.Keyed).Inner.(wire.Read).TSR
		if got != types.ReaderTS(i+2) {
			t.Errorf("batch entry %d has tsr %d, want %d (send order)", i, got, i+2)
		}
	}
}

// failingEndpoint rejects every Send — the shape of a dead TCP peer,
// whose writes fail promptly. Close must still complete: send errors
// are dropped (a dead server is a crashed server), not retried.
type failingEndpoint struct {
	mbox *Mailbox
	once sync.Once
}

func (w *failingEndpoint) ID() types.ProcID { return types.WriterID() }

func (w *failingEndpoint) Send(types.ProcID, wire.Message) error { return ErrClosed }

func (w *failingEndpoint) Recv() <-chan wire.Envelope { return w.mbox.Out() }

func (w *failingEndpoint) Close() error {
	w.once.Do(func() { w.mbox.Close() })
	return nil
}

func TestCoalescerCloseCompletesOnDeadPeer(t *testing.T) {
	inner := &failingEndpoint{mbox: NewMailbox()}
	c := NewCoalescer(inner)
	for i := 0; i < 8; i++ {
		if err := c.Send(types.ServerID(0), keyedMsg("k", types.ReaderTS(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- c.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung behind a dead peer")
	}
}

// The flush-on-Close guarantee: every message Send accepted before
// Close has been handed to the inner endpoint by the time Close
// returns — nothing queued is dropped. The router's rebalance handoff
// retires cluster connections with exactly this Close.
func TestCoalescerCloseFlushesPending(t *testing.T) {
	inner := newGateEndpoint()
	c := NewCoalescer(inner)

	// First send: the flusher picks it up and blocks inside inner.Send.
	if err := c.Send(types.ServerID(0), keyedMsg("k0", 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inner.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flusher never started")
	}
	// With the flusher stuck, these queue behind it.
	for i := 1; i <= 3; i++ {
		if err := c.Send(types.ServerID(1), keyedMsg("k", types.ReaderTS(i))); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() { done <- c.Close() }()

	inner.gate <- struct{}{} // release the in-flight frame
	inner.release(t)         // the queued batch must still go out
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned")
	}

	if len(inner.sent) != 2 {
		t.Fatalf("sent %d frames, want 2 (in-flight + queued batch): %+v", len(inner.sent), inner.sent)
	}
	b, ok := inner.sent[1].Msg.(wire.Batch)
	if !ok {
		t.Fatalf("queued traffic flushed as %T, want wire.Batch", inner.sent[1].Msg)
	}
	if len(b.Msgs) != 3 {
		t.Errorf("batch carries %d messages, want all 3 queued", len(b.Msgs))
	}
}

func TestCoalescerFlushWaitsForQueued(t *testing.T) {
	inner := newGateEndpoint()
	c := NewCoalescer(inner)

	if err := c.Send(types.ServerID(0), keyedMsg("k0", 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inner.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flusher never started")
	}
	if err := c.Send(types.ServerID(0), keyedMsg("k1", 2)); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- c.Flush() }()
	select {
	case <-done:
		t.Fatal("Flush returned while a message was still queued")
	case <-time.After(20 * time.Millisecond):
	}

	inner.gate <- struct{}{}
	inner.release(t)
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Flush = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flush never returned after the drain")
	}
	if len(inner.sent) != 2 {
		t.Fatalf("sent %d frames, want 2", len(inner.sent))
	}
	c.Close()
}

func TestCoalescerFlushIdle(t *testing.T) {
	inner := newGateEndpoint()
	c := NewCoalescer(inner)
	if err := c.Flush(); err != nil {
		t.Errorf("Flush on idle coalescer = %v", err)
	}
	c.Close()
	if err := c.Flush(); err != nil {
		t.Errorf("Flush after Close = %v", err)
	}
}

func TestCoalescerClosed(t *testing.T) {
	inner := newGateEndpoint()
	c := NewCoalescer(inner)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(types.ServerID(0), keyedMsg("k", 1)); err != ErrClosed {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}
