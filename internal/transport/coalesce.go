package transport

import (
	"sync"
	"sync/atomic"

	"luckystore/internal/metrics"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// Coalescer wraps an endpoint with send-side group commit: Send only
// enqueues, and a single flusher goroutine drains whatever accumulated
// per destination into one wire.Batch frame each. While the flusher is
// writing one round of frames, concurrent senders keep queueing, so
// batches form exactly when concurrent multi-key traffic creates them;
// an idle coalescer flushes a lone message immediately, adding only a
// goroutine handoff to single-operation latency.
//
// Only Keyed messages are coalesced (wire.Batch carries nothing else);
// other messages flush in their own frames, in send order relative to
// the keyed traffic for the same destination. Per-destination FIFO
// order is preserved end to end.
//
// Queues are double-buffered per destination (DESIGN.md §5): each
// destination keeps two message slices that ping-pong between the
// senders and the flusher, and the round-order list ping-pongs the same
// way, so a steady-state flush cycle performs no map or slice
// allocation. The destination set is the (small, stable) server set, so
// entries are never evicted.
type Coalescer struct {
	inner Endpoint
	batch BatchSender // inner's direct-encode fast path, nil if unsupported

	mu         sync.Mutex
	pending    map[types.ProcID]*destQueue
	order      []types.ProcID // destinations with queued traffic, first-send order
	orderSpare []types.ProcID // drained order list being recycled
	closed     bool
	wake       chan struct{} // capacity 1: signals the flusher
	enqSeq     uint64        // messages accepted by Send, ever
	flushSeq   uint64        // messages the flusher has handed to inner
	flushCond  sync.Cond     // broadcast when flushSeq advances; waits on mu

	drained [][]wire.Message // flusher-owned scratch, parallel to its order
	done    chan struct{}    // closed when the flusher goroutine has exited

	met atomic.Pointer[CoalescerMetrics] // nil until SetMetrics
}

// CoalescerMetrics instruments the send-side group commit: how many
// drain runs the flusher shipped, how many messages they carried, and
// the width distribution (the paper-relevant number — how much fan-out
// one goroutine handoff amortizes). Observations are atomic and
// allocation-free.
type CoalescerMetrics struct {
	Runs  *metrics.Counter
	Msgs  *metrics.Counter
	Width *metrics.Histogram // per-destination drain-run width (count-valued)
}

// NewCoalescerMetrics wires the coalescer instruments into reg under
// the given role label (e.g. "writer", "reader").
func NewCoalescerMetrics(reg *metrics.Registry, role string) *CoalescerMetrics {
	l := metrics.L("role", role)
	return &CoalescerMetrics{
		Runs:  reg.Counter("lucky_coalescer_runs_total", "Per-destination drain runs the flusher shipped.", l),
		Msgs:  reg.Counter("lucky_coalescer_msgs_total", "Messages carried by drain runs.", l),
		Width: reg.Histogram("lucky_coalescer_batch_width", "Messages per drain run (count-valued buckets).", l),
	}
}

// SetMetrics attaches (or detaches, with nil) live instrumentation.
// Safe to call at any time, including while the flusher runs.
func (c *Coalescer) SetMetrics(m *CoalescerMetrics) { c.met.Store(m) }

// destQueue is one destination's double-buffered send queue.
type destQueue struct {
	msgs   []wire.Message // accumulating buffer, guarded by Coalescer.mu
	spare  []wire.Message // drained buffer awaiting reuse
	queued bool           // whether this destination is in order
}

var (
	_ Endpoint = (*Coalescer)(nil)
	_ Flusher  = (*Coalescer)(nil)
)

// NewCoalescer wraps ep and starts the flusher goroutine. The coalescer
// takes ownership: closing it closes ep.
func NewCoalescer(ep Endpoint) *Coalescer {
	c := &Coalescer{
		inner:   ep,
		pending: make(map[types.ProcID]*destQueue),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	c.batch, _ = ep.(BatchSender)
	c.flushCond.L = &c.mu
	go c.run()
	return c
}

// ID implements Endpoint.
func (c *Coalescer) ID() types.ProcID { return c.inner.ID() }

// Recv implements Endpoint. Inbound traffic is not touched: transports
// already unwrap batches at the receiving endpoint boundary.
func (c *Coalescer) Recv() <-chan wire.Envelope { return c.inner.Recv() }

// Send implements Endpoint: it enqueues the message for its destination
// and returns. Transport errors surface on the flusher's sends and are
// dropped — the same "a dead server is a crashed server" stance SendAll
// takes; a closed coalescer reports ErrClosed.
func (c *Coalescer) Send(to types.ProcID, m wire.Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	dq := c.pending[to]
	if dq == nil {
		dq = &destQueue{}
		c.pending[to] = dq
	}
	if !dq.queued {
		dq.queued = true
		c.order = append(c.order, to)
	}
	dq.msgs = append(dq.msgs, m)
	c.enqSeq++
	c.mu.Unlock()
	c.signal()
	return nil
}

// Flush implements Flusher: it blocks until every message Send accepted
// before the call has been handed to the inner endpoint. "Handed to"
// is the transport contract — on TCP that means written into the
// connection buffer, not acknowledged by the peer. Flush after Close
// (or concurrent with it) returns once the closing drain completes;
// because Close itself drains, that still covers everything enqueued.
func (c *Coalescer) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	target := c.enqSeq
	for c.flushSeq < target {
		c.flushCond.Wait()
	}
	return nil
}

func (c *Coalescer) signal() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// run is the flusher: each round detaches everything queued so far —
// swapping in each destination's spare buffer — sends one frame per
// destination run, then recycles the drained buffers. On Close it keeps
// draining until the queues are empty, so everything Send accepted is
// handed to the inner endpoint before the flusher exits.
func (c *Coalescer) run() {
	defer close(c.done)
	for {
		c.mu.Lock()
		if len(c.order) == 0 {
			if c.closed {
				c.flushSeq = c.enqSeq
				c.flushCond.Broadcast()
				c.mu.Unlock()
				return
			}
			c.mu.Unlock()
			<-c.wake
			continue
		}
		target := c.enqSeq
		order := c.order
		c.order = c.orderSpare[:0]
		c.orderSpare = nil
		drained := c.drained[:0]
		for _, to := range order {
			dq := c.pending[to]
			drained = append(drained, dq.msgs)
			dq.msgs = dq.spare[:0]
			dq.spare = nil
			dq.queued = false
		}
		c.drained = drained
		c.mu.Unlock()

		for i, to := range order {
			c.sendRun(to, drained[i])
		}

		// Recycle: drop message references from the drained buffers and
		// hand them back as each destination's spare. Everything enqueued
		// up to the detach point has now been handed to inner — publish
		// the progress for Flush waiters.
		c.mu.Lock()
		for i, to := range order {
			if dq := c.pending[to]; dq != nil && dq.spare == nil {
				q := drained[i]
				clear(q)
				dq.spare = q[:0]
			}
			drained[i] = nil
		}
		c.flushSeq = target
		c.flushCond.Broadcast()
		c.mu.Unlock()
		c.orderSpare = order[:0]
	}
}

// sendRun writes one destination's drained queue: maximal runs of keyed
// messages become Batch frames (size-bounded by wire.CoalesceKeyed),
// everything else goes out alone. When the inner endpoint can frame the
// run itself (BatchSender — the TCP client), the queue is handed over
// whole and encoded directly into the connection buffer; the in-memory
// transports take the generic CoalesceKeyed path, with a direct send
// for the ubiquitous single-message round (no coalescing, and none of
// CoalesceKeyed's bookkeeping).
func (c *Coalescer) sendRun(to types.ProcID, msgs []wire.Message) {
	if m := c.met.Load(); m != nil {
		m.Runs.Inc()
		m.Msgs.Add(int64(len(msgs)))
		m.Width.ObserveN(int64(len(msgs)))
	}
	if c.batch != nil {
		_ = c.batch.SendBatched(to, msgs)
		return
	}
	if len(msgs) == 1 {
		_ = c.inner.Send(to, msgs[0])
		return
	}
	for _, m := range wire.CoalesceKeyed(msgs) {
		_ = c.inner.Send(to, m)
	}
}

// Close drains everything still queued, joins the flusher, and only
// then closes the underlying endpoint — so Close carries the same
// guarantee as Flush: every message Send accepted has been handed to
// the transport. Joining before closing the endpoint means a peer that
// stopped reading could in principle wedge the final sends, but a dead
// TCP peer fails writes promptly (the connection resets), and a
// live-but-not-reading server is outside the fault model; the drain
// guarantee is what the router's rebalance handoff relies on.
// Idempotent.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.signal()
	<-c.done
	return c.inner.Close()
}
