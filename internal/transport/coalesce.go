package transport

import (
	"sync"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// Coalescer wraps an endpoint with send-side group commit: Send only
// enqueues, and a single flusher goroutine drains whatever accumulated
// per destination into one wire.Batch frame each. While the flusher is
// writing one round of frames, concurrent senders keep queueing, so
// batches form exactly when concurrent multi-key traffic creates them;
// an idle coalescer flushes a lone message immediately, adding only a
// goroutine handoff to single-operation latency.
//
// Only Keyed messages are coalesced (wire.Batch carries nothing else);
// other messages flush in their own frames, in send order relative to
// the keyed traffic for the same destination. Per-destination FIFO
// order is preserved end to end.
type Coalescer struct {
	inner Endpoint
	batch BatchSender // inner's direct-encode fast path, nil if unsupported

	mu      sync.Mutex
	pending map[types.ProcID][]wire.Message
	order   []types.ProcID // destinations in first-send order
	wake    chan struct{}  // capacity 1: signals the flusher
	closed  bool

	done chan struct{} // closed when the flusher goroutine has exited
}

var _ Endpoint = (*Coalescer)(nil)

// NewCoalescer wraps ep and starts the flusher goroutine. The coalescer
// takes ownership: closing it closes ep.
func NewCoalescer(ep Endpoint) *Coalescer {
	c := &Coalescer{
		inner:   ep,
		pending: make(map[types.ProcID][]wire.Message),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	c.batch, _ = ep.(BatchSender)
	go c.run()
	return c
}

// ID implements Endpoint.
func (c *Coalescer) ID() types.ProcID { return c.inner.ID() }

// Recv implements Endpoint. Inbound traffic is not touched: transports
// already unwrap batches at the receiving endpoint boundary.
func (c *Coalescer) Recv() <-chan wire.Envelope { return c.inner.Recv() }

// Send implements Endpoint: it enqueues the message for its destination
// and returns. Transport errors surface on the flusher's sends and are
// dropped — the same "a dead server is a crashed server" stance SendAll
// takes; a closed coalescer reports ErrClosed.
func (c *Coalescer) Send(to types.ProcID, m wire.Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if _, ok := c.pending[to]; !ok {
		c.order = append(c.order, to)
	}
	c.pending[to] = append(c.pending[to], m)
	c.mu.Unlock()
	c.signal()
	return nil
}

func (c *Coalescer) signal() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// run is the flusher: each round drains everything queued so far and
// writes one frame per destination run.
func (c *Coalescer) run() {
	defer close(c.done)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if len(c.order) == 0 {
			c.mu.Unlock()
			<-c.wake
			continue
		}
		order := c.order
		pending := c.pending
		c.order = nil
		c.pending = make(map[types.ProcID][]wire.Message)
		c.mu.Unlock()

		for _, to := range order {
			c.sendRun(to, pending[to])
		}
	}
}

// sendRun writes one destination's drained queue: maximal runs of keyed
// messages become Batch frames (size-bounded by wire.CoalesceKeyed),
// everything else goes out alone. When the inner endpoint can frame the
// run itself (BatchSender — the TCP client), the queue is handed over
// whole and encoded directly into the connection buffer; the in-memory
// transports take the generic CoalesceKeyed path.
func (c *Coalescer) sendRun(to types.ProcID, msgs []wire.Message) {
	if c.batch != nil {
		_ = c.batch.SendBatched(to, msgs)
		return
	}
	for _, m := range wire.CoalesceKeyed(msgs) {
		_ = c.inner.Send(to, m)
	}
}

// Close stops the flusher — dropping anything still queued, which is
// indistinguishable from the crash of the sending process and tolerated
// by the protocols — and closes the underlying endpoint. The endpoint
// closes before the flusher is joined, so a flusher wedged in a send
// (e.g. a TCP peer that stopped reading) is unblocked by the closing
// endpoint rather than deadlocking Close. Idempotent.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.closed = true
	c.pending = nil
	c.order = nil
	c.mu.Unlock()
	c.signal()
	err := c.inner.Close()
	<-c.done
	return err
}
