package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func env(i int) wire.Envelope {
	return wire.Envelope{
		From: types.WriterID(),
		To:   types.ServerID(0),
		Msg:  wire.Read{TSR: types.ReaderTS(i + 1), Round: 1},
	}
}

func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox()
	defer m.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := m.Put(env(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		got := <-m.Out()
		r, ok := got.Msg.(wire.Read)
		if !ok || r.TSR != types.ReaderTS(i+1) {
			t.Fatalf("message %d: got %+v, want TSR %d", i, got.Msg, i+1)
		}
	}
}

func TestMailboxPutNeverBlocks(t *testing.T) {
	m := NewMailbox()
	defer m.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Nobody consumes; 10k puts must still complete promptly.
		for i := 0; i < 10000; i++ {
			if err := m.Put(env(i)); err != nil {
				t.Errorf("Put(%d): %v", i, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Put blocked on a slow consumer")
	}
	if m.Len() < 9000 {
		t.Errorf("Len() = %d, want most of the 10000 still queued", m.Len())
	}
}

func TestMailboxCloseIdempotentAndPutAfterClose(t *testing.T) {
	m := NewMailbox()
	m.Close()
	m.Close() // must not panic or deadlock
	if err := m.Put(env(0)); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
	if _, ok := <-m.Out(); ok {
		t.Error("Out() still open after Close")
	}
}

func TestMailboxCloseWithBacklog(t *testing.T) {
	m := NewMailbox()
	for i := 0; i < 50; i++ {
		if err := m.Put(env(i)); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		m.Close() // must not hang even though nobody consumed
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with undelivered backlog")
	}
}

func TestMailboxConcurrentProducers(t *testing.T) {
	m := NewMailbox()
	defer m.Close()
	const producers, each = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := m.Put(env(i)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}()
	}
	received := 0
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for range m.Out() {
			received++
			if received == producers*each {
				return
			}
		}
	}()
	wg.Wait()
	select {
	case <-recvDone:
	case <-time.After(10 * time.Second):
		t.Fatalf("received %d of %d envelopes", received, producers*each)
	}
}

// FIFO must hold even when the consumer lags behind producers so the
// drainer goes through its requeue path.
func TestMailboxFIFOUnderSlowConsumer(t *testing.T) {
	m := NewMailbox()
	defer m.Close()
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			if err := m.Put(env(i)); err != nil {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		if i%50 == 0 {
			time.Sleep(time.Millisecond)
		}
		got := <-m.Out()
		r := got.Msg.(wire.Read)
		if r.TSR != types.ReaderTS(i+1) {
			t.Fatalf("out of order at %d: got TSR %d", i, r.TSR)
		}
	}
}

func TestSendAllToleratesPartialFailure(t *testing.T) {
	ep := &fakeEndpoint{fail: map[types.ProcID]bool{types.ServerID(1): true}}
	out := []Outgoing{
		{To: types.ServerID(0), Msg: wire.ABDRead{Seq: 1}},
		{To: types.ServerID(1), Msg: wire.ABDRead{Seq: 1}},
		{To: types.ServerID(2), Msg: wire.ABDRead{Seq: 1}},
	}
	// One unreachable peer is a crashed server: tolerated.
	if err := SendAll(ep, out); err != nil {
		t.Fatalf("SendAll with one failed peer = %v, want nil", err)
	}
	// All three sends must have been attempted despite the failure.
	if len(ep.sent) != 2 {
		t.Errorf("delivered %d messages, want 2 (failure on s1 only)", len(ep.sent))
	}
}

func TestSendAllFailsWhenAllSendsFail(t *testing.T) {
	ep := &fakeEndpoint{fail: map[types.ProcID]bool{
		types.ServerID(0): true, types.ServerID(1): true,
	}}
	out := []Outgoing{
		{To: types.ServerID(0), Msg: wire.ABDRead{Seq: 1}},
		{To: types.ServerID(1), Msg: wire.ABDRead{Seq: 1}},
	}
	if err := SendAll(ep, out); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("SendAll with all sends failed = %v, want ErrUnknownPeer", err)
	}
}

func TestSendAllEmpty(t *testing.T) {
	if err := SendAll(&fakeEndpoint{}, nil); err != nil {
		t.Errorf("SendAll(nil) = %v, want nil", err)
	}
}

type fakeEndpoint struct {
	fail map[types.ProcID]bool
	sent []Outgoing
}

func (f *fakeEndpoint) ID() types.ProcID { return types.WriterID() }

func (f *fakeEndpoint) Send(to types.ProcID, m wire.Message) error {
	if f.fail[to] {
		return ErrUnknownPeer
	}
	f.sent = append(f.sent, Outgoing{To: to, Msg: m})
	return nil
}

func (f *fakeEndpoint) Recv() <-chan wire.Envelope { return nil }
func (f *fakeEndpoint) Close() error               { return nil }
