// Package regular implements the Appendix D variant (Proposition 7): a
// SWMR robust *regular* storage — property (4), the read hierarchy, is
// given up — in exchange for:
//
//   - tolerance of arbitrarily many malicious readers (servers ignore
//     every W message sent by a reader, so a forged write-back cannot
//     corrupt the register);
//   - maximal fast thresholds: every lucky WRITE is fast despite
//     fw = t − b failures and every lucky READ is fast despite fr = t
//     failures.
//
// Differences from the core algorithm: the W phase of a slow WRITE is a
// single round, readers never write back, and servers drop reader W
// messages (core.NewRegularServer).
package regular

import (
	"errors"
	"fmt"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/node"
	"luckystore/internal/simnet"
	"luckystore/internal/storage"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// ErrOpTimeout is returned when an operation exceeds its bound.
var ErrOpTimeout = errors.New("regular: operation timed out (more than t servers unresponsive?)")

// Config holds the deployment parameters. The fast-write threshold is
// fixed at its maximum fw = t − b (Proposition 7), so there is no Fw
// knob.
type Config struct {
	T, B         int
	NumReaders   int
	RoundTimeout time.Duration
	OpTimeout    time.Duration
}

// S returns the server count 2t + b + 1 (optimal resilience).
func (c Config) S() int { return 2*c.T + c.B + 1 }

// Quorum returns S − t.
func (c Config) Quorum() int { return c.S() - c.T }

// SafeThreshold returns b + 1.
func (c Config) SafeThreshold() int { return c.B + 1 }

// Fw returns the fast-write failure threshold t − b.
func (c Config) Fw() int { return c.T - c.B }

// Fr returns the fast-read failure threshold t.
func (c Config) Fr() int { return c.T }

// FastWriteAcks returns S − fw = t + 2b + 1.
func (c Config) FastWriteAcks() int { return c.S() - c.Fw() }

// Validate checks the parameters.
func (c Config) Validate() error {
	switch {
	case c.T < 0:
		return fmt.Errorf("regular config: t = %d must be non-negative", c.T)
	case c.B < 0 || c.B > c.T:
		return fmt.Errorf("regular config: b = %d must satisfy 0 ≤ b ≤ t = %d", c.B, c.T)
	case c.NumReaders < 0:
		return fmt.Errorf("regular config: NumReaders = %d must be non-negative", c.NumReaders)
	}
	return nil
}

// coreConfig maps to the core Config for threshold reuse.
func (c Config) coreConfig() core.Config {
	return core.Config{T: c.T, B: c.B, Fw: c.Fw(), NumReaders: c.NumReaders}
}

func (c Config) roundTimeout() time.Duration {
	if c.RoundTimeout > 0 {
		return c.RoundTimeout
	}
	return core.DefaultRoundTimeout
}

func (c Config) opTimeout() time.Duration {
	if c.OpTimeout > 0 {
		return c.OpTimeout
	}
	return core.DefaultOpTimeout
}

// Writer implements the Appendix D WRITE: PW round with the fast check
// at S − (t−b) acks, then a single W round when slow.
type Writer struct {
	cfg      Config
	ep       transport.Endpoint
	ts       types.TS
	pw, w    types.Tagged
	readTS   map[types.ProcID]types.ReaderTS
	frozen   []types.FrozenEntry
	lastMeta core.WriteMeta
}

// NewWriter creates the writer client.
func NewWriter(cfg Config, ep transport.Endpoint) *Writer {
	return &Writer{
		cfg: cfg, ep: ep,
		pw: types.Bottom(), w: types.Bottom(),
		readTS: make(map[types.ProcID]types.ReaderTS),
	}
}

// LastMeta returns metadata about the most recent WRITE.
func (w *Writer) LastMeta() core.WriteMeta { return w.lastMeta }

// Write stores v: one round-trip when lucky and at most t−b failures,
// otherwise two.
func (w *Writer) Write(v types.Value) error {
	if v == "" {
		return core.ErrBottomValue
	}
	opDeadline := time.NewTimer(w.cfg.opTimeout())
	defer opDeadline.Stop()

	w.ts++
	w.pw = types.Tagged{TS: w.ts, Val: v}
	if err := w.broadcast(wire.PW{TS: w.ts, PW: w.pw, W: w.w, Frozen: w.frozen}); err != nil {
		return err
	}
	timer := time.NewTimer(w.cfg.roundTimeout())
	defer timer.Stop()
	acks := make(map[types.ProcID]wire.PWAck, w.cfg.S())
	expired := false
	for len(acks) < w.cfg.S() && !(len(acks) >= w.cfg.Quorum() && expired) {
		select {
		case env, ok := <-w.ep.Recv():
			if !ok {
				return transport.ErrClosed
			}
			w.acceptPWAck(acks, env)
		case <-timer.C:
			expired = true
		case <-opDeadline.C:
			return fmt.Errorf("regular WRITE(ts=%d) PW round: %w", w.ts, ErrOpTimeout)
		}
	}
	w.drainPWAcks(acks)

	w.frozen = nil
	w.w = w.pw
	w.freezeValues(acks)

	if len(acks) >= w.cfg.FastWriteAcks() {
		w.lastMeta = core.WriteMeta{TS: w.ts, Rounds: 1, Fast: true, PWAcks: len(acks)}
		return nil
	}

	// Single W round (Appendix D removes the third round).
	if err := w.broadcast(wire.W{Round: 2, Tag: int64(w.ts), C: w.pw}); err != nil {
		return err
	}
	got := make(map[types.ProcID]bool, w.cfg.S())
	for len(got) < w.cfg.Quorum() {
		select {
		case env, ok := <-w.ep.Recv():
			if !ok {
				return transport.ErrClosed
			}
			a, isAck := env.Msg.(wire.WAck)
			if !isAck || !w.validServer(env.From) || a.Round != 2 || a.Tag != int64(w.ts) {
				continue
			}
			got[env.From] = true
		case <-opDeadline.C:
			return fmt.Errorf("regular WRITE(ts=%d) W round: %w", w.ts, ErrOpTimeout)
		}
	}
	w.lastMeta = core.WriteMeta{TS: w.ts, Rounds: 2, Fast: false, PWAcks: len(acks)}
	return nil
}

func (w *Writer) acceptPWAck(acks map[types.ProcID]wire.PWAck, env wire.Envelope) {
	a, ok := env.Msg.(wire.PWAck)
	if !ok || !w.validServer(env.From) || a.TS != w.ts || wire.Validate(a) != nil {
		return
	}
	if _, dup := acks[env.From]; !dup {
		acks[env.From] = a
	}
}

func (w *Writer) drainPWAcks(acks map[types.ProcID]wire.PWAck) {
	for {
		select {
		case env, ok := <-w.ep.Recv():
			if !ok {
				return
			}
			w.acceptPWAck(acks, env)
		default:
			return
		}
	}
}

func (w *Writer) freezeValues(acks map[types.ProcID]wire.PWAck) {
	reported := make(map[types.ProcID][]types.ReaderTS)
	for _, a := range acks {
		seen := make(map[types.ProcID]bool, len(a.NewRead))
		for _, rs := range a.NewRead {
			if seen[rs.Reader] {
				continue
			}
			seen[rs.Reader] = true
			if rs.TSR > w.readTS[rs.Reader] {
				reported[rs.Reader] = append(reported[rs.Reader], rs.TSR)
			}
		}
	}
	for rj, tsrs := range reported {
		if len(tsrs) < w.cfg.SafeThreshold() {
			continue
		}
		nth, ok := types.NthHighest(tsrs, w.cfg.B)
		if !ok {
			continue
		}
		w.readTS[rj] = nth
		w.frozen = append(w.frozen, types.FrozenEntry{Reader: rj, PW: w.pw, TSR: nth})
	}
}

func (w *Writer) broadcast(m wire.Message) error {
	out := make([]transport.Outgoing, w.cfg.S())
	for i := range out {
		out[i] = transport.Outgoing{To: types.ServerID(i), Msg: m}
	}
	return transport.SendAll(w.ep, out)
}

func (w *Writer) validServer(id types.ProcID) bool {
	return id.IsServer() && id.Index() < w.cfg.S()
}

// ReadMeta describes a completed regular READ (no write-back exists in
// this variant, so Rounds == QueryRounds).
type ReadMeta struct {
	TSR         types.ReaderTS
	QueryRounds int
	Returned    types.Tagged
}

// Rounds returns the READ's round-trip count.
func (m ReadMeta) Rounds() int { return m.QueryRounds }

// Fast reports a single round-trip READ.
func (m ReadMeta) Fast() bool { return m.Rounds() == 1 }

// Reader implements the Appendix D READ: the core READ loop without
// the write-back.
type Reader struct {
	cfg      Config
	ep       transport.Endpoint
	id       types.ProcID
	tsr      types.ReaderTS
	lastMeta ReadMeta
}

// NewReader creates reader client id.
func NewReader(cfg Config, id types.ProcID, ep transport.Endpoint) *Reader {
	return &Reader{cfg: cfg, ep: ep, id: id}
}

// LastMeta returns metadata about the most recent READ.
func (r *Reader) LastMeta() ReadMeta { return r.lastMeta }

// Read returns the register value with regular semantics.
func (r *Reader) Read() (types.Tagged, error) {
	opDeadline := time.NewTimer(r.cfg.opTimeout())
	defer opDeadline.Stop()

	r.tsr++
	view := core.NewViewWithThresholds(r.cfg.coreConfig().Thresholds(), r.tsr)

	var timer *time.Timer
	expired := false
	rnd := 0
	for {
		rnd++
		if err := r.broadcast(wire.Read{TSR: r.tsr, Round: rnd}); err != nil {
			return types.Tagged{}, err
		}
		if rnd == 1 {
			timer = time.NewTimer(r.cfg.roundTimeout())
			defer timer.Stop()
		}
		roundAcks := make(map[types.ProcID]bool, r.cfg.S())
		for len(roundAcks) < r.cfg.S() &&
			!(len(roundAcks) >= r.cfg.Quorum() && (rnd > 1 || expired)) {
			select {
			case env, ok := <-r.ep.Recv():
				if !ok {
					return types.Tagged{}, transport.ErrClosed
				}
				r.acceptAck(view, roundAcks, rnd, env)
			case <-timer.C:
				expired = true
			case <-opDeadline.C:
				return types.Tagged{}, fmt.Errorf("regular READ(tsr=%d) round %d: %w", r.tsr, rnd, ErrOpTimeout)
			}
		}
		r.drainAcks(view, roundAcks, rnd)
		if c, ok := view.Select(); ok {
			r.lastMeta = ReadMeta{TSR: r.tsr, QueryRounds: rnd, Returned: c}
			return c, nil
		}
	}
}

func (r *Reader) acceptAck(view *core.View, roundAcks map[types.ProcID]bool, rnd int, env wire.Envelope) {
	a, ok := env.Msg.(wire.ReadAck)
	if !ok || !env.From.IsServer() || env.From.Index() >= r.cfg.S() ||
		a.TSR != r.tsr || wire.Validate(a) != nil || a.Round > rnd {
		return
	}
	if a.Round == rnd {
		roundAcks[env.From] = true
	}
	view.Update(env.From, a.Round, a.PW, a.W, a.VW, a.Frozen)
}

func (r *Reader) drainAcks(view *core.View, roundAcks map[types.ProcID]bool, rnd int) {
	for {
		select {
		case env, ok := <-r.ep.Recv():
			if !ok {
				return
			}
			r.acceptAck(view, roundAcks, rnd, env)
		default:
			return
		}
	}
}

func (r *Reader) broadcast(m wire.Message) error {
	out := make([]transport.Outgoing, r.cfg.S())
	for i := range out {
		out[i] = transport.Outgoing{To: types.ServerID(i), Msg: m}
	}
	return transport.SendAll(r.ep, out)
}

// Cluster wires a regular-variant deployment over a simulated network.
type Cluster struct {
	cfg      Config
	net      transport.Network
	sim      *simnet.Network
	runners  []*node.Runner
	autos    []node.Automaton
	writer   *Writer
	readers  []*Reader
	store    storage.Provider
	backends []storage.Backend // per server; nil when not durable
}

// NewCluster builds and starts a regular-variant cluster. Servers keep
// their automata in memory only; see NewDurableCluster for disk-backed
// restarts.
func NewCluster(cfg Config, simOpts ...simnet.Option) (*Cluster, error) {
	return newCluster(cfg, nil, simOpts...)
}

// NewDurableCluster builds a regular-variant cluster whose servers
// write through storage backends from p (one per server) before
// acknowledging, and whose RestartServer recovers by WAL replay.
func NewDurableCluster(cfg Config, p storage.Provider, simOpts ...simnet.Option) (*Cluster, error) {
	return newCluster(cfg, p, simOpts...)
}

func newCluster(cfg Config, p storage.Provider, simOpts ...simnet.Option) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ids := append(types.ServerIDs(cfg.S()), types.WriterID())
	ids = append(ids, types.ReaderIDs(cfg.NumReaders)...)
	sim, err := simnet.New(ids, simOpts...)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, net: sim, sim: sim, store: p}
	for i := 0; i < cfg.S(); i++ {
		ep, err := sim.Endpoint(types.ServerID(i))
		if err != nil {
			c.Close()
			return nil, err
		}
		a := core.NewRegularServer()
		run := node.Automaton(a)
		var back storage.Backend
		if c.store != nil {
			back, err = c.openAndRecover(i, a)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("regular server %d storage: %w", i, err)
			}
			run = storage.NewDurable(a, back, types.ServerID(i))
		}
		r := node.NewRunner(ep, run)
		c.autos = append(c.autos, a)
		c.backends = append(c.backends, back)
		c.runners = append(c.runners, r)
		r.Start()
	}
	wep, err := sim.Endpoint(types.WriterID())
	if err != nil {
		c.Close()
		return nil, err
	}
	c.writer = NewWriter(cfg, wep)
	for i := 0; i < cfg.NumReaders; i++ {
		rep, err := sim.Endpoint(types.ReaderID(i))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.readers = append(c.readers, NewReader(cfg, types.ReaderID(i), rep))
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Writer returns the writer client.
func (c *Cluster) Writer() *Writer { return c.writer }

// Reader returns the i-th reader client.
func (c *Cluster) Reader(i int) *Reader { return c.readers[i] }

// Sim returns the underlying simulated network.
func (c *Cluster) Sim() *simnet.Network { return c.sim }

// CrashServer crash-stops server i.
func (c *Cluster) CrashServer(i int) { c.runners[i].Crash() }

// RestartServer restarts server i after a crash — crash-recovery with
// stable storage. With a NewDurableCluster backend, "stable storage"
// is the server's WAL: a fresh automaton is rebuilt by replay, as a
// real process restart would. The default keeps the automaton object
// in memory, which models stable storage only for in-process crashes.
// For use by one coordinating goroutine, like the other fault hooks.
func (c *Cluster) RestartServer(i int) error {
	if i < 0 || i >= len(c.autos) {
		return fmt.Errorf("regular restart: server %d out of range [0,%d)", i, len(c.autos))
	}
	if c.backends[i] == nil {
		return c.restart(i, c.autos[i], c.autos[i])
	}
	a := core.NewRegularServer()
	if _, err := storage.Recover(c.backends[i], a); err != nil {
		return fmt.Errorf("regular restart server %d: %w", i, err)
	}
	return c.restart(i, a, storage.NewDurable(a, c.backends[i], types.ServerID(i)))
}

// RestartServerFresh restarts server i with a brand-new automaton and
// a wiped backend — the only amnesiac recovery, which schedules must
// count against b.
func (c *Cluster) RestartServerFresh(i int) error {
	if i < 0 || i >= len(c.autos) {
		return fmt.Errorf("regular restart: server %d out of range [0,%d)", i, len(c.autos))
	}
	a := core.NewRegularServer()
	if c.backends[i] == nil {
		return c.restart(i, a, a)
	}
	if err := c.backends[i].Wipe(); err != nil {
		return fmt.Errorf("regular fresh-restart server %d: %w", i, err)
	}
	return c.restart(i, a, storage.NewDurable(a, c.backends[i], types.ServerID(i)))
}

// SwapServerAutomaton crash-stops server i and brings it back running
// the given automaton (an internal/fault Byzantine behavior, for chaos
// schedules). The swapped-in automaton runs without storage; the
// backend keeps the last correct durable state for a later restart.
func (c *Cluster) SwapServerAutomaton(i int, a node.Automaton) error { return c.restart(i, a, a) }

// ServerBackend returns server i's storage backend (nil without
// NewDurableCluster); chaos deployments arm disk faults through it.
func (c *Cluster) ServerBackend(i int) storage.Backend { return c.backends[i] }

func (c *Cluster) openAndRecover(i int, a node.Automaton) (storage.Backend, error) {
	back, err := c.store.Open(string(types.ServerID(i)))
	if err != nil {
		return nil, err
	}
	if _, err := storage.Recover(back, a); err != nil {
		back.Close()
		return nil, err
	}
	return back, nil
}

func (c *Cluster) restart(i int, inner, run node.Automaton) error {
	if i < 0 || i >= len(c.runners) {
		return fmt.Errorf("regular restart: server %d out of range [0,%d)", i, len(c.runners))
	}
	c.runners[i].Crash()
	ep, err := c.net.Endpoint(types.ServerID(i))
	if err != nil {
		return fmt.Errorf("regular restart server %d: %w", i, err)
	}
	c.autos[i] = inner
	c.runners[i] = node.NewRunner(ep, run)
	c.runners[i].Start()
	return nil
}

// Close stops all runners and the network, then closes the storage
// backends.
func (c *Cluster) Close() {
	if c.net != nil {
		_ = c.net.Close()
	}
	for _, r := range c.runners {
		r.Stop()
	}
	for _, b := range c.backends {
		if b != nil {
			_ = b.Close()
		}
	}
}
