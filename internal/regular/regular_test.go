package regular

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/fault"
	"luckystore/internal/types"
)

func testConfig() Config {
	return Config{T: 2, B: 1, NumReaders: 3, RoundTimeout: 15 * time.Millisecond}
}

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestConfigThresholds(t *testing.T) {
	cfg := testConfig() // t=2, b=1
	if cfg.S() != 6 || cfg.Fw() != 1 || cfg.Fr() != 2 {
		t.Errorf("S=%d Fw=%d Fr=%d, want 6,1,2", cfg.S(), cfg.Fw(), cfg.Fr())
	}
	if cfg.FastWriteAcks() != 5 { // t + 2b + 1
		t.Errorf("FastWriteAcks = %d, want 5", cfg.FastWriteAcks())
	}
	if err := (Config{T: 1, B: 2}).Validate(); err == nil {
		t.Error("b > t accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newTestCluster(t, testConfig())
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	if m := c.Writer().LastMeta(); !m.Fast || m.Rounds != 1 {
		t.Errorf("write meta = %+v, want fast", m)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 1, Val: "v"}) {
		t.Errorf("Read() = %v", got)
	}
	if m := c.Reader(0).LastMeta(); !m.Fast() {
		t.Errorf("read meta = %+v, want fast", m)
	}
}

// Proposition 7 (1): lucky WRITEs are fast despite fw = t−b failures.
func TestFastWriteDespiteTMinusBFailures(t *testing.T) {
	cfg := testConfig() // fw = 1
	c := newTestCluster(t, cfg)
	c.CrashServer(0)
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	if m := c.Writer().LastMeta(); !m.Fast {
		t.Errorf("write meta = %+v, want fast with t−b crashes", m)
	}
	// One more crash: slow, but only 2 rounds in this variant.
	c.CrashServer(1)
	if err := c.Writer().Write("v2"); err != nil {
		t.Fatal(err)
	}
	if m := c.Writer().LastMeta(); m.Fast || m.Rounds != 2 {
		t.Errorf("write meta = %+v, want slow 2-round write", m)
	}
}

// Proposition 7 (2): lucky READs are fast despite fr = t failures —
// even when the preceding write was slow.
func TestFastReadDespiteTFailures(t *testing.T) {
	cfg := testConfig() // fr = t = 2
	c := newTestCluster(t, cfg)
	c.CrashServer(0)
	c.CrashServer(1) // t failures
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	if m := c.Writer().LastMeta(); m.Fast {
		t.Fatalf("write should be slow with 2 > fw failures: %+v", m)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("Read() = %v", got)
	}
	if m := c.Reader(0).LastMeta(); !m.Fast() {
		t.Errorf("read meta = %+v, want fast despite fr=t failures", m)
	}
}

// The headline property: a malicious reader's forged write-back is
// ignored by regular servers, so correct readers are unaffected — the
// attack that corrupts the atomic variant (see core's
// TestMaliciousReaderCorruptsAtomicVariant) is defeated.
func TestMaliciousReaderDefeated(t *testing.T) {
	cfg := testConfig()
	c := newTestCluster(t, cfg)
	if err := c.Writer().Write("v1"); err != nil {
		t.Fatal(err)
	}
	ep, err := c.Sim().Endpoint(types.ReaderID(2))
	if err != nil {
		t.Fatal(err)
	}
	forged := types.Tagged{TS: 2, Val: "never-written"}
	servers := types.ServerIDs(cfg.S())
	// The malicious write-back cannot gather acks (servers ignore reader
	// W messages), so run it without waiting for a quorum.
	if err := fault.MaliciousReaderWriteback(ep, servers, 0, 1, forged); err != nil {
		t.Fatal(err)
	}
	// Give the forged messages time to be (received and) ignored.
	time.Sleep(20 * time.Millisecond)
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 1, Val: "v1"}) {
		t.Fatalf("Read() = %v; forged write-back corrupted the regular store", got)
	}
}

// Regularity holds under concurrency (atomicity need not).
func TestRegularityUnderConcurrency(t *testing.T) {
	cfg := testConfig()
	cfg.RoundTimeout = 5 * time.Millisecond
	c := newTestCluster(t, cfg)
	rec := checker.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 50; i++ {
			v := types.Value(fmt.Sprintf("v%d", i))
			inv := time.Now()
			if err := c.Writer().Write(v); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			m := c.Writer().LastMeta()
			rec.Add(checker.Op{
				Client: types.WriterID(), Kind: checker.KindWrite,
				Value:  types.Tagged{TS: m.TS, Val: v},
				Invoke: inv, Return: time.Now(), Rounds: m.Rounds, Fast: m.Fast,
			})
		}
	}()
	for r := 0; r < cfg.NumReaders; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				inv := time.Now()
				got, err := c.Reader(r).Read()
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				m := c.Reader(r).LastMeta()
				rec.Add(checker.Op{
					Client: types.ReaderID(r), Kind: checker.KindRead,
					Value: got, Invoke: inv, Return: time.Now(),
					Rounds: m.Rounds(), Fast: m.Fast(),
				})
			}
		}()
	}
	wg.Wait()
	for _, v := range checker.CheckRegularity(rec.Ops()) {
		t.Errorf("regularity violation: %v", v)
	}
}

func TestBottomOnFreshRegister(t *testing.T) {
	c := newTestCluster(t, testConfig())
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsBottom() {
		t.Errorf("Read() = %v, want ⊥", got)
	}
}

func TestRejectsBottomWrite(t *testing.T) {
	c := newTestCluster(t, testConfig())
	if err := c.Writer().Write(""); err == nil {
		t.Error("Write(⊥) accepted")
	}
}
