package regular

// Restart surface of the regular-variant cluster (PR 5): warm restart
// revives the same automaton, out-of-range indices error instead of
// panicking (the bug class core.Cluster.RestartServer had).

import (
	"testing"
	"time"

	"luckystore/internal/fault"
)

func TestRestartServerValidatesAndRevives(t *testing.T) {
	c, err := NewCluster(Config{T: 1, B: 0, NumReaders: 1,
		RoundTimeout: 10 * time.Millisecond, OpTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.RestartServer(99); err == nil {
		t.Error("RestartServer(99) succeeded, want range error")
	}
	if err := c.RestartServer(-1); err == nil {
		t.Error("RestartServer(-1) succeeded, want range error")
	}
	if err := c.SwapServerAutomaton(99, fault.Mute()); err == nil {
		t.Error("SwapServerAutomaton(99) succeeded, want range error")
	}

	// Warm restart liveness: crash s0, restart it, crash s1 — with
	// S=3, t=1 the quorum now needs the restarted server.
	if err := c.Writer().Write("v1"); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(0)
	if err := c.RestartServer(0); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(1)
	if err := c.Writer().Write("v2"); err != nil {
		t.Fatalf("write needing the restarted server: %v", err)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatalf("read needing the restarted server: %v", err)
	}
	if got.Val != "v2" {
		t.Errorf("Read() = %v, want v2", got)
	}
}
