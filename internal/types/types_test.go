package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBottom(t *testing.T) {
	b := Bottom()
	if b.TS != TS0 {
		t.Errorf("Bottom().TS = %d, want %d", b.TS, TS0)
	}
	if b.Val != "" {
		t.Errorf("Bottom().Val = %q, want empty", b.Val)
	}
	if !b.IsBottom() {
		t.Error("Bottom().IsBottom() = false, want true")
	}
	if (Tagged{TS: 1, Val: "x"}).IsBottom() {
		t.Error("non-bottom pair reported as bottom")
	}
}

func TestTaggedLess(t *testing.T) {
	tests := []struct {
		name string
		a, b Tagged
		want bool
	}{
		{"bottom vs ts1", Bottom(), Tagged{TS: 1, Val: "v"}, true},
		{"ts1 vs bottom", Tagged{TS: 1, Val: "v"}, Bottom(), false},
		{"equal ts", Tagged{TS: 3, Val: "a"}, Tagged{TS: 3, Val: "b"}, false},
		{"ts2 vs ts5", Tagged{TS: 2, Val: "a"}, Tagged{TS: 5, Val: "b"}, true},
		{"same pair", Tagged{TS: 4, Val: "x"}, Tagged{TS: 4, Val: "x"}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Less(tc.b); got != tc.want {
				t.Errorf("(%v).Less(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestOlderThan(t *testing.T) {
	tests := []struct {
		name string
		a, b Tagged
		want bool
	}{
		{"strictly smaller ts", Tagged{TS: 1, Val: "v"}, Tagged{TS: 2, Val: "w"}, true},
		{"same ts same val", Tagged{TS: 2, Val: "v"}, Tagged{TS: 2, Val: "v"}, false},
		{"same ts different val", Tagged{TS: 2, Val: "v"}, Tagged{TS: 2, Val: "w"}, true},
		{"larger ts", Tagged{TS: 3, Val: "v"}, Tagged{TS: 2, Val: "w"}, false},
		{"bottom vs anything", Bottom(), Tagged{TS: 1, Val: "v"}, true},
		{"bottom vs bottom", Bottom(), Bottom(), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.OlderThan(tc.b); got != tc.want {
				t.Errorf("(%v).OlderThan(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

// OlderThan must behave like a strict order on pairs written by a
// correct writer (one value per timestamp): irreflexive and, for pairs
// with distinct timestamps, asymmetric and total.
func TestOlderThanQuick(t *testing.T) {
	irreflexive := func(ts int64, val string) bool {
		c := Tagged{TS: TS(ts), Val: Value(val)}
		return !c.OlderThan(c)
	}
	if err := quick.Check(irreflexive, nil); err != nil {
		t.Errorf("OlderThan not irreflexive: %v", err)
	}
	totalOnDistinctTS := func(ts1, ts2 int64, v1, v2 string) bool {
		if ts1 == ts2 {
			return true
		}
		a := Tagged{TS: TS(ts1), Val: Value(v1)}
		b := Tagged{TS: TS(ts2), Val: Value(v2)}
		return a.OlderThan(b) != b.OlderThan(a)
	}
	if err := quick.Check(totalOnDistinctTS, nil); err != nil {
		t.Errorf("OlderThan not total/asymmetric on distinct timestamps: %v", err)
	}
}

func TestMaxTagged(t *testing.T) {
	if got := MaxTagged(nil); got != Bottom() {
		t.Errorf("MaxTagged(nil) = %v, want bottom", got)
	}
	cs := []Tagged{{TS: 2, Val: "b"}, {TS: 7, Val: "g"}, {TS: 5, Val: "e"}}
	if got := MaxTagged(cs); got != (Tagged{TS: 7, Val: "g"}) {
		t.Errorf("MaxTagged = %v, want 〈7,g〉", got)
	}
}

// MaxTagged must return an element with a timestamp no smaller than any
// input element.
func TestMaxTaggedQuick(t *testing.T) {
	f := func(tss []int64) bool {
		cs := make([]Tagged, len(tss))
		for i, ts := range tss {
			cs[i] = Tagged{TS: TS(ts), Val: "v"}
		}
		m := MaxTagged(cs)
		for _, c := range cs {
			if m.TS < c.TS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNthHighest(t *testing.T) {
	tests := []struct {
		name   string
		tsrs   []ReaderTS
		n      int
		want   ReaderTS
		wantOK bool
	}{
		{"empty", nil, 0, 0, false},
		{"n too large", []ReaderTS{5, 3}, 2, 0, false},
		{"negative n", []ReaderTS{5}, -1, 0, false},
		{"highest", []ReaderTS{5, 9, 3}, 0, 9, true},
		{"second highest", []ReaderTS{5, 9, 3}, 1, 5, true},
		{"third highest", []ReaderTS{5, 9, 3}, 2, 3, true},
		{"duplicates", []ReaderTS{7, 7, 2}, 1, 7, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := NthHighest(tc.tsrs, tc.n)
			if got != tc.want || ok != tc.wantOK {
				t.Errorf("NthHighest(%v, %d) = (%d, %v), want (%d, %v)",
					tc.tsrs, tc.n, got, ok, tc.want, tc.wantOK)
			}
		})
	}
}

// NthHighest must not mutate its input and must pick exactly the value
// at position n of the descending sort.
func TestNthHighestDoesNotMutate(t *testing.T) {
	in := []ReaderTS{3, 1, 4, 1, 5}
	orig := append([]ReaderTS(nil), in...)
	if _, ok := NthHighest(in, 2); !ok {
		t.Fatal("NthHighest returned !ok on valid input")
	}
	if !reflect.DeepEqual(in, orig) {
		t.Errorf("NthHighest mutated input: %v, want %v", in, orig)
	}
}

func TestProcIDRoles(t *testing.T) {
	tests := []struct {
		id       ProcID
		role     Role
		index    int
		isServer bool
		isWriter bool
		isReader bool
	}{
		{ServerID(0), RoleServer, 0, true, false, false},
		{ServerID(12), RoleServer, 12, true, false, false},
		{WriterID(), RoleWriter, -1, false, true, false},
		{ReaderID(3), RoleReader, 3, false, false, true},
		{ProcID(""), 0, -1, false, false, false},
		{ProcID("x7"), 0, 7, false, false, false},
		{ProcID("s"), 0, -1, false, false, false},
		{ProcID("s-1"), 0, -1, false, false, false},
		{ProcID("s01"), 0, 1, false, false, false},        // leading zero rejected
		{ProcID("w2"), RoleWriter, 2, false, true, false}, // MWMR: writer 2
		{ProcID("w0"), 0, 0, false, false, false},         // writer 0 is "w", not "w0"
		{ProcID("r1x"), 0, -1, false, false, false},
	}
	for _, tc := range tests {
		t.Run(string(tc.id), func(t *testing.T) {
			if got := tc.id.Role(); got != tc.role {
				t.Errorf("Role() = %v, want %v", got, tc.role)
			}
			if got := tc.id.Index(); got != tc.index {
				t.Errorf("Index() = %d, want %d", got, tc.index)
			}
			if got := tc.id.IsServer(); got != tc.isServer {
				t.Errorf("IsServer() = %v, want %v", got, tc.isServer)
			}
			if got := tc.id.IsWriter(); got != tc.isWriter {
				t.Errorf("IsWriter() = %v, want %v", got, tc.isWriter)
			}
			if got := tc.id.IsReader(); got != tc.isReader {
				t.Errorf("IsReader() = %v, want %v", got, tc.isReader)
			}
			if got := tc.id.Valid(); got != (tc.role != 0) {
				t.Errorf("Valid() = %v, want %v", got, tc.role != 0)
			}
		})
	}
}

// Constructed ids must always round-trip through Role/Index.
func TestProcIDQuick(t *testing.T) {
	f := func(raw uint16) bool {
		i := int(raw % 1000)
		s, r := ServerID(i), ReaderID(i)
		return s.Role() == RoleServer && s.Index() == i &&
			r.Role() == RoleReader && r.Index() == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestServerAndReaderIDs(t *testing.T) {
	ids := ServerIDs(3)
	want := []ProcID{"s0", "s1", "s2"}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("ServerIDs(3) = %v, want %v", ids, want)
	}
	rids := ReaderIDs(2)
	wantR := []ProcID{"r0", "r1"}
	if !reflect.DeepEqual(rids, wantR) {
		t.Errorf("ReaderIDs(2) = %v, want %v", rids, wantR)
	}
	if got := ServerIDs(0); len(got) != 0 {
		t.Errorf("ServerIDs(0) = %v, want empty", got)
	}
}

func TestRoleString(t *testing.T) {
	if RoleServer.String() != "server" || RoleWriter.String() != "writer" || RoleReader.String() != "reader" {
		t.Error("Role.String() mismatch for defined roles")
	}
	if Role(0).String() != "invalid-role(0)" {
		t.Errorf("Role(0).String() = %q", Role(0).String())
	}
}

func TestFormatIDs(t *testing.T) {
	got := FormatIDs([]ProcID{"s2", "s0", "w"})
	if got != "{s0,s2,w}" {
		t.Errorf("FormatIDs = %q, want {s0,s2,w}", got)
	}
	if FormatIDs(nil) != "{}" {
		t.Errorf("FormatIDs(nil) = %q, want {}", FormatIDs(nil))
	}
}

func TestTaggedString(t *testing.T) {
	if got := Bottom().String(); got != "〈0,⊥〉" {
		t.Errorf("Bottom().String() = %q", got)
	}
	long := Tagged{TS: 9, Val: Value(randString(40))}
	if s := long.String(); len(s) > 40 {
		t.Errorf("String() did not truncate long value: %q", s)
	}
}

func TestInitialFrozen(t *testing.T) {
	f := InitialFrozen()
	if f.PW != Bottom() || f.TSR != ReaderTS0 {
		t.Errorf("InitialFrozen() = %+v", f)
	}
}

func randString(n int) string {
	rng := rand.New(rand.NewSource(1))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
