package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestStampLessTable(t *testing.T) {
	tests := []struct {
		name string
		a, b Stamp
		want bool
	}{
		{"zero vs seq1", Stamp0, Stamp{Seq: 1}, true},
		{"seq1 vs zero", Stamp{Seq: 1}, Stamp0, false},
		{"seq orders first", Stamp{Seq: 2, Writer: 9}, Stamp{Seq: 3, Writer: 0}, true},
		{"tie-break on writer", Stamp{Seq: 5, Writer: 1}, Stamp{Seq: 5, Writer: 2}, true},
		{"tie-break reversed", Stamp{Seq: 5, Writer: 2}, Stamp{Seq: 5, Writer: 1}, false},
		{"equal stamps", Stamp{Seq: 5, Writer: 2}, Stamp{Seq: 5, Writer: 2}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Less(tc.b); got != tc.want {
				t.Errorf("(%v).Less(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

// randStamp draws stamps from a deliberately small domain so that the
// quick-check properties exercise equal-seq and equal-stamp collisions,
// not just the generic int64 case.
func randStamp(rng *rand.Rand) Stamp {
	return Stamp{Seq: TS(rng.Intn(4)), Writer: WID(rng.Intn(3))}
}

// Stamp.Less must be a strict total order and Equal its equivalence:
// irreflexive, antisymmetric, transitive, total (trichotomy), with ties
// on Seq broken by Writer.
func TestStampTotalOrderQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := &quick.Config{
		MaxCount: 4000,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randStamp(rng))
			}
		},
	}

	irreflexive := func(a Stamp) bool { return !a.Less(a) && a.Equal(a) }
	if err := quick.Check(irreflexive, cfg); err != nil {
		t.Errorf("Less not irreflexive / Equal not reflexive: %v", err)
	}

	antisymmetric := func(a, b Stamp) bool { return !(a.Less(b) && b.Less(a)) }
	if err := quick.Check(antisymmetric, cfg); err != nil {
		t.Errorf("Less not antisymmetric: %v", err)
	}

	transitive := func(a, b, c Stamp) bool {
		if a.Less(b) && b.Less(c) {
			return a.Less(c)
		}
		return true
	}
	if err := quick.Check(transitive, cfg); err != nil {
		t.Errorf("Less not transitive: %v", err)
	}

	// Trichotomy: exactly one of a<b, b<a, a==b holds.
	total := func(a, b Stamp) bool {
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a.Equal(b) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(total, cfg); err != nil {
		t.Errorf("order not total: %v", err)
	}

	// The tie-break: equal Seq orders by Writer, and Compare agrees
	// with Less in both directions.
	tieBreak := func(a, b Stamp) bool {
		if a.Seq == b.Seq && (a.Less(b) != (a.Writer < b.Writer)) {
			return false
		}
		switch a.Compare(b) {
		case -1:
			return a.Less(b)
		case 1:
			return b.Less(a)
		default:
			return a.Equal(b)
		}
	}
	if err := quick.Check(tieBreak, cfg); err != nil {
		t.Errorf("tie-break/Compare inconsistent: %v", err)
	}
}

func TestTaggedStampOrder(t *testing.T) {
	// Same seq, different writers: writer id breaks the tie, and
	// OlderThan treats same-stamp different-value as forgery evidence.
	a := Tagged{TS: 3, W: 1, Val: "a"}
	b := Tagged{TS: 3, W: 2, Val: "b"}
	if !a.Less(b) || b.Less(a) {
		t.Errorf("tie-break failed: a.Less(b)=%v b.Less(a)=%v", a.Less(b), b.Less(a))
	}
	forged := Tagged{TS: 3, W: 1, Val: "x"}
	if !a.OlderThan(forged) {
		t.Error("same-stamp different-value must be OlderThan (forgery)")
	}
	if got := MaxTagged([]Tagged{a, b, {TS: 2, W: 9, Val: "c"}}); got != b {
		t.Errorf("MaxTagged = %v, want %v", got, b)
	}
}

func TestWriterIDN(t *testing.T) {
	tests := []struct {
		id    ProcID
		role  Role
		index int
	}{
		{"w", RoleWriter, 0},
		{"w1", RoleWriter, 1},
		{"w42", RoleWriter, 42},
		{"w0", 0, -1},  // writer 0's canonical id is "w"
		{"w01", 0, -1}, // no leading zeros
		{"wx", 0, -1},
		{"r1", RoleReader, -1},
		{"s0", RoleServer, -1},
	}
	for _, tc := range tests {
		if got := tc.id.Role(); got != tc.role {
			t.Errorf("ProcID(%q).Role() = %v, want %v", tc.id, got, tc.role)
		}
		if got := tc.id.WriterIndex(); got != tc.index {
			t.Errorf("ProcID(%q).WriterIndex() = %d, want %d", tc.id, got, tc.index)
		}
	}
	for i := 0; i < 5; i++ {
		id := WriterIDN(i)
		if !id.IsWriter() || id.WriterIndex() != i {
			t.Errorf("WriterIDN(%d) = %q: IsWriter=%v WriterIndex=%d", i, id, id.IsWriter(), id.WriterIndex())
		}
	}
	if got := WriterIDs(3); len(got) != 3 || got[0] != "w" || got[1] != "w1" || got[2] != "w2" {
		t.Errorf("WriterIDs(3) = %v", got)
	}
}
