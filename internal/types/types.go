// Package types defines the basic data model shared by every protocol in
// this repository: logical timestamps, timestamp–value pairs ("tagged
// values"), frozen entries used by the freezing mechanism, and process
// identifiers for servers, readers and writers.
//
// The model follows Section 2 of Guerraoui, Levy and Vukolić, "Lucky
// Read/Write Access to Robust Atomic Storage" (DSN 2006): the storage
// holds timestamp–value pairs; timestamp 0 together with the empty value
// denotes the initial value ⊥, which is not a valid input for a WRITE.
//
// For multi-writer registers (MWMR) the scalar timestamp generalizes to
// the composite Stamp 〈seq, writer〉, totally ordered by sequence number
// with ties broken on writer id — the standard MWMR construction (see
// the fine-grained-analysis and space-bounds papers in PAPERS.md). A
// single-writer deployment is the special case writer = 0 throughout,
// which is why Tagged keeps its TS field and gains a zero-default W.
package types

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TS is a logical timestamp sequence number. The initial timestamp ts0
// is 0; a writer assigns sequence numbers 1, 2, 3, … in invocation
// order, so in the SWMR setting the timestamp of a value equals the
// index k of the WRITE wr_k that wrote it. In the MWMR setting TS is
// the Seq component of a Stamp.
type TS int64

// TS0 is the initial timestamp ts0 associated with the initial value ⊥.
const TS0 TS = 0

// WID is a writer identifier, the tie-breaking component of a Stamp.
// Writer 0 is the canonical single writer ("w"); writers 1..N-1 are the
// additional writers of a multi-writer deployment ("w1".."wN").
type WID int32

// Stamp is the totally-ordered composite timestamp 〈seq, writer〉 of the
// multi-writer register: stamps compare by sequence number first, with
// ties broken on writer id. Two distinct correct writers can pick the
// same sequence number concurrently, but never the same full stamp, so
// the order is total over all stamps any execution produces.
type Stamp struct {
	Seq    TS
	Writer WID
}

// Stamp0 is the initial stamp 〈ts0, 0〉 associated with ⊥.
var Stamp0 = Stamp{}

// Less reports whether s is strictly smaller than t in the total order.
func (s Stamp) Less(t Stamp) bool {
	if s.Seq != t.Seq {
		return s.Seq < t.Seq
	}
	return s.Writer < t.Writer
}

// Equal reports whether s and t are the same stamp.
func (s Stamp) Equal(t Stamp) bool { return s == t }

// Compare returns -1, 0 or +1 as s is smaller than, equal to or greater
// than t.
func (s Stamp) Compare(t Stamp) int {
	switch {
	case s.Less(t):
		return -1
	case t.Less(s):
		return 1
	default:
		return 0
	}
}

// IsZero reports whether s is the initial stamp 〈0, 0〉.
func (s Stamp) IsZero() bool { return s == Stamp0 }

// String renders the stamp for logs: "5" for writer 0 (the SWMR case
// reads like a scalar timestamp), "5.2" for writer 2.
func (s Stamp) String() string {
	if s.Writer == 0 {
		return strconv.FormatInt(int64(s.Seq), 10)
	}
	return strconv.FormatInt(int64(s.Seq), 10) + "." + strconv.FormatInt(int64(s.Writer), 10)
}

// Value is the application payload stored in the register. It is a
// string rather than a byte slice so that tagged values are comparable
// and usable as map keys; arbitrary binary data can still be stored.
type Value string

// Tagged is a stamp–value pair 〈〈ts, w〉, val〉, the unit of storage in
// the protocol: servers keep tagged values in their pw, w and vw fields
// and readers select among tagged values reported by servers. The zero
// W is writer 0, so single-writer code that only sets TS is unchanged.
type Tagged struct {
	TS  TS
	W   WID
	Val Value
}

// Bottom returns the initial pair 〈ts0, ⊥〉.
func Bottom() Tagged { return Tagged{TS: TS0, Val: ""} }

// IsBottom reports whether c carries the initial timestamp ts0 (the
// writer component is irrelevant at sequence 0: no WRITE binds it).
func (c Tagged) IsBottom() bool { return c.TS == TS0 }

// Stamp returns the composite timestamp of the pair.
func (c Tagged) Stamp() Stamp { return Stamp{Seq: c.TS, Writer: c.W} }

// Less reports whether c is strictly older than d, comparing stamps
// only (values never participate in the order; no correct writer
// assigns two values to one stamp, see Lemma 2 "No ambiguity").
func (c Tagged) Less(d Tagged) bool { return c.Stamp().Less(d.Stamp()) }

// OlderThan reports whether c is "older" than d in the sense used by the
// invalid_w and invalid_pw predicates (Fig. 2 lines 8–9): either c has a
// strictly smaller stamp, or it has the same stamp but a different
// value (which only a malicious process can produce).
func (c Tagged) OlderThan(d Tagged) bool {
	return c.Less(d) || (c.Stamp() == d.Stamp() && c.Val != d.Val)
}

// String renders the pair for logs and test failure messages.
func (c Tagged) String() string {
	if c.IsBottom() {
		return "〈0,⊥〉"
	}
	v := string(c.Val)
	if len(v) > 16 {
		v = v[:13] + "..."
	}
	return fmt.Sprintf("〈%s,%q〉", c.Stamp(), v)
}

// MaxTagged returns the pair with the highest stamp among cs; ties are
// broken arbitrarily (they cannot occur between values written by
// correct writers). It returns Bottom() for an empty slice.
func MaxTagged(cs []Tagged) Tagged {
	best := Bottom()
	for _, c := range cs {
		if best.Less(c) {
			best = c
		}
	}
	return best
}

// ReaderTS is a reader-local timestamp tsr, incremented once at the
// beginning of every READ invocation and used by the freezing mechanism
// to match frozen values to the READ they were frozen for.
type ReaderTS int64

// ReaderTS0 is the initial reader timestamp tsr0.
const ReaderTS0 ReaderTS = 0

// FrozenPair is the per-reader frozen slot stored by each server:
// frozen_rj = 〈pw, tsr〉 (Fig. 3 line 2). A reader rj returns a frozen
// value only when at least b+1 servers report the same pair with tsr
// equal to the reader's current READ timestamp.
type FrozenPair struct {
	PW  Tagged
	TSR ReaderTS
}

// InitialFrozen returns the initial per-reader frozen slot
// 〈〈ts0,⊥〉, tsr0〉.
func InitialFrozen() FrozenPair { return FrozenPair{PW: Bottom(), TSR: ReaderTS0} }

// FrozenEntry is one element of the writer's frozen set
// 〈rj, pw, read_ts[rj]〉 (Fig. 1 line 15), shipped to servers inside PW
// messages (or W messages in the two-phase variant).
type FrozenEntry struct {
	Reader ProcID
	PW     Tagged
	TSR    ReaderTS
}

// ReadStamp is one element of a server's newread field: the id of a
// reader together with the reader timestamp the server stored for it
// (Fig. 3 line 7). Servers piggyback these on PW_ACK messages so the
// writer can detect ongoing slow READs.
type ReadStamp struct {
	Reader ProcID
	TSR    ReaderTS
}

// NthHighest returns the (n+1)-st highest TSR among stamps (n = b gives
// the "b+1-st highest value" of Fig. 1 line 14) and true, or 0 and false
// when fewer than n+1 stamps are present.
func NthHighest(tsrs []ReaderTS, n int) (ReaderTS, bool) {
	if n < 0 || len(tsrs) <= n {
		return 0, false
	}
	sorted := make([]ReaderTS, len(tsrs))
	copy(sorted, tsrs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	return sorted[n], true
}

// Role identifies the kind of process behind a ProcID.
type Role int

// Process roles. Values start at 1 so the zero Role is invalid and
// misuse is detectable.
const (
	RoleServer Role = iota + 1
	RoleWriter
	RoleReader
)

func (r Role) String() string {
	switch r {
	case RoleServer:
		return "server"
	case RoleWriter:
		return "writer"
	case RoleReader:
		return "reader"
	default:
		return "invalid-role(" + strconv.Itoa(int(r)) + ")"
	}
}

// ProcID identifies a process. It is a small string ("s0".."sN" for
// servers, "w"/"w1".."wN" for writers, "r0".."rN" for readers) so it can
// be used as a map key and serialized on the wire without extra
// machinery. Writer 0 keeps the bare id "w" — the canonical SWMR writer
// — and "w0" is rejected so every process has exactly one id.
type ProcID string

// ServerID returns the ProcID of the i-th server.
func ServerID(i int) ProcID { return ProcID("s" + strconv.Itoa(i)) }

// WriterID returns the ProcID of writer 0, the canonical single writer.
func WriterID() ProcID { return "w" }

// WriterIDN returns the ProcID of the i-th writer: "w" for writer 0,
// "w1".."wN" for the additional writers of a multi-writer deployment.
func WriterIDN(i int) ProcID {
	if i == 0 {
		return "w"
	}
	return ProcID("w" + strconv.Itoa(i))
}

// ReaderID returns the ProcID of the i-th reader.
func ReaderID(i int) ProcID { return ProcID("r" + strconv.Itoa(i)) }

// Role reports the role encoded in the id, or 0 for a malformed id.
func (p ProcID) Role() Role {
	if len(p) == 0 {
		return 0
	}
	switch p[0] {
	case 's':
		if p.validIndex() {
			return RoleServer
		}
	case 'w':
		// "w" is writer 0; "w1".."wN" are the other writers. "w0" is
		// rejected: writer 0's one canonical id is the bare "w".
		if p == "w" || (p.validIndex() && p[1] != '0') {
			return RoleWriter
		}
	case 'r':
		if p.validIndex() {
			return RoleReader
		}
	}
	return 0
}

// WriterIndex returns the writer index encoded in a writer id ("w" → 0,
// "wN" → N), or -1 for non-writer and malformed ids.
func (p ProcID) WriterIndex() int {
	if !p.IsWriter() {
		return -1
	}
	if p == "w" {
		return 0
	}
	return p.Index()
}

// Index returns the numeric suffix of a server or reader id, or -1 for
// the writer and malformed ids.
func (p ProcID) Index() int {
	if len(p) < 2 {
		return -1
	}
	n, err := strconv.Atoi(string(p[1:]))
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// Valid reports whether the id is a well-formed server, writer or reader
// id.
func (p ProcID) Valid() bool { return p.Role() != 0 }

// IsServer reports whether the id denotes a server.
func (p ProcID) IsServer() bool { return p.Role() == RoleServer }

// IsWriter reports whether the id denotes the writer.
func (p ProcID) IsWriter() bool { return p.Role() == RoleWriter }

// IsReader reports whether the id denotes a reader.
func (p ProcID) IsReader() bool { return p.Role() == RoleReader }

func (p ProcID) validIndex() bool {
	if len(p) < 2 {
		return false
	}
	s := string(p[1:])
	if len(s) > 1 && s[0] == '0' {
		return false // no leading zeros: one canonical id per process
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// ServerIDs returns the ids s0..s(n-1).
func ServerIDs(n int) []ProcID {
	ids := make([]ProcID, n)
	for i := range ids {
		ids[i] = ServerID(i)
	}
	return ids
}

// WriterIDs returns the ids of writers 0..n-1 ("w", "w1", .., "w(n-1)").
func WriterIDs(n int) []ProcID {
	ids := make([]ProcID, n)
	for i := range ids {
		ids[i] = WriterIDN(i)
	}
	return ids
}

// ReaderIDs returns the ids r0..r(n-1).
func ReaderIDs(n int) []ProcID {
	ids := make([]ProcID, n)
	for i := range ids {
		ids[i] = ReaderID(i)
	}
	return ids
}

// FormatIDs renders a set of ids compactly for logs, sorted.
func FormatIDs(ids []ProcID) string {
	ss := make([]string, len(ids))
	for i, id := range ids {
		ss[i] = string(id)
	}
	sort.Strings(ss)
	return "{" + strings.Join(ss, ",") + "}"
}
