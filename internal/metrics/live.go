// Live instrumentation layer (DESIGN.md §13): atomic counters and
// gauges, lock-free power-of-two latency histograms, and a Registry
// that exposes everything in the Prometheus text format — no external
// dependencies, and zero allocation on every hot-path observation.
//
// The split of responsibilities is strict: wiring (creating counters,
// attaching labels, registering gauge functions) happens once at
// assembly time and may allocate; observing (Inc/Add/Set/Observe)
// happens on operation hot paths and is a handful of atomic
// instructions, never an allocation, never a lock. The PR-4 allocation
// contracts (core Put ≤5 allocs/op, KV ≤10) hold with instrumentation
// enabled, pinned by tests.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative for exposition to make sense).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistogramBuckets is the number of power-of-two latency buckets.
// Bucket i holds observations whose nanosecond value has bit-length i,
// i.e. the half-open range [2^(i-1), 2^i); bucket 0 holds zeros and
// the last bucket additionally absorbs everything ≥ 2^(n-2) (~9.2
// minutes), so no observation is ever dropped.
const HistogramBuckets = 40

// Histogram is a lock-free latency histogram over power-of-two
// nanosecond buckets. Observe is wait-free — one bucket increment plus
// a sum and a count add — and safe under any number of concurrent
// writers; readers (Quantile, WritePrometheus) see a consistent-enough
// snapshot for monitoring purposes.
type Histogram struct {
	buckets [HistogramBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= HistogramBuckets {
		return HistogramBuckets - 1
	}
	return b
}

// bucketUpper returns the exclusive upper bound of bucket i in ns.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 1
	}
	return int64(1) << uint(i)
}

// Observe records one duration. Zero-allocation and lock-free.
func (h *Histogram) Observe(d time.Duration) { h.ObserveN(int64(d)) }

// ObserveN records one raw int64 observation — histograms are
// nanosecond-valued by convention, but the power-of-two buckets work
// for any non-negative magnitude (batch widths, sizes); callers of
// Quantile on such histograms cast the Duration back to a count.
func (h *Histogram) ObserveN(n int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(n)].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Merge adds every bucket of o into h. Safe under concurrent Observe
// on both histograms.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by nearest rank
// over the bucket counts, linearly interpolated inside the winning
// bucket. The power-of-two scheme bounds the relative error of any
// estimate by 2× — adequate for SLO monitoring, where the question is
// "microseconds or milliseconds", not the fourth significant digit.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	var counts [HistogramBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest rank: the smallest rank r (1-based) with cum(r) ≥ q·total.
	rank := int64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := int64(0)
			if i > 0 {
				lo = bucketUpper(i - 1)
			}
			hi := bucketUpper(i)
			// Position of the target rank inside this bucket.
			pos := float64(rank-cum) / float64(n)
			return time.Duration(float64(lo) + pos*float64(hi-lo))
		}
		cum += n
	}
	return time.Duration(bucketUpper(HistogramBuckets - 1))
}

// Label is one name/value exposition label.
type Label struct{ K, V string }

// L builds a Label.
func L(k, v string) Label { return Label{K: k, V: v} }

// NumKeyClasses is the bounded label cardinality for per-key metrics:
// keys hash into this many classes, so per-key-class histograms stay
// O(1) in the keyspace size while still separating hot-spot behavior
// from the long tail.
const NumKeyClasses = 4

// KeyClass hashes a key into [0, NumKeyClasses). FNV-1a, allocation
// free, stable across processes (so a class observed on a server can
// be correlated with the same class on a client).
func KeyClass(key string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % NumKeyClasses)
}

// KeyClassLabels returns the pre-rendered class label values
// ("0" … "3"); index by KeyClass(key) at wiring time.
var KeyClassLabels = func() [NumKeyClasses]string {
	var a [NumKeyClasses]string
	for i := range a {
		a[i] = fmt.Sprintf("%d", i)
	}
	return a
}()

// collector is anything a registry family can expose.
type collector interface{ exposed() }

func (c *Counter) exposed()   {}
func (g *Gauge) exposed()     {}
func (h *Histogram) exposed() {}

// gaugeFunc exposes a callback-valued gauge (e.g. live queue depth).
type gaugeFunc struct{ fn func() int64 }

func (gaugeFunc) exposed() {}

// child is one labeled collector inside a family.
type child struct {
	labels string // rendered `k="v",k2="v2"`, or "" for no labels
	col    collector
}

// family is all collectors sharing one metric name.
type family struct {
	name, help, typ string
	children        []child
	byLabels        map[string]int
}

// Registry holds named metric families and writes them in the
// Prometheus text exposition format. Creation methods are idempotent:
// asking twice for the same name+labels returns the same collector, so
// layers can be wired independently without coordinating ownership.
// Creation takes the registry lock and may allocate — do it at
// assembly time, keep only the returned pointers on hot paths.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// renderLabels formats labels canonically (sorted by key).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].K < ls[j].K })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.K, l.V)
	}
	return b.String()
}

// lookup finds or creates the family and the labeled child slot,
// returning the existing collector or installing the one built by mk.
func (r *Registry) lookup(name, help, typ string, labels []Label, mk func() collector) collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabels: make(map[string]int)}
		r.fams = append(r.fams, f)
		r.byName[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	ls := renderLabels(labels)
	if i, ok := f.byLabels[ls]; ok {
		return f.children[i].col
	}
	c := mk()
	f.byLabels[ls] = len(f.children)
	f.children = append(f.children, child{labels: ls, col: c})
	return c
}

// Counter returns the counter registered under name with the given
// labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, "counter", labels, func() collector { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge registered under name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, "gauge", labels, func() collector { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a callback sampled at exposition time — live
// queue depths, epochs, set sizes. The callback must be safe to call
// from the exposition goroutine. Re-registering the same name+labels
// keeps the first callback.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.lookup(name, help, "gauge", labels, func() collector { return gaugeFunc{fn: fn} })
}

// Histogram returns the power-of-two latency histogram registered
// under name with the given labels. By convention names end in `_ns`:
// bucket bounds, sums and quantiles are all nanoseconds.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.lookup(name, help, "histogram", labels, func() collector { return new(Histogram) }).(*Histogram)
}

// WritePrometheus writes every family in the Prometheus text format
// (version 0.0.4): HELP/TYPE headers, one line per labeled child,
// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`. Families appear in registration order, children sorted by
// label string, so output is deterministic for golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	// Snapshot child slices: families only append, never mutate in
	// place, so sharing the backing arrays is safe.
	snap := make([][]child, len(fams))
	for i, f := range fams {
		snap[i] = f.children
	}
	r.mu.Unlock()

	for i, f := range fams {
		children := make([]child, len(snap[i]))
		copy(children, snap[i])
		sort.Slice(children, func(a, b int) bool { return children[a].labels < children[b].labels })
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, c := range children {
			if err := writeChild(w, f.name, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, name string, c child) error {
	series := func(suffix, extra string) string {
		ls := c.labels
		if extra != "" {
			if ls != "" {
				ls += ","
			}
			ls += extra
		}
		if ls == "" {
			return name + suffix
		}
		return name + suffix + "{" + ls + "}"
	}
	switch v := c.col.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %d\n", series("", ""), v.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %d\n", series("", ""), v.Value())
		return err
	case gaugeFunc:
		_, err := fmt.Fprintf(w, "%s %d\n", series("", ""), v.fn())
		return err
	case *Histogram:
		var cum int64
		for i := 0; i < HistogramBuckets; i++ {
			n := v.buckets[i].Load()
			if n == 0 && i != HistogramBuckets-1 {
				continue // sparse exposition: skip interior empty buckets
			}
			cum += n
			if _, err := fmt.Fprintf(w, "%s %d\n", series("_bucket", fmt.Sprintf("le=%q", fmt.Sprint(bucketUpper(i)))), cum); err != nil {
				return err
			}
		}
		// cum (not the count atomic) keeps +Inf and _count consistent
		// with the bucket lines even while writers race the snapshot.
		if _, err := fmt.Fprintf(w, "%s %d\n", series("_bucket", `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", series("_sum", ""), int64(v.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", series("_count", ""), cum)
		return err
	default:
		return fmt.Errorf("metrics: unknown collector type %T", c.col)
	}
}
