package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPercentileNearestRankSmallN pins the nearest-rank arithmetic at
// the small sample sizes where off-by-ones live: the p-th percentile
// of N samples is the element at rank ceil(p·N/100), 1-based, clamped
// to [1, N].
func TestPercentileNearestRankSmallN(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		samples []time.Duration
		p       int
		want    time.Duration
	}{
		// N=1: every percentile is the single sample.
		{[]time.Duration{ms(7)}, 1, ms(7)},
		{[]time.Duration{ms(7)}, 50, ms(7)},
		{[]time.Duration{ms(7)}, 99, ms(7)},
		{[]time.Duration{ms(7)}, 100, ms(7)},
		// N=2: p50 → rank ceil(1.0)=1, p51 → rank ceil(1.02)=2.
		{[]time.Duration{ms(1), ms(2)}, 50, ms(1)},
		{[]time.Duration{ms(1), ms(2)}, 51, ms(2)},
		{[]time.Duration{ms(1), ms(2)}, 95, ms(2)},
		// N=3: p50 → rank 2 (the true median), p95 → rank 3.
		{[]time.Duration{ms(1), ms(2), ms(3)}, 50, ms(2)},
		{[]time.Duration{ms(1), ms(2), ms(3)}, 95, ms(3)},
		// N=4: p50 → rank 2, p75 → rank 3, p76 → rank 4.
		{[]time.Duration{ms(1), ms(2), ms(3), ms(4)}, 50, ms(2)},
		{[]time.Duration{ms(1), ms(2), ms(3), ms(4)}, 75, ms(3)},
		{[]time.Duration{ms(1), ms(2), ms(3), ms(4)}, 76, ms(4)},
		// N=20: p95 → rank 19, not 20.
		{seq(ms, 20), 95, ms(19)},
		// N=100: p95 is exactly the 95th sample.
		{seq(ms, 100), 95, ms(95)},
		// p=0 clamps to rank 1 rather than rank 0.
		{seq(ms, 5), 0, ms(1)},
	}
	for _, c := range cases {
		got := percentile(c.samples, c.p)
		if got != c.want {
			t.Errorf("percentile(N=%d, p=%d) = %v, want %v", len(c.samples), c.p, got, c.want)
		}
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", got)
	}
}

func seq(ms func(int) time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = ms(i + 1)
	}
	return out
}

// TestHistogramBuckets pins the power-of-two bucket boundaries.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 50, HistogramBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// TestHistogramQuantile checks nearest-rank selection over buckets:
// with all mass in one bucket the quantile lands inside that bucket's
// bounds, and with split mass the right bucket wins.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 90 observations near 1µs, 10 near 1ms.
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Millisecond)
	}
	if q := h.Quantile(0.50); q < 512*time.Nanosecond || q > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs (within its power-of-two bucket)", q)
	}
	// p90: rank 90 of 100 is still the last of the 1µs observations.
	if q := h.Quantile(0.90); q > 2*time.Microsecond {
		t.Errorf("p90 = %v, want ≤2µs (rank 90 is the last fast op)", q)
	}
	// p91 crosses into the millisecond bucket.
	if q := h.Quantile(0.91); q < 512*time.Microsecond || q > 2*time.Millisecond {
		t.Errorf("p91 = %v, want ~1ms", q)
	}
	if q := h.Quantile(1.0); q < 512*time.Microsecond || q > 2*time.Millisecond {
		t.Errorf("p100 = %v, want ~1ms", q)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d, want 100", h.Count())
	}
	wantSum := 90*time.Microsecond + 10*time.Millisecond
	if h.Sum() != wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestHistogramConcurrentMerge hammers one histogram from many
// writers while another goroutine merges it into an aggregate and a
// reader computes quantiles — the -race leg proves Observe/Merge/
// Quantile need no locks, and the final counts prove no observation
// was lost.
func TestHistogramConcurrentMerge(t *testing.T) {
	const writers, perWriter = 8, 5000
	var src, agg Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				src.Observe(time.Duration(1+(i%1000)) * time.Microsecond)
			}
		}(w)
	}
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				agg.Merge(&src) // racing merge: must not panic or tear
			}
		}
	}()
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = src.Quantile(0.99)
				var b bytes.Buffer
				r := NewRegistry()
				r.lookup("x_ns", "", "histogram", nil, func() collector { return &src })
				_ = r.WritePrometheus(&b)
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := src.Count(); got != writers*perWriter {
		t.Fatalf("lost observations: count = %d, want %d", got, writers*perWriter)
	}
	// A final quiescent merge into a fresh histogram preserves counts.
	var final Histogram
	final.Merge(&src)
	if final.Count() != src.Count() || final.Sum() != src.Sum() {
		t.Fatalf("merge lost mass: %d/%v vs %d/%v", final.Count(), final.Sum(), src.Count(), src.Sum())
	}
}

// TestWritePrometheusGolden pins the exposition format: HELP/TYPE
// headers, label rendering, deterministic ordering, cumulative
// histogram buckets with sparse interior omission.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lucky_ops_total", "Operations completed.", L("op", "put"))
	c.Add(3)
	r.Counter("lucky_ops_total", "Operations completed.", L("op", "get")).Add(5)
	g := r.Gauge("lucky_epoch", "Current ring epoch.")
	g.Set(7)
	r.GaugeFunc("lucky_queue_depth", "Live queue depth.", func() int64 { return 2 }, L("shard", "0"))
	h := r.Histogram("lucky_put_latency_ns", "Put latency.", L("class", "1"))
	h.Observe(3 * time.Nanosecond)   // bucket 2, upper bound 4
	h.Observe(3 * time.Nanosecond)   // same bucket
	h.Observe(100 * time.Nanosecond) // bucket 7, upper bound 128

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP lucky_ops_total Operations completed.",
		"# TYPE lucky_ops_total counter",
		`lucky_ops_total{op="get"} 5`,
		`lucky_ops_total{op="put"} 3`,
		"# HELP lucky_epoch Current ring epoch.",
		"# TYPE lucky_epoch gauge",
		"lucky_epoch 7",
		"# HELP lucky_queue_depth Live queue depth.",
		"# TYPE lucky_queue_depth gauge",
		`lucky_queue_depth{shard="0"} 2`,
		"# HELP lucky_put_latency_ns Put latency.",
		"# TYPE lucky_put_latency_ns histogram",
		`lucky_put_latency_ns_bucket{class="1",le="4"} 2`,
		`lucky_put_latency_ns_bucket{class="1",le="128"} 3`,
		`lucky_put_latency_ns_bucket{class="1",le="549755813888"} 3`,
		`lucky_put_latency_ns_bucket{class="1",le="+Inf"} 3`,
		`lucky_put_latency_ns_sum{class="1"} 106`,
		`lucky_put_latency_ns_count{class="1"} 3`,
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRegistryIdempotent: same name+labels → same collector; same
// name, different type → panic (a wiring bug, caught at assembly).
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("k", "v"))
	b := r.Counter("x_total", "x", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if c := r.Counter("x_total", "x", L("k", "w")); c == a {
		t.Fatal("different labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestKeyClassBounds: classes stay in range and a given key is stable.
func TestKeyClassBounds(t *testing.T) {
	seen := map[int]bool{}
	for _, k := range []string{"", "a", "key-17", "user:12345", "zzzz", "k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"} {
		c := KeyClass(k)
		if c < 0 || c >= NumKeyClasses {
			t.Fatalf("KeyClass(%q) = %d out of range", k, c)
		}
		if c != KeyClass(k) {
			t.Fatalf("KeyClass(%q) unstable", k)
		}
		seen[c] = true
	}
	if len(seen) < 2 {
		t.Fatalf("key classes degenerate: only %d distinct classes over sample keys", len(seen))
	}
}

// TestNilInstrumentsAreNoops: every hot-path method tolerates a nil
// receiver, which is how disabled instrumentation stays branch-cheap.
func TestNilInstrumentsAreNoops(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(-1)
	h.Observe(time.Second)
	h.ObserveSince(time.Now())
	h.Merge(nil)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}
