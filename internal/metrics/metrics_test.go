package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestSummarizeBasics(t *testing.T) {
	samples := []time.Duration{
		3 * time.Millisecond, 1 * time.Millisecond, 2 * time.Millisecond,
	}
	s := Summarize(samples)
	if s.Count != 3 || s.Min != time.Millisecond || s.Max != 3*time.Millisecond {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 2*time.Millisecond {
		t.Errorf("mean = %v, want 2ms", s.Mean)
	}
	if s.P50 != 2*time.Millisecond {
		t.Errorf("p50 = %v, want 2ms", s.P50)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	samples := []time.Duration{5, 1, 3}
	Summarize(samples)
	if samples[0] != 5 || samples[1] != 1 || samples[2] != 3 {
		t.Errorf("input mutated: %v", samples)
	}
}

// Percentiles must be monotone and within [min, max].
func TestSummarizeQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v) * time.Microsecond
		}
		s := Summarize(samples)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRoundDist(t *testing.T) {
	d := RoundDist{}
	for i := 0; i < 9; i++ {
		d.Add(1)
	}
	d.Add(3)
	if got := d.FastFraction(); got != 0.9 {
		t.Errorf("FastFraction = %v, want 0.9", got)
	}
	if got := d.String(); got != "1r:9 3r:1" {
		t.Errorf("String = %q", got)
	}
	empty := RoundDist{}
	if empty.FastFraction() != 0 || empty.String() != "(empty)" {
		t.Errorf("empty dist: %v %q", empty.FastFraction(), empty.String())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "rounds")
	tbl.AddRow("fast-write", "1")
	tbl.AddRow("slow", "3")
	out := tbl.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "fast-write") {
		t.Errorf("rendered table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Padded row: short rows fill with empty cells without panic.
	tbl.AddRow("only-one")
	_ = tbl.String()

	md := tbl.Markdown()
	if !strings.Contains(md, "| name | rounds |") {
		t.Errorf("markdown header missing:\n%s", md)
	}
}

func TestHelpers(t *testing.T) {
	if Itoa(42) != "42" {
		t.Error("Itoa broken")
	}
	if Bool(true) != "yes" || Bool(false) != "no" {
		t.Error("Bool broken")
	}
}
