// Package metrics provides the small statistics and table-formatting
// toolkit used by the experiment harness and the benchmarks: latency
// summaries, round-trip distributions, and aligned ASCII tables whose
// rows are what EXPERIMENTS.md records.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Summary condenses a sample of durations.
type Summary struct {
	Count    int
	Min, Max time.Duration
	Mean     time.Duration
	P50, P95 time.Duration
}

// Summarize computes a Summary; the zero Summary is returned for an
// empty sample.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	return Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  total / time.Duration(len(sorted)),
		P50:   percentile(sorted, 50),
		P95:   percentile(sorted, 95),
	}
}

// percentile returns the p-th percentile of a sorted sample using the
// nearest-rank method.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// RoundDist is a histogram of per-operation round-trip counts.
type RoundDist map[int]int

// Add counts one operation that took r round-trips.
func (d RoundDist) Add(r int) { d[r]++ }

// FastFraction reports the share of 1-round operations.
func (d RoundDist) FastFraction() float64 {
	total := 0
	for _, n := range d {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(d[1]) / float64(total)
}

// String renders the histogram compactly, e.g. "1r:47 3r:3".
func (d RoundDist) String() string {
	if len(d) == 0 {
		return "(empty)"
	}
	rounds := make([]int, 0, len(d))
	for r := range d {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	parts := make([]string, 0, len(rounds))
	for _, r := range rounds {
		parts = append(parts, fmt.Sprintf("%dr:%d", r, d[r]))
	}
	return strings.Join(parts, " ")
}

// Table is an aligned ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Itoa is a convenience for building rows.
func Itoa(n int) string { return fmt.Sprintf("%d", n) }

// Bool renders ✓/✗ cells.
func Bool(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
