package storage

import (
	"sync"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// Memory is the in-memory Backend: a single grow-only byte arena plus
// record lengths. It has the same record semantics as the file backend
// (append order, compaction) without the disk, so simnet deployments
// exercise genuine log replay on warm restarts and the file backend's
// alloc overhead can be measured against a like-for-like baseline.
//
// Append copies into the arena with amortized growth: steady-state
// appends allocate nothing, matching the hot-path contract.
type Memory struct {
	mu      sync.Mutex
	buf     []byte // concatenated payloads
	lens    []int  // payload lengths, in append order
	factory func() Automaton

	snapRecords int // records belonging to the last snapshot
	compactions int64
	closed      bool
}

// NewMemory creates an in-memory backend. factory builds the private
// automaton used for compaction; nil disables compaction.
func NewMemory(factory func() Automaton) *Memory {
	return &Memory{factory: factory}
}

// Append implements Backend.
func (m *Memory) Append(payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if len(payload) > MaxRecordSize {
		return ErrCorrupt
	}
	m.buf = append(m.buf, payload...)
	m.lens = append(m.lens, len(payload))
	if m.factory != nil && len(m.lens)-m.snapRecords > compactThreshold(m.snapRecords) {
		return m.compactLocked()
	}
	return nil
}

// Commit implements Backend. Memory is always "durable".
func (m *Memory) Commit() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Replay implements Backend.
func (m *Memory) Replay(fn func(payload []byte) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	off := 0
	for _, n := range m.lens {
		if err := fn(m.buf[off : off+n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Wipe implements Backend.
func (m *Memory) Wipe() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.buf = m.buf[:0]
	m.lens = m.lens[:0]
	m.snapRecords = 0
	return nil
}

// Stats implements Backend.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Records:     len(m.lens),
		TailRecords: len(m.lens) - m.snapRecords,
		Bytes:       int64(len(m.buf)),
		Compactions: m.compactions,
	}
}

// Close implements Backend.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// compactLocked replays the whole log into a private automaton and
// replaces it with that automaton's snapshot records.
func (m *Memory) compactLocked() error {
	a := m.factory()
	off := 0
	for i, n := range m.lens {
		env, err := DecodeRecord(m.buf[off : off+n])
		if err != nil {
			return errRecord(i, err)
		}
		a.Step(env.From, env.Msg)
		off += n
	}
	buf, lens, err := snapshotPayloads(a)
	if err != nil {
		return err
	}
	m.buf, m.lens = buf, lens
	m.snapRecords = len(lens)
	m.compactions++
	return nil
}

// compactThreshold is the tail-growth bound before a snapshot: the
// log may hold a small constant floor, or a few multiples of the live
// state, whichever is larger — so stored bytes stay proportional to
// state, not to write history (the space-bounds yardstick).
func compactThreshold(liveRecords int) int {
	const (
		minTail = 256
		factor  = 4
	)
	if t := factor * liveRecords; t > minTail {
		return t
	}
	return minTail
}

// snapshotDest is the To identity stamped on snapshot records. Replay
// ignores the destination; any valid wire ID works.
var snapshotDest = types.ServerID(0)

// snapshotPayloads collects an automaton's snapshot records as
// encoded payloads in one arena.
func snapshotPayloads(a Automaton) (buf []byte, lens []int, err error) {
	emitErr := a.SnapshotRecords(func(from types.ProcID, msg wire.Message) error {
		start := len(buf)
		var aerr error
		buf, aerr = AppendRecord(buf, from, snapshotDest, msg)
		if aerr != nil {
			buf = buf[:start]
			return aerr
		}
		lens = append(lens, len(buf)-start)
		return nil
	})
	return buf, lens, emitErr
}
