// Package storage gives servers a durable write-ahead log. A server
// automaton is wrapped in a Durable stepper that appends every
// state-mutating message to a Backend and waits for it to commit
// before releasing the replies — nothing is acknowledged that a crash
// could lose. Recovery replays the log back into a fresh automaton:
// because every server transition is a monotone merge, replaying a
// superset (committed-but-unacknowledged records) or a suffix twice is
// harmless, which is what makes the torn-tail truncation and the
// snapshot/compaction crash windows safe (DESIGN.md §11).
package storage

import (
	"errors"
	"fmt"

	"luckystore/internal/node"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

var (
	// ErrCorrupt reports a record that is inside the durable prefix —
	// a sealed snapshot segment, or the log body before the torn tail —
	// yet fails its CRC or decode. Unlike a torn tail (unacknowledged
	// by construction), corrupt committed data may have been
	// acknowledged to clients; silently dropping it would turn a crash
	// fault into a Byzantine one, so recovery refuses instead.
	ErrCorrupt = errors.New("storage: corrupt record")
	// ErrClosed reports use of a closed backend.
	ErrClosed = errors.New("storage: backend closed")
	// ErrDiskFault is the sticky error a Fault backend surfaces once a
	// scheduled fault fires: the disk is gone until the backend is
	// reopened (healed).
	ErrDiskFault = errors.New("storage: injected disk fault")
)

// MaxRecordSize bounds one WAL record payload (1 MiB). A register
// value plus envelope overhead is far smaller; the cap keeps a forged
// length prefix in a corrupted log from driving a giant allocation
// during recovery.
const MaxRecordSize = 1 << 20

// Backend is a durable append-only record log. Append buffers one
// record; Commit makes everything appended so far durable (the file
// backend group-commits: concurrent committers share one fsync).
// Implementations are safe for concurrent use — one backend is shared
// by all shards of a server process so their records land in a single
// ordered log with batched fsyncs.
type Backend interface {
	// Append buffers one record. The payload is copied; the caller may
	// reuse its buffer immediately.
	Append(payload []byte) error
	// Commit makes every record appended before the call durable.
	Commit() error
	// Replay calls fn for each durable record in append order
	// (snapshot records first, then the log tail). The payload is only
	// valid during the call.
	Replay(fn func(payload []byte) error) error
	// Wipe discards all records: the amnesiac restart
	// (RestartServerFresh) — the disk burned down with the process.
	Wipe() error
	// Stats reports record and byte counts for tests and luckyctl.
	Stats() Stats
	// Close flushes and fsyncs anything pending and releases the
	// backend.
	Close() error
}

// Stats describes a backend's current contents.
type Stats struct {
	// Records is the total replayable record count (snapshot + tail).
	Records int
	// TailRecords counts records appended since the last compaction.
	TailRecords int
	// Bytes is the stored log size (snapshot + tail, framing included).
	Bytes int64
	// Compactions counts snapshot+truncate cycles performed.
	Compactions int64
}

// Snapshotter is implemented by automata that can emit their state as
// a bounded sequence of synthetic protocol messages: replaying the
// emitted records into a fresh automaton reproduces the state. Because
// snapshots are ordinary records, recovery has exactly one code path.
type Snapshotter interface {
	SnapshotRecords(emit func(from types.ProcID, m wire.Message) error) error
}

// Automaton is what a backend needs for compaction and recovery: a
// steppable automaton that can snapshot itself. core.Server and
// keyed.Server satisfy it structurally.
type Automaton interface {
	node.Automaton
	Snapshotter
}

// Sized is optionally implemented by automata that can estimate their
// live state (core.Server.StateSize); compaction uses it to scale the
// log-growth threshold to the state actually worth snapshotting.
type Sized interface {
	StateSize() (frozenSlots, readerSlots int)
}

// Provider opens named backends: one per server process. Cluster
// constructors take a Provider so deployments choose memory or file
// storage without the cluster knowing the difference.
type Provider interface {
	Open(name string) (Backend, error)
}

// AppendRecord encodes one WAL record payload: a wire format version
// byte followed by the binary envelope. Reuses the caller's buffer —
// zero allocations once the buffer has grown to steady size.
func AppendRecord(buf []byte, from, to types.ProcID, m wire.Message) ([]byte, error) {
	buf = append(buf, wire.FormatVersion)
	return wire.AppendEnvelope(buf, wire.Envelope{From: from, To: to, Msg: m})
}

// DecodeRecord decodes a WAL record payload produced by AppendRecord.
func DecodeRecord(p []byte) (wire.Envelope, error) {
	if len(p) == 0 {
		return wire.Envelope{}, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	env, err := wire.DecodeEnvelopeVersion(p[0], p[1:])
	if err != nil {
		return wire.Envelope{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return env, nil
}

func errRecord(i int, err error) error {
	return fmt.Errorf("record %d: %w", i, err)
}

// Mutating reports whether a message can change server automaton
// state and therefore must be logged before its reply is released.
// Acks never mutate; READ round 1 leaves no trace (the fast path stays
// log-free); everything the automaton merges is logged. Logging a
// message the automaton would drop (a stale retransmission, a W from a
// reader under the regular variant) is harmless: replay steps it
// through the same automaton, which drops it identically.
func Mutating(m wire.Message) bool {
	switch v := m.(type) {
	case wire.Keyed:
		return Mutating(v.Inner)
	case wire.PW:
		return true
	case wire.W:
		return true
	case wire.ABDWrite:
		return true
	case wire.Read:
		return v.Round > 1
	default:
		return false
	}
}

// Recover replays every durable record of b into a, discarding the
// replies (the clients they were addressed to are long gone). Returns
// the number of records replayed. A record that passed its CRC but
// fails to decode is corruption, not a torn tail — recovery refuses
// rather than silently dropping possibly-acknowledged state.
func Recover(b Backend, a node.Automaton) (int, error) {
	n := 0
	var scratch []transport.Outgoing
	err := b.Replay(func(p []byte) error {
		env, err := DecodeRecord(p)
		if err != nil {
			return fmt.Errorf("record %d: %w", n, err)
		}
		scratch = node.StepInto(a, env.From, env.Msg, scratch[:0])
		n++
		return nil
	})
	return n, err
}
