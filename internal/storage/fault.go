package storage

import (
	"fmt"
	"sync"
)

// Fault kinds accepted by (*Fault).Arm and the chaos disk-fault
// action.
const (
	// FaultTornWrite kills the disk mid-write: the armed record's
	// frame lands torn on the medium (file backend) or not at all
	// (memory backend) and every later operation fails. Recovery
	// truncates the torn tail; only unacknowledged data is lost.
	FaultTornWrite = "torn-write"
	// FaultFsyncError fails the commit after the write was buffered:
	// the record may or may not survive — exactly the promise fsync
	// breaks — and the backend is dead until healed.
	FaultFsyncError = "fsync-error"
	// FaultShortRead fails the next Replay partway through. Recovery
	// must surface the error rather than silently acting on a prefix
	// of committed state.
	FaultShortRead = "short-read"
)

// Fault wraps a Backend with schedule-driven fault injection. Chaos
// deployments arm faults by name at seeded times; unit tests arm them
// directly. After a write-path fault fires the wrapper is dead —
// every operation fails, muting the Durable stepper above it — until
// Heal (the in-process stand-in for replacing the disk and
// restarting; file-backed deployments instead reopen the directory,
// which exercises the real fsck path).
type Fault struct {
	mu         sync.Mutex
	inner      Backend
	armed      string
	shortReads int
	dead       bool
}

var _ Backend = (*Fault)(nil)

// tearAppender is the file backend's hook for medium-level torn
// writes; backends without one (memory) drop the record instead,
// which is the same observable outcome after recovery.
type tearAppender interface{ TearNextAppend() }

// NewFault wraps a backend; no faults are armed initially.
func NewFault(inner Backend) *Fault { return &Fault{inner: inner} }

// Inner returns the wrapped backend.
func (f *Fault) Inner() Backend { return f.inner }

// Arm schedules a one-shot fault. Write-path kinds replace any
// previously armed kind; short-read arms stack.
func (f *Fault) Arm(kind string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch kind {
	case FaultTornWrite, FaultFsyncError:
		f.armed = kind
	case FaultShortRead:
		f.shortReads++
	default:
		return fmt.Errorf("storage: unknown fault kind %q", kind)
	}
	return nil
}

// Heal clears dead state and any armed fault: the operator replaced
// the disk. The inner backend's contents are untouched.
func (f *Fault) Heal() {
	f.mu.Lock()
	f.dead = false
	f.armed = ""
	f.shortReads = 0
	f.mu.Unlock()
}

// Dead reports whether a write-path fault has fired.
func (f *Fault) Dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// Append implements Backend.
func (f *Fault) Append(payload []byte) error {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return ErrDiskFault
	}
	if f.armed == FaultTornWrite {
		f.armed = ""
		f.dead = true
		if t, ok := f.inner.(tearAppender); ok {
			t.TearNextAppend()
			err := f.inner.Append(payload)
			f.mu.Unlock()
			if err != nil {
				return err
			}
			return f.inner.Commit() // flushes the torn frame, fails sticky
		}
		// No medium to tear: the record simply never hits it.
		f.mu.Unlock()
		return ErrDiskFault
	}
	f.mu.Unlock()
	return f.inner.Append(payload)
}

// Commit implements Backend.
func (f *Fault) Commit() error {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return ErrDiskFault
	}
	if f.armed == FaultFsyncError {
		// The write was buffered but the sync fails: the backend has
		// the record (it may survive, like data in a page cache that
		// did reach the platter) yet nothing is promised — and nothing
		// is acknowledged, because this error kills the server.
		f.armed = ""
		f.dead = true
		f.mu.Unlock()
		return ErrDiskFault
	}
	f.mu.Unlock()
	return f.inner.Commit()
}

// Replay implements Backend. An armed short-read delivers roughly
// half the records, then fails — recovery must refuse the prefix.
func (f *Fault) Replay(fn func(payload []byte) error) error {
	f.mu.Lock()
	short := f.shortReads > 0
	if short {
		f.shortReads--
	}
	f.mu.Unlock()
	if !short {
		return f.inner.Replay(fn)
	}
	total := f.inner.Stats().Records
	seen := 0
	err := f.inner.Replay(func(p []byte) error {
		if seen >= total/2 {
			return fmt.Errorf("%w: short read after %d of %d records", ErrDiskFault, seen, total)
		}
		seen++
		return fn(p)
	})
	return err
}

// Wipe implements Backend.
func (f *Fault) Wipe() error {
	f.mu.Lock()
	dead := f.dead
	f.mu.Unlock()
	if dead {
		return ErrDiskFault
	}
	return f.inner.Wipe()
}

// Stats implements Backend.
func (f *Fault) Stats() Stats { return f.inner.Stats() }

// Close implements Backend.
func (f *Fault) Close() error { return f.inner.Close() }
