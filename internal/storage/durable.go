package storage

import (
	"time"

	"luckystore/internal/node"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// Durable wraps an automaton so every state-mutating message is
// logged and committed before the replies escape: write-ahead in the
// only sense that matters — the ack is held hostage to the fsync. A
// server whose backend fails goes mute instead of replying from
// non-durable state (a mute server is a crash fault the protocol
// already tolerates; replying would risk regressing acknowledged
// state after recovery, which is Byzantine).
//
// One Durable wraps one shard/automaton and is stepped by a single
// goroutine (the runner or shard worker contract), so its encode
// buffer needs no lock. Many Durables share one Backend: the file
// backend's group commit turns their concurrent commits into batched
// fsyncs.
type Durable struct {
	inner node.Automaton
	back  Backend
	self  types.ProcID
	buf   []byte // record encode scratch, reused every step
	dead  bool
	met   *DurableMetrics // nil disables; set before stepping begins
}

// SetMetrics attaches live instrumentation. Like every other field, it
// is owned by the stepping goroutine: call it before the first step
// (at construction/wiring time), not concurrently with stepping.
func (d *Durable) SetMetrics(m *DurableMetrics) { d.met = m }

var (
	_ node.Automaton     = (*Durable)(nil)
	_ node.AppendStepper = (*Durable)(nil)
)

// NewDurable wraps inner so mutations persist to back before being
// acknowledged. self is the server identity stamped into records.
func NewDurable(inner node.Automaton, back Backend, self types.ProcID) *Durable {
	return &Durable{inner: inner, back: back, self: self}
}

// Inner returns the wrapped automaton, for tests that inspect state.
func (d *Durable) Inner() node.Automaton { return d.inner }

// Step implements node.Automaton.
func (d *Durable) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	return d.StepAppend(from, m, nil)
}

// StepAppend implements node.AppendStepper. The order is
// step-then-commit: the automaton transitions first (its outputs are
// needed anyway), but the replies are withheld — by returning out
// unextended — unless the record is durable. On the steady-state hot
// path this adds zero allocations: the record encodes into a reused
// buffer and the backend copies it into its own reused arena.
func (d *Durable) StepAppend(from types.ProcID, m wire.Message, out []transport.Outgoing) []transport.Outgoing {
	if d.dead {
		return out
	}
	n := len(out)
	res := node.StepInto(d.inner, from, m, out)
	if !Mutating(m) {
		return res
	}
	var t0 time.Time
	if d.met != nil {
		t0 = time.Now()
	}
	var err error
	d.buf, err = AppendRecord(d.buf[:0], from, d.self, m)
	if err == nil {
		err = d.back.Append(d.buf)
	}
	if err == nil {
		err = d.back.Commit()
	}
	if err != nil {
		d.dead = true
		return res[:n]
	}
	if d.met != nil {
		d.met.Appends.Inc()
		d.met.AppendLatency.ObserveSince(t0)
	}
	return res
}
