package storage_test

// On-disk format pins. The WAL container layout (DESIGN.md §11) is a
// compatibility surface: a new binary must recover directories written
// by the old one, so the bytes are pinned golden — any change here is
// a format break and needs a new magic, not a test update.

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"luckystore/internal/core"
	"luckystore/internal/storage"
)

// goldenWAL is the exact file a backend writes for two committed
// payloads "hello" and "wal-golden":
//
//	8-byte magic "LSWAL1\n\x00"
//	u32be length | u32be CRC-32C(payload) | payload, per record
const goldenWAL = "4c5357414c310a00" + // magic
	"00000005" + "9a71bb4c" + "68656c6c6f" + // |"hello"| crc32c "hello"
	"0000000a" + "2682ec84" + "77616c2d676f6c64656e" // |"wal-golden"| crc32c "wal-golden"

func goldenBytes(t *testing.T) []byte {
	t.Helper()
	b, err := hex.DecodeString(goldenWAL)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGoldenWALBytesWritten(t *testing.T) {
	dir := t.TempDir()
	back, err := storage.NewFile(dir, coreFactory)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"hello", "wal-golden"} {
		if err := back.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := back.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := back.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "wal-0.log"))
	if err != nil {
		t.Fatal(err)
	}
	if want := goldenBytes(t); !bytes.Equal(got, want) {
		t.Errorf("WAL bytes drifted from the pinned format:\ngot  %x\nwant %x", got, want)
	}
}

// The inverse pin: a directory holding exactly the golden bytes —
// bytes a previous binary version could have written — must replay.
func TestGoldenWALBytesReplayed(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-0.log"), goldenBytes(t), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := storage.NewFile(dir, coreFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	var got []string
	err = back.Replay(func(p []byte) error { got = append(got, string(p)); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "hello" || got[1] != "wal-golden" {
		t.Errorf("replayed %q, want [hello wal-golden]", got)
	}
}

// FuzzReplayLog throws arbitrary bytes at the recovery path as an
// active log: whatever a corrupted disk holds, opening it must not
// panic, a forged length prefix must not drive a giant allocation
// (MaxRecordSize), and the fsck must be idempotent — the records and
// the verdict after the first open's truncation are what every later
// open sees.
func FuzzReplayLog(f *testing.F) {
	seed, err := hex.DecodeString(goldenWAL)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)                                                   // clean log
	f.Add(seed[:len(seed)-3])                                     // torn tail mid-record
	f.Add(seed[:8])                                               // magic only
	f.Add([]byte{})                                               // empty file
	f.Add([]byte("LSWAL1\n\x00\xff\xff\xff\xff\xff\xff\xff\xff")) // forged huge length
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)-1] ^= 0x01 // CRC mismatch in the last record
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		back, err := storage.NewFile(dir, coreFactory)
		if err != nil {
			return // refusing damaged input loudly is a valid outcome
		}
		n1, err1 := storage.Recover(back, core.NewServer())
		if cerr := back.Close(); cerr != nil {
			t.Fatalf("close after recovery: %v", cerr)
		}

		// The first open physically truncated any torn tail; a second
		// open of the same directory must see a clean file with the
		// identical replayable prefix.
		back2, err := storage.NewFile(dir, coreFactory)
		if err != nil {
			t.Fatalf("reopen after fsck refused: %v", err)
		}
		defer back2.Close()
		n2, err2 := storage.Recover(back2, core.NewServer())
		if n2 != n1 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("fsck not idempotent: first open replayed %d (err=%v), second %d (err=%v)",
				n1, err1, n2, err2)
		}
	})
}
