package storage_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"luckystore/internal/core"
	"luckystore/internal/keyed"
	"luckystore/internal/node"
	"luckystore/internal/storage"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func tagged(seq int, w int, val string) types.Tagged {
	return types.Tagged{TS: types.TS(seq), W: types.WID(w), Val: types.Value(val)}
}

func wMsg(round, seq int, val string) wire.W {
	return wire.W{Round: round, Tag: int64(seq), C: tagged(seq, 0, val)}
}

func coreFactory() storage.Automaton { return core.NewServer() }

// driveServer applies a representative state: three register pairs, a
// frozen slot and a reader timestamp.
func driveServer(t *testing.T, step func(from types.ProcID, m wire.Message)) {
	t.Helper()
	w := types.WriterID()
	r := types.ReaderID(0)
	step(w, wire.PW{TS: 1, PW: tagged(1, 0, "a"), W: types.Bottom()})
	step(w, wMsg(3, 1, "a"))
	step(r, wire.Read{TSR: 2, Round: 2})
	step(w, wire.PW{TS: 2, PW: tagged(2, 0, "b"), W: tagged(1, 0, "a"),
		Frozen: []types.FrozenEntry{{Reader: r, PW: tagged(1, 0, "a"), TSR: 2}}})
	step(w, wMsg(2, 2, "b"))
}

func assertRecovered(t *testing.T, back storage.Backend, want *core.Server) {
	t.Helper()
	got := core.NewServer()
	n, err := storage.Recover(back, got)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if n == 0 {
		t.Fatalf("Recover replayed no records")
	}
	assertSameState(t, want, got)
}

func assertSameState(t *testing.T, want, got *core.Server) {
	t.Helper()
	wpw, ww, wvw := want.State()
	gpw, gw, gvw := got.State()
	if wpw != gpw || ww != gw || wvw != gvw {
		t.Fatalf("state mismatch:\nwant pw=%+v w=%+v vw=%+v\ngot  pw=%+v w=%+v vw=%+v",
			wpw, ww, wvw, gpw, gw, gvw)
	}
	r := types.ReaderID(0)
	if want.FrozenFor(r) != got.FrozenFor(r) {
		t.Fatalf("frozen mismatch: want %+v got %+v", want.FrozenFor(r), got.FrozenFor(r))
	}
	if want.ReaderTS(r) != got.ReaderTS(r) {
		t.Fatalf("readerTS mismatch: want %v got %v", want.ReaderTS(r), got.ReaderTS(r))
	}
}

func backends(t *testing.T) map[string]storage.Backend {
	t.Helper()
	file, err := storage.NewFile(t.TempDir(), coreFactory)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	return map[string]storage.Backend{
		"memory": storage.NewMemory(coreFactory),
		"file":   file,
	}
}

func TestDurableRecoverRoundTrip(t *testing.T) {
	for name, back := range backends(t) {
		t.Run(name, func(t *testing.T) {
			inner := core.NewServer()
			d := storage.NewDurable(inner, back, types.ServerID(0))
			driveServer(t, func(from types.ProcID, m wire.Message) {
				if out := d.Step(from, m); len(out) == 0 {
					t.Fatalf("step %v: replies withheld (backend error?)", m)
				}
			})
			assertRecovered(t, back, inner)
			if err := back.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

func TestDurableSkipsNonMutating(t *testing.T) {
	back := storage.NewMemory(coreFactory)
	d := storage.NewDurable(core.NewServer(), back, types.ServerID(0))
	// Round-1 READ is the fast path: answered, never logged.
	if out := d.Step(types.ReaderID(0), wire.Read{TSR: 1, Round: 1}); len(out) != 1 {
		t.Fatalf("fast read got %d replies, want 1", len(out))
	}
	if st := back.Stats(); st.Records != 0 {
		t.Fatalf("fast read logged %d records, want 0", st.Records)
	}
	if out := d.Step(types.WriterID(), wMsg(2, 1, "x")); len(out) != 1 {
		t.Fatalf("write got no reply")
	}
	if st := back.Stats(); st.Records != 1 {
		t.Fatalf("write logged %d records, want 1", st.Records)
	}
}

func TestMutating(t *testing.T) {
	cases := []struct {
		m    wire.Message
		want bool
	}{
		{wire.PW{TS: 1}, true},
		{wire.W{Round: 2}, true},
		{wire.ABDWrite{}, true},
		{wire.Read{TSR: 1, Round: 1}, false},
		{wire.Read{TSR: 1, Round: 2}, true},
		{wire.ReadAck{}, false},
		{wire.PWAck{}, false},
		{wire.WAck{}, false},
		{wire.Keyed{Key: "k", Inner: wire.W{Round: 1}}, true},
		{wire.Keyed{Key: "k", Inner: wire.Read{TSR: 1, Round: 1}}, false},
		{wire.Batch{}, false},
	}
	for _, c := range cases {
		if got := storage.Mutating(c.m); got != c.want {
			t.Errorf("Mutating(%T %+v) = %v, want %v", c.m, c.m, got, c.want)
		}
	}
}

func TestFileTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	f, err := storage.NewFile(dir, coreFactory)
	if err != nil {
		t.Fatal(err)
	}
	inner := core.NewServer()
	d := storage.NewDurable(inner, f, types.ServerID(0))
	driveServer(t, func(from types.ProcID, m wire.Message) { d.Step(from, m) })
	recs := f.Stats().Records
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-write leaves a partial frame: simulate with trailing
	// garbage that cannot parse as a frame.
	walPath := filepath.Join(dir, "wal-0.log")
	wal, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write([]byte{0x00, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	wal.Close()

	reopened, err := storage.NewFile(dir, coreFactory)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer reopened.Close()
	if got := reopened.Stats().Records; got != recs {
		t.Fatalf("after torn-tail fsck got %d records, want %d", got, recs)
	}
	assertRecovered(t, reopened, inner)

	// The fsck physically truncated the tail: a third open sees a clean
	// file of the same size.
	info, err := storage.InspectFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Truncated() || info.Reason != "" {
		t.Fatalf("wal still torn after fsck: %+v", info)
	}
}

func TestFileHalfRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	f, err := storage.NewFile(dir, coreFactory)
	if err != nil {
		t.Fatal(err)
	}
	inner := core.NewServer()
	d := storage.NewDurable(inner, f, types.ServerID(0))
	driveServer(t, func(from types.ProcID, m wire.Message) { d.Step(from, m) })
	recs := f.Stats().Records
	f.Close()

	// Cut the last record in half.
	walPath := filepath.Join(dir, "wal-0.log")
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := storage.NewFile(dir, coreFactory)
	if err != nil {
		t.Fatalf("reopen with half record: %v", err)
	}
	defer reopened.Close()
	if got := reopened.Stats().Records; got != recs-1 {
		t.Fatalf("after cut got %d records, want %d", got, recs-1)
	}
	if _, err := storage.Recover(reopened, core.NewServer()); err != nil {
		t.Fatalf("Recover after truncation: %v", err)
	}
}

func TestCorruptSealedSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	f, err := storage.NewFile(dir, coreFactory, storage.WithCompactEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	d := storage.NewDurable(core.NewServer(), f, types.ServerID(0))
	for i := 1; i <= 20; i++ {
		d.Step(types.WriterID(), wMsg(2, i, "v"))
	}
	if f.Stats().Compactions == 0 {
		t.Fatalf("no compaction after 20 writes with floor 4")
	}
	f.Close()

	// Flip a byte inside the sealed snapshot segment's body.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.seg"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want one snapshot, got %v (%v)", snaps, err)
	}
	b, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(snaps[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := storage.NewFile(dir, coreFactory); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("reopen with corrupt sealed snapshot: err = %v, want ErrCorrupt", err)
	}
}

func TestCompactionBoundsLog(t *testing.T) {
	for name, newBack := range map[string]func() storage.Backend{
		"memory": func() storage.Backend { return storage.NewMemory(coreFactory) },
		"file": func() storage.Backend {
			f, err := storage.NewFile(t.TempDir(), coreFactory, storage.WithCompactEvery(16))
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
	} {
		t.Run(name, func(t *testing.T) {
			back := newBack()
			defer back.Close()
			inner := core.NewServer()
			d := storage.NewDurable(inner, back, types.ServerID(0))
			const writes = 2000
			for i := 1; i <= writes; i++ {
				if out := d.Step(types.WriterID(), wMsg(2, i, "vvvvvvvv")); len(out) != 1 {
					t.Fatalf("write %d muted", i)
				}
			}
			st := back.Stats()
			// Live state is one register (a handful of snapshot
			// records); the log must be bounded by the compaction
			// threshold, not by the 2000-write history.
			if st.Records >= writes/2 {
				t.Fatalf("log holds %d records after %d writes: compaction not bounding state", st.Records, writes)
			}
			if name == "file" && st.Compactions == 0 {
				t.Fatalf("file backend never compacted")
			}
			assertRecovered(t, back, inner)
		})
	}
}

func TestWipeIsAmnesiac(t *testing.T) {
	for name, back := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer back.Close()
			d := storage.NewDurable(core.NewServer(), back, types.ServerID(0))
			driveServer(t, func(from types.ProcID, m wire.Message) { d.Step(from, m) })
			if err := back.Wipe(); err != nil {
				t.Fatalf("Wipe: %v", err)
			}
			if st := back.Stats(); st.Records != 0 {
				t.Fatalf("wipe left %d records", st.Records)
			}
			fresh := core.NewServer()
			if n, err := storage.Recover(back, fresh); err != nil || n != 0 {
				t.Fatalf("Recover after wipe: n=%d err=%v", n, err)
			}
			assertSameState(t, core.NewServer(), fresh)
		})
	}
}

func TestTornWriteFaultThenReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	f, err := storage.NewFile(dir, coreFactory)
	if err != nil {
		t.Fatal(err)
	}
	fb := storage.NewFault(f)
	d := storage.NewDurable(core.NewServer(), fb, types.ServerID(0))
	// committed mirrors only the acknowledged steps: the wrapped inner
	// automaton itself advances on the torn write too (its reply is
	// simply withheld), so it is not the reference for what a client
	// could have observed.
	committed := core.NewServer()
	driveServer(t, func(from types.ProcID, m wire.Message) {
		if out := d.Step(from, m); len(out) == 0 {
			t.Fatalf("pre-fault step muted")
		}
		committed.Step(from, m)
	})

	// The torn write: the record lands half-written, the reply is
	// withheld, the server is mute from here on.
	if err := fb.Arm(storage.FaultTornWrite); err != nil {
		t.Fatal(err)
	}
	if out := d.Step(types.WriterID(), wMsg(2, 99, "never-acked")); len(out) != 0 {
		t.Fatalf("torn write was acknowledged")
	}
	if !fb.Dead() {
		t.Fatalf("fault backend alive after torn write")
	}
	if out := d.Step(types.WriterID(), wMsg(2, 100, "after-death")); len(out) != 0 {
		t.Fatalf("dead server answered")
	}
	fb.Close()

	// kill -9, disk retained: reopen the directory. The torn frame is
	// truncated; every acknowledged record survives.
	reopened, err := storage.NewFile(dir, coreFactory)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer reopened.Close()
	recovered := core.NewServer()
	if _, err := storage.Recover(reopened, recovered); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	assertSameState(t, committed, recovered)
	if _, w, _ := recovered.State(); w.Val == "never-acked" {
		t.Fatalf("unacknowledged torn record resurfaced")
	}
}

func TestFsyncErrorFaultMutesServer(t *testing.T) {
	for name, back := range backends(t) {
		t.Run(name, func(t *testing.T) {
			fb := storage.NewFault(back)
			defer fb.Close()
			committed := core.NewServer()
			d := storage.NewDurable(committed, fb, types.ServerID(0))
			driveServer(t, func(from types.ProcID, m wire.Message) { d.Step(from, m) })
			fb.Arm(storage.FaultFsyncError)
			if out := d.Step(types.WriterID(), wMsg(2, 50, "lost-sync")); len(out) != 0 {
				t.Fatalf("fsync-failed write was acknowledged")
			}
			if !fb.Dead() {
				t.Fatalf("backend alive after fsync error")
			}
			// Heal (disk replaced) and recover: everything acknowledged
			// must be there; the unacked record may or may not be — both
			// are legal, so only assert no regression below committed.
			fb.Heal()
			recovered := core.NewServer()
			if _, err := storage.Recover(fb, recovered); err != nil {
				t.Fatalf("Recover after heal: %v", err)
			}
			cpw, _, _ := committed.State()
			rpw, _, _ := recovered.State()
			if rpw.Stamp().Less(cpw.Stamp()) {
				t.Fatalf("recovered pw %+v older than committed %+v", rpw, cpw)
			}
		})
	}
}

func TestShortReadFailsRecoveryLoudly(t *testing.T) {
	back := storage.NewMemory(coreFactory)
	fb := storage.NewFault(back)
	d := storage.NewDurable(core.NewServer(), fb, types.ServerID(0))
	driveServer(t, func(from types.ProcID, m wire.Message) { d.Step(from, m) })

	fb.Arm(storage.FaultShortRead)
	if _, err := storage.Recover(fb, core.NewServer()); err == nil {
		t.Fatalf("short read silently recovered a prefix of committed state")
	}
	// The fault is one-shot: the retry succeeds in full.
	if _, err := storage.Recover(fb, core.NewServer()); err != nil {
		t.Fatalf("retry after short read: %v", err)
	}
}

func TestKeyedDurableRoundTrip(t *testing.T) {
	factory := func() storage.Automaton {
		return keyed.NewServer(func() node.Automaton { return core.NewServer() })
	}
	f, err := storage.NewFile(t.TempDir(), factory, storage.WithCompactEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	inner := keyed.NewShardedServer(4, func() node.Automaton { return core.NewServer() })
	// Wrap each shard, sharing the backend — the production shape.
	shards := inner.Shards()
	durables := make([]*storage.Durable, len(shards))
	for i, sh := range shards {
		durables[i] = storage.NewDurable(sh, f, types.ServerID(0))
	}
	route := inner.Route()
	stepKeyed := func(key string, from types.ProcID, m wire.Message) {
		km := wire.Keyed{Key: key, Inner: m}
		durables[route(km)].Step(from, km)
	}
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i, k := range keys {
		for seq := 1; seq <= 5+i; seq++ {
			stepKeyed(k, types.WriterID(), wMsg(2, seq, k))
		}
	}

	recovered := keyed.NewShardedServer(4, func() node.Automaton { return core.NewServer() })
	if n, err := storage.Recover(f, recovered); err != nil || n == 0 {
		t.Fatalf("Recover: n=%d err=%v", n, err)
	}
	if got, want := recovered.Regs(), len(keys); got != want {
		t.Fatalf("recovered %d registers, want %d", got, want)
	}
	// Reads against the recovered automaton must serve each key's last
	// written pair.
	for i, k := range keys {
		out := recovered.Step(types.ReaderID(0), wire.Keyed{Key: k, Inner: wire.Read{TSR: 100, Round: 1}})
		if len(out) != 1 {
			t.Fatalf("key %q: no read reply", k)
		}
		ack := out[0].Msg.(wire.Keyed).Inner.(wire.ReadAck)
		if want := types.TS(5 + i); ack.W.TS != want || ack.W.Val != types.Value(k) {
			t.Fatalf("key %q recovered w=%+v, want ts=%d val=%q", k, ack.W, want, k)
		}
	}
}

func TestProvidersReopenSemantics(t *testing.T) {
	t.Run("memory-same-instance", func(t *testing.T) {
		p := storage.NewMemProvider(coreFactory)
		b1, _ := p.Open("s0")
		d := storage.NewDurable(core.NewServer(), b1, types.ServerID(0))
		d.Step(types.WriterID(), wMsg(2, 1, "x"))
		b2, _ := p.Open("s0")
		if b2.Stats().Records != 1 {
			t.Fatalf("reopened memory backend lost records")
		}
	})
	t.Run("dir-reopen-runs-fsck", func(t *testing.T) {
		p := storage.NewDirProvider(t.TempDir(), coreFactory)
		b1, err := p.Open("s0")
		if err != nil {
			t.Fatal(err)
		}
		d := storage.NewDurable(core.NewServer(), b1, types.ServerID(0))
		d.Step(types.WriterID(), wMsg(2, 1, "x"))
		b1.Close()
		b2, err := p.Open("s0")
		if err != nil {
			t.Fatal(err)
		}
		defer b2.Close()
		if b2.Stats().Records != 1 {
			t.Fatalf("reopened file backend lost records")
		}
	})
}
