package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// On-disk layout. A backend directory holds at most one generation:
//
//	snap-<N>.seg   sealed snapshot segment (absent before the first
//	               compaction)
//	wal-<N>.log    active write-ahead log for generation N
//
// Both start with an 8-byte magic. Each record is framed as
//
//	u32be payload length | u32be CRC-32C of payload | payload
//
// Compaction writes snap-<N+1> (via tmp + atomic rename), creates
// wal-<N+1>, then deletes generation N — in that order, so a crash at
// any point leaves a directory Open can always make sense of: the
// highest complete snapshot wins, its generation's log (created empty
// if the crash hit first) is the tail, everything else is leftover.
//
// The active log's tail may be torn by a crash mid-write: Open scans
// it and truncates at the first bad frame. Torn records were never
// acknowledged (the Durable stepper releases replies only after
// Commit), so truncation loses nothing a client saw. A bad frame in a
// sealed snapshot segment is ErrCorrupt instead — that data was
// committed.
const fileMagic = "LSWAL1\n\x00"

// frameHeaderSize is the per-record framing overhead.
const frameHeaderSize = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects the file backend's fsync policy.
type SyncMode int

const (
	// SyncBatched group-commits: one syncer goroutine writes and
	// fsyncs the shared pending buffer while concurrent committers
	// wait; whoever lands in the batch rides the same fsync. This is
	// the default and the mode that keeps multi-shard servers at one
	// fsync per batch instead of one per record.
	SyncBatched SyncMode = iota
	// SyncEach fsyncs every Commit individually under the backend
	// lock — the no-batching baseline E15 measures against.
	SyncEach
	// SyncNone writes without fsync: durability limited to what the
	// OS page cache survives. For benchmarks isolating fsync cost.
	SyncNone
)

// FileOption configures a file backend.
type FileOption func(*File)

// WithSyncMode sets the fsync policy (default SyncBatched).
func WithSyncMode(m SyncMode) FileOption {
	return func(f *File) { f.mode = m }
}

// WithCompactEvery overrides the compaction trigger floor: the log
// compacts once the tail exceeds max(minTail, 4 × snapshot records).
// Tests use a small floor to force compactions quickly.
func WithCompactEvery(minTail int) FileOption {
	return func(f *File) { f.minTail = minTail }
}

// File is the log-structured file Backend.
type File struct {
	mu   sync.Mutex
	cond *sync.Cond

	dir     string
	factory func() Automaton
	mode    SyncMode
	minTail int

	gen int
	wal *os.File

	snapRecords int
	snapBytes   int64
	walRecords  int   // records flushed to the active log
	walBytes    int64 // framed bytes flushed to the active log

	pending        []byte // framed records not yet written
	pendingRecords int
	lastFrameOff   int    // offset of the last frame in pending, -1 if none
	spare          []byte // flushed buffer awaiting reuse (double-buffer)

	appendSeq  int64 // records ever appended
	durableSeq int64 // records durable
	syncing    bool  // a batched syncer holds the file

	tearNext    bool // fault hook: tear the last pending frame mid-write
	sticky      error
	compactions int64
	closed      bool

	encScratch []byte // compaction/snapshot encode buffer

	met atomic.Pointer[FileMetrics] // nil until SetMetrics
}

// SetMetrics attaches (or detaches, with nil) live instrumentation.
// Safe at any time: writeFlush runs outside the backend lock, so the
// pointer is atomic rather than mu-guarded.
func (f *File) SetMetrics(m *FileMetrics) { f.met.Store(m) }

var _ Backend = (*File)(nil)

func snapName(gen int) string { return fmt.Sprintf("snap-%d.seg", gen) }
func walName(gen int) string  { return fmt.Sprintf("wal-%d.log", gen) }

// NewFile opens (or creates) the file backend in dir, running crash
// recovery on whatever a previous process left behind: leftover
// generations are deleted, the active log's torn tail is truncated at
// the first bad frame, and the snapshot segment is CRC-verified.
// factory builds the private automaton compaction replays into; nil
// disables compaction.
func NewFile(dir string, factory func() Automaton, opts ...FileOption) (*File, error) {
	f := &File{
		dir:          dir,
		factory:      factory,
		mode:         SyncBatched,
		minTail:      256,
		lastFrameOff: -1,
	}
	f.cond = sync.NewCond(&f.mu)
	for _, o := range opts {
		o(f)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := f.open(); err != nil {
		return nil, err
	}
	return f, nil
}

// open scans the directory, picks the live generation, fscks it and
// opens the active log for appending.
func (f *File) open() error {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return err
	}
	snapGen, walGen := -1, -1
	var leftovers []string
	for _, e := range entries {
		name := e.Name()
		var g int
		switch {
		case matchGen(name, "snap-%d.seg", &g):
			if g > snapGen {
				snapGen = g
			}
		case matchGen(name, "wal-%d.log", &g):
			if g > walGen {
				walGen = g
			}
		case filepath.Ext(name) == ".tmp":
			leftovers = append(leftovers, name)
		}
	}
	// The live generation: the highest complete snapshot, or with no
	// snapshot yet, the highest log (0 on a fresh directory).
	f.gen = snapGen
	if f.gen < 0 {
		f.gen = walGen
	}
	if f.gen < 0 {
		f.gen = 0
	}
	for _, e := range entries {
		name := e.Name()
		var g int
		if (matchGen(name, "snap-%d.seg", &g) || matchGen(name, "wal-%d.log", &g)) && g != f.gen {
			leftovers = append(leftovers, name)
		}
	}
	sort.Strings(leftovers)
	for _, name := range leftovers {
		if err := os.Remove(filepath.Join(f.dir, name)); err != nil {
			return err
		}
	}

	if snapGen == f.gen {
		b, err := os.ReadFile(filepath.Join(f.dir, snapName(f.gen)))
		if err != nil {
			return err
		}
		body, ok := stripMagic(b)
		if !ok {
			return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, snapName(f.gen))
		}
		n, validLen, scanErr := scanFrames(body)
		if scanErr != nil || validLen != len(body) {
			return fmt.Errorf("%w: %s: sealed segment damaged at offset %d",
				ErrCorrupt, snapName(f.gen), len(fileMagic)+validLen)
		}
		f.snapRecords, f.snapBytes = n, int64(len(b))
	}

	walPath := filepath.Join(f.dir, walName(f.gen))
	b, err := os.ReadFile(walPath)
	switch {
	case os.IsNotExist(err):
		if err := f.createLog(walPath); err != nil {
			return err
		}
	case err != nil:
		return err
	default:
		body, ok := stripMagic(b)
		keep := int64(0)
		if ok {
			n, validLen, _ := scanFrames(body)
			f.walRecords = n
			f.walBytes = int64(validLen)
			keep = int64(len(fileMagic) + validLen)
		}
		if !ok {
			// The log died before its header hit the disk: nothing in
			// it can be a committed record; start it over.
			return f.createLog(walPath)
		}
		w, err := os.OpenFile(walPath, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		if keep < int64(len(b)) {
			// Torn tail: drop the partial frame a crash left behind.
			if err := w.Truncate(keep); err != nil {
				w.Close()
				return err
			}
			if err := w.Sync(); err != nil {
				w.Close()
				return err
			}
		}
		if _, err := w.Seek(keep, 0); err != nil {
			w.Close()
			return err
		}
		f.wal = w
	}
	return nil
}

// createLog writes a fresh log file (magic only) and opens it.
func (f *File) createLog(path string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.WriteString(fileMagic); err != nil {
		w.Close()
		return err
	}
	if f.mode != SyncNone {
		if err := w.Sync(); err != nil {
			w.Close()
			return err
		}
		if err := syncDir(f.dir); err != nil {
			w.Close()
			return err
		}
	}
	f.wal = w
	f.walRecords, f.walBytes = 0, 0
	return nil
}

func matchGen(name, pattern string, g *int) bool {
	var n int
	if _, err := fmt.Sscanf(name, pattern, &n); err != nil {
		return false
	}
	// Sscanf tolerates trailing garbage; rebuild and compare.
	if fmt.Sprintf(pattern, n) != name {
		return false
	}
	*g = n
	return true
}

func stripMagic(b []byte) ([]byte, bool) {
	if len(b) < len(fileMagic) || string(b[:len(fileMagic)]) != fileMagic {
		return nil, false
	}
	return b[len(fileMagic):], true
}

// scanFrames walks framed records, returning how many are valid and
// the byte length of the valid prefix. A non-nil error describes why
// scanning stopped before the end (torn or corrupt frame).
func scanFrames(b []byte) (records, validLen int, err error) {
	off := 0
	for off < len(b) {
		n, adv, ferr := checkFrame(b[off:])
		if ferr != nil {
			return records, off, ferr
		}
		_ = n
		records++
		off += adv
	}
	return records, off, nil
}

// checkFrame validates the frame at the start of b, returning the
// payload and the total frame length.
func checkFrame(b []byte) (payload []byte, frameLen int, err error) {
	if len(b) < frameHeaderSize {
		return nil, 0, fmt.Errorf("short frame header (%d bytes)", len(b))
	}
	n := int(binary.BigEndian.Uint32(b))
	if n == 0 || n > MaxRecordSize {
		return nil, 0, fmt.Errorf("implausible record length %d", n)
	}
	if len(b)-frameHeaderSize < n {
		return nil, 0, fmt.Errorf("truncated record body (%d of %d bytes)", len(b)-frameHeaderSize, n)
	}
	p := b[frameHeaderSize : frameHeaderSize+n]
	want := binary.BigEndian.Uint32(b[4:])
	if crc32.Checksum(p, crcTable) != want {
		return nil, 0, fmt.Errorf("CRC mismatch")
	}
	return p, frameHeaderSize + n, nil
}

// appendFrame frames one payload into buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Append implements Backend: frames the payload into the pending
// buffer. Amortized zero allocations — the buffer is reused across
// flushes. Triggers compaction when the tail outgrows the snapshot.
func (f *File) Append(payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.usableLocked(); err != nil {
		return err
	}
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("storage: record of %d bytes exceeds MaxRecordSize", len(payload))
	}
	f.lastFrameOff = len(f.pending)
	f.pending = appendFrame(f.pending, payload)
	f.pendingRecords++
	f.appendSeq++
	if f.factory != nil && !f.syncing &&
		f.walRecords+f.pendingRecords > compactThresholdMin(f.minTail, f.snapRecords) {
		return f.compactLocked()
	}
	return nil
}

// Commit implements Backend: returns once every record appended
// before the call is durable. In SyncBatched mode concurrent
// committers share fsyncs — one becomes the syncer, flushes the whole
// pending buffer, and wakes the rest; a committer whose records were
// already covered returns without touching the disk.
func (f *File) Commit() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.usableLocked(); err != nil {
		return err
	}
	if f.mode == SyncEach {
		return f.flushHoldingLock()
	}
	target := f.appendSeq
	for f.durableSeq < target {
		if f.sticky != nil {
			return f.sticky
		}
		if f.syncing {
			f.cond.Wait()
			continue
		}
		if err := f.syncPendingLocked(); err != nil {
			return err
		}
	}
	return nil
}

// usableLocked reports the sticky/closed state.
func (f *File) usableLocked() error {
	if f.closed {
		return ErrClosed
	}
	return f.sticky
}

// syncPendingLocked becomes the syncer: swaps out the pending buffer,
// releases the lock for the write+fsync, and re-acquires it to
// publish durability. Callers must hold mu with syncing == false.
func (f *File) syncPendingLocked() error {
	buf, recs, tear, lastFrame, target := f.takePendingLocked()
	if len(buf) == 0 && !tear {
		return f.sticky
	}
	f.syncing = true
	f.mu.Unlock()
	err := f.writeFlush(buf, tear, lastFrame)
	f.mu.Lock()
	f.syncing = false
	f.finishFlushLocked(buf, recs, target, err)
	f.cond.Broadcast()
	return err
}

// flushHoldingLock writes and fsyncs pending without releasing mu
// (SyncEach, compaction, Close): simple, serialized, no batching.
func (f *File) flushHoldingLock() error {
	for f.syncing {
		f.cond.Wait()
	}
	if f.sticky != nil {
		return f.sticky
	}
	buf, recs, tear, lastFrame, target := f.takePendingLocked()
	if len(buf) == 0 && !tear {
		return nil
	}
	err := f.writeFlush(buf, tear, lastFrame)
	f.finishFlushLocked(buf, recs, target, err)
	f.cond.Broadcast()
	return err
}

func (f *File) takePendingLocked() (buf []byte, recs int, tear bool, lastFrame int, target int64) {
	buf, recs, tear, lastFrame, target =
		f.pending, f.pendingRecords, f.tearNext, f.lastFrameOff, f.appendSeq
	f.pending = f.spare[:0]
	f.spare = nil
	f.pendingRecords = 0
	f.lastFrameOff = -1
	f.tearNext = false
	return
}

func (f *File) finishFlushLocked(buf []byte, recs int, target int64, err error) {
	f.spare = buf[:0]
	if err != nil {
		f.sticky = err
		return
	}
	f.durableSeq = target
	f.walRecords += recs
	f.walBytes += int64(len(buf))
	if m := f.met.Load(); m != nil {
		m.FlushRecords.ObserveN(int64(recs))
		m.FlushBytes.Add(int64(len(buf)))
	}
}

// writeFlush performs the IO for one flush. With tear set it writes
// the batch cut halfway through its final frame, fsyncs the damage,
// and fails — the injected kill-9 mid-write: earlier records in the
// batch are intact (complete frames, never acknowledged), the last is
// the torn tail recovery must truncate.
func (f *File) writeFlush(buf []byte, tear bool, lastFrame int) error {
	if tear {
		cut := len(buf)
		if lastFrame >= 0 {
			cut = lastFrame + (len(buf)-lastFrame)/2
			if cut <= lastFrame {
				cut = lastFrame + 1
			}
		}
		if _, err := f.wal.Write(buf[:cut]); err != nil {
			return err
		}
		f.wal.Sync()
		return ErrDiskFault
	}
	if _, err := f.wal.Write(buf); err != nil {
		return err
	}
	if f.mode != SyncNone {
		t0 := time.Now()
		if err := f.wal.Sync(); err != nil {
			return err
		}
		if m := f.met.Load(); m != nil {
			m.FsyncLatency.ObserveSince(t0)
		}
	}
	return nil
}

// TearNextAppend arms the torn-write fault: the next flushed batch is
// cut mid-frame and the backend goes sticky-dead, exactly as if the
// process were killed during the write. Used by the Fault wrapper.
func (f *File) TearNextAppend() {
	f.mu.Lock()
	f.tearNext = true
	f.mu.Unlock()
}

// Replay implements Backend: flushes pending, then walks snapshot and
// log records in order. On a freshly opened backend the torn tail has
// already been truncated, so any bad frame here is ErrCorrupt.
func (f *File) Replay(fn func(payload []byte) error) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.sticky == nil && f.pendingRecords > 0 {
		if err := f.flushHoldingLock(); err != nil {
			return err
		}
	}
	if f.snapRecords > 0 {
		if err := f.replayFileLocked(snapName(f.gen), fn); err != nil {
			return err
		}
	}
	if f.walRecords > 0 {
		if err := f.replayFileLocked(walName(f.gen), fn); err != nil {
			return err
		}
	}
	return nil
}

func (f *File) replayFileLocked(name string, fn func(payload []byte) error) error {
	b, err := os.ReadFile(filepath.Join(f.dir, name))
	if err != nil {
		return err
	}
	body, ok := stripMagic(b)
	if !ok {
		return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, name)
	}
	// Replay only the fsck'd prefix: bytes past walBytes are writes
	// that raced with this replay (none in practice — replay callers
	// own the backend exclusively).
	off := 0
	for off < len(body) {
		p, adv, ferr := checkFrame(body[off:])
		if ferr != nil {
			return fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, name, len(fileMagic)+off, ferr)
		}
		if err := fn(p); err != nil {
			return err
		}
		off += adv
	}
	return nil
}

// Wipe implements Backend: deletes all records — the amnesiac
// restart. Implemented as a generation bump to an empty log so a
// crash mid-wipe still recovers to a sane (empty or previous) state.
func (f *File) Wipe() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	for f.syncing {
		f.cond.Wait()
	}
	oldGen := f.gen
	hadSnap := f.snapRecords > 0
	f.takePendingLocked() // drop unflushed records
	f.sticky = nil
	if f.wal != nil {
		f.wal.Close()
		f.wal = nil
	}
	f.gen = oldGen + 1
	if err := f.createLog(filepath.Join(f.dir, walName(f.gen))); err != nil {
		f.sticky = err
		return err
	}
	os.Remove(filepath.Join(f.dir, walName(oldGen)))
	if hadSnap {
		os.Remove(filepath.Join(f.dir, snapName(oldGen)))
	}
	f.snapRecords, f.snapBytes = 0, 0
	f.appendSeq, f.durableSeq = 0, 0
	return nil
}

// Stats implements Backend.
func (f *File) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Stats{
		Records:     f.snapRecords + f.walRecords + f.pendingRecords,
		TailRecords: f.walRecords + f.pendingRecords,
		Bytes:       f.snapBytes + f.walBytes + int64(len(f.pending)),
		Compactions: f.compactions,
	}
}

// Close implements Backend: flushes and fsyncs pending records, then
// releases the file — the graceful-shutdown path luckyd takes on
// SIGTERM.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	var err error
	if f.sticky == nil {
		err = f.flushHoldingLock()
		if err == nil && f.mode == SyncNone && f.wal != nil {
			err = f.wal.Sync()
		}
	}
	f.closed = true
	if f.wal != nil {
		if cerr := f.wal.Close(); err == nil {
			err = cerr
		}
		f.wal = nil
	}
	return err
}

// compactLocked seals the current generation into a snapshot segment
// and starts an empty log: flush, replay everything into a private
// automaton from the factory, write snap-(gen+1) via tmp+rename,
// create wal-(gen+1), delete generation gen. Runs synchronously under
// the lock — compaction is rare (every ~max(minTail, 4×state)
// records) and keeping it serialized makes the crash ordering above
// trivially true.
func (f *File) compactLocked() error {
	if err := f.flushHoldingLock(); err != nil {
		return err
	}
	a := f.factory()
	replayed := 0
	replay := func(name string) error {
		return f.replayFileLocked(name, func(p []byte) error {
			env, err := DecodeRecord(p)
			if err != nil {
				return errRecord(replayed, err)
			}
			a.Step(env.From, env.Msg)
			replayed++
			return nil
		})
	}
	if f.snapRecords > 0 {
		if err := replay(snapName(f.gen)); err != nil {
			f.sticky = err
			return err
		}
	}
	if err := replay(walName(f.gen)); err != nil {
		f.sticky = err
		return err
	}

	newGen := f.gen + 1
	tmp := filepath.Join(f.dir, fmt.Sprintf("snap-%d.tmp", newGen))
	snap, err := os.Create(tmp)
	if err != nil {
		f.sticky = err
		return err
	}
	if _, err := snap.WriteString(fileMagic); err != nil {
		snap.Close()
		os.Remove(tmp)
		f.sticky = err
		return err
	}
	written := 0
	emit := func(from types.ProcID, msg wire.Message) error {
		f.encScratch = f.encScratch[:0]
		var aerr error
		f.encScratch, aerr = AppendRecord(f.encScratch, from, snapshotDest, msg)
		if aerr != nil {
			return aerr
		}
		frame := appendFrame(nil, f.encScratch)
		if _, werr := snap.Write(frame); werr != nil {
			return werr
		}
		written++
		return nil
	}
	if err := a.SnapshotRecords(emit); err != nil {
		snap.Close()
		os.Remove(tmp)
		f.sticky = err
		return err
	}
	if err := snap.Sync(); err != nil {
		snap.Close()
		f.sticky = err
		return err
	}
	if err := snap.Close(); err != nil {
		f.sticky = err
		return err
	}
	sealed := filepath.Join(f.dir, snapName(newGen))
	if err := os.Rename(tmp, sealed); err != nil {
		f.sticky = err
		return err
	}
	if err := syncDir(f.dir); err != nil {
		f.sticky = err
		return err
	}

	oldGen, hadSnap := f.gen, f.snapRecords > 0
	oldWal := f.wal
	f.wal = nil
	f.gen = newGen
	if err := f.createLog(filepath.Join(f.dir, walName(newGen))); err != nil {
		f.sticky = err
		return err
	}
	oldWal.Close()
	os.Remove(filepath.Join(f.dir, walName(oldGen)))
	if hadSnap {
		os.Remove(filepath.Join(f.dir, snapName(oldGen)))
	}
	st, err2 := os.Stat(sealed)
	if err2 != nil {
		f.sticky = err2
		return err2
	}
	f.snapRecords, f.snapBytes = written, st.Size()
	f.compactions++
	if m := f.met.Load(); m != nil {
		m.Compactions.Inc()
	}
	return nil
}

// compactThresholdMin is compactThreshold with a configurable floor.
func compactThresholdMin(minTail, liveRecords int) int {
	if t := 4 * liveRecords; t > minTail {
		return t
	}
	return minTail
}

// syncDir fsyncs a directory so renames and creates are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}
