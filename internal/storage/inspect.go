package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"luckystore/internal/wire"
)

// SegmentInfo describes one WAL or snapshot file, as luckyctl's wal
// subcommand reports it for post-mortem debugging.
type SegmentInfo struct {
	Path    string
	Bytes   int64 // file size
	Records int   // valid records
	// Valid is the byte offset of the first invalid byte; equal to
	// Bytes for a clean file. Everything past it is the torn tail a
	// recovery would truncate.
	Valid    int64
	BadMagic bool
	// Reason describes why scanning stopped early ("" when clean).
	Reason string
}

// Truncated reports whether the file carries bytes past its last
// valid frame.
func (s SegmentInfo) Truncated() bool { return s.Valid < s.Bytes }

// InspectFile scans one segment file without modifying it.
func InspectFile(path string) (SegmentInfo, error) {
	info := SegmentInfo{Path: path}
	b, err := os.ReadFile(path)
	if err != nil {
		return info, err
	}
	info.Bytes = int64(len(b))
	body, ok := stripMagic(b)
	if !ok {
		info.BadMagic = true
		info.Reason = "bad or missing file magic"
		return info, nil
	}
	n, validLen, scanErr := scanFrames(body)
	info.Records = n
	info.Valid = int64(len(fileMagic) + validLen)
	if scanErr != nil {
		info.Reason = scanErr.Error()
	}
	return info, nil
}

// InspectDir scans every snapshot and log segment in a backend
// directory, in generation order.
func InspectDir(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		var g int
		name := e.Name()
		if matchGen(name, "snap-%d.seg", &g) || matchGen(name, "wal-%d.log", &g) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	infos := make([]SegmentInfo, 0, len(names))
	for _, name := range names {
		info, err := InspectFile(filepath.Join(dir, name))
		if err != nil {
			return infos, err
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// DumpRecords decodes each valid record of a segment file in order,
// calling fn with its index, byte offset, and decoded envelope.
func DumpRecords(path string, fn func(i int, off int64, env wire.Envelope) error) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	body, ok := stripMagic(b)
	if !ok {
		return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	off, i := 0, 0
	for off < len(body) {
		p, adv, ferr := checkFrame(body[off:])
		if ferr != nil {
			return nil // torn tail: everything decodable was dumped
		}
		env, derr := DecodeRecord(p)
		if derr != nil {
			return fmt.Errorf("record %d at offset %d: %w", i, len(fileMagic)+off, derr)
		}
		if err := fn(i, int64(len(fileMagic)+off), env); err != nil {
			return err
		}
		i++
		off += adv
	}
	return nil
}
