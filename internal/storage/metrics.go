package storage

import "luckystore/internal/metrics"

// FileMetrics instruments the file backend's group commit: how long
// each fsync takes, how many records (and bytes) each flushed batch
// carried — the group-commit amortization E15 measures — and how many
// compactions have sealed the log. Observations are atomic and
// allocation-free; a nil *FileMetrics disables everything.
type FileMetrics struct {
	FsyncLatency *metrics.Histogram // wall time of one fsync (ns)
	FlushRecords *metrics.Histogram // records per flushed batch (count-valued)
	FlushBytes   *metrics.Counter   // framed bytes flushed, ever
	Compactions  *metrics.Counter   // snapshots sealed
}

// NewFileMetrics wires the file-backend instruments into reg.
func NewFileMetrics(reg *metrics.Registry) *FileMetrics {
	return &FileMetrics{
		FsyncLatency: reg.Histogram("lucky_wal_fsync_latency_ns",
			"Wall time of one WAL fsync, nanoseconds."),
		FlushRecords: reg.Histogram("lucky_wal_flush_records",
			"Records per flushed WAL batch (group-commit width, count-valued buckets)."),
		FlushBytes: reg.Counter("lucky_wal_flush_bytes_total",
			"Framed bytes flushed to the WAL."),
		Compactions: reg.Counter("lucky_wal_compactions_total",
			"Log compactions: snapshot segments sealed."),
	}
}

// DurableMetrics instruments the Durable stepper: how many mutating
// steps were logged and the per-step append+commit latency — what one
// acknowledged write pays for durability, fsync wait included.
type DurableMetrics struct {
	Appends       *metrics.Counter
	AppendLatency *metrics.Histogram
}

// NewDurableMetrics wires the durable-stepper instruments into reg.
func NewDurableMetrics(reg *metrics.Registry) *DurableMetrics {
	return &DurableMetrics{
		Appends: reg.Counter("lucky_wal_appends_total",
			"Mutating steps logged to the WAL."),
		AppendLatency: reg.Histogram("lucky_wal_append_latency_ns",
			"Per-step WAL append+commit latency, nanoseconds (fsync wait included)."),
	}
}
