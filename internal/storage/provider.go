package storage

import (
	"path/filepath"
	"sync"
)

// MemProvider hands out in-memory backends keyed by name. The same
// name always returns the same backend, so an in-process "restart"
// that reopens its storage finds its records — memory standing in for
// a disk that survived the crash.
type MemProvider struct {
	mu       sync.Mutex
	factory  func() Automaton
	backends map[string]*Memory
}

// NewMemProvider creates a memory provider; factory configures
// compaction for each opened backend (nil disables it).
func NewMemProvider(factory func() Automaton) *MemProvider {
	return &MemProvider{factory: factory, backends: make(map[string]*Memory)}
}

// Open implements Provider.
func (p *MemProvider) Open(name string) (Backend, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.backends[name]; ok {
		return b, nil
	}
	b := NewMemory(p.factory)
	p.backends[name] = b
	return b, nil
}

// DirProvider opens file backends in per-name subdirectories of a
// root directory: the deployment's data directory, one WAL per server
// process.
type DirProvider struct {
	root    string
	factory func() Automaton
	opts    []FileOption
}

// NewDirProvider creates a file provider rooted at root.
func NewDirProvider(root string, factory func() Automaton, opts ...FileOption) *DirProvider {
	return &DirProvider{root: root, factory: factory, opts: opts}
}

// Open implements Provider. Each call reopens the directory and runs
// crash recovery (torn-tail truncation), like a restarted process.
func (p *DirProvider) Open(name string) (Backend, error) {
	return NewFile(filepath.Join(p.root, name), p.factory, p.opts...)
}

// FaultProvider wraps another provider so every opened backend is
// fault-injectable, retaining the wrappers by name for the chaos
// engine to arm on schedule.
type FaultProvider struct {
	mu     sync.Mutex
	inner  Provider
	faults map[string]*Fault
}

// NewFaultProvider wraps a provider with fault injection.
func NewFaultProvider(inner Provider) *FaultProvider {
	return &FaultProvider{inner: inner, faults: make(map[string]*Fault)}
}

// Open implements Provider.
func (p *FaultProvider) Open(name string) (Backend, error) {
	b, err := p.inner.Open(name)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f := NewFault(b)
	p.faults[name] = f
	return f, nil
}

// Fault returns the fault wrapper last opened under name, or nil.
func (p *FaultProvider) Fault(name string) *Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults[name]
}
