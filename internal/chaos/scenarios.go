package chaos

// The named scenario library. Every schedule is a pure function of
// SchedParams — seeded RNG, offsets as fractions of the run duration —
// so `luckychaos -scenario X -seed S` replays the exact adversary.
//
// Budget discipline: scenarios are written for the default t=2, b=1
// shape but scale by p.T/p.B, and the engine's guard enforces the
// model regardless, so a scenario can never accidentally exceed the
// failure assumptions (it would just see events skipped).

import (
	"fmt"
	"math/rand"
	"time"

	"luckystore/internal/simnet"
	"luckystore/internal/storage"
	"luckystore/internal/types"
)

// SchedParams is the deployment shape a schedule is generated for.
type SchedParams struct {
	Servers int
	T, B    int
	Readers int
	// Writers is how many writer identities the deployment runs (1 for
	// the classic SWMR shape); schedules that cut or flap writer links
	// use it to target every identity.
	Writers int
	Seed    int64
	// Duration is the fault window; offsets are fractions of it.
	Duration time.Duration
	// Cold reports that restarts on this deployment always lose state
	// (scheduled restarts will be budgeted against b by the engine).
	Cold bool
}

// Scenario is a named, parameterized chaos workload: a traffic shape
// plus a fault schedule.
type Scenario struct {
	Name        string
	Description string
	// NumKeys is how many registers multi-key deployments exercise
	// (single-register deployments collapse to one).
	NumKeys int
	// Writers is how many writer identities contend on every key.
	// Zero or one keeps SWMR traffic; higher values engage the
	// deployment's contending writers (deployments without the
	// capability fall back to one writer benignly).
	Writers int
	// HotFrac concentrates reads on one hot key — the contention knob.
	HotFrac float64
	// WritePace/ReadPace override the workload's default op pacing
	// (zero keeps the defaults).
	WritePace time.Duration
	ReadPace  time.Duration
	// Schedule generates the fault timeline.
	Schedule func(p SchedParams) []Event
}

// keys materializes the scenario's key set.
func (s Scenario) keys() []string {
	n := s.NumKeys
	if n < 1 {
		n = 1
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	return keys
}

// allIDs lists every process of the deployment shape, all writer
// identities included: a partition that left a contending writer
// outside every group would leave it fully connected.
func allIDs(p SchedParams) []types.ProcID {
	ids := types.ServerIDs(p.Servers)
	ids = append(ids, types.WriterIDs(max(p.Writers, 1))...)
	ids = append(ids, types.ReaderIDs(p.Readers)...)
	return ids
}

// isolate builds a partition cutting the given servers from everyone
// else.
func isolate(p SchedParams, servers ...int) [][]types.ProcID {
	cut := make(map[types.ProcID]bool, len(servers))
	minority := make([]types.ProcID, 0, len(servers))
	for _, s := range servers {
		id := types.ServerID(s)
		cut[id] = true
		minority = append(minority, id)
	}
	var rest []types.ProcID
	for _, id := range allIDs(p) {
		if !cut[id] {
			rest = append(rest, id)
		}
	}
	return [][]types.ProcID{minority, rest}
}

// frac returns the offset at fraction f of the duration.
func frac(p SchedParams, f float64) time.Duration {
	return time.Duration(f * float64(p.Duration))
}

// Scenarios is the library of named schedules the smoke matrix and
// luckychaos run.
var Scenarios = []Scenario{
	{
		Name:        "rolling-partition",
		Description: "a one-server partition sweeps across the cluster, healing between cuts",
		NumKeys:     4,
		Schedule: func(p SchedParams) []Event {
			rng := rand.New(rand.NewSource(p.Seed))
			start := rng.Intn(p.Servers)
			const cuts = 5
			var evs []Event
			for k := 0; k < cuts; k++ {
				at := frac(p, (float64(k)+0.25)/cuts)
				evs = append(evs, Event{At: at, Action: Action{
					Kind: ActPartition, Groups: isolate(p, (start+k)%p.Servers),
				}})
			}
			evs = append(evs, Event{At: frac(p, 0.95), Action: Action{Kind: ActHeal}})
			return evs
		},
	},
	{
		Name:        "flapping-link",
		Description: "one client↔server link flaps held/released with delay jitter on the server",
		NumKeys:     2,
		Schedule: func(p SchedParams) []Event {
			rng := rand.New(rand.NewSource(p.Seed))
			srv := types.ServerID(rng.Intn(p.Servers))
			client := types.WriterID()
			if p.Readers > 0 && rng.Intn(2) == 0 {
				client = types.ReaderID(rng.Intn(p.Readers))
			}
			evs := []Event{{At: frac(p, 0.05), Action: Action{
				Kind: ActProcFaults, Proc: srv,
				Faults: simnet.LinkFaults{JitterMax: 2 * time.Millisecond},
			}}}
			const flaps = 8
			for k := 0; k < flaps; k++ {
				at := frac(p, 0.1+0.8*float64(k)/flaps)
				kind := ActHoldLink
				if k%2 == 1 {
					kind = ActReleaseLink
				}
				evs = append(evs,
					Event{At: at, Action: Action{Kind: kind, From: client, To: srv}},
					Event{At: at, Action: Action{Kind: kind, From: srv, To: client}},
				)
			}
			evs = append(evs,
				Event{At: frac(p, 0.92), Action: Action{Kind: ActReleaseLink, From: client, To: srv}},
				Event{At: frac(p, 0.92), Action: Action{Kind: ActReleaseLink, From: srv, To: client}},
				Event{At: frac(p, 0.95), Action: Action{Kind: ActClearFaults}},
			)
			return evs
		},
	},
	{
		Name:        "crash-restarts",
		Description: "t servers crash and restart in sequence (warm where the deployment keeps state)",
		NumKeys:     4,
		Schedule: func(p SchedParams) []Event {
			rng := rand.New(rand.NewSource(p.Seed))
			victims := rng.Perm(p.Servers)[:max(p.T, 1)]
			var evs []Event
			n := float64(len(victims))
			for k, v := range victims {
				down := frac(p, (float64(k)+0.2)/n)
				up := frac(p, (float64(k)+0.7)/n)
				evs = append(evs,
					Event{At: down, Action: Action{Kind: ActCrash, Server: v}},
					Event{At: up, Action: Action{Kind: ActRestart, Server: v}},
				)
			}
			return evs
		},
	},
	{
		Name:        "liars-and-partition",
		Description: "b servers turn Byzantine mid-run while a one-server partition rolls over the honest ones",
		NumKeys:     3,
		Schedule: func(p SchedParams) []Event {
			rng := rand.New(rand.NewSource(p.Seed))
			behaviors := []string{"forge", "stale", "liar", "equivocate"}
			perm := rng.Perm(p.Servers)
			liars := perm[:max(p.B, 1)]
			honest := perm[max(p.B, 1):]
			var evs []Event
			for k, s := range liars {
				evs = append(evs, Event{At: frac(p, 0.15+0.05*float64(k)), Action: Action{
					Kind: ActSwap, Server: s, Behavior: behaviors[rng.Intn(len(behaviors))],
				}})
			}
			for k := 0; k < 2 && len(honest) > 0; k++ {
				evs = append(evs,
					Event{At: frac(p, 0.35+0.3*float64(k)), Action: Action{
						Kind: ActPartition, Groups: isolate(p, honest[rng.Intn(len(honest))]),
					}},
					Event{At: frac(p, 0.55+0.3*float64(k)), Action: Action{Kind: ActHeal}},
				)
			}
			return evs
		},
	},
	{
		Name:        "reader-storm-drop",
		Description: "hot-key reader contention while one server's links drop, duplicate and jitter",
		NumKeys:     2,
		HotFrac:     0.85,
		ReadPace:    300 * time.Microsecond,
		Schedule: func(p SchedParams) []Event {
			rng := rand.New(rand.NewSource(p.Seed))
			lossy := types.ServerID(rng.Intn(p.Servers))
			return []Event{
				{At: frac(p, 0.1), Action: Action{
					Kind: ActProcFaults, Proc: lossy,
					Faults: simnet.LinkFaults{Drop: 0.25, Duplicate: 0.15, JitterMax: time.Millisecond},
				}},
				{At: frac(p, 0.9), Action: Action{Kind: ActClearFaults}},
			}
		},
	},
	{
		Name:        "split-brain-heal",
		Description: "the cluster splits into a majority side (with the writer) and a minority side, then heals — twice",
		NumKeys:     3,
		Schedule: func(p SchedParams) []Event {
			rng := rand.New(rand.NewSource(p.Seed))
			// Minority: t servers plus (when there are ≥2 readers) one
			// reader stranded with them.
			perm := rng.Perm(p.Servers)
			minoritySrvs := perm[:max(p.T, 1)]
			split := func() [][]types.ProcID {
				cut := make(map[types.ProcID]bool)
				var minority []types.ProcID
				for _, s := range minoritySrvs {
					cut[types.ServerID(s)] = true
					minority = append(minority, types.ServerID(s))
				}
				if p.Readers >= 2 {
					r := types.ReaderID(p.Readers - 1)
					cut[r] = true
					minority = append(minority, r)
				}
				var majority []types.ProcID
				for _, id := range allIDs(p) {
					if !cut[id] {
						majority = append(majority, id)
					}
				}
				return [][]types.ProcID{majority, minority}
			}
			return []Event{
				{At: frac(p, 0.15), Action: Action{Kind: ActPartition, Groups: split()}},
				{At: frac(p, 0.45), Action: Action{Kind: ActHeal}},
				{At: frac(p, 0.65), Action: Action{Kind: ActPartition, Groups: split()}},
				{At: frac(p, 0.85), Action: Action{Kind: ActHeal}},
			}
		},
	},
	{
		Name:        "contending-writers",
		Description: "two writer identities race on a hot key while a partition rolls over a server and another crash-restarts",
		NumKeys:     2,
		HotFrac:     0.7,
		Writers:     2,
		Schedule: func(p SchedParams) []Event {
			rng := rand.New(rand.NewSource(p.Seed))
			perm := rng.Perm(p.Servers)
			cutSrv, victim := perm[0], perm[1%len(perm)]
			// The second writer identity loses one server mid-run: its
			// stamp queries and PW rounds must survive on the remaining
			// quorum while the primary writer keeps full connectivity.
			w1 := types.WriterID()
			if p.Writers > 1 {
				w1 = types.WriterIDN(1)
			}
			lossy := types.ServerID(perm[2%len(perm)])
			return []Event{
				{At: frac(p, 0.10), Action: Action{Kind: ActPartition, Groups: isolate(p, cutSrv)}},
				{At: frac(p, 0.30), Action: Action{Kind: ActHeal}},
				{At: frac(p, 0.35), Action: Action{Kind: ActHoldLink, From: w1, To: lossy}},
				{At: frac(p, 0.40), Action: Action{Kind: ActCrash, Server: victim}},
				{At: frac(p, 0.60), Action: Action{Kind: ActReleaseLink, From: w1, To: lossy}},
				{At: frac(p, 0.70), Action: Action{Kind: ActRestart, Server: victim}},
				{At: frac(p, 0.80), Action: Action{Kind: ActPartition, Groups: isolate(p, cutSrv)}},
				{At: frac(p, 0.92), Action: Action{Kind: ActHeal}},
			}
		},
	},
	{
		Name:        "contending-writers-fleet",
		Description: "two writer identities race on hot keys spread across a fleet while a cluster joins, a rack crash-restarts, and an original cluster retires",
		NumKeys:     6,
		HotFrac:     0.6,
		Writers:     2,
		Schedule: func(p SchedParams) []Event {
			rng := rand.New(rand.NewSource(p.Seed))
			victim := rng.Intn(p.Servers)
			// Fleet events land between the crash window's edges so
			// migrations overlap contending traffic; non-fleet deployments
			// skip the join/remove benignly and keep the crash-restart.
			return []Event{
				{At: frac(p, 0.15), Action: Action{Kind: ActJoinCluster}},
				{At: frac(p, 0.30), Action: Action{Kind: ActCrash, Server: victim}},
				{At: frac(p, 0.55), Action: Action{Kind: ActRestart, Server: victim}},
				{At: frac(p, 0.70), Action: Action{Kind: ActRemoveCluster, Server: 0}},
			}
		},
	},
	{
		Name:        "kill-mid-fsync",
		Description: "disks die mid-write (torn frame) and mid-commit (failed fsync); each victim restarts and recovers from its WAL",
		NumKeys:     4,
		Schedule: func(p SchedParams) []Event {
			rng := rand.New(rand.NewSource(p.Seed))
			perm := rng.Perm(p.Servers)
			a, b := perm[0], perm[1%len(perm)]
			// One victim down at a time — well inside t. Deployments
			// without injectable storage skip the disk events benignly
			// and the restarts become warm restarts of running servers.
			return []Event{
				{At: frac(p, 0.15), Action: Action{Kind: ActDiskFault, Server: a, Disk: storage.FaultTornWrite}},
				{At: frac(p, 0.35), Action: Action{Kind: ActRestart, Server: a}},
				{At: frac(p, 0.45), Action: Action{Kind: ActDiskFault, Server: b, Disk: storage.FaultFsyncError}},
				{At: frac(p, 0.65), Action: Action{Kind: ActRestart, Server: b}},
				{At: frac(p, 0.72), Action: Action{Kind: ActDiskFault, Server: a, Disk: storage.FaultTornWrite}},
				{At: frac(p, 0.88), Action: Action{Kind: ActRestart, Server: a}},
			}
		},
	},
	{
		Name:        "disk-faults-under-traffic",
		Description: "staggered disk deaths on two servers while a third crash-restarts, all under hot-key traffic",
		NumKeys:     3,
		HotFrac:     0.6,
		Schedule: func(p SchedParams) []Event {
			rng := rand.New(rand.NewSource(p.Seed))
			perm := rng.Perm(p.Servers)
			a, b, c := perm[0], perm[1%len(perm)], perm[2%len(perm)]
			// At most two servers faulty at once (a's dead disk plus c's
			// crash), matching the default t=2 budget; smaller shapes see
			// the guard skip the overlap deterministically.
			return []Event{
				{At: frac(p, 0.10), Action: Action{Kind: ActDiskFault, Server: a, Disk: storage.FaultTornWrite}},
				{At: frac(p, 0.20), Action: Action{Kind: ActCrash, Server: c}},
				{At: frac(p, 0.40), Action: Action{Kind: ActRestart, Server: a}},
				{At: frac(p, 0.50), Action: Action{Kind: ActRestart, Server: c}},
				{At: frac(p, 0.60), Action: Action{Kind: ActDiskFault, Server: b, Disk: storage.FaultFsyncError}},
				{At: frac(p, 0.85), Action: Action{Kind: ActRestart, Server: b}},
			}
		},
	},
	{
		Name:        "recover-under-load",
		Description: "waves of up-to-t simultaneous crashes recover by WAL replay while writes and hot reads never pause",
		NumKeys:     4,
		HotFrac:     0.5,
		WritePace:   400 * time.Microsecond,
		Schedule: func(p SchedParams) []Event {
			rng := rand.New(rand.NewSource(p.Seed))
			const waves = 3
			var evs []Event
			for k := 0; k < waves; k++ {
				victims := rng.Perm(p.Servers)[:max(p.T, 1)]
				base := float64(k) / waves
				for j, v := range victims {
					down := frac(p, base+(0.10+0.05*float64(j))/waves)
					up := frac(p, base+(0.55+0.08*float64(j))/waves)
					evs = append(evs,
						Event{At: down, Action: Action{Kind: ActCrash, Server: v}},
						Event{At: up, Action: Action{Kind: ActRestart, Server: v}},
					)
				}
			}
			return evs
		},
	},
	{
		Name:        "rebalance-under-traffic",
		Description: "a cluster joins the fleet mid-run and an original cluster is retired, with continuous traffic across both handoffs",
		NumKeys:     6,
		Schedule: func(p SchedParams) []Event {
			// Deterministic by construction (no RNG draw needed): grow,
			// then shrink. Non-fleet deployments skip both benignly, and
			// the checker verifies every key's history spans the
			// migrations without a timestamp anomaly.
			return []Event{
				{At: frac(p, 0.25), Action: Action{Kind: ActJoinCluster}},
				{At: frac(p, 0.60), Action: Action{Kind: ActRemoveCluster, Server: 0}},
			}
		},
	},
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, error) {
	for _, s := range Scenarios {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("chaos: unknown scenario %q", name)
}

// Names lists the scenario names in library order.
func Names() []string {
	out := make([]string, len(Scenarios))
	for i, s := range Scenarios {
		out[i] = s.Name
	}
	return out
}
