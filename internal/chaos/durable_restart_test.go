package chaos

// PR 8 regression pin for the fleet deployments: a disk-backed server
// that rejoins via Restart must serve its pre-crash stamps. The test
// goes beyond the budgeted schedules — it kills EVERY server of every
// cluster and restarts them all, so nothing the reborn fleet serves
// can come from warm memory: it is storage recovery or nothing.

import (
	"fmt"
	"testing"

	"luckystore/internal/types"
)

func testFleetRebirthFromStorage(t *testing.T, kind string) {
	d, err := Open(kind, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Enough keys to span both clusters of the fleet.
	keys := make([]string, 10)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}
	for round := 1; round <= 2; round++ {
		for _, k := range keys {
			v := types.Value(fmt.Sprintf("v%d-%s", round, k))
			if _, _, err := d.Write(k, v); err != nil {
				t.Fatalf("write %s round %d: %v", k, round, err)
			}
		}
	}
	want := make(map[string]types.Tagged, len(keys))
	for _, k := range keys {
		got, _, err := d.Read(0, k)
		if err != nil {
			t.Fatalf("pre-crash read %s: %v", k, err)
		}
		want[k] = got
	}

	// Total fleet death, then rebirth. Direct adapter calls, not a
	// schedule: the budget guard rightly forbids this shape, but with no
	// traffic in flight it is exactly a datacenter power cycle.
	for i := 0; i < d.Servers(); i++ {
		if err := d.Crash(i); err != nil {
			t.Fatalf("crash %d: %v", i, err)
		}
	}
	for i := 0; i < d.Servers(); i++ {
		if err := d.Restart(i, false); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
	}

	for _, k := range keys {
		got, _, err := d.Read(0, k)
		if err != nil {
			t.Fatalf("post-rebirth read %s: %v", k, err)
		}
		if got != want[k] {
			t.Errorf("post-rebirth %s = %+v, want pre-crash %+v", k, got, want[k])
		}
	}
	// The writer client never died, so its sequence numbers carry on
	// above the recovered stamps: the reborn fleet must accept them.
	if _, _, err := d.Write(keys[0], "post-rebirth"); err != nil {
		t.Fatalf("post-rebirth write: %v", err)
	}
	got, _, err := d.Read(0, keys[0])
	if err != nil || got.Val != "post-rebirth" {
		t.Fatalf("post-rebirth rw cycle = %+v, %v", got, err)
	}
}

func TestRouterFleetRebirthFromStorage(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet rebirth skipped in -short mode")
	}
	testFleetRebirthFromStorage(t, "router")
}

func TestTCPRouterFleetRebirthFromStorage(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet rebirth skipped in -short mode")
	}
	testFleetRebirthFromStorage(t, "tcprouter")
}
