package chaos

// Deployment adapters: one fault surface over every way this repo can
// run the protocol. Each adapter embeds the matching workload driver —
// so the engine generates identical traffic everywhere — and exposes
// crash / restart / Byzantine-swap hooks plus (when the deployment is
// simulated) the simnet for network faults.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/core"
	"luckystore/internal/fault"
	"luckystore/internal/kv"
	"luckystore/internal/node"
	"luckystore/internal/regular"
	"luckystore/internal/ring"
	"luckystore/internal/router"
	"luckystore/internal/simnet"
	"luckystore/internal/storage"
	"luckystore/internal/tcpnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/workload"
)

// Deployment is a running system the chaos engine can hurt. All fault
// methods are called from the engine's single schedule goroutine.
type Deployment interface {
	workload.Driver
	// Kind names the deployment flavor ("core", "kv", "tcpkv",
	// "regular").
	Kind() string
	// Servers reports the server count S.
	Servers() int
	// Budget reports the deployment's failure model (t, b).
	Budget() (t, b int)
	// Net returns the simulated network for partition/link faults, or
	// nil when the deployment runs over real sockets — the engine
	// skips network actions there (a real network is not scriptable).
	Net() *simnet.Network
	// Crash stops server i.
	Crash(i int) error
	// Restart brings server i back. fresh discards its state; some
	// deployments (ColdRestarts) can only restart fresh.
	Restart(i int, fresh bool) error
	// ColdRestarts reports whether every restart loses state (a real
	// process restart), which the engine budgets against b: an
	// amnesiac server answers correctly from initial state, which the
	// model can only classify as Byzantine.
	ColdRestarts() bool
	// Swap replaces server i with the named Byzantine behavior.
	Swap(i int, behavior string, seed int64) error
	// Check verifies a recorded history against the deployment's
	// consistency contract (atomicity, or regularity for the regular
	// variant), per key.
	Check(ops []checker.Op) []checker.Violation
	// Close tears the deployment down.
	Close()
}

// DiskFaulter is the optional Deployment capability behind
// ActDiskFault: deployments whose servers write through injectable
// storage backends arm the named fault (storage.FaultTornWrite or
// storage.FaultFsyncError) on server i's disk. The fault fires on the
// server's next mutating operation, muting it; the deployment's
// Restart must heal (or reopen) the disk before recovering from it.
type DiskFaulter interface {
	DiskFault(i int, kind string) error
}

// serverName is the per-server backend name used with storage
// providers across every deployment ("s0", "s1", …).
func serverName(i int) string { return string(types.ServerID(i)) }

// simFaultProvider builds the injectable in-memory storage the simnet
// deployments give their servers: memory backends (the "disk" survives
// in-process restarts) behind fault wrappers the schedule can arm.
func simFaultProvider(factory func() storage.Automaton) *storage.FaultProvider {
	return storage.NewFaultProvider(storage.NewMemProvider(factory))
}

// healDisk clears any armed or fired fault on server i's wrapper
// before a restart recovers from the backend — the restarted process
// got a working disk back; what survives on it is recovery's problem.
func healDisk(fp *storage.FaultProvider, i int) {
	if f := fp.Fault(serverName(i)); f != nil {
		f.Heal()
	}
}

// armDisk arms kind on server i's fault wrapper.
func armDisk(fp *storage.FaultProvider, i int, kind string) error {
	f := fp.Fault(serverName(i))
	if f == nil {
		return fmt.Errorf("chaos: server %d has no storage backend", i)
	}
	return f.Arm(kind)
}

// Rebalancer is the optional Deployment capability behind the fleet
// actions (ActJoinCluster, ActRemoveCluster): scale-out router
// deployments implement it; single-cluster deployments skip fleet
// events benignly.
type Rebalancer interface {
	// JoinCluster adds one fresh cluster to the fleet.
	JoinCluster() error
	// RemoveCluster retires the i-th active cluster (sorted order,
	// wrapped modulo the active count by the caller's schedule).
	RemoveCluster(i int) error
	// NumClusters reports the active cluster count.
	NumClusters() int
}

// DefaultConfig is the resilience configuration the stock deployments
// use: t=2, b=1 (S = 6 servers), fw=0 — room for one Byzantine server
// or one amnesiac restart plus one crash, with fr = 1. The short round
// timeout keeps slow paths quick under scripted asynchrony.
func DefaultConfig(readers int) core.Config {
	return core.Config{
		T: 2, B: 1, Fw: 0, NumReaders: readers,
		RoundTimeout: 8 * time.Millisecond,
		OpTimeout:    20 * time.Second,
	}
}

// behaviorFor builds a named Byzantine behavior. keyed lifts it to the
// multi-register wire protocol.
func behaviorFor(name string, seed int64, keyed bool) (node.Automaton, error) {
	var b fault.Behavior
	switch name {
	case "mute":
		b = fault.Mute()
	case "forge":
		b = fault.ForgeHighTS(types.TS(1_000_000+seed%1000), types.Value(fmt.Sprintf("forged-%d", seed)))
	case "stale":
		b = fault.StaleBottom()
	case "liar":
		b = fault.RandomLiar(seed)
	case "equivocate":
		b = fault.Equivocator(map[types.ProcID]types.Tagged{
			types.ReaderID(0): {TS: 900_000, Val: "eq0"},
			types.ReaderID(1): {TS: 900_001, Val: "eq1"},
		}, types.Bottom())
	default:
		return nil, fmt.Errorf("chaos: unknown behavior %q", name)
	}
	if keyed {
		b = fault.Keyed(b)
	}
	return b, nil
}

// ---- core single-register cluster (simnet) ----

type coreDep struct {
	workload.ClusterDriver
	c  *core.Cluster
	fp *storage.FaultProvider
}

// NewCore builds a core single-register simnet deployment. Servers
// write through injectable in-memory backends, so warm restarts are
// genuine WAL replays and schedules can arm disk faults.
func NewCore(cfg core.Config) (Deployment, error) {
	fp := simFaultProvider(func() storage.Automaton { return core.NewServer() })
	c, err := core.NewCluster(cfg, core.WithStorage(fp))
	if err != nil {
		return nil, err
	}
	return &coreDep{ClusterDriver: workload.ClusterDriver{C: c}, c: c, fp: fp}, nil
}

func (d *coreDep) Kind() string         { return "core" }
func (d *coreDep) Servers() int         { return d.c.Config().S() }
func (d *coreDep) Budget() (int, int)   { return d.c.Config().T, d.c.Config().B }
func (d *coreDep) Net() *simnet.Network { return d.c.Sim() }
func (d *coreDep) Crash(i int) error    { d.c.CrashServer(i); return nil }
func (d *coreDep) ColdRestarts() bool   { return false }
func (d *coreDep) Close()               { d.c.Close() }

func (d *coreDep) Restart(i int, fresh bool) error {
	healDisk(d.fp, i)
	if fresh {
		return d.c.RestartServerFresh(i)
	}
	return d.c.RestartServer(i)
}

func (d *coreDep) DiskFault(i int, kind string) error { return armDisk(d.fp, i, kind) }

func (d *coreDep) Swap(i int, behavior string, seed int64) error {
	a, err := behaviorFor(behavior, seed, false)
	if err != nil {
		return err
	}
	return d.c.SwapServerAutomaton(i, a)
}

func (d *coreDep) Check(ops []checker.Op) []checker.Violation {
	return checker.CheckAtomicityPerKey(ops)
}

// ---- sharded KV engine (simnet) ----

type kvDep struct {
	workload.KVDriver
	st         *kv.Store
	contenders []*kv.Store
	fp         *storage.FaultProvider
}

// NewKV builds an in-memory sharded KV deployment. writers > 1 opens
// that many writer identities: the primary store plus contender stores
// sharing its servers, each binding stamps under its own ⟨seq, writer⟩
// component — the multi-writer fault surface.
func NewKV(cfg core.Config, writers int, opts ...kv.Option) (Deployment, error) {
	if writers > 1 {
		opts = append(opts, kv.WithContenders(writers-1))
	}
	fp := simFaultProvider(kv.NewStorageAutomaton)
	opts = append(opts, kv.WithStorage(fp))
	st, err := kv.Open(cfg, opts...)
	if err != nil {
		return nil, err
	}
	d := &kvDep{st: st, fp: fp}
	for k := 1; k < writers; k++ {
		ct, err := st.OpenContender(k)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.contenders = append(d.contenders, ct)
	}
	d.KVDriver = workload.KVDriver{S: st, Readers: cfg.NumReaders, Contenders: d.contenders}
	return d, nil
}

func (d *kvDep) Kind() string         { return "kv" }
func (d *kvDep) Servers() int         { return d.st.Config().S() }
func (d *kvDep) Budget() (int, int)   { return d.st.Config().T, d.st.Config().B }
func (d *kvDep) Net() *simnet.Network { return d.st.Sim() }
func (d *kvDep) Crash(i int) error    { d.st.CrashServer(i); return nil }
func (d *kvDep) ColdRestarts() bool   { return false }

func (d *kvDep) Close() {
	for _, ct := range d.contenders {
		ct.Close()
	}
	d.st.Close()
}

func (d *kvDep) Restart(i int, fresh bool) error {
	healDisk(d.fp, i)
	if fresh {
		return d.st.RestartServerFresh(i)
	}
	return d.st.RestartServer(i)
}

func (d *kvDep) DiskFault(i int, kind string) error { return armDisk(d.fp, i, kind) }

func (d *kvDep) Swap(i int, behavior string, seed int64) error {
	a, err := behaviorFor(behavior, seed, true)
	if err != nil {
		return err
	}
	return d.st.SwapServerAutomaton(i, a)
}

func (d *kvDep) Check(ops []checker.Op) []checker.Violation {
	return checker.CheckAtomicityPerKey(ops)
}

// ---- KV over loopback TCP ----

type tcpkvDep struct {
	workload.KVDriver
	cfg        core.Config
	shards     int
	dir        string // temp data root, one subdirectory per server
	prov       *storage.FaultProvider
	srvs       []*tcpnet.Server
	backs      []storage.Backend
	addrs      []string
	st         *kv.Store
	contenders []*kv.Store
}

// NewTCPKV starts S ListenTCPKV-style servers on loopback and a KV
// client store dialed to them — the real-deployment shape, where
// crashes and restarts are actual listener teardowns and rebinds.
// Every server writes through a real file WAL in a per-run temp
// directory, so a restart reopens the directory (running the genuine
// fsck/torn-tail path) and recovers the pre-crash state. writers > 1
// dials additional client stores under contending writer identities
// (and disjoint reader identities), all against the same listeners.
func NewTCPKV(cfg core.Config, shards, writers int) (Deployment, error) {
	if writers > 1 && cfg.Writers < writers {
		cfg.Writers = writers
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "luckychaos-tcpkv-")
	if err != nil {
		return nil, fmt.Errorf("chaos tcpkv: data dir: %w", err)
	}
	d := &tcpkvDep{cfg: cfg, shards: shards, dir: dir,
		prov:  storage.NewFaultProvider(storage.NewDirProvider(dir, kv.NewStorageAutomaton)),
		backs: make([]storage.Backend, cfg.S()),
	}
	fail := func(err error) (Deployment, error) {
		d.Close()
		return nil, err
	}
	addrMap := make(map[types.ProcID]string, cfg.S())
	for i := 0; i < cfg.S(); i++ {
		srv, back, err := listenDurableKV(d.prov, i, "127.0.0.1:0", shards)
		if err != nil {
			return fail(err)
		}
		d.srvs = append(d.srvs, srv)
		d.backs[i] = back
		d.addrs = append(d.addrs, srv.Addr())
		addrMap[types.ServerID(i)] = srv.Addr()
	}
	st, err := dialStore(cfg, addrMap, 0)
	if err != nil {
		return fail(err)
	}
	d.st = st
	for k := 1; k < writers; k++ {
		ct, err := dialStore(cfg, addrMap, k)
		if err != nil {
			return fail(err)
		}
		d.contenders = append(d.contenders, ct)
	}
	d.KVDriver = workload.KVDriver{S: st, Readers: cfg.NumReaders, Contenders: d.contenders}
	return d, nil
}

// dialStore dials one client store as writer identity k: writer
// endpoint w (k=0) or wK, reader endpoints offset by k·NumReaders —
// contending clients must not share reader ids (servers key the
// freezing machinery by reader process id).
func dialStore(cfg core.Config, addrMap map[types.ProcID]string, k int) (*kv.Store, error) {
	wid := types.WriterIDN(k)
	wep, err := tcpnet.Dial(wid, addrMap)
	if err != nil {
		return nil, err
	}
	base := k * cfg.NumReaders
	readerEPs := make([]transport.Endpoint, cfg.NumReaders)
	for i := range readerEPs {
		rep, err := tcpnet.Dial(types.ReaderID(base+i), addrMap)
		if err != nil {
			_ = wep.Close()
			for j := 0; j < i; j++ {
				_ = readerEPs[j].Close()
			}
			return nil, err
		}
		readerEPs[i] = rep
	}
	return kv.OpenWithEndpoints(cfg, wep, readerEPs,
		kv.WithWriterID(wid), kv.WithReaderBase(base))
}

// listenKV starts one sharded KV server over TCP with in-memory state
// only (Byzantine swaps and non-durable callers).
func listenKV(i int, addr string, shards int) (*tcpnet.Server, error) {
	srv := kv.NewShardedServerAutomaton(shards)
	return tcpnet.ListenSharded(types.ServerID(i), addr, srv.Shards(), srv.Route())
}

// listenDurableKV starts one sharded KV server over TCP whose shards
// write through a backend opened from prov: recovery replays whatever
// the backend holds (reopening a data directory runs the real
// torn-tail fsck), then every shard shares the backend's group-commit.
func listenDurableKV(prov storage.Provider, i int, addr string, shards int) (*tcpnet.Server, storage.Backend, error) {
	back, err := prov.Open(serverName(i))
	if err != nil {
		return nil, nil, err
	}
	srv := kv.NewShardedServerAutomaton(shards)
	if _, err := storage.Recover(back, srv); err != nil {
		_ = back.Close()
		return nil, nil, err
	}
	sh := srv.Shards()
	for j, a := range sh {
		sh[j] = storage.NewDurable(a, back, types.ServerID(i))
	}
	s, err := tcpnet.ListenSharded(types.ServerID(i), addr, sh, srv.Route())
	if err != nil {
		_ = back.Close()
		return nil, nil, err
	}
	return s, back, nil
}

func (d *tcpkvDep) Kind() string         { return "tcpkv" }
func (d *tcpkvDep) Servers() int         { return d.cfg.S() }
func (d *tcpkvDep) Budget() (int, int)   { return d.cfg.T, d.cfg.B }
func (d *tcpkvDep) Net() *simnet.Network { return nil }

// ColdRestarts is false: the file WAL is the stable storage a real
// process restart recovers from, so warm restarts are honest here.
func (d *tcpkvDep) ColdRestarts() bool { return false }

func (d *tcpkvDep) Crash(i int) error {
	if i < 0 || i >= len(d.srvs) {
		return fmt.Errorf("chaos tcpkv: server %d out of range", i)
	}
	err := d.srvs[i].Close()
	d.closeBack(i) // the process died; its file handles went with it
	return err
}

// closeBack releases server i's backend handle, ignoring errors — a
// faulted disk fails its final flush by design, and the reopen path
// recovers whatever made it to the medium.
func (d *tcpkvDep) closeBack(i int) {
	if d.backs[i] != nil {
		_ = d.backs[i].Close()
		d.backs[i] = nil
	}
}

// rebind re-listens on a crashed server's old address, retrying
// briefly while the kernel releases the port.
func (d *tcpkvDep) rebind(i int, listen func(addr string) (*tcpnet.Server, error)) error {
	if i < 0 || i >= len(d.srvs) {
		return fmt.Errorf("chaos tcpkv: server %d out of range", i)
	}
	return rebindListener(d.srvs, d.addrs, i, listen)
}

// rebindListener closes slot i's listener (a restart implies the old
// process is gone) and re-listens on its old address, retrying briefly
// while the kernel releases the port.
func rebindListener(srvs []*tcpnet.Server, addrs []string, i int, listen func(addr string) (*tcpnet.Server, error)) error {
	_ = srvs[i].Close()
	var lastErr error
	for attempt := 0; attempt < 100; attempt++ {
		srv, err := listen(addrs[i])
		if err == nil {
			srvs[i] = srv
			return nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("chaos: rebind %s: %w", addrs[i], lastErr)
}

func (d *tcpkvDep) Restart(i int, fresh bool) error {
	if i < 0 || i >= len(d.srvs) {
		return fmt.Errorf("chaos tcpkv: server %d out of range", i)
	}
	d.closeBack(i)
	if fresh {
		// Amnesiac restart: the disk burned down with the process.
		if err := os.RemoveAll(filepath.Join(d.dir, serverName(i))); err != nil {
			return fmt.Errorf("chaos tcpkv: wipe server %d: %w", i, err)
		}
	}
	// Reopening the data directory IS the recovery path: fsck truncates
	// any torn tail a disk fault left, then the WAL replays into a
	// fresh keyed server.
	return d.rebind(i, func(addr string) (*tcpnet.Server, error) {
		srv, back, err := listenDurableKV(d.prov, i, addr, d.shards)
		if err != nil {
			return nil, err
		}
		d.backs[i] = back
		return srv, nil
	})
}

func (d *tcpkvDep) Swap(i int, behavior string, seed int64) error {
	a, err := behaviorFor(behavior, seed, true)
	if err != nil {
		return err
	}
	d.closeBack(i) // the Byzantine automaton runs without storage
	return d.rebind(i, func(addr string) (*tcpnet.Server, error) {
		return tcpnet.Listen(types.ServerID(i), addr, a)
	})
}

func (d *tcpkvDep) DiskFault(i int, kind string) error { return armDisk(d.prov, i, kind) }

func (d *tcpkvDep) Check(ops []checker.Op) []checker.Violation {
	return checker.CheckAtomicityPerKey(ops)
}

func (d *tcpkvDep) Close() {
	for _, ct := range d.contenders {
		ct.Close()
	}
	if d.st != nil {
		d.st.Close()
	}
	for _, s := range d.srvs {
		if s != nil {
			_ = s.Close()
		}
	}
	for i := range d.backs {
		d.closeBack(i)
	}
	if d.dir != "" {
		_ = os.RemoveAll(d.dir)
	}
}

// ---- Appendix D regular variant (simnet) ----

type regularDep struct {
	workload.RegularDriver
	c  *regular.Cluster
	fp *storage.FaultProvider
}

// NewRegular builds a regular-variant simnet deployment. Its histories
// are checked for regularity: the variant deliberately gives up the
// read hierarchy. Servers write through injectable in-memory backends
// like the core deployment.
func NewRegular(cfg regular.Config) (Deployment, error) {
	fp := simFaultProvider(func() storage.Automaton { return core.NewRegularServer() })
	c, err := regular.NewDurableCluster(cfg, fp)
	if err != nil {
		return nil, err
	}
	return &regularDep{RegularDriver: workload.RegularDriver{C: c}, c: c, fp: fp}, nil
}

func (d *regularDep) Kind() string         { return "regular" }
func (d *regularDep) Servers() int         { return d.c.Config().S() }
func (d *regularDep) Budget() (int, int)   { return d.c.Config().T, d.c.Config().B }
func (d *regularDep) Net() *simnet.Network { return d.c.Sim() }
func (d *regularDep) Crash(i int) error    { d.c.CrashServer(i); return nil }
func (d *regularDep) ColdRestarts() bool   { return false }
func (d *regularDep) Close()               { d.c.Close() }

func (d *regularDep) Restart(i int, fresh bool) error {
	healDisk(d.fp, i)
	if fresh {
		return d.c.RestartServerFresh(i)
	}
	return d.c.RestartServer(i)
}

func (d *regularDep) DiskFault(i int, kind string) error { return armDisk(d.fp, i, kind) }

func (d *regularDep) Swap(i int, behavior string, seed int64) error {
	a, err := behaviorFor(behavior, seed, false)
	if err != nil {
		return err
	}
	return d.c.SwapServerAutomaton(i, a)
}

func (d *regularDep) Check(ops []checker.Op) []checker.Violation {
	return checker.CheckRegularityPerKey(ops)
}

// ---- consistent-hash router fleet (simnet clusters) ----

// routerSeed fixes the ring seed for chaos fleets: placement must be a
// pure function of the schedule seed alone, and the schedule already
// owns all randomness, so the ring gets a constant.
const routerSeed = 1

type routerDep struct {
	workload.RouterDriver
	cfg     core.Config
	writers int
	r       *router.Router
	stores  map[ring.ClusterID]*kv.Store // active clusters only
	nextID  int
}

// openSimCluster opens one simnet KV cluster for a router fleet:
// in-memory storage backends, and — when writers > 1 — that many
// writer identities, with every contender store adopted into the
// primary so the cluster exposes the router's writer-identity map
// (kv.Store.PutAs). The primary owns the contenders; closing it closes
// them.
func openSimCluster(cfg core.Config, writers int) (*kv.Store, error) {
	opts := []kv.Option{kv.WithStorage(storage.NewMemProvider(kv.NewStorageAutomaton))}
	if writers > 1 {
		opts = append(opts, kv.WithContenders(writers-1))
	}
	st, err := kv.Open(cfg, opts...)
	if err != nil {
		return nil, err
	}
	for k := 1; k < writers; k++ {
		ct, err := st.OpenContender(k)
		if err != nil {
			st.Close()
			return nil, err
		}
		if err := st.AdoptContender(ct); err != nil {
			ct.Close()
			st.Close()
			return nil, err
		}
	}
	return st, nil
}

// NewRouter builds a scale-out fleet of n simnet KV clusters behind
// one router. Server faults hit server i of every active cluster —
// "rack i" in fleet terms — so the per-cluster failure budget (t, b)
// is stressed everywhere at once while staying within the model. Each
// cluster's servers write through in-memory storage backends, so a
// warm restart is a genuine WAL replay. writers > 1 opens that many
// writer identities on every cluster (including ones that join later),
// so fleet deployments carry contending multi-writer traffic.
func NewRouter(cfg core.Config, n, writers int) (Deployment, error) {
	if n < 1 {
		return nil, fmt.Errorf("chaos router: need at least one cluster")
	}
	d := &routerDep{cfg: cfg, writers: writers, stores: make(map[ring.ClusterID]*kv.Store, n)}
	backends := make(map[ring.ClusterID]router.Backend, n)
	for ; d.nextID < n; d.nextID++ {
		st, err := openSimCluster(cfg, writers)
		if err != nil {
			for _, prev := range d.stores {
				prev.Close()
			}
			return nil, err
		}
		id := ring.ID(d.nextID)
		d.stores[id] = st
		backends[id] = st
	}
	r, err := router.New(router.Options{Seed: routerSeed, Readers: cfg.NumReaders}, backends)
	if err != nil {
		for _, prev := range d.stores {
			prev.Close()
		}
		return nil, err
	}
	d.r = r
	d.RouterDriver = workload.RouterDriver{R: r}
	return d, nil
}

func (d *routerDep) Kind() string       { return "router" }
func (d *routerDep) Servers() int       { return d.cfg.S() }
func (d *routerDep) Budget() (int, int) { return d.cfg.T, d.cfg.B }

// Net returns nil: each cluster runs its own simnet, and the engine's
// network actions script one network. Fleet runs exercise placement,
// coalescing and rebalancing; single-cluster runs own the partition
// scenarios.
func (d *routerDep) Net() *simnet.Network { return nil }
func (d *routerDep) ColdRestarts() bool   { return false }

func (d *routerDep) Crash(i int) error {
	for _, st := range d.stores {
		st.CrashServer(i)
	}
	return nil
}

func (d *routerDep) Restart(i int, fresh bool) error {
	for id, st := range d.stores {
		var err error
		if fresh {
			err = st.RestartServerFresh(i)
		} else {
			err = st.RestartServer(i)
		}
		if err != nil {
			return fmt.Errorf("cluster %s: %w", id, err)
		}
	}
	return nil
}

func (d *routerDep) Swap(i int, behavior string, seed int64) error {
	for id, st := range d.stores {
		// One fresh automaton per cluster: behaviors are stateful.
		a, err := behaviorFor(behavior, seed, true)
		if err != nil {
			return err
		}
		if err := st.SwapServerAutomaton(i, a); err != nil {
			return fmt.Errorf("cluster %s: %w", id, err)
		}
	}
	return nil
}

func (d *routerDep) JoinCluster() error {
	st, err := openSimCluster(d.cfg, d.writers)
	if err != nil {
		return err
	}
	id := ring.ID(d.nextID)
	if err := d.r.AddCluster(id, st); err != nil {
		st.Close()
		return err
	}
	d.nextID++
	d.stores[id] = st
	return nil
}

func (d *routerDep) RemoveCluster(i int) error {
	active := d.r.Clusters()
	if len(active) == 0 {
		return fmt.Errorf("chaos router: no active clusters")
	}
	id := active[i%len(active)]
	if err := d.r.RemoveCluster(id); err != nil {
		return err
	}
	// The store stays open (and router-owned) for lazy handoffs; it is
	// just no longer a fault target.
	delete(d.stores, id)
	return nil
}

func (d *routerDep) NumClusters() int { return len(d.r.Clusters()) }

func (d *routerDep) Check(ops []checker.Op) []checker.Violation {
	return checker.CheckAtomicityPerKey(ops)
}

func (d *routerDep) Close() { _ = d.r.Close() }

// ---- consistent-hash router fleet (loopback-TCP clusters) ----

// tcpCluster is one TCP-KV cluster of a router fleet: its listeners,
// their file-backed storage, and the client store dialed to them.
type tcpCluster struct {
	prov  *storage.FaultProvider
	srvs  []*tcpnet.Server
	backs []storage.Backend
	addrs []string
	st    *kv.Store
}

func (c *tcpCluster) closeServers() {
	for _, s := range c.srvs {
		if s != nil {
			_ = s.Close()
		}
	}
	for i := range c.backs {
		c.closeBack(i)
	}
}

func (c *tcpCluster) closeBack(i int) {
	if c.backs[i] != nil {
		_ = c.backs[i].Close()
		c.backs[i] = nil
	}
}

// startTCPCluster starts S sharded KV listeners with file WALs under
// dir and dials a store. writers > 1 dials that many client stores
// under contending writer identities (disjoint reader identities, same
// listeners) and adopts each into the primary, so the cluster exposes
// the writer-identity map fleet routers need (kv.Store.PutAs).
func startTCPCluster(cfg core.Config, shards, writers int, dir string) (*tcpCluster, error) {
	c := &tcpCluster{
		prov:  storage.NewFaultProvider(storage.NewDirProvider(dir, kv.NewStorageAutomaton)),
		backs: make([]storage.Backend, cfg.S()),
	}
	addrMap := make(map[types.ProcID]string, cfg.S())
	for i := 0; i < cfg.S(); i++ {
		srv, back, err := listenDurableKV(c.prov, i, "127.0.0.1:0", shards)
		if err != nil {
			c.closeServers()
			return nil, err
		}
		c.srvs = append(c.srvs, srv)
		c.backs[i] = back
		c.addrs = append(c.addrs, srv.Addr())
		addrMap[types.ServerID(i)] = srv.Addr()
	}
	wep, err := tcpnet.Dial(types.WriterID(), addrMap)
	if err != nil {
		c.closeServers()
		return nil, err
	}
	readerEPs := make([]transport.Endpoint, cfg.NumReaders)
	for i := range readerEPs {
		rep, err := tcpnet.Dial(types.ReaderID(i), addrMap)
		if err != nil {
			_ = wep.Close()
			for j := 0; j < i; j++ {
				_ = readerEPs[j].Close()
			}
			c.closeServers()
			return nil, err
		}
		readerEPs[i] = rep
	}
	st, err := kv.OpenWithEndpoints(cfg, wep, readerEPs)
	if err != nil {
		c.closeServers()
		return nil, err
	}
	c.st = st
	for k := 1; k < writers; k++ {
		ct, err := dialStore(cfg, addrMap, k)
		if err != nil {
			st.Close() // closes any contenders adopted so far
			c.closeServers()
			return nil, err
		}
		if err := st.AdoptContender(ct); err != nil {
			ct.Close()
			st.Close()
			c.closeServers()
			return nil, err
		}
	}
	return c, nil
}

type tcprouterDep struct {
	workload.RouterDriver
	cfg      core.Config
	shards   int
	writers  int
	dir      string // temp data root, one subdirectory per cluster
	r        *router.Router
	clusters map[ring.ClusterID]*tcpCluster // active clusters only
	retired  []*tcpCluster                  // listeners kept up for lazy handoffs
	nextID   int
}

// NewTCPRouter builds a scale-out fleet of n loopback-TCP KV clusters
// behind one router: the real-deployment shape of a fleet, where every
// cluster is S sockets, a crash is a listener teardown, and every
// server keeps a file WAL so restarts recover from disk. writers > 1
// dials that many contending writer identities per cluster (joined
// clusters included), so the fleet carries multi-writer traffic.
func NewTCPRouter(cfg core.Config, shards, n, writers int) (Deployment, error) {
	if writers > 1 && cfg.Writers < writers {
		cfg.Writers = writers
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("chaos tcprouter: need at least one cluster")
	}
	dir, err := os.MkdirTemp("", "luckychaos-tcprouter-")
	if err != nil {
		return nil, fmt.Errorf("chaos tcprouter: data dir: %w", err)
	}
	d := &tcprouterDep{cfg: cfg, shards: shards, writers: writers, dir: dir, clusters: make(map[ring.ClusterID]*tcpCluster, n)}
	backends := make(map[ring.ClusterID]router.Backend, n)
	fail := func(err error) (Deployment, error) {
		for _, c := range d.clusters {
			c.st.Close()
			c.closeServers()
		}
		_ = os.RemoveAll(dir)
		return nil, err
	}
	for ; d.nextID < n; d.nextID++ {
		id := ring.ID(d.nextID)
		c, err := startTCPCluster(cfg, shards, writers, d.clusterDir(id))
		if err != nil {
			return fail(err)
		}
		d.clusters[id] = c
		backends[id] = c.st
	}
	r, err := router.New(router.Options{Seed: routerSeed, Readers: cfg.NumReaders}, backends)
	if err != nil {
		return fail(err)
	}
	d.r = r
	d.RouterDriver = workload.RouterDriver{R: r}
	return d, nil
}

// clusterDir is the data root of one cluster.
func (d *tcprouterDep) clusterDir(id ring.ClusterID) string {
	return filepath.Join(d.dir, string(id))
}

func (d *tcprouterDep) Kind() string         { return "tcprouter" }
func (d *tcprouterDep) Servers() int         { return d.cfg.S() }
func (d *tcprouterDep) Budget() (int, int)   { return d.cfg.T, d.cfg.B }
func (d *tcprouterDep) Net() *simnet.Network { return nil }

// ColdRestarts is false: every server recovers from its file WAL.
func (d *tcprouterDep) ColdRestarts() bool { return false }

func (d *tcprouterDep) Crash(i int) error {
	for id, c := range d.clusters {
		if i < 0 || i >= len(c.srvs) {
			return fmt.Errorf("chaos tcprouter: server %d out of range", i)
		}
		if err := c.srvs[i].Close(); err != nil {
			return fmt.Errorf("cluster %s: %w", id, err)
		}
		c.closeBack(i)
	}
	return nil
}

func (d *tcprouterDep) Restart(i int, fresh bool) error {
	for id, c := range d.clusters {
		c.closeBack(i)
		if fresh {
			if err := os.RemoveAll(filepath.Join(d.clusterDir(id), serverName(i))); err != nil {
				return fmt.Errorf("cluster %s: wipe server %d: %w", id, i, err)
			}
		}
		err := rebindListener(c.srvs, c.addrs, i, func(addr string) (*tcpnet.Server, error) {
			srv, back, err := listenDurableKV(c.prov, i, addr, d.shards)
			if err != nil {
				return nil, err
			}
			c.backs[i] = back
			return srv, nil
		})
		if err != nil {
			return fmt.Errorf("cluster %s: %w", id, err)
		}
	}
	return nil
}

func (d *tcprouterDep) Swap(i int, behavior string, seed int64) error {
	for id, c := range d.clusters {
		a, err := behaviorFor(behavior, seed, true)
		if err != nil {
			return err
		}
		c.closeBack(i) // the Byzantine automaton runs without storage
		err = rebindListener(c.srvs, c.addrs, i, func(addr string) (*tcpnet.Server, error) {
			return tcpnet.Listen(types.ServerID(i), addr, a)
		})
		if err != nil {
			return fmt.Errorf("cluster %s: %w", id, err)
		}
	}
	return nil
}

func (d *tcprouterDep) JoinCluster() error {
	id := ring.ID(d.nextID)
	c, err := startTCPCluster(d.cfg, d.shards, d.writers, d.clusterDir(id))
	if err != nil {
		return err
	}
	if err := d.r.AddCluster(id, c.st); err != nil {
		c.st.Close()
		c.closeServers()
		return err
	}
	d.nextID++
	d.clusters[id] = c
	return nil
}

func (d *tcprouterDep) RemoveCluster(i int) error {
	active := d.r.Clusters()
	if len(active) == 0 {
		return fmt.Errorf("chaos tcprouter: no active clusters")
	}
	id := active[i%len(active)]
	if err := d.r.RemoveCluster(id); err != nil {
		return err
	}
	// Listeners stay up: lazily-migrated keys still read their pair out
	// of the retired cluster through the router-owned client store.
	c := d.clusters[id]
	delete(d.clusters, id)
	d.retired = append(d.retired, c)
	return nil
}

func (d *tcprouterDep) NumClusters() int { return len(d.r.Clusters()) }

func (d *tcprouterDep) Check(ops []checker.Op) []checker.Violation {
	return checker.CheckAtomicityPerKey(ops)
}

func (d *tcprouterDep) Close() {
	_ = d.r.Close() // closes every client store, active and retired
	for _, c := range d.clusters {
		c.closeServers()
	}
	for _, c := range d.retired {
		c.closeServers()
	}
	if d.dir != "" {
		_ = os.RemoveAll(d.dir)
	}
}

// Open builds a deployment by kind name with the default chaos
// configuration — the entry point luckychaos and the smoke matrix use.
// writers > 1 opens that many writer identities on every kind that
// supports contention (core, kv, tcpkv, router, tcprouter — the fleet
// kinds route contending writes through their per-cluster
// writer-identity maps); only the regular variant stays single-writer,
// and multi-writer scenarios are explicitly clamped to SWMR traffic on
// it (Report.MWClamped).
func Open(kind string, readers, writers int) (Deployment, error) {
	switch kind {
	case "core":
		cfg := DefaultConfig(readers)
		cfg.Writers = writers
		return NewCore(cfg)
	case "kv":
		return NewKV(DefaultConfig(readers), writers)
	case "tcpkv":
		return NewTCPKV(DefaultConfig(readers), 0, writers)
	case "router":
		return NewRouter(DefaultConfig(readers), 2, writers)
	case "tcprouter":
		return NewTCPRouter(DefaultConfig(readers), 0, 2, writers)
	case "regular":
		cfg := DefaultConfig(readers)
		return NewRegular(regular.Config{
			T: cfg.T, B: cfg.B, NumReaders: cfg.NumReaders,
			RoundTimeout: cfg.RoundTimeout, OpTimeout: cfg.OpTimeout,
		})
	default:
		return nil, fmt.Errorf("chaos: unknown deployment %q (core|kv|tcpkv|router|tcprouter|regular)", kind)
	}
}

// Kinds lists the deployment kinds Open accepts.
func Kinds() []string { return []string{"core", "kv", "tcpkv", "router", "tcprouter", "regular"} }
