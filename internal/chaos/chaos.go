// Package chaos is the scripted fault-schedule engine: it composes
// network faults (partitions, link flaps, probabilistic drop/duplicate,
// delay-spike jitter), process faults (crash, crash-restart, Byzantine
// automaton swaps) and contention phases into seeded, reproducible
// schedules, drives them against a running deployment while
// internal/workload generates traffic, and verifies the recorded
// history with internal/checker — per key, against the deployment's
// consistency contract.
//
// Determinism contract: a scenario's schedule is a pure function of
// (seed, deployment shape, duration) — same seed, same deployment kind
// and duration ⇒ byte-identical event list, including which events the
// budget guard skips. Message-level timing is of course still up to
// the scheduler; what replays exactly is the adversary, which is what
// `luckychaos -seed` needs to reproduce a failure.
//
// Budget guard: the model tolerates t faulty servers of which at most
// b Byzantine. The engine tracks which servers are down and which are
// "suspect" (Byzantine-swapped, or restarted without state — an
// amnesiac answers correctly from initial state, which the model can
// only classify as Byzantine) and deterministically skips any event
// that would exceed |down ∪ suspect| ≤ t or |suspect| ≤ b. A schedule
// therefore cannot push a deployment outside the model by accident —
// if the checker flags such a run, that is a bug, not a misuse.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/simnet"
	"luckystore/internal/types"
	"luckystore/internal/workload"
)

// ActionKind enumerates the fault actions a schedule can contain.
type ActionKind string

// The action vocabulary.
const (
	ActPartition   ActionKind = "partition"    // install Groups as the current partition
	ActHeal        ActionKind = "heal"         // release the partition
	ActHoldLink    ActionKind = "hold-link"    // suspend one directed link
	ActReleaseLink ActionKind = "release-link" // resume one directed link
	ActProcFaults  ActionKind = "proc-faults"  // drop/duplicate/jitter on all of Proc's links
	ActClearFaults ActionKind = "clear-faults" // remove every probabilistic fault
	ActCrash       ActionKind = "crash"        // crash-stop Server
	ActRestart     ActionKind = "restart"      // restart Server (Fresh: lose state)
	ActSwap        ActionKind = "swap"         // replace Server with Behavior
	// ActDiskFault arms a storage fault (Disk: torn-write, fsync-error)
	// on Server's backend: the next mutating operation kills the disk
	// and the server goes mute — a crash fault in the model's terms, so
	// it is budgeted against t exactly like ActCrash. A later
	// ActRestart heals the disk and recovers from it. Deployments
	// without injectable storage skip it benignly.
	ActDiskFault ActionKind = "disk-fault"
	// Fleet actions, honored by deployments implementing Rebalancer
	// (scale-out router fleets); others skip them benignly.
	ActJoinCluster   ActionKind = "join-cluster"   // add one cluster to the fleet
	ActRemoveCluster ActionKind = "remove-cluster" // retire active cluster ordinal Server
)

// Action is one scripted fault, a plain value so schedules serialize
// and compare.
type Action struct {
	Kind     ActionKind        `json:"kind"`
	Server   int               `json:"server,omitempty"`
	Fresh    bool              `json:"fresh,omitempty"`
	Groups   [][]types.ProcID  `json:"groups,omitempty"`
	From     types.ProcID      `json:"from,omitempty"`
	To       types.ProcID      `json:"to,omitempty"`
	Proc     types.ProcID      `json:"proc,omitempty"`
	Faults   simnet.LinkFaults `json:"faults,omitempty"`
	Behavior string            `json:"behavior,omitempty"`
	Disk     string            `json:"disk,omitempty"` // storage fault kind for ActDiskFault
}

func (a Action) String() string {
	switch a.Kind {
	case ActPartition:
		return fmt.Sprintf("partition %v", a.Groups)
	case ActHoldLink, ActReleaseLink:
		return fmt.Sprintf("%s %s→%s", a.Kind, a.From, a.To)
	case ActProcFaults:
		return fmt.Sprintf("proc-faults %s drop=%.2f dup=%.2f jitter=%s", a.Proc, a.Faults.Drop, a.Faults.Duplicate, a.Faults.JitterMax)
	case ActCrash:
		return fmt.Sprintf("crash s%d", a.Server)
	case ActRestart:
		mode := "warm"
		if a.Fresh {
			mode = "fresh"
		}
		return fmt.Sprintf("restart s%d (%s)", a.Server, mode)
	case ActSwap:
		return fmt.Sprintf("swap s%d → %s", a.Server, a.Behavior)
	case ActDiskFault:
		return fmt.Sprintf("disk-fault s%d (%s)", a.Server, a.Disk)
	case ActJoinCluster:
		return "join-cluster"
	case ActRemoveCluster:
		return fmt.Sprintf("remove-cluster #%d", a.Server)
	default:
		return string(a.Kind)
	}
}

// Event is one action at an offset from run start.
type Event struct {
	At     time.Duration `json:"at"`
	Action Action        `json:"action"`
}

// AppliedEvent is an Event plus what the engine did with it.
type AppliedEvent struct {
	Event
	Applied bool   `json:"applied"`
	Skipped string `json:"skipped,omitempty"` // reason, when not applied
	Err     string `json:"err,omitempty"`
}

// Options tunes a run beyond the scenario's own workload shape.
type Options struct {
	// Log receives one line per applied event; nil discards.
	Log io.Writer
}

// Report is the outcome of one chaos run.
type Report struct {
	Scenario   string         `json:"scenario"`
	Deployment string         `json:"deployment"`
	Seed       int64          `json:"seed"`
	Duration   time.Duration  `json:"duration"`
	Events     []AppliedEvent `json:"events"`
	Ops        int            `json:"ops"`
	Writes     int            `json:"writes"`
	Reads      int            `json:"reads"`
	FastFrac   float64        `json:"fast_frac"`
	// Traffic is the full shared-path summary (workload.Summarize) the
	// headline counters above are drawn from; it adds latency
	// percentiles, rounds/op, and ghost-stamp retries, in the same
	// shape luckyload's SLO artifact uses.
	Traffic    workload.Result `json:"traffic"`
	OpError    string          `json:"op_error,omitempty"`
	Violations []string        `json:"violations,omitempty"`
	Clean      bool            `json:"clean"`
	// Writers is the contending writer-identity count the traffic ran
	// with; MWClamped marks that the scenario asked for more than the
	// deployment exposes and the run was clamped to single-writer (the
	// matrix runs every scenario over every deployment kind, so the
	// degradation is deliberate here — and explicit, unlike the silent
	// fallback workload.Continuous used to apply).
	Writers   int        `json:"writers,omitempty"`
	MWClamped bool       `json:"mw_clamped,omitempty"`
	History   []OpRecord `json:"history,omitempty"`

	ops []checker.Op
}

// OpRecord is the JSON-serializable form of one recorded operation,
// written into failure artifacts so a run replays from its history.
type OpRecord struct {
	ID     int       `json:"id"`
	Client string    `json:"client"`
	Kind   string    `json:"kind"`
	Key    string    `json:"key,omitempty"`
	TS     int64     `json:"ts"`
	W      int32     `json:"w,omitempty"`
	Val    string    `json:"val"`
	Invoke time.Time `json:"invoke"`
	Return time.Time `json:"return"`
	Rounds int       `json:"rounds"`
	Fast   bool      `json:"fast"`
	Err    string    `json:"err,omitempty"`
}

// RecordedOps returns the raw recorded history.
func (r *Report) RecordedOps() []checker.Op { return r.ops }

// AttachHistory fills Report.History from the recorded ops so WriteJSON
// emits the full replayable history (failure artifacts want it; smoke
// summaries usually do not).
func (r *Report) AttachHistory() {
	r.History = make([]OpRecord, 0, len(r.ops))
	for _, op := range r.ops {
		rec := OpRecord{
			ID: op.ID, Client: string(op.Client), Kind: op.Kind.String(), Key: op.Key,
			TS: int64(op.Value.TS), W: int32(op.Value.W), Val: string(op.Value.Val),
			Invoke: op.Invoke, Return: op.Return, Rounds: op.Rounds, Fast: op.Fast,
		}
		if op.Err != nil {
			rec.Err = op.Err.Error()
		}
		r.History = append(r.History, rec)
	}
}

// WriteJSON serializes the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// settleTime is how long the engine lets traffic run after the last
// fault is lifted, so in-flight slow paths complete and the tail of the
// history exercises the healed system.
const settleTime = 250 * time.Millisecond

// minDuration keeps degenerate -duration values from producing empty
// schedules.
const minDuration = 200 * time.Millisecond

// Run executes scenario sc against deployment d for roughly duration
// (plus settle time), generating traffic throughout, and returns the
// checked report. The returned error covers engine-level failures
// (unknown behavior, deployment teardown); consistency violations and
// operation errors are reported in the Report, with Clean == false.
func Run(d Deployment, sc Scenario, seed int64, duration time.Duration, opts Options) (*Report, error) {
	if duration < minDuration {
		duration = minDuration
	}
	t, b := d.Budget()
	writers := 1
	if mw, ok := d.(workload.MultiWriter); ok {
		writers = mw.NumWriters()
	}
	p := SchedParams{
		Servers: d.Servers(), T: t, B: b,
		Readers: d.NumReaders(), Writers: writers, Seed: seed, Duration: duration,
		Cold: d.ColdRestarts(),
	}
	events := sc.Schedule(p)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	// The matrix runs every scenario over every deployment kind, so a
	// multi-writer scenario on a single-writer deployment clamps to one
	// identity here — explicitly, recorded in the report — instead of
	// tripping workload.ErrMWUnsupported.
	genWriters := sc.Writers
	clamped := false
	if genWriters > 1 && writers <= 1 {
		genWriters, clamped = 1, true
	}

	rep := &Report{
		Scenario: sc.Name, Deployment: d.Kind(), Seed: seed, Duration: duration,
		Writers: max(genWriters, 1), MWClamped: clamped,
	}

	// Traffic.
	keys := sc.keys()
	ctx, cancel := context.WithCancel(context.Background())
	gen := workload.Continuous{
		Keys: keys, Seed: seed,
		HotFrac:   sc.HotFrac,
		Writers:   genWriters,
		WritePace: sc.WritePace, ReadPace: sc.ReadPace,
	}
	type wlResult struct {
		rec *checker.Recorder
		err error
	}
	wlDone := make(chan wlResult, 1)
	go func() {
		rec, err := gen.Run(ctx, d)
		wlDone <- wlResult{rec, err}
	}()

	// Timeline: apply each event at its offset, under the budget guard.
	guard := newGuard(t, b)
	start := time.Now()
	for _, ev := range events {
		if wait := time.Until(start.Add(ev.At)); wait > 0 {
			time.Sleep(wait)
		}
		applied := apply(d, ev, guard)
		rep.Events = append(rep.Events, applied)
		if opts.Log != nil {
			status := "applied"
			if !applied.Applied {
				status = "skipped: " + applied.Skipped
			}
			fmt.Fprintf(opts.Log, "%8s %-40s %s\n", ev.At.Round(time.Millisecond), ev.Action, status)
		}
	}
	if wait := time.Until(start.Add(duration)); wait > 0 {
		time.Sleep(wait)
	}

	// Settle: lift every network fault so held messages deliver and
	// in-flight operations complete, then let traffic breathe.
	if n := d.Net(); n != nil {
		n.Heal()
		n.ReleaseAll()
		n.ClearAllFaults()
	}
	time.Sleep(settleTime)
	cancel()
	wl := <-wlDone

	// Check.
	rep.ops = wl.rec.Ops()
	if wl.err != nil {
		rep.OpError = wl.err.Error()
	}
	rep.Traffic = workload.Summarize(rep.ops, duration+settleTime)
	rep.Ops, rep.Writes, rep.Reads = rep.Traffic.Ops, rep.Traffic.Writes, rep.Traffic.Reads
	rep.FastFrac = rep.Traffic.FastFrac
	for _, v := range d.Check(rep.ops) {
		rep.Violations = append(rep.Violations, v.String())
	}
	// An event that errored means the executed fault sequence diverged
	// from the script — the run did not test what the seed says it
	// tested, so it must not report clean.
	eventErrs := false
	for _, ev := range rep.Events {
		if ev.Err != "" {
			eventErrs = true
		}
	}
	rep.Clean = wl.err == nil && len(rep.Violations) == 0 && !eventErrs
	return rep, nil
}

// guard tracks the failure budget.
type guard struct {
	t, b    int
	down    map[int]bool
	suspect map[int]bool // Byzantine-swapped or amnesiac-restarted
}

func newGuard(t, b int) *guard {
	return &guard{t: t, b: b, down: map[int]bool{}, suspect: map[int]bool{}}
}

// faulty counts |down ∪ suspect| with optional additions.
func (g *guard) faulty(addDown, addSuspect int) int {
	n := 0
	for i := range g.down {
		if !g.suspect[i] {
			n++
		}
	}
	n += len(g.suspect)
	if addDown >= 0 && !g.down[addDown] && !g.suspect[addDown] {
		n++
	}
	if addSuspect >= 0 && !g.suspect[addSuspect] && !g.down[addSuspect] {
		n++
	}
	return n
}

// apply executes one event against the deployment, enforcing the
// failure budget. The decision depends only on the event sequence, so
// a replayed schedule skips exactly the same events.
func apply(d Deployment, ev Event, g *guard) AppliedEvent {
	out := AppliedEvent{Event: ev}
	net := d.Net()
	switch a := ev.Action; a.Kind {
	case ActPartition:
		if net == nil {
			out.Skipped = "no simulated network"
			return out
		}
		net.SetPartition(a.Groups...)
		out.Applied = true
	case ActHeal:
		if net == nil {
			out.Skipped = "no simulated network"
			return out
		}
		net.Heal()
		out.Applied = true
	case ActHoldLink:
		if net == nil {
			out.Skipped = "no simulated network"
			return out
		}
		net.Hold(a.From, a.To)
		out.Applied = true
	case ActReleaseLink:
		if net == nil {
			out.Skipped = "no simulated network"
			return out
		}
		net.Release(a.From, a.To)
		out.Applied = true
	case ActProcFaults:
		if net == nil {
			out.Skipped = "no simulated network"
			return out
		}
		net.SetProcFaults(a.Proc, a.Faults)
		out.Applied = true
	case ActClearFaults:
		if net == nil {
			out.Skipped = "no simulated network"
			return out
		}
		net.ClearAllFaults()
		out.Applied = true
	case ActCrash:
		if g.down[a.Server] {
			out.Skipped = "already down"
			return out
		}
		if g.faulty(a.Server, -1) > g.t {
			out.Skipped = fmt.Sprintf("budget: would exceed t=%d faulty", g.t)
			return out
		}
		if err := d.Crash(a.Server); err != nil {
			out.Err = err.Error()
			return out
		}
		g.down[a.Server] = true
		out.Applied = true
	case ActRestart:
		fresh := a.Fresh || d.ColdRestarts()
		if fresh && !g.suspect[a.Server] {
			if len(g.suspect)+1 > g.b {
				out.Skipped = fmt.Sprintf("budget: amnesiac restart would exceed b=%d", g.b)
				return out
			}
			// A fresh restart of a *running* server mints a new suspect
			// without freeing a down slot: check t too.
			if !g.down[a.Server] && g.faulty(-1, a.Server) > g.t {
				out.Skipped = fmt.Sprintf("budget: would exceed t=%d faulty", g.t)
				return out
			}
		}
		if err := d.Restart(a.Server, fresh); err != nil {
			out.Err = err.Error()
			return out
		}
		delete(g.down, a.Server)
		if fresh {
			g.suspect[a.Server] = true
		}
		out.Applied = true
	case ActDiskFault:
		df, ok := d.(DiskFaulter)
		if !ok {
			out.Skipped = "deployment has no injectable storage"
			return out
		}
		if g.down[a.Server] {
			out.Skipped = "already down"
			return out
		}
		if g.faulty(a.Server, -1) > g.t {
			out.Skipped = fmt.Sprintf("budget: would exceed t=%d faulty", g.t)
			return out
		}
		if err := df.DiskFault(a.Server, a.Disk); err != nil {
			out.Err = err.Error()
			return out
		}
		// The server mutes on its next mutating step: conservatively a
		// crash fault from this moment on, until a restart heals it.
		g.down[a.Server] = true
		out.Applied = true
	case ActSwap:
		if !g.suspect[a.Server] && len(g.suspect)+1 > g.b {
			out.Skipped = fmt.Sprintf("budget: swap would exceed b=%d Byzantine", g.b)
			return out
		}
		if g.faulty(-1, a.Server) > g.t {
			out.Skipped = fmt.Sprintf("budget: would exceed t=%d faulty", g.t)
			return out
		}
		if err := d.Swap(a.Server, a.Behavior, ev.At.Nanoseconds()+int64(a.Server)); err != nil {
			out.Err = err.Error()
			return out
		}
		delete(g.down, a.Server) // the swapped automaton is running
		g.suspect[a.Server] = true
		out.Applied = true
	// Fleet actions consume no fault budget: clusters are independent
	// quorum groups, and the rebalance handoff is a client-side
	// protocol, not a server fault.
	case ActJoinCluster:
		rb, ok := d.(Rebalancer)
		if !ok {
			out.Skipped = "deployment cannot rebalance"
			return out
		}
		if err := rb.JoinCluster(); err != nil {
			out.Err = err.Error()
			return out
		}
		out.Applied = true
	case ActRemoveCluster:
		rb, ok := d.(Rebalancer)
		if !ok {
			out.Skipped = "deployment cannot rebalance"
			return out
		}
		if rb.NumClusters() <= 1 {
			out.Skipped = "last cluster"
			return out
		}
		if err := rb.RemoveCluster(a.Server); err != nil {
			out.Err = err.Error()
			return out
		}
		out.Applied = true
	default:
		out.Skipped = fmt.Sprintf("unknown action %q", a.Kind)
	}
	return out
}
