package chaos

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/simnet"
	"luckystore/internal/types"
	"luckystore/internal/workload"
)

func schedParams(seed int64) SchedParams {
	return SchedParams{Servers: 6, T: 2, B: 1, Readers: 3, Seed: seed, Duration: time.Second}
}

// Acceptance: same seed ⇒ same schedule, for every scenario.
func TestSchedulesAreDeterministic(t *testing.T) {
	for _, sc := range Scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a := sc.Schedule(schedParams(42))
			b := sc.Schedule(schedParams(42))
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("schedule diverged for identical seeds:\n%v\nvs\n%v", a, b)
			}
			if len(a) == 0 {
				t.Fatal("empty schedule")
			}
			c := sc.Schedule(schedParams(43))
			if reflect.DeepEqual(a, c) {
				t.Logf("note: seeds 42 and 43 produced identical schedules (scenario may not randomize)")
			}
		})
	}
}

func TestScheduleOffsetsWithinDuration(t *testing.T) {
	for _, sc := range Scenarios {
		for seed := int64(1); seed <= 5; seed++ {
			p := schedParams(seed)
			for _, ev := range sc.Schedule(p) {
				if ev.At < 0 || ev.At > p.Duration {
					t.Errorf("%s seed %d: event at %v outside [0,%v]: %v", sc.Name, seed, ev.At, p.Duration, ev.Action)
				}
			}
		}
	}
}

func TestLookupAndNames(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("scenario library has %d entries, want ≥ 6", len(names))
	}
	for _, n := range names {
		if _, err := Lookup(n); err != nil {
			t.Errorf("Lookup(%q): %v", n, err)
		}
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("Lookup accepted an unknown name")
	}
}

// Acceptance: two engine runs with the same seed apply/skip the same
// events (the replayable adversary), on a simnet deployment.
func TestRunEventDecisionsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	sc, err := Lookup("crash-restarts")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []AppliedEvent {
		d, err := Open("core", 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		rep, err := Run(d, sc, 7, 400*time.Millisecond, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Events
	}
	a, b := run(), b2(run)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Action.Kind != b[i].Action.Kind || a[i].Applied != b[i].Applied || a[i].At != b[i].At {
			t.Errorf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func b2(f func() []AppliedEvent) []AppliedEvent { return f() }

// The budget guard never lets a schedule exceed the failure model:
// whatever the seed, applied crashes/swaps stay within t and b.
func TestGuardEnforcesBudget(t *testing.T) {
	g := newGuard(2, 1)
	d := &fakeDep{}
	evAt := func(k ActionKind, srv int) Event {
		return Event{Action: Action{Kind: k, Server: srv, Behavior: "stale"}}
	}
	if out := apply(d, evAt(ActCrash, 0), g); !out.Applied {
		t.Fatalf("first crash skipped: %+v", out)
	}
	if out := apply(d, evAt(ActSwap, 1), g); !out.Applied {
		t.Fatalf("first swap skipped: %+v", out)
	}
	// down={0}, suspect={1}: a second crash would make 3 faulty > t=2.
	if out := apply(d, evAt(ActCrash, 2), g); out.Applied {
		t.Fatalf("crash beyond t applied: %+v", out)
	}
	// A second swap would exceed b=1.
	if out := apply(d, evAt(ActSwap, 3), g); out.Applied {
		t.Fatalf("swap beyond b applied: %+v", out)
	}
	// Restarting the crashed server frees a slot (warm restart).
	if out := apply(d, evAt(ActRestart, 0), g); !out.Applied {
		t.Fatalf("warm restart skipped: %+v", out)
	}
	if out := apply(d, evAt(ActCrash, 2), g); !out.Applied {
		t.Fatalf("crash after restart skipped: %+v", out)
	}
}

// A fresh restart of a *running* server mints a suspect without
// freeing a down slot: it must respect the t budget too.
func TestGuardFreshRestartOfRunningServerRespectsT(t *testing.T) {
	g := newGuard(2, 1)
	d := &fakeDep{}
	apply(d, Event{Action: Action{Kind: ActCrash, Server: 0}}, g)
	apply(d, Event{Action: Action{Kind: ActCrash, Server: 1}}, g)
	// down={0,1} = t: an amnesiac restart of running s2 would make the
	// faulty union 3 > t=2 even though b has room.
	out := apply(d, Event{Action: Action{Kind: ActRestart, Server: 2, Fresh: true}}, g)
	if out.Applied {
		t.Fatalf("fresh restart of running server applied beyond t: %+v", out)
	}
}

// On cold deployments a restart is amnesiac and counts against b.
func TestGuardBudgetsColdRestartsAgainstB(t *testing.T) {
	g := newGuard(2, 1)
	d := &fakeDep{cold: true}
	apply(d, Event{Action: Action{Kind: ActCrash, Server: 0}}, g)
	if out := apply(d, Event{Action: Action{Kind: ActRestart, Server: 0}}, g); !out.Applied {
		t.Fatalf("first cold restart skipped: %+v", out)
	}
	apply(d, Event{Action: Action{Kind: ActCrash, Server: 1}}, g)
	if out := apply(d, Event{Action: Action{Kind: ActRestart, Server: 1}}, g); out.Applied {
		t.Fatalf("second amnesiac restart applied beyond b=1: %+v", out)
	}
}

// The full acceptance matrix: every named scenario runs checker-clean
// on every deployment flavor.
func TestScenarioMatrixRunsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix skipped in -short mode")
	}
	for _, kind := range Kinds() {
		for _, sc := range Scenarios {
			kind, sc := kind, sc
			t.Run(fmt.Sprintf("%s/%s", kind, sc.Name), func(t *testing.T) {
				t.Parallel()
				d, err := Open(kind, 3, max(1, sc.Writers))
				if err != nil {
					t.Fatal(err)
				}
				defer d.Close()
				rep, err := Run(d, sc, 1, 600*time.Millisecond, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if rep.OpError != "" {
					t.Errorf("operation error: %s", rep.OpError)
				}
				for _, v := range rep.Violations {
					t.Errorf("violation: %s", v)
				}
				if rep.Ops == 0 {
					t.Error("no operations recorded")
				}
				applied, benignSkips := 0, 0
				for _, ev := range rep.Events {
					if ev.Err != "" {
						t.Errorf("event error: %s: %s", ev.Action, ev.Err)
					}
					if ev.Applied {
						applied++
					}
					// A network-fault scenario degrades to plain traffic
					// on a real-socket deployment, and a fleet scenario
					// degrades the same way on a single-cluster one —
					// neither has anything to script there.
					if ev.Skipped == "no simulated network" || ev.Skipped == "deployment cannot rebalance" {
						benignSkips++
					}
				}
				if applied == 0 && benignSkips != len(rep.Events) {
					t.Error("no fault event applied (schedule did nothing)")
				}
			})
		}
	}
}

// The contending-writers scenario on a multi-writer deployment must
// actually engage both writer identities — a silent fallback to SWMR
// would pass the matrix while testing nothing.
func TestContendingWritersEngagesBothIdentities(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	sc, err := Lookup("contending-writers")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"core", "kv", "tcpkv"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			d, err := Open(kind, 2, sc.Writers)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			mw, ok := d.(workload.MultiWriter)
			if !ok || mw.NumWriters() != sc.Writers {
				t.Fatalf("deployment %s has no %d-writer capability", kind, sc.Writers)
			}
			rep, err := Run(d, sc, 11, 500*time.Millisecond, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.OpError != "" {
				t.Errorf("operation error: %s", rep.OpError)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
			perWriter := map[types.ProcID]int{}
			for _, op := range rep.RecordedOps() {
				if op.Kind == checker.KindWrite && op.Err == nil {
					perWriter[op.Client]++
					if idx := op.Client.WriterIndex(); op.Value.Stamp().Writer != types.WID(idx) {
						t.Fatalf("op by %s bound writer component %d", op.Client, op.Value.Stamp().Writer)
					}
				}
			}
			for w := 0; w < sc.Writers; w++ {
				if perWriter[types.WriterIDN(w)] == 0 {
					t.Errorf("writer identity %d recorded no completed writes", w)
				}
			}
		})
	}
}

// The fleet variant of the same guarantee: contending-writers-fleet on
// the router deployments must route both writer identities through the
// per-cluster writer-identity maps, across a join and a retirement.
func TestContendingWritersFleetEngagesBothIdentities(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	sc, err := Lookup("contending-writers-fleet")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"router", "tcprouter"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			d, err := Open(kind, 2, sc.Writers)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			mw, ok := d.(workload.MultiWriter)
			if !ok || mw.NumWriters() != sc.Writers {
				t.Fatalf("fleet deployment %s has no %d-writer capability", kind, sc.Writers)
			}
			rep, err := Run(d, sc, 11, 500*time.Millisecond, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.MWClamped {
				t.Fatal("fleet run clamped multi-writer traffic to SWMR")
			}
			if rep.OpError != "" {
				t.Errorf("operation error: %s", rep.OpError)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
			perWriter := map[types.ProcID]int{}
			for _, op := range rep.RecordedOps() {
				if op.Kind == checker.KindWrite && op.Err == nil {
					perWriter[op.Client]++
					if idx := op.Client.WriterIndex(); op.Value.Stamp().Writer != types.WID(idx) {
						t.Fatalf("op by %s bound writer component %d", op.Client, op.Value.Stamp().Writer)
					}
				}
			}
			for w := 0; w < sc.Writers; w++ {
				if perWriter[types.WriterIDN(w)] == 0 {
					t.Errorf("writer identity %d recorded no completed writes", w)
				}
			}
		})
	}
}

// fakeDep satisfies Deployment for guard unit tests; fault hooks
// always succeed.
type fakeDep struct{ cold bool }

func (f *fakeDep) NumReaders() int                        { return 1 }
func (f *fakeDep) MultiKey() bool                         { return false }
func (f *fakeDep) Kind() string                           { return "fake" }
func (f *fakeDep) Servers() int                           { return 6 }
func (f *fakeDep) Budget() (int, int)                     { return 2, 1 }
func (f *fakeDep) ColdRestarts() bool                     { return f.cold }
func (f *fakeDep) Close()                                 {}
func (f *fakeDep) Crash(int) error                        { return nil }
func (f *fakeDep) Restart(int, bool) error                { return nil }
func (f *fakeDep) Swap(int, string, int64) error          { return nil }
func (f *fakeDep) Net() *simnet.Network                   { return nil }
func (f *fakeDep) Check([]checker.Op) []checker.Violation { return nil }

func (f *fakeDep) Write(string, types.Value) (types.Tagged, workload.OpMeta, error) {
	return types.Tagged{}, workload.OpMeta{}, nil
}

func (f *fakeDep) Read(int, string) (types.Tagged, workload.OpMeta, error) {
	return types.Tagged{}, workload.OpMeta{}, nil
}
