package core_test

// Property tests for Appendix A (Theorem 5): with the maximal
// fast-write budget fw = t−b, any sequence of consecutive lucky READs
// contains at most one slow READ — across randomized crash patterns,
// crash timings and sequence lengths.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/types"
	"luckystore/internal/workload"
)

func TestAtMostOneSlowReadPerSequenceRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep skipped in -short mode")
	}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 2,
				RoundTimeout: 10 * time.Millisecond, OpTimeout: 20 * time.Second}
			c, err := core.NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			// Random pre-write crash count within the fast budget, so
			// writes can be fast or slow depending on further crashes.
			crashed := map[int]bool{}
			crashN := rng.Intn(2) // 0 or 1 before the first write
			for len(crashed) < crashN {
				i := rng.Intn(cfg.S())
				if !crashed[i] {
					crashed[i] = true
					c.CrashServer(i)
				}
			}

			writes := 1 + rng.Intn(3)
			for w := 1; w <= writes; w++ {
				if err := c.Writer().Write(workload.Value(w, 0)); err != nil {
					t.Fatal(err)
				}
			}

			// Random extra crashes, total ≤ t.
			for len(crashed) < cfg.T && rng.Intn(2) == 0 {
				i := rng.Intn(cfg.S())
				if !crashed[i] {
					crashed[i] = true
					c.CrashServer(i)
				}
			}

			// A sequence of consecutive lucky reads (no writes
			// in-between): at most one slow, and all return the last
			// written value.
			seqLen := 3 + rng.Intn(5)
			slow := 0
			rounds := ""
			for i := 0; i < seqLen; i++ {
				rd := c.Reader(rng.Intn(cfg.NumReaders))
				got, err := rd.Read()
				if err != nil {
					t.Fatal(err)
				}
				if got.TS != types.TS(writes) {
					t.Fatalf("read %d returned %v, want ts=%d", i, got, writes)
				}
				m := rd.LastMeta()
				if !m.Fast() {
					slow++
				}
				rounds += fmt.Sprintf("%d ", m.Rounds())
			}
			if slow > 1 {
				t.Errorf("seed %d: %d slow reads in a consecutive lucky sequence (%s), want ≤ 1",
					seed, slow, rounds)
			}
		})
	}
}

// The remark of Appendix A.1: once more than t−b servers have failed
// and at least one WRITE invoked after that completes, every lucky READ
// that succeeds it is fast (the write is necessarily slow, which
// pre-pays for all subsequent reads).
func TestAllReadsFastAfterSlowWritePostFailures(t *testing.T) {
	cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 1,
		RoundTimeout: 10 * time.Millisecond}
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.CrashServer(0)
	c.CrashServer(1) // more than t−b failures
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	if c.Writer().LastMeta().Fast {
		t.Fatal("write unexpectedly fast with > t−b failures")
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Reader(0).Read(); err != nil {
			t.Fatal(err)
		}
		if m := c.Reader(0).LastMeta(); !m.Fast() {
			t.Errorf("read %d after the slow write not fast: %+v", i, m)
		}
	}
}
