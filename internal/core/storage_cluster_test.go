package core_test

import (
	"testing"

	"luckystore/internal/core"
	"luckystore/internal/storage"
)

func coreAutomaton() storage.Automaton { return core.NewServer() }

// TestClusterRestartRecoversFromBackend pins the tentpole behavior:
// with WithStorage, RestartServer rebuilds the automaton from the WAL
// — the restarted server's in-memory object is discarded, so whatever
// the restarted server knows, it learned from the log.
func TestClusterRestartRecoversFromBackend(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, NumReaders: 1}
	prov := storage.NewMemProvider(coreAutomaton)
	c, err := core.NewCluster(cfg, core.WithStorage(prov))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Writer().Write("v1"); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.Writer().Write("v2"); err != nil {
		t.Fatalf("write: %v", err)
	}
	before := c.ServerAutomaton(0).(*core.Server)
	bpw, bw, bvw := before.State()
	if bw.IsBottom() {
		t.Fatalf("server 0 saw no writes")
	}

	c.CrashServer(0)
	if err := c.RestartServer(0); err != nil {
		t.Fatalf("restart: %v", err)
	}
	after := c.ServerAutomaton(0).(*core.Server)
	if after == before {
		t.Fatalf("restart kept the in-memory automaton; want a replay-rebuilt one")
	}
	apw, aw, avw := after.State()
	if apw != bpw || aw != bw || avw != bvw {
		t.Fatalf("recovered state (%v,%v,%v) != pre-crash (%v,%v,%v)", apw, aw, avw, bpw, bw, bvw)
	}

	// The cluster still serves: reads see the recovered value.
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if got.Val != "v2" {
		t.Fatalf("read %q after restart, want %q", got.Val, "v2")
	}
}

// TestClusterFreshRestartWipesBackend pins that RestartServerFresh is
// the only amnesiac path: the backend is wiped with the automaton.
func TestClusterFreshRestartWipesBackend(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, NumReaders: 1}
	prov := storage.NewMemProvider(coreAutomaton)
	c, err := core.NewCluster(cfg, core.WithStorage(prov))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Writer().Write("v1"); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(1)
	if err := c.RestartServerFresh(1); err != nil {
		t.Fatal(err)
	}
	if st := c.ServerBackend(1).Stats(); st.Records != 0 {
		t.Fatalf("fresh restart left %d records in the backend", st.Records)
	}
	s := c.ServerAutomaton(1).(*core.Server)
	if _, w, _ := s.State(); !w.IsBottom() {
		t.Fatalf("fresh-restarted server still knows w=%v", w)
	}
}

// TestClusterFileBackedEndToEnd runs a disk-backed simnet cluster:
// write, crash, warm-restart from the real file WAL, read.
func TestClusterFileBackedEndToEnd(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, NumReaders: 1}
	prov := storage.NewDirProvider(t.TempDir(), coreAutomaton)
	c, err := core.NewCluster(cfg, core.WithStorage(prov))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Writer().Write("durable"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.S(); i++ {
		c.CrashServer(i)
		if err := c.RestartServer(i); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "durable" {
		t.Fatalf("read %q, want %q", got.Val, "durable")
	}
	if st := c.ServerBackend(0).Stats(); st.Records == 0 {
		t.Fatalf("file backend recorded nothing")
	}
}
