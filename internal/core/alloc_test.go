//go:build !race

package core

import (
	"testing"

	"luckystore/internal/storage"
)

// The steady-state allocation contract of the operation hot path
// (modeled on wire's TestCodecSteadyStateAllocs): once a client's
// pooled round state and every server's lazy state are warm, a fast
// WRITE or fast READ on the in-memory network costs at most 5
// allocations — across *all* goroutines (testing.AllocsPerRun counts
// globally, so the servers, runners and mailboxes are included).
//
// The remaining allocations are the interface boxings of the messages
// themselves: one request boxed by the client plus one ack boxed per
// server, 1 + S = 4 for the t=1, b=0 deployment pinned here. Excluded
// under -race, whose instrumentation inflates counts.
const steadyStateAllocBudget = 5

func allocContractCluster(t *testing.T) *Cluster {
	t.Helper()
	cl, err := NewCluster(Config{T: 1, B: 0, Fw: 0, NumReaders: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestPutSteadyStateAllocs(t *testing.T) {
	cl := allocContractCluster(t)
	w := cl.Writer()
	for i := 0; i < 64; i++ { // warm pooled round state and map buckets
		if err := w.Write("warm"); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		if err := w.Write("steady-state-value"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > steadyStateAllocBudget+0.5 {
		t.Errorf("steady-state Write: %.1f allocs/op, budget %d", allocs, steadyStateAllocBudget)
	}
	if !w.LastMeta().Fast {
		t.Fatal("writes were not fast; the measurement did not hit the steady-state path")
	}
}

func TestGetSteadyStateAllocs(t *testing.T) {
	cl := allocContractCluster(t)
	if err := cl.Writer().Write("stored"); err != nil {
		t.Fatal(err)
	}
	r := cl.Reader(0)
	for i := 0; i < 64; i++ {
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > steadyStateAllocBudget+0.5 {
		t.Errorf("steady-state Read: %.1f allocs/op, budget %d", allocs, steadyStateAllocBudget)
	}
	if !r.LastMeta().Fast() {
		t.Fatal("reads were not fast; the measurement did not hit the steady-state path")
	}
}

// durableAllocBudget is the durability tax the WAL is allowed to add:
// a disk-backed cluster (file backend, batched group-commit fsyncs) may
// cost at most 2 allocations/op more than the same cluster writing
// through in-memory backends. The WAL encode path reuses per-server
// record buffers (storage.AppendRecord) and the group-commit batches
// reuse their arenas, so steady state adds ~0; the budget leaves room
// for the amortized arena growth and the occasional compaction cycle
// inside the measurement window.
const durableAllocBudget = 2

// measureWriteAllocs brings up a disk-backed cluster over p and returns
// the steady-state allocations per fast write.
func measureWriteAllocs(t *testing.T, p storage.Provider) float64 {
	t.Helper()
	cl, err := NewCluster(Config{T: 1, B: 0, Fw: 0, NumReaders: 1}, WithStorage(p))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	w := cl.Writer()
	for i := 0; i < 64; i++ {
		if err := w.Write("warm"); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		if err := w.Write("steady-state-value"); err != nil {
			t.Fatal(err)
		}
	})
	if !w.LastMeta().Fast {
		t.Fatal("writes were not fast; the measurement did not hit the steady-state path")
	}
	return allocs
}

// TestDurableFileWriteAllocOverhead pins the PR 8 acceptance bound:
// file WAL + fsync batching within durableAllocBudget of the memory
// backend, measured on identical clusters and traffic. Both backends
// run their default compaction, so the comparison includes the same
// amortized snapshot work.
func TestDurableFileWriteAllocOverhead(t *testing.T) {
	factory := func() storage.Automaton { return NewServer() }
	mem := measureWriteAllocs(t, storage.NewMemProvider(factory))
	file := measureWriteAllocs(t, storage.NewDirProvider(t.TempDir(), factory,
		storage.WithSyncMode(storage.SyncBatched)))
	t.Logf("steady-state write: memory %.1f allocs/op, file %.1f allocs/op", mem, file)
	if file > mem+durableAllocBudget+0.5 {
		t.Errorf("file backend costs %.1f allocs/op over memory's %.1f, budget +%d",
			file-mem, mem, durableAllocBudget)
	}
}

// TestMWFastPathWriteAllocs pins the speculative multi-writer path to
// the single-writer allocation contract: once the stamp cache is warm
// and the key is quiet, an MW Put elides the query round and its hot
// path costs no more than the published Fig. 1 write — the same
// 1 + S message boxings. The query-round slow path (NoSpec) may spend
// up to double: it boxes one READ request plus S READ_ACKs on top.
func TestMWFastPathWriteAllocs(t *testing.T) {
	measure := func(noSpec bool) (float64, WriteMeta) {
		cl, err := NewCluster(Config{T: 1, B: 0, Fw: 0, NumReaders: 1,
			Writers: 2, NoSpec: noSpec})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		w := cl.WriterN(0)
		for i := 0; i < 64; i++ {
			if err := w.Write("warm"); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(300, func() {
			if err := w.Write("steady-state-value"); err != nil {
				t.Fatal(err)
			}
		})
		return allocs, w.LastMeta()
	}

	spec, m := measure(false)
	if !m.Fast || !m.Spec || m.Queried {
		t.Fatalf("measurement missed the speculative fast path: %+v", m)
	}
	if spec > steadyStateAllocBudget+0.5 {
		t.Errorf("speculative MW write: %.1f allocs/op, budget %d (single-writer contract)",
			spec, steadyStateAllocBudget)
	}

	slow, m := measure(true)
	if !m.Fast || m.Spec || !m.Queried {
		t.Fatalf("NoSpec measurement missed the query path: %+v", m)
	}
	if slow > 2*steadyStateAllocBudget+0.5 {
		t.Errorf("query-round MW write: %.1f allocs/op, budget %d", slow, 2*steadyStateAllocBudget)
	}
	t.Logf("MW write allocs/op: speculative %.1f, query-round %.1f", spec, slow)
}

// TestNewServerZeroMapAllocs pins the lazy-state contract: an idle
// register costs the Server struct alone — the per-reader maps appear
// only when a slow READ first touches them.
func TestNewServerZeroMapAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		s := NewServer()
		if s.frozen != nil || s.readerTS != nil {
			t.Fatal("fresh server eagerly allocated its per-reader maps")
		}
	})
	// Exactly one allocation: the Server struct itself.
	if allocs > 1.5 {
		t.Errorf("NewServer: %.1f allocs, want 1 (struct only, zero maps)", allocs)
	}
}
