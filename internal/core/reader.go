package core

import (
	"fmt"
	"time"

	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// ReadMeta describes the last completed READ: query rounds, whether a
// write-back was necessary, and the selected pair.
type ReadMeta struct {
	TSR         types.ReaderTS
	QueryRounds int  // READ rounds until a candidate was selected
	WroteBack   bool // whether the 3-round write-back ran
	Returned    types.Tagged
}

// Rounds returns the total communication round-trips of the READ: the
// query rounds plus three write-back rounds when a write-back ran. A
// fast READ has Rounds() == 1.
func (m ReadMeta) Rounds() int {
	if m.WroteBack {
		return m.QueryRounds + 3
	}
	return m.QueryRounds
}

// Fast reports whether the READ completed in a single round-trip.
func (m ReadMeta) Fast() bool { return m.Rounds() == 1 }

// Reader implements the READ protocol of Figure 2. A Reader is not
// safe for concurrent use: each reader process invokes one operation at
// a time (wait-freedom is across clients, not within one) — which is
// what makes its round state poolable. The view, timers, round-ack set
// and outgoing buffer live on the Reader and are reset per READ instead
// of reallocated, so a steady-state fast READ allocates nothing beyond
// the messages themselves (DESIGN.md §5).
type Reader struct {
	cfg Config
	ep  transport.Endpoint
	id  types.ProcID

	tsr types.ReaderTS

	// pooled per-operation round state, reset per READ
	view       *View
	opTimer    *time.Timer
	roundTimer *time.Timer
	roundSeen  []bool // this round's ack set, slot per server
	outBuf     []transport.Outgoing
	serverIDs  []types.ProcID // cached broadcast target list

	lastMeta ReadMeta
	stats    OpStats
}

// NewReader creates reader client id on the given endpoint.
func NewReader(cfg Config, id types.ProcID, ep transport.Endpoint) *Reader {
	return &Reader{cfg: cfg, ep: ep, id: id}
}

// ID returns the reader's process id.
func (r *Reader) ID() types.ProcID { return r.id }

// LastMeta returns metadata about the most recent completed READ.
func (r *Reader) LastMeta() ReadMeta { return r.lastMeta }

// resetView prepares the reusable view for a READ with the current tsr.
func (r *Reader) resetView() *View {
	if r.view == nil {
		r.view = NewView(r.cfg, r.tsr)
	} else {
		r.view.Reset(r.tsr)
	}
	return r.view
}

// resetRoundSeen clears the per-round ack set.
func (r *Reader) resetRoundSeen() {
	if r.roundSeen == nil {
		r.roundSeen = make([]bool, r.cfg.S())
	} else {
		clear(r.roundSeen)
	}
}

// Read returns the register's value: the value of a concurrent write,
// or the last value written. The returned Tagged carries the value and
// the timestamp the writer assigned to it (the k of wr_k).
func (r *Reader) Read() (types.Tagged, error) {
	m := r.cfg.Metrics
	if m == nil {
		return r.read()
	}
	t0 := time.Now()
	v, err := r.read()
	if err == nil {
		m.observeRead(r.lastMeta, time.Since(t0))
	}
	return v, err
}

func (r *Reader) read() (types.Tagged, error) {
	opDeadline := resetTimer(&r.opTimer, r.cfg.opTimeout())
	defer opDeadline.Stop()

	// Fig. 2 lines 12–13: new READ timestamp, fresh view.
	r.tsr++
	view := r.resetView()

	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	expired := false
	rnd := 0
	var sel types.Tagged
	for {
		// Fig. 2 lines 15–16: next round, query all servers.
		rnd++
		if err := r.broadcast(wire.Read{TSR: r.tsr, Round: rnd}); err != nil {
			return types.Tagged{}, err
		}
		timer = resetTimer(&r.roundTimer, r.cfg.roundTimeout())
		inGrace := false

		// Fig. 2 line 17: wait for S−t acks of this round, and in round
		// 1 also for the synchrony timer (early exit when all S servers
		// answered this round). A timer expiry below a quorum starts
		// the retransmitGrace cycle: after the grace the broadcast is
		// re-sent (see the retransmitGrace doc — duplicates are
		// idempotent on servers, and a lost broadcast would otherwise
		// wedge the round until the operation deadline).
		r.resetRoundSeen()
		roundAcks := 0
		for roundAcks < r.cfg.S() &&
			!(roundAcks >= r.cfg.Quorum() && (rnd > 1 || expired)) {
			select {
			case env, ok := <-r.ep.Recv():
				if !ok {
					return types.Tagged{}, transport.ErrClosed
				}
				roundAcks += r.acceptAck(view, rnd, env)
			case <-timer.C:
				expired = true
				if roundAcks < r.cfg.Quorum() {
					if inGrace {
						r.cfg.Metrics.retransmit()
						if err := r.broadcast(wire.Read{TSR: r.tsr, Round: rnd}); err != nil {
							return types.Tagged{}, err
						}
					} else {
						r.cfg.Metrics.starved()
					}
					inGrace = true
					timer = resetTimer(&r.roundTimer, retransmitGrace)
				}
			case <-opDeadline.C:
				return types.Tagged{}, fmt.Errorf("READ(tsr=%d) round %d: %w", r.tsr, rnd, ErrOpTimeout)
			}
		}
		r.drainAcks(view, rnd)

		// Fig. 2 lines 18–20: stop as soon as a candidate exists.
		if c, ok := view.Select(); ok {
			sel = c
			break
		}
	}

	// Fig. 2 line 21: write back unless the READ is provably complete
	// after a fast first round.
	wroteBack := false
	if !view.Fast(sel) || rnd > 1 {
		if err := r.writeBack(sel, opDeadline); err != nil {
			return types.Tagged{}, err
		}
		wroteBack = true
	}
	r.lastMeta = ReadMeta{TSR: r.tsr, QueryRounds: rnd, WroteBack: wroteBack, Returned: sel}
	r.stats.record(r.lastMeta.Rounds(), r.lastMeta.Rounds() == 1)
	return sel, nil
}

// acceptAck folds one envelope into the view and reports whether it
// counted toward the current round's quorum; any fresher-round ack
// updates the per-server arrays (Fig. 2 lines 23–25).
func (r *Reader) acceptAck(view *View, rnd int, env wire.Envelope) int {
	a, ok := env.Msg.(wire.ReadAck)
	// Validate the envelope's interface value, not the unboxed a —
	// re-boxing it would allocate on every ack.
	if !ok || !validServer(r.cfg, env.From) || a.TSR != r.tsr || wire.Validate(env.Msg) != nil {
		return 0
	}
	if a.Round > rnd {
		return 0 // no correct server answers a round not yet started
	}
	counted := 0
	if a.Round == rnd {
		if i := env.From.Index(); !r.roundSeen[i] {
			r.roundSeen[i] = true
			counted = 1
		}
	}
	view.Update(env.From, a.Round, a.PW, a.W, a.VW, a.Frozen)
	return counted
}

// drainAcks consumes acks already queued when the round's wait
// condition was met, so predicate evaluation sees every reply that
// arrived in time.
func (r *Reader) drainAcks(view *View, rnd int) {
	for {
		select {
		case env, ok := <-r.ep.Recv():
			if !ok {
				return
			}
			r.acceptAck(view, rnd, env)
		default:
			return
		}
	}
}

// writeBack runs the three-round write-back of Fig. 2 lines 26–28,
// following the W-phase communication pattern with the reader's
// timestamp as the tag.
func (r *Reader) writeBack(c types.Tagged, opDeadline *time.Timer) error {
	for round := 1; round <= 3; round++ {
		if err := r.broadcast(wire.W{Round: round, Tag: int64(r.tsr), C: c}); err != nil {
			return err
		}
		// Retransmit after the retransmitGrace cycle while below a
		// quorum (see the query loop): write-back rounds are
		// idempotent on servers.
		timer := resetTimer(&r.roundTimer, r.cfg.roundTimeout())
		inGrace := false
		r.resetRoundSeen()
		got := 0
		for got < r.cfg.Quorum() {
			select {
			case env, ok := <-r.ep.Recv():
				if !ok {
					return transport.ErrClosed
				}
				a, isAck := env.Msg.(wire.WAck)
				if !isAck || !validServer(r.cfg, env.From) || a.Round != round || a.Tag != int64(r.tsr) {
					continue
				}
				if i := env.From.Index(); !r.roundSeen[i] {
					r.roundSeen[i] = true
					got++
				}
			case <-timer.C:
				if inGrace {
					r.cfg.Metrics.retransmit()
					if err := r.broadcast(wire.W{Round: round, Tag: int64(r.tsr), C: c}); err != nil {
						return err
					}
				} else {
					r.cfg.Metrics.starved()
				}
				inGrace = true
				timer = resetTimer(&r.roundTimer, retransmitGrace)
			case <-opDeadline.C:
				return fmt.Errorf("READ(tsr=%d) write-back round %d: %w", r.tsr, round, ErrOpTimeout)
			}
		}
	}
	return nil
}

// broadcast fans m out to every server through the reader's reusable
// outgoing buffer and cached id list (building a server id is a string
// allocation; building S of them per round is not).
func (r *Reader) broadcast(m wire.Message) error {
	if r.serverIDs == nil {
		r.serverIDs = types.ServerIDs(r.cfg.S())
	}
	out := r.outBuf[:0]
	for _, id := range r.serverIDs {
		out = append(out, transport.Outgoing{To: id, Msg: m})
	}
	r.outBuf = out
	return transport.SendAll(r.ep, out)
}
