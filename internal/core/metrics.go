package core

import (
	"time"

	"luckystore/internal/metrics"
)

// Metrics is the core layer's live client-side instrumentation
// (DESIGN.md §13): per-operation counters (rounds, fast/slow/spec
// engagement) and latency histograms for WRITE and READ. A nil
// *Metrics disables everything — every recording method is nil-safe,
// so the hot paths carry only a pointer test. All instruments are
// atomic; recording allocates nothing, preserving the PR-4 allocation
// contracts with instrumentation enabled.
//
// One Metrics is shared by every Writer and Reader wired to the same
// Config (e.g. all per-key handles of a kv.Store): the counters
// aggregate across keys and clients, which is what an operator wants
// from /metrics — per-key cardinality lives in the key-class
// histograms of the kv layer, not here.
type Metrics struct {
	WriteOps    *metrics.Counter // completed WRITEs
	WriteFast   *metrics.Counter // WRITEs that skipped the W phase
	WriteRounds *metrics.Counter // total WRITE round-trips
	ReadOps     *metrics.Counter
	ReadFast    *metrics.Counter
	ReadRounds  *metrics.Counter

	// Speculative MW fast-path telemetry (DESIGN.md §12).
	SpecAttempts *metrics.Counter
	SpecOps      *metrics.Counter
	SpecFlips    *metrics.Counter
	Queries      *metrics.Counter // MW stamp-query rounds paid

	// Timer-starvation telemetry: Starved counts round-timer expiries
	// below a quorum (scheduling jitter or loss pushed acks past the
	// synchrony timer), Retransmits the re-broadcasts the grace cycle
	// then issued (see retransmitGrace).
	Starved     *metrics.Counter
	Retransmits *metrics.Counter

	WriteLatency *metrics.Histogram
	ReadLatency  *metrics.Histogram
}

// NewMetrics wires the core instruments into reg. Idempotent per
// registry: a second call returns instruments backed by the same
// series.
func NewMetrics(reg *metrics.Registry) *Metrics {
	ops := func(op string) metrics.Label { return metrics.L("op", op) }
	return &Metrics{
		WriteOps:     reg.Counter("lucky_core_ops_total", "Completed core register operations.", ops("write")),
		WriteFast:    reg.Counter("lucky_core_fast_ops_total", "Operations that completed on the one-round fast path.", ops("write")),
		WriteRounds:  reg.Counter("lucky_core_rounds_total", "Total communication round-trips spent by operations.", ops("write")),
		ReadOps:      reg.Counter("lucky_core_ops_total", "Completed core register operations.", ops("read")),
		ReadFast:     reg.Counter("lucky_core_fast_ops_total", "Operations that completed on the one-round fast path.", ops("read")),
		ReadRounds:   reg.Counter("lucky_core_rounds_total", "Total communication round-trips spent by operations.", ops("read")),
		SpecAttempts: reg.Counter("lucky_core_spec_attempts_total", "Speculative MW pre-writes sent (DESIGN.md §12)."),
		SpecOps:      reg.Counter("lucky_core_spec_ops_total", "WRITEs completed on the speculative MW fast path."),
		SpecFlips:    reg.Counter("lucky_core_spec_flips_total", "Speculative attempts aborted to the query-round slow path."),
		Queries:      reg.Counter("lucky_core_stamp_queries_total", "MW stamp-query rounds paid by WRITEs."),
		Starved:      reg.Counter("lucky_core_timer_starved_total", "Round-timer expiries below a quorum (jitter or loss)."),
		Retransmits:  reg.Counter("lucky_core_retransmits_total", "Round re-broadcasts issued by the retransmit grace cycle."),
		WriteLatency: reg.Histogram("lucky_core_op_latency_ns", "Core operation latency, client-observed.", ops("write")),
		ReadLatency:  reg.Histogram("lucky_core_op_latency_ns", "Core operation latency, client-observed.", ops("read")),
	}
}

// observeWrite folds one completed WRITE into the instruments.
func (m *Metrics) observeWrite(meta WriteMeta, d time.Duration) {
	if m == nil {
		return
	}
	m.WriteOps.Inc()
	m.WriteRounds.Add(int64(meta.Rounds))
	if meta.Fast {
		m.WriteFast.Inc()
	}
	if meta.Queried {
		m.Queries.Inc()
	}
	// One speculative attempt per Spec completion, one per recorded
	// ghost (an attempt that aborted inside this same operation).
	if meta.Spec {
		m.SpecAttempts.Inc()
		m.SpecOps.Inc()
	}
	if !meta.Ghost.IsZero() {
		m.SpecAttempts.Inc()
		m.SpecFlips.Inc()
	}
	m.WriteLatency.Observe(d)
}

// observeRead folds one completed READ into the instruments.
func (m *Metrics) observeRead(meta ReadMeta, d time.Duration) {
	if m == nil {
		return
	}
	m.ReadOps.Inc()
	m.ReadRounds.Add(int64(meta.Rounds()))
	if meta.Fast() {
		m.ReadFast.Inc()
	}
	m.ReadLatency.Observe(d)
}

// starved records one round-timer expiry below a quorum.
func (m *Metrics) starved() {
	if m != nil {
		m.Starved.Inc()
	}
}

// retransmit records one grace-cycle re-broadcast.
func (m *Metrics) retransmit() {
	if m != nil {
		m.Retransmits.Inc()
	}
}

// ServerMetrics is the server automata's shared instrumentation: one
// struct per server process, shared by every per-key automaton it
// runs, counting the protocol messages it handles. The spec/non-spec
// PW split and the NACK count are the server-side view of the MW fast
// path — a daemon exports them without any client cooperation. Nil
// disables; all methods are nil-safe and allocation-free.
type ServerMetrics struct {
	PW      *metrics.Counter // non-speculative pre-writes applied
	PWSpec  *metrics.Counter // speculative pre-writes accepted
	PWNacks *metrics.Counter // speculative pre-writes rejected (PW_NACK)
	Reads   *metrics.Counter // READ/query rounds answered
	Ws      *metrics.Counter // W-phase and write-back rounds applied
}

// NewServerMetrics wires the server instruments into reg.
func NewServerMetrics(reg *metrics.Registry) *ServerMetrics {
	msg := func(t string) metrics.Label { return metrics.L("type", t) }
	return &ServerMetrics{
		PW:      reg.Counter("lucky_server_msgs_total", "Protocol messages handled by the server automata.", msg("pw")),
		PWSpec:  reg.Counter("lucky_server_msgs_total", "Protocol messages handled by the server automata.", msg("pw_spec")),
		PWNacks: reg.Counter("lucky_server_pw_nacks_total", "Speculative pre-writes rejected with PW_NACK."),
		Reads:   reg.Counter("lucky_server_msgs_total", "Protocol messages handled by the server automata.", msg("read")),
		Ws:      reg.Counter("lucky_server_msgs_total", "Protocol messages handled by the server automata.", msg("w")),
	}
}

func (m *ServerMetrics) pw(spec bool) {
	if m == nil {
		return
	}
	if spec {
		m.PWSpec.Inc()
	} else {
		m.PW.Inc()
	}
}

func (m *ServerMetrics) pwNack() {
	if m != nil {
		m.PWNacks.Inc()
	}
}

func (m *ServerMetrics) read() {
	if m != nil {
		m.Reads.Inc()
	}
}

func (m *ServerMetrics) w() {
	if m != nil {
		m.Ws.Inc()
	}
}

// SetMetrics attaches shared server instrumentation to this automaton.
// Factories set it right after NewServer, before the automaton steps;
// the same ServerMetrics is shared by every per-key automaton of a
// server process.
func (s *Server) SetMetrics(m *ServerMetrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sm = m
}
