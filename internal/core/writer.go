package core

import (
	"errors"
	"fmt"
	"time"

	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// ErrBottomValue rejects WRITE(⊥): the initial value is not a valid
// input for a WRITE (Section 2.2).
var ErrBottomValue = errors.New("cannot write the initial value ⊥ (empty value)")

// WriteMeta describes the last completed WRITE: how many communication
// round-trips it took and whether it used the fast path.
type WriteMeta struct {
	TS     types.TS
	Rounds int
	Fast   bool
	PWAcks int // valid PW_ACKs held when the fast-path check ran
}

// WriteFault scripts a crash-faulty writer, used by tests and by the
// experiments that reproduce the proof runs (Fig. 4) and the ghost
// scenario (Appendix E). A nil *WriteFault is a correct writer.
type WriteFault struct {
	// PWTo restricts the recipients of the PW message; nil means all
	// servers ("the messages sent by the writer are delivered only to
	// B1" steps are modeled as the crashed writer never sending them).
	PWTo []types.ProcID
	// CrashAfterPW stops the writer right after sending PW: the
	// operation never completes and the writer takes no further steps.
	CrashAfterPW bool
	// WTo restricts recipients of the W message per round (2 and 3).
	WTo map[int][]types.ProcID
	// CrashAfterW stops the writer right after sending the W message of
	// the given round.
	CrashAfterW map[int]bool
}

// Writer implements the WRITE protocol of Figure 1. A Writer is not
// safe for concurrent use: the model has a single writer that invokes
// one operation at a time.
type Writer struct {
	cfg Config
	ep  transport.Endpoint

	ts      types.TS
	pw, w   types.Tagged
	readTS  map[types.ProcID]types.ReaderTS
	frozen  []types.FrozenEntry
	crashed bool

	lastMeta WriteMeta
	stats    OpStats
}

// NewWriter creates the writer client on the given endpoint.
func NewWriter(cfg Config, ep transport.Endpoint) *Writer {
	return &Writer{
		cfg:    cfg,
		ep:     ep,
		pw:     types.Bottom(),
		w:      types.Bottom(),
		readTS: make(map[types.ProcID]types.ReaderTS),
	}
}

// Write stores v in the register. It returns once atomicity of the
// write is secured: after one round-trip on the fast path (S − fw
// PW_ACKs within the synchrony timer), otherwise after the two
// additional W rounds.
func (w *Writer) Write(v types.Value) error { return w.write(v, nil) }

// WriteWithFault runs a WRITE with scripted crash behavior; it returns
// ErrCrashed at the scripted point and leaves the writer permanently
// crashed.
func (w *Writer) WriteWithFault(v types.Value, f *WriteFault) error { return w.write(v, f) }

// LastMeta returns metadata about the most recent completed WRITE.
func (w *Writer) LastMeta() WriteMeta { return w.lastMeta }

// NextTS returns the timestamp the next WRITE will use (for tests).
func (w *Writer) NextTS() types.TS { return w.ts + 1 }

func (w *Writer) write(v types.Value, f *WriteFault) error {
	if w.crashed {
		return ErrCrashed
	}
	if v == "" {
		return ErrBottomValue
	}
	opDeadline := time.NewTimer(w.cfg.opTimeout())
	defer opDeadline.Stop()

	// Pre-write phase (Fig. 1 lines 3–4): advance the timestamp, ship
	// PW with the frozen set left over from the previous WRITE's
	// freezevalues().
	w.ts++
	w.pw = types.Tagged{TS: w.ts, Val: v}
	pwMsg := wire.PW{TS: w.ts, PW: w.pw, W: w.w, Frozen: w.frozen}
	if err := w.sendTo(pwTargets(w.cfg, f), pwMsg); err != nil {
		return err
	}
	if f != nil && f.CrashAfterPW {
		w.crashed = true
		return ErrCrashed
	}

	// Fig. 1 line 5: wait for S−t valid PW_ACKs and timer expiry (early
	// exit when all S servers have answered — nothing more can arrive).
	timer := time.NewTimer(w.cfg.roundTimeout())
	defer timer.Stop()
	acks := make(map[types.ProcID]wire.PWAck, w.cfg.S())
	expired := false
	for len(acks) < w.cfg.S() && !(len(acks) >= w.cfg.Quorum() && expired) {
		select {
		case env, ok := <-w.ep.Recv():
			if !ok {
				return transport.ErrClosed
			}
			w.acceptPWAck(acks, env)
		case <-timer.C:
			expired = true
		case <-opDeadline.C:
			return fmt.Errorf("WRITE(ts=%d) pre-write phase: %w", w.ts, ErrOpTimeout)
		}
	}
	w.drainPWAcks(acks)

	// Fig. 1 lines 6–7: record the value as written, then detect slow
	// READs and freeze values for them.
	w.frozen = nil
	w.w = w.pw
	w.freezeValues(acks)

	// Fig. 1 line 8: fast path.
	if len(acks) >= w.cfg.FastWriteAcks() {
		w.lastMeta = WriteMeta{TS: w.ts, Rounds: 1, Fast: true, PWAcks: len(acks)}
		w.stats.record(1)
		return nil
	}

	// Write phase (Fig. 1 lines 9–11): two more rounds.
	for round := 2; round <= 3; round++ {
		msg := wire.W{Round: round, Tag: int64(w.ts), C: w.pw}
		if err := w.sendTo(wTargets(w.cfg, f, round), msg); err != nil {
			return err
		}
		if f != nil && f.CrashAfterW[round] {
			w.crashed = true
			return ErrCrashed
		}
		if err := w.awaitWAcks(round, int64(w.ts), opDeadline); err != nil {
			return err
		}
	}
	w.lastMeta = WriteMeta{TS: w.ts, Rounds: 3, Fast: false, PWAcks: len(acks)}
	w.stats.record(3)
	return nil
}

// acceptPWAck records a structurally valid, correctly tagged PW_ACK
// from a server not yet counted.
func (w *Writer) acceptPWAck(acks map[types.ProcID]wire.PWAck, env wire.Envelope) {
	a, ok := env.Msg.(wire.PWAck)
	if !ok || !validServer(w.cfg, env.From) || a.TS != w.ts || wire.Validate(a) != nil {
		return
	}
	if _, dup := acks[env.From]; !dup {
		acks[env.From] = a
	}
}

// drainPWAcks consumes acks that are already queued when the wait
// condition is met, so the fast-path check of line 8 sees every reply
// that arrived within the timer.
func (w *Writer) drainPWAcks(acks map[types.ProcID]wire.PWAck) {
	for {
		select {
		case env, ok := <-w.ep.Recv():
			if !ok {
				return
			}
			w.acceptPWAck(acks, env)
		default:
			return
		}
	}
}

// freezeValues implements Fig. 1 lines 13–15: for every reader reported
// by at least b+1 servers with a READ timestamp above the writer's
// recorded one, advance the record to the (b+1)-st highest reported
// timestamp and freeze the current pre-written pair for that reader.
func (w *Writer) freezeValues(acks map[types.ProcID]wire.PWAck) {
	reported := make(map[types.ProcID][]types.ReaderTS)
	for _, a := range acks {
		seen := make(map[types.ProcID]bool, len(a.NewRead))
		for _, rs := range a.NewRead {
			if seen[rs.Reader] {
				continue // a malicious server may repeat a reader; count it once
			}
			seen[rs.Reader] = true
			if rs.TSR > w.readTS[rs.Reader] {
				reported[rs.Reader] = append(reported[rs.Reader], rs.TSR)
			}
		}
	}
	for rj, tsrs := range reported {
		if len(tsrs) < w.cfg.SafeThreshold() {
			continue
		}
		nth, ok := types.NthHighest(tsrs, w.cfg.B)
		if !ok {
			continue
		}
		w.readTS[rj] = nth
		w.frozen = append(w.frozen, types.FrozenEntry{Reader: rj, PW: w.pw, TSR: nth})
	}
}

// awaitWAcks waits for S−t valid WRITE_ACKs for the given round.
func (w *Writer) awaitWAcks(round int, tag int64, opDeadline *time.Timer) error {
	got := make(map[types.ProcID]bool, w.cfg.S())
	for len(got) < w.cfg.Quorum() {
		select {
		case env, ok := <-w.ep.Recv():
			if !ok {
				return transport.ErrClosed
			}
			a, isAck := env.Msg.(wire.WAck)
			if !isAck || !validServer(w.cfg, env.From) || a.Round != round || a.Tag != tag {
				continue
			}
			got[env.From] = true
		case <-opDeadline.C:
			return fmt.Errorf("WRITE(ts=%d) W round %d: %w", w.ts, round, ErrOpTimeout)
		}
	}
	return nil
}

func (w *Writer) sendTo(targets []types.ProcID, m wire.Message) error {
	out := make([]transport.Outgoing, len(targets))
	for i, id := range targets {
		out[i] = transport.Outgoing{To: id, Msg: m}
	}
	return transport.SendAll(w.ep, out)
}

func pwTargets(cfg Config, f *WriteFault) []types.ProcID {
	if f != nil && f.PWTo != nil {
		return f.PWTo
	}
	return types.ServerIDs(cfg.S())
}

func wTargets(cfg Config, f *WriteFault, round int) []types.ProcID {
	if f != nil && f.WTo != nil && f.WTo[round] != nil {
		return f.WTo[round]
	}
	return types.ServerIDs(cfg.S())
}

// validServer reports whether id names one of the cluster's S servers;
// clients ignore messages claiming other origins.
func validServer(cfg Config, id types.ProcID) bool {
	return id.IsServer() && id.Index() < cfg.S()
}
