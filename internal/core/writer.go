package core

import (
	"errors"
	"fmt"
	"time"

	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// ErrBottomValue rejects WRITE(⊥): the initial value is not a valid
// input for a WRITE (Section 2.2).
var ErrBottomValue = errors.New("cannot write the initial value ⊥ (empty value)")

// WriteMeta describes the last completed WRITE: the stamp it bound, how
// many communication round-trips it took and whether it used the fast
// path.
type WriteMeta struct {
	TS     types.TS
	Writer types.WID
	Rounds int
	Fast   bool
	PWAcks int // valid PW_ACKs held when the fast-path check ran
	// Queried reports that the MWMR stamp-query round ran (multi-writer
	// deployments only); it is included in Rounds.
	Queried bool
	// Contended reports that some server acknowledged the PW while
	// already holding a higher stamp — direct evidence another writer
	// raced this operation (wire v2's PW_ACK.Max).
	Contended bool
	// Spec reports that the operation completed on the speculative
	// multi-writer fast path: the stamp came from the writer's cache,
	// the query round was elided, and a full quorum acknowledged the
	// pre-write with zero NACKs (DESIGN.md §12).
	Spec bool
	// Ghost is the stamp of a speculative pre-write that was NACKed (or
	// starved of a quorum) and abandoned during this operation, zero
	// when none. The abandoned pair may linger in server pw fields, so
	// histories must record it as a failed write — concurrent readers
	// may legitimately return it (the crashed-writer ghost of Section 5,
	// inherited by aborted speculation; DESIGN.md §12).
	Ghost types.Stamp
}

// Stamp returns the composite stamp the WRITE bound.
func (m WriteMeta) Stamp() types.Stamp { return types.Stamp{Seq: m.TS, Writer: m.Writer} }

// Value returns the tagged pair the WRITE bound for value v.
func (m WriteMeta) Value(v types.Value) types.Tagged {
	return types.Tagged{TS: m.TS, W: m.Writer, Val: v}
}

// WriteFault scripts a crash-faulty writer, used by tests and by the
// experiments that reproduce the proof runs (Fig. 4) and the ghost
// scenario (Appendix E). A nil *WriteFault is a correct writer.
type WriteFault struct {
	// PWTo restricts the recipients of the PW message; nil means all
	// servers ("the messages sent by the writer are delivered only to
	// B1" steps are modeled as the crashed writer never sending them).
	PWTo []types.ProcID
	// CrashAfterPW stops the writer right after sending PW: the
	// operation never completes and the writer takes no further steps.
	CrashAfterPW bool
	// WTo restricts recipients of the W message per round (2 and 3).
	WTo map[int][]types.ProcID
	// CrashAfterW stops the writer right after sending the W message of
	// the given round.
	CrashAfterW map[int]bool
}

// Writer implements the WRITE protocol of Figure 1, generalized to
// multiple writers: each Writer has an explicit identity (part of the
// automaton contract, not a process-wide singleton), binds composite
// 〈seq, writer〉 stamps, and in multi-writer configurations runs a stamp
// query round before the pre-write so concurrent writers totally order
// their stamps. A Writer is not safe for concurrent use: each writer
// process invokes one operation at a time — which is also what makes
// its round state poolable. All per-operation machinery (timers, the
// PW_ACK set, the outgoing-message buffer, the freeze scratch) lives on
// the Writer and is reset per WRITE instead of reallocated, so a
// steady-state fast WRITE allocates nothing beyond the messages
// themselves (DESIGN.md §5).
//
// MWMR soundness hinges on one rule: a WRITE binds exactly one stamp,
// chosen before PW is sent and never revised. A writer that discovers
// mid-flight that it was outraced still completes its rounds at its own
// stamp — the operation simply linearizes before the higher-stamped
// write. Re-stamping after a contended PW would let one WRITE expose
// two stamps to readers, which breaks the stamp order's agreement with
// invocation order (a new-old-new inversion no stamp-based checker can
// see). See DESIGN.md §10.
type Writer struct {
	cfg Config
	ep  transport.Endpoint
	id  types.ProcID
	wid types.WID

	ts      types.TS    // sequence floor: seq of the last bound stamp
	last    types.Stamp // stamp of the last completed/installed write
	pw, w   types.Tagged
	readTS  map[types.ProcID]types.ReaderTS // nil until the first freeze
	frozen  []types.FrozenEntry
	crashed bool

	// Speculative fast-path state (multi-writer deployments only,
	// DESIGN.md §12). cachedMax is the highest stamp this writer has
	// observed on the wire — fed by query folds, PW_ACK/PW_NACK Max
	// fields and its own completed stamps. cacheOK records that the
	// cache reflects at least one quorum observation; calm is the
	// contention telemetry — cleared whenever an operation sees
	// contention evidence (a NACK or a higher Max in an ack), restored
	// by an uncontended completion. A WRITE speculates only when both
	// hold; correctness never depends on either (servers reject stale
	// speculative stamps), only the fast-path hit rate does.
	cachedMax types.Stamp
	cacheOK   bool
	calm      bool

	// serverIDs caches the all-servers broadcast target list.
	serverIDs []types.ProcID

	// pooled per-operation round state, reset per WRITE
	opTimer    *time.Timer
	roundTimer *time.Timer
	acks       []wire.PWAck // slot per server, valid where ackSeen
	ackSeen    []bool
	ackCount   int
	opTS       types.TS    // TS of the in-flight pre-write, matched by acceptPWAck
	nackSeen   bool        // a PW_NACK arrived for the in-flight speculative attempt
	nackMax    types.Stamp // highest Max any such NACK carried
	wackSeen   []bool
	outBuf     []transport.Outgoing
	qtsr       types.ReaderTS // stamp-query tag, incremented per query

	// freezeValues scratch, touched only when a slow READ is in
	// progress somewhere (nil/empty in steady state)
	reported map[types.ProcID][]types.ReaderTS
	dupSeen  map[types.ProcID]bool

	lastMeta WriteMeta
	stats    OpStats
}

// NewWriter creates the writer client with the given identity on the
// given endpoint. The id must be a writer ProcID (types.WriterIDN); its
// index becomes the writer component of every stamp this client binds.
func NewWriter(cfg Config, id types.ProcID, ep transport.Endpoint) *Writer {
	wi := id.WriterIndex()
	if wi < 0 {
		panic(fmt.Sprintf("core.NewWriter: %q is not a writer id", id))
	}
	return &Writer{
		cfg: cfg,
		ep:  ep,
		id:  id,
		wid: types.WID(wi),
		pw:  types.Bottom(),
		w:   types.Bottom(),
	}
}

// ID returns the writer's process id.
func (w *Writer) ID() types.ProcID { return w.id }

// Write stores v in the register. It returns once atomicity of the
// write is secured: after one round-trip on the fast path (S − fw
// PW_ACKs within the synchrony timer), otherwise after the two
// additional W rounds.
func (w *Writer) Write(v types.Value) error {
	m := w.cfg.Metrics
	if m == nil {
		return w.write(v, nil)
	}
	t0 := time.Now()
	err := w.write(v, nil)
	if err == nil {
		m.observeWrite(w.lastMeta, time.Since(t0))
	}
	return err
}

// WriteWithFault runs a WRITE with scripted crash behavior; it returns
// ErrCrashed at the scripted point and leaves the writer permanently
// crashed.
func (w *Writer) WriteWithFault(v types.Value, f *WriteFault) error { return w.write(v, f) }

// LastMeta returns metadata about the most recent completed WRITE.
func (w *Writer) LastMeta() WriteMeta { return w.lastMeta }

// WriteAt runs a WRITE that binds exactly the pair c — stamp included,
// writer component and all — instead of advancing this writer's own
// stamp. It is the handoff primitive for scale-out rebalancing
// (internal/router): when a key migrates between clusters, the
// destination writer installs the source's latest completed pair at its
// original stamp, keeping the key's stamp sequence monotonic across the
// move (the checker matches reads to writes by stamp, and servers only
// ever replace strictly older pairs, so re-binding an existing
// 〈stamp,val〉 is safe and idempotent). Because the stamp is replayed,
// not chosen, WriteAt never runs the MWMR query round.
//
// A pair at or below the writer's last bound stamp is a no-op: this
// writer already completed a WRITE at least as new, so the register
// already holds a pair ≥ c. Subsequent Writes continue from seq
// c.TS + 1.
func (w *Writer) WriteAt(c types.Tagged) error {
	if w.crashed {
		return ErrCrashed
	}
	if c.IsBottom() || c.Val == "" {
		return ErrBottomValue
	}
	if !w.last.Less(c.Stamp()) {
		return nil
	}
	opDeadline := resetTimer(&w.opTimer, w.cfg.opTimeout())
	defer opDeadline.Stop()
	return w.bind(c, nil, false, types.Stamp0, opDeadline)
}

// NextTS returns the timestamp the next WRITE will use (for tests).
func (w *Writer) NextTS() types.TS { return w.ts + 1 }

// resetTimer arms a pooled timer, creating it on first use. Go 1.23+
// timer semantics make Reset safe without draining: a pending fire from
// a previous operation is discarded by the Reset.
// retransmitGrace separates the synchrony verdict from loss recovery:
// a wait loop whose round timer expired below a quorum re-arms for
// this long before re-sending its round message. Scheduling jitter on
// a loaded machine routinely delays an in-flight ack past a round
// timer tuned to link delay; actual loss (a TCP conn silently
// swallowing one write after its peer restarts) does not resolve
// itself at any timescale. The grace keeps spurious retransmissions
// out of the message-complexity measurements while still unwedging a
// genuinely lost broadcast well inside any operation deadline.
// Retransmission itself is always safe: server transitions are
// idempotent max-merges, and duplicate messages are already part of
// the chaos fault model.
const retransmitGrace = 50 * time.Millisecond

func resetTimer(t **time.Timer, d time.Duration) *time.Timer {
	if *t == nil {
		*t = time.NewTimer(d)
	} else {
		(*t).Reset(d)
	}
	return *t
}

// resetAcks clears the PW_ACK/PW_NACK state for a new pre-write round.
func (w *Writer) resetAcks() {
	if w.acks == nil {
		w.acks = make([]wire.PWAck, w.cfg.S())
		w.ackSeen = make([]bool, w.cfg.S())
	} else {
		clear(w.acks)
		clear(w.ackSeen)
	}
	w.ackCount = 0
	w.nackSeen = false
	w.nackMax = types.Stamp0
}

func (w *Writer) write(v types.Value, f *WriteFault) error {
	if w.crashed {
		return ErrCrashed
	}
	if v == "" {
		return ErrBottomValue
	}
	opDeadline := resetTimer(&w.opTimer, w.cfg.opTimeout())
	defer opDeadline.Stop()

	// Choose the stamp. Single-writer deployments take the published
	// Fig. 1 path: advance the sequence, no extra round. Multi-writer
	// deployments totally order the stamp against concurrent writers —
	// speculatively from the cache when the telemetry allows it, by an
	// explicit quorum query otherwise. Once chosen, the stamp of a
	// (non-aborted) attempt is final, whatever the PW round later
	// reveals about the race.
	seq := w.ts
	queried := false
	var ghost types.Stamp
	if w.cfg.MW() {
		if f == nil && !w.cfg.NoSpec && w.cacheOK && w.calm {
			// Speculative fast path (DESIGN.md §12): bind one above the
			// cached maximum and let the servers arbitrate. A NACK or a
			// starved quorum aborts the attempt with no writer state
			// change and falls through to the query-round slow path.
			sseq := seq
			if sseq < w.cachedMax.Seq {
				sseq = w.cachedMax.Seq
			}
			c := types.Tagged{TS: sseq + 1, W: w.wid, Val: v}
			done, err := w.bindSpec(c, opDeadline)
			if err != nil || done {
				return err
			}
			// The abandoned pair may linger on servers that acknowledged
			// it before the verdict: record it as this operation's ghost
			// and retry strictly above it, so the completed write can
			// never share the ghost's stamp.
			ghost = c.Stamp()
			if seq < c.TS {
				seq = c.TS
			}
		}
		qmax, err := w.queryStamp(opDeadline)
		if err != nil {
			return err
		}
		if seq < qmax.Seq {
			seq = qmax.Seq
		}
		w.foldCache(qmax)
		w.cacheOK = true
		queried = true
	}
	c := types.Tagged{TS: seq + 1, W: w.wid, Val: v}
	return w.bind(c, f, queried, ghost, opDeadline)
}

// foldCache raises the cached maximum stamp to at least s.
func (w *Writer) foldCache(s types.Stamp) {
	if w.cachedMax.Less(s) {
		w.cachedMax = s
	}
}

// queryStamp is the MWMR stamp-discovery round: broadcast a round-1
// READ (servers answer a writer's round-1 query statelessly — it never
// touches the freezing machinery) and fold the plain maximum over every
// stamp in a quorum of acks.
//
// The plain maximum — not a (b+1)-st-highest fold — is deliberate. A
// completed WRITE is guaranteed into only one honest server of the
// quorum intersection, so demanding b+1 witnesses for a stamp could
// discard the latest completed write and re-issue its sequence number —
// a lost update. The cost is that a single malicious server can inflate
// the sequence component; that burns int64 headroom but never breaks
// atomicity, since stamps only need to keep growing (DESIGN.md §10).
func (w *Writer) queryStamp(opDeadline *time.Timer) (types.Stamp, error) {
	w.qtsr++
	if err := w.sendTo(w.allServers(), wire.Read{TSR: w.qtsr, Round: 1}); err != nil {
		return types.Stamp0, err
	}
	if w.wackSeen == nil {
		w.wackSeen = make([]bool, w.cfg.S())
	} else {
		clear(w.wackSeen)
	}
	// Retransmit the query after the retransmitGrace cycle while below
	// a quorum: a round-1 READ is stateless on servers, so re-asking
	// is always safe.
	timer := resetTimer(&w.roundTimer, w.cfg.roundTimeout())
	defer timer.Stop()
	inGrace := false
	got := 0
	qmax := types.Stamp0
	for got < w.cfg.Quorum() {
		select {
		case <-timer.C:
			if inGrace {
				w.cfg.Metrics.retransmit()
				if err := w.sendTo(w.allServers(), wire.Read{TSR: w.qtsr, Round: 1}); err != nil {
					return types.Stamp0, err
				}
			} else {
				w.cfg.Metrics.starved()
			}
			inGrace = true
			timer = resetTimer(&w.roundTimer, retransmitGrace)
		case env, ok := <-w.ep.Recv():
			if !ok {
				return types.Stamp0, transport.ErrClosed
			}
			a, isAck := env.Msg.(wire.ReadAck)
			if !isAck || !validServer(w.cfg, env.From) || a.TSR != w.qtsr || a.Round != 1 || wire.Validate(env.Msg) != nil {
				continue
			}
			if i := env.From.Index(); !w.wackSeen[i] {
				w.wackSeen[i] = true
				got++
				if s := a.PW.Stamp(); qmax.Less(s) {
					qmax = s
				}
				if s := a.W.Stamp(); qmax.Less(s) {
					qmax = s
				}
				if s := a.VW.Stamp(); qmax.Less(s) {
					qmax = s
				}
			}
		case <-opDeadline.C:
			return types.Stamp0, fmt.Errorf("WRITE stamp query: %w", ErrOpTimeout)
		}
	}
	return qmax, nil
}

// bind runs the PW and W phases of Fig. 1 at the already-chosen pair c.
// The stamp is immutable from here on (see the Writer doc): contention
// observed in the PW_ACKs is recorded in the meta, never acted on.
// ghost is the stamp of an aborted speculative attempt earlier in the
// same operation (zero when none), threaded into the meta so drivers
// can record it as a failed write.
func (w *Writer) bind(c types.Tagged, f *WriteFault, queried bool, ghost types.Stamp, opDeadline *time.Timer) error {
	// Pre-write phase (Fig. 1 lines 3–4): ship PW with the frozen set
	// left over from the previous WRITE's freezevalues().
	w.ts = c.TS
	w.last = c.Stamp()
	w.pw = c
	w.opTS = c.TS
	pwMsg := wire.PW{TS: c.TS, PW: w.pw, W: w.w, Frozen: w.frozen}
	if err := w.sendTo(w.pwTargets(f), pwMsg); err != nil {
		return err
	}
	if f != nil && f.CrashAfterPW {
		w.crashed = true
		return ErrCrashed
	}

	// Fig. 1 line 5: wait for S−t valid PW_ACKs and timer expiry (early
	// exit when all S servers have answered — nothing more can arrive).
	timer := resetTimer(&w.roundTimer, w.cfg.roundTimeout())
	defer timer.Stop()
	w.resetAcks()
	expired := false
	inGrace := false
	for w.ackCount < w.cfg.S() && !(w.ackCount >= w.cfg.Quorum() && expired) {
		select {
		case env, ok := <-w.ep.Recv():
			if !ok {
				return transport.ErrClosed
			}
			w.acceptPWAck(env)
		case <-timer.C:
			expired = true
			// Below a quorum the PW may have been lost on a stale
			// conn; the merge is idempotent, so after the
			// retransmitGrace cycle re-send (same targets, same
			// frozen set) rather than wedge until the operation
			// deadline.
			if w.ackCount < w.cfg.Quorum() {
				if inGrace {
					w.cfg.Metrics.retransmit()
					if err := w.sendTo(w.pwTargets(f), pwMsg); err != nil {
						return err
					}
				} else {
					w.cfg.Metrics.starved()
				}
				inGrace = true
				timer = resetTimer(&w.roundTimer, retransmitGrace)
			}
		case <-opDeadline.C:
			return fmt.Errorf("WRITE(ts=%d) pre-write phase: %w", w.ts, ErrOpTimeout)
		}
	}
	w.drainPWAcks()

	// Fig. 1 lines 6–7: record the value as written, then detect slow
	// READs and freeze values for them.
	w.frozen = nil
	w.w = w.pw
	w.freezeValues()

	meta := WriteMeta{TS: c.TS, Writer: c.W, PWAcks: w.ackCount,
		Queried: queried, Contended: w.sawContention(c), Ghost: ghost}
	// A NACKed speculative attempt earlier in this operation counts as
	// contention evidence even when the retry's own acks are clean: one
	// full query-path operation must complete uncontended before the
	// writer speculates again.
	w.noteCompletion(c, meta.Contended || !ghost.IsZero())
	rounds := 1
	if queried {
		rounds = 2 // the stamp query is a round-trip too
	}

	// Fig. 1 line 8: fast path.
	if w.ackCount >= w.cfg.FastWriteAcks() {
		meta.Rounds, meta.Fast = rounds, true
		w.lastMeta = meta
		w.stats.record(meta.Rounds, true)
		return nil
	}

	if err := w.writePhase(c, f, opDeadline); err != nil {
		return err
	}
	meta.Rounds = rounds + 2
	w.lastMeta = meta
	w.stats.record(meta.Rounds, false)
	return nil
}

// writePhase runs the write phase of Fig. 1 lines 9–11: two more W
// rounds at the already pre-written pair c.
func (w *Writer) writePhase(c types.Tagged, f *WriteFault, opDeadline *time.Timer) error {
	for round := 2; round <= 3; round++ {
		msg := wire.W{Round: round, Tag: int64(c.TS), C: w.pw}
		targets := w.wTargets(f, round)
		if err := w.sendTo(targets, msg); err != nil {
			return err
		}
		if f != nil && f.CrashAfterW[round] {
			w.crashed = true
			return ErrCrashed
		}
		if err := w.awaitWAcks(round, int64(c.TS), targets, msg, opDeadline); err != nil {
			return err
		}
	}
	return nil
}

// noteCompletion feeds the speculative fast path's telemetry at the
// point the pre-write quorum is in: the counted acks' Max fields and
// the bound stamp itself raise the stamp cache (a quorum observation,
// so the cache becomes trustworthy), and the contention verdict sets
// the calm flag for the next operation's speculation decision.
func (w *Writer) noteCompletion(c types.Tagged, contended bool) {
	for i, seen := range w.ackSeen {
		if seen {
			w.foldCache(w.acks[i].Max)
		}
	}
	w.foldCache(c.Stamp())
	w.cacheOK = true
	w.calm = !contended
}

// bindSpec attempts the speculative pre-write of DESIGN.md §12 at the
// already-chosen pair c: PW is sent with Spec set and — unlike bind —
// no writer state is committed up front, because the attempt may be
// rejected. done reports that the operation completed (the quorum came
// back all-ACK); done == false with a nil error means the attempt was
// aborted — a server NACKed the stamp, or the quorum starved — and the
// caller must fall back to the query-round slow path, treating c as a
// ghost (servers that acknowledged before the verdict keep the pair).
func (w *Writer) bindSpec(c types.Tagged, opDeadline *time.Timer) (done bool, err error) {
	w.stats.SpecAttempts++
	w.opTS = c.TS
	pwMsg := wire.PW{TS: c.TS, PW: c, W: w.w, Frozen: w.frozen, Spec: true}
	if err := w.sendTo(w.allServers(), pwMsg); err != nil {
		return false, err
	}

	// Wait as bind does, with two extra exits: a PW_NACK decides the
	// attempt immediately, and a starved quorum (two timer cycles below
	// S−t acks) abandons it rather than retransmitting — the slow path
	// owns loss recovery, and a stale spec stamp would only be NACKed
	// again anyway.
	timer := resetTimer(&w.roundTimer, w.cfg.roundTimeout())
	defer timer.Stop()
	w.resetAcks()
	expired := false
	inGrace := false
	for w.ackCount < w.cfg.S() && !(w.ackCount >= w.cfg.Quorum() && expired) && !w.nackSeen {
		select {
		case env, ok := <-w.ep.Recv():
			if !ok {
				return false, transport.ErrClosed
			}
			w.acceptPWAck(env)
		case <-timer.C:
			expired = true
			if w.ackCount < w.cfg.Quorum() {
				if inGrace {
					w.calm = false
					w.stats.SpecFlips++
					return false, nil
				}
				w.cfg.Metrics.starved()
				inGrace = true
				timer = resetTimer(&w.roundTimer, retransmitGrace)
			}
		case <-opDeadline.C:
			return false, fmt.Errorf("WRITE(ts=%d) speculative pre-write: %w", c.TS, ErrOpTimeout)
		}
	}
	w.drainPWAcks()
	if w.nackSeen {
		// Some server already held a stamp at or above c. The NACK made
		// no server state change; the writer made none either, so the
		// abort is clean — remember the evidence and flip to the slow
		// path.
		w.foldCache(w.nackMax)
		w.calm = false
		w.stats.SpecFlips++
		return false, nil
	}

	// A quorum acknowledged with zero NACKs: every acking server
	// installed c as strictly newest, and by quorum intersection any
	// previously completed WRITE's stamp sat in at least one honest
	// server of this quorum — which would have NACKed. So c outranks
	// every write that completed before this one began, exactly the
	// guarantee the query round buys, and the commit proceeds as in
	// bind.
	w.ts = c.TS
	w.last = c.Stamp()
	w.pw = c
	w.frozen = nil
	w.w = w.pw
	w.freezeValues()

	meta := WriteMeta{TS: c.TS, Writer: c.W, PWAcks: w.ackCount,
		Contended: w.sawContention(c), Spec: true}
	w.noteCompletion(c, meta.Contended)
	w.stats.SpecOps++

	if w.ackCount >= w.cfg.FastWriteAcks() {
		meta.Rounds, meta.Fast = 1, true
		w.lastMeta = meta
		w.stats.record(1, true)
		return true, nil
	}
	if err := w.writePhase(c, nil, opDeadline); err != nil {
		return true, err
	}
	meta.Rounds = 3
	w.lastMeta = meta
	w.stats.record(3, false)
	return true, nil
}

// sawContention reports whether any counted PW_ACK's Max exceeds the
// bound stamp: the server already held a higher stamp when it
// acknowledged, direct evidence another writer raced this operation.
// v1 peers leave Max zero, which can never exceed a bound stamp.
func (w *Writer) sawContention(c types.Tagged) bool {
	st := c.Stamp()
	for i, seen := range w.ackSeen {
		if seen && st.Less(w.acks[i].Max) {
			return true
		}
	}
	return false
}

// acceptPWAck records a structurally valid PW_ACK or PW_NACK tagged
// with the in-flight pre-write's TS. Acks from servers not yet counted
// enter the ack set; a NACK (speculative attempts only — servers never
// NACK a non-spec PW) raises the nack flag that aborts bindSpec. Stale
// replies to an abandoned speculative attempt carry its old TS and are
// dropped here: the slow-path retry binds strictly above the ghost, so
// opTS always moves on before new acks are awaited.
func (w *Writer) acceptPWAck(env wire.Envelope) {
	// Validate the envelope's interface value, not an unboxed copy —
	// re-boxing it would allocate on every ack.
	switch a := env.Msg.(type) {
	case wire.PWAck:
		if !validServer(w.cfg, env.From) || a.TS != w.opTS || wire.Validate(env.Msg) != nil {
			return
		}
		if i := env.From.Index(); !w.ackSeen[i] {
			w.ackSeen[i] = true
			w.acks[i] = a
			w.ackCount++
		}
	case wire.PWNack:
		if !validServer(w.cfg, env.From) || a.TS != w.opTS || wire.Validate(env.Msg) != nil {
			return
		}
		w.nackSeen = true
		if w.nackMax.Less(a.Max) {
			w.nackMax = a.Max
		}
	}
}

// drainPWAcks consumes acks that are already queued when the wait
// condition is met, so the fast-path check of line 8 sees every reply
// that arrived within the timer.
func (w *Writer) drainPWAcks() {
	for {
		select {
		case env, ok := <-w.ep.Recv():
			if !ok {
				return
			}
			w.acceptPWAck(env)
		default:
			return
		}
	}
}

// freezeValues implements Fig. 1 lines 13–15: for every reader reported
// by at least b+1 servers with a READ timestamp above the writer's
// recorded one, advance the record to the (b+1)-st highest reported
// timestamp and freeze the current pre-written pair for that reader.
//
// The steady state — no slow READ in progress anywhere, so every
// NewRead set is empty — is detected with one scan and skips the
// tallying machinery entirely. The slow path reuses the writer's
// scratch map across operations and scans small NewRead sets linearly
// for duplicates (a map is built only for implausibly large, i.e.
// forged-but-valid, sets).
func (w *Writer) freezeValues() {
	any := false
	for i, seen := range w.ackSeen {
		if seen && len(w.acks[i].NewRead) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	if w.reported == nil {
		w.reported = make(map[types.ProcID][]types.ReaderTS)
	} else {
		clear(w.reported)
	}
	for i, seen := range w.ackSeen {
		if !seen {
			continue
		}
		newread := w.acks[i].NewRead
		for j, rs := range newread {
			if w.duplicateStamp(newread, j) {
				continue // a malicious server may repeat a reader; count it once
			}
			if rs.TSR > w.readTS[rs.Reader] {
				w.reported[rs.Reader] = append(w.reported[rs.Reader], rs.TSR)
			}
		}
	}
	for rj, tsrs := range w.reported {
		if len(tsrs) < w.cfg.SafeThreshold() {
			continue
		}
		nth, ok := types.NthHighest(tsrs, w.cfg.B)
		if !ok {
			continue
		}
		if w.readTS == nil {
			w.readTS = make(map[types.ProcID]types.ReaderTS)
		}
		w.readTS[rj] = nth
		w.frozen = append(w.frozen, types.FrozenEntry{Reader: rj, PW: w.pw, TSR: nth})
	}
}

// smallNewReadSet is the size up to which duplicate detection scans the
// prefix linearly; correct servers report at most one stamp per reader
// with an outstanding slow READ, so real sets are tiny.
const smallNewReadSet = 8

// duplicateStamp reports whether newread[j] repeats an earlier entry's
// reader. Large (necessarily forged) sets switch to the reusable map so
// a Byzantine server cannot force a quadratic scan.
func (w *Writer) duplicateStamp(newread []types.ReadStamp, j int) bool {
	rj := newread[j].Reader
	if len(newread) <= smallNewReadSet {
		for _, prev := range newread[:j] {
			if prev.Reader == rj {
				return true
			}
		}
		return false
	}
	if j == 0 {
		if w.dupSeen == nil {
			w.dupSeen = make(map[types.ProcID]bool, len(newread))
		} else {
			clear(w.dupSeen)
		}
	}
	if w.dupSeen[rj] {
		return true
	}
	w.dupSeen[rj] = true
	return false
}

// awaitWAcks waits for S−t valid WRITE_ACKs for the given round,
// retransmitting msg to targets after the retransmitGrace cycle while
// below a quorum (W rounds are idempotent on servers).
func (w *Writer) awaitWAcks(round int, tag int64, targets []types.ProcID, msg wire.Message, opDeadline *time.Timer) error {
	if w.wackSeen == nil {
		w.wackSeen = make([]bool, w.cfg.S())
	} else {
		clear(w.wackSeen)
	}
	timer := resetTimer(&w.roundTimer, w.cfg.roundTimeout())
	inGrace := false
	got := 0
	for got < w.cfg.Quorum() {
		select {
		case env, ok := <-w.ep.Recv():
			if !ok {
				return transport.ErrClosed
			}
			a, isAck := env.Msg.(wire.WAck)
			if !isAck || !validServer(w.cfg, env.From) || a.Round != round || a.Tag != tag {
				continue
			}
			if i := env.From.Index(); !w.wackSeen[i] {
				w.wackSeen[i] = true
				got++
			}
		case <-timer.C:
			if inGrace {
				w.cfg.Metrics.retransmit()
				if err := w.sendTo(targets, msg); err != nil {
					return err
				}
			} else {
				w.cfg.Metrics.starved()
			}
			inGrace = true
			timer = resetTimer(&w.roundTimer, retransmitGrace)
		case <-opDeadline.C:
			return fmt.Errorf("WRITE(ts=%d) W round %d: %w", w.ts, round, ErrOpTimeout)
		}
	}
	return nil
}

// sendTo fans m out to targets through the writer's reusable outgoing
// buffer.
func (w *Writer) sendTo(targets []types.ProcID, m wire.Message) error {
	out := w.outBuf[:0]
	for _, id := range targets {
		out = append(out, transport.Outgoing{To: id, Msg: m})
	}
	w.outBuf = out
	return transport.SendAll(w.ep, out)
}

// allServers returns the cached all-servers broadcast list.
func (w *Writer) allServers() []types.ProcID {
	if w.serverIDs == nil {
		w.serverIDs = types.ServerIDs(w.cfg.S())
	}
	return w.serverIDs
}

func (w *Writer) pwTargets(f *WriteFault) []types.ProcID {
	if f != nil && f.PWTo != nil {
		return f.PWTo
	}
	return w.allServers()
}

func (w *Writer) wTargets(f *WriteFault, round int) []types.ProcID {
	if f != nil && f.WTo != nil && f.WTo[round] != nil {
		return f.WTo[round]
	}
	return w.allServers()
}

// validServer reports whether id names one of the cluster's S servers;
// clients ignore messages claiming other origins.
func validServer(cfg Config, id types.ProcID) bool {
	return id.IsServer() && id.Index() < cfg.S()
}
