package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/types"
)

func mwConfig(writers int) Config {
	return Config{T: 1, B: 0, Fw: 1, NumReaders: 1, Writers: writers,
		RoundTimeout: 10 * time.Millisecond}
}

// A multi-writer WRITE runs the stamp query and reports it in the meta;
// a later writer's query observes the earlier completed write and binds
// strictly above it.
func TestMWQueryObservesPriorWrite(t *testing.T) {
	c, err := NewCluster(mwConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.WriterN(0).Write("a"); err != nil {
		t.Fatal(err)
	}
	m0 := c.WriterN(0).LastMeta()
	if m0.Stamp() != (types.Stamp{Seq: 1, Writer: 0}) {
		t.Errorf("w0 stamp = %v, want 1", m0.Stamp())
	}
	if !m0.Queried || m0.Rounds != 2 || !m0.Fast {
		t.Errorf("w0 meta = %+v, want queried fast 2-round", m0)
	}

	if err := c.WriterN(1).Write("b"); err != nil {
		t.Fatal(err)
	}
	m1 := c.WriterN(1).LastMeta()
	if m1.Stamp() != (types.Stamp{Seq: 2, Writer: 1}) {
		t.Errorf("w1 stamp = %v, want 2.1 (query must observe w0's write)", m1.Stamp())
	}

	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != m1.Value("b") {
		t.Errorf("read = %+v, want %+v", got, m1.Value("b"))
	}
}

// Concurrent writers on one register bind pairwise distinct, totally
// ordered stamps, and a read after the dust settles returns the value
// bound at the highest stamp.
func TestMWConcurrentWritersDistinctStamps(t *testing.T) {
	const writers, perWriter = 3, 5
	c, err := NewCluster(mwConfig(writers))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	stamps := make([][]types.Stamp, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.WriterN(i)
			for k := 0; k < perWriter; k++ {
				if err := w.Write(types.Value(fmt.Sprintf("w%d-%d", i, k))); err != nil {
					t.Errorf("writer %d op %d: %v", i, k, err)
					return
				}
				stamps[i] = append(stamps[i], w.LastMeta().Stamp())
			}
		}(i)
	}
	wg.Wait()

	written := make(map[types.Stamp]types.Value)
	var maxSt types.Stamp
	for i, ss := range stamps {
		for k, st := range ss {
			if v, dup := written[st]; dup {
				t.Fatalf("stamp %v bound twice (second by w%d op %d, first for %q)", st, i, k, v)
			}
			written[st] = types.Value(fmt.Sprintf("w%d-%d", i, k))
			if maxSt.Less(st) {
				maxSt = st
			}
			if k > 0 && !ss[k-1].Less(st) {
				t.Errorf("writer %d stamps not increasing: %v then %v", i, ss[k-1], st)
			}
		}
	}

	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Stamp() != maxSt || got.Val != written[maxSt] {
		t.Errorf("read = %+v, want stamp %v value %q", got, maxSt, written[maxSt])
	}
}

// Per-key server state stays bounded regardless of how many writers
// contend: the automaton keeps three tagged pairs plus per-reader
// slots, and nothing per writer (the space-bounds property).
func TestServerStateBoundedInWriters(t *testing.T) {
	const writers = 4
	c, err := NewCluster(mwConfig(writers))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < writers; i++ {
		for k := 0; k < 3; k++ {
			if err := c.WriterN(i).Write(types.Value(fmt.Sprintf("w%d-%d", i, k))); err != nil {
				t.Fatalf("writer %d: %v", i, err)
			}
		}
	}
	for i := 0; i < c.Config().S(); i++ {
		frozen, readerTS := c.ServerAutomaton(i).(*Server).StateSize()
		if frozen != 0 || readerTS != 0 {
			t.Errorf("server %d grew per-client state without slow reads: frozen=%d readerTS=%d",
				i, frozen, readerTS)
		}
	}
}

// A single-writer deployment skips the query round entirely — the
// published Fig. 1 protocol, byte for byte.
func TestSingleWriterSkipsQuery(t *testing.T) {
	c, err := NewCluster(Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Writer().Write("a"); err != nil {
		t.Fatal(err)
	}
	m := c.Writer().LastMeta()
	if m.Queried || m.Rounds != 1 || !m.Fast {
		t.Errorf("single-writer meta = %+v, want unqueried fast 1-round", m)
	}
}

// The Contended flag fires when a server acknowledges the PW while
// already holding a higher stamp (the PW_ACK.Max channel).
func TestWriteMetaContended(t *testing.T) {
	cfg := Config{T: 1, B: 0, Fw: 1, NumReaders: 0, RoundTimeout: 10 * time.Millisecond}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Writer().Write("calm"); err != nil {
		t.Fatal(err)
	}
	if c.Writer().LastMeta().Contended {
		t.Error("uncontended write reported contention")
	}

	higher := types.Tagged{TS: 50, W: 2, Val: "raced"}
	for i := 0; i < cfg.S(); i++ {
		c.ServerAutomaton(i).(*Server).InjectState(higher, higher, higher)
	}
	if err := c.Writer().Write("mine"); err != nil {
		t.Fatal(err)
	}
	if m := c.Writer().LastMeta(); !m.Contended {
		t.Errorf("write under a higher installed stamp not flagged contended: %+v", m)
	}
}

// WriteAt replays an exact foreign stamp — writer component included —
// and is idempotent at or below the last bound stamp.
func TestWriteAtReplaysForeignStamp(t *testing.T) {
	c, err := NewCluster(Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := c.Writer()

	migrated := types.Tagged{TS: 4, W: 2, Val: "moved"}
	if err := w.WriteAt(migrated); err != nil {
		t.Fatal(err)
	}
	if m := w.LastMeta(); m.Stamp() != migrated.Stamp() || m.Writer != 2 {
		t.Errorf("replayed meta = %+v, want stamp %v", m, migrated.Stamp())
	}

	// Replaying the same or a lower stamp is a no-op.
	for _, dup := range []types.Tagged{migrated, {TS: 4, W: 1, Val: "older"}, {TS: 3, W: 7, Val: "older"}} {
		if err := w.WriteAt(dup); err != nil {
			t.Fatal(err)
		}
	}
	if ops := w.Stats().Ops; ops != 1 {
		t.Errorf("idempotent replays ran %d ops, want 1", ops)
	}

	// A subsequent Write continues above the replayed sequence.
	if err := w.Write("next"); err != nil {
		t.Fatal(err)
	}
	if st := w.LastMeta().Stamp(); st != (types.Stamp{Seq: 5, Writer: 0}) {
		t.Errorf("post-replay stamp = %v, want 5", st)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "next" {
		t.Errorf("read = %+v, want the post-replay write", got)
	}
}
