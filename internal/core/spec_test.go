package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/storage"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// specConfig is the canonical multi-writer deployment for the
// speculative fast-path tests (DESIGN.md §12): two writers, fw = 1 so
// a quorum of acks is fast.
func specConfig() Config {
	return Config{T: 1, B: 0, Fw: 1, NumReaders: 1, Writers: 2,
		RoundTimeout: 10 * time.Millisecond}
}

// After one warm-up write (cold cache: the writer must query), every
// uncontended write speculates and completes in a single round trip —
// the query round is elided.
func TestMWSpecFastPathEngages(t *testing.T) {
	c, err := NewCluster(specConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := c.WriterN(0)

	if err := w.Write("warmup"); err != nil {
		t.Fatal(err)
	}
	if m := w.LastMeta(); !m.Queried || m.Spec {
		t.Fatalf("cold-cache write meta = %+v, want queried and not speculative", m)
	}

	const ops = 10
	for i := 0; i < ops; i++ {
		if err := w.Write(types.Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		m := w.LastMeta()
		if !m.Spec || m.Queried || !m.Fast || m.Rounds != 1 {
			t.Fatalf("uncontended MW write %d meta = %+v, want speculative fast 1-round", i, m)
		}
		if !m.Ghost.IsZero() {
			t.Fatalf("uncontended speculative write %d left a ghost: %v", i, m.Ghost)
		}
	}
	st := w.Stats()
	if st.SpecAttempts != ops || st.SpecOps != ops || st.SpecFlips != 0 {
		t.Errorf("stats = %+v, want %d clean speculative ops", st, ops)
	}
	if got := w.LastMeta().Stamp(); got != (types.Stamp{Seq: ops + 1, Writer: 0}) {
		t.Errorf("final stamp = %v, want %d.0", got, ops+1)
	}

	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != types.Value(fmt.Sprintf("v%d", ops-1)) {
		t.Errorf("read = %+v, want the last speculative write", got)
	}
}

// A speculative pre-write whose cached stamp is stale is NACKed by the
// servers, makes no server state change beyond the acks already in
// flight, and the operation falls back to the query round — completing
// strictly above both the installed stamp and its own ghost.
func TestMWSpecNackFallsBackToQuery(t *testing.T) {
	cfg := specConfig()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := c.WriterN(0)

	for _, v := range []types.Value{"warm", "spec"} {
		if err := w.Write(v); err != nil {
			t.Fatal(err)
		}
	}
	if m := w.LastMeta(); !m.Spec {
		t.Fatalf("warm uncontended write meta = %+v, want speculative", m)
	}

	// Another writer raced far ahead while w0 was not looking.
	installed := types.Tagged{TS: 50, W: 1, Val: "raced"}
	for i := 0; i < cfg.S(); i++ {
		c.ServerAutomaton(i).(*Server).InjectState(installed, installed, installed)
	}

	if err := w.Write("mine"); err != nil {
		t.Fatal(err)
	}
	m := w.LastMeta()
	if m.Spec || !m.Queried {
		t.Fatalf("stale-cache write meta = %+v, want flipped to the query path", m)
	}
	if m.Ghost != (types.Stamp{Seq: 3, Writer: 0}) {
		t.Errorf("ghost = %v, want the aborted speculative stamp 3.0", m.Ghost)
	}
	if m.Stamp() != (types.Stamp{Seq: 51, Writer: 0}) {
		t.Errorf("stamp = %v, want 51.0 (strictly above the installed 50.1)", m.Stamp())
	}
	st := w.Stats()
	if st.SpecFlips != 1 {
		t.Errorf("stats = %+v, want exactly one flip", st)
	}

	// The NACK cleared the calm flag: the next write pays the query
	// round without even attempting to speculate.
	attempts := st.SpecAttempts
	if err := w.Write("after"); err != nil {
		t.Fatal(err)
	}
	if m := w.LastMeta(); m.Spec || !m.Queried {
		t.Fatalf("post-contention write meta = %+v, want query path", m)
	}
	if got := w.Stats().SpecAttempts; got != attempts {
		t.Errorf("post-contention write speculated (attempts %d → %d); calm flag not cleared", attempts, got)
	}

	// An uncontended completion restores calm, so speculation resumes.
	if err := w.Write("calm-again"); err != nil {
		t.Fatal(err)
	}
	if m := w.LastMeta(); !m.Spec {
		t.Fatalf("second post-contention write meta = %+v, want speculation restored", m)
	}
}

// The server's writer-stamp rule, at the automaton level: a speculative
// PW at or below the installed pre-write stamp is NACKed with no state
// change; re-delivering the identical pair is acknowledged normally
// (idempotent retransmit); a non-speculative PW is never NACKed.
func TestServerSpecNackRule(t *testing.T) {
	s := NewServer()
	winner := types.Tagged{TS: 5, W: 1, Val: "winner"}
	stepOne(t, s, types.WriterIDN(1), wire.PW{TS: 5, PW: winner, W: types.Bottom(), Spec: true})

	// Lower stamp, spec: NACK carrying the installed maximum.
	loser := types.Tagged{TS: 5, W: 0, Val: "loser"}
	reply := stepOne(t, s, types.WriterIDN(0), wire.PW{TS: 5, PW: loser, W: types.Bottom(), Spec: true})
	nack, ok := reply.(wire.PWNack)
	if !ok {
		t.Fatalf("reply = %+v, want PW_NACK", reply)
	}
	if nack.TS != 5 || nack.Max != winner.Stamp() {
		t.Errorf("nack = %+v, want ts=5 max=%v", nack, winner.Stamp())
	}
	if pw, _, _ := s.State(); pw != winner {
		t.Errorf("NACK changed server state: pw = %v", pw)
	}

	// The identical pair again: normal ack (retransmit stays idempotent).
	reply = stepOne(t, s, types.WriterIDN(1), wire.PW{TS: 5, PW: winner, W: types.Bottom(), Spec: true})
	if _, ok := reply.(wire.PWAck); !ok {
		t.Fatalf("identical spec retransmit reply = %+v, want PW_ACK", reply)
	}

	// The same losing pair without Spec: the published merge — stale
	// values are ignored but always acknowledged.
	reply = stepOne(t, s, types.WriterIDN(0), wire.PW{TS: 5, PW: loser, W: types.Bottom()})
	if _, ok := reply.(wire.PWAck); !ok {
		t.Fatalf("non-spec PW reply = %+v, want PW_ACK", reply)
	}
	if pw, _, _ := s.State(); pw != winner {
		t.Errorf("stale non-spec PW overwrote state: pw = %v", pw)
	}
}

// Nasty interleaving: a speculating writer races a WriteAt handoff
// replay that installs a far-higher foreign stamp (the rebalance
// primitive) on the same register. Whatever the interleaving, the
// speculating writer's completed stamps stay distinct and increasing,
// and any aborted attempt surfaces as a ghost strictly below its
// operation's completed stamp.
func TestMWSpecRacesWriteAtReplay(t *testing.T) {
	c, err := NewCluster(specConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w0, w1 := c.WriterN(0), c.WriterN(1)

	if err := w0.Write("warm"); err != nil { // warm the cache so w0 speculates
		t.Fatal(err)
	}

	const ops = 20
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Replays arrive at foreign stamps far above w0's cache, forcing
		// NACKs mid-stream.
		for i := 1; i <= ops; i++ {
			rep := types.Tagged{TS: types.TS(100 * i), W: 7, Val: types.Value(fmt.Sprintf("mig%d", i))}
			if err := w1.WriteAt(rep); err != nil {
				t.Errorf("WriteAt %d: %v", i, err)
				return
			}
		}
	}()

	var stamps []types.Stamp
	var ghosts []types.Stamp
	for i := 0; i < ops; i++ {
		if err := w0.Write(types.Value(fmt.Sprintf("w0-%d", i))); err != nil {
			t.Fatalf("w0 op %d: %v", i, err)
		}
		m := w0.LastMeta()
		stamps = append(stamps, m.Stamp())
		if !m.Ghost.IsZero() {
			ghosts = append(ghosts, m.Ghost)
			if !m.Ghost.Less(m.Stamp()) {
				t.Fatalf("op %d ghost %v not strictly below completed stamp %v", i, m.Ghost, m.Stamp())
			}
		}
	}
	wg.Wait()

	for i := 1; i < len(stamps); i++ {
		if !stamps[i-1].Less(stamps[i]) {
			t.Errorf("w0 stamps not increasing: %v then %v", stamps[i-1], stamps[i])
		}
	}
	seen := map[types.Stamp]bool{}
	for _, st := range append(append([]types.Stamp{}, stamps...), ghosts...) {
		if seen[st] {
			t.Errorf("stamp %v bound twice across completions and ghosts", st)
		}
		seen[st] = true
	}

	// The register converges: a read returns the overall maximum.
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	want := stamps[len(stamps)-1]
	if rep := (types.Stamp{Seq: 100 * ops, Writer: 7}); want.Less(rep) {
		want = rep
	}
	if got.Stamp() != want {
		t.Errorf("read stamp = %v, want the maximum %v", got.Stamp(), want)
	}
}

// Nasty interleaving: cache staleness across server restarts. The
// stamps another writer installed survive on disk (PR 8's WAL), so a
// writer that slept through both the contention and the reboot gets its
// stale speculative attempt NACKed by recovered state — not silently
// accepted against empty registers.
func TestMWSpecStaleCacheAcrossRestart(t *testing.T) {
	cfg := specConfig()
	c, err := NewCluster(cfg, WithStorage(storage.NewDirProvider(
		t.TempDir(), func() storage.Automaton { return NewServer() })))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w0, w1 := c.WriterN(0), c.WriterN(1)

	if err := w0.Write("w0-warm"); err != nil { // w0's cache: 〈1.0〉
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ { // w1 races ahead to 〈9.1〉
		if err := w1.Write(types.Value(fmt.Sprintf("w1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	last1 := w1.LastMeta().Stamp()

	for i := 0; i < cfg.S(); i++ { // reboot every server from its WAL
		c.CrashServer(i)
		if err := c.RestartServer(i); err != nil {
			t.Fatal(err)
		}
	}

	if err := w0.Write("w0-after"); err != nil {
		t.Fatal(err)
	}
	m := w0.LastMeta()
	if m.Spec {
		t.Fatalf("stale speculative attempt completed against recovered stamps: %+v", m)
	}
	if m.Ghost.IsZero() || !m.Ghost.Less(last1) {
		t.Errorf("ghost = %v, want the aborted stale attempt below %v", m.Ghost, last1)
	}
	if !last1.Less(m.Stamp()) {
		t.Errorf("stamp = %v, want strictly above w1's recovered %v", m.Stamp(), last1)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "w0-after" {
		t.Errorf("read = %+v, want w0's post-restart write", got)
	}
}

// Hand-built history for the checker: the collision the NACK rule
// exists to prevent. A speculative attempt that guessed 〈5.0〉 while
// 〈5.1〉 was already completed must lose — recorded as a failed (ghost)
// write plus a completion strictly above, which the checker accepts,
// including a concurrent read that returns the lingering ghost. Had the
// attempt "won" (completed at 〈5.0〉 in real time after 〈5.1〉), the
// checker must flag the history.
func TestCheckerSpecGhostCollision(t *testing.T) {
	base := time.Now()
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	ghostErr := fmt.Errorf("speculative attempt aborted")

	// w1's winning write is concurrent with w0's whole operation: only
	// then can a reader still return the dominated ghost — once 〈5.1〉
	// completes, a quorum holds it and every later read returns ≥ 〈5.1〉.
	w1op := checker.Op{Client: types.WriterIDN(1), Kind: checker.KindWrite,
		Value: types.Tagged{TS: 5, W: 1, Val: "winner"}, Invoke: at(0), Return: at(30)}
	// w0's operation: ghost at 5.0 (failed), completion at 6.0 — both
	// inside one invocation window.
	ghost := checker.Op{Client: types.WriterIDN(0), Kind: checker.KindWrite,
		Value: types.Tagged{TS: 5, W: 0, Val: "retry"}, Invoke: at(20), Return: at(40), Err: ghostErr}
	retry := checker.Op{Client: types.WriterIDN(0), Kind: checker.KindWrite,
		Value: types.Tagged{TS: 6, W: 0, Val: "retry"}, Invoke: at(20), Return: at(40)}
	// A read concurrent with w0's operation legitimately returns the
	// lingering ghost pair.
	ghostRead := checker.Op{Client: types.ReaderID(0), Kind: checker.KindRead,
		Value: types.Tagged{TS: 5, W: 0, Val: "retry"}, Invoke: at(25), Return: at(35)}
	lateRead := checker.Op{Client: types.ReaderID(0), Kind: checker.KindRead,
		Value: types.Tagged{TS: 6, W: 0, Val: "retry"}, Invoke: at(50), Return: at(60)}

	good := []checker.Op{w1op, ghost, retry, ghostRead, lateRead}
	if vs := checker.CheckAtomicity(good); len(vs) != 0 {
		t.Fatalf("ghost-collision history must be atomic, got %v", vs)
	}

	// The counterfactual: the speculative attempt completes at 5.0 even
	// though 5.1 finished before it began. Stamp order now contradicts
	// real-time order and the checker must say so.
	bad := []checker.Op{
		{Client: types.WriterIDN(1), Kind: checker.KindWrite,
			Value: types.Tagged{TS: 5, W: 1, Val: "winner"}, Invoke: at(0), Return: at(10)},
		{Client: types.WriterIDN(0), Kind: checker.KindWrite,
			Value: types.Tagged{TS: 5, W: 0, Val: "retry"}, Invoke: at(20), Return: at(40)},
	}
	if vs := checker.CheckAtomicity(bad); len(vs) == 0 {
		t.Fatal("speculative write completing below a previously completed stamp must be flagged")
	}
}
