package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// testConfig returns the running-example config t=2, b=1 (S=6) with a
// short round timer suitable for the in-memory network.
func testConfig(fw int) Config {
	return Config{T: 2, B: 1, Fw: fw, NumReaders: 3, RoundTimeout: 15 * time.Millisecond}
}

func newTestCluster(t *testing.T, cfg Config, opts ...ClusterOption) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterRejectsInvalidConfig(t *testing.T) {
	bad := []Config{
		{T: -1},
		{T: 1, B: 2},
		{T: 2, B: 1, Fw: 2}, // fw > t−b
		{T: 2, B: 1, Fw: -1},
		{T: 2, B: 0, NumReaders: -1},
	}
	for _, cfg := range bad {
		if _, err := NewCluster(cfg); err == nil {
			t.Errorf("NewCluster accepted invalid config %+v", cfg)
		}
	}
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	c := newTestCluster(t, testConfig(1))
	if err := c.Writer().Write("hello"); err != nil {
		t.Fatal(err)
	}
	if m := c.Writer().LastMeta(); !m.Fast || m.Rounds != 1 {
		t.Errorf("write meta = %+v, want fast 1-round", m)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 1, Val: "hello"}) {
		t.Errorf("Read() = %v, want 〈1,hello〉", got)
	}
	if m := c.Reader(0).LastMeta(); !m.Fast() {
		t.Errorf("read meta = %+v, want fast", m)
	}
}

func TestReadFreshRegisterReturnsBottom(t *testing.T) {
	c := newTestCluster(t, testConfig(1))
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsBottom() {
		t.Errorf("Read() on fresh register = %v, want ⊥", got)
	}
}

func TestWriteRejectsBottom(t *testing.T) {
	c := newTestCluster(t, testConfig(1))
	if err := c.Writer().Write(""); !errors.Is(err, ErrBottomValue) {
		t.Errorf("Write(⊥) = %v, want ErrBottomValue", err)
	}
}

func TestSequentialWritesMonotonicTimestamps(t *testing.T) {
	c := newTestCluster(t, testConfig(1))
	for i := 1; i <= 5; i++ {
		if err := c.Writer().Write(types.Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if m := c.Writer().LastMeta(); m.TS != types.TS(i) {
			t.Errorf("write %d got ts %d", i, m.TS)
		}
	}
	got, err := c.Reader(1).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 5, Val: "v5"}) {
		t.Errorf("Read() = %v, want 〈5,v5〉", got)
	}
}

// Theorem 3: with at most fw actual failures, a synchronous WRITE is
// fast; with fw+1 it falls back to the 3-round slow path.
func TestFastWriteFailureThreshold(t *testing.T) {
	cfg := testConfig(1) // fw = 1

	t.Run("fw crashes: fast", func(t *testing.T) {
		c := newTestCluster(t, cfg)
		c.CrashServer(0)
		if err := c.Writer().Write("v"); err != nil {
			t.Fatal(err)
		}
		if m := c.Writer().LastMeta(); !m.Fast || m.Rounds != 1 {
			t.Errorf("meta = %+v, want fast despite fw=1 crash", m)
		}
	})

	t.Run("fw+1 crashes: slow", func(t *testing.T) {
		c := newTestCluster(t, cfg)
		c.CrashServer(0)
		c.CrashServer(1)
		if err := c.Writer().Write("v"); err != nil {
			t.Fatal(err)
		}
		if m := c.Writer().LastMeta(); m.Fast || m.Rounds != 3 {
			t.Errorf("meta = %+v, want slow 3-round write", m)
		}
	})
}

// Theorem 4, fast-write case: a lucky READ after a fast WRITE is fast
// when at most fr servers fail (fw=1 ⇒ fr=0 here: no failures).
func TestFastReadAfterFastWrite(t *testing.T) {
	c := newTestCluster(t, testConfig(1))
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("Read() = %v", got)
	}
	if m := c.Reader(0).LastMeta(); !m.Fast() || m.WroteBack {
		t.Errorf("read meta = %+v, want fast without write-back", m)
	}
}

// Theorem 4, slow-write case: with fw=0 (fr = t−b = 1), one crash makes
// the WRITE slow (3 rounds), after which a lucky READ is still fast via
// fast_vw despite the crash.
func TestFastReadAfterSlowWriteDespiteFrFailures(t *testing.T) {
	cfg := testConfig(0) // fw = 0, fr = 1
	c := newTestCluster(t, cfg)
	c.CrashServer(5)
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	if m := c.Writer().LastMeta(); m.Fast {
		t.Fatalf("write meta = %+v, want slow (fw=0 and one crash)", m)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("Read() = %v", got)
	}
	if m := c.Reader(0).LastMeta(); !m.Fast() {
		t.Errorf("read meta = %+v, want fast via fast_vw", m)
	}
}

// Beyond fr failures the READ may be slow, but must stay correct.
func TestReadBeyondFrFailuresStillCorrect(t *testing.T) {
	cfg := testConfig(1) // fr = 0
	c := newTestCluster(t, cfg)
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(0)
	c.CrashServer(1) // 2 > fr failures
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("Read() = %v, want v", got)
	}
}

// A READ overlapping an in-progress WRITE (contention) must stay
// atomic; here it observes the pre-written value at b+1 servers,
// selects it and writes it back (slow READ).
func TestReadUnderContentionWritesBack(t *testing.T) {
	cfg := testConfig(1)
	c := newTestCluster(t, cfg)
	sim := c.Sim()

	// First, a complete write so the register is non-trivial.
	if err := c.Writer().Write("v1"); err != nil {
		t.Fatal(err)
	}

	// Start a second write whose PW reaches only s0 and s1, holding the
	// rest: the write is in progress, unacknowledged.
	for i := 2; i < cfg.S(); i++ {
		sim.Hold(types.WriterID(), types.ServerID(i))
	}
	writeDone := make(chan error, 1)
	go func() { writeDone <- c.Writer().Write("v2") }()

	// Give the two PW deliveries time to land.
	waitUntil(t, time.Second, func() bool {
		srv := c.ServerAutomaton(0).(*Server)
		pw, _, _ := srv.State()
		return pw.TS == 2
	})

	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 2, Val: "v2"}) {
		t.Errorf("Read() = %v, want the concurrent write's value 〈2,v2〉", got)
	}
	m := c.Reader(0).LastMeta()
	if !m.WroteBack {
		t.Errorf("read meta = %+v, want write-back (value not fast-confirmed)", m)
	}
	if m.Rounds() != m.QueryRounds+3 {
		t.Errorf("Rounds() = %d, want query+3", m.Rounds())
	}

	// Unblock and finish the write.
	sim.ReleaseAll()
	if err := <-writeDone; err != nil {
		t.Fatal(err)
	}

	// After the dust settles, reads return v2 and are fast again.
	got, err = c.Reader(1).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v2" {
		t.Errorf("follow-up Read() = %v", got)
	}
}

// Appendix E (ghost): writer crashes mid-write after pre-writing to
// only b+1 servers. The next READ adopts and writes back the orphaned
// value; the following READ is fast again.
func TestWriterCrashGhostRecovery(t *testing.T) {
	cfg := testConfig(1)
	c := newTestCluster(t, cfg)
	if err := c.Writer().Write("v1"); err != nil {
		t.Fatal(err)
	}
	fault := &WriteFault{
		PWTo:         []types.ProcID{types.ServerID(0), types.ServerID(1)},
		CrashAfterPW: true,
	}
	if err := c.Writer().WriteWithFault("v2", fault); !errors.Is(err, ErrCrashed) {
		t.Fatalf("faulty write = %v, want ErrCrashed", err)
	}
	if err := c.Writer().Write("v3"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash = %v, want ErrCrashed", err)
	}

	// The pre-written v2 is at b+1 servers: safe, nothing higher → the
	// READ returns it, slowly (write-back).
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 2, Val: "v2"}) {
		t.Errorf("Read() = %v, want orphaned 〈2,v2〉", got)
	}
	if m := c.Reader(0).LastMeta(); !m.WroteBack {
		t.Errorf("meta = %+v, want write-back of the orphan", m)
	}

	// The write-back completed at S−t servers: the next synchronous
	// READ is fast (Theorem 13's recovery).
	got, err = c.Reader(1).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v2" {
		t.Errorf("follow-up Read() = %v", got)
	}
	if m := c.Reader(1).LastMeta(); !m.Fast() {
		t.Errorf("follow-up meta = %+v, want fast", m)
	}
}

// Wait-freedom under the maximum tolerated crashes: t crashed servers,
// operations still complete (slowly).
func TestWaitFreedomUnderMaxCrashes(t *testing.T) {
	cfg := testConfig(1)
	c := newTestCluster(t, cfg)
	c.CrashServer(0)
	c.CrashServer(3)
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("Read() = %v", got)
	}
}

// More than t unresponsive servers violates the model; operations must
// fail with ErrOpTimeout rather than hang.
func TestOpTimeoutWhenModelViolated(t *testing.T) {
	cfg := testConfig(1)
	cfg.OpTimeout = 200 * time.Millisecond
	c := newTestCluster(t, cfg)
	for i := 0; i < 3; i++ { // t+1 = 3 crashes
		c.CrashServer(i)
	}
	if err := c.Writer().Write("v"); !errors.Is(err, ErrOpTimeout) {
		t.Errorf("Write with t+1 crashes = %v, want ErrOpTimeout", err)
	}
}

// The freezing mechanism end-to-end: a slow READ announces its
// timestamp; the writer detects it during the next WRITE, freezes the
// then-current value and ships it with the following WRITE; servers
// expose it to the reader with the matching tsr.
func TestFreezingMechanismEndToEnd(t *testing.T) {
	cfg := testConfig(1)
	c := newTestCluster(t, cfg)
	sim := c.Sim()
	rj := types.ReaderID(2)
	rep, err := sim.Endpoint(rj)
	if err != nil {
		t.Fatal(err)
	}

	// A hand-driven slow READ: round 2 announces tsr=1 to every server.
	for i := 0; i < cfg.S(); i++ {
		if err := rep.Send(types.ServerID(i), wire.Read{TSR: 1, Round: 2}); err != nil {
			t.Fatal(err)
		}
	}
	acks := collectReadAcks(t, rep, cfg.S())
	for _, a := range acks {
		if a.Frozen != types.InitialFrozen() {
			t.Fatalf("frozen slot set before any freeze: %+v", a.Frozen)
		}
	}

	// WRITE 1: the writer's PW collects newread {r2,1} from ≥ b+1
	// servers and freezes 〈1,v1〉 for r2 (shipped with WRITE 2's PW).
	if err := c.Writer().Write("v1"); err != nil {
		t.Fatal(err)
	}
	// WRITE 2 carries the frozen set to the servers.
	if err := c.Writer().Write("v2"); err != nil {
		t.Fatal(err)
	}

	// Round 3 of the slow READ now observes the frozen pair with
	// matching tsr at every correct server.
	for i := 0; i < cfg.S(); i++ {
		if err := rep.Send(types.ServerID(i), wire.Read{TSR: 1, Round: 3}); err != nil {
			t.Fatal(err)
		}
	}
	acks = collectReadAcks(t, rep, cfg.S())
	frozenCount := 0
	for _, a := range acks {
		if a.Frozen == (types.FrozenPair{PW: types.Tagged{TS: 1, Val: "v1"}, TSR: 1}) {
			frozenCount++
		}
	}
	if frozenCount < cfg.SafeThreshold() {
		t.Errorf("frozen 〈1,v1〉@tsr1 visible at %d servers, want ≥ b+1=%d",
			frozenCount, cfg.SafeThreshold())
	}

	// The writer froze exactly one value for this READ: a later WRITE
	// must not re-freeze for the same tsr (servers keep reporting
	// nothing new for r2).
	if err := c.Writer().Write("v3"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.S(); i++ {
		if err := rep.Send(types.ServerID(i), wire.Read{TSR: 1, Round: 4}); err != nil {
			t.Fatal(err)
		}
	}
	acks = collectReadAcks(t, rep, cfg.S())
	for _, a := range acks {
		if a.Frozen.TSR == 1 && a.Frozen.PW.TS > 1 {
			t.Errorf("value re-frozen for tsr 1: %+v", a.Frozen)
		}
	}
}

// Continuous writes with concurrent readers: every operation completes
// (wait-freedom) and per-reader timestamps never go backwards (the
// READ-hierarchy property restricted to one reader's own sequence).
func TestConcurrentWritesAndReadsStress(t *testing.T) {
	cfg := testConfig(1)
	cfg.RoundTimeout = 5 * time.Millisecond
	c := newTestCluster(t, cfg)

	const writes = 60
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= writes; i++ {
			if err := c.Writer().Write(types.Value(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	}()

	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last types.TS
			for i := 0; i < 40; i++ {
				got, err := c.Reader(r).Read()
				if err != nil {
					t.Errorf("reader %d read %d: %v", r, i, err)
					return
				}
				if got.TS < last {
					t.Errorf("reader %d: timestamp went backwards %d → %d", r, last, got.TS)
					return
				}
				last = got.TS
			}
		}()
	}
	wg.Wait()

	// Final read sees the last write.
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.TS != writes {
		t.Errorf("final Read() ts = %d, want %d", got.TS, writes)
	}
}

// feedPWAcks loads a PW_ACK set into the writer's pooled round state,
// the way acceptPWAck does during a live pre-write phase.
func feedPWAcks(w *Writer, acks map[types.ProcID]wire.PWAck) {
	w.resetAcks()
	for id, a := range acks {
		i := id.Index()
		w.acks[i] = a
		w.ackSeen[i] = true
		w.ackCount++
	}
}

// The writer's freezevalues picks the (b+1)-st highest reported
// timestamp and freezes at most one value per reader per write.
func TestWriterFreezeValuesSelection(t *testing.T) {
	cfg := testConfig(1) // b = 1 → need ≥2 reports, take 2nd highest
	w := NewWriter(cfg, types.WriterID(), nil)
	w.ts = 7
	w.pw = types.Tagged{TS: 7, Val: "v7"}
	rj := types.ReaderID(0)
	feedPWAcks(w, map[types.ProcID]wire.PWAck{
		types.ServerID(0): {TS: 7, NewRead: []types.ReadStamp{{Reader: rj, TSR: 5}}},
		types.ServerID(1): {TS: 7, NewRead: []types.ReadStamp{{Reader: rj, TSR: 9}}},
		types.ServerID(2): {TS: 7, NewRead: []types.ReadStamp{{Reader: rj, TSR: 3}}},
	})
	w.freezeValues()
	if len(w.frozen) != 1 {
		t.Fatalf("frozen = %+v, want exactly one entry", w.frozen)
	}
	got := w.frozen[0]
	if got.Reader != rj || got.PW != w.pw || got.TSR != 5 {
		t.Errorf("frozen entry = %+v, want {r0 〈7,v7〉 5} (2nd-highest of 9,5,3)", got)
	}
	if w.readTS[rj] != 5 {
		t.Errorf("read_ts[r0] = %d, want 5", w.readTS[rj])
	}

	// A lone report (< b+1) must not freeze.
	w2 := NewWriter(cfg, types.WriterID(), nil)
	w2.ts, w2.pw = 1, types.Tagged{TS: 1, Val: "x"}
	feedPWAcks(w2, map[types.ProcID]wire.PWAck{
		types.ServerID(0): {TS: 1, NewRead: []types.ReadStamp{{Reader: rj, TSR: 2}}},
	})
	w2.freezeValues()
	if len(w2.frozen) != 0 {
		t.Errorf("froze on a single report: %+v", w2.frozen)
	}

	// Duplicate stamps inside one malicious ack count once.
	w3 := NewWriter(cfg, types.WriterID(), nil)
	w3.ts, w3.pw = 1, types.Tagged{TS: 1, Val: "x"}
	feedPWAcks(w3, map[types.ProcID]wire.PWAck{
		types.ServerID(0): {TS: 1, NewRead: []types.ReadStamp{
			{Reader: rj, TSR: 2}, {Reader: rj, TSR: 8},
		}},
	})
	w3.freezeValues()
	if len(w3.frozen) != 0 {
		t.Errorf("duplicate stamps from one server caused a freeze: %+v", w3.frozen)
	}
}

// collectReadAcks receives n READ_ACKs from rep's inbox.
func collectReadAcks(t *testing.T, rep interface {
	Recv() <-chan wire.Envelope
}, n int) []wire.ReadAck {
	t.Helper()
	acks := make([]wire.ReadAck, 0, n)
	deadline := time.After(5 * time.Second)
	for len(acks) < n {
		select {
		case env, ok := <-rep.Recv():
			if !ok {
				t.Fatal("endpoint closed")
			}
			if a, isAck := env.Msg.(wire.ReadAck); isAck {
				acks = append(acks, a)
			}
		case <-deadline:
			t.Fatalf("got %d of %d READ_ACKs", len(acks), n)
		}
	}
	return acks
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
