// Package core implements the paper's primary contribution: the
// optimally resilient SWMR robust atomic storage of Section 3
// (Figures 1–3), in which every lucky WRITE is fast despite up to fw
// actual server failures and every lucky READ is fast despite up to
// fr = t − b − fw failures.
//
// The package contains the server automaton (Fig. 3), the writer
// (Fig. 1), the reader with its selection predicates (Fig. 2), and a
// Cluster harness that wires them over any transport.Network.
package core

import (
	"errors"
	"fmt"
	"time"
)

// DefaultRoundTimeout is the default round-1 timer: the client-known
// bound on a request/reply round trip with every correct server
// (2 × t_{c,s_i} in the paper's terms). On the in-memory network a
// round trip takes microseconds, so this leaves a wide synchrony
// margin while keeping tests fast.
const DefaultRoundTimeout = 25 * time.Millisecond

// DefaultOpTimeout bounds a single operation. The algorithm is
// wait-free under the model's assumption of at most t server failures;
// the timeout exists to convert a violated assumption (e.g. an
// experiment crashing more than t servers) into an error instead of a
// hung test.
const DefaultOpTimeout = 30 * time.Second

// ErrOpTimeout is returned when an operation exceeds Config.OpTimeout,
// which can only happen when the failure model's assumptions are
// violated.
var ErrOpTimeout = errors.New("operation timed out: failure assumptions violated (more than t servers unresponsive?)")

// ErrCrashed is returned by fault-injected client operations that
// deliberately stop mid-way.
var ErrCrashed = errors.New("client crashed mid-operation (injected)")

// Config carries the resilience parameters of a deployment.
//
// The storage uses S = 2t + b + 1 servers (optimal resilience), of
// which up to T may fail and up to B of those maliciously. Fw is the
// algorithm's single tunable: a WRITE completes fast after S − Fw
// PW_ACKs, and the matching fast-read resilience is Fr() = T − B − Fw
// (Proposition 1's trade-off fw + fr = t − b).
type Config struct {
	// T is the maximum number of faulty servers tolerated (t).
	T int
	// B is the maximum number of malicious servers tolerated (b ≤ t).
	B int
	// Fw is the number of actual failures despite which every lucky
	// WRITE must still be fast (0 ≤ Fw ≤ T−B). Setting Fw = T−B gives
	// the Appendix A regime: maximal fast-write resilience, with lucky
	// READ sequences containing at most one slow READ (fr = t).
	Fw int
	// NumReaders is the number of reader processes (R).
	NumReaders int
	// Writers is the number of writer clients sharing the register
	// (MWMR). Zero or one selects the single-writer protocol exactly as
	// published: no query round, stamps carry the writer's id with no
	// contention possible. Above one, a WRITE totally orders its stamp
	// against concurrent writers: by default adaptively — a writer whose
	// stamp cache is warm and whose telemetry says the key is quiet
	// sends a speculative pre-write directly (one round, servers reject
	// stale stamps), falling back to the explicit stamp-query round
	// (one extra round-trip) under contention (DESIGN.md §12).
	Writers int
	// NoSpec disables the speculative multi-writer fast path: every
	// MWMR WRITE pays the stamp-query round unconditionally, the pre-§12
	// behavior. Benchmarks and experiments use it to measure the two
	// regimes against each other; deployments have no reason to set it.
	NoSpec bool
	// RoundTimeout is the round-1 timer duration; zero selects
	// DefaultRoundTimeout.
	RoundTimeout time.Duration
	// OpTimeout bounds one operation; zero selects DefaultOpTimeout.
	OpTimeout time.Duration
	// Metrics attaches live client-side instrumentation (DESIGN.md
	// §13): every Writer and Reader built from this Config records its
	// operations into the shared instruments. Nil — the default —
	// disables recording entirely; the hot paths then carry only a nil
	// test, and either way no operation allocates for metrics.
	Metrics *Metrics
}

// S returns the number of servers, 2t + b + 1 (optimal resilience).
func (c Config) S() int { return 2*c.T + c.B + 1 }

// Fr returns the fast-read failure threshold fr = t − b − fw implied by
// the trade-off of Proposition 1.
func (c Config) Fr() int { return c.T - c.B - c.Fw }

// Quorum returns S − t, the number of replies every round waits for.
func (c Config) Quorum() int { return c.S() - c.T }

// SafeThreshold returns b + 1, the witness count for safe/safeFrozen.
func (c Config) SafeThreshold() int { return c.B + 1 }

// FastPWThreshold returns 2b + t + 1, the witness count for fast_pw
// (Fig. 2 line 5).
func (c Config) FastPWThreshold() int { return 2*c.B + c.T + 1 }

// FastWriteAcks returns S − fw, the PW_ACK count that lets a WRITE
// return after its first round (Fig. 1 line 8).
func (c Config) FastWriteAcks() int { return c.S() - c.Fw }

// WritersN returns the effective writer count: Writers, floored at one
// (the canonical single writer).
func (c Config) WritersN() int { return max(c.Writers, 1) }

// MW reports whether the deployment runs in multi-writer mode, in which
// every WRITE pays the stamp-query round.
func (c Config) MW() bool { return c.Writers > 1 }

// Validate checks the parameters against the model: 0 ≤ b ≤ t, at
// least one reader or none is fine, and 0 ≤ fw ≤ t − b so that
// fr = t − b − fw ≥ 0.
func (c Config) Validate() error {
	switch {
	case c.T < 0:
		return fmt.Errorf("config: t = %d must be non-negative", c.T)
	case c.B < 0 || c.B > c.T:
		return fmt.Errorf("config: b = %d must satisfy 0 ≤ b ≤ t = %d", c.B, c.T)
	case c.Fw < 0 || c.Fw > c.T-c.B:
		return fmt.Errorf("config: fw = %d must satisfy 0 ≤ fw ≤ t−b = %d", c.Fw, c.T-c.B)
	case c.NumReaders < 0:
		return fmt.Errorf("config: NumReaders = %d must be non-negative", c.NumReaders)
	case c.Writers < 0:
		return fmt.Errorf("config: Writers = %d must be non-negative", c.Writers)
	case c.RoundTimeout < 0:
		return fmt.Errorf("config: RoundTimeout must be non-negative")
	case c.OpTimeout < 0:
		return fmt.Errorf("config: OpTimeout must be non-negative")
	}
	return nil
}

// roundTimeout returns the effective round-1 timer duration.
func (c Config) roundTimeout() time.Duration {
	if c.RoundTimeout > 0 {
		return c.RoundTimeout
	}
	return DefaultRoundTimeout
}

// opTimeout returns the effective per-operation bound.
func (c Config) opTimeout() time.Duration {
	if c.OpTimeout > 0 {
		return c.OpTimeout
	}
	return DefaultOpTimeout
}
