package core

// Property tests for the locking lemmas at the predicate level: random
// views in which a set X of honest servers has locked a value can never
// select an older pair, regardless of what the remaining (malicious)
// servers report.

import (
	"math/rand"
	"testing"

	"luckystore/internal/types"
)

// Lemma 5 (locking a pw value): if t+b+1 responding servers report
// pw.ts ≥ X, no live pair with ts < X is selectable — for arbitrary
// replies from the remaining servers.
func TestLemma5LockingQuick(t *testing.T) {
	cfg := cfg21 // t=2, b=1, S=6; t+b+1 = 4
	rng := rand.New(rand.NewSource(11))
	const lockTS = types.TS(10)

	for trial := 0; trial < 500; trial++ {
		v := NewView(cfg, 1)
		// X: 4 honest servers whose pw is at or above the lock;
		// their w may lag arbitrarily (but is honest: ≤ pw).
		for i := 0; i < 4; i++ {
			pwTS := lockTS + types.TS(rng.Intn(3))
			wTS := types.TS(rng.Intn(int(pwTS) + 1))
			v.Update(types.ServerID(i), 1,
				honestPair(pwTS), honestPair(wTS), honestPair(0), types.InitialFrozen())
		}
		// The remaining 2 servers reply arbitrarily (Byzantine; only b=1
		// may exist in a real run — 2 makes the property strictly
		// stronger).
		for i := 4; i < 6; i++ {
			if rng.Intn(3) == 0 {
				continue // silent
			}
			v.Update(types.ServerID(i), 1,
				randomPair(rng), randomPair(rng), randomPair(rng), types.InitialFrozen())
		}
		sel, ok := v.Select()
		if !ok {
			continue // refusing to decide is always safe
		}
		if sel.TS < lockTS {
			t.Fatalf("trial %d: selected %v (ts < %d) — Lemma 5 violated", trial, sel, lockTS)
		}
	}
}

// Lemma 6 (locking a w value): if t+1 responding servers report both
// pw.ts ≥ X and w.ts ≥ X, no live pair with ts < X is selectable.
func TestLemma6LockingQuick(t *testing.T) {
	cfg := cfg21 // t+1 = 3
	rng := rand.New(rand.NewSource(13))
	const lockTS = types.TS(10)

	for trial := 0; trial < 500; trial++ {
		v := NewView(cfg, 1)
		for i := 0; i < 3; i++ {
			pwTS := lockTS + types.TS(rng.Intn(3))
			wTS := lockTS + types.TS(rng.Intn(2))
			if wTS > pwTS {
				wTS = pwTS
			}
			v.Update(types.ServerID(i), 1,
				honestPair(pwTS), honestPair(wTS), honestPair(0), types.InitialFrozen())
		}
		// Up to 3 further servers reply arbitrarily.
		for i := 3; i < 6; i++ {
			if rng.Intn(3) == 0 {
				continue
			}
			v.Update(types.ServerID(i), 1,
				randomPair(rng), randomPair(rng), randomPair(rng), types.InitialFrozen())
		}
		sel, ok := v.Select()
		if !ok {
			continue
		}
		if sel.TS < lockTS {
			t.Fatalf("trial %d: selected %v (ts < %d) — Lemma 6 violated", trial, sel, lockTS)
		}
	}
}

// honestPair builds the unique pair a correct process associates with a
// timestamp (one value per ts — Lemma 2).
func honestPair(ts types.TS) types.Tagged {
	if ts == 0 {
		return types.Bottom()
	}
	return types.Tagged{TS: ts, Val: types.Value("val-" + string(rune('a'+ts%26)))}
}

// randomPair builds a possibly equivocating pair: random timestamp,
// random value — including same-ts-different-value forgeries.
func randomPair(rng *rand.Rand) types.Tagged {
	ts := types.TS(rng.Intn(15))
	if ts == 0 {
		return types.Bottom()
	}
	return types.Tagged{TS: ts, Val: types.Value([]byte{byte('a' + rng.Intn(4))})}
}
