package core_test

// Crash-restart support on the core cluster: a warm restart revives
// the same automaton (crash-recovery with stable storage), a fresh
// restart installs a new one, and a swap substitutes an arbitrary
// automaton mid-run.

import (
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/fault"
)

func restartCfg() core.Config {
	return core.Config{T: 1, B: 0, Fw: 0, NumReaders: 1,
		RoundTimeout: 10 * time.Millisecond, OpTimeout: 3 * time.Second}
}

// Liveness proof of a warm restart: with S=3, t=1, crash s0, restart
// it, then crash s1 — operations now *need* the restarted s0 to reach
// the S−t quorum, so they only complete if the restart really revived
// the pump (and its state makes the reads correct).
func TestRestartServerRevivesQuorumMember(t *testing.T) {
	c, err := core.NewCluster(restartCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Writer().Write("v1"); err != nil {
		t.Fatal(err)
	}
	before := c.ServerAutomaton(0)

	c.CrashServer(0)
	if err := c.Writer().Write("v2"); err != nil {
		t.Fatalf("write with one crashed server: %v", err)
	}
	if err := c.RestartServer(0); err != nil {
		t.Fatal(err)
	}
	if c.ServerAutomaton(0) != before {
		t.Error("warm restart replaced the automaton (state lost)")
	}
	c.CrashServer(1)

	// Quorum is now {s0, s2}: both ops hang unless s0 serves again.
	if err := c.Writer().Write("v3"); err != nil {
		t.Fatalf("write needing the restarted server: %v", err)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatalf("read needing the restarted server: %v", err)
	}
	if got.Val != "v3" {
		t.Errorf("Read() = %v, want v3", got)
	}
}

func TestRestartServerFreshInstallsNewAutomaton(t *testing.T) {
	c, err := core.NewCluster(restartCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before := c.ServerAutomaton(2)
	c.CrashServer(2)
	if err := c.RestartServerFresh(2); err != nil {
		t.Fatal(err)
	}
	if c.ServerAutomaton(2) == before {
		t.Error("fresh restart kept the old automaton")
	}
	// The cluster still serves (amnesiac s2 plus two correct servers).
	if err := c.Writer().Write("after-fresh"); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Reader(0).Read(); err != nil || got.Val != "after-fresh" {
		t.Errorf("Read() = %v, %v", got, err)
	}
}

func TestSwapServerAutomatonMidRun(t *testing.T) {
	cfg := core.Config{T: 2, B: 1, Fw: 0, NumReaders: 1,
		RoundTimeout: 10 * time.Millisecond, OpTimeout: 3 * time.Second}
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Writer().Write("real"); err != nil {
		t.Fatal(err)
	}
	if err := c.SwapServerAutomaton(1, fault.ForgeHighTS(9999, "forged")); err != nil {
		t.Fatal(err)
	}
	// One liar within b=1: the protocol filters the lie.
	if err := c.Writer().Write("real2"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "real2" {
		t.Errorf("Read() = %v after Byzantine swap, want real2", got)
	}
	if err := c.RestartServer(99); err == nil {
		t.Error("restart of out-of-range server succeeded")
	}
}
