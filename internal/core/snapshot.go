package core

import (
	"sort"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// snapshotFrozenChunk bounds the frozen entries carried by one
// synthetic PW, comfortably inside the wire codec's frozen-set cap.
const snapshotFrozenChunk = 4096

// SnapshotRecords emits the server's state as a bounded sequence of
// synthetic protocol messages: replaying them into a fresh automaton
// reproduces pw/w/vw, every frozen slot and every reader timestamp
// exactly (storage.Snapshotter). Using ordinary messages keeps
// recovery on the automaton's only state-mutation path — a snapshot
// cannot express a state the protocol itself cannot reach.
//
// Order matters once: frozen slots are emitted before the reader
// timestamps. At replay time every readerTS is still tsr0, so the
// freezing guard (tsr >= readerTS[r]) accepts each stored pair
// verbatim; the READs that restore the timestamps come after. The
// register pairs ride W rounds 1–3 from the writer identity (accepted
// by both the standard and the regular variant); merges are monotone
// max-merges, so their relative order is irrelevant.
//
// The emission is bounded by live state — three pairs plus the
// per-reader slots, nothing per writer and nothing per historical
// write — which is what keeps the compacted log within the
// space-bounds yardstick (DESIGN.md §11).
func (s *Server) SnapshotRecords(emit func(from types.ProcID, m wire.Message) error) error {
	s.mu.Lock()
	pw, w, vw := s.pw, s.w, s.vw
	frozen := make([]types.FrozenEntry, 0, len(s.frozen))
	for r, fp := range s.frozen {
		frozen = append(frozen, types.FrozenEntry{Reader: r, PW: fp.PW, TSR: fp.TSR})
	}
	readers := make([]types.ReadStamp, 0, len(s.readerTS))
	for r, tsr := range s.readerTS {
		readers = append(readers, types.ReadStamp{Reader: r, TSR: tsr})
	}
	s.mu.Unlock()
	sort.Slice(frozen, func(i, j int) bool { return frozen[i].Reader < frozen[j].Reader })
	sort.Slice(readers, func(i, j int) bool { return readers[i].Reader < readers[j].Reader })

	from := types.WriterID()
	for len(frozen) > 0 {
		chunk := frozen
		if len(chunk) > snapshotFrozenChunk {
			chunk = chunk[:snapshotFrozenChunk]
		}
		frozen = frozen[len(chunk):]
		if err := emit(from, wire.PW{TS: 1, PW: pw, W: w, Frozen: chunk}); err != nil {
			return err
		}
	}
	if !pw.IsBottom() {
		if err := emit(from, wire.W{Round: 1, Tag: int64(pw.TS), C: pw}); err != nil {
			return err
		}
	}
	if !w.IsBottom() {
		if err := emit(from, wire.W{Round: 2, Tag: int64(w.TS), C: w}); err != nil {
			return err
		}
	}
	if !vw.IsBottom() {
		if err := emit(from, wire.W{Round: 3, Tag: int64(vw.TS), C: vw}); err != nil {
			return err
		}
	}
	for _, rs := range readers {
		if err := emit(rs.Reader, wire.Read{TSR: rs.TSR, Round: 2}); err != nil {
			return err
		}
	}
	return nil
}
