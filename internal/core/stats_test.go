package core

import (
	"testing"
	"time"
)

func TestOpStatsMath(t *testing.T) {
	var s OpStats
	if s.FastFraction() != 0 || s.MeanRounds() != 0 {
		t.Error("empty stats not zero")
	}
	s.record(1, true)
	s.record(1, true)
	s.record(3, false)
	if s.Ops != 3 || s.FastOps != 2 || s.TotalRounds != 5 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.FastFraction(); got < 0.66 || got > 0.67 {
		t.Errorf("FastFraction = %v", got)
	}
	if got := s.MeanRounds(); got < 1.66 || got > 1.67 {
		t.Errorf("MeanRounds = %v", got)
	}
}

func TestClientStatsAccumulate(t *testing.T) {
	cfg := Config{T: 2, B: 1, Fw: 1, NumReaders: 1, RoundTimeout: 10 * time.Millisecond}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two fast writes, then two crashes force a slow one.
	if err := c.Writer().Write("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Writer().Write("b"); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(0)
	c.CrashServer(1)
	if err := c.Writer().Write("c"); err != nil {
		t.Fatal(err)
	}
	ws := c.Writer().Stats()
	if ws.Ops != 3 || ws.FastOps != 2 || ws.TotalRounds != 1+1+3 {
		t.Errorf("writer stats = %+v", ws)
	}

	// Reads after the slow write are fast (vw populated).
	for i := 0; i < 4; i++ {
		if _, err := c.Reader(0).Read(); err != nil {
			t.Fatal(err)
		}
	}
	rs := c.Reader(0).Stats()
	if rs.Ops != 4 || rs.FastOps != 4 {
		t.Errorf("reader stats = %+v", rs)
	}
}
