package core_test

// Chaos testing: randomized fault mixes (Byzantine behaviors on up to b
// servers, crashes up to t total, mid-run crash timing) under a
// concurrent workload, with full-history atomicity checking. Each seed
// is deterministic, so failures reproduce.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/core"
	"luckystore/internal/fault"
	"luckystore/internal/node"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
	"luckystore/internal/workload"
)

func TestChaosAtomicityAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short mode")
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	cfg := core.Config{T: 2, B: 1, Fw: rng.Intn(2), NumReaders: 3,
		RoundTimeout: 5 * time.Millisecond, OpTimeout: 30 * time.Second}

	// Choose the Byzantine server and its behavior.
	byzIdx := rng.Intn(cfg.S())
	behaviors := []func() node.Automaton{
		func() node.Automaton { return fault.Mute() },
		func() node.Automaton { return fault.ForgeHighTS(types.TS(1000+rng.Intn(1000)), "forged") },
		func() node.Automaton { return fault.StaleBottom() },
		func() node.Automaton { return fault.RandomLiar(seed) },
		func() node.Automaton {
			return fault.Equivocator(map[types.ProcID]types.Tagged{
				types.ReaderID(0): {TS: 500, Val: "eq0"},
				types.ReaderID(1): {TS: 600, Val: "eq1"},
			}, types.Bottom())
		},
	}
	behavior := behaviors[rng.Intn(len(behaviors))]()

	c, err := core.NewCluster(cfg, core.WithServerAutomaton(byzIdx, behavior))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One additional crash (total failures = 2 = t): either up front or
	// injected after a few processed messages.
	crashIdx := rng.Intn(cfg.S())
	if crashIdx == byzIdx {
		crashIdx = (crashIdx + 1) % cfg.S()
	}
	if rng.Intn(2) == 0 {
		c.CrashServer(crashIdx)
	} else {
		c.CrashServerAfterSteps(crashIdx, rng.Intn(40))
	}

	rec, err := workload.Mixed{Writes: 30, ReadsPerReader: 20}.Run(c)
	if err != nil {
		t.Fatalf("seed %d: workload: %v", seed, err)
	}
	for _, v := range checker.CheckAtomicity(rec.Ops()) {
		t.Errorf("seed %d: %v", seed, v)
	}
	for _, op := range rec.Ops() {
		if op.Kind == checker.KindRead && (op.Value.Val == "forged" ||
			op.Value.Val == "eq0" || op.Value.Val == "eq1") {
			t.Errorf("seed %d: fabricated value surfaced: %v", seed, op.Value)
		}
	}
}

// A Byzantine server answering READs with a round number from the
// future must not be counted toward any round quorum, nor poison the
// view: the reader rejects acks with Round greater than the round it is
// currently running (no correct server answers a round not yet
// started).
func TestReaderIgnoresFutureRoundAcks(t *testing.T) {
	cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 1,
		RoundTimeout: 15 * time.Millisecond, OpTimeout: 5 * time.Second}
	evil := types.Tagged{TS: 777, Val: "future"}
	c, err := core.NewCluster(cfg, core.WithServerAutomaton(2, futureRoundLiar(evil)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Writer().Write("real"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "real" {
		t.Errorf("Read() = %v, future-round lie interfered", got)
	}
}

// futureRoundLiar acknowledges PW/W correctly (so writes proceed) but
// answers READs with Round+7 and a fabricated pair.
func futureRoundLiar(c types.Tagged) fault.Behavior {
	return func(from types.ProcID, m wire.Message) []transport.Outgoing {
		switch v := m.(type) {
		case wire.PW:
			return []transport.Outgoing{{To: from, Msg: wire.PWAck{TS: v.TS}}}
		case wire.W:
			return []transport.Outgoing{{To: from, Msg: wire.WAck{Round: v.Round, Tag: v.Tag}}}
		case wire.Read:
			return []transport.Outgoing{{To: from, Msg: wire.ReadAck{
				TSR: v.TSR, Round: v.Round + 7,
				PW: c, W: c, VW: c,
				Frozen: types.FrozenPair{PW: c, TSR: v.TSR},
			}}}
		default:
			return nil
		}
	}
}
