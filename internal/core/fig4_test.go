package core_test

// The Figure 4 storyline, run against the PAPER's algorithm (thresholds
// within the fw + fr ≤ t − b bound): the adversarial schedule that
// breaks any over-budget implementation must leave this one atomic.
// Blocks (t=2, b=1, S=6): B1=s0, B2=s1, T1={s2,s3}, Fw=s4, Fr=s5.
//
//   - run r1/r1′: wr1 = WRITE(v1) is lucky and fast while Fw's PW stays
//     in transit;
//   - run r2′/r′′2: reader0's rd1 runs while Fr's replies to it are in
//     transit — rd1 must return v1;
//   - run r4: B2 turns split-brain (honest to the writer and reader0,
//     denying everything to reader1) and T1's replies to reader1 are
//     delayed — reader1's rd2 must still return v1 (atomicity: rd1
//     precedes rd2).

import (
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/fault"
	"luckystore/internal/node"
	"luckystore/internal/types"
)

func TestFigure4ScheduleAgainstPaperAlgorithm(t *testing.T) {
	cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 2,
		RoundTimeout: 15 * time.Millisecond, OpTimeout: 10 * time.Second}

	// B2 = s1: split-brain, honest toward the writer and reader0.
	realB2 := core.NewServer()
	b2 := fault.NewSplitBrain(realB2, fault.StaleBottom(), types.WriterID(), types.ReaderID(0))
	c, err := core.NewCluster(cfg, core.WithServerAutomaton(1, node.Automaton(b2)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sim := c.Sim()

	var (
		fwSrv = types.ServerID(4)
		frSrv = types.ServerID(5)
		t1    = []types.ProcID{types.ServerID(2), types.ServerID(3)}
		rd1ID = types.ReaderID(0)
		rd2ID = types.ReaderID(1)
	)

	// --- r1: Fw's PW stays in transit; wr1 is fast on the other five.
	sim.Hold(types.WriterID(), fwSrv)
	if err := c.Writer().Write("v1"); err != nil {
		t.Fatal(err)
	}
	if !c.Writer().LastMeta().Fast {
		t.Fatalf("wr1 not fast: %+v", c.Writer().LastMeta())
	}

	// --- r2′: Fr's replies to reader0 stay in transit during rd1.
	sim.Hold(frSrv, rd1ID)
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 1, Val: "v1"}) {
		t.Fatalf("rd1 returned %v, want 〈1,v1〉", got)
	}

	// --- r4: T1's replies to reader1 are delayed; B2 denies to
	// reader1; Fr answers reader1 normally again.
	for _, sid := range t1 {
		sim.Hold(sid, rd2ID)
	}
	got, err = c.Reader(1).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 1, Val: "v1"}) {
		t.Fatalf("rd2 returned %v, want 〈1,v1〉 (atomicity after rd1)", got)
	}

	// Epilogue: heal the network; later reads still return v1 and are
	// fast again (rd2's write-back finished the fast write).
	sim.ReleaseAll()
	got, err = c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v1" {
		t.Fatalf("post-heal read returned %v", got)
	}
	if !c.Reader(0).LastMeta().Fast() {
		t.Errorf("post-heal read not fast: %+v", c.Reader(0).LastMeta())
	}
}
