package core

import (
	"sync"

	"luckystore/internal/node"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// Server is the server automaton of Figure 3. It keeps three
// timestamp–value fields — pw (pre-written), w (written) and vw (the
// third write round's "view-written" field) — plus, per reader, the
// reader's last announced READ timestamp tsr_j and the frozen slot
// frozen_rj used by the freezing mechanism.
//
// The automaton is pure and single-threaded: Step consumes one message
// and returns the replies to send. It never initiates communication
// (servers reply only to clients, per the paper's data-centric model).
//
// Memory discipline (DESIGN.md §5): the per-reader maps are nil until
// the first slow READ touches them. At millions-of-keys scale every KV
// key pins one Server per server process, and the overwhelmingly common
// key never sees a slow READ — so the idle per-key footprint is the
// bare struct, with no map headers or buckets. NewServer performs zero
// map allocations.
//
// The per-key state is bounded independently of the writer count (the
// space-bounds property, DESIGN.md §10): the automaton keeps exactly
// three tagged pairs plus the per-reader slots, and nothing per writer —
// a contending writer's identity lives only inside the stamps of the
// pairs themselves, so millions of writers cost a key nothing.
type Server struct {
	// mu guards all fields: the runner serializes Step calls, but tests
	// and experiments inspect server state concurrently.
	mu        sync.Mutex
	pw, w, vw types.Tagged
	frozen    map[types.ProcID]types.FrozenPair // nil until the first freeze applies
	readerTS  map[types.ProcID]types.ReaderTS   // nil until the first slow READ round

	// newreadScratch accumulates onPW's newread set without per-entry
	// growth reallocations; the set is cloned into the PW_ACK (the ack
	// escapes into mailboxes and client round state, so the scratch
	// itself must never leave the automaton). Steady state — no
	// outstanding slow READs — appends nothing and allocates nothing.
	newreadScratch []types.ReadStamp

	// ignoreReaderWrites makes the automaton drop W messages from
	// readers: the regular variant of Appendix D, which tolerates
	// malicious readers by never letting a reader modify pw/w/vw.
	ignoreReaderWrites bool

	// sm is the process-wide server instrumentation, shared by every
	// per-key automaton of a server (SetMetrics); nil when the process
	// runs uninstrumented.
	sm *ServerMetrics
}

var (
	_ node.Automaton     = (*Server)(nil)
	_ node.AppendStepper = (*Server)(nil)
)

// NewServer creates a server in its initial state
// (pw = w = vw = 〈ts0,⊥〉, all frozen slots initial, all reader
// timestamps tsr0). The per-reader maps are allocated lazily on first
// use, so an idle register costs only the struct itself.
func NewServer() *Server {
	return &Server{
		pw: types.Bottom(),
		w:  types.Bottom(),
		vw: types.Bottom(),
	}
}

// NewRegularServer creates a server for the Appendix D regular variant,
// identical to NewServer except that W messages from readers (write
// backs) are ignored.
func NewRegularServer() *Server {
	s := NewServer()
	s.ignoreReaderWrites = true
	return s
}

// State returns a copy of the server's stored pairs, for tests and
// experiment assertions.
func (s *Server) State() (pw, w, vw types.Tagged) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pw, s.w, s.vw
}

// FrozenFor returns the server's frozen slot for a reader.
func (s *Server) FrozenFor(r types.ProcID) types.FrozenPair {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frozenLocked(r)
}

func (s *Server) frozenLocked(r types.ProcID) types.FrozenPair {
	if f, ok := s.frozen[r]; ok {
		return f
	}
	return types.InitialFrozen()
}

// ReaderTS returns the reader timestamp stored for r (tsr0 if none).
func (s *Server) ReaderTS(r types.ProcID) types.ReaderTS {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readerTS[r]
}

// StateSize reports how many per-reader slots the server currently
// holds (frozen pairs and reader timestamps). The register pairs are
// always exactly three; everything else the automaton stores is
// per-reader and nothing is per-writer, so these two counts are the
// whole space-bounds story — experiments assert they stay flat as
// writers are added.
func (s *Server) StateSize() (frozenSlots, readerSlots int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frozen), len(s.readerTS)
}

// InjectState force-sets the server's fields, bypassing the protocol.
// Only malicious servers can reach arbitrary states (Section 2.1); the
// fault package and the upper-bound experiments use this to forge the
// σ1 states of the proof runs.
func (s *Server) InjectState(pw, w, vw types.Tagged) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pw, s.w, s.vw = pw, w, vw
}

// Step implements node.Automaton.
func (s *Server) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	return s.StepAppend(from, m, nil)
}

// StepAppend implements node.AppendStepper: replies are appended to out
// instead of allocated per message, so a driver with a reusable buffer
// steps the automaton without a single slice allocation. Messages that
// fail structural validation, or arrive from a process whose role may
// not send them, are dropped without a reply — a correct server never
// acts on garbage, and in the Byzantine model an unanswered message is
// indistinguishable from a slow channel.
func (s *Server) StepAppend(from types.ProcID, m wire.Message, out []transport.Outgoing) []transport.Outgoing {
	if wire.Validate(m) != nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch v := m.(type) {
	case wire.PW:
		if !from.IsWriter() {
			return out
		}
		return s.onPW(from, v, out)
	case wire.Read:
		// Readers query for READ; writers query round 1 only, for the
		// MWMR stamp discovery (a round-1 read leaves no trace in the
		// automaton, so a writer's query costs the server nothing).
		if !from.IsReader() && !(from.IsWriter() && v.Round == 1) {
			return out
		}
		return s.onRead(from, v, out)
	case wire.W:
		if !from.IsWriter() && !from.IsReader() {
			return out
		}
		if from.IsReader() && s.ignoreReaderWrites {
			return out
		}
		return s.onW(from, v, out)
	default:
		return out
	}
}

// onPW handles the pre-write message (Fig. 3 lines 3–8).
func (s *Server) onPW(from types.ProcID, m wire.PW, out []transport.Outgoing) []transport.Outgoing {
	// Writer-stamp rule for speculative pre-writes (DESIGN.md §12,
	// wire format v3): a spec PW whose pair is not strictly above the
	// installed pre-write is answered with PW_NACK and makes no state
	// change — the writer guessed its stamp from a cache and guessed
	// low, so it must fall back to the query round. Re-sending the
	// identical pair is exempt (answered with a normal ack) so a
	// retransmitted spec PW stays idempotent: the first copy already
	// installed the pair, and NACKing the second would abort a write
	// the servers in fact accepted.
	if m.Spec && !s.pw.Stamp().Less(m.PW.Stamp()) && s.pw != m.PW {
		s.sm.pwNack()
		return append(out, transport.Outgoing{To: from, Msg: wire.PWNack{TS: m.TS, Max: s.pw.Stamp()}})
	}
	s.sm.pw(m.Spec)
	s.update(&s.pw, m.PW)
	s.update(&s.w, m.W)
	// Apply the frozen set even when pw'/w' are older than the local
	// copies (Fig. 3 lines 5–6): the freeze for a reader takes effect
	// when its read timestamp is at least the one the server stored.
	for _, f := range m.Frozen {
		if f.TSR >= s.readerTS[f.Reader] {
			if s.frozen == nil {
				s.frozen = make(map[types.ProcID]types.FrozenPair)
			}
			s.frozen[f.Reader] = types.FrozenPair{PW: f.PW, TSR: f.TSR}
		}
	}
	// newread: every reader whose announced READ timestamp the writer
	// has not yet frozen a value for (Fig. 3 line 7). Built in the
	// reusable scratch, then cloned: the ack is retained by the client
	// past this step, so it must not alias automaton-owned memory.
	scratch := s.newreadScratch[:0]
	for rj, tsr := range s.readerTS {
		if tsr > s.frozenTSR(rj) {
			scratch = append(scratch, types.ReadStamp{Reader: rj, TSR: tsr})
		}
	}
	s.newreadScratch = scratch
	var newread []types.ReadStamp
	if len(scratch) > 0 {
		newread = make([]types.ReadStamp, len(scratch))
		copy(newread, scratch)
	}
	// Max is the pw stamp after applying this PW: under writer
	// contention it exceeds the acknowledged write's own stamp, which is
	// how the writer observes the race (wire format v2).
	return append(out, transport.Outgoing{To: from, Msg: wire.PWAck{TS: m.TS, Max: s.pw.Stamp(), NewRead: newread}})
}

// onRead handles a READ round message (Fig. 3 lines 9–11). The reader
// timestamp is recorded only from the second round on (and only for
// readers — a writer's stamp query must not enter the freezing
// machinery): a fast READ leaves no trace, and only slow READs signal
// the writer via freezing.
func (s *Server) onRead(from types.ProcID, m wire.Read, out []transport.Outgoing) []transport.Outgoing {
	s.sm.read()
	if m.TSR > s.readerTS[from] && m.Round > 1 && from.IsReader() {
		if s.readerTS == nil {
			s.readerTS = make(map[types.ProcID]types.ReaderTS)
		}
		s.readerTS[from] = m.TSR
	}
	return append(out, transport.Outgoing{
		To: from,
		Msg: wire.ReadAck{
			TSR:    m.TSR,
			Round:  m.Round,
			PW:     s.pw,
			W:      s.w,
			VW:     s.vw,
			Frozen: s.frozenLocked(from),
		},
	})
}

// onW handles a write-phase or write-back message (Fig. 3 lines 12–16):
// round 1 updates pw, round 2 additionally w, round 3 additionally vw.
func (s *Server) onW(from types.ProcID, m wire.W, out []transport.Outgoing) []transport.Outgoing {
	s.sm.w()
	s.update(&s.pw, m.C)
	if m.Round > 1 {
		s.update(&s.w, m.C)
	}
	if m.Round > 2 {
		s.update(&s.vw, m.C)
	}
	return append(out, transport.Outgoing{To: from, Msg: wire.WAck{Round: m.Round, Tag: m.Tag}})
}

// update replaces *local with c only if c is strictly newer in the
// stamp order 〈seq, writer〉 (Fig. 3 line 17), preserving Lemma 3
// (non-decreasing stamps). The writer tie-break is what lets two
// writers' concurrent same-seq pairs converge to one winner on every
// correct server.
func (s *Server) update(local *types.Tagged, c types.Tagged) {
	if local.Less(c) {
		*local = c
	}
}

func (s *Server) frozenTSR(rj types.ProcID) types.ReaderTS {
	if f, ok := s.frozen[rj]; ok {
		return f.TSR
	}
	return types.ReaderTS0
}
