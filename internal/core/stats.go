package core

// OpStats accumulates per-client operation statistics across a client's
// lifetime: how many operations ran, how many used the fast path, and
// the total round-trips spent. The fast fraction is the paper's
// best-case metric aggregated over a workload. Fast is a protocol
// property, not a round count: a multi-writer fast WRITE spends two
// round-trips (stamp query + PW) but is still fast — it skipped the W
// phase.
type OpStats struct {
	Ops         int
	FastOps     int
	TotalRounds int
}

// record folds one completed operation into the stats.
func (s *OpStats) record(rounds int, fast bool) {
	s.Ops++
	s.TotalRounds += rounds
	if fast {
		s.FastOps++
	}
}

// FastFraction reports the share of one-round operations, 0 for an
// empty history.
func (s OpStats) FastFraction() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.FastOps) / float64(s.Ops)
}

// MeanRounds reports the average round-trips per operation, 0 for an
// empty history.
func (s OpStats) MeanRounds() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.TotalRounds) / float64(s.Ops)
}

// Stats returns the writer's cumulative operation statistics. Faulty
// (injected-crash) writes are not counted: they never complete.
func (w *Writer) Stats() OpStats { return w.stats }

// Stats returns the reader's cumulative operation statistics.
func (r *Reader) Stats() OpStats { return r.stats }
