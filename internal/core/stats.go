package core

// OpStats accumulates per-client operation statistics across a client's
// lifetime: how many operations ran, how many used the one-round fast
// path, and the total round-trips spent. The fast fraction is the
// paper's best-case metric aggregated over a workload.
type OpStats struct {
	Ops         int
	FastOps     int
	TotalRounds int
}

// record folds one completed operation into the stats.
func (s *OpStats) record(rounds int) {
	s.Ops++
	s.TotalRounds += rounds
	if rounds == 1 {
		s.FastOps++
	}
}

// FastFraction reports the share of one-round operations, 0 for an
// empty history.
func (s OpStats) FastFraction() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.FastOps) / float64(s.Ops)
}

// MeanRounds reports the average round-trips per operation, 0 for an
// empty history.
func (s OpStats) MeanRounds() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.TotalRounds) / float64(s.Ops)
}

// Stats returns the writer's cumulative operation statistics. Faulty
// (injected-crash) writes are not counted: they never complete.
func (w *Writer) Stats() OpStats { return w.stats }

// Stats returns the reader's cumulative operation statistics.
func (r *Reader) Stats() OpStats { return r.stats }
