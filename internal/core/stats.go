package core

// OpStats accumulates per-client operation statistics across a client's
// lifetime: how many operations ran, how many used the fast path, and
// the total round-trips spent. The fast fraction is the paper's
// best-case metric aggregated over a workload. Fast is a protocol
// property, not a round count: a multi-writer fast WRITE spends two
// round-trips (stamp query + PW) but is still fast — it skipped the W
// phase.
type OpStats struct {
	Ops         int
	FastOps     int
	TotalRounds int
	// Speculative fast-path telemetry (writers in multi-writer
	// deployments only, DESIGN.md §12): attempts counts speculative
	// pre-writes sent, SpecOps those that completed the operation
	// (all-ACK quorum), SpecFlips those aborted to the query-round slow
	// path by a NACK or a starved quorum. An operation whose attempt
	// flipped still completes — it just pays the extra round — so
	// SpecFlips measures wasted speculation, not failures.
	SpecAttempts int
	SpecOps      int
	SpecFlips    int
}

// record folds one completed operation into the stats.
func (s *OpStats) record(rounds int, fast bool) {
	s.Ops++
	s.TotalRounds += rounds
	if fast {
		s.FastOps++
	}
}

// FastFraction reports the share of one-round operations, 0 for an
// empty history.
func (s OpStats) FastFraction() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.FastOps) / float64(s.Ops)
}

// FlipRate reports the share of speculative attempts that aborted to
// the slow path, 0 when the writer never speculated.
func (s OpStats) FlipRate() float64 {
	if s.SpecAttempts == 0 {
		return 0
	}
	return float64(s.SpecFlips) / float64(s.SpecAttempts)
}

// SpecFraction reports the share of operations that completed on the
// speculative fast path, 0 for an empty history.
func (s OpStats) SpecFraction() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.SpecOps) / float64(s.Ops)
}

// MeanRounds reports the average round-trips per operation, 0 for an
// empty history.
func (s OpStats) MeanRounds() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.TotalRounds) / float64(s.Ops)
}

// Stats returns the writer's cumulative operation statistics. Faulty
// (injected-crash) writes are not counted: they never complete.
func (w *Writer) Stats() OpStats { return w.stats }

// Stats returns the reader's cumulative operation statistics.
func (r *Reader) Stats() OpStats { return r.stats }
