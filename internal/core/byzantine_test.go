package core_test

// Black-box Byzantine tests: a full cluster with up to b malicious
// servers (plus crashes up to t total) must preserve atomicity, and
// lucky operations must stay fast when the failure budget allows.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/core"
	"luckystore/internal/fault"
	"luckystore/internal/node"
	"luckystore/internal/types"
)

func byzConfig() core.Config {
	return core.Config{T: 2, B: 1, Fw: 1, NumReaders: 3, RoundTimeout: 15 * time.Millisecond}
}

func newCluster(t *testing.T, cfg core.Config, opts ...core.ClusterOption) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// runWorkload drives sequential writes and concurrent reader loops,
// recording a history.
func runWorkload(t *testing.T, c *core.Cluster, writes, readsPerReader int) *checker.Recorder {
	t.Helper()
	rec := checker.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= writes; i++ {
			v := types.Value(fmt.Sprintf("v%d", i))
			inv := time.Now()
			err := c.Writer().Write(v)
			ret := time.Now()
			if err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			m := c.Writer().LastMeta()
			rec.Add(checker.Op{
				Client: types.WriterID(), Kind: checker.KindWrite,
				Value:  types.Tagged{TS: m.TS, Val: v},
				Invoke: inv, Return: ret, Rounds: m.Rounds, Fast: m.Fast,
			})
		}
	}()
	for r := 0; r < c.Config().NumReaders; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				inv := time.Now()
				got, err := c.Reader(r).Read()
				ret := time.Now()
				if err != nil {
					t.Errorf("reader %d read %d: %v", r, i, err)
					return
				}
				m := c.Reader(r).LastMeta()
				rec.Add(checker.Op{
					Client: types.ReaderID(r), Kind: checker.KindRead,
					Value:  got,
					Invoke: inv, Return: ret, Rounds: m.Rounds(), Fast: m.Fast(),
				})
			}
		}()
	}
	wg.Wait()
	return rec
}

func assertAtomic(t *testing.T, rec *checker.Recorder) {
	t.Helper()
	for _, v := range checker.CheckAtomicity(rec.Ops()) {
		t.Errorf("atomicity violation: %v", v)
	}
}

func TestAtomicityWithForgingByzantineServer(t *testing.T) {
	cfg := byzConfig()
	c := newCluster(t, cfg, core.WithServerAutomaton(2, fault.ForgeHighTS(10_000, "forged")))
	rec := runWorkload(t, c, 30, 20)
	assertAtomic(t, rec)
	// The forged value must never surface.
	for _, op := range rec.Ops() {
		if op.Kind == checker.KindRead && op.Value.Val == "forged" {
			t.Fatal("a read returned the forged value")
		}
	}
}

func TestAtomicityWithStaleBottomByzantineServer(t *testing.T) {
	cfg := byzConfig()
	c := newCluster(t, cfg, core.WithServerAutomaton(0, fault.StaleBottom()))
	if err := c.Writer().Write("v1"); err != nil {
		t.Fatal(err)
	}
	// Despite one server swearing the register is empty, no read may
	// return ⊥ any more.
	for r := 0; r < cfg.NumReaders; r++ {
		got, err := c.Reader(r).Read()
		if err != nil {
			t.Fatal(err)
		}
		if got.IsBottom() {
			t.Fatal("read dragged back to ⊥ by a stale-replaying Byzantine server")
		}
	}
}

func TestAtomicityWithRandomLiar(t *testing.T) {
	cfg := byzConfig()
	c := newCluster(t, cfg, core.WithServerAutomaton(4, fault.RandomLiar(1234)))
	rec := runWorkload(t, c, 25, 15)
	assertAtomic(t, rec)
}

func TestAtomicityWithEquivocator(t *testing.T) {
	cfg := byzConfig()
	eq := fault.Equivocator(map[types.ProcID]types.Tagged{
		types.ReaderID(0): {TS: 500, Val: "lie-A"},
		types.ReaderID(1): {TS: 600, Val: "lie-B"},
	}, types.Bottom())
	c := newCluster(t, cfg, core.WithServerAutomaton(1, eq))
	rec := runWorkload(t, c, 20, 15)
	assertAtomic(t, rec)
}

func TestAtomicityWithByzantinePlusCrash(t *testing.T) {
	// b=1 malicious + 1 crash = t=2 total failures: the worst case.
	cfg := byzConfig()
	c := newCluster(t, cfg, core.WithServerAutomaton(3, fault.ForgeHighTS(9_999, "evil")))
	c.CrashServer(5)
	rec := runWorkload(t, c, 20, 12)
	assertAtomic(t, rec)
}

// A Byzantine-mute server counts as one actual failure: with fw = 1 the
// write stays fast, and it cannot slow reads below their guarantee
// either (Theorem 3/4 with Byzantine failures, "all fw (resp. fr)
// failures can be malicious, provided fw ≤ b").
func TestFastOpsDespiteByzantineMute(t *testing.T) {
	cfg := byzConfig() // fw = 1, so the single mute failure is within budget
	c := newCluster(t, cfg, core.WithServerAutomaton(2, fault.Mute()))
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	if m := c.Writer().LastMeta(); !m.Fast {
		t.Errorf("write meta = %+v, want fast despite one mute server", m)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("Read() = %v", got)
	}
}

// A split-brain server that is honest to the writer but denies
// everything to the readers cannot break atomicity.
func TestAtomicityWithSplitBrainServer(t *testing.T) {
	cfg := byzConfig()
	real := core.NewServer()
	sb := fault.NewSplitBrain(real, fault.StaleBottom(), types.WriterID())
	c := newCluster(t, cfg, core.WithServerAutomaton(0, node.Automaton(sb)))
	rec := runWorkload(t, c, 20, 12)
	assertAtomic(t, rec)
}

// Section 5 ("Tolerating malicious readers"): the atomic algorithm is
// NOT robust against a malicious reader that writes back a forged
// value — a correct reader can then return a never-written value. This
// test documents the vulnerability the paper discusses; Appendix D's
// regular variant (internal/regular) closes it.
func TestMaliciousReaderCorruptsAtomicVariant(t *testing.T) {
	cfg := byzConfig()
	c := newCluster(t, cfg)
	if err := c.Writer().Write("v1"); err != nil {
		t.Fatal(err)
	}
	// Reader r2 turns malicious and "writes back" a forged pair with a
	// higher timestamp.
	ep, err := c.Sim().Endpoint(types.ReaderID(2))
	if err != nil {
		t.Fatal(err)
	}
	forged := types.Tagged{TS: 2, Val: "never-written"}
	servers := types.ServerIDs(cfg.S())
	if err := fault.MaliciousReaderWriteback(ep, servers, cfg.Quorum(), 1, forged); err != nil {
		t.Fatal(err)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != forged {
		t.Fatalf("Read() = %v; expected the documented vulnerability: a correct reader returns the forged pair %v", got, forged)
	}
}
