package core

import (
	"sort"

	"luckystore/internal/types"
)

// Thresholds carries the witness counts the selection predicates use.
// Factoring them out of Config lets the Appendix C two-phase variant
// (with its larger server set S = 2t + b + min(b,fr) + 1) and the
// Appendix D regular variant reuse the same predicate machinery, and
// lets the upper-bound experiments run deliberately weakened thresholds
// to reproduce the violation runs of Figures 4 and 5.
type Thresholds struct {
	S         int // total servers
	Quorum    int // S − t: round quorum and invalid_w witness count
	Safe      int // b + 1: safe / safeFrozen witness count
	FastPW    int // 2b + t + 1: fast_pw witness count
	FastVW    int // b + 1: fast_vw witness count
	InvalidPW int // S − b − t: invalid_pw witness count
}

// Thresholds returns the paper's thresholds for this configuration.
func (c Config) Thresholds() Thresholds {
	return Thresholds{
		S:         c.S(),
		Quorum:    c.Quorum(),
		Safe:      c.SafeThreshold(),
		FastPW:    c.FastPWThreshold(),
		FastVW:    c.SafeThreshold(),
		InvalidPW: c.S() - c.B - c.T,
	}
}

// View is a reader's accumulated picture of the servers during one READ
// operation: for every server that has responded at least once, the
// freshest pw, w, vw and frozen values reported (Fig. 2 lines 23–25).
//
// All predicates of Fig. 2 lines 1–10 are methods on View. They count
// only servers that actually responded: the pseudocode initializes the
// arrays to 〈ts0,⊥〉, but the correctness proofs (Lemmas 5 and 6,
// Theorem 2) count servers "that responded", and counting placeholders
// would let invalid_w/invalid_pw fire without evidence. See DESIGN.md.
type View struct {
	th  Thresholds
	tsr types.ReaderTS // current READ timestamp, for safeFrozen matching

	pw, w, vw map[types.ProcID]types.Tagged
	frozen    map[types.ProcID]types.FrozenPair
	round     map[types.ProcID]int // freshest ack round per server (rnd_i)
}

// NewView creates an empty view for a READ with timestamp tsr.
func NewView(cfg Config, tsr types.ReaderTS) *View {
	return NewViewWithThresholds(cfg.Thresholds(), tsr)
}

// NewViewWithThresholds creates an empty view with explicit thresholds.
func NewViewWithThresholds(th Thresholds, tsr types.ReaderTS) *View {
	return &View{
		th:     th,
		tsr:    tsr,
		pw:     make(map[types.ProcID]types.Tagged),
		w:      make(map[types.ProcID]types.Tagged),
		vw:     make(map[types.ProcID]types.Tagged),
		frozen: make(map[types.ProcID]types.FrozenPair),
		round:  make(map[types.ProcID]int),
	}
}

// Update ingests one READ_ACK from server si, keeping only the freshest
// round per server (Fig. 2 lines 23–25). It reports whether the ack was
// fresher than what the view already held.
func (v *View) Update(si types.ProcID, round int, pw, w, vw types.Tagged, frozen types.FrozenPair) bool {
	if round <= v.round[si] {
		return false
	}
	v.round[si] = round
	v.pw[si] = pw
	v.w[si] = w
	v.vw[si] = vw
	v.frozen[si] = frozen
	return true
}

// Responded returns the number of servers with at least one valid ack.
func (v *View) Responded() int { return len(v.round) }

// ReadLive reports readLive(c, i): server si's freshest pw or w equals
// c (Fig. 2 line 1).
func (v *View) ReadLive(c types.Tagged, si types.ProcID) bool {
	if _, ok := v.round[si]; !ok {
		return false
	}
	return v.pw[si] == c || v.w[si] == c
}

// Safe reports safe(c): at least b+1 servers readLive(c) (Fig. 2
// line 3).
func (v *View) Safe(c types.Tagged) bool {
	n := 0
	for si := range v.round {
		if v.ReadLive(c, si) {
			n++
		}
	}
	return n >= v.th.Safe
}

// SafeFrozen reports safeFrozen(c): at least b+1 servers report
// frozen_i.pw = c with frozen_i.tsr equal to this READ's timestamp
// (Fig. 2 lines 2 and 4).
func (v *View) SafeFrozen(c types.Tagged) bool {
	n := 0
	for si := range v.round {
		f := v.frozen[si]
		if f.PW == c && f.TSR == v.tsr {
			n++
		}
	}
	return n >= v.th.Safe
}

// FastPW reports fast_pw(c): at least 2b+t+1 servers report pw_i = c
// (Fig. 2 line 5).
func (v *View) FastPW(c types.Tagged) bool {
	n := 0
	for si := range v.round {
		if v.pw[si] == c {
			n++
		}
	}
	return n >= v.th.FastPW
}

// FastVW reports fast_vw(c): at least b+1 servers report vw_i = c
// (Fig. 2 line 6).
func (v *View) FastVW(c types.Tagged) bool {
	n := 0
	for si := range v.round {
		if v.vw[si] == c {
			n++
		}
	}
	return n >= v.th.FastVW
}

// Fast reports fast(c) = fast_pw(c) ∨ fast_vw(c) (Fig. 2 line 7).
func (v *View) Fast(c types.Tagged) bool { return v.FastPW(c) || v.FastVW(c) }

// CountW returns the number of responding servers whose freshest w
// field equals c. The Appendix C two-phase variant defines its fast
// predicate as CountW(c) ≥ S − t − fr (Fig. 7 line 5).
func (v *View) CountW(c types.Tagged) int {
	n := 0
	for si := range v.round {
		if v.w[si] == c {
			n++
		}
	}
	return n
}

// InvalidW reports invalid_w(c): at least S−t servers responded with
// some readLive value older than c (Fig. 2 line 8).
func (v *View) InvalidW(c types.Tagged) bool {
	n := 0
	for si := range v.round {
		if v.pw[si].OlderThan(c) || v.w[si].OlderThan(c) {
			n++
		}
	}
	return n >= v.th.Quorum
}

// InvalidPW reports invalid_pw(c): at least S−b−t servers responded
// with a pw value older than c (Fig. 2 line 9).
func (v *View) InvalidPW(c types.Tagged) bool {
	n := 0
	for si := range v.round {
		if v.pw[si].OlderThan(c) {
			n++
		}
	}
	return n >= v.th.InvalidPW
}

// HighCand reports highCand(c): every readLive pair c′ ≠ c with
// c′.ts ≥ c.ts is both invalid_w and invalid_pw (Fig. 2 line 10).
func (v *View) HighCand(c types.Tagged) bool {
	for _, cp := range v.liveCandidates() {
		if cp == c || cp.TS < c.TS {
			continue
		}
		if !v.InvalidW(cp) || !v.InvalidPW(cp) {
			return false
		}
	}
	return true
}

// Candidates returns the selection set C of Fig. 2 line 18: every pair
// that is (safe ∧ highCand) or safeFrozen, sorted by timestamp
// ascending for deterministic iteration.
func (v *View) Candidates() []types.Tagged {
	seen := make(map[types.Tagged]bool)
	var out []types.Tagged
	consider := func(c types.Tagged) {
		if seen[c] {
			return
		}
		seen[c] = true
		if (v.Safe(c) && v.HighCand(c)) || v.SafeFrozen(c) {
			out = append(out, c)
		}
	}
	for _, c := range v.liveCandidates() {
		consider(c)
	}
	for si := range v.round {
		f := v.frozen[si]
		if f.TSR == v.tsr {
			consider(f.PW)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Val < out[j].Val
	})
	return out
}

// Select returns the candidate with the highest timestamp (Fig. 2
// line 20) and whether any candidate exists.
func (v *View) Select() (types.Tagged, bool) {
	cs := v.Candidates()
	if len(cs) == 0 {
		return types.Tagged{}, false
	}
	return cs[len(cs)-1], true
}

// liveCandidates enumerates every distinct pair present in some
// responding server's pw or w field.
func (v *View) liveCandidates() []types.Tagged {
	seen := make(map[types.Tagged]bool)
	var out []types.Tagged
	for si := range v.round {
		for _, c := range [2]types.Tagged{v.pw[si], v.w[si]} {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}
