package core

import (
	"sort"

	"luckystore/internal/types"
)

// Thresholds carries the witness counts the selection predicates use.
// Factoring them out of Config lets the Appendix C two-phase variant
// (with its larger server set S = 2t + b + min(b,fr) + 1) and the
// Appendix D regular variant reuse the same predicate machinery, and
// lets the upper-bound experiments run deliberately weakened thresholds
// to reproduce the violation runs of Figures 4 and 5.
type Thresholds struct {
	S         int // total servers
	Quorum    int // S − t: round quorum and invalid_w witness count
	Safe      int // b + 1: safe / safeFrozen witness count
	FastPW    int // 2b + t + 1: fast_pw witness count
	FastVW    int // b + 1: fast_vw witness count
	InvalidPW int // S − b − t: invalid_pw witness count
}

// Thresholds returns the paper's thresholds for this configuration.
func (c Config) Thresholds() Thresholds {
	return Thresholds{
		S:         c.S(),
		Quorum:    c.Quorum(),
		Safe:      c.SafeThreshold(),
		FastPW:    c.FastPWThreshold(),
		FastVW:    c.SafeThreshold(),
		InvalidPW: c.S() - c.B - c.T,
	}
}

// View is a reader's accumulated picture of the servers during one READ
// operation: for every server that has responded at least once, the
// freshest pw, w, vw and frozen values reported (Fig. 2 lines 23–25).
//
// All predicates of Fig. 2 lines 1–10 are methods on View. They count
// only servers that actually responded: the pseudocode initializes the
// arrays to 〈ts0,⊥〉, but the correctness proofs (Lemmas 5 and 6,
// Theorem 2) count servers "that responded", and counting placeholders
// would let invalid_w/invalid_pw fire without evidence. See DESIGN.md.
//
// The view is flat and reusable: one slot per server, indexed by the
// server id's numeric index, with slot.round == 0 marking "has not
// responded" (correct servers only ever ack rounds ≥ 1). A reader keeps
// one View for its lifetime and calls Reset per READ — no maps, no
// per-operation allocation (DESIGN.md §5).
type View struct {
	th        Thresholds
	tsr       types.ReaderTS // current READ timestamp, for safeFrozen matching
	srv       []viewSlot     // indexed by server index; round == 0 means no ack yet
	responded int
}

// viewSlot is one server's freshest reported state.
type viewSlot struct {
	round  int // freshest ack round (rnd_i); 0 until the first valid ack
	pw     types.Tagged
	w      types.Tagged
	vw     types.Tagged
	frozen types.FrozenPair
}

// NewView creates an empty view for a READ with timestamp tsr.
func NewView(cfg Config, tsr types.ReaderTS) *View {
	return NewViewWithThresholds(cfg.Thresholds(), tsr)
}

// NewViewWithThresholds creates an empty view with explicit thresholds.
func NewViewWithThresholds(th Thresholds, tsr types.ReaderTS) *View {
	return &View{
		th:  th,
		tsr: tsr,
		srv: make([]viewSlot, th.S),
	}
}

// Reset clears the view for a new READ with timestamp tsr, reusing the
// slot array: the per-operation equivalent of NewViewWithThresholds
// without the allocation.
func (v *View) Reset(tsr types.ReaderTS) {
	v.tsr = tsr
	v.responded = 0
	clear(v.srv)
}

// Update ingests one READ_ACK from server si, keeping only the freshest
// round per server (Fig. 2 lines 23–25). It reports whether the ack was
// fresher than what the view already held. Acks claiming a round below
// 1, or an id outside the view's server set, are ignored.
func (v *View) Update(si types.ProcID, round int, pw, w, vw types.Tagged, frozen types.FrozenPair) bool {
	i := si.Index()
	if i < 0 || i >= len(v.srv) || !si.IsServer() {
		return false
	}
	s := &v.srv[i]
	if round <= s.round {
		return false
	}
	if s.round == 0 {
		v.responded++
	}
	s.round = round
	s.pw = pw
	s.w = w
	s.vw = vw
	s.frozen = frozen
	return true
}

// Responded returns the number of servers with at least one valid ack.
func (v *View) Responded() int { return v.responded }

// ReadLive reports readLive(c, i): server si's freshest pw or w equals
// c (Fig. 2 line 1).
func (v *View) ReadLive(c types.Tagged, si types.ProcID) bool {
	i := si.Index()
	if i < 0 || i >= len(v.srv) || v.srv[i].round == 0 {
		return false
	}
	return v.srv[i].pw == c || v.srv[i].w == c
}

// Safe reports safe(c): at least b+1 servers readLive(c) (Fig. 2
// line 3).
func (v *View) Safe(c types.Tagged) bool {
	n := 0
	for i := range v.srv {
		s := &v.srv[i]
		if s.round != 0 && (s.pw == c || s.w == c) {
			n++
		}
	}
	return n >= v.th.Safe
}

// SafeFrozen reports safeFrozen(c): at least b+1 servers report
// frozen_i.pw = c with frozen_i.tsr equal to this READ's timestamp
// (Fig. 2 lines 2 and 4).
func (v *View) SafeFrozen(c types.Tagged) bool {
	n := 0
	for i := range v.srv {
		s := &v.srv[i]
		if s.round != 0 && s.frozen.PW == c && s.frozen.TSR == v.tsr {
			n++
		}
	}
	return n >= v.th.Safe
}

// FastPW reports fast_pw(c): at least 2b+t+1 servers report pw_i = c
// (Fig. 2 line 5).
func (v *View) FastPW(c types.Tagged) bool {
	n := 0
	for i := range v.srv {
		if v.srv[i].round != 0 && v.srv[i].pw == c {
			n++
		}
	}
	return n >= v.th.FastPW
}

// FastVW reports fast_vw(c): at least b+1 servers report vw_i = c
// (Fig. 2 line 6).
func (v *View) FastVW(c types.Tagged) bool {
	n := 0
	for i := range v.srv {
		if v.srv[i].round != 0 && v.srv[i].vw == c {
			n++
		}
	}
	return n >= v.th.FastVW
}

// Fast reports fast(c) = fast_pw(c) ∨ fast_vw(c) (Fig. 2 line 7).
func (v *View) Fast(c types.Tagged) bool { return v.FastPW(c) || v.FastVW(c) }

// CountW returns the number of responding servers whose freshest w
// field equals c. The Appendix C two-phase variant defines its fast
// predicate as CountW(c) ≥ S − t − fr (Fig. 7 line 5).
func (v *View) CountW(c types.Tagged) int {
	n := 0
	for i := range v.srv {
		if v.srv[i].round != 0 && v.srv[i].w == c {
			n++
		}
	}
	return n
}

// InvalidW reports invalid_w(c): at least S−t servers responded with
// some readLive value older than c (Fig. 2 line 8).
func (v *View) InvalidW(c types.Tagged) bool {
	n := 0
	for i := range v.srv {
		s := &v.srv[i]
		if s.round != 0 && (s.pw.OlderThan(c) || s.w.OlderThan(c)) {
			n++
		}
	}
	return n >= v.th.Quorum
}

// InvalidPW reports invalid_pw(c): at least S−b−t servers responded
// with a pw value older than c (Fig. 2 line 9).
func (v *View) InvalidPW(c types.Tagged) bool {
	n := 0
	for i := range v.srv {
		if v.srv[i].round != 0 && v.srv[i].pw.OlderThan(c) {
			n++
		}
	}
	return n >= v.th.InvalidPW
}

// HighCand reports highCand(c): every readLive pair c′ ≠ c whose stamp
// is not below c's is both invalid_w and invalid_pw (Fig. 2 line 10,
// with the composite 〈seq, writer〉 stamp as the timestamp order).
func (v *View) HighCand(c types.Tagged) bool {
	for i := range v.srv {
		s := &v.srv[i]
		if s.round == 0 {
			continue
		}
		if !v.highCandAgainst(c, s.pw) || !v.highCandAgainst(c, s.w) {
			return false
		}
	}
	return true
}

// highCandAgainst checks the highCand condition for one competing live
// pair cp.
func (v *View) highCandAgainst(c, cp types.Tagged) bool {
	if cp == c || cp.Less(c) {
		return true
	}
	return v.InvalidW(cp) && v.InvalidPW(cp)
}

// isCandidate reports whether c is in the selection set C of Fig. 2
// line 18: (safe ∧ highCand) or safeFrozen.
func (v *View) isCandidate(c types.Tagged) bool {
	return (v.Safe(c) && v.HighCand(c)) || v.SafeFrozen(c)
}

// Candidates returns the selection set C of Fig. 2 line 18: every pair
// that is (safe ∧ highCand) or safeFrozen, sorted by stamp
// ascending for deterministic iteration. It allocates its result and is
// meant for tests and experiment assertions; the READ loop uses Select,
// which scans the view without allocating.
func (v *View) Candidates() []types.Tagged {
	seen := make(map[types.Tagged]bool)
	var out []types.Tagged
	consider := func(c types.Tagged) {
		if seen[c] {
			return
		}
		seen[c] = true
		if v.isCandidate(c) {
			out = append(out, c)
		}
	}
	for i := range v.srv {
		s := &v.srv[i]
		if s.round == 0 {
			continue
		}
		consider(s.pw)
		consider(s.w)
	}
	for i := range v.srv {
		s := &v.srv[i]
		if s.round != 0 && s.frozen.TSR == v.tsr {
			consider(s.frozen.PW)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if si, sj := out[i].Stamp(), out[j].Stamp(); si != sj {
			return si.Less(sj)
		}
		return out[i].Val < out[j].Val
	})
	return out
}

// Select returns the candidate with the highest stamp (Fig. 2 line 20,
// in the 〈seq, writer〉 order) and whether any candidate exists. It scans
// the slots directly — no candidate list, no map, no allocation —
// evaluating the predicates per distinct live/frozen pair;
// re-evaluating a pair reported by several servers is idempotent and
// cheaper than deduplicating. Ties on the full stamp (only producible
// by malicious processes) break toward the larger value, matching
// Candidates' sort order.
func (v *View) Select() (types.Tagged, bool) {
	var best types.Tagged
	found := false
	for i := range v.srv {
		s := &v.srv[i]
		if s.round == 0 {
			continue
		}
		best, found = v.selectBetter(best, found, s.pw)
		best, found = v.selectBetter(best, found, s.w)
		if s.frozen.TSR == v.tsr {
			best, found = v.selectBetter(best, found, s.frozen.PW)
		}
	}
	return best, found
}

// selectBetter folds one potential candidate into the running maximum.
func (v *View) selectBetter(best types.Tagged, found bool, c types.Tagged) (types.Tagged, bool) {
	if cs, bs := c.Stamp(), best.Stamp(); found && (cs.Less(bs) || (cs == bs && c.Val <= best.Val)) {
		return best, found // cannot improve; skip the predicate work
	}
	if v.isCandidate(c) {
		return c, true
	}
	return best, found
}
