//go:build !race

package core

import (
	"testing"

	"luckystore/internal/metrics"
)

// The instrumented-path allocation contract: live telemetry must ride
// the existing budget. Every hot-path observe is an atomic add (or a
// bits.Len64 bucket index into a fixed array), so enabling a full
// registry on a cluster may add at most one allocation per operation
// over the uninstrumented contract — and in practice adds zero.
const metricsExtraAllocBudget = 1

func instrumentedCluster(t *testing.T) *Cluster {
	t.Helper()
	cfg := Config{T: 1, B: 0, Fw: 0, NumReaders: 1}
	cfg.Metrics = NewMetrics(metrics.NewRegistry())
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestPutSteadyStateAllocsInstrumented(t *testing.T) {
	cl := instrumentedCluster(t)
	w := cl.Writer()
	for i := 0; i < 64; i++ {
		if err := w.Write("warm"); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		if err := w.Write("steady-state-value"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > steadyStateAllocBudget+metricsExtraAllocBudget+0.5 {
		t.Errorf("instrumented Write: %.1f allocs/op, budget %d+%d",
			allocs, steadyStateAllocBudget, metricsExtraAllocBudget)
	}
	if !w.LastMeta().Fast {
		t.Fatal("writes were not fast; the measurement did not hit the steady-state path")
	}
}

func TestGetSteadyStateAllocsInstrumented(t *testing.T) {
	cl := instrumentedCluster(t)
	if err := cl.Writer().Write("stored"); err != nil {
		t.Fatal(err)
	}
	r := cl.Reader(0)
	for i := 0; i < 64; i++ {
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > steadyStateAllocBudget+metricsExtraAllocBudget+0.5 {
		t.Errorf("instrumented Read: %.1f allocs/op, budget %d+%d",
			allocs, steadyStateAllocBudget, metricsExtraAllocBudget)
	}
	if !r.LastMeta().Fast() {
		t.Fatal("reads were not fast; the measurement did not hit the steady-state path")
	}
}

// TestMetricsObservedWhileWithinBudget guards against the trivially
// passing version of the contract: the counters must actually have
// moved during the measured traffic.
func TestMetricsObservedWhileWithinBudget(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := Config{T: 1, B: 0, Fw: 0, NumReaders: 1}
	cfg.Metrics = NewMetrics(reg)
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 16; i++ {
		if err := cl.Writer().Write("v"); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Reader(0).Read(); err != nil {
			t.Fatal(err)
		}
	}
	m := cfg.Metrics
	if m.WriteOps.Value() < 16 || m.ReadOps.Value() < 16 {
		t.Fatalf("instruments did not move: writes=%d reads=%d",
			m.WriteOps.Value(), m.ReadOps.Value())
	}
	if m.WriteLatency.Count() < 16 || m.ReadLatency.Count() < 16 {
		t.Fatalf("latency histograms did not move: w=%d r=%d",
			m.WriteLatency.Count(), m.ReadLatency.Count())
	}
}
