package core

import (
	"testing"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func tv(ts int64, val string) types.Tagged {
	return types.Tagged{TS: types.TS(ts), Val: types.Value(val)}
}

func stepOne(t *testing.T, s *Server, from types.ProcID, m wire.Message) wire.Message {
	t.Helper()
	out := s.Step(from, m)
	if len(out) != 1 {
		t.Fatalf("Step(%T) produced %d messages, want 1", m, len(out))
	}
	if out[0].To != from {
		t.Fatalf("reply addressed to %s, want %s", out[0].To, from)
	}
	return out[0].Msg
}

func TestServerInitialState(t *testing.T) {
	s := NewServer()
	pw, w, vw := s.State()
	if !pw.IsBottom() || !w.IsBottom() || !vw.IsBottom() {
		t.Errorf("initial state = (%v,%v,%v), want all bottom", pw, w, vw)
	}
	if got := s.FrozenFor(types.ReaderID(0)); got != types.InitialFrozen() {
		t.Errorf("initial frozen = %+v", got)
	}
	if got := s.ReaderTS(types.ReaderID(0)); got != types.ReaderTS0 {
		t.Errorf("initial readerTS = %d", got)
	}
}

func TestServerPWUpdatesAndAcks(t *testing.T) {
	s := NewServer()
	reply := stepOne(t, s, types.WriterID(), wire.PW{TS: 1, PW: tv(1, "a"), W: types.Bottom()})
	ack, ok := reply.(wire.PWAck)
	if !ok || ack.TS != 1 {
		t.Fatalf("reply = %+v, want PW_ACK ts=1", reply)
	}
	pw, w, _ := s.State()
	if pw != tv(1, "a") || !w.IsBottom() {
		t.Errorf("state after PW = (%v,%v)", pw, w)
	}
	// Second write carries w of the first.
	stepOne(t, s, types.WriterID(), wire.PW{TS: 2, PW: tv(2, "b"), W: tv(1, "a")})
	pw, w, _ = s.State()
	if pw != tv(2, "b") || w != tv(1, "a") {
		t.Errorf("state after 2nd PW = (%v,%v)", pw, w)
	}
}

func TestServerPWIgnoresStaleValues(t *testing.T) {
	s := NewServer()
	stepOne(t, s, types.WriterID(), wire.PW{TS: 5, PW: tv(5, "e"), W: tv(4, "d")})
	// A delayed (or Byzantine-replayed) older PW must not regress state
	// (Lemma 3, non-decreasing timestamps).
	stepOne(t, s, types.WriterID(), wire.PW{TS: 2, PW: tv(2, "b"), W: tv(1, "a")})
	pw, w, _ := s.State()
	if pw != tv(5, "e") || w != tv(4, "d") {
		t.Errorf("stale PW regressed state to (%v,%v)", pw, w)
	}
}

func TestServerRejectsPWFromNonWriter(t *testing.T) {
	s := NewServer()
	if out := s.Step(types.ReaderID(0), wire.PW{TS: 1, PW: tv(1, "a"), W: types.Bottom()}); out != nil {
		t.Errorf("server replied to PW from a reader: %v", out)
	}
	if out := s.Step(types.ServerID(1), wire.PW{TS: 1, PW: tv(1, "a"), W: types.Bottom()}); out != nil {
		t.Errorf("server replied to PW from a server: %v", out)
	}
	pw, _, _ := s.State()
	if !pw.IsBottom() {
		t.Error("PW from non-writer mutated state")
	}
}

func TestServerDropsMalformedMessages(t *testing.T) {
	s := NewServer()
	malformed := []wire.Message{
		nil,
		wire.PW{TS: 0, PW: types.Bottom(), W: types.Bottom()},
		wire.W{Round: 9, Tag: 1, C: tv(1, "x")},
		wire.Read{TSR: 0, Round: 1},
	}
	for _, m := range malformed {
		if out := s.Step(types.WriterID(), m); out != nil {
			t.Errorf("server replied to malformed %T: %v", m, out)
		}
	}
}

func TestServerWRoundSemantics(t *testing.T) {
	// Round 1 updates pw only; round 2 pw+w; round 3 pw+w+vw
	// (Fig. 3 lines 12–15).
	for round := 1; round <= 3; round++ {
		s := NewServer()
		reply := stepOne(t, s, types.WriterID(), wire.W{Round: round, Tag: 7, C: tv(7, "g")})
		ack, ok := reply.(wire.WAck)
		if !ok || ack.Round != round || ack.Tag != 7 {
			t.Fatalf("round %d reply = %+v", round, reply)
		}
		pw, w, vw := s.State()
		if pw != tv(7, "g") {
			t.Errorf("round %d: pw = %v", round, pw)
		}
		if (round > 1) != (w == tv(7, "g")) {
			t.Errorf("round %d: w = %v", round, w)
		}
		if (round > 2) != (vw == tv(7, "g")) {
			t.Errorf("round %d: vw = %v", round, vw)
		}
	}
}

func TestServerWFromReaderAllowed(t *testing.T) {
	s := NewServer()
	reply := stepOne(t, s, types.ReaderID(1), wire.W{Round: 3, Tag: 11, C: tv(4, "wb")})
	if _, ok := reply.(wire.WAck); !ok {
		t.Fatalf("reply = %+v, want WAck", reply)
	}
	pw, w, vw := s.State()
	if pw != tv(4, "wb") || w != tv(4, "wb") || vw != tv(4, "wb") {
		t.Errorf("write-back did not apply: (%v,%v,%v)", pw, w, vw)
	}
}

func TestRegularServerIgnoresReaderWriteBack(t *testing.T) {
	s := NewRegularServer()
	if out := s.Step(types.ReaderID(0), wire.W{Round: 3, Tag: 1, C: tv(9, "evil")}); out != nil {
		t.Errorf("regular server replied to reader write-back: %v", out)
	}
	pw, _, _ := s.State()
	if !pw.IsBottom() {
		t.Error("regular server applied reader write-back")
	}
	// The writer's W messages still apply.
	stepOne(t, s, types.WriterID(), wire.W{Round: 2, Tag: 1, C: tv(1, "ok")})
	pw, w, _ := s.State()
	if pw != tv(1, "ok") || w != tv(1, "ok") {
		t.Errorf("regular server dropped writer W: (%v,%v)", pw, w)
	}
}

func TestServerReadAckContents(t *testing.T) {
	s := NewServer()
	stepOne(t, s, types.WriterID(), wire.PW{TS: 3, PW: tv(3, "c"), W: tv(2, "b")})
	stepOne(t, s, types.WriterID(), wire.W{Round: 3, Tag: 1, C: tv(1, "a")}) // older: only vw picks nothing new
	reply := stepOne(t, s, types.ReaderID(0), wire.Read{TSR: 1, Round: 1})
	ack, ok := reply.(wire.ReadAck)
	if !ok {
		t.Fatalf("reply = %+v", reply)
	}
	if ack.TSR != 1 || ack.Round != 1 {
		t.Errorf("ack tags = (%d,%d)", ack.TSR, ack.Round)
	}
	if ack.PW != tv(3, "c") || ack.W != tv(2, "b") || ack.VW != tv(1, "a") {
		t.Errorf("ack contents = (%v,%v,%v)", ack.PW, ack.W, ack.VW)
	}
	if ack.Frozen != types.InitialFrozen() {
		t.Errorf("ack frozen = %+v", ack.Frozen)
	}
}

func TestServerRecordsReaderTSOnlyAfterRoundOne(t *testing.T) {
	s := NewServer()
	rj := types.ReaderID(0)
	// Round 1 must not record the timestamp (fast READs leave no trace,
	// Fig. 3 line 10).
	stepOne(t, s, rj, wire.Read{TSR: 5, Round: 1})
	if got := s.ReaderTS(rj); got != 0 {
		t.Errorf("round-1 READ recorded tsr = %d", got)
	}
	stepOne(t, s, rj, wire.Read{TSR: 5, Round: 2})
	if got := s.ReaderTS(rj); got != 5 {
		t.Errorf("round-2 READ recorded tsr = %d, want 5", got)
	}
	// Older timestamps never regress the record.
	stepOne(t, s, rj, wire.Read{TSR: 3, Round: 2})
	if got := s.ReaderTS(rj); got != 5 {
		t.Errorf("stale READ regressed tsr to %d", got)
	}
}

func TestServerNewreadPiggyback(t *testing.T) {
	s := NewServer()
	rj := types.ReaderID(2)
	// A slow READ announces tsr=4.
	stepOne(t, s, rj, wire.Read{TSR: 4, Round: 2})
	reply := stepOne(t, s, types.WriterID(), wire.PW{TS: 1, PW: tv(1, "a"), W: types.Bottom()})
	ack := reply.(wire.PWAck)
	if len(ack.NewRead) != 1 || ack.NewRead[0] != (types.ReadStamp{Reader: rj, TSR: 4}) {
		t.Fatalf("newread = %+v, want [{r2 4}]", ack.NewRead)
	}
	// Once the writer freezes a value for tsr 4, the server stops
	// reporting that READ.
	frozen := []types.FrozenEntry{{Reader: rj, PW: tv(2, "b"), TSR: 4}}
	reply = stepOne(t, s, types.WriterID(), wire.PW{TS: 2, PW: tv(2, "b"), W: tv(1, "a"), Frozen: frozen})
	ack = reply.(wire.PWAck)
	if len(ack.NewRead) != 0 {
		t.Errorf("newread after freeze = %+v, want empty", ack.NewRead)
	}
	if got := s.FrozenFor(rj); got != (types.FrozenPair{PW: tv(2, "b"), TSR: 4}) {
		t.Errorf("frozen slot = %+v", got)
	}
}

func TestServerFrozenAppliesOnlyForCurrentOrNewerTSR(t *testing.T) {
	s := NewServer()
	rj := types.ReaderID(0)
	stepOne(t, s, rj, wire.Read{TSR: 6, Round: 2})
	// A freeze for an older READ (tsr 4 < stored 6) must be ignored
	// (Fig. 3 line 6 requires tsr'_j ≥ tsr_j).
	old := []types.FrozenEntry{{Reader: rj, PW: tv(1, "old"), TSR: 4}}
	stepOne(t, s, types.WriterID(), wire.PW{TS: 1, PW: tv(1, "old"), W: types.Bottom(), Frozen: old})
	if got := s.FrozenFor(rj); got != types.InitialFrozen() {
		t.Errorf("stale freeze applied: %+v", got)
	}
	// A freeze for a newer READ applies even when the PW pair is stale.
	stepOne(t, s, types.WriterID(), wire.PW{TS: 9, PW: tv(9, "i"), W: tv(8, "h")})
	newer := []types.FrozenEntry{{Reader: rj, PW: tv(2, "nw"), TSR: 7}}
	stepOne(t, s, types.WriterID(), wire.PW{TS: 2, PW: tv(2, "nw"), W: tv(1, "old"), Frozen: newer})
	if got := s.FrozenFor(rj); got != (types.FrozenPair{PW: tv(2, "nw"), TSR: 7}) {
		t.Errorf("frozen slot = %+v, want {〈2,nw〉 7}", got)
	}
	// …and the stale PW pair itself must not have regressed pw/w.
	pw, w, _ := s.State()
	if pw != tv(9, "i") || w != tv(8, "h") {
		t.Errorf("state regressed to (%v,%v)", pw, w)
	}
}

func TestServerStepIsPureOnUnknownKinds(t *testing.T) {
	s := NewServer()
	if out := s.Step(types.WriterID(), wire.ABDRead{Seq: 1}); out != nil {
		t.Errorf("core server replied to ABD message: %v", out)
	}
}

// The automaton must never send to anyone but the requesting client.
func TestServerRepliesOnlyToSender(t *testing.T) {
	s := NewServer()
	msgs := []struct {
		from types.ProcID
		m    wire.Message
	}{
		{types.WriterID(), wire.PW{TS: 1, PW: tv(1, "a"), W: types.Bottom()}},
		{types.ReaderID(0), wire.Read{TSR: 1, Round: 1}},
		{types.WriterID(), wire.W{Round: 2, Tag: 1, C: tv(1, "a")}},
	}
	for _, tc := range msgs {
		for _, o := range s.Step(tc.from, tc.m) {
			if o.To != tc.from {
				t.Errorf("reply to %s for %T sent from %s", o.To, tc.m, tc.from)
			}
		}
	}
}
