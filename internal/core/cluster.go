package core

import (
	"fmt"

	"luckystore/internal/node"
	"luckystore/internal/simnet"
	"luckystore/internal/storage"
	"luckystore/internal/transport"
	"luckystore/internal/types"
)

// Cluster wires S server automata, WritersN() writers and NumReaders
// readers over a network, owning every goroutine it starts. It is the
// unit the examples, tests and experiments operate on.
type Cluster struct {
	cfg     Config
	net     transport.Network
	sim     *simnet.Network // non-nil when the cluster built its own simnet
	factory func() node.Automaton
	runners []*node.Runner
	servers []node.Automaton // inner automata, for state inspection
	writers []*Writer
	readers []*Reader

	store    storage.Provider
	backends []storage.Backend // per server; nil when not durable
}

// ClusterOption configures a Cluster.
type ClusterOption func(*clusterOpts)

type clusterOpts struct {
	net       transport.Network
	sim       *simnet.Network
	automata  map[int]node.Automaton
	regular   bool
	dontStart map[int]bool
	store     storage.Provider
}

// WithNetwork runs the cluster over an externally built network; the
// cluster still closes it on Close. Use this to keep a handle on a
// simnet for delay/hold control.
func WithNetwork(n transport.Network) ClusterOption {
	return func(o *clusterOpts) {
		o.net = n
		if s, ok := n.(*simnet.Network); ok {
			o.sim = s
		}
	}
}

// WithServerAutomaton substitutes the automaton of server i — the hook
// used to install Byzantine behaviors from internal/fault.
func WithServerAutomaton(i int, a node.Automaton) ClusterOption {
	return func(o *clusterOpts) { o.automata[i] = a }
}

// WithCrashedServer starts the cluster with server i already crashed
// (its runner never starts): an initially crash-faulty server.
func WithCrashedServer(i int) ClusterOption {
	return func(o *clusterOpts) { o.dontStart[i] = true }
}

// WithRegularServers installs Appendix D regular-variant servers
// (readers' write-backs ignored) instead of the default atomic ones.
func WithRegularServers() ClusterOption {
	return func(o *clusterOpts) { o.regular = true }
}

// WithStorage gives every server a durable backend from the provider
// (one per server, named by server identity): state-mutating messages
// are logged and committed before their replies leave the server, any
// existing records are replayed into the automaton at startup, and
// RestartServer recovers from the backend instead of trusting what
// the dead process left in memory. Servers whose automata were
// substituted via WithServerAutomaton run without storage — a
// Byzantine automaton has no meaningful durable state.
func WithStorage(p storage.Provider) ClusterOption {
	return func(o *clusterOpts) { o.store = p }
}

// NewCluster builds and starts a cluster for cfg.
func NewCluster(cfg Config, opts ...ClusterOption) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := &clusterOpts{
		automata:  make(map[int]node.Automaton),
		dontStart: make(map[int]bool),
	}
	for _, opt := range opts {
		opt(o)
	}

	ids := make([]types.ProcID, 0, cfg.S()+cfg.NumReaders+cfg.WritersN())
	ids = append(ids, types.ServerIDs(cfg.S())...)
	ids = append(ids, types.WriterIDs(cfg.WritersN())...)
	ids = append(ids, types.ReaderIDs(cfg.NumReaders)...)

	c := &Cluster{cfg: cfg, store: o.store}
	if o.regular {
		c.factory = func() node.Automaton { return NewRegularServer() }
	} else {
		c.factory = func() node.Automaton { return NewServer() }
	}
	if o.net != nil {
		c.net, c.sim = o.net, o.sim
	} else {
		sim, err := simnet.New(ids)
		if err != nil {
			return nil, fmt.Errorf("cluster network: %w", err)
		}
		c.net, c.sim = sim, sim
	}

	for i := 0; i < cfg.S(); i++ {
		ep, err := c.net.Endpoint(types.ServerID(i))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster server %d: %w", i, err)
		}
		a := o.automata[i]
		substituted := a != nil
		if a == nil {
			a = c.factory()
		}
		run := a
		var back storage.Backend
		if c.store != nil && !substituted {
			back, err = c.openAndRecover(i, a)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster server %d storage: %w", i, err)
			}
			run = storage.NewDurable(a, back, types.ServerID(i))
		}
		r := node.NewRunner(ep, run)
		c.servers = append(c.servers, a)
		c.backends = append(c.backends, back)
		c.runners = append(c.runners, r)
		if !o.dontStart[i] {
			r.Start()
		}
	}

	for i := 0; i < cfg.WritersN(); i++ {
		wid := types.WriterIDN(i)
		wep, err := c.net.Endpoint(wid)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster writer %s: %w", wid, err)
		}
		c.writers = append(c.writers, NewWriter(cfg, wid, wep))
	}

	for i := 0; i < cfg.NumReaders; i++ {
		rep, err := c.net.Endpoint(types.ReaderID(i))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster reader %d: %w", i, err)
		}
		c.readers = append(c.readers, NewReader(cfg, types.ReaderID(i), rep))
	}
	return c, nil
}

// openAndRecover opens server i's backend and replays whatever it
// already holds into a — on a fresh provider that is nothing; on a
// reopened data directory it is the pre-crash state.
func (c *Cluster) openAndRecover(i int, a node.Automaton) (storage.Backend, error) {
	back, err := c.store.Open(string(types.ServerID(i)))
	if err != nil {
		return nil, err
	}
	if _, err := storage.Recover(back, a); err != nil {
		back.Close()
		return nil, err
	}
	return back, nil
}

// ServerBackend returns server i's storage backend, nil when the
// cluster runs without WithStorage (or the automaton was substituted).
// Chaos deployments use it to arm injected disk faults.
func (c *Cluster) ServerBackend(i int) storage.Backend { return c.backends[i] }

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Writer returns the canonical writer client (writer 0): the only one
// in single-writer deployments.
func (c *Cluster) Writer() *Writer { return c.writers[0] }

// WriterN returns the i-th writer client; NumWriters gives the count.
func (c *Cluster) WriterN(i int) *Writer { return c.writers[i] }

// NumWriters returns the number of writer clients the cluster runs.
func (c *Cluster) NumWriters() int { return len(c.writers) }

// Reader returns the i-th reader client.
func (c *Cluster) Reader(i int) *Reader { return c.readers[i] }

// Sim returns the underlying simulated network, or nil when the
// cluster runs on another transport.
func (c *Cluster) Sim() *simnet.Network { return c.sim }

// ServerAutomaton returns the automaton of server i (for state
// assertions in tests; a *Server unless substituted).
func (c *Cluster) ServerAutomaton(i int) node.Automaton { return c.servers[i] }

// CrashServer crash-stops server i. It is idempotent.
func (c *Cluster) CrashServer(i int) { c.runners[i].Crash() }

// CrashServerAfterSteps schedules server i to crash after n more
// processed messages.
func (c *Cluster) CrashServerAfterSteps(i, n int) { c.runners[i].CrashAfterSteps(n) }

// RestartServer restarts server i's message pump after a crash — the
// crash-recovery-with-stable-storage transition, so the restarted
// server is merely slow, not faulty, in the model's terms. What
// "stable storage" means depends on how the cluster was built: with a
// WithStorage backend, a fresh automaton is rebuilt by replaying the
// server's WAL (the in-memory state died with the crash, exactly as a
// real process death would lose it); without one — the default — the
// automaton object is simply kept across the restart, which models
// stable storage only for in-process crashes. Messages sent while the
// server was down that are still queued in its inbox are processed
// after the restart (they were "in transit").
//
// Restart methods are for use by one coordinating goroutine (a test or
// a chaos schedule); they do not synchronize with each other.
func (c *Cluster) RestartServer(i int) error {
	if i < 0 || i >= len(c.servers) {
		return fmt.Errorf("cluster restart: server %d out of range [0,%d)", i, len(c.servers))
	}
	if c.backends[i] == nil {
		return c.restart(i, c.servers[i], c.servers[i])
	}
	a := c.factory()
	if _, err := storage.Recover(c.backends[i], a); err != nil {
		return fmt.Errorf("cluster restart server %d: %w", i, err)
	}
	return c.restart(i, a, storage.NewDurable(a, c.backends[i], types.ServerID(i)))
}

// RestartServerFresh restarts server i with a brand-new automaton AND
// a wiped backend: a crash-recovery with NO stable storage — the only
// amnesiac path. An amnesiac server answers protocol-correctly from
// initial state, which the model can only classify as Byzantine —
// schedules must count fresh-restarted servers against b.
func (c *Cluster) RestartServerFresh(i int) error {
	if i < 0 || i >= len(c.servers) {
		return fmt.Errorf("cluster restart: server %d out of range [0,%d)", i, len(c.servers))
	}
	a := c.factory()
	if c.backends[i] == nil {
		return c.restart(i, a, a)
	}
	if err := c.backends[i].Wipe(); err != nil {
		return fmt.Errorf("cluster fresh-restart server %d: %w", i, err)
	}
	return c.restart(i, a, storage.NewDurable(a, c.backends[i], types.ServerID(i)))
}

// SwapServerAutomaton crash-stops server i and brings it back running
// the given automaton — the hook chaos schedules use to turn a correct
// server Byzantine (an internal/fault behavior) mid-run. The swapped-in
// automaton runs without storage; the server's backend is left intact,
// so a later RestartServer recovers the last correct durable state.
func (c *Cluster) SwapServerAutomaton(i int, a node.Automaton) error { return c.restart(i, a, a) }

// restart replaces server i's runner: inner is what tests inspect via
// ServerAutomaton, run is what the runner actually steps (a Durable
// wrapper around inner when the server is disk-backed).
func (c *Cluster) restart(i int, inner, run node.Automaton) error {
	if i < 0 || i >= len(c.runners) {
		return fmt.Errorf("cluster restart: server %d out of range [0,%d)", i, len(c.runners))
	}
	c.runners[i].Crash() // idempotent; joins the old pump
	ep, err := c.net.Endpoint(types.ServerID(i))
	if err != nil {
		return fmt.Errorf("cluster restart server %d: %w", i, err)
	}
	r := node.NewRunner(ep, run)
	c.servers[i] = inner
	c.runners[i] = r
	r.Start()
	return nil
}

// Close stops every server runner and shuts the network down, joining
// all goroutines the cluster started, then closes the storage
// backends (flushing anything pending).
func (c *Cluster) Close() {
	if c.net != nil {
		_ = c.net.Close() // closing endpoints unblocks every runner
	}
	for _, r := range c.runners {
		r.Stop()
	}
	for _, b := range c.backends {
		if b != nil {
			_ = b.Close()
		}
	}
}
