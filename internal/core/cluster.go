package core

import (
	"fmt"

	"luckystore/internal/node"
	"luckystore/internal/simnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
)

// Cluster wires S server automata, one writer and NumReaders readers
// over a network, owning every goroutine it starts. It is the unit the
// examples, tests and experiments operate on.
type Cluster struct {
	cfg     Config
	net     transport.Network
	sim     *simnet.Network // non-nil when the cluster built its own simnet
	runners []*node.Runner
	servers []node.Automaton
	writer  *Writer
	readers []*Reader
}

// ClusterOption configures a Cluster.
type ClusterOption func(*clusterOpts)

type clusterOpts struct {
	net       transport.Network
	sim       *simnet.Network
	automata  map[int]node.Automaton
	regular   bool
	dontStart map[int]bool
}

// WithNetwork runs the cluster over an externally built network; the
// cluster still closes it on Close. Use this to keep a handle on a
// simnet for delay/hold control.
func WithNetwork(n transport.Network) ClusterOption {
	return func(o *clusterOpts) {
		o.net = n
		if s, ok := n.(*simnet.Network); ok {
			o.sim = s
		}
	}
}

// WithServerAutomaton substitutes the automaton of server i — the hook
// used to install Byzantine behaviors from internal/fault.
func WithServerAutomaton(i int, a node.Automaton) ClusterOption {
	return func(o *clusterOpts) { o.automata[i] = a }
}

// WithCrashedServer starts the cluster with server i already crashed
// (its runner never starts): an initially crash-faulty server.
func WithCrashedServer(i int) ClusterOption {
	return func(o *clusterOpts) { o.dontStart[i] = true }
}

// WithRegularServers installs Appendix D regular-variant servers
// (readers' write-backs ignored) instead of the default atomic ones.
func WithRegularServers() ClusterOption {
	return func(o *clusterOpts) { o.regular = true }
}

// NewCluster builds and starts a cluster for cfg.
func NewCluster(cfg Config, opts ...ClusterOption) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := &clusterOpts{
		automata:  make(map[int]node.Automaton),
		dontStart: make(map[int]bool),
	}
	for _, opt := range opts {
		opt(o)
	}

	ids := make([]types.ProcID, 0, cfg.S()+cfg.NumReaders+1)
	ids = append(ids, types.ServerIDs(cfg.S())...)
	ids = append(ids, types.WriterID())
	ids = append(ids, types.ReaderIDs(cfg.NumReaders)...)

	c := &Cluster{cfg: cfg}
	if o.net != nil {
		c.net, c.sim = o.net, o.sim
	} else {
		sim, err := simnet.New(ids)
		if err != nil {
			return nil, fmt.Errorf("cluster network: %w", err)
		}
		c.net, c.sim = sim, sim
	}

	for i := 0; i < cfg.S(); i++ {
		ep, err := c.net.Endpoint(types.ServerID(i))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster server %d: %w", i, err)
		}
		a := o.automata[i]
		if a == nil {
			if o.regular {
				a = NewRegularServer()
			} else {
				a = NewServer()
			}
		}
		r := node.NewRunner(ep, a)
		c.servers = append(c.servers, a)
		c.runners = append(c.runners, r)
		if !o.dontStart[i] {
			r.Start()
		}
	}

	wep, err := c.net.Endpoint(types.WriterID())
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("cluster writer: %w", err)
	}
	c.writer = NewWriter(cfg, wep)

	for i := 0; i < cfg.NumReaders; i++ {
		rep, err := c.net.Endpoint(types.ReaderID(i))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster reader %d: %w", i, err)
		}
		c.readers = append(c.readers, NewReader(cfg, types.ReaderID(i), rep))
	}
	return c, nil
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Writer returns the single writer client.
func (c *Cluster) Writer() *Writer { return c.writer }

// Reader returns the i-th reader client.
func (c *Cluster) Reader(i int) *Reader { return c.readers[i] }

// Sim returns the underlying simulated network, or nil when the
// cluster runs on another transport.
func (c *Cluster) Sim() *simnet.Network { return c.sim }

// ServerAutomaton returns the automaton of server i (for state
// assertions in tests; a *Server unless substituted).
func (c *Cluster) ServerAutomaton(i int) node.Automaton { return c.servers[i] }

// CrashServer crash-stops server i. It is idempotent.
func (c *Cluster) CrashServer(i int) { c.runners[i].Crash() }

// CrashServerAfterSteps schedules server i to crash after n more
// processed messages.
func (c *Cluster) CrashServerAfterSteps(i, n int) { c.runners[i].CrashAfterSteps(n) }

// Close stops every server runner and shuts the network down, joining
// all goroutines the cluster started.
func (c *Cluster) Close() {
	if c.net != nil {
		_ = c.net.Close() // closing endpoints unblocks every runner
	}
	for _, r := range c.runners {
		r.Stop()
	}
}
