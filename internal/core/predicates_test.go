package core

import (
	"testing"
	"testing/quick"

	"luckystore/internal/types"
)

// cfg21 is the running example configuration: t=2, b=1, so S=6,
// quorum S−t=4, safe threshold b+1=2, fast_pw threshold 2b+t+1=5.
var cfg21 = Config{T: 2, B: 1, Fw: 1}

// feed loads one server's reply into a view.
func feed(v *View, i int, round int, pw, w, vw types.Tagged, frozen types.FrozenPair) {
	v.Update(types.ServerID(i), round, pw, w, vw, frozen)
}

// feedUniform loads identical replies from servers [0, n).
func feedUniform(v *View, n int, pw, w, vw types.Tagged) {
	for i := 0; i < n; i++ {
		feed(v, i, 1, pw, w, vw, types.InitialFrozen())
	}
}

func TestViewUpdateKeepsFreshestRound(t *testing.T) {
	v := NewView(cfg21, 1)
	if !v.Update(types.ServerID(0), 1, tv(1, "a"), types.Bottom(), types.Bottom(), types.InitialFrozen()) {
		t.Fatal("first update rejected")
	}
	// An older-round ack must not clobber a fresher one.
	if v.Update(types.ServerID(0), 1, tv(9, "z"), types.Bottom(), types.Bottom(), types.InitialFrozen()) {
		t.Error("same-round update accepted")
	}
	if !v.Update(types.ServerID(0), 2, tv(2, "b"), tv(1, "a"), types.Bottom(), types.InitialFrozen()) {
		t.Error("fresher-round update rejected")
	}
	if v.Responded() != 1 {
		t.Errorf("Responded() = %d, want 1", v.Responded())
	}
	if !v.ReadLive(tv(2, "b"), types.ServerID(0)) {
		t.Error("freshest pw not readLive")
	}
	if v.ReadLive(tv(9, "z"), types.ServerID(0)) {
		t.Error("stale overwrite visible")
	}
}

func TestSafeThreshold(t *testing.T) {
	c := tv(1, "v")
	v := NewView(cfg21, 1)
	feedUniform(v, 1, c, types.Bottom(), types.Bottom())
	if v.Safe(c) {
		t.Error("safe with 1 witness, want b+1=2")
	}
	feedUniform(v, 2, c, types.Bottom(), types.Bottom())
	if !v.Safe(c) {
		t.Error("not safe with 2 witnesses")
	}
}

func TestSafeCountsWFieldToo(t *testing.T) {
	c := tv(1, "v")
	v := NewView(cfg21, 1)
	feed(v, 0, 1, tv(2, "w2"), c, types.Bottom(), types.InitialFrozen())
	feed(v, 1, 1, c, types.Bottom(), types.Bottom(), types.InitialFrozen())
	if !v.Safe(c) {
		t.Error("safe must count pw or w witnesses")
	}
}

func TestSafeFrozenRequiresMatchingTSR(t *testing.T) {
	c := tv(3, "f")
	v := NewView(cfg21, 7)
	fz := types.FrozenPair{PW: c, TSR: 7}
	feed(v, 0, 1, types.Bottom(), types.Bottom(), types.Bottom(), fz)
	feed(v, 1, 1, types.Bottom(), types.Bottom(), types.Bottom(), fz)
	if !v.SafeFrozen(c) {
		t.Error("safeFrozen with b+1 matching witnesses should hold")
	}
	// Mismatched tsr (a freeze for an older READ) must not count.
	v2 := NewView(cfg21, 7)
	stale := types.FrozenPair{PW: c, TSR: 6}
	feed(v2, 0, 1, types.Bottom(), types.Bottom(), types.Bottom(), stale)
	feed(v2, 1, 1, types.Bottom(), types.Bottom(), types.Bottom(), stale)
	if v2.SafeFrozen(c) {
		t.Error("safeFrozen held with stale tsr")
	}
}

func TestFastPWThreshold(t *testing.T) {
	c := tv(1, "v")
	v := NewView(cfg21, 1)
	feedUniform(v, 4, c, types.Bottom(), types.Bottom())
	if v.FastPW(c) {
		t.Error("fast_pw with 4 witnesses, want 2b+t+1=5")
	}
	feedUniform(v, 5, c, types.Bottom(), types.Bottom())
	if !v.FastPW(c) {
		t.Error("fast_pw should hold with 5 witnesses")
	}
	if !v.Fast(c) {
		t.Error("fast should follow from fast_pw")
	}
}

func TestFastVWThreshold(t *testing.T) {
	c := tv(1, "v")
	v := NewView(cfg21, 1)
	feed(v, 0, 1, c, c, c, types.InitialFrozen())
	if v.FastVW(c) {
		t.Error("fast_vw with 1 witness, want b+1=2")
	}
	feed(v, 1, 1, c, c, c, types.InitialFrozen())
	if !v.FastVW(c) || !v.Fast(c) {
		t.Error("fast_vw should hold with b+1 witnesses")
	}
}

func TestInvalidWRequiresQuorumOfOlder(t *testing.T) {
	target := tv(5, "new")
	old := tv(2, "old")
	v := NewView(cfg21, 1)
	feedUniform(v, 3, old, old, types.Bottom())
	if v.InvalidW(target) {
		t.Error("invalid_w with 3 older responses, want S−t=4")
	}
	feed(v, 3, 1, old, old, types.Bottom(), types.InitialFrozen())
	if !v.InvalidW(target) {
		t.Error("invalid_w should hold with 4 older responses")
	}
}

func TestInvalidWSameTSDifferentValue(t *testing.T) {
	// A server reporting the same timestamp with a different value also
	// counts toward invalid_w (only malicious servers produce this).
	target := tv(5, "genuine")
	forged := tv(5, "forged")
	v := NewView(cfg21, 1)
	feedUniform(v, 4, forged, forged, types.Bottom())
	if !v.InvalidW(target) {
		t.Error("same-ts/different-val responses must count as older")
	}
}

func TestInvalidPWThresholdAndField(t *testing.T) {
	target := tv(5, "new")
	old := tv(1, "old")
	// invalid_pw needs S−b−t = 3 servers, counting the pw field only.
	v := NewView(cfg21, 1)
	feed(v, 0, 1, old, target, types.Bottom(), types.InitialFrozen())
	feed(v, 1, 1, old, target, types.Bottom(), types.InitialFrozen())
	if v.InvalidPW(target) {
		t.Error("invalid_pw with 2 older pw responses, want 3")
	}
	feed(v, 2, 1, old, target, types.Bottom(), types.InitialFrozen())
	if !v.InvalidPW(target) {
		t.Error("invalid_pw should hold with 3 older pw responses")
	}
	// w fields being old is irrelevant to invalid_pw.
	v2 := NewView(cfg21, 1)
	feedUniform(v2, 6, target, old, types.Bottom())
	if v2.InvalidPW(target) {
		t.Error("invalid_pw counted w fields")
	}
}

// The Theorem 4 fast-path scenario: after a fast WRITE of c, 2b+t+1
// correct servers report pw=c, and any Byzantine pair with a higher
// timestamp is reported by at most b servers. The READ must select c.
func TestSelectFastWriteScenario(t *testing.T) {
	c := tv(4, "good")
	evil := tv(9, "forged")
	v := NewView(cfg21, 1)
	feedUniform(v, 5, c, types.Bottom(), types.Bottom()) // 2b+t+1 = 5 correct
	feed(v, 5, 1, evil, evil, evil, types.InitialFrozen())
	if !v.Safe(c) || !v.FastPW(c) {
		t.Fatal("safe/fast_pw must hold for the written pair")
	}
	// All 5 correct servers respond with values older than evil, so
	// invalid_w (≥4) and invalid_pw (≥3) hold for the forged pair.
	if !v.InvalidW(evil) || !v.InvalidPW(evil) {
		t.Fatal("forged pair not invalidated")
	}
	if !v.HighCand(c) {
		t.Fatal("highCand(c) must hold once forged pair is invalidated")
	}
	sel, ok := v.Select()
	if !ok || sel != c {
		t.Errorf("Select() = (%v,%v), want %v", sel, ok, c)
	}
	if !v.Fast(sel) {
		t.Error("selected pair should be fast (skip write-back)")
	}
}

// The Theorem 4 slow-write scenario: a two-phase WRITE leaves c in the
// vw fields of S−t servers; with fr failures, b+1 correct ones respond.
func TestSelectSlowWriteScenario(t *testing.T) {
	c := tv(4, "slowly-written")
	v := NewView(cfg21, 1)
	// 4 = S−t servers hold pw=w=vw=c; fr=1 of them fails, 3 respond,
	// plus 2 more correct servers that are behind (they saw only pw).
	feedUniform(v, 3, c, c, c)
	feed(v, 3, 1, c, types.Bottom(), types.Bottom(), types.InitialFrozen())
	feed(v, 4, 1, c, types.Bottom(), types.Bottom(), types.InitialFrozen())
	if !v.Safe(c) {
		t.Fatal("safe(c) must hold")
	}
	if !v.FastVW(c) {
		t.Fatal("fast_vw(c) must hold with b+1 vw witnesses")
	}
	sel, ok := v.Select()
	if !ok || sel != c {
		t.Errorf("Select() = (%v,%v), want %v", sel, ok, c)
	}
}

// b Byzantine servers alone can never make a never-written value
// selectable: safe needs b+1 witnesses.
func TestForgedValueNeverSafeWithBWitnesses(t *testing.T) {
	evil := tv(42, "never-written")
	genuine := tv(3, "real")
	v := NewView(cfg21, 1)
	feed(v, 0, 1, evil, evil, evil, types.FrozenPair{PW: evil, TSR: 1}) // the b=1 malicious server
	feedUniform(v, 0, genuine, genuine, genuine)
	for i := 1; i < 6; i++ {
		feed(v, i, 1, genuine, genuine, genuine, types.InitialFrozen())
	}
	if v.Safe(evil) || v.SafeFrozen(evil) {
		t.Fatal("forged pair reached safety with only b witnesses")
	}
	sel, ok := v.Select()
	if !ok || sel != genuine {
		t.Errorf("Select() = (%v,%v), want genuine", sel, ok)
	}
}

// A candidate with a forged HIGHER timestamp that is NOT invalidated
// must block highCand for lower candidates (no premature selection).
func TestHighCandBlocksOnUninvalidatedHigherPair(t *testing.T) {
	c := tv(2, "real")
	higher := tv(8, "maybe-new")
	v := NewView(cfg21, 1)
	// Only quorum responses: 2 with c, 2 with the higher pair. The
	// higher pair is not invalid (only 2 older responses < S−t), so c
	// must not be selectable.
	feed(v, 0, 1, c, c, types.Bottom(), types.InitialFrozen())
	feed(v, 1, 1, c, c, types.Bottom(), types.InitialFrozen())
	feed(v, 2, 1, higher, higher, types.Bottom(), types.InitialFrozen())
	feed(v, 3, 1, higher, higher, types.Bottom(), types.InitialFrozen())
	if v.HighCand(c) {
		t.Fatal("highCand(c) held despite a live, uninvalidated higher pair")
	}
	// The higher pair itself has b+1 witnesses (at least one correct
	// server vouches for it), so it is safe ∧ highCand and the READ
	// selects it — never the lower pair.
	sel, ok := v.Select()
	if !ok || sel != higher {
		t.Fatalf("Select() = (%v,%v), want the higher pair %v", sel, ok, higher)
	}
}

// Bottom must be returnable on a fresh register: all servers report ⊥,
// which is safe and highCand.
func TestBottomSelectableOnFreshRegister(t *testing.T) {
	v := NewView(cfg21, 1)
	feedUniform(v, 4, types.Bottom(), types.Bottom(), types.Bottom())
	sel, ok := v.Select()
	if !ok || !sel.IsBottom() {
		t.Errorf("Select() = (%v,%v), want bottom", sel, ok)
	}
}

func TestCandidatesSortedAndDeduped(t *testing.T) {
	a, b := tv(1, "a"), tv(2, "b")
	v := NewView(cfg21, 1)
	// Enough responses that both a and b become safe and invalidated
	// hierarchy resolves: all six servers respond; 2 report a (pw and
	// w), 4 report b.
	feed(v, 0, 1, a, a, types.Bottom(), types.InitialFrozen())
	feed(v, 1, 1, a, a, types.Bottom(), types.InitialFrozen())
	for i := 2; i < 6; i++ {
		feed(v, i, 1, b, b, types.Bottom(), types.InitialFrozen())
	}
	cs := v.Candidates()
	for i := 1; i < len(cs); i++ {
		if cs[i].TS < cs[i-1].TS {
			t.Errorf("candidates not sorted: %v", cs)
		}
	}
	seen := map[types.Tagged]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Errorf("duplicate candidate %v", c)
		}
		seen[c] = true
	}
}

// Predicate monotonicity: adding a response reporting exactly c can
// never falsify safe(c) and never make invalid_w(c) flip from true to
// false… (counts only grow). Checked by property.
func TestSafeMonotoneQuick(t *testing.T) {
	f := func(nWitness uint8, extra uint8) bool {
		n := int(nWitness%6) + 1
		c := tv(3, "v")
		v := NewView(cfg21, 1)
		feedUniform(v, n, c, c, types.Bottom())
		before := v.Safe(c)
		// Add one more witness on a new server index.
		feed(v, n, 1, c, c, types.Bottom(), types.InitialFrozen())
		after := v.Safe(c)
		return !before || after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Select must never return a pair no responding server reported in any
// field (no-creation at the predicate level), for arbitrary random
// views.
func TestSelectNoCreationQuick(t *testing.T) {
	f := func(seeds []uint8) bool {
		v := NewView(cfg21, 1)
		reported := map[types.Tagged]bool{}
		for i, s := range seeds {
			if i >= 6 {
				break
			}
			pw := tv(int64(s%5), "v")
			w := tv(int64(s%3), "v")
			vw := tv(int64(s%2), "v")
			if pw.TS == 0 {
				pw = types.Bottom()
			}
			if w.TS == 0 {
				w = types.Bottom()
			}
			if vw.TS == 0 {
				vw = types.Bottom()
			}
			fz := types.FrozenPair{PW: tv(int64(s%4), "v"), TSR: types.ReaderTS(s % 2)}
			if fz.PW.TS == 0 {
				fz.PW = types.Bottom()
			}
			feed(v, i, 1, pw, w, vw, fz)
			reported[pw], reported[w] = true, true
			if fz.TSR == 1 {
				reported[fz.PW] = true
			}
		}
		sel, ok := v.Select()
		return !ok || reported[sel]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
