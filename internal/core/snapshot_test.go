package core

import (
	"testing"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// TestSnapshotRecordsRoundTrip pins the snapshot contract: replaying
// the emitted records into a fresh automaton reproduces the full
// state — pairs, frozen slots and reader timestamps — for both the
// standard and the regular variant.
func TestSnapshotRecordsRoundTrip(t *testing.T) {
	for _, variant := range []struct {
		name string
		mk   func() *Server
	}{
		{"standard", NewServer},
		{"regular", NewRegularServer},
	} {
		t.Run(variant.name, func(t *testing.T) {
			s := variant.mk()
			w := types.WriterID()
			r0, r1 := types.ReaderID(0), types.ReaderID(1)
			pair := func(seq int, wid int, val string) types.Tagged {
				return types.Tagged{TS: types.TS(seq), W: types.WID(wid), Val: types.Value(val)}
			}
			s.Step(w, wire.PW{TS: 1, PW: pair(3, 1, "c"), W: pair(2, 0, "b")})
			s.Step(w, wire.W{Round: 3, Tag: 1, C: pair(1, 0, "a")})
			s.Step(r0, wire.Read{TSR: 4, Round: 2})
			s.Step(r1, wire.Read{TSR: 7, Round: 3})
			s.Step(w, wire.PW{TS: 2, PW: pair(4, 0, "d"), W: pair(3, 1, "c"),
				Frozen: []types.FrozenEntry{
					{Reader: r0, PW: pair(3, 1, "c"), TSR: 4},
					{Reader: r1, PW: pair(2, 0, "b"), TSR: 7},
				}})

			got := variant.mk()
			if err := s.SnapshotRecords(func(from types.ProcID, m wire.Message) error {
				if err := wire.Validate(m); err != nil {
					t.Fatalf("snapshot emitted invalid message %+v: %v", m, err)
				}
				got.Step(from, m)
				return nil
			}); err != nil {
				t.Fatalf("SnapshotRecords: %v", err)
			}

			wantPW, wantW, wantVW := s.State()
			gotPW, gotW, gotVW := got.State()
			if wantPW != gotPW || wantW != gotW || wantVW != gotVW {
				t.Fatalf("pairs mismatch: want (%v,%v,%v) got (%v,%v,%v)",
					wantPW, wantW, wantVW, gotPW, gotW, gotVW)
			}
			for _, r := range []types.ProcID{r0, r1} {
				if s.FrozenFor(r) != got.FrozenFor(r) {
					t.Fatalf("frozen[%s]: want %+v got %+v", r, s.FrozenFor(r), got.FrozenFor(r))
				}
				if s.ReaderTS(r) != got.ReaderTS(r) {
					t.Fatalf("readerTS[%s]: want %v got %v", r, s.ReaderTS(r), got.ReaderTS(r))
				}
			}
			// Replaying the snapshot a second time must be a no-op
			// (idempotency is what makes compaction crash windows safe).
			if err := s.SnapshotRecords(func(from types.ProcID, m wire.Message) error {
				got.Step(from, m)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			gotPW2, gotW2, gotVW2 := got.State()
			if gotPW2 != gotPW || gotW2 != gotW || gotVW2 != gotVW {
				t.Fatalf("second replay changed state")
			}
		})
	}
}

// TestSnapshotEmptyServer pins that a fresh server emits nothing: an
// empty register costs zero snapshot bytes.
func TestSnapshotEmptyServer(t *testing.T) {
	n := 0
	if err := NewServer().SnapshotRecords(func(types.ProcID, wire.Message) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("fresh server emitted %d records, want 0", n)
	}
}
