// Package allocbench holds the operation-level allocation benchmark
// bodies shared by the root `go test -bench` entry points
// (alloc_bench_test.go) and cmd/luckybench's -allocs mode, so the
// numbers in BENCH_core.json and the ones EXPERIMENTS.md records from
// `go test` can never drift apart: there is exactly one definition of
// each measured workload.
//
// Importing the testing package from non-test code is deliberate —
// luckybench runs these via testing.Benchmark.
package allocbench

import (
	"runtime"
	"strconv"
	"testing"

	"luckystore/internal/core"
	"luckystore/internal/keyed"
	"luckystore/internal/kv"
	"luckystore/internal/node"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// Config is the deployment the allocation contract is pinned on: the
// smallest crash-only cluster (t = 1, b = 0, S = 3), so per-server
// costs are visible without drowning in server count. It matches
// internal/core's TestPutSteadyStateAllocs.
func Config() core.Config {
	return core.Config{T: 1, B: 0, Fw: 0, NumReaders: 1}
}

// warmupOps warms pooled round state, lazy maps and scratch buffers
// before the timed loop.
const warmupOps = 32

// IdleKeys is the register count of the idle-key heap measurement.
const IdleKeys = 10_000

// CorePut measures a steady-state fast WRITE on simnet. allocs/op
// counts every goroutine (clients, servers, network): it is the
// whole-system per-operation allocation cost.
func CorePut(b *testing.B) {
	cl, err := core.NewCluster(Config())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	w := cl.Writer()
	for i := 0; i < warmupOps; i++ {
		if err := w.Write("warm"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write("steady-state-value"); err != nil {
			b.Fatal(err)
		}
	}
}

// CoreGet measures a steady-state fast READ on simnet.
func CoreGet(b *testing.B) {
	cl, err := core.NewCluster(Config())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Writer().Write("stored"); err != nil {
		b.Fatal(err)
	}
	r := cl.Reader(0)
	for i := 0; i < warmupOps; i++ {
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// KVPut measures a steady-state Put through the full KV engine (demux,
// coalescer, sharded servers) on simnet.
func KVPut(b *testing.B) {
	st, err := kv.Open(Config(), kv.WithShards(2))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < warmupOps; i++ {
		if err := st.Put("bench-key", "warm"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Put("bench-key", "steady-state-value"); err != nil {
			b.Fatal(err)
		}
	}
}

// KVGet measures a steady-state Get through the full KV engine on
// simnet.
func KVGet(b *testing.B) {
	st, err := kv.Open(Config(), kv.WithShards(2))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.Put("bench-key", "stored"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < warmupOps; i++ {
		if _, err := st.Get(0, "bench-key"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Get(0, "bench-key"); err != nil {
			b.Fatal(err)
		}
	}
}

// IdleKeyHeap reports the heap bytes one instantiated-but-idle
// register pins on one server (metric "heapB/key"): the dominant
// per-key memory cost at millions-of-keys scale. Each iteration builds
// a keyed server shard map holding IdleKeys core automata, the state an
// idle KV key leaves behind on every one of the S servers.
func IdleKeyHeap(b *testing.B) {
	var before, after runtime.MemStats
	var sink []*keyed.ShardedServer
	b.ReportAllocs()
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < b.N; i++ {
		srv := keyed.NewShardedServer(4, func() node.Automaton { return core.NewServer() })
		touchIdleKeys(srv, IdleKeys)
		sink = append(sink, srv)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	perKey := float64(after.HeapAlloc-before.HeapAlloc) / float64(b.N) / float64(IdleKeys)
	b.ReportMetric(perKey, "heapB/key")
	runtime.KeepAlive(sink)
}

// touchIdleKeys instantiates n register automata the way real traffic
// does: one message per key routed through the shard's keyed step.
func touchIdleKeys(srv *keyed.ShardedServer, n int) {
	shards := srv.Shards()
	route := srv.Route()
	for i := 0; i < n; i++ {
		m := wire.Keyed{Key: "key-" + strconv.Itoa(i), Inner: wire.Read{TSR: 1, Round: 1}}
		shards[route(m)].Step(types.ReaderID(0), m)
	}
}
