package experiments

import (
	"strings"
	"testing"
)

func TestIDsOrderedAndComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 15 {
		t.Fatalf("got %d experiments, want 15: %v", len(ids), ids)
	}
	if ids[0] != "E1" || ids[1] != "E2" || ids[9] != "E10" || ids[14] != "E16" {
		t.Errorf("ids not numerically ordered: %v", ids)
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("E99"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

// Each experiment runs and its measured shape matches the paper.
// They are exercised individually so a failure names its experiment.

func runAndCheck(t *testing.T, id string) {
	t.Helper()
	res, err := Run(id)
	if err != nil {
		t.Fatalf("%s harness error: %v", id, err)
	}
	if res.ID != id {
		t.Errorf("result id = %s, want %s", res.ID, id)
	}
	if !res.Pass {
		t.Errorf("%s measured shape does not match the paper:\n%s", id, res)
	}
	out := res.String()
	for _, frag := range []string{id, "Claim:", "PASS"} {
		if !res.Pass && frag == "PASS" {
			continue
		}
		if !strings.Contains(out, frag) {
			t.Errorf("%s rendering missing %q:\n%s", id, frag, out)
		}
	}
}

func TestE1FastWrites(t *testing.T)    { runAndCheck(t, "E1") }
func TestE2FastReads(t *testing.T)     { runAndCheck(t, "E2") }
func TestE3SlowPaths(t *testing.T)     { runAndCheck(t, "E3") }
func TestE4Tradeoff(t *testing.T)      { runAndCheck(t, "E4") }
func TestE5UpperBound(t *testing.T)    { runAndCheck(t, "E5") }
func TestE6TradingReads(t *testing.T)  { runAndCheck(t, "E6") }
func TestE7WriteBound(t *testing.T)    { runAndCheck(t, "E7") }
func TestE8TwoPhase(t *testing.T)      { runAndCheck(t, "E8") }
func TestE9Regular(t *testing.T)       { runAndCheck(t, "E9") }
func TestE10Ghost(t *testing.T)        { runAndCheck(t, "E10") }
func TestE11Baselines(t *testing.T)    { runAndCheck(t, "E11") }
func TestE12Latency(t *testing.T)      { runAndCheck(t, "E12") }
func TestE13MultiWriter(t *testing.T)  { runAndCheck(t, "E13") }
func TestE14MWReads(t *testing.T)      { runAndCheck(t, "E14") }
func TestE16SpecFastPath(t *testing.T) { runAndCheck(t, "E16") }
