//go:build !race

package experiments

// raceDelayFactor scales the link delays of the latency experiments.
// Without the race detector, scheduling overhead per message hop is a
// few microseconds and millisecond-scale delays dominate cleanly.
const raceDelayFactor = 1
