package experiments

import (
	"fmt"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/fault"
	"luckystore/internal/metrics"
	"luckystore/internal/node"
	"luckystore/internal/twophase"
	"luckystore/internal/types"
	"luckystore/internal/workload"
)

// E8TwoPhase reproduces Propositions 5 and 6 (Appendix C, Figure 5):
// an implementation with 2-round WRITEs and fast lucky READs despite fr
// failures exists if and only if S ≥ 2t + b + min(b, fr) + 1.
//
//   - Sufficiency: the two-phase variant (internal/twophase) at exactly
//     that S delivers 2-round writes and 1-round lucky reads despite fr
//     crashes, across several (t, b, fr) points.
//   - Necessity: on one server fewer, the Figure 5 forged-state
//     schedule makes a reader with the forced (weakened) thresholds
//     return a never-written value; the sound thresholds instead starve
//     until the network heals.
func E8TwoPhase() (*Result, error) {
	suff := metrics.NewTable(
		"Sufficiency: two-phase variant at S = 2t+b+min(b,fr)+1 (Proposition 6)",
		"t", "b", "fr", "S", "write-rounds", "read-fast@fr", "ok")
	pass := true

	for _, p := range []struct{ t, b, fr int }{
		{2, 1, 1}, {2, 0, 2}, {3, 1, 1}, {2, 2, 1},
	} {
		cfg := twophase.Config{T: p.t, B: p.b, Fr: p.fr, NumReaders: 1,
			RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}
		c, err := twophase.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		for i := 0; i < p.fr; i++ {
			c.CrashServer(i)
		}
		if err := c.Writer().Write(workload.Value(1, 0)); err != nil {
			c.Close()
			return nil, fmt.Errorf("twophase t=%d b=%d fr=%d write: %w", p.t, p.b, p.fr, err)
		}
		if _, err := c.Reader(0).Read(); err != nil {
			c.Close()
			return nil, fmt.Errorf("twophase t=%d b=%d fr=%d read: %w", p.t, p.b, p.fr, err)
		}
		m := c.Reader(0).LastMeta()
		c.Close()
		ok := c.Writer().Rounds() == 2 && m.Fast()
		if !ok {
			pass = false
		}
		suff.AddRow(metrics.Itoa(p.t), metrics.Itoa(p.b), metrics.Itoa(p.fr), metrics.Itoa(cfg.S()),
			metrics.Itoa(c.Writer().Rounds()), metrics.Bool(m.Fast()), metrics.Bool(ok))
	}

	// ---- Necessity (Proposition 5, Figure 5): t=2, b=1, fr=1 on
	// S−1 = 2t+b+min(b,fr) = 6 servers. Blocks: T1={s0,s1}, T2={s2,s3},
	// B=s4, FB=s5. Run5: wr1 never invoked, FB forges σ1, T2's messages
	// to the reader delayed.
	nec := metrics.NewTable(
		"Necessity: one server fewer re-opens the forged-state attack (Figure 5)",
		"reader", "returned", "rounds", "ok")
	const undersized = 6 // 2t + b + min(b,fr) for t=2, b=1, fr=1
	forged := types.Tagged{TS: 1, Val: workload.Value(1, 0)}
	t2 := []types.ProcID{types.ServerID(2), types.ServerID(3)}

	runFig5 := func(weak bool) (weakReadMeta, error) {
		automata := make([]node.Automaton, undersized)
		for i := range automata {
			automata[i] = twophase.NewServer()
		}
		automata[5] = node.Automaton(fault.ForgeHighTS(forged.TS, forged.Val)) // FB forges σ1
		mc, err := newManualCluster(automata, 1)
		if err != nil {
			return weakReadMeta{}, err
		}
		defer mc.Close()
		rid := types.ReaderID(0)
		for _, sid := range t2 {
			mc.sim.Hold(sid, rid)
		}
		// Thresholds on the undersized deployment: quorum S'−t = 4.
		th := core.Thresholds{S: undersized, Quorum: undersized - 2, Safe: 2,
			FastPW: undersized + 1, FastVW: undersized + 1, InvalidPW: undersized - 1 - 2}
		if weak {
			th.Safe = 1 // the acceptance forced by fast reads on S' servers
			th.FastVW = 1
		}
		rep, err := mc.endpoint(rid)
		if err != nil {
			return weakReadMeta{}, err
		}
		var wait func()
		if !weak {
			wait = releaseAfter(mc.sim, 50*time.Millisecond)
		}
		m, err := weakRead(rep, undersized, th, 1, expRoundTimeout, expOpTimeout)
		if wait != nil {
			wait()
		}
		return m, err
	}

	{
		m, err := runFig5(true)
		if err != nil {
			return nil, err
		}
		violated := m.Returned == forged
		if !violated {
			pass = false
		}
		nec.AddRow("forced-weak (safe=1)", m.Returned.String(), metrics.Itoa(m.Rounds), metrics.Bool(violated))
	}
	{
		m, err := runFig5(false)
		if err != nil {
			return nil, err
		}
		ok := m.Returned.IsBottom() && !m.TimedOut
		if !ok {
			pass = false
		}
		nec.AddRow("sound (safe=b+1)", m.Returned.String(), metrics.Itoa(m.Rounds), metrics.Bool(ok))
	}

	return &Result{
		ID:     "E8",
		Title:  "Two-round writes + fast lucky reads (Propositions 5–6, Appendix C)",
		Claim:  "2-round WRITEs with fast lucky READs despite fr failures exist iff S ≥ 2t + b + min(b,fr) + 1.",
		Tables: []*metrics.Table{suff, nec},
		Pass:   pass,
	}, nil
}
