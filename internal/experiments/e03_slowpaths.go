package experiments

import (
	"fmt"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/core"
	"luckystore/internal/metrics"
	"luckystore/internal/types"
	"luckystore/internal/workload"
)

// E3SlowPaths measures the worst-case round-trip complexity of Section
// 3.1: a slow WRITE takes exactly three round-trips (PW + two W
// rounds), and a slow READ takes its query rounds plus the three-round
// write-back. Slowness is induced three ways: too many failures for the
// write, too many failures for the read, and read/write contention.
func E3SlowPaths() (*Result, error) {
	table := metrics.NewTable(
		"Slow-path round-trips (t=2, b=1, fw=1, S=6)",
		"scenario", "op", "rounds", "wrote-back", "ok")
	pass := true
	addRow := func(scenario, op string, rounds int, wroteBack, ok bool) {
		if !ok {
			pass = false
		}
		table.AddRow(scenario, op, metrics.Itoa(rounds), metrics.Bool(wroteBack), metrics.Bool(ok))
	}

	cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 2, RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}

	// Scenario 1: fw+1 crashes → slow write, exactly 3 rounds.
	{
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		c.CrashServer(0)
		c.CrashServer(1)
		if err := c.Writer().Write(workload.Value(1, 0)); err != nil {
			c.Close()
			return nil, err
		}
		m := c.Writer().LastMeta()
		addRow("fw+1 crashes", "WRITE", m.Rounds, false, m.Rounds == 3 && !m.Fast)

		// Scenario 2: the same failures exceed fr=0 → the read is slow:
		// the vw fields are populated (slow write), but the pw picture
		// still forces a write-back in some runs; assert only the
		// round accounting (query + 3 on write-back).
		if _, err := c.Reader(0).Read(); err != nil {
			c.Close()
			return nil, err
		}
		rm := c.Reader(0).LastMeta()
		okAccounting := rm.Rounds() == rm.QueryRounds || rm.Rounds() == rm.QueryRounds+3
		addRow("read after slow write, 2 crashes", "READ", rm.Rounds(), rm.WroteBack, okAccounting)
		c.Close()
	}

	// Scenario 3: contention — a READ overlapping an in-progress WRITE
	// adopts the pre-written value and must write it back (3 extra
	// rounds).
	{
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		if err := c.Writer().Write(workload.Value(1, 0)); err != nil {
			c.Close()
			return nil, err
		}
		sim := c.Sim()
		for i := 2; i < cfg.S(); i++ {
			sim.Hold(types.WriterID(), types.ServerID(i))
		}
		writeDone := make(chan error, 1)
		go func() { writeDone <- c.Writer().Write(workload.Value(2, 0)) }()
		// Wait until the partial pre-write has landed at s0.
		landed := false
		for start := time.Now(); time.Since(start) < time.Second; {
			if srv, ok := c.ServerAutomaton(0).(*core.Server); ok {
				if pw, _, _ := srv.State(); pw.TS == 2 {
					landed = true
					break
				}
			}
			time.Sleep(time.Millisecond)
		}
		if !landed {
			sim.ReleaseAll()
			<-writeDone
			c.Close()
			return nil, fmt.Errorf("contention scenario: pre-write never landed")
		}
		got, err := c.Reader(0).Read()
		if err != nil {
			sim.ReleaseAll()
			<-writeDone
			c.Close()
			return nil, err
		}
		rm := c.Reader(0).LastMeta()
		addRow("contention with in-progress write", "READ", rm.Rounds(),
			rm.WroteBack, rm.WroteBack && rm.Rounds() == rm.QueryRounds+3 && got.TS == 2)
		sim.ReleaseAll()
		if err := <-writeDone; err != nil {
			c.Close()
			return nil, err
		}
		c.Close()
	}

	// Scenario 4: a mixed concurrent workload stays atomic and its round
	// distribution is reported.
	distTable := metrics.NewTable(
		"Round distribution, mixed workload (40 writes, 3×25 reads, no failures)",
		"op", "distribution", "fast-fraction")
	{
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		rec, err := workload.Mixed{Writes: 40, ReadsPerReader: 25}.Run(c)
		c.Close()
		if err != nil {
			return nil, err
		}
		if vs := checker.CheckAtomicity(rec.Ops()); len(vs) != 0 {
			pass = false
			return &Result{
				ID: "E3", Title: "Worst-case complexity (Section 3.1)",
				Claim:  "Slow WRITE = 3 round-trips; slow READ = query rounds + 3-round write-back.",
				Tables: []*metrics.Table{table, distTable},
				Pass:   false,
				Notes:  []string{fmt.Sprintf("atomicity violations under contention: %v", vs)},
			}, nil
		}
		w, r := workload.RoundStats(rec.Ops())
		wd, rd := metrics.RoundDist(w), metrics.RoundDist(r)
		distTable.AddRow("WRITE", wd.String(), fmt.Sprintf("%.2f", wd.FastFraction()))
		distTable.AddRow("READ", rd.String(), fmt.Sprintf("%.2f", rd.FastFraction()))
	}

	return &Result{
		ID:     "E3",
		Title:  "Worst-case complexity (Section 3.1)",
		Claim:  "Slow WRITE = 3 round-trips; slow READ = query rounds + 3-round write-back; atomicity holds under contention.",
		Tables: []*metrics.Table{table, distTable},
		Pass:   pass,
	}, nil
}
