package experiments

import (
	"fmt"

	"luckystore/internal/core"
	"luckystore/internal/metrics"
	"luckystore/internal/types"
	"luckystore/internal/workload"
)

// E14MWReads verifies the reader's and the servers' side of the
// multi-writer extension: a READ after contending writers settles on
// the pair with the highest ⟨seq, writer⟩ stamp in the usual one
// round-trip, the stamp's writer component is threaded through server
// state verbatim, and per-key server state stays bounded — three
// tagged pairs plus per-reader slots, nothing per writer (the paper's
// space-bounds property, Theorem 2, extended to the MW setting).
func E14MWReads() (*Result, error) {
	table := metrics.NewTable(
		"READ and server state vs writer identities (t=2, b=1, fw=1, S=6, 12 round-robin writes)",
		"writers", "read-rounds", "fast", "read-stamp", "server-pw", "frozen-slots", "readerTS-slots", "ok")
	pass := true
	const nOps = 12

	for _, writers := range []int{1, 2, 4} {
		cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 2, Writers: writers,
			RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}

		var last types.Tagged
		for i := 0; i < nOps; i++ {
			w := c.WriterN(i % writers)
			v := workload.WriterValue(i%writers, i, 0)
			if err := w.Write(v); err != nil {
				c.Close()
				return nil, err
			}
			last = w.LastMeta().Value(v)
		}

		got, err := c.Reader(0).Read()
		if err != nil {
			c.Close()
			return nil, err
		}
		rm := c.Reader(0).LastMeta()
		rowOK := got == last && rm.Rounds() == 1 && rm.Fast()

		// Server state: every server's pw pair carries the last stamp
		// with its writer component intact, and no server grew a slot
		// per writer — the per-reader maps stay empty without slow
		// reads, whatever the writer count.
		maxFrozen, maxReaderTS := 0, 0
		pwAgree := true
		for i := 0; i < cfg.S(); i++ {
			s := c.ServerAutomaton(i).(*core.Server)
			pw, _, _ := s.State()
			if pw.Stamp() != last.Stamp() {
				pwAgree = false
			}
			f, r := s.StateSize()
			maxFrozen = max(maxFrozen, f)
			maxReaderTS = max(maxReaderTS, r)
		}
		c.Close()
		rowOK = rowOK && pwAgree && maxFrozen == 0 && maxReaderTS == 0
		if !rowOK {
			pass = false
		}
		table.AddRow(metrics.Itoa(writers), metrics.Itoa(rm.Rounds()), metrics.Bool(rm.Fast()),
			fmt.Sprintf("%v", got.Stamp()), fmt.Sprintf("%v", last.Stamp()),
			metrics.Itoa(maxFrozen), metrics.Itoa(maxReaderTS), metrics.Bool(rowOK))
	}

	return &Result{
		ID:     "E14",
		Title:  "Multi-writer READs and bounded server state",
		Claim:  "A READ returns the pair with the highest ⟨seq, writer⟩ stamp in one round-trip; server state holds the full stamp verbatim and stays bounded — per-reader slots only, nothing per writer.",
		Tables: []*metrics.Table{table},
		Pass:   pass,
	}, nil
}
