package experiments

import (
	"fmt"

	"luckystore/internal/core"
	"luckystore/internal/metrics"
	"luckystore/internal/workload"
)

// E6TradingReads reproduces Proposition 3 / Theorem 5 (Appendix A):
// running the very same algorithm with the maximal fast-write budget
// fw = t − b lifts the read resilience to fr = t, at the price that in
// any sequence of consecutive lucky READs at most ONE may be slow —
// intuitively, that single slow read "finishes" the preceding fast
// write by writing its value back.
func E6TradingReads() (*Result, error) {
	table := metrics.NewTable(
		"Trading (few) reads: fw = t−b, fr = t (Proposition 3; t=2, b=1)",
		"scenario", "failures", "sequence-rounds", "slow-reads", "ok (≤1 slow)")
	pass := true
	addRow := func(scenario string, failures int, seq string, slow int, ok bool) {
		if !ok {
			pass = false
		}
		table.AddRow(scenario, metrics.Itoa(failures), seq, metrics.Itoa(slow), metrics.Bool(ok))
	}

	const seqLen = 6
	cfg := core.Config{T: 2, B: 1, Fw: 1 /* = t−b */, NumReaders: 2,
		RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}

	// Scenario A: fast write survives fw failures, then fr = t total
	// failures hit before a sequence of consecutive lucky reads. The
	// fast write's value sits in only S−fw−t = 2b+t = 4−1... — below
	// the fast_pw threshold — so exactly the first read is slow (it
	// writes back), and every subsequent read in the sequence is fast.
	{
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		c.CrashServer(0) // fw = 1 failure before the write
		if err := c.Writer().Write(workload.Value(1, 0)); err != nil {
			c.Close()
			return nil, err
		}
		if !c.Writer().LastMeta().Fast {
			c.Close()
			return nil, fmt.Errorf("scenario A: write not fast")
		}
		c.CrashServer(1) // now t = 2 = fr total failures
		seq, slow, err := e6ReadSequence(c, seqLen)
		c.Close()
		if err != nil {
			return nil, err
		}
		addRow("after FAST write", 2, seq, slow, slow <= 1)
	}

	// Scenario B: the preceding write was slow (it completed all three
	// rounds), so its value is already in the vw fields: every read of
	// the sequence is fast even with fr = t failures.
	{
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		c.CrashServer(0)
		c.CrashServer(1) // fw+1 failures: the write takes the slow path
		if err := c.Writer().Write(workload.Value(1, 0)); err != nil {
			c.Close()
			return nil, err
		}
		if c.Writer().LastMeta().Fast {
			c.Close()
			return nil, fmt.Errorf("scenario B: write unexpectedly fast")
		}
		seq, slow, err := e6ReadSequence(c, seqLen)
		c.Close()
		if err != nil {
			return nil, err
		}
		addRow("after SLOW write", 2, seq, slow, slow == 0)
	}

	// Scenario C: alternating readers — the single write-back performed
	// by whichever reader goes first serves every other reader too.
	{
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		c.CrashServer(0)
		if err := c.Writer().Write(workload.Value(1, 0)); err != nil {
			c.Close()
			return nil, err
		}
		c.CrashServer(1)
		seqStr := ""
		slow := 0
		for i := 0; i < seqLen; i++ {
			rd := c.Reader(i % 2)
			if _, err := rd.Read(); err != nil {
				c.Close()
				return nil, err
			}
			m := rd.LastMeta()
			if !m.Fast() {
				slow++
			}
			seqStr += fmt.Sprintf("%d ", m.Rounds())
		}
		c.Close()
		addRow("alternating readers", 2, seqStr, slow, slow <= 1)
	}

	return &Result{
		ID:     "E6",
		Title:  "Trading (few) reads (Proposition 3 / Theorem 5)",
		Claim:  "With fw = t−b, any sequence of consecutive lucky READs contains at most one slow READ, despite up to fr = t failures.",
		Tables: []*metrics.Table{table},
		Pass:   pass,
	}, nil
}

// e6ReadSequence performs n consecutive lucky reads on reader 0 and
// reports the round counts and the number of slow reads.
func e6ReadSequence(c *core.Cluster, n int) (seq string, slow int, err error) {
	for i := 0; i < n; i++ {
		if _, err := c.Reader(0).Read(); err != nil {
			return "", 0, err
		}
		m := c.Reader(0).LastMeta()
		if !m.Fast() {
			slow++
		}
		seq += fmt.Sprintf("%d ", m.Rounds())
	}
	return seq, slow, nil
}
