package experiments

import (
	"fmt"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/fault"
	"luckystore/internal/metrics"
	"luckystore/internal/node"
	"luckystore/internal/types"
	"luckystore/internal/workload"
)

// E5UpperBound reproduces Proposition 2 and the indistinguishability
// runs of Figure 4 with t=2, b=1, S=6 and the over-budget split
// fw = fr = 1 (fw + fr = 2 > t − b = 1).
//
// Server blocks (one server each except T1): B1=s0, B2=s1, T1={s2,s3},
// Fw=s4, Fr=s5.
//
// Three measured runs:
//
//  1. run r2-analog — an implementation that wants every lucky READ
//     fast despite fr=1 failures on top of fw=1 must accept weakened
//     evidence (fast_pw at 2b+t = 4 instead of 2b+t+1, safe at 1
//     instead of b+1): with those thresholds the read IS fast where the
//     paper algorithm is not. This is the "forced weakening".
//  2. run r5-analog — the same weakened reader, but wr1 never happened
//     and B1 forges the state σ1: the reader returns a never-written
//     value. No-creation is violated, exactly as the proof constructs.
//  3. control — the paper's reader under the identical r5 schedule
//     refuses to decide while T1 is held and returns ⊥ once the network
//     heals: no violation.
func E5UpperBound() (*Result, error) {
	const (
		t, b = 2, 1
		s    = 2*t + b + 1 // 6
	)
	var (
		b1 = types.ServerID(0) // B2 = s1 stays honest in the runs below
		t1 = []types.ProcID{types.ServerID(2), types.ServerID(3)}
		fw = types.ServerID(4)
		fr = types.ServerID(5)
	)

	paperTh := core.Config{T: t, B: b, Fw: 1}.Thresholds()
	weakTh := paperTh
	weakTh.Safe = 1         // accept a single witness (b+1 would be 2)
	weakTh.FastPW = 2*b + t // 4: one short of the sound 2b+t+1
	weakTh.FastVW = 1

	table := metrics.NewTable(
		"Upper bound fw + fr ≤ t − b (Proposition 2; t=2, b=1, fw=fr=1)",
		"run", "reader", "returned", "rounds", "atomic", "ok")
	pass := true
	addRow := func(run, reader string, returned types.Tagged, rounds int, atomic, ok bool) {
		if !ok {
			pass = false
		}
		table.AddRow(run, reader, returned.String(), metrics.Itoa(rounds),
			metrics.Bool(atomic), metrics.Bool(ok))
	}

	// ---- Run r2-analog: the weakened reader achieves the over-budget
	// fast read (this is what forces weak thresholds on any such
	// implementation).
	{
		mc, err := newManualCluster(coreServers(s), 2)
		if err != nil {
			return nil, err
		}
		// Fw's PW stays in transit (run r1/r1′): the writer's fast write
		// completes on the other five.
		mc.sim.Hold(types.WriterID(), fw)
		wep, err := mc.endpoint(types.WriterID())
		if err != nil {
			mc.Close()
			return nil, err
		}
		writer := core.NewWriter(core.Config{T: t, B: b, Fw: 1, RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}, types.WriterID(), wep)
		if err := writer.Write(workload.Value(1, 0)); err != nil {
			mc.Close()
			return nil, err
		}
		if !writer.LastMeta().Fast {
			mc.Close()
			return nil, fmt.Errorf("r2: wr1 was not fast")
		}
		// Fr crashes at t1 (run r2): one actual failure during the read.
		mc.crash(fr.Index())
		rep, err := mc.endpoint(types.ReaderID(0))
		if err != nil {
			mc.Close()
			return nil, err
		}
		m, err := weakRead(rep, s, weakTh, 1, expRoundTimeout, expOpTimeout)
		if err != nil {
			mc.Close()
			return nil, err
		}
		wantV1 := types.Tagged{TS: 1, Val: workload.Value(1, 0)}
		addRow("r2 (write happened)", "weakened", m.Returned, m.Rounds,
			true, m.Returned == wantV1 && m.Rounds == 1)
		mc.Close()
	}

	// ---- Run r5-analog: wr1 never invoked; B1 forges σ1.
	forged := types.Tagged{TS: 1, Val: workload.Value(1, 0)}
	runR5 := func(readerKind string) (weakReadMeta, error) {
		automata := coreServers(s)
		automata[b1.Index()] = node.Automaton(fault.ForgeHighTS(forged.TS, forged.Val))
		mc, err := newManualCluster(automata, 2)
		if err != nil {
			return weakReadMeta{}, err
		}
		defer mc.Close()
		// T1's messages to the reader are delayed (asynchrony).
		rid := types.ReaderID(0)
		for _, sid := range t1 {
			mc.sim.Hold(sid, rid)
		}
		rep, err := mc.endpoint(rid)
		if err != nil {
			return weakReadMeta{}, err
		}
		th := weakTh
		if readerKind == "paper" {
			th = paperTh
		}
		// The paper reader cannot decide from the four unheld servers;
		// heal the network shortly after so it can terminate.
		var wait func()
		if readerKind == "paper" {
			wait = releaseAfter(mc.sim, 50*time.Millisecond)
		}
		m, err := weakRead(rep, s, th, 1, expRoundTimeout, expOpTimeout)
		if wait != nil {
			wait()
		}
		return m, err
	}

	// Weakened reader: returns the forged, never-written value.
	{
		m, err := runR5("weak")
		if err != nil {
			return nil, err
		}
		violated := m.Returned == forged
		addRow("r5 (no write, B1 forges σ1)", "weakened", m.Returned, m.Rounds,
			!violated, violated) // ok when the violation manifests
	}

	// Paper reader under the identical schedule: waits, then returns ⊥.
	{
		m, err := runR5("paper")
		if err != nil {
			return nil, err
		}
		addRow("r5 (no write, B1 forges σ1)", "paper", m.Returned, m.Rounds,
			m.Returned.IsBottom(), m.Returned.IsBottom() && !m.TimedOut)
	}

	return &Result{
		ID:     "E5",
		Title:  "Tight upper bound, read side (Proposition 2, Figure 4)",
		Claim:  "No optimally resilient implementation has fast lucky writes despite fw and fast lucky reads despite fr failures when fw+fr > t−b: the evidence a reader must then accept lets b malicious servers impose a never-written value.",
		Tables: []*metrics.Table{table},
		Pass:   pass,
		Notes: []string{
			"weakened thresholds: safe=1, fast_pw=2b+t — the minimum acceptance forced by requiring 1-round reads despite fr=1 on top of fw=1",
			"message kinds checked by wire.Validate in both runs: the forgery is structurally valid; only witness counting distinguishes the readers",
		},
	}, nil
}
