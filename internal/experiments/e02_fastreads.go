package experiments

import (
	"fmt"

	"luckystore/internal/core"
	"luckystore/internal/metrics"
	"luckystore/internal/workload"
)

// E2FastReads reproduces Theorem 4: a lucky READ is fast whenever at
// most fr = t − b − fw servers have failed by its completion, whether
// the preceding WRITE was fast (the fast_pw path, witnesses in the pw
// fields of 2b+t+1 correct servers) or slow (the fast_vw path,
// witnesses in the vw fields of b+1 correct servers).
func E2FastReads() (*Result, error) {
	table := metrics.NewTable(
		"Lucky READ round-trips vs actual failures",
		"t", "b", "fw", "fr", "prior-write", "failures", "rounds", "fast", "expected-fast", "ok")
	pass := true

	type scenario struct {
		t, b, fw  int
		slowWrite bool // force the preceding write onto the slow path
	}
	scenarios := []scenario{
		{2, 1, 1, false}, // fr = 0: fast read only with zero failures
		{2, 1, 0, false}, // fr = 1 after a fast write
		{2, 1, 0, true},  // fr = 1 after a slow write (fast_vw path)
		{2, 0, 0, false}, // fr = 2, crash-only deployment
		{2, 0, 0, true},
		{3, 1, 1, false}, // fr = 1 at larger scale
	}
	for _, sc := range scenarios {
		fr := sc.t - sc.b - sc.fw
		for f := 0; f <= sc.t; f++ {
			if sc.slowWrite && f > fr {
				// Forcing a slow write already burns fw+1 failures; the
				// remaining budget cannot exceed fr, so skip.
				continue
			}
			rounds, fast, err := e2Measure(sc.t, sc.b, sc.fw, f, sc.slowWrite)
			if err != nil {
				return nil, fmt.Errorf("t=%d b=%d fw=%d f=%d slow=%v: %w", sc.t, sc.b, sc.fw, f, sc.slowWrite, err)
			}
			expected := f <= fr
			// Beyond fr the theorem is silent: the read may or may not
			// be fast, so only the ≤fr side is checked.
			ok := !expected || fast
			if !ok {
				pass = false
			}
			prior := "fast"
			if sc.slowWrite {
				prior = "slow"
			}
			table.AddRow(
				metrics.Itoa(sc.t), metrics.Itoa(sc.b), metrics.Itoa(sc.fw), metrics.Itoa(fr),
				prior, metrics.Itoa(f), metrics.Itoa(rounds),
				metrics.Bool(fast), metrics.Bool(expected), metrics.Bool(ok))
		}
	}

	return &Result{
		ID:     "E2",
		Title:  "Fast lucky READs (Theorem 4)",
		Claim:  "Every lucky READ is fast despite at most fr = t−b−fw failures, after fast and slow preceding WRITEs alike.",
		Tables: []*metrics.Table{table},
		Pass:   pass,
	}, nil
}

// e2Measure runs: [optionally crash fw+1 to force a slow write] →
// write → crash up to f total → lucky read; returns the read's rounds.
func e2Measure(t, b, fw, f int, slowWrite bool) (rounds int, fast bool, err error) {
	cfg := core.Config{T: t, B: b, Fw: fw, NumReaders: 1, RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}
	c, err := core.NewCluster(cfg)
	if err != nil {
		return 0, false, err
	}
	defer c.Close()

	crashed := 0
	if slowWrite {
		// fw+1 failures before the write push it onto the slow path.
		for crashed < fw+1 {
			c.CrashServer(crashed)
			crashed++
		}
	}
	if err := c.Writer().Write(workload.Value(1, 0)); err != nil {
		return 0, false, err
	}
	if slowWrite == c.Writer().LastMeta().Fast {
		return 0, false, fmt.Errorf("write path mismatch: wanted slow=%v, got meta %+v", slowWrite, c.Writer().LastMeta())
	}
	// Bring total failures up to f before the read.
	for crashed < f {
		c.CrashServer(crashed)
		crashed++
	}
	if _, err := c.Reader(0).Read(); err != nil {
		return 0, false, err
	}
	m := c.Reader(0).LastMeta()
	return m.Rounds(), m.Fast(), nil
}
