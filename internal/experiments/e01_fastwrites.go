package experiments

import (
	"fmt"

	"luckystore/internal/core"
	"luckystore/internal/fault"
	"luckystore/internal/metrics"
	"luckystore/internal/workload"
)

// E1FastWrites reproduces Theorem 3: in the algorithm of Figures 1–3,
// a synchronous (= lucky, in the SWMR setting) WRITE completes in one
// communication round-trip whenever at most fw servers have failed by
// its completion — and falls back to the 3-round slow path beyond fw.
// Failures are injected both as crashes and as Byzantine-mute servers
// (the theorem's "all fw failures can be malicious, provided fw ≤ b").
func E1FastWrites() (*Result, error) {
	table := metrics.NewTable(
		"Lucky WRITE round-trips vs actual failures (S = 2t+b+1)",
		"t", "b", "fw", "failures", "kind", "rounds", "fast", "expected-fast", "ok")
	pass := true

	type scenario struct {
		t, b, fw int
	}
	scenarios := []scenario{
		{2, 1, 0}, {2, 1, 1},
		{2, 0, 0}, {2, 0, 1}, {2, 0, 2},
		{3, 1, 2},
	}
	for _, sc := range scenarios {
		for f := 0; f <= sc.t; f++ {
			kinds := []string{"crash"}
			if f > 0 && f <= sc.b {
				kinds = append(kinds, "byzantine-mute")
			}
			for _, kind := range kinds {
				rounds, fast, err := e1Measure(sc.t, sc.b, sc.fw, f, kind)
				if err != nil {
					return nil, fmt.Errorf("t=%d b=%d fw=%d f=%d %s: %w", sc.t, sc.b, sc.fw, f, kind, err)
				}
				expected := f <= sc.fw
				ok := fast == expected && (fast == (rounds == 1)) && (fast || rounds == 3)
				if !ok {
					pass = false
				}
				table.AddRow(
					metrics.Itoa(sc.t), metrics.Itoa(sc.b), metrics.Itoa(sc.fw),
					metrics.Itoa(f), kind, metrics.Itoa(rounds),
					metrics.Bool(fast), metrics.Bool(expected), metrics.Bool(ok))
			}
		}
	}

	return &Result{
		ID:     "E1",
		Title:  "Fast lucky WRITEs (Theorem 3)",
		Claim:  "Every synchronous WRITE is fast iff at most fw servers fail; slow WRITEs take exactly 3 round-trips.",
		Tables: []*metrics.Table{table},
		Pass:   pass,
	}, nil
}

func e1Measure(t, b, fw, f int, kind string) (rounds int, fast bool, err error) {
	cfg := core.Config{T: t, B: b, Fw: fw, NumReaders: 1, RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}
	var opts []core.ClusterOption
	if kind == "byzantine-mute" {
		for i := 0; i < f; i++ {
			opts = append(opts, core.WithServerAutomaton(i, fault.Mute()))
		}
	}
	c, err := core.NewCluster(cfg, opts...)
	if err != nil {
		return 0, false, err
	}
	defer c.Close()
	if kind == "crash" {
		for i := 0; i < f; i++ {
			c.CrashServer(i)
		}
	}
	if err := c.Writer().Write(workload.Value(1, 0)); err != nil {
		return 0, false, err
	}
	m := c.Writer().LastMeta()
	return m.Rounds, m.Fast, nil
}
