package experiments

import (
	"fmt"

	"luckystore/internal/core"
	"luckystore/internal/metrics"
	"luckystore/internal/workload"
)

// E4Tradeoff reproduces Proposition 1's trade-off line fw + fr = t − b:
// for every configuration and every split of the budget, lucky writes
// are fast despite fw failures, lucky reads are fast despite fr further
// failures, and one failure beyond the read budget breaks the fast
// read (showing the thresholds are exact, not slack).
func E4Tradeoff() (*Result, error) {
	table := metrics.NewTable(
		"The fw + fr = t − b trade-off (Proposition 1)",
		"t", "b", "S", "fw", "fr", "write-fast@fw", "read-fast@fr", "read-slow@fr+1", "ok")
	pass := true

	type config struct{ t, b int }
	configs := []config{{1, 0}, {2, 0}, {2, 1}, {3, 1}, {3, 2}, {4, 2}}
	for _, cc := range configs {
		budget := cc.t - cc.b
		for fw := 0; fw <= budget; fw++ {
			fr := budget - fw
			writeFast, readFast, beyondSlow, err := e4Measure(cc.t, cc.b, fw, fr)
			if err != nil {
				return nil, fmt.Errorf("t=%d b=%d fw=%d: %w", cc.t, cc.b, fw, err)
			}
			ok := writeFast && readFast && beyondSlow
			if !ok {
				pass = false
			}
			table.AddRow(
				metrics.Itoa(cc.t), metrics.Itoa(cc.b), metrics.Itoa(2*cc.t+cc.b+1),
				metrics.Itoa(fw), metrics.Itoa(fr),
				metrics.Bool(writeFast), metrics.Bool(readFast), metrics.Bool(beyondSlow),
				metrics.Bool(ok))
		}
	}

	return &Result{
		ID:     "E4",
		Title:  "Resilience trade-off sweep (Proposition 1)",
		Claim:  "Every split fw + fr = t − b works, and the thresholds are exact: one extra failure past fr breaks the fast read.",
		Tables: []*metrics.Table{table},
		Pass:   pass,
	}, nil
}

// e4Measure crashes fw servers, writes (expecting the fast path),
// crashes fr more, reads (expecting fast), then — when the budget
// allows one more crash within t — crashes one extra server and
// verifies the next lucky read after a fresh fast write is slow.
func e4Measure(t, b, fw, fr int) (writeFast, readFast, beyondSlow bool, err error) {
	cfg := core.Config{T: t, B: b, Fw: fw, NumReaders: 1, RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}
	c, err := core.NewCluster(cfg)
	if err != nil {
		return false, false, false, err
	}
	defer c.Close()

	crashed := 0
	for ; crashed < fw; crashed++ {
		c.CrashServer(crashed)
	}
	if err := c.Writer().Write(workload.Value(1, 0)); err != nil {
		return false, false, false, err
	}
	writeFast = c.Writer().LastMeta().Fast

	for ; crashed < fw+fr; crashed++ {
		c.CrashServer(crashed)
	}
	if _, err := c.Reader(0).Read(); err != nil {
		return false, false, false, err
	}
	readFast = c.Reader(0).LastMeta().Fast()

	// Exactness: one more failure (still ≤ t in total) must defeat the
	// fast read. The preceding write was fast, so only the pw fields
	// carry the value (the fast reads above did not write back); with
	// fw+fr+1 failures only S−fw−fr−1 = 2b+t of those survive — one
	// short of the fast_pw threshold — so the next read must be slow.
	// When fw+fr = t already, the model forbids the extra crash and
	// exactness is vacuously satisfied.
	if fw+fr+1 > t || !writeFast || !readFast {
		return writeFast, readFast, true, nil
	}
	c.CrashServer(crashed)
	if _, err := c.Reader(0).Read(); err != nil {
		return false, false, false, err
	}
	beyondSlow = !c.Reader(0).LastMeta().Fast()
	return writeFast, readFast, beyondSlow, nil
}
