package experiments

import (
	"fmt"

	"luckystore/internal/core"
	"luckystore/internal/metrics"
	"luckystore/internal/simnet"
	"luckystore/internal/types"
	"luckystore/internal/wire"
	"luckystore/internal/workload"
)

// E13MultiWriter measures the cost model of the multi-writer extension:
// a single-writer WRITE is one round-trip (2S messages, the published
// Fig. 1 fast path, byte for byte), while a multi-writer WRITE pays
// exactly one stamp-query round on top — two round-trips, 4S messages —
// and stays "fast" in the protocol sense (no W-phase fallback). The
// query is what makes round-robin writers bind strictly increasing
// ⟨seq, writer⟩ stamps; the PW_ACK.Max channel flags contention when a
// server already holds a higher stamp.
func E13MultiWriter() (*Result, error) {
	table := metrics.NewTable(
		"WRITE rounds and messages vs writer identities (t=2, b=1, fw=1, S=6, sequential round-robin)",
		"writers", "rounds", "fast", "queried", "msgs/write", "stamps", "ok")
	pass := true
	const nOps = 12

	for _, writers := range []int{1, 2, 3} {
		// NoSpec pins the pre-§12 regime this experiment measures: every
		// MW write pays the query round unconditionally. E16 measures
		// the adaptive speculative path against this baseline.
		cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 1, Writers: writers, NoSpec: true,
			RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}
		ids := append(types.ServerIDs(cfg.S()), types.WriterIDs(cfg.WritersN())...)
		ids = append(ids, types.ReaderID(0))
		sim, err := simnet.New(ids)
		if err != nil {
			return nil, err
		}
		c, err := core.NewCluster(cfg, core.WithNetwork(sim))
		if err != nil {
			return nil, err
		}

		wantRounds := 1
		if writers > 1 {
			wantRounds = 2
		}
		before := sim.StatsSnapshot()
		var last types.Stamp
		rowOK := true
		for i := 0; i < nOps; i++ {
			w := c.WriterN(i % writers)
			if err := w.Write(workload.WriterValue(i%writers, i, 0)); err != nil {
				c.Close()
				return nil, err
			}
			m := w.LastMeta()
			if m.Rounds != wantRounds || !m.Fast || m.Queried != (writers > 1) {
				rowOK = false
			}
			// Round-robin, sequential: every write's query (or solo
			// counter) must bind strictly above the previous stamp, with
			// the binding writer's own component.
			st := m.Stamp()
			if !last.Less(st) || st.Writer != types.WID(i%writers) {
				rowOK = false
			}
			last = st
		}
		after := sim.StatsSnapshot()
		c.Close()

		// Message accounting: PW round = S PW + S PW_ACK; the MW query
		// adds S READ + S READ_ACK. No reader ran, so every READ here is
		// a writer query.
		delta := func(k wire.Kind) int { return after.ByKind[k] - before.ByKind[k] }
		msgsPerWrite := float64(delta(wire.KindPW)+delta(wire.KindPWAck)+
			delta(wire.KindRead)+delta(wire.KindReadAck)) / nOps
		if msgsPerWrite != float64(2*wantRounds*cfg.S()) {
			rowOK = false
		}
		if !rowOK {
			pass = false
		}
		table.AddRow(metrics.Itoa(writers), metrics.Itoa(wantRounds),
			metrics.Bool(true), metrics.Bool(writers > 1),
			fmt.Sprintf("%.1f", msgsPerWrite), "strictly-increasing",
			metrics.Bool(rowOK))
	}

	// Contention telemetry. The stamp query makes an ordinary MW write
	// resolve any installed stamp *before* binding — written above it,
	// Contended stays false even when the servers held 〈50.5〉 — so the
	// first two rows pin the query's conflict-resolution. The channel
	// that does fire is PW_ACK.Max on the query-less handoff path:
	// WriteAt replays a migrated pair verbatim, and when the destination
	// already advanced past it the replay completes idempotently with
	// Contended reporting the race instead of silently masking it.
	cTable := metrics.NewTable(
		"Contention telemetry (Writers=2, servers later hold installed stamp 〈50.5〉)",
		"phase", "contended", "stamp", "ok")
	{
		cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 0, Writers: 2, NoSpec: true,
			RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		if err := c.WriterN(0).Write("calm"); err != nil {
			c.Close()
			return nil, err
		}
		m := c.WriterN(0).LastMeta()
		calmOK := !m.Contended
		cTable.AddRow("uncontended", metrics.Bool(m.Contended),
			fmt.Sprintf("%v", m.Stamp()), metrics.Bool(calmOK))

		installed := types.Tagged{TS: 50, W: 5, Val: "raced"}
		for i := 0; i < cfg.S(); i++ {
			c.ServerAutomaton(i).(*core.Server).InjectState(installed, installed, installed)
		}
		if err := c.WriterN(1).Write("mine"); err != nil {
			c.Close()
			return nil, err
		}
		m = c.WriterN(1).LastMeta()
		queryOK := !m.Contended && m.Stamp() == (types.Stamp{Seq: 51, Writer: 1})
		cTable.AddRow("query-resolves-installed", metrics.Bool(m.Contended),
			fmt.Sprintf("%v", m.Stamp()), metrics.Bool(queryOK))

		// Handoff replay of a pair the destination has already passed:
		// no query, exact foreign stamp, race detected via PW_ACK.Max.
		if err := c.WriterN(0).WriteAt(types.Tagged{TS: 2, W: 7, Val: "migrated"}); err != nil {
			c.Close()
			return nil, err
		}
		m = c.WriterN(0).LastMeta()
		c.Close()
		replayOK := m.Contended && m.Stamp() == (types.Stamp{Seq: 2, Writer: 7})
		cTable.AddRow("handoff-behind-destination", metrics.Bool(m.Contended),
			fmt.Sprintf("%v", m.Stamp()), metrics.Bool(replayOK))
		if !calmOK || !queryOK || !replayOK {
			pass = false
		}
	}

	return &Result{
		ID:     "E13",
		Title:  "Multi-writer WRITE cost: one query round on top of Fig. 1",
		Claim:  "A multi-writer WRITE is the published one-round fast write plus exactly one stamp-query round (2 round-trips, 4S messages); single-writer deployments keep the 1-round, 2S path byte for byte, and contention is detected, never lost.",
		Tables: []*metrics.Table{table, cTable},
		Pass:   pass,
	}, nil
}
