package experiments

import (
	"fmt"
	"sync"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/core"
	"luckystore/internal/fault"
	"luckystore/internal/metrics"
	"luckystore/internal/regular"
	"luckystore/internal/types"
	"luckystore/internal/workload"
)

// E9Regular reproduces Proposition 7 (Appendix D): trading atomicity
// for regularity buys (1) tolerance of malicious readers and (2) the
// maximal fast thresholds fw = t − b and fr = t simultaneously.
//
// The experiment runs the same forged write-back attack against the
// atomic variant (where it succeeds — the Section 5 discussion) and the
// regular variant (where servers ignore reader W messages and the
// attack dies), then measures the regular variant's fast paths and
// checks regularity under concurrency.
func E9Regular() (*Result, error) {
	table := metrics.NewTable(
		"Regular variant (Appendix D; t=2, b=1, S=6)",
		"check", "observation", "ok")
	pass := true
	addRow := func(check, obs string, ok bool) {
		if !ok {
			pass = false
		}
		table.AddRow(check, obs, metrics.Bool(ok))
	}
	forged := types.Tagged{TS: 2, Val: "never-written"}

	// ---- Attack on the atomic variant: succeeds (documented
	// vulnerability).
	{
		cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 2,
			RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		if err := c.Writer().Write(workload.Value(1, 0)); err != nil {
			c.Close()
			return nil, err
		}
		ep, err := c.Sim().Endpoint(types.ReaderID(1))
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := fault.MaliciousReaderWriteback(ep, types.ServerIDs(cfg.S()), cfg.Quorum(), 1, forged); err != nil {
			c.Close()
			return nil, err
		}
		got, err := c.Reader(0).Read()
		c.Close()
		if err != nil {
			return nil, err
		}
		addRow("atomic variant under forged write-back",
			fmt.Sprintf("correct reader returned %v (no-creation broken)", got), got == forged)
	}

	// ---- Attack on the regular variant: defeated.
	{
		cfg := regular.Config{T: 2, B: 1, NumReaders: 2,
			RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}
		c, err := regular.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		if err := c.Writer().Write(workload.Value(1, 0)); err != nil {
			c.Close()
			return nil, err
		}
		ep, err := c.Sim().Endpoint(types.ReaderID(1))
		if err != nil {
			c.Close()
			return nil, err
		}
		// Servers won't ack reader W messages, so fire without a quorum.
		if err := fault.MaliciousReaderWriteback(ep, types.ServerIDs(cfg.S()), 0, 1, forged); err != nil {
			c.Close()
			return nil, err
		}
		time.Sleep(20 * time.Millisecond) // let the forged messages be dropped
		got, err := c.Reader(0).Read()
		if err != nil {
			c.Close()
			return nil, err
		}
		addRow("regular variant under forged write-back",
			fmt.Sprintf("correct reader returned %v", got),
			got == types.Tagged{TS: 1, Val: workload.Value(1, 0)})

		// ---- Fast thresholds at their maximum.
		c.CrashServer(0) // fw = t−b = 1 failures
		if err := c.Writer().Write(workload.Value(2, 0)); err != nil {
			c.Close()
			return nil, err
		}
		addRow("lucky WRITE fast despite fw = t−b failures",
			fmt.Sprintf("rounds=%d", c.Writer().LastMeta().Rounds), c.Writer().LastMeta().Fast)

		c.CrashServer(1) // fr = t = 2 failures
		if _, err := c.Reader(0).Read(); err != nil {
			c.Close()
			return nil, err
		}
		m := c.Reader(0).LastMeta()
		addRow("lucky READ fast despite fr = t failures",
			fmt.Sprintf("rounds=%d", m.Rounds()), m.Fast())
		c.Close()
	}

	// ---- Regularity under concurrency.
	{
		cfg := regular.Config{T: 2, B: 1, NumReaders: 3,
			RoundTimeout: 5 * time.Millisecond, OpTimeout: expOpTimeout}
		c, err := regular.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		rec := checker.NewRecorder()
		var wg sync.WaitGroup
		var firstErr error
		var errOnce sync.Once
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 40; i++ {
				v := workload.Value(i, 0)
				inv := time.Now()
				if err := c.Writer().Write(v); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				m := c.Writer().LastMeta()
				rec.Add(checker.Op{Client: types.WriterID(), Kind: checker.KindWrite,
					Value: types.Tagged{TS: m.TS, Val: v}, Invoke: inv, Return: time.Now(),
					Rounds: m.Rounds, Fast: m.Fast})
			}
		}()
		for r := 0; r < cfg.NumReaders; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					inv := time.Now()
					got, err := c.Reader(r).Read()
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					m := c.Reader(r).LastMeta()
					rec.Add(checker.Op{Client: types.ReaderID(r), Kind: checker.KindRead,
						Value: got, Invoke: inv, Return: time.Now(),
						Rounds: m.Rounds(), Fast: m.Fast()})
				}
			}()
		}
		wg.Wait()
		c.Close()
		if firstErr != nil {
			return nil, firstErr
		}
		vs := checker.CheckRegularity(rec.Ops())
		addRow("regularity under concurrent workload",
			fmt.Sprintf("%d ops, %d violations", len(rec.Ops()), len(vs)), len(vs) == 0)
	}

	return &Result{
		ID:     "E9",
		Title:  "Regularity vs atomicity (Proposition 7, Appendix D)",
		Claim:  "The regular variant tolerates malicious readers and achieves fw = t−b, fr = t, while the atomic variant is corrupted by a forged reader write-back.",
		Tables: []*metrics.Table{table},
		Pass:   pass,
	}, nil
}
