package experiments

import (
	"time"

	"luckystore/internal/core"
	"luckystore/internal/fault"
	"luckystore/internal/metrics"
	"luckystore/internal/node"
	"luckystore/internal/types"
	"luckystore/internal/workload"
)

// E7WriteBound reproduces Proposition 4 (Appendix B): no optimally
// resilient SAFE storage can have every lucky WRITE fast despite more
// than t − b failures. Blocks (t=2, b=1, fw=2): B1=s0, B2=s1,
// T1={s2,s3}, Fw={s4,s5}.
//
// Measured runs:
//
//  1. r1-analog — an over-eager writer that declares success after
//     S − fw = 4 PW acks (fw = 2 > t−b = 1) completes in one round
//     while Fw's messages are in transit.
//  2. r3-analog — after that "complete" write, T1's replies are delayed
//     (asynchrony) and B2 denies: a contention-free reader sees one
//     witness for v1 and three ⊥. With sound thresholds it returns ⊥ —
//     missing a completed write, i.e. the over-eager implementation is
//     NOT safe. A weakened reader (safe=1) returns v1 instead.
//  3. r4-analog — same picture, but the write never happened and B1
//     forged its state: the weakened reader returns a never-written
//     value, violating safeness too. Either way, fw > t−b is untenable.
func E7WriteBound() (*Result, error) {
	const (
		t, b = 2, 1
		s    = 2*t + b + 1 // 6
		fwN  = 2           // over budget: t−b = 1
	)
	var (
		b1 = types.ServerID(0)
		b2 = types.ServerID(1)
		t1 = []types.ProcID{types.ServerID(2), types.ServerID(3)}
		fw = []types.ProcID{types.ServerID(4), types.ServerID(5)}
	)

	paperTh := core.Config{T: t, B: b, Fw: 1}.Thresholds()
	weakTh := paperTh
	weakTh.Safe = 1
	weakTh.FastVW = 1

	table := metrics.NewTable(
		"Fast-write bound fw ≤ t − b (Proposition 4; t=2, b=1, over-eager fw=2)",
		"run", "observation", "ok")
	pass := true
	addRow := func(run, obs string, ok bool) {
		if !ok {
			pass = false
		}
		table.AddRow(run, obs, metrics.Bool(ok))
	}
	v1 := types.Tagged{TS: 1, Val: workload.Value(1, 0)}

	// buildRun assembles the schedule common to r3/r4: B2 split-brain
	// denying to readers, T1 crashed, Fw's writer links held.
	buildRun := func(forgeB1 bool) (*manualCluster, error) {
		automata := coreServers(s)
		if forgeB1 {
			automata[b1.Index()] = node.Automaton(fault.ForgeHighTS(v1.TS, v1.Val))
		}
		realB2 := core.NewServer()
		automata[b2.Index()] = node.Automaton(fault.NewSplitBrain(realB2, fault.StaleBottom(), types.WriterID()))
		mc, err := newManualCluster(automata, 1)
		if err != nil {
			return nil, err
		}
		for _, sid := range fw {
			mc.sim.Hold(types.WriterID(), sid)
		}
		return mc, nil
	}

	// ---- r1/r3-analog: the over-eager write completes in one round;
	// then the paper reader starves while the weakened one returns v1.
	{
		mc, err := buildRun(false)
		if err != nil {
			return nil, err
		}
		wep, err := mc.endpoint(types.WriterID())
		if err != nil {
			mc.Close()
			return nil, err
		}
		start := time.Now()
		if err := overEagerWrite(wep, s, s-fwN, v1.TS, v1.Val, expOpTimeout); err != nil {
			mc.Close()
			return nil, err
		}
		addRow("r1: over-eager write, Fw in transit",
			"write declared complete after 1 round with S−2 acks", time.Since(start) < expOpTimeout)

		// T1's replies to the reader stay in transit (asynchrony, not a
		// crash: B2 alone uses the Byzantine budget b=1).
		rid := types.ReaderID(0)
		for _, sid := range t1 {
			mc.sim.Hold(sid, rid)
		}
		rep, err := mc.endpoint(rid)
		if err != nil {
			mc.Close()
			return nil, err
		}
		// Sound thresholds: the evidence (1 × v1, 3 × ⊥) cannot make v1
		// safe, so the reader returns ⊥ — an older value than the
		// "completed" wr1. The over-eager implementation is not safe.
		m, err := weakRead(rep, s, paperTh, 1, expRoundTimeout, expOpTimeout)
		if err != nil {
			mc.Close()
			return nil, err
		}
		addRow("r3: sound reader after 'complete' write",
			"returns "+m.Returned.String()+" — misses the completed write (safeness broken)",
			m.Returned.IsBottom() && !m.TimedOut)

		// Weakened reader on the same picture returns v1: safeness holds
		// here — this is the acceptance rule the fast write forces.
		m2, err := weakRead(rep, s, weakTh, 2, expRoundTimeout, expOpTimeout)
		if err != nil {
			mc.Close()
			return nil, err
		}
		addRow("r3: weakened reader (safe=1)", "returns the written v1", m2.Returned == v1)
		mc.Close()
	}

	// ---- r4-analog: nothing was written; B1 forges. The weakened
	// reader accepts the forged singleton witness: safeness violated.
	{
		mc, err := buildRun(true)
		if err != nil {
			return nil, err
		}
		rid := types.ReaderID(0)
		for _, sid := range t1 {
			mc.sim.Hold(sid, rid)
		}
		rep, err := mc.endpoint(rid)
		if err != nil {
			mc.Close()
			return nil, err
		}
		m, err := weakRead(rep, s, weakTh, 1, expRoundTimeout, expOpTimeout)
		mc.Close()
		if err != nil {
			return nil, err
		}
		addRow("r4: weakened reader, B1 forges, no write",
			"returns never-written "+m.Returned.String()+" — safeness violated", m.Returned == v1)
	}

	return &Result{
		ID:     "E7",
		Title:  "Fast-write upper bound (Proposition 4, Appendix B)",
		Claim:  "fw > t−b is untenable: the writer can be fast, but readers must then accept b-witness evidence, which forged states turn into a safeness violation (or they starve).",
		Tables: []*metrics.Table{table},
		Pass:   pass,
	}, nil
}
