//go:build race

package experiments

// raceDelayFactor scales the link delays of the latency experiments.
// Under the race detector every message hop costs hundreds of
// microseconds of instrumentation, so the injected link delays must be
// proportionally larger for round-trips to dominate wall-clock time.
const raceDelayFactor = 5
