package experiments

import (
	"fmt"

	"luckystore/internal/core"
	"luckystore/internal/metrics"
	"luckystore/internal/simnet"
	"luckystore/internal/types"
	"luckystore/internal/wire"
	"luckystore/internal/workload"
)

// E16SpecFastPath measures the contention-adaptive speculative fast
// path (DESIGN.md §12): a quiet multi-writer key elides the E13 stamp
// query and a WRITE is back to the published one-round, 2S-message
// Fig. 1 shape; contention NACKs the attempt, the writer flips to the
// query-round slow path, and one clean queried operation re-arms the
// speculation. Engagement is measured per regime (FlipRate,
// SpecFraction, mean rounds, wire messages per write) and the flip /
// back-off / re-engage cycle is pinned step by step.
func E16SpecFastPath() (*Result, error) {
	table := metrics.NewTable(
		"Speculative engagement vs contention (t=2, b=1, fw=1, S=6, 12 writes)",
		"regime", "writers", "spec-frac", "flip-rate", "mean-rounds", "msgs/write", "ok")
	pass := true
	const nOps = 12

	type regime struct {
		name    string
		writers int
		noSpec  bool
		pick    func(i int) int // which writer issues op i
		check   func(specFrac, flipRate, meanRounds, msgs float64) bool
	}
	S := 6 // the fixed t=2, b=1 shape below
	regimes := []regime{
		{
			// The SWMR control: speculation is a multi-writer mechanism,
			// single-writer deployments keep Fig. 1 untouched.
			name: "sw-baseline", writers: 1,
			pick: func(int) int { return 0 },
			check: func(sf, fr, mr, ms float64) bool {
				return sf == 0 && fr == 0 && mr == 1 && ms == float64(2*S)
			},
		},
		{
			// The pre-§12 regime E13 pins: every MW write pays the query.
			name: "mw-nospec", writers: 2, noSpec: true,
			pick: func(int) int { return 0 },
			check: func(sf, fr, mr, ms float64) bool {
				return sf == 0 && fr == 0 && mr == 2 && ms == float64(4*S)
			},
		},
		{
			// A quiet key: the first write queries (cold cache), every
			// later one speculates and completes in ONE round trip — the
			// tentpole claim. 2S messages per speculative write, no flips.
			name: "mw-quiet", writers: 2,
			pick: func(int) int { return 0 },
			check: func(sf, fr, mr, ms float64) bool {
				wantRounds := float64(2+(nOps-1)) / nOps
				wantMsgs := float64(4*S+(nOps-1)*2*S) / nOps
				return sf == float64(nOps-1)/nOps && fr == 0 &&
					mr == wantRounds && ms == wantMsgs
			},
		},
		{
			// Strict alternation: the writers race on every stamp, so some
			// attempts are NACKed (the flip rate is the adaptivity signal)
			// while tie-break winners still land speculatively.
			name: "mw-round-robin", writers: 2,
			pick: func(i int) int { return i % 2 },
			check: func(sf, fr, mr, ms float64) bool {
				return sf > 0 && sf < 1 && fr > 0 && fr < 1 && mr > 1 && mr < 2
			},
		},
	}

	for _, rg := range regimes {
		cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 1,
			Writers: rg.writers, NoSpec: rg.noSpec,
			RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}
		ids := append(types.ServerIDs(cfg.S()), types.WriterIDs(cfg.WritersN())...)
		ids = append(ids, types.ReaderID(0))
		sim, err := simnet.New(ids)
		if err != nil {
			return nil, err
		}
		c, err := core.NewCluster(cfg, core.WithNetwork(sim))
		if err != nil {
			return nil, err
		}
		before := sim.StatsSnapshot()
		for i := 0; i < nOps; i++ {
			k := rg.pick(i)
			if err := c.WriterN(k).Write(workload.WriterValue(k, i, 0)); err != nil {
				c.Close()
				return nil, err
			}
		}
		after := sim.StatsSnapshot()

		var st core.OpStats
		for k := 0; k < rg.writers; k++ {
			ws := c.WriterN(k).Stats()
			st.Ops += ws.Ops
			st.FastOps += ws.FastOps
			st.TotalRounds += ws.TotalRounds
			st.SpecAttempts += ws.SpecAttempts
			st.SpecOps += ws.SpecOps
			st.SpecFlips += ws.SpecFlips
		}
		c.Close()

		// Wire accounting: everything a WRITE can put on the network —
		// PW/PW_ACK/PW_NACK plus the query round's READ/READ_ACK. No
		// reader ran, so every READ here is a writer stamp query.
		delta := func(k wire.Kind) int { return after.ByKind[k] - before.ByKind[k] }
		msgs := float64(delta(wire.KindPW)+delta(wire.KindPWAck)+delta(wire.KindPWNack)+
			delta(wire.KindRead)+delta(wire.KindReadAck)) / nOps

		ok := rg.check(st.SpecFraction(), st.FlipRate(), st.MeanRounds(), msgs)
		if !ok {
			pass = false
		}
		table.AddRow(rg.name, metrics.Itoa(rg.writers),
			fmt.Sprintf("%.2f", st.SpecFraction()), fmt.Sprintf("%.2f", st.FlipRate()),
			fmt.Sprintf("%.2f", st.MeanRounds()), fmt.Sprintf("%.1f", msgs),
			metrics.Bool(ok))
	}

	// The adaptive cycle, step by step: speculate → NACK flips the
	// attempt to the query path (recording the ghost) → one queried
	// back-off operation → speculation re-engages.
	cTable := metrics.NewTable(
		"Flip and recovery (Writers=2, servers injected with installed stamp 〈50.5〉)",
		"phase", "spec", "queried", "rounds", "ghost", "stamp", "ok")
	{
		cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 0, Writers: 2,
			RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		w := c.WriterN(0)
		step := func(phase string, v types.Value, check func(m core.WriteMeta) bool) error {
			if err := w.Write(v); err != nil {
				c.Close()
				return err
			}
			m := w.LastMeta()
			ok := check(m)
			if !ok {
				pass = false
			}
			cTable.AddRow(phase, metrics.Bool(m.Spec), metrics.Bool(m.Queried),
				metrics.Itoa(m.Rounds), fmt.Sprintf("%v", m.Ghost),
				fmt.Sprintf("%v", m.Stamp()), metrics.Bool(ok))
			return nil
		}
		if err := step("cold-query", "a", func(m core.WriteMeta) bool {
			return !m.Spec && m.Queried && m.Rounds == 2
		}); err != nil {
			return nil, err
		}
		if err := step("speculates", "b", func(m core.WriteMeta) bool {
			return m.Spec && !m.Queried && m.Rounds == 1 && m.Fast
		}); err != nil {
			return nil, err
		}
		installed := types.Tagged{TS: 50, W: 5, Val: "raced"}
		for i := 0; i < cfg.S(); i++ {
			c.ServerAutomaton(i).(*core.Server).InjectState(installed, installed, installed)
		}
		if err := step("nack-flips", "c", func(m core.WriteMeta) bool {
			return !m.Spec && m.Queried && !m.Ghost.IsZero() &&
				m.Stamp() == (types.Stamp{Seq: 51, Writer: 0})
		}); err != nil {
			return nil, err
		}
		if err := step("backs-off", "d", func(m core.WriteMeta) bool {
			return !m.Spec && m.Queried && m.Ghost.IsZero()
		}); err != nil {
			return nil, err
		}
		if err := step("re-engages", "e", func(m core.WriteMeta) bool {
			return m.Spec && !m.Queried && m.Rounds == 1
		}); err != nil {
			return nil, err
		}
		flips := w.Stats().SpecFlips
		c.Close()
		if flips != 1 {
			pass = false
		}
	}

	return &Result{
		ID:     "E16",
		Title:  "Contention-adaptive speculative MW fast path: quiet keys write in one round",
		Claim:  "With the stamp cache warm and no recent contention, a multi-writer WRITE elides the stamp-query round and completes in one round trip (2S messages) — the published Fig. 1 shape; a server NACK flips the attempt to the E13 query path, one clean queried operation re-arms speculation, and the flip rate tracks actual contention.",
		Tables: []*metrics.Table{table, cTable},
		Pass:   pass,
	}, nil
}
