package experiments

import (
	"fmt"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/node"
	"luckystore/internal/simnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// expRoundTimeout is the round-1 timer used across experiments: long
// enough that every in-process reply beats it by orders of magnitude.
const expRoundTimeout = 15 * time.Millisecond

// expOpTimeout bounds one experiment operation; scripted runs that
// deliberately block rely on it.
const expOpTimeout = 5 * time.Second

// manualCluster assembles servers over a simnet without the config
// validation of core.NewCluster — the escape hatch the upper-bound
// experiments use to build deliberately misconfigured or undersized
// deployments.
type manualCluster struct {
	sim     *simnet.Network
	runners []*node.Runner
	nSrv    int
}

// newManualCluster starts the given automata as servers s0..s(n-1) and
// registers one writer and nReaders reader endpoints.
func newManualCluster(automata []node.Automaton, nReaders int) (*manualCluster, error) {
	n := len(automata)
	ids := append(types.ServerIDs(n), types.WriterID())
	ids = append(ids, types.ReaderIDs(nReaders)...)
	sim, err := simnet.New(ids)
	if err != nil {
		return nil, err
	}
	mc := &manualCluster{sim: sim, nSrv: n}
	for i, a := range automata {
		ep, err := sim.Endpoint(types.ServerID(i))
		if err != nil {
			mc.Close()
			return nil, err
		}
		r := node.NewRunner(ep, a)
		mc.runners = append(mc.runners, r)
		r.Start()
	}
	return mc, nil
}

func (mc *manualCluster) endpoint(id types.ProcID) (transport.Endpoint, error) {
	return mc.sim.Endpoint(id)
}

func (mc *manualCluster) crash(i int) { mc.runners[i].Crash() }

func (mc *manualCluster) Close() {
	_ = mc.sim.Close()
	for _, r := range mc.runners {
		r.Stop()
	}
}

// coreServers returns n fresh core.Server automata.
func coreServers(n int) []node.Automaton {
	out := make([]node.Automaton, n)
	for i := range out {
		out[i] = core.NewServer()
	}
	return out
}

// weakReadMeta describes one weakRead outcome.
type weakReadMeta struct {
	Returned types.Tagged
	Rounds   int
	TimedOut bool
}

// weakRead runs the paper's READ loop with arbitrary predicate
// thresholds — the instrument of the upper-bound experiments. Weakening
// Safe below b+1 (or FastPW below 2b+t+1) models an implementation
// that tries to be fast despite fw+fr > t−b, which Proposition 2 proves
// must go wrong. The read never writes back (the violating runs don't
// need it) and gives up after opTimeout, reporting TimedOut.
func weakRead(ep transport.Endpoint, nServers int, th core.Thresholds, tsr types.ReaderTS,
	roundTimeout, opTimeout time.Duration) (weakReadMeta, error) {

	deadline := time.NewTimer(opTimeout)
	defer deadline.Stop()
	view := core.NewViewWithThresholds(th, tsr)

	var timer *time.Timer
	expired := false
	rnd := 0
	for {
		rnd++
		for i := 0; i < nServers; i++ {
			if err := ep.Send(types.ServerID(i), wire.Read{TSR: tsr, Round: rnd}); err != nil {
				return weakReadMeta{}, err
			}
		}
		if rnd == 1 {
			timer = time.NewTimer(roundTimeout)
			defer timer.Stop()
		}
		roundAcks := make(map[types.ProcID]bool, nServers)
		for len(roundAcks) < nServers &&
			!(len(roundAcks) >= th.Quorum && (rnd > 1 || expired)) {
			select {
			case env, ok := <-ep.Recv():
				if !ok {
					return weakReadMeta{}, transport.ErrClosed
				}
				a, isAck := env.Msg.(wire.ReadAck)
				if !isAck || !env.From.IsServer() || a.TSR != tsr || wire.Validate(a) != nil || a.Round > rnd {
					continue
				}
				if a.Round == rnd {
					roundAcks[env.From] = true
				}
				view.Update(env.From, a.Round, a.PW, a.W, a.VW, a.Frozen)
			case <-timer.C:
				expired = true
			case <-deadline.C:
				return weakReadMeta{Rounds: rnd, TimedOut: true}, nil
			}
		}
		if c, ok := view.Select(); ok {
			return weakReadMeta{Returned: c, Rounds: rnd}, nil
		}
	}
}

// overEagerWrite performs a one-round WRITE that declares success after
// acks from S − fw servers with fw beyond the t−b bound — the
// implementation Appendix B proves unsafe. It sends only the PW round.
func overEagerWrite(ep transport.Endpoint, nServers, needAcks int, ts types.TS, v types.Value,
	opTimeout time.Duration) error {

	c := types.Tagged{TS: ts, Val: v}
	for i := 0; i < nServers; i++ {
		if err := ep.Send(types.ServerID(i), wire.PW{TS: ts, PW: c, W: types.Bottom()}); err != nil {
			return err
		}
	}
	deadline := time.NewTimer(opTimeout)
	defer deadline.Stop()
	acks := make(map[types.ProcID]bool, nServers)
	for len(acks) < needAcks {
		select {
		case env, ok := <-ep.Recv():
			if !ok {
				return transport.ErrClosed
			}
			if a, isAck := env.Msg.(wire.PWAck); isAck && env.From.IsServer() && a.TS == ts {
				acks[env.From] = true
			}
		case <-deadline.C:
			return fmt.Errorf("over-eager write: %w", core.ErrOpTimeout)
		}
	}
	return nil
}

// releaseAfter releases all held links of sim after d, from a separate
// goroutine; the returned func waits for it (call before Close).
func releaseAfter(sim *simnet.Network, d time.Duration) (wait func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(d)
		sim.ReleaseAll()
	}()
	return func() { <-done }
}
