package experiments

import (
	"fmt"
	"time"

	"luckystore/internal/abd"
	"luckystore/internal/core"
	"luckystore/internal/metrics"
	"luckystore/internal/regular"
	"luckystore/internal/simnet"
	"luckystore/internal/twophase"
	"luckystore/internal/types"
	"luckystore/internal/workload"
)

// E11Baselines reproduces the Section 1/6 comparison: under best-case
// conditions (synchrony, no contention, no failures) the lucky
// algorithm reads AND writes in one round-trip, where ABD — the
// classical crash-only emulation the introduction cites — needs two
// round-trips for every read, and the Appendix C variant pays two
// rounds per write for its bounded worst case. Latencies are measured
// on a network with a 1 ms one-way link delay so that round-trips
// dominate; the ratio column is the measured mean latency normalised
// to the lucky READ's.
func E11Baselines() (*Result, error) {
	const (
		linkDelay = raceDelayFactor * time.Millisecond
		roundTO   = 2*linkDelay + 8*time.Millisecond
		nOps      = 12
	)
	table := metrics.NewTable(
		"Best-case comparison (t=2; 1 ms links; means over 12 ops)",
		"protocol", "S", "write-rounds", "read-rounds", "write-mean", "read-mean", "read-ratio-vs-lucky", "ok")
	pass := true

	type row struct {
		name                   string
		s                      int
		wRounds, rRounds       int
		wantWRounds, wantRRnds int
		wMean, rMean           time.Duration
	}
	var rows []row

	// ---- Lucky (core), fw=1: both ops 1 round.
	{
		cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 1, RoundTimeout: roundTO, OpTimeout: expOpTimeout}
		ids := append(types.ServerIDs(cfg.S()), types.WriterID(), types.ReaderID(0))
		sim, err := simnet.New(ids, simnet.WithDefaultDelay(linkDelay))
		if err != nil {
			return nil, err
		}
		c, err := core.NewCluster(cfg, core.WithNetwork(sim))
		if err != nil {
			return nil, err
		}
		wMean, rMean, wR, rR, err := e11Drive(nOps,
			func(i int) error { return c.Writer().Write(workload.Value(i, 0)) },
			func() (int, error) {
				if _, err := c.Reader(0).Read(); err != nil {
					return 0, err
				}
				return c.Reader(0).LastMeta().Rounds(), nil
			},
			func() int { return c.Writer().LastMeta().Rounds })
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("lucky: %w", err)
		}
		rows = append(rows, row{"lucky (fw=1)", cfg.S(), wR, rR, 1, 1, wMean, rMean})
	}

	// ---- Regular variant: both 1 round at maximal thresholds.
	{
		cfg := regular.Config{T: 2, B: 1, NumReaders: 1, RoundTimeout: roundTO, OpTimeout: expOpTimeout}
		c, err := regular.NewCluster(cfg, simnet.WithDefaultDelay(linkDelay))
		if err != nil {
			return nil, err
		}
		wMean, rMean, wR, rR, err := e11Drive(nOps,
			func(i int) error { return c.Writer().Write(workload.Value(i, 0)) },
			func() (int, error) {
				if _, err := c.Reader(0).Read(); err != nil {
					return 0, err
				}
				return c.Reader(0).LastMeta().Rounds(), nil
			},
			func() int { return c.Writer().LastMeta().Rounds })
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("regular: %w", err)
		}
		rows = append(rows, row{"regular (App. D)", cfg.S(), wR, rR, 1, 1, wMean, rMean})
	}

	// ---- Two-phase variant: writes always 2 rounds, reads 1.
	{
		cfg := twophase.Config{T: 2, B: 1, Fr: 1, NumReaders: 1, RoundTimeout: roundTO, OpTimeout: expOpTimeout}
		c, err := twophase.NewCluster(cfg, simnet.WithDefaultDelay(linkDelay))
		if err != nil {
			return nil, err
		}
		wMean, rMean, wR, rR, err := e11Drive(nOps,
			func(i int) error { return c.Writer().Write(workload.Value(i, 0)) },
			func() (int, error) {
				if _, err := c.Reader(0).Read(); err != nil {
					return 0, err
				}
				return c.Reader(0).LastMeta().Rounds(), nil
			},
			func() int { return 2 })
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("twophase: %w", err)
		}
		rows = append(rows, row{"two-phase (App. C)", cfg.S(), wR, rR, 2, 1, wMean, rMean})
	}

	// ---- ABD baseline: writes 1 round, reads always 2.
	{
		cfg := abd.Config{T: 2, NumReaders: 1, OpTimeout: expOpTimeout}
		c, err := abd.NewCluster(cfg, simnet.WithDefaultDelay(linkDelay))
		if err != nil {
			return nil, err
		}
		wMean, rMean, wR, rR, err := e11Drive(nOps,
			func(i int) error { return c.Writer().Write(workload.Value(i, 0)) },
			func() (int, error) {
				if _, err := c.Reader(0).Read(); err != nil {
					return 0, err
				}
				return 2, nil
			},
			func() int { return 1 })
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("abd: %w", err)
		}
		rows = append(rows, row{"ABD (crash-only, b=0)", cfg.S(), wR, rR, 1, 2, wMean, rMean})
	}

	luckyRead := rows[0].rMean
	for _, r := range rows {
		ratio := float64(r.rMean) / float64(luckyRead)
		ok := r.wRounds == r.wantWRounds && r.rRounds == r.wantRRnds
		// The two-round ABD read must cost measurably more wall-clock
		// than the one-round lucky read. The theoretical gap is one full
		// round-trip (2 × linkDelay); requiring half of it keeps the
		// check robust to scheduler noise when the suite runs in
		// parallel.
		if r.name == "ABD (crash-only, b=0)" {
			ok = ok && r.rMean >= luckyRead+linkDelay
		}
		if !ok {
			pass = false
		}
		table.AddRow(r.name, metrics.Itoa(r.s), metrics.Itoa(r.wRounds), metrics.Itoa(r.rRounds),
			r.wMean.Round(10*time.Microsecond).String(), r.rMean.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.2f", ratio), metrics.Bool(ok))
	}

	return &Result{
		ID:     "E11",
		Title:  "Best-case comparison vs baselines (Sections 1 and 6)",
		Claim:  "Lucky reads and writes take one round-trip where ABD reads take two; the two-phase variant pays two rounds per write; latency scales with round-trips.",
		Tables: []*metrics.Table{table},
		Pass:   pass,
	}, nil
}

// e11Drive alternates writes and reads, returning mean latencies and
// the (stable) round counts observed.
func e11Drive(n int, write func(i int) error, read func() (int, error),
	writeRounds func() int) (wMean, rMean time.Duration, wR, rR int, err error) {

	var wLat, rLat []time.Duration
	for i := 1; i <= n; i++ {
		start := time.Now()
		if err := write(i); err != nil {
			return 0, 0, 0, 0, err
		}
		wLat = append(wLat, time.Since(start))
		wR = writeRounds()

		start = time.Now()
		rounds, err := read()
		if err != nil {
			return 0, 0, 0, 0, err
		}
		rLat = append(rLat, time.Since(start))
		rR = rounds
	}
	return metrics.Summarize(wLat).Mean, metrics.Summarize(rLat).Mean, wR, rR, nil
}
