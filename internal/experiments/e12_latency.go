package experiments

import (
	"fmt"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/metrics"
	"luckystore/internal/simnet"
	"luckystore/internal/types"
	"luckystore/internal/wire"
	"luckystore/internal/workload"
)

// E12Latency validates the paper's complexity measure on the simulated
// substrate: operation latency is governed by communication round-trips
// × link delay (local computation is negligible), and the message
// complexity of a lucky operation is exactly 2S messages (one request
// and one reply per server). A one-way link-delay sweep shows fast-op
// latency tracking 2×delay.
func E12Latency() (*Result, error) {
	table := metrics.NewTable(
		"Latency and message complexity of lucky operations (t=2, b=1, fw=1, S=6)",
		"one-way delay", "write-mean", "read-mean", "read/(2·delay)", "msgs/write", "msgs/read", "ok")
	pass := true
	const nOps = 10

	for _, base := range []time.Duration{500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond} {
		delay := base * raceDelayFactor
		cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 1,
			RoundTimeout: 2*delay + 6*time.Millisecond, OpTimeout: expOpTimeout}
		ids := append(types.ServerIDs(cfg.S()), types.WriterID(), types.ReaderID(0))
		sim, err := simnet.New(ids, simnet.WithDefaultDelay(delay))
		if err != nil {
			return nil, err
		}
		c, err := core.NewCluster(cfg, core.WithNetwork(sim))
		if err != nil {
			return nil, err
		}

		var wLat, rLat []time.Duration
		before := sim.StatsSnapshot()
		for i := 1; i <= nOps; i++ {
			start := time.Now()
			if err := c.Writer().Write(workload.Value(i, 0)); err != nil {
				c.Close()
				return nil, err
			}
			wLat = append(wLat, time.Since(start))
			start = time.Now()
			if _, err := c.Reader(0).Read(); err != nil {
				c.Close()
				return nil, err
			}
			rLat = append(rLat, time.Since(start))
		}
		after := sim.StatsSnapshot()
		c.Close()

		wMean := metrics.Summarize(wLat).Mean
		rMean := metrics.Summarize(rLat).Mean
		// Message accounting: per lucky write S PW + S PW_ACK; per lucky
		// read S READ + S READ_ACK.
		msgsPerWrite := float64(after.ByKind[wire.KindPW]-before.ByKind[wire.KindPW]+
			after.ByKind[wire.KindPWAck]-before.ByKind[wire.KindPWAck]) / nOps
		msgsPerRead := float64(after.ByKind[wire.KindRead]-before.ByKind[wire.KindRead]+
			after.ByKind[wire.KindReadAck]-before.ByKind[wire.KindReadAck]) / nOps

		ratio := float64(rMean) / float64(2*delay)
		// Deterministic claims: a one-round operation can never beat
		// 2×delay (physics) and costs exactly 2S messages. The upper
		// side allows an absolute scheduling-overhead budget rather
		// than a ratio: when the whole test suite runs in parallel,
		// goroutine scheduling adds milliseconds that would swamp a
		// ratio bound at sub-millisecond delays. The ratio column stays
		// informative: near 1 on an idle machine.
		const schedOverhead = 25 * time.Millisecond
		ok := rMean >= 2*delay-delay/10 && rMean < 2*delay+schedOverhead &&
			msgsPerWrite == float64(2*cfg.S()) && msgsPerRead == float64(2*cfg.S())
		if !ok {
			pass = false
		}
		table.AddRow(delay.String(),
			wMean.Round(10*time.Microsecond).String(), rMean.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%.1f", msgsPerWrite), fmt.Sprintf("%.1f", msgsPerRead),
			metrics.Bool(ok))
	}

	return &Result{
		ID:     "E12",
		Title:  "Latency ∝ round-trips × delay; message complexity",
		Claim:  "A lucky operation costs one round-trip (≈ 2×link delay) and exactly 2S messages; the round-trip count, not computation, governs latency.",
		Tables: []*metrics.Table{table},
		Pass:   pass,
	}, nil
}
