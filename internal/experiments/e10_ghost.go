package experiments

import (
	"errors"
	"fmt"

	"luckystore/internal/core"
	"luckystore/internal/metrics"
	"luckystore/internal/types"
	"luckystore/internal/workload"
)

// E10Ghost reproduces Theorem 13 (Appendix E, "contending with the
// ghost"): if the writer fails during an incomplete WRITE, then for
// every reader at most THREE synchronous READs invoked after the
// failure are slow — the system quickly restores its fast path even
// though, formally, every later read is "under contention" with the
// ghost write forever.
//
// The writer is crashed at each interesting point of the WRITE
// protocol; two readers then each issue a sequence of synchronous
// reads and the slow ones are counted.
func E10Ghost() (*Result, error) {
	table := metrics.NewTable(
		"Ghost contention (Theorem 13; t=2, b=1, fw=1, 2 readers × 6 reads)",
		"crash-point", "reader", "rounds-sequence", "slow-reads", "ok (≤3)")
	pass := true

	type point struct {
		name  string
		fault *core.WriteFault
	}
	all := types.ServerIDs(6)
	// The W-phase crash points need the write on the slow path first: a
	// PW that reaches only S−t = 4 servers gathers a quorum but misses
	// the S−fw = 5 fast threshold, so the writer enters the W phase.
	quorumOnly := all[:4]
	points := []point{
		{"after PW to b+1 servers", &core.WriteFault{
			PWTo: []types.ProcID{types.ServerID(0), types.ServerID(1)}, CrashAfterPW: true}},
		{"after PW to 1 server", &core.WriteFault{
			PWTo: []types.ProcID{types.ServerID(0)}, CrashAfterPW: true}},
		{"after full PW round", &core.WriteFault{PWTo: all, CrashAfterPW: true}},
		{"after partial W round 2", &core.WriteFault{
			PWTo:        quorumOnly,
			WTo:         map[int][]types.ProcID{2: {types.ServerID(0), types.ServerID(1)}},
			CrashAfterW: map[int]bool{2: true}}},
		{"after full W round 2", &core.WriteFault{
			PWTo: quorumOnly, WTo: map[int][]types.ProcID{2: all}, CrashAfterW: map[int]bool{2: true}}},
	}

	for _, p := range points {
		cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 2,
			RoundTimeout: expRoundTimeout, OpTimeout: expOpTimeout}
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		// A complete write first, then the ghost.
		if err := c.Writer().Write(workload.Value(1, 0)); err != nil {
			c.Close()
			return nil, err
		}
		if err := c.Writer().WriteWithFault(workload.Value(2, 0), p.fault); !errors.Is(err, core.ErrCrashed) {
			c.Close()
			return nil, fmt.Errorf("%s: fault write returned %v", p.name, err)
		}
		for r := 0; r < 2; r++ {
			seq := ""
			slow := 0
			for i := 0; i < 6; i++ {
				if _, err := c.Reader(r).Read(); err != nil {
					c.Close()
					return nil, fmt.Errorf("%s reader %d: %w", p.name, r, err)
				}
				m := c.Reader(r).LastMeta()
				if !m.Fast() {
					slow++
				}
				seq += fmt.Sprintf("%d ", m.Rounds())
			}
			ok := slow <= 3
			if !ok {
				pass = false
			}
			table.AddRow(p.name, fmt.Sprintf("r%d", r), seq, metrics.Itoa(slow), metrics.Bool(ok))
		}
		c.Close()
	}

	return &Result{
		ID:     "E10",
		Title:  "Contending with the ghost (Theorem 13, Appendix E)",
		Claim:  "After the writer fails mid-WRITE, at most three synchronous READs per reader are slow before the fast path is restored.",
		Tables: []*metrics.Table{table},
		Pass:   pass,
	}, nil
}
