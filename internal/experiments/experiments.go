// Package experiments reproduces every claim of the paper's evaluation
// as a measured experiment: one experiment per proposition/theorem/
// proof-figure, each emitting the table that EXPERIMENTS.md records.
// cmd/luckybench runs them all; bench_test.go wraps each one as a Go
// benchmark.
//
// The experiment index (ids E1–E14) is documented in DESIGN.md §3.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"luckystore/internal/metrics"
)

// Result is the outcome of one experiment.
type Result struct {
	ID    string
	Title string
	// Claim quotes the paper statement the experiment reproduces.
	Claim string
	// Tables hold the measured rows.
	Tables []*metrics.Table
	// Pass reports whether the measured shape matches the paper.
	Pass bool
	// Notes carry free-form observations (substitutions, caveats).
	Notes []string
}

// String renders the result for terminal output.
func (r *Result) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "=== %s: %s [%s]\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "Claim: %s\n", r.Claim)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is one experiment entry point.
type Runner func() (*Result, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"E1":  E1FastWrites,
	"E2":  E2FastReads,
	"E3":  E3SlowPaths,
	"E4":  E4Tradeoff,
	"E5":  E5UpperBound,
	"E6":  E6TradingReads,
	"E7":  E7WriteBound,
	"E8":  E8TwoPhase,
	"E9":  E9Regular,
	"E10": E10Ghost,
	"E11": E11Baselines,
	"E12": E12Latency,
	"E13": E13MultiWriter,
	"E14": E14MWReads,
	"E16": E16SpecFastPath,
}

// IDs returns the experiment ids in run order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// Numeric sort: E2 before E10.
		return idNum(ids[i]) < idNum(ids[j])
	})
	return ids
}

func idNum(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// Run executes the experiment with the given id.
func Run(id string) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(IDs(), " "))
	}
	return r()
}

// All runs every experiment in order, stopping at the first harness
// error (a failing *claim* is reported in Result.Pass, not as an
// error).
func All() ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		res, err := Run(id)
		if err != nil {
			return out, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, res)
	}
	return out, nil
}
