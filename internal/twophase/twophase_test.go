package twophase

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func testConfig() Config {
	// t=2, b=1, fr=1 → S = 2·2 + 1 + min(1,1) + 1 = 7.
	return Config{T: 2, B: 1, Fr: 1, NumReaders: 2, RoundTimeout: 15 * time.Millisecond}
}

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestConfigFormulaAndValidation(t *testing.T) {
	tests := []struct {
		t, b, fr int
		wantS    int
	}{
		{2, 1, 1, 7}, // min(b,fr)=1
		{2, 1, 2, 7}, // min(1,2)=1
		{2, 2, 1, 8}, // min(2,1)=1
		{2, 0, 2, 5}, // b=0: optimal resilience, no extra server
		{3, 1, 0, 8}, // fr=0: no extra server
	}
	for _, tc := range tests {
		cfg := Config{T: tc.t, B: tc.b, Fr: tc.fr}
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", cfg, err)
		}
		if got := cfg.S(); got != tc.wantS {
			t.Errorf("S(t=%d,b=%d,fr=%d) = %d, want %d", tc.t, tc.b, tc.fr, got, tc.wantS)
		}
	}
	bad := []Config{{T: -1}, {T: 1, B: 2}, {T: 2, B: 1, Fr: 3}, {T: 2, B: 1, Fr: -1}}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
}

func TestServerHasNoVWAndFrozenViaW(t *testing.T) {
	s := NewServer()
	// PW carries no frozen processing in this variant.
	out := s.Step(types.WriterID(), wire.PW{TS: 1, PW: types.Tagged{TS: 1, Val: "a"}, W: types.Bottom()})
	if _, ok := out[0].Msg.(wire.PWAck); !ok {
		t.Fatalf("PW reply = %+v", out[0].Msg)
	}
	// Frozen arrives inside the writer's W message.
	rj := types.ReaderID(0)
	s.Step(rj, wire.Read{TSR: 3, Round: 2}) // announce tsr
	fz := []types.FrozenEntry{{Reader: rj, PW: types.Tagged{TS: 1, Val: "a"}, TSR: 3}}
	s.Step(types.WriterID(), wire.W{Round: 2, Tag: 1, C: types.Tagged{TS: 1, Val: "a"}, Frozen: fz})
	ack := s.Step(rj, wire.Read{TSR: 3, Round: 3})[0].Msg.(wire.ReadAck)
	if ack.Frozen != (types.FrozenPair{PW: types.Tagged{TS: 1, Val: "a"}, TSR: 3}) {
		t.Errorf("frozen slot = %+v", ack.Frozen)
	}
	if !ack.VW.IsBottom() {
		t.Errorf("two-phase server reported a vw value: %v", ack.VW)
	}
	// Frozen inside a reader's W message must be ignored.
	s2 := NewServer()
	s2.Step(rj, wire.Read{TSR: 3, Round: 2})
	s2.Step(rj, wire.W{Round: 2, Tag: 3, C: types.Tagged{TS: 1, Val: "a"}, Frozen: fz})
	ack2 := s2.Step(rj, wire.Read{TSR: 3, Round: 3})[0].Msg.(wire.ReadAck)
	if ack2.Frozen.TSR == 3 {
		t.Error("server applied frozen set from a reader")
	}
}

func TestWriteAlwaysTwoRounds(t *testing.T) {
	c := newTestCluster(t, testConfig())
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	if got := c.Writer().Rounds(); got != 2 {
		t.Errorf("write rounds = %d, want 2", got)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 1, Val: "v"}) {
		t.Errorf("Read() = %v", got)
	}
}

// Proposition 6 property (1): with at most fr failures every lucky READ
// is fast.
func TestFastReadDespiteFrFailures(t *testing.T) {
	cfg := testConfig() // fr = 1
	c := newTestCluster(t, cfg)
	c.CrashServer(0)
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("Read() = %v", got)
	}
	if m := c.Reader(0).LastMeta(); !m.Fast() {
		t.Errorf("read meta = %+v, want fast despite fr=1 crash", m)
	}
}

func TestReadBeyondFrMayBeSlowButCorrect(t *testing.T) {
	cfg := testConfig()
	c := newTestCluster(t, cfg)
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(0)
	c.CrashServer(1) // 2 > fr = 1
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("Read() = %v", got)
	}
}

func TestWriteBackTakesTwoRounds(t *testing.T) {
	cfg := testConfig()
	c := newTestCluster(t, cfg)
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(0)
	c.CrashServer(1)
	if _, err := c.Reader(0).Read(); err != nil {
		t.Fatal(err)
	}
	m := c.Reader(0).LastMeta()
	if m.WroteBack && m.Rounds() != m.QueryRounds+2 {
		t.Errorf("Rounds() = %d with %d query rounds; write-back must add exactly 2", m.Rounds(), m.QueryRounds)
	}
}

func TestBottomOnFreshRegister(t *testing.T) {
	c := newTestCluster(t, testConfig())
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsBottom() {
		t.Errorf("Read() = %v, want ⊥", got)
	}
}

func TestAtomicityUnderConcurrency(t *testing.T) {
	cfg := testConfig()
	cfg.RoundTimeout = 5 * time.Millisecond
	c := newTestCluster(t, cfg)
	rec := checker.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 40; i++ {
			v := types.Value(fmt.Sprintf("v%d", i))
			inv := time.Now()
			if err := c.Writer().Write(v); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			rec.Add(checker.Op{
				Client: types.WriterID(), Kind: checker.KindWrite,
				Value:  types.Tagged{TS: types.TS(i), Val: v},
				Invoke: inv, Return: time.Now(), Rounds: 2,
			})
		}
	}()
	for r := 0; r < cfg.NumReaders; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				inv := time.Now()
				got, err := c.Reader(r).Read()
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				m := c.Reader(r).LastMeta()
				rec.Add(checker.Op{
					Client: types.ReaderID(r), Kind: checker.KindRead,
					Value: got, Invoke: inv, Return: time.Now(), Rounds: m.Rounds(),
				})
			}
		}()
	}
	wg.Wait()
	for _, v := range checker.CheckAtomicity(rec.Ops()) {
		t.Errorf("atomicity violation: %v", v)
	}
}

// The freezing mechanism of this variant works via the W message:
// verified end-to-end with a hand-driven slow READ.
func TestFreezingViaWMessage(t *testing.T) {
	cfg := testConfig()
	c := newTestCluster(t, cfg)
	rj := types.ReaderID(1)
	rep, err := c.Sim().Endpoint(rj)
	if err != nil {
		t.Fatal(err)
	}
	// Announce a slow READ (round 2, tsr=1) to all servers.
	for i := 0; i < cfg.S(); i++ {
		if err := rep.Send(types.ServerID(i), wire.Read{TSR: 1, Round: 2}); err != nil {
			t.Fatal(err)
		}
	}
	drainAcks(t, rep, cfg.S())
	// One write freezes and delivers in the same operation (frozen set
	// rides the W message, not the next PW).
	if err := c.Writer().Write("v1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.S(); i++ {
		if err := rep.Send(types.ServerID(i), wire.Read{TSR: 1, Round: 3}); err != nil {
			t.Fatal(err)
		}
	}
	acks := drainAcks(t, rep, cfg.S())
	frozen := 0
	for _, a := range acks {
		if a.Frozen == (types.FrozenPair{PW: types.Tagged{TS: 1, Val: "v1"}, TSR: 1}) {
			frozen++
		}
	}
	if frozen < cfg.SafeThreshold() {
		t.Errorf("frozen visible at %d servers after one write, want ≥ %d", frozen, cfg.SafeThreshold())
	}
}

func drainAcks(t *testing.T, rep interface {
	Recv() <-chan wire.Envelope
}, n int) []wire.ReadAck {
	t.Helper()
	acks := make([]wire.ReadAck, 0, n)
	deadline := time.After(5 * time.Second)
	for len(acks) < n {
		select {
		case env, ok := <-rep.Recv():
			if !ok {
				t.Fatal("endpoint closed")
			}
			if a, isAck := env.Msg.(wire.ReadAck); isAck {
				acks = append(acks, a)
			}
		case <-deadline:
			t.Fatalf("got %d of %d acks", len(acks), n)
		}
	}
	return acks
}
