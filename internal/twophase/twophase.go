// Package twophase implements the Appendix C variant of the protocol
// (Figures 6–8, Propositions 5 and 6): every WRITE completes in at most
// two communication round-trips and every lucky READ is fast despite up
// to fr actual failures, at the price of S = 2t + b + min(b, fr) + 1
// servers (one more than optimal when b, fr > 0).
//
// Differences from the core algorithm (internal/core):
//
//   - the W phase is a single round (round 2) and always runs — there
//     is no fast-write path and no timer in the WRITE;
//   - servers keep no vw field;
//   - the writer ships the frozen set inside the W message instead of
//     the PW message, and servers act on it only when the sender is the
//     writer;
//   - the read fast predicate is fast(c) ::= |{i : w_i = c}| ≥ S−t−fr;
//   - the reader's write-back takes two rounds.
package twophase

import (
	"errors"
	"fmt"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/node"
	"luckystore/internal/simnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// DefaultRoundTimeout mirrors core.DefaultRoundTimeout.
const DefaultRoundTimeout = 25 * time.Millisecond

// DefaultOpTimeout mirrors core.DefaultOpTimeout.
const DefaultOpTimeout = 30 * time.Second

// ErrOpTimeout is returned when an operation exceeds its bound.
var ErrOpTimeout = errors.New("twophase: operation timed out (more than t servers unresponsive?)")

// Config holds the deployment parameters of the two-phase variant.
type Config struct {
	// T and B are the failure thresholds (b ≤ t).
	T, B int
	// Fr is the number of actual failures despite which every lucky
	// READ must be fast (0 ≤ fr ≤ t).
	Fr         int
	NumReaders int
	// RoundTimeout is the READ round-1 timer; zero selects the default.
	RoundTimeout time.Duration
	// OpTimeout bounds one operation; zero selects the default.
	OpTimeout time.Duration
}

// S returns the server count 2t + b + min(b, fr) + 1 (Proposition 6).
func (c Config) S() int { return 2*c.T + c.B + min(c.B, c.Fr) + 1 }

// Quorum returns S − t.
func (c Config) Quorum() int { return c.S() - c.T }

// SafeThreshold returns b+1.
func (c Config) SafeThreshold() int { return c.B + 1 }

// FastW returns S − t − fr, the w-field witness count of the fast
// predicate (Fig. 7 line 5).
func (c Config) FastW() int { return c.S() - c.T - c.Fr }

// Thresholds adapts the configuration for the shared predicate
// machinery (core.View). FastPW and FastVW are set above S: the
// two-phase variant never uses them.
func (c Config) Thresholds() core.Thresholds {
	return core.Thresholds{
		S:         c.S(),
		Quorum:    c.Quorum(),
		Safe:      c.SafeThreshold(),
		FastPW:    c.S() + 1,
		FastVW:    c.S() + 1,
		InvalidPW: c.S() - c.B - c.T,
	}
}

// Validate checks the parameters.
func (c Config) Validate() error {
	switch {
	case c.T < 0:
		return fmt.Errorf("twophase config: t = %d must be non-negative", c.T)
	case c.B < 0 || c.B > c.T:
		return fmt.Errorf("twophase config: b = %d must satisfy 0 ≤ b ≤ t = %d", c.B, c.T)
	case c.Fr < 0 || c.Fr > c.T:
		return fmt.Errorf("twophase config: fr = %d must satisfy 0 ≤ fr ≤ t = %d", c.Fr, c.T)
	case c.NumReaders < 0:
		return fmt.Errorf("twophase config: NumReaders = %d must be non-negative", c.NumReaders)
	}
	return nil
}

func (c Config) roundTimeout() time.Duration {
	if c.RoundTimeout > 0 {
		return c.RoundTimeout
	}
	return DefaultRoundTimeout
}

func (c Config) opTimeout() time.Duration {
	if c.OpTimeout > 0 {
		return c.OpTimeout
	}
	return DefaultOpTimeout
}

// Server is the server automaton of Figure 8: pw and w fields, per
// reader tsr and frozen slots; frozen sets arrive inside the writer's
// W message.
type Server struct {
	pw, w    types.Tagged
	frozen   map[types.ProcID]types.FrozenPair
	readerTS map[types.ProcID]types.ReaderTS
}

// NewServer creates a server in its initial state.
func NewServer() *Server {
	return &Server{
		pw:       types.Bottom(),
		w:        types.Bottom(),
		frozen:   make(map[types.ProcID]types.FrozenPair),
		readerTS: make(map[types.ProcID]types.ReaderTS),
	}
}

// State returns the stored pairs (tests only; the cluster serializes
// automaton access while running).
func (s *Server) State() (pw, w types.Tagged) { return s.pw, s.w }

// Step implements node.Automaton.
func (s *Server) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	if wire.Validate(m) != nil {
		return nil
	}
	switch v := m.(type) {
	case wire.PW:
		if !from.IsWriter() {
			return nil
		}
		return s.onPW(from, v)
	case wire.Read:
		if !from.IsReader() {
			return nil
		}
		return s.onRead(from, v)
	case wire.W:
		if !from.IsWriter() && !from.IsReader() {
			return nil
		}
		return s.onW(from, v)
	default:
		return nil
	}
}

// onPW: Fig. 8 lines 3–6 — update pw/w, report newread; the PW message
// of this variant carries no frozen set.
func (s *Server) onPW(from types.ProcID, m wire.PW) []transport.Outgoing {
	update(&s.pw, m.PW)
	update(&s.w, m.W)
	var newread []types.ReadStamp
	for rj, tsr := range s.readerTS {
		if tsr > s.frozenTSR(rj) {
			newread = append(newread, types.ReadStamp{Reader: rj, TSR: tsr})
		}
	}
	return []transport.Outgoing{{To: from, Msg: wire.PWAck{TS: m.TS, NewRead: newread}}}
}

// onRead: Fig. 8 lines 7–9.
func (s *Server) onRead(from types.ProcID, m wire.Read) []transport.Outgoing {
	if m.TSR > s.readerTS[from] && m.Round > 1 {
		s.readerTS[from] = m.TSR
	}
	fz, ok := s.frozen[from]
	if !ok {
		fz = types.InitialFrozen()
	}
	return []transport.Outgoing{{To: from, Msg: wire.ReadAck{
		TSR: m.TSR, Round: m.Round,
		PW: s.pw, W: s.w, VW: types.Bottom(), Frozen: fz,
	}}}
}

// onW: Fig. 8 lines 10–15 — round 1 updates pw, round 2 additionally
// w; the frozen set applies only when the sender is the writer.
func (s *Server) onW(from types.ProcID, m wire.W) []transport.Outgoing {
	update(&s.pw, m.C)
	if m.Round > 1 {
		update(&s.w, m.C)
	}
	if from.IsWriter() {
		for _, f := range m.Frozen {
			if f.TSR >= s.readerTS[f.Reader] {
				s.frozen[f.Reader] = types.FrozenPair{PW: f.PW, TSR: f.TSR}
			}
		}
	}
	return []transport.Outgoing{{To: from, Msg: wire.WAck{Round: m.Round, Tag: m.Tag}}}
}

func (s *Server) frozenTSR(rj types.ProcID) types.ReaderTS {
	if f, ok := s.frozen[rj]; ok {
		return f.TSR
	}
	return types.ReaderTS0
}

func update(local *types.Tagged, c types.Tagged) {
	if local.Less(c) {
		*local = c
	}
}

// Writer implements the WRITE of Figure 6: PW round, freezevalues,
// then exactly one W round carrying the frozen set — two round-trips,
// always.
type Writer struct {
	cfg    Config
	ep     transport.Endpoint
	ts     types.TS
	pw, w  types.Tagged
	readTS map[types.ProcID]types.ReaderTS
	frozen []types.FrozenEntry
}

// NewWriter creates the writer client.
func NewWriter(cfg Config, ep transport.Endpoint) *Writer {
	return &Writer{
		cfg: cfg, ep: ep,
		pw: types.Bottom(), w: types.Bottom(),
		readTS: make(map[types.ProcID]types.ReaderTS),
	}
}

// Rounds reports the (constant) round-trip complexity of a WRITE in
// this variant.
func (w *Writer) Rounds() int { return 2 }

// Write stores v in exactly two communication round-trips.
func (w *Writer) Write(v types.Value) error {
	if v == "" {
		return core.ErrBottomValue
	}
	opDeadline := time.NewTimer(w.cfg.opTimeout())
	defer opDeadline.Stop()

	// PW round (Fig. 6 lines 3–6): no timer — the variant's writes are
	// never "fast", so there is nothing to wait extra for.
	w.ts++
	w.pw = types.Tagged{TS: w.ts, Val: v}
	if err := w.broadcast(wire.PW{TS: w.ts, PW: w.pw, W: w.w}); err != nil {
		return err
	}
	acks := make(map[types.ProcID]wire.PWAck, w.cfg.S())
	for len(acks) < w.cfg.Quorum() {
		select {
		case env, ok := <-w.ep.Recv():
			if !ok {
				return transport.ErrClosed
			}
			a, isAck := env.Msg.(wire.PWAck)
			if !isAck || !w.validServer(env.From) || a.TS != w.ts || wire.Validate(a) != nil {
				continue
			}
			if _, dup := acks[env.From]; !dup {
				acks[env.From] = a
			}
		case <-opDeadline.C:
			return fmt.Errorf("twophase WRITE(ts=%d) PW round: %w", w.ts, ErrOpTimeout)
		}
	}

	// Fig. 6 lines 7–10: freeze values, then ship them inside the W
	// message of this same write.
	w.freezeValues(acks)
	w.w = w.pw
	frozenOut := w.frozen
	w.frozen = nil
	if err := w.broadcast(wire.W{Round: 2, Tag: int64(w.ts), C: w.pw, Frozen: frozenOut}); err != nil {
		return err
	}
	got := make(map[types.ProcID]bool, w.cfg.S())
	for len(got) < w.cfg.Quorum() {
		select {
		case env, ok := <-w.ep.Recv():
			if !ok {
				return transport.ErrClosed
			}
			a, isAck := env.Msg.(wire.WAck)
			if !isAck || !w.validServer(env.From) || a.Round != 2 || a.Tag != int64(w.ts) {
				continue
			}
			got[env.From] = true
		case <-opDeadline.C:
			return fmt.Errorf("twophase WRITE(ts=%d) W round: %w", w.ts, ErrOpTimeout)
		}
	}
	return nil
}

// freezeValues mirrors Fig. 6 lines 13–15 (identical rule to the core
// algorithm).
func (w *Writer) freezeValues(acks map[types.ProcID]wire.PWAck) {
	reported := make(map[types.ProcID][]types.ReaderTS)
	for _, a := range acks {
		seen := make(map[types.ProcID]bool, len(a.NewRead))
		for _, rs := range a.NewRead {
			if seen[rs.Reader] {
				continue
			}
			seen[rs.Reader] = true
			if rs.TSR > w.readTS[rs.Reader] {
				reported[rs.Reader] = append(reported[rs.Reader], rs.TSR)
			}
		}
	}
	for rj, tsrs := range reported {
		if len(tsrs) < w.cfg.SafeThreshold() {
			continue
		}
		nth, ok := types.NthHighest(tsrs, w.cfg.B)
		if !ok {
			continue
		}
		w.readTS[rj] = nth
		w.frozen = append(w.frozen, types.FrozenEntry{Reader: rj, PW: w.pw, TSR: nth})
	}
}

func (w *Writer) broadcast(m wire.Message) error {
	out := make([]transport.Outgoing, w.cfg.S())
	for i := range out {
		out[i] = transport.Outgoing{To: types.ServerID(i), Msg: m}
	}
	return transport.SendAll(w.ep, out)
}

func (w *Writer) validServer(id types.ProcID) bool {
	return id.IsServer() && id.Index() < w.cfg.S()
}

// ReadMeta describes a completed two-phase READ.
type ReadMeta struct {
	TSR         types.ReaderTS
	QueryRounds int
	WroteBack   bool
	Returned    types.Tagged
}

// Rounds returns total round-trips (write-back adds two in this
// variant).
func (m ReadMeta) Rounds() int {
	if m.WroteBack {
		return m.QueryRounds + 2
	}
	return m.QueryRounds
}

// Fast reports a single round-trip READ.
func (m ReadMeta) Fast() bool { return m.Rounds() == 1 }

// Reader implements the READ of Figure 7.
type Reader struct {
	cfg      Config
	ep       transport.Endpoint
	id       types.ProcID
	tsr      types.ReaderTS
	lastMeta ReadMeta
}

// NewReader creates reader client id.
func NewReader(cfg Config, id types.ProcID, ep transport.Endpoint) *Reader {
	return &Reader{cfg: cfg, ep: ep, id: id}
}

// LastMeta returns metadata about the most recent READ.
func (r *Reader) LastMeta() ReadMeta { return r.lastMeta }

// Read returns the register value.
func (r *Reader) Read() (types.Tagged, error) {
	opDeadline := time.NewTimer(r.cfg.opTimeout())
	defer opDeadline.Stop()

	r.tsr++
	view := core.NewViewWithThresholds(r.cfg.Thresholds(), r.tsr)

	var timer *time.Timer
	expired := false
	rnd := 0
	var sel types.Tagged
	for {
		rnd++
		if err := r.broadcast(wire.Read{TSR: r.tsr, Round: rnd}); err != nil {
			return types.Tagged{}, err
		}
		if rnd == 1 {
			timer = time.NewTimer(r.cfg.roundTimeout())
			defer timer.Stop()
		}
		roundAcks := make(map[types.ProcID]bool, r.cfg.S())
		for len(roundAcks) < r.cfg.S() &&
			!(len(roundAcks) >= r.cfg.Quorum() && (rnd > 1 || expired)) {
			select {
			case env, ok := <-r.ep.Recv():
				if !ok {
					return types.Tagged{}, transport.ErrClosed
				}
				r.acceptAck(view, roundAcks, rnd, env)
			case <-timer.C:
				expired = true
			case <-opDeadline.C:
				return types.Tagged{}, fmt.Errorf("twophase READ(tsr=%d) round %d: %w", r.tsr, rnd, ErrOpTimeout)
			}
		}
		r.drainAcks(view, roundAcks, rnd)
		if c, ok := view.Select(); ok {
			sel = c
			break
		}
	}

	// Fig. 7 line 19: fast(c) ::= |{i : w_i = c}| ≥ S−t−fr.
	fast := view.CountW(sel) >= r.cfg.FastW()
	wroteBack := false
	if !fast || rnd > 1 {
		if err := r.writeBack(sel, opDeadline); err != nil {
			return types.Tagged{}, err
		}
		wroteBack = true
	}
	r.lastMeta = ReadMeta{TSR: r.tsr, QueryRounds: rnd, WroteBack: wroteBack, Returned: sel}
	return sel, nil
}

func (r *Reader) acceptAck(view *core.View, roundAcks map[types.ProcID]bool, rnd int, env wire.Envelope) {
	a, ok := env.Msg.(wire.ReadAck)
	if !ok || !env.From.IsServer() || env.From.Index() >= r.cfg.S() ||
		a.TSR != r.tsr || wire.Validate(a) != nil || a.Round > rnd {
		return
	}
	if a.Round == rnd {
		roundAcks[env.From] = true
	}
	view.Update(env.From, a.Round, a.PW, a.W, a.VW, a.Frozen)
}

func (r *Reader) drainAcks(view *core.View, roundAcks map[types.ProcID]bool, rnd int) {
	for {
		select {
		case env, ok := <-r.ep.Recv():
			if !ok {
				return
			}
			r.acceptAck(view, roundAcks, rnd, env)
		default:
			return
		}
	}
}

// writeBack runs the two-round write-back (Fig. 7 lines 24–26).
func (r *Reader) writeBack(c types.Tagged, opDeadline *time.Timer) error {
	for round := 1; round <= 2; round++ {
		if err := r.broadcast(wire.W{Round: round, Tag: int64(r.tsr), C: c}); err != nil {
			return err
		}
		got := make(map[types.ProcID]bool, r.cfg.S())
		for len(got) < r.cfg.Quorum() {
			select {
			case env, ok := <-r.ep.Recv():
				if !ok {
					return transport.ErrClosed
				}
				a, isAck := env.Msg.(wire.WAck)
				if !isAck || !env.From.IsServer() || a.Round != round || a.Tag != int64(r.tsr) {
					continue
				}
				got[env.From] = true
			case <-opDeadline.C:
				return fmt.Errorf("twophase READ(tsr=%d) write-back round %d: %w", r.tsr, round, ErrOpTimeout)
			}
		}
	}
	return nil
}

func (r *Reader) broadcast(m wire.Message) error {
	out := make([]transport.Outgoing, r.cfg.S())
	for i := range out {
		out[i] = transport.Outgoing{To: types.ServerID(i), Msg: m}
	}
	return transport.SendAll(r.ep, out)
}

// Cluster wires a two-phase deployment over a simulated network.
type Cluster struct {
	cfg     Config
	net     transport.Network
	sim     *simnet.Network
	runners []*node.Runner
	writer  *Writer
	readers []*Reader
}

// NewCluster builds and starts a two-phase cluster.
func NewCluster(cfg Config, simOpts ...simnet.Option) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ids := append(types.ServerIDs(cfg.S()), types.WriterID())
	ids = append(ids, types.ReaderIDs(cfg.NumReaders)...)
	sim, err := simnet.New(ids, simOpts...)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, net: sim, sim: sim}
	for i := 0; i < cfg.S(); i++ {
		ep, err := sim.Endpoint(types.ServerID(i))
		if err != nil {
			c.Close()
			return nil, err
		}
		r := node.NewRunner(ep, NewServer())
		c.runners = append(c.runners, r)
		r.Start()
	}
	wep, err := sim.Endpoint(types.WriterID())
	if err != nil {
		c.Close()
		return nil, err
	}
	c.writer = NewWriter(cfg, wep)
	for i := 0; i < cfg.NumReaders; i++ {
		rep, err := sim.Endpoint(types.ReaderID(i))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.readers = append(c.readers, NewReader(cfg, types.ReaderID(i), rep))
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Writer returns the writer client.
func (c *Cluster) Writer() *Writer { return c.writer }

// Reader returns the i-th reader client.
func (c *Cluster) Reader(i int) *Reader { return c.readers[i] }

// Sim returns the underlying simulated network.
func (c *Cluster) Sim() *simnet.Network { return c.sim }

// CrashServer crash-stops server i.
func (c *Cluster) CrashServer(i int) { c.runners[i].Crash() }

// Close stops all runners and the network.
func (c *Cluster) Close() {
	if c.net != nil {
		_ = c.net.Close()
	}
	for _, r := range c.runners {
		r.Stop()
	}
}
