package simnet

import (
	"sync"
	"testing"
	"time"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func newTrio(t *testing.T, opts ...Option) (*Network, []types.ProcID) {
	t.Helper()
	ids := []types.ProcID{types.WriterID(), types.ServerID(0), types.ServerID(1)}
	n, err := New(ids, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n, ids
}

func ep(t *testing.T, n *Network, id types.ProcID) *endpoint {
	t.Helper()
	e, err := n.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	return e.(*endpoint)
}

// Regression (PR 5 satellite): Release and ReleaseAll after Close must
// be no-ops — no delivery into closed mailboxes, no re-armed timers —
// and Close must discard held backlogs.
func TestReleaseAfterCloseIsNoOp(t *testing.T) {
	ids := []types.ProcID{types.WriterID(), types.ServerID(0)}
	n, err := New(ids)
	if err != nil {
		t.Fatal(err)
	}
	w := ep(t, n, types.WriterID())
	s := ep(t, n, types.ServerID(0))

	n.Hold(types.WriterID(), types.ServerID(0))
	for i := 0; i < 3; i++ {
		if err := w.Send(types.ServerID(0), wire.Read{TSR: types.ReaderTS(i + 1), Round: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.HeldCount(types.WriterID(), types.ServerID(0)); got != 3 {
		t.Fatalf("HeldCount = %d, want 3", got)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if got := n.HeldCount(types.WriterID(), types.ServerID(0)); got != 0 {
		t.Errorf("HeldCount after Close = %d, want 0 (backlog discarded)", got)
	}
	// Must not panic, deliver, or re-arm anything.
	n.Release(types.WriterID(), types.ServerID(0))
	n.ReleaseAll()
	n.SetPartition([]types.ProcID{types.WriterID()}, []types.ProcID{types.ServerID(0)})
	select {
	case env, ok := <-s.Recv():
		if ok {
			t.Fatalf("received %v through a closed network", env)
		}
	case <-time.After(50 * time.Millisecond):
		t.Fatal("server inbox never closed")
	}
}

// Release racing Close must never deliver after Close returned.
func TestReleaseCloseRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		ids := []types.ProcID{types.WriterID(), types.ServerID(0)}
		n, err := New(ids)
		if err != nil {
			t.Fatal(err)
		}
		w := ep(t, n, types.WriterID())
		n.Hold(types.WriterID(), types.ServerID(0))
		_ = w.Send(types.ServerID(0), wire.Read{TSR: 1, Round: 1})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); n.Release(types.WriterID(), types.ServerID(0)) }()
		go func() { defer wg.Done(); _ = n.Close() }()
		wg.Wait()
	}
}

func TestPartitionCutsCrossGroupLinksBothWays(t *testing.T) {
	n, _ := newTrio(t)
	w := ep(t, n, types.WriterID())
	s0 := ep(t, n, types.ServerID(0))
	s1 := ep(t, n, types.ServerID(1))

	n.SetPartition([]types.ProcID{types.WriterID(), types.ServerID(0)}, []types.ProcID{types.ServerID(1)})

	// Intra-group flows.
	if err := w.Send(types.ServerID(0), wire.Read{TSR: 1, Round: 1}); err != nil {
		t.Fatal(err)
	}
	mustRecv(t, s0, time.Second)

	// Cross-group held, both directions.
	if err := w.Send(types.ServerID(1), wire.Read{TSR: 2, Round: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Send(types.WriterID(), wire.PWAck{TS: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-s1.Recv():
		t.Fatalf("cross-partition delivery: %v", env)
	case <-time.After(20 * time.Millisecond):
	}
	if !n.Partitioned(types.WriterID(), types.ServerID(1)) || !n.Partitioned(types.ServerID(1), types.WriterID()) {
		t.Fatal("partition not recorded in both directions")
	}

	// Heal delivers the backlog in order.
	n.Heal()
	got := mustRecv(t, s1, time.Second)
	if rd, ok := got.Msg.(wire.Read); !ok || rd.TSR != 2 {
		t.Fatalf("healed delivery = %v, want the held READ", got)
	}
	mustRecv(t, w, time.Second)
	if n.Partitioned(types.WriterID(), types.ServerID(1)) {
		t.Fatal("Heal left the link cut")
	}
}

// Re-partitioning releases links no longer cut and cuts the new ones —
// the rolling-partition shape.
func TestRollingPartitionReleasesOldCut(t *testing.T) {
	n, _ := newTrio(t)
	w := ep(t, n, types.WriterID())
	s0 := ep(t, n, types.ServerID(0))

	n.SetPartition([]types.ProcID{types.WriterID(), types.ServerID(1)}, []types.ProcID{types.ServerID(0)})
	if err := w.Send(types.ServerID(0), wire.Read{TSR: 7, Round: 1}); err != nil {
		t.Fatal(err)
	}
	// Roll the cut to s1: s0's backlog must flow.
	n.SetPartition([]types.ProcID{types.WriterID(), types.ServerID(0)}, []types.ProcID{types.ServerID(1)})
	got := mustRecv(t, s0, time.Second)
	if rd, ok := got.Msg.(wire.Read); !ok || rd.TSR != 7 {
		t.Fatalf("rolled partition delivered %v", got)
	}
	if !n.Partitioned(types.WriterID(), types.ServerID(1)) {
		t.Fatal("new cut not installed")
	}
}

// A user Hold on a link the partition also cuts stays held across Heal:
// the partition only releases links it owns.
func TestPartitionDoesNotStealUserHolds(t *testing.T) {
	n, _ := newTrio(t)
	w := ep(t, n, types.WriterID())
	s1 := ep(t, n, types.ServerID(1))

	n.Hold(types.WriterID(), types.ServerID(1))
	n.SetPartition([]types.ProcID{types.WriterID()}, []types.ProcID{types.ServerID(1)})
	if err := w.Send(types.ServerID(1), wire.Read{TSR: 3, Round: 1}); err != nil {
		t.Fatal(err)
	}
	n.Heal()
	select {
	case env := <-s1.Recv():
		t.Fatalf("Heal released a user-held link: %v", env)
	case <-time.After(20 * time.Millisecond):
	}
	n.Release(types.WriterID(), types.ServerID(1))
	mustRecv(t, s1, time.Second)
}

// The ownership rule must hold in the other order too: a Hold placed
// on a link the partition already cut claims it, so Heal leaves the
// user's hold in place.
func TestHoldAfterCutClaimsLink(t *testing.T) {
	n, _ := newTrio(t)
	w := ep(t, n, types.WriterID())
	s1 := ep(t, n, types.ServerID(1))

	n.SetPartition([]types.ProcID{types.WriterID()}, []types.ProcID{types.ServerID(1)})
	n.Hold(types.WriterID(), types.ServerID(1)) // user claims the cut link
	if err := w.Send(types.ServerID(1), wire.Read{TSR: 4, Round: 1}); err != nil {
		t.Fatal(err)
	}
	n.Heal()
	select {
	case env := <-s1.Recv():
		t.Fatalf("Heal released a link the user claimed with Hold: %v", env)
	case <-time.After(20 * time.Millisecond):
	}
	n.Release(types.WriterID(), types.ServerID(1))
	mustRecv(t, s1, time.Second)
}

func TestDropLosesMessages(t *testing.T) {
	n, _ := newTrio(t)
	w := ep(t, n, types.WriterID())
	s0 := ep(t, n, types.ServerID(0))
	n.SetLinkFaults(types.WriterID(), types.ServerID(0), LinkFaults{Drop: 1})
	for i := 0; i < 5; i++ {
		if err := w.Send(types.ServerID(0), wire.Read{TSR: 1, Round: 1}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case env := <-s0.Recv():
		t.Fatalf("fully lossy link delivered %v", env)
	case <-time.After(20 * time.Millisecond):
	}
	if st := n.StatsSnapshot(); st.Dropped != 5 {
		t.Errorf("Dropped = %d, want 5", st.Dropped)
	}
	// Clearing restores delivery.
	n.SetLinkFaults(types.WriterID(), types.ServerID(0), LinkFaults{})
	if err := w.Send(types.ServerID(0), wire.Read{TSR: 2, Round: 1}); err != nil {
		t.Fatal(err)
	}
	mustRecv(t, s0, time.Second)
}

func TestDuplicateDeliversTwice(t *testing.T) {
	n, _ := newTrio(t)
	w := ep(t, n, types.WriterID())
	s0 := ep(t, n, types.ServerID(0))
	n.SetLinkFaults(types.WriterID(), types.ServerID(0), LinkFaults{Duplicate: 1})
	if err := w.Send(types.ServerID(0), wire.Read{TSR: 9, Round: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got := mustRecv(t, s0, time.Second)
		if rd, ok := got.Msg.(wire.Read); !ok || rd.TSR != 9 {
			t.Fatalf("copy %d = %v", i, got)
		}
	}
	if st := n.StatsSnapshot(); st.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", st.Duplicated)
	}
}

func TestJitterDelaysDelivery(t *testing.T) {
	n, _ := newTrio(t)
	w := ep(t, n, types.WriterID())
	s0 := ep(t, n, types.ServerID(0))
	n.SetProcFaults(types.ServerID(0), LinkFaults{JitterMax: 5 * time.Millisecond})
	start := time.Now()
	if err := w.Send(types.ServerID(0), wire.Read{TSR: 1, Round: 1}); err != nil {
		t.Fatal(err)
	}
	mustRecv(t, s0, time.Second)
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("jittered delivery took %v, jitter bound is 5ms", elapsed)
	}
}

// Same fault seed and send order ⇒ identical drop pattern.
func TestFaultDeterminismAcrossSeeds(t *testing.T) {
	pattern := func(seed int64) []bool {
		ids := []types.ProcID{types.WriterID(), types.ServerID(0)}
		n, err := New(ids, WithFaultSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		w := ep(t, n, types.WriterID())
		s := ep(t, n, types.ServerID(0))
		n.SetLinkFaults(types.WriterID(), types.ServerID(0), LinkFaults{Drop: 0.5})
		var got []bool
		for i := 0; i < 32; i++ {
			if err := w.Send(types.ServerID(0), wire.Read{TSR: 1, Round: 1}); err != nil {
				t.Fatal(err)
			}
			select {
			case <-s.Recv():
				got = append(got, true)
			case <-time.After(10 * time.Millisecond):
				got = append(got, false)
			}
		}
		return got
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at send %d: %v vs %v", i, a, b)
		}
	}
}
