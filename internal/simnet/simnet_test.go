package simnet

import (
	"errors"
	"testing"
	"time"

	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func newPair(t *testing.T, opts ...Option) (*Network, transport.Endpoint, transport.Endpoint) {
	t.Helper()
	ids := []types.ProcID{types.WriterID(), types.ServerID(0)}
	n, err := New(ids, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	w, err := n.Endpoint(types.WriterID())
	if err != nil {
		t.Fatal(err)
	}
	s, err := n.Endpoint(types.ServerID(0))
	if err != nil {
		t.Fatal(err)
	}
	return n, w, s
}

func mustRecv(t *testing.T, ep transport.Endpoint, within time.Duration) wire.Envelope {
	t.Helper()
	select {
	case env, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return env
	case <-time.After(within):
		t.Fatal("timed out waiting for delivery")
		return wire.Envelope{}
	}
}

func TestNewRejectsBadIDs(t *testing.T) {
	if _, err := New([]types.ProcID{"bogus"}); err == nil {
		t.Error("New accepted an invalid id")
	}
	if _, err := New([]types.ProcID{"s0", "s0"}); err == nil {
		t.Error("New accepted duplicate ids")
	}
}

func TestBasicDelivery(t *testing.T) {
	_, w, s := newPair(t)
	msg := wire.Read{TSR: 1, Round: 1}
	if err := w.Send(types.ServerID(0), msg); err != nil {
		t.Fatal(err)
	}
	env := mustRecv(t, s, 2*time.Second)
	if env.From != types.WriterID() || env.To != types.ServerID(0) {
		t.Errorf("envelope routing: %+v", env)
	}
	if got, ok := env.Msg.(wire.Read); !ok || got != msg {
		t.Errorf("message = %+v, want %+v", env.Msg, msg)
	}
}

func TestSendToUnknownPeer(t *testing.T) {
	_, w, _ := newPair(t)
	err := w.Send(types.ServerID(42), wire.ABDRead{Seq: 1})
	if !errors.Is(err, transport.ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestPerSenderFIFO(t *testing.T) {
	_, w, s := newPair(t)
	const n = 200
	for i := 1; i <= n; i++ {
		if err := w.Send(types.ServerID(0), wire.Read{TSR: types.ReaderTS(i), Round: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= n; i++ {
		env := mustRecv(t, s, 2*time.Second)
		if got := env.Msg.(wire.Read).TSR; got != types.ReaderTS(i) {
			t.Fatalf("message %d arrived with TSR %d", i, got)
		}
	}
}

func TestLinkDelayApplied(t *testing.T) {
	n, w, s := newPair(t)
	n.SetLinkDelay(types.WriterID(), types.ServerID(0), 100*time.Millisecond)
	start := time.Now()
	if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	mustRecv(t, s, 5*time.Second)
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("delivery took %v, want ≥ ~100ms delay", elapsed)
	}
}

func TestDefaultDelayOption(t *testing.T) {
	n, err := New([]types.ProcID{"w", "s0"}, WithDefaultDelay(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	w, _ := n.Endpoint("w")
	s, _ := n.Endpoint("s0")
	start := time.Now()
	if err := w.Send("s0", wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	mustRecv(t, s, 5*time.Second)
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("delivery took %v, want ≥ ~60ms", elapsed)
	}
}

func TestHoldAndRelease(t *testing.T) {
	n, w, s := newPair(t)
	n.Hold(types.WriterID(), types.ServerID(0))
	for i := 1; i <= 3; i++ {
		if err := w.Send(types.ServerID(0), wire.Read{TSR: types.ReaderTS(i), Round: 1}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case env := <-s.Recv():
		t.Fatalf("held link delivered %+v", env)
	case <-time.After(50 * time.Millisecond):
	}
	if got := n.HeldCount(types.WriterID(), types.ServerID(0)); got != 3 {
		t.Errorf("HeldCount = %d, want 3", got)
	}
	n.Release(types.WriterID(), types.ServerID(0))
	for i := 1; i <= 3; i++ {
		env := mustRecv(t, s, 2*time.Second)
		if got := env.Msg.(wire.Read).TSR; got != types.ReaderTS(i) {
			t.Fatalf("release order broken: got TSR %d at position %d", got, i)
		}
	}
}

func TestDiscardDropsBacklog(t *testing.T) {
	n, w, s := newPair(t)
	n.Hold(types.WriterID(), types.ServerID(0))
	if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: 9}); err != nil {
		t.Fatal(err)
	}
	n.Discard(types.WriterID(), types.ServerID(0))
	// Link resumed: a fresh message flows, the discarded one never does.
	if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: 10}); err != nil {
		t.Fatal(err)
	}
	env := mustRecv(t, s, 2*time.Second)
	if got := env.Msg.(wire.ABDRead).Seq; got != 10 {
		t.Errorf("got Seq %d, want 10 (9 must have been discarded)", got)
	}
}

func TestHoldAllFromAndTo(t *testing.T) {
	ids := []types.ProcID{"w", "r0", "s0"}
	n, err := New(ids)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	w, _ := n.Endpoint("w")
	r, _ := n.Endpoint("r0")
	s, _ := n.Endpoint("s0")

	n.HoldAllFrom("w")
	if err := w.Send("s0", wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Send("s0", wire.ABDRead{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	env := mustRecv(t, s, 2*time.Second) // only the reader's message flows
	if got := env.Msg.(wire.ABDRead).Seq; got != 2 {
		t.Errorf("got Seq %d, want 2", got)
	}

	n.HoldAllTo("r0")
	if err := s.Send("r0", wire.ABDRead{Seq: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-r.Recv():
		t.Fatalf("held-to link delivered %+v", env)
	case <-time.After(50 * time.Millisecond):
	}
	n.ReleaseAll()
	env = mustRecv(t, r, 2*time.Second)
	if got := env.Msg.(wire.ABDRead).Seq; got != 3 {
		t.Errorf("after ReleaseAll got Seq %d, want 3", got)
	}
}

// A message already scheduled with a delay must not slip past a Hold
// installed before the delay elapses.
func TestDelayedMessageRespectsLaterHold(t *testing.T) {
	n, w, s := newPair(t)
	n.SetLinkDelay(types.WriterID(), types.ServerID(0), 80*time.Millisecond)
	if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	n.Hold(types.WriterID(), types.ServerID(0))
	select {
	case env := <-s.Recv():
		t.Fatalf("delayed message leaked around hold: %+v", env)
	case <-time.After(200 * time.Millisecond):
	}
	n.Release(types.WriterID(), types.ServerID(0))
	env := mustRecv(t, s, 2*time.Second)
	if got := env.Msg.(wire.ABDRead).Seq; got != 1 {
		t.Errorf("got Seq %d, want 1", got)
	}
}

func TestStats(t *testing.T) {
	n, w, _ := newPair(t)
	for i := 0; i < 5; i++ {
		if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Send(types.ServerID(0), wire.Read{TSR: 1, Round: 1}); err != nil {
		t.Fatal(err)
	}
	s := n.StatsSnapshot()
	if s.Total != 6 {
		t.Errorf("Total = %d, want 6", s.Total)
	}
	if s.ByKind[wire.KindABDRead] != 5 || s.ByKind[wire.KindRead] != 1 {
		t.Errorf("ByKind = %v", s.ByKind)
	}
}

func TestCloseStopsEverything(t *testing.T) {
	n, w, s := newPair(t)
	n.SetLinkDelay(types.WriterID(), types.ServerID(0), time.Hour)
	if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: 2}); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
	if _, ok := <-s.Recv(); ok {
		t.Error("recv channel still open after network Close")
	}
	if _, err := n.Endpoint(types.WriterID()); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Endpoint after Close = %v, want ErrClosed", err)
	}
}

func TestEndpointCloseIsLocal(t *testing.T) {
	n, w, s := newPair(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.Send(types.WriterID(), wire.ABDRead{Seq: 1}); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Send on closed endpoint = %v, want ErrClosed", err)
	}
	// The writer can still send into the void (reliable channel to a
	// crashed process: send succeeds, delivery is moot).
	if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: 2}); err != nil {
		t.Errorf("Send to closed endpoint's id = %v, want nil", err)
	}
	_ = n
}

func TestConcurrentSendersStress(t *testing.T) {
	ids := append(types.ServerIDs(4), types.WriterID())
	n, err := New(ids)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	w, _ := n.Endpoint(types.WriterID())
	const perServer = 100
	done := make(chan struct{})
	for _, sid := range types.ServerIDs(4) {
		sid := sid
		go func() {
			ep, _ := n.Endpoint(sid)
			for i := 0; i < perServer; i++ {
				if err := ep.Send(types.WriterID(), wire.PWAck{TS: 1}); err != nil {
					t.Errorf("send: %v", err)
					break
				}
			}
			done <- struct{}{}
		}()
	}
	received := 0
	timeout := time.After(10 * time.Second)
	finished := 0
	for received < 4*perServer || finished < 4 {
		select {
		case <-w.Recv():
			received++
		case <-done:
			finished++
		case <-timeout:
			t.Fatalf("stress: received %d of %d", received, 4*perServer)
		}
	}
}
