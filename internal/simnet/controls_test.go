package simnet

import (
	"testing"
	"time"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func TestClearLinkDelayRestoresDefault(t *testing.T) {
	n, w, s := newPair(t)
	n.SetLinkDelay(types.WriterID(), types.ServerID(0), 150*time.Millisecond)
	n.ClearLinkDelay(types.WriterID(), types.ServerID(0))
	start := time.Now()
	if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	mustRecv(t, s, 2*time.Second)
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("delivery took %v after ClearLinkDelay, want fast", elapsed)
	}
}

func TestLinkDelayIsDirectional(t *testing.T) {
	n, w, s := newPair(t)
	// Slow only server→writer; writer→server stays fast.
	n.SetLinkDelay(types.ServerID(0), types.WriterID(), 120*time.Millisecond)
	start := time.Now()
	if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	mustRecv(t, s, 2*time.Second)
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("forward direction delayed: %v", elapsed)
	}
	start = time.Now()
	if err := s.Send(types.WriterID(), wire.ABDReadAck{Seq: 1, C: types.Bottom()}); err != nil {
		t.Fatal(err)
	}
	mustRecv(t, w, 2*time.Second)
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("reverse direction not delayed: %v", elapsed)
	}
}

func TestReleaseOnUnheldLinkIsNoOp(t *testing.T) {
	n, w, s := newPair(t)
	n.Release(types.WriterID(), types.ServerID(0)) // nothing held: no-op
	if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	mustRecv(t, s, 2*time.Second)
	if got := n.HeldCount(types.WriterID(), types.ServerID(0)); got != 0 {
		t.Errorf("HeldCount on unheld link = %d", got)
	}
}

func TestHoldIsIdempotentAndPreservesBacklog(t *testing.T) {
	n, w, s := newPair(t)
	n.Hold(types.WriterID(), types.ServerID(0))
	if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// A second Hold must not discard the queued message.
	n.Hold(types.WriterID(), types.ServerID(0))
	if got := n.HeldCount(types.WriterID(), types.ServerID(0)); got != 1 {
		t.Fatalf("backlog after double Hold = %d, want 1", got)
	}
	n.Release(types.WriterID(), types.ServerID(0))
	env := mustRecv(t, s, 2*time.Second)
	if env.Msg.(wire.ABDRead).Seq != 1 {
		t.Errorf("wrong message after release: %+v", env.Msg)
	}
}

func TestHoldReleaseCycleUnderTraffic(t *testing.T) {
	n, w, s := newPair(t)
	const rounds = 5
	const perRound = 20
	next := 1
	for r := 0; r < rounds; r++ {
		n.Hold(types.WriterID(), types.ServerID(0))
		for i := 0; i < perRound; i++ {
			if err := w.Send(types.ServerID(0), wire.ABDRead{Seq: int64(next)}); err != nil {
				t.Fatal(err)
			}
			next++
		}
		n.Release(types.WriterID(), types.ServerID(0))
	}
	for want := 1; want < next; want++ {
		env := mustRecv(t, s, 5*time.Second)
		if got := env.Msg.(wire.ABDRead).Seq; got != int64(want) {
			t.Fatalf("message %d arrived as %d: hold/release reordered traffic", want, got)
		}
	}
}
