package simnet

import (
	"testing"
	"time"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func testBatch() wire.Batch {
	return wire.Batch{Msgs: []wire.Message{
		wire.Keyed{Key: "a", Inner: wire.Read{TSR: 1, Round: 1}},
		wire.Keyed{Key: "b", Inner: wire.Read{TSR: 2, Round: 1}},
		wire.Keyed{Key: "c", Inner: wire.Read{TSR: 3, Round: 1}},
	}}
}

// assertUnwrapped drains three envelopes and checks they are the batch's
// inner messages in order, stamped with the batch's route.
func assertUnwrapped(t *testing.T, n *Network, b wire.Batch) {
	t.Helper()
	s, err := n.Endpoint(types.ServerID(0))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range b.Msgs {
		env := mustRecv(t, s, time.Second)
		if env.From != types.WriterID() || env.To != types.ServerID(0) {
			t.Errorf("envelope %d route = %s→%s", i, env.From, env.To)
		}
		if env.Msg != want {
			t.Errorf("envelope %d = %+v, want %+v", i, env.Msg, want)
		}
	}
}

func TestBatchUnwrapsOnImmediateDelivery(t *testing.T) {
	n, w, _ := newPair(t)
	b := testBatch()
	if err := w.Send(types.ServerID(0), b); err != nil {
		t.Fatal(err)
	}
	assertUnwrapped(t, n, b)
}

func TestBatchUnwrapsOnDelayedDelivery(t *testing.T) {
	n, w, _ := newPair(t)
	n.SetLinkDelay(types.WriterID(), types.ServerID(0), time.Millisecond)
	b := testBatch()
	if err := w.Send(types.ServerID(0), b); err != nil {
		t.Fatal(err)
	}
	assertUnwrapped(t, n, b)
}

func TestBatchStaysIntactWhileHeld(t *testing.T) {
	n, w, _ := newPair(t)
	n.Hold(types.WriterID(), types.ServerID(0))
	b := testBatch()
	if err := w.Send(types.ServerID(0), b); err != nil {
		t.Fatal(err)
	}
	// In transit, a batch is one frame.
	if got := n.HeldCount(types.WriterID(), types.ServerID(0)); got != 1 {
		t.Errorf("held count = %d, want 1", got)
	}
	n.Release(types.WriterID(), types.ServerID(0))
	assertUnwrapped(t, n, b)
}

func TestBatchStatsCountFramesAndInnerKinds(t *testing.T) {
	n, w, _ := newPair(t)
	if err := w.Send(types.ServerID(0), testBatch()); err != nil {
		t.Fatal(err)
	}
	st := n.StatsSnapshot()
	if st.Total != 1 {
		t.Errorf("total frames = %d, want 1", st.Total)
	}
	if st.ByKind[wire.KindKeyed] != 3 {
		t.Errorf("KEYED count = %d, want 3 (inner messages)", st.ByKind[wire.KindKeyed])
	}
	if st.ByKind[wire.KindBatch] != 0 {
		t.Errorf("BATCH count = %d, want 0 (stats see through batching)", st.ByKind[wire.KindBatch])
	}
}
