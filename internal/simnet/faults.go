package simnet

// Scripted network faults for the chaos engine (internal/chaos):
// partitions built from held links, probabilistic per-link drop and
// duplication, and delay-spike jitter. All primitives are driven by the
// network's seeded fault RNG, so a schedule that consults them is
// reproducible given the same seed and message arrival order.
//
// The fault model stays inside the paper's assumptions wherever
// possible: a partition is asynchrony (messages "remain in transit"
// until the partition heals, exactly like Hold/Release), while Drop
// models a lossy link — indistinguishable, to its clients, from the
// affected server being crash-faulty, so schedules must keep lossy
// links within the failure budget t (and within fr/fw for luckiness
// claims). Duplicate and jitter never threaten correctness: clients
// deduplicate acks per server and tolerate arbitrary delay.

import (
	"math/rand"
	"time"

	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// LinkFaults configures probabilistic faults on one directed link.
// The zero value is a fault-free link.
type LinkFaults struct {
	// Drop is the probability a message on the link is lost forever.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// JitterMax adds a uniformly random extra delivery delay in
	// [0, JitterMax) per message — a delay spike, not a rate change.
	JitterMax time.Duration
}

// active reports whether the spec does anything.
func (f LinkFaults) active() bool {
	return f.Drop > 0 || f.Duplicate > 0 || f.JitterMax > 0
}

// WithFaultSeed seeds the RNG behind probabilistic link faults
// (SetLinkFaults). Networks created without this option use seed 1, so
// fault decisions are deterministic by default given message order.
func WithFaultSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// SeedFaults re-seeds the fault RNG mid-run (the chaos engine does this
// when a new scenario phase begins, so each phase's fault pattern is a
// function of the scenario seed alone).
func (n *Network) SeedFaults(seed int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rng = rand.New(rand.NewSource(seed))
}

// SetLinkFaults installs probabilistic faults on the directed link
// from→to, replacing any previous spec for that link. A zero spec
// clears the link.
func (n *Network) SetLinkFaults(from, to types.ProcID, f LinkFaults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := link{from, to}
	if !f.active() {
		delete(n.faults, l)
		return
	}
	n.faults[l] = f
}

// SetProcFaults installs the same fault spec on every link into and out
// of id — the "flaky machine" shape chaos scenarios use, since real
// packet loss afflicts a host's links together.
func (n *Network) SetProcFaults(id types.ProcID, f LinkFaults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.endpoints {
		if other == id {
			continue
		}
		for _, l := range [2]link{{id, other}, {other, id}} {
			if !f.active() {
				delete(n.faults, l)
			} else {
				n.faults[l] = f
			}
		}
	}
}

// ClearAllFaults removes every probabilistic link fault.
func (n *Network) ClearAllFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	clear(n.faults)
}

// SetPartition cuts the network into the given groups: every link
// between processes in different groups is held (its messages stay in
// transit), links within a group — and links of processes not named in
// any group — are unaffected. Calling SetPartition again replaces the
// partition: links no longer cut are released, delivering their
// backlog in order. SetPartition() with no groups heals everything.
//
// Partition holds are tracked separately from explicit Hold calls: a
// link the user already held is left alone, and healing releases only
// the links the partition itself cut.
func (n *Network) SetPartition(groups ...[]types.ProcID) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	want := make(map[link]bool)
	for gi, g := range groups {
		for gj, h := range groups {
			if gi == gj {
				continue
			}
			for _, a := range g {
				for _, b := range h {
					want[link{a, b}] = true
				}
			}
		}
	}
	for l := range want {
		if n.cut[l] {
			continue
		}
		if _, userHeld := n.held[l]; userHeld {
			continue // the user's Hold owns this link; leave it to them
		}
		n.held[l] = []wire.Envelope{}
		n.cut[l] = true
	}
	var release []link
	for l := range n.cut {
		if !want[l] {
			release = append(release, l)
			delete(n.cut, l)
		}
	}
	n.mu.Unlock()
	for _, l := range release {
		n.Release(l.from, l.to)
	}
}

// Heal releases every link the current partition cut.
func (n *Network) Heal() { n.SetPartition() }

// Partitioned reports whether the directed link from→to is currently
// cut by the partition.
func (n *Network) Partitioned(from, to types.ProcID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cut[link{from, to}]
}
