// Package simnet implements the in-memory simulated network used by the
// test suite, the experiments and the benchmarks.
//
// It models the paper's system assumptions directly (Section 2):
//
//   - point-to-point reliable channels: a sent message is never lost and
//     senders never block on receivers (unbounded mailboxes);
//   - asynchrony: per-link delivery delays are controllable, and any
//     link can be held — its messages stay "in transit" until released —
//     which is how the indistinguishability runs of Figures 4 and 5 are
//     scripted;
//   - synchrony: with the default (small, bounded) delay, every message
//     between correct processes arrives within a known bound, which is
//     what makes operations lucky.
//
// The network also counts messages per link and kind so experiments can
// report message complexity alongside round-trip complexity.
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// link identifies a directed sender→receiver channel.
type link struct {
	from, to types.ProcID
}

// Network is an in-memory transport.Network. The zero value is not
// usable; create networks with New.
type Network struct {
	mu           sync.Mutex
	endpoints    map[types.ProcID]*endpoint
	defaultDelay time.Duration
	linkDelay    map[link]time.Duration
	held         map[link][]wire.Envelope // non-nil value marks a held link
	cut          map[link]bool            // held-link subset owned by SetPartition
	faults       map[link]LinkFaults      // probabilistic drop/duplicate/jitter
	rng          *rand.Rand               // fault RNG, guarded by mu
	timers       map[*time.Timer]struct{}
	counts       map[link]map[wire.Kind]int
	total        int
	dropped      int
	duplicated   int
	closed       bool
}

var _ transport.Network = (*Network)(nil)

// Option configures a Network.
type Option func(*Network)

// WithDefaultDelay sets the base one-way delivery delay for every link.
// The default is zero: messages are delivered as fast as the scheduler
// allows, modeling a well-behaved synchronous network.
func WithDefaultDelay(d time.Duration) Option {
	return func(n *Network) { n.defaultDelay = d }
}

// New creates a network with endpoints for each given process id.
func New(ids []types.ProcID, opts ...Option) (*Network, error) {
	n := &Network{
		endpoints: make(map[types.ProcID]*endpoint, len(ids)),
		linkDelay: make(map[link]time.Duration),
		held:      make(map[link][]wire.Envelope),
		cut:       make(map[link]bool),
		faults:    make(map[link]LinkFaults),
		rng:       rand.New(rand.NewSource(1)),
		timers:    make(map[*time.Timer]struct{}),
		counts:    make(map[link]map[wire.Kind]int),
	}
	for _, opt := range opts {
		opt(n)
	}
	for _, id := range ids {
		if !id.Valid() {
			return nil, fmt.Errorf("simnet: invalid process id %q", id)
		}
		if _, dup := n.endpoints[id]; dup {
			return nil, fmt.Errorf("simnet: duplicate process id %q", id)
		}
		n.endpoints[id] = &endpoint{id: id, net: n, mbox: transport.NewMailbox()}
	}
	return n, nil
}

// Endpoint implements transport.Network.
func (n *Network) Endpoint(id types.ProcID) (transport.Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, transport.ErrClosed
	}
	ep, ok := n.endpoints[id]
	if !ok {
		return nil, fmt.Errorf("simnet endpoint %q: %w", id, transport.ErrUnknownPeer)
	}
	return ep, nil
}

// Close shuts the network down: pending delayed deliveries are
// cancelled, held backlogs are discarded (a Release after Close must
// not deliver into closed mailboxes, nor re-arm anything), and every
// endpoint's inbox is closed. Close blocks until all internal
// goroutines have exited.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for t := range n.timers {
		t.Stop()
	}
	n.timers = map[*time.Timer]struct{}{}
	clear(n.held) // discard in-transit backlogs; Release is a no-op from here on
	clear(n.cut)
	clear(n.faults)
	eps := make([]*endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.mbox.Close()
	}
	return nil
}

// SetLinkDelay overrides the one-way delivery delay on from→to.
func (n *Network) SetLinkDelay(from, to types.ProcID, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkDelay[link{from, to}] = d
}

// ClearLinkDelay removes a per-link override.
func (n *Network) ClearLinkDelay(from, to types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.linkDelay, link{from, to})
}

// Hold suspends delivery on the directed link from→to. Messages sent
// while the link is held stay in transit (in order) until Release or
// Discard. Holding models the "due to asynchrony, all messages …
// remain in transit" steps of the proof runs.
//
// Hold claims the link even if a partition already cut it: healing the
// partition then leaves the user's hold in place (the ownership rule
// of SetPartition, in either order of Hold vs cut).
func (n *Network) Hold(from, to types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := link{from, to}
	delete(n.cut, l)
	if _, already := n.held[l]; !already {
		n.held[l] = []wire.Envelope{}
	}
}

// HoldAllFrom suspends delivery on every link whose sender is id. Like
// Hold, it claims the links from any current partition.
func (n *Network) HoldAllFrom(id types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for to := range n.endpoints {
		l := link{id, to}
		delete(n.cut, l)
		if _, already := n.held[l]; !already {
			n.held[l] = []wire.Envelope{}
		}
	}
}

// HoldAllTo suspends delivery on every link whose receiver is id. Like
// Hold, it claims the links from any current partition.
func (n *Network) HoldAllTo(id types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for from := range n.endpoints {
		l := link{from, id}
		delete(n.cut, l)
		if _, already := n.held[l]; !already {
			n.held[l] = []wire.Envelope{}
		}
	}
}

// Release resumes delivery on from→to, delivering held messages in
// their original send order. On a closed network Release is a no-op:
// Close already discarded every backlog, and nothing may be delivered
// into closed mailboxes.
func (n *Network) Release(from, to types.ProcID) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	l := link{from, to}
	backlog, washeld := n.held[l]
	delete(n.held, l)
	delete(n.cut, l)
	var target *endpoint
	if washeld {
		target = n.endpoints[to]
	}
	n.mu.Unlock()
	if target == nil {
		return
	}
	for _, env := range backlog {
		// Receiver may have closed; reliable channels tolerate that only
		// via crash.
		deliver(target.mbox, env)
	}
}

// deliver puts an envelope into an inbox, unwrapping batches at the
// endpoint boundary: a held or delayed batch travels (and is counted)
// as one frame, but the receiving process only ever sees the inner
// messages, in their batch order. The common non-batch case stays
// allocation-free.
func deliver(mbox *transport.Mailbox, env wire.Envelope) {
	if _, ok := env.Msg.(wire.Batch); !ok {
		_ = mbox.Put(env)
		return
	}
	for _, e := range wire.Expand(env) {
		_ = mbox.Put(e)
	}
}

// ReleaseAll resumes delivery on every held link. Like Release, it is
// a no-op on a closed network.
func (n *Network) ReleaseAll() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	links := make([]link, 0, len(n.held))
	for l := range n.held {
		links = append(links, l)
	}
	n.mu.Unlock()
	for _, l := range links {
		n.Release(l.from, l.to)
	}
}

// Discard drops the backlog of a held link and resumes delivery. In the
// model this corresponds to a run in which the held messages were sent
// by (or to) a process that crashed, so they are never received within
// the run under construction.
func (n *Network) Discard(from, to types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.held, link{from, to})
	delete(n.cut, link{from, to})
}

// HeldCount reports how many messages are currently in transit on a
// held link.
func (n *Network) HeldCount(from, to types.ProcID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.held[link{from, to}])
}

// Stats is a snapshot of per-link, per-kind message counts.
type Stats struct {
	Total      int
	Dropped    int // frames lost to LinkFaults.Drop
	Duplicated int // frames delivered twice by LinkFaults.Duplicate
	ByKind     map[wire.Kind]int
}

// StatsSnapshot returns aggregate message counts since creation.
func (n *Network) StatsSnapshot() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := Stats{Total: n.total, Dropped: n.dropped, Duplicated: n.duplicated, ByKind: make(map[wire.Kind]int)}
	for _, kinds := range n.counts {
		for k, c := range kinds {
			s.ByKind[k] += c
		}
	}
	return s
}

// route is called by endpoints to deliver a message.
func (n *Network) route(from, to types.ProcID, m wire.Message) error {
	env := wire.Envelope{From: from, To: to, Msg: m}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	target, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("simnet route to %q: %w", to, transport.ErrUnknownPeer)
	}
	l := link{from, to}
	n.total++ // frames, not inner messages: a batch costs one send
	kinds := n.counts[l]
	if kinds == nil {
		kinds = make(map[wire.Kind]int)
		n.counts[l] = kinds
	}
	// Per-kind stats count the protocol messages inside a batch, so
	// experiments measuring message complexity see through batching.
	if m != nil {
		if b, ok := m.(wire.Batch); ok {
			for _, inner := range b.Msgs {
				if inner != nil {
					kinds[inner.Kind()]++
				}
			}
		} else {
			kinds[m.Kind()]++
		}
	}
	// Probabilistic link faults (SetLinkFaults): decide drop, duplicate
	// and jitter under the seeded fault RNG before the hold check, so a
	// lossy link stays lossy while partitioned.
	copies := 1
	var jitter time.Duration
	if f, ok := n.faults[l]; ok {
		if f.Drop > 0 && n.rng.Float64() < f.Drop {
			n.dropped++
			n.mu.Unlock()
			return nil
		}
		if f.Duplicate > 0 && n.rng.Float64() < f.Duplicate {
			copies = 2
			n.duplicated++
		}
		if f.JitterMax > 0 {
			jitter = time.Duration(n.rng.Int63n(int64(f.JitterMax)))
		}
	}
	if backlog, heldNow := n.held[l]; heldNow {
		for c := 0; c < copies; c++ {
			backlog = append(backlog, env)
		}
		n.held[l] = backlog
		n.mu.Unlock()
		return nil
	}
	delay := n.defaultDelay
	if d, ok := n.linkDelay[l]; ok {
		delay = d
	}
	delay += jitter
	if delay <= 0 {
		n.mu.Unlock()
		for c := 0; c < copies; c++ {
			deliver(target.mbox, env)
		}
		return nil
	}
	for c := 0; c < copies; c++ {
		n.scheduleLocked(l, target, env, delay)
	}
	n.mu.Unlock()
	return nil
}

// scheduleLocked arms a delivery timer for one envelope. Callers hold
// n.mu.
func (n *Network) scheduleLocked(l link, target *endpoint, env wire.Envelope, delay time.Duration) {
	var timer *time.Timer
	timer = time.AfterFunc(delay, func() {
		n.mu.Lock()
		delete(n.timers, timer)
		closed := n.closed
		// The link may have been held after the message was scheduled;
		// a held link must not leak messages around the hold.
		if backlog, heldNow := n.held[l]; heldNow && !closed {
			n.held[l] = append(backlog, env)
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		if closed {
			return
		}
		deliver(target.mbox, env)
	})
	n.timers[timer] = struct{}{}
}

// endpoint is a process's attachment to the network.
type endpoint struct {
	id   types.ProcID
	net  *Network
	mbox *transport.Mailbox

	mu     sync.Mutex
	closed bool
}

var _ transport.Endpoint = (*endpoint)(nil)

func (e *endpoint) ID() types.ProcID { return e.id }

func (e *endpoint) Send(to types.ProcID, m wire.Message) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return transport.ErrClosed
	}
	return e.net.route(e.id, to, m)
}

func (e *endpoint) Recv() <-chan wire.Envelope { return e.mbox.Out() }

// Close detaches the process: it can no longer send, and its inbox
// channel is closed. Close is idempotent.
func (e *endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.mbox.Close()
	return nil
}
