package fault

// Regression (PR 5 satellite): every Byzantine behavior must be safe to
// step from multiple goroutines at once. Since PR 2 a substituted
// automaton can be driven by a pool of shard workers (node.StepPool,
// node.ShardedRunner), so internal behavior state shared across steps —
// Equivocator's client map, SplitBrain's wrapped automaton, RandomLiar's
// RNG — races unless locked. Run with -race.

import (
	"sync"
	"testing"

	"luckystore/internal/core"
	"luckystore/internal/node"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func stepStorm(t *testing.T, name string, a node.Automaton) {
	t.Helper()
	const goroutines, steps = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			from := types.ReaderID(g % 3)
			if g == 0 {
				from = types.WriterID()
			}
			for i := 0; i < steps; i++ {
				switch i % 3 {
				case 0:
					a.Step(from, wire.PW{TS: types.TS(i + 1), PW: types.Tagged{TS: types.TS(i + 1), Val: "v"}, W: types.Bottom()})
				case 1:
					a.Step(from, wire.Read{TSR: types.ReaderTS(i + 1), Round: 1})
				case 2:
					a.Step(from, wire.W{Round: 2, Tag: int64(i + 1), C: types.Tagged{TS: types.TS(i + 1), Val: "v"}})
				}
			}
		}()
	}
	wg.Wait()
}

func TestBehaviorsSafeUnderParallelStepping(t *testing.T) {
	perClient := map[types.ProcID]types.Tagged{
		types.ReaderID(0): {TS: 500, Val: "eq0"},
		types.ReaderID(1): {TS: 600, Val: "eq1"},
	}
	cases := []struct {
		name string
		a    node.Automaton
	}{
		{"Mute", Mute()},
		{"ForgeHighTS", ForgeHighTS(999, "evil")},
		{"StaleBottom", StaleBottom()},
		{"RandomLiar", RandomLiar(7)},
		{"Equivocator", Equivocator(perClient, types.Bottom())},
		{"SplitBrain", NewSplitBrain(core.NewServer(), StaleBottom(), types.WriterID())},
		{"KeyedLiar", Keyed(RandomLiar(11))},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			stepStorm(t, tc.name, tc.a)
		})
	}
}

// The caller's map is snapshotted: mutating it after installation must
// not race (or alter) the behavior.
func TestEquivocatorSnapshotsClientMap(t *testing.T) {
	m := map[types.ProcID]types.Tagged{types.ReaderID(0): {TS: 500, Val: "eq0"}}
	b := Equivocator(m, types.Bottom())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			m[types.ReaderID(i%4)] = types.Tagged{TS: types.TS(i + 1), Val: "mut"}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.Step(types.ReaderID(0), wire.Read{TSR: 1, Round: 1})
		}
	}()
	wg.Wait()
	out := b.Step(types.ReaderID(0), wire.Read{TSR: 2, Round: 1})
	if len(out) != 1 {
		t.Fatalf("got %d replies", len(out))
	}
	ack := out[0].Msg.(wire.ReadAck)
	if ack.PW.Val != "eq0" {
		t.Errorf("mutating the caller's map changed the behavior: %v", ack.PW)
	}
}

func TestKeyedWrapsAndUnwraps(t *testing.T) {
	b := Keyed(ForgeHighTS(999, "evil"))
	out := b.Step(types.ReaderID(0), wire.Keyed{Key: "k1", Inner: wire.Read{TSR: 3, Round: 1}})
	if len(out) != 1 {
		t.Fatalf("got %d replies", len(out))
	}
	k, ok := out[0].Msg.(wire.Keyed)
	if !ok || k.Key != "k1" {
		t.Fatalf("reply not re-wrapped for the key: %v", out[0].Msg)
	}
	if ack, ok := k.Inner.(wire.ReadAck); !ok || ack.PW.Val != "evil" {
		t.Errorf("inner reply = %v", k.Inner)
	}
	// Non-keyed messages pass through.
	if out := b.Step(types.ReaderID(0), wire.Read{TSR: 4, Round: 1}); len(out) != 1 {
		t.Errorf("passthrough got %d replies", len(out))
	}
}
