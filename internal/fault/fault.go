// Package fault provides failure injection: Byzantine server behaviors
// (automata that lie while keeping messages structurally valid, which
// is the strongest adversary the clients cannot filter out), split-brain
// wrappers that behave correctly toward some clients and lie to others
// (the B2 behavior in run r4 of the upper-bound proof), and a malicious
// reader that forges write-backs (the Section 5 discussion).
//
// All behaviors implement node.Automaton and plug into a cluster via
// core.WithServerAutomaton.
package fault

import (
	"math/rand"
	"sync"

	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// Behavior is a function-shaped automaton.
type Behavior func(from types.ProcID, m wire.Message) []transport.Outgoing

// Step implements node.Automaton.
func (b Behavior) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	return b(from, m)
}

// Mute returns a Byzantine server that never replies. To clients it is
// indistinguishable from a crashed server, so it counts against both b
// and the "actual failures" budget f of the fast-path theorems.
func Mute() Behavior {
	return func(types.ProcID, wire.Message) []transport.Outgoing { return nil }
}

// reply wraps a single outgoing message.
func reply(to types.ProcID, m wire.Message) []transport.Outgoing {
	return []transport.Outgoing{{To: to, Msg: m}}
}

// ForgeHighTS returns a Byzantine server that acknowledges every
// request with correctly tagged replies claiming a fabricated pair
// 〈ts, val〉 in all of its fields — the canonical attack of the upper
// bound proof: imposing a value that was never written.
func ForgeHighTS(ts types.TS, val types.Value) Behavior {
	forged := types.Tagged{TS: ts, Val: val}
	return func(from types.ProcID, m wire.Message) []transport.Outgoing {
		switch v := m.(type) {
		case wire.PW:
			return reply(from, wire.PWAck{TS: v.TS})
		case wire.W:
			return reply(from, wire.WAck{Round: v.Round, Tag: v.Tag})
		case wire.Read:
			return reply(from, wire.ReadAck{
				TSR: v.TSR, Round: v.Round,
				PW: forged, W: forged, VW: forged,
				Frozen: types.FrozenPair{PW: forged, TSR: v.TSR},
			})
		default:
			return nil
		}
	}
}

// StaleBottom returns a Byzantine server that acknowledges everything
// but always reports the initial state, trying to drag readers back to
// ⊥ (a targeted "new-old inversion" attack).
func StaleBottom() Behavior {
	return func(from types.ProcID, m wire.Message) []transport.Outgoing {
		switch v := m.(type) {
		case wire.PW:
			return reply(from, wire.PWAck{TS: v.TS})
		case wire.W:
			return reply(from, wire.WAck{Round: v.Round, Tag: v.Tag})
		case wire.Read:
			return reply(from, wire.ReadAck{
				TSR: v.TSR, Round: v.Round,
				PW: types.Bottom(), W: types.Bottom(), VW: types.Bottom(),
				Frozen: types.InitialFrozen(),
			})
		default:
			return nil
		}
	}
}

// RandomLiar returns a Byzantine server that replies with correctly
// tagged acks carrying pseudo-random timestamps and values. The seed
// makes runs reproducible.
func RandomLiar(seed int64) Behavior {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	randomPair := func() types.Tagged {
		ts := types.TS(rng.Intn(1000))
		if ts == 0 {
			return types.Bottom()
		}
		return types.Tagged{TS: ts, Val: types.Value([]byte{byte(rng.Intn(26) + 'a')})}
	}
	return func(from types.ProcID, m wire.Message) []transport.Outgoing {
		mu.Lock()
		defer mu.Unlock()
		switch v := m.(type) {
		case wire.PW:
			return reply(from, wire.PWAck{TS: v.TS})
		case wire.W:
			return reply(from, wire.WAck{Round: v.Round, Tag: v.Tag})
		case wire.Read:
			return reply(from, wire.ReadAck{
				TSR: v.TSR, Round: v.Round,
				PW: randomPair(), W: randomPair(), VW: randomPair(),
				Frozen: types.FrozenPair{PW: randomPair(), TSR: v.TSR},
			})
		default:
			return nil
		}
	}
}

// Equivocator returns a Byzantine server that reports a different
// fabricated pair to every client (keyed by client id), defaulting to
// the fallback pair. Equivocation is what the b+1 witness thresholds
// exist to defeat.
//
// The behavior snapshots perClient and guards its state with a mutex:
// a sharded deployment (node.StepPool, node.ShardedRunner) steps one
// substituted automaton from several worker goroutines at once, and a
// caller mutating its map after installation must not race Step.
func Equivocator(perClient map[types.ProcID]types.Tagged, fallback types.Tagged) Behavior {
	var mu sync.Mutex
	own := make(map[types.ProcID]types.Tagged, len(perClient))
	for id, c := range perClient {
		own[id] = c
	}
	return func(from types.ProcID, m wire.Message) []transport.Outgoing {
		mu.Lock()
		defer mu.Unlock()
		c, ok := own[from]
		if !ok {
			c = fallback
		}
		switch v := m.(type) {
		case wire.PW:
			return reply(from, wire.PWAck{TS: v.TS})
		case wire.W:
			return reply(from, wire.WAck{Round: v.Round, Tag: v.Tag})
		case wire.Read:
			return reply(from, wire.ReadAck{
				TSR: v.TSR, Round: v.Round,
				PW: c, W: c, VW: c,
				Frozen: types.FrozenPair{PW: c, TSR: v.TSR},
			})
		default:
			return nil
		}
	}
}

// SplitBrain wraps a real automaton and behaves correctly toward the
// clients in honest; toward everyone else it runs the liar behavior.
// This reproduces B2 in run r4 of the upper-bound proof: "B2 plays
// according to the protocol with respect to the writer and reader1, but
// to all other servers and reader2, B2 plays like it never received any
// message".
type SplitBrain struct {
	mu   sync.Mutex
	real interface {
		Step(types.ProcID, wire.Message) []transport.Outgoing
	}
	liar   Behavior
	honest map[types.ProcID]bool
}

// NewSplitBrain builds a split-brain wrapper around real; honestTo
// lists the clients that see protocol-conformant behavior.
func NewSplitBrain(real interface {
	Step(types.ProcID, wire.Message) []transport.Outgoing
}, liar Behavior, honestTo ...types.ProcID) *SplitBrain {
	h := make(map[types.ProcID]bool, len(honestTo))
	for _, id := range honestTo {
		h[id] = true
	}
	return &SplitBrain{real: real, liar: liar, honest: h}
}

// Step implements node.Automaton.
func (s *SplitBrain) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.honest[from] {
		return s.real.Step(from, m)
	}
	return s.liar(from, m)
}

// Keyed lifts a single-register Byzantine behavior to the multi-
// register wire protocol: wire.Keyed requests are unwrapped, answered
// by b, and the replies re-wrapped under the same key, so one liar
// poisons every register of a KV deployment. Non-keyed messages pass
// through to b unchanged (a single-register deployment).
func Keyed(b Behavior) Behavior {
	return func(from types.ProcID, m wire.Message) []transport.Outgoing {
		k, ok := m.(wire.Keyed)
		if !ok {
			return b(from, m)
		}
		out := b(from, k.Inner)
		for i := range out {
			out[i].Msg = wire.Keyed{Key: k.Key, Inner: out[i].Msg}
		}
		return out
	}
}

// MaliciousReaderWriteback forges a reader write-back: it pushes the
// pair c into the servers with the three-round W pattern, exactly like
// a legitimate slow READ would — except c was never written. Section 5
// shows the atomic algorithm is vulnerable to this, and Appendix D's
// regular variant defeats it by having servers ignore reader W
// messages. quorum is the number of WAcks to await per round (use
// S−t); tsr is the forged read timestamp used as the tag.
func MaliciousReaderWriteback(ep transport.Endpoint, servers []types.ProcID, quorum int, tsr types.ReaderTS, c types.Tagged) error {
	for round := 1; round <= 3; round++ {
		for _, sid := range servers {
			if err := ep.Send(sid, wire.W{Round: round, Tag: int64(tsr), C: c}); err != nil {
				return err
			}
		}
		got := make(map[types.ProcID]bool, len(servers))
		for len(got) < quorum {
			env, ok := <-ep.Recv()
			if !ok {
				return transport.ErrClosed
			}
			if a, isAck := env.Msg.(wire.WAck); isAck && a.Round == round && a.Tag == int64(tsr) {
				got[env.From] = true
			}
		}
	}
	return nil
}
