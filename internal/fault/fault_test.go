package fault

import (
	"testing"

	"luckystore/internal/core"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func TestMuteNeverReplies(t *testing.T) {
	b := Mute()
	msgs := []wire.Message{
		wire.PW{TS: 1, PW: types.Tagged{TS: 1, Val: "v"}, W: types.Bottom()},
		wire.Read{TSR: 1, Round: 1},
		wire.W{Round: 2, Tag: 1, C: types.Bottom()},
	}
	for _, m := range msgs {
		if out := b.Step(types.WriterID(), m); out != nil {
			t.Errorf("Mute replied to %T: %v", m, out)
		}
	}
}

func TestForgeHighTSRepliesMatchTags(t *testing.T) {
	b := ForgeHighTS(999, "evil")
	out := b.Step(types.ReaderID(0), wire.Read{TSR: 7, Round: 2})
	if len(out) != 1 {
		t.Fatalf("got %d replies", len(out))
	}
	ack, ok := out[0].Msg.(wire.ReadAck)
	if !ok || ack.TSR != 7 || ack.Round != 2 {
		t.Fatalf("reply = %+v, want tag-matching ReadAck", out[0].Msg)
	}
	forged := types.Tagged{TS: 999, Val: "evil"}
	if ack.PW != forged || ack.W != forged || ack.VW != forged {
		t.Errorf("forged fields = %+v", ack)
	}
	if ack.Frozen.TSR != 7 || ack.Frozen.PW != forged {
		t.Errorf("forged frozen = %+v", ack.Frozen)
	}
	// Its acks must pass structural validation — that is the point.
	if err := wire.Validate(ack); err != nil {
		t.Errorf("forged ack rejected by Validate: %v", err)
	}
	// PW and W get matching acks too.
	pwOut := b.Step(types.WriterID(), wire.PW{TS: 3, PW: types.Tagged{TS: 3, Val: "x"}, W: types.Bottom()})
	if a := pwOut[0].Msg.(wire.PWAck); a.TS != 3 {
		t.Errorf("PW ack ts = %d", a.TS)
	}
	wOut := b.Step(types.WriterID(), wire.W{Round: 2, Tag: 3, C: types.Tagged{TS: 3, Val: "x"}})
	if a := wOut[0].Msg.(wire.WAck); a.Round != 2 || a.Tag != 3 {
		t.Errorf("W ack = %+v", a)
	}
}

func TestStaleBottomAlwaysReportsInitial(t *testing.T) {
	b := StaleBottom()
	out := b.Step(types.ReaderID(1), wire.Read{TSR: 2, Round: 1})
	ack := out[0].Msg.(wire.ReadAck)
	if !ack.PW.IsBottom() || !ack.W.IsBottom() || !ack.VW.IsBottom() {
		t.Errorf("StaleBottom leaked state: %+v", ack)
	}
}

func TestRandomLiarIsReproducible(t *testing.T) {
	b1, b2 := RandomLiar(42), RandomLiar(42)
	m := wire.Read{TSR: 1, Round: 1}
	o1 := b1.Step(types.ReaderID(0), m)[0].Msg.(wire.ReadAck)
	o2 := b2.Step(types.ReaderID(0), m)[0].Msg.(wire.ReadAck)
	if o1 != o2 {
		t.Errorf("same seed, different lies: %+v vs %+v", o1, o2)
	}
	if err := wire.Validate(o1); err != nil {
		t.Errorf("random lie not structurally valid: %v", err)
	}
}

func TestEquivocatorPerClientLies(t *testing.T) {
	a := types.Tagged{TS: 10, Val: "forA"}
	bPair := types.Tagged{TS: 20, Val: "forB"}
	fallback := types.Tagged{TS: 1, Val: "fb"}
	eq := Equivocator(map[types.ProcID]types.Tagged{
		types.ReaderID(0): a,
		types.ReaderID(1): bPair,
	}, fallback)
	m := wire.Read{TSR: 1, Round: 1}
	if got := eq.Step(types.ReaderID(0), m)[0].Msg.(wire.ReadAck); got.PW != a {
		t.Errorf("reader0 saw %v, want %v", got.PW, a)
	}
	if got := eq.Step(types.ReaderID(1), m)[0].Msg.(wire.ReadAck); got.PW != bPair {
		t.Errorf("reader1 saw %v, want %v", got.PW, bPair)
	}
	if got := eq.Step(types.ReaderID(2), m)[0].Msg.(wire.ReadAck); got.PW != fallback {
		t.Errorf("reader2 saw %v, want fallback %v", got.PW, fallback)
	}
}

func TestSplitBrainHonestAndLyingFaces(t *testing.T) {
	real := core.NewServer()
	// Load real state via the writer's PW.
	real.Step(types.WriterID(), wire.PW{TS: 4, PW: types.Tagged{TS: 4, Val: "v"}, W: types.Tagged{TS: 3, Val: "u"}})
	sb := NewSplitBrain(real, StaleBottom(), types.ReaderID(0))

	m := wire.Read{TSR: 1, Round: 1}
	honest := sb.Step(types.ReaderID(0), m)[0].Msg.(wire.ReadAck)
	if honest.PW != (types.Tagged{TS: 4, Val: "v"}) {
		t.Errorf("honest face = %+v, want real state", honest)
	}
	lying := sb.Step(types.ReaderID(1), m)[0].Msg.(wire.ReadAck)
	if !lying.PW.IsBottom() {
		t.Errorf("lying face = %+v, want bottom", lying)
	}
}
