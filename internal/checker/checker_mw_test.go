package checker

import (
	"testing"
	"time"

	"luckystore/internal/types"
)

// Multi-writer histories are hand-built with explicit times so writes
// can overlap — the sequential hb builder cannot express contention.

func at(sec int64) time.Time { return time.Unix(1000, 0).Add(time.Duration(sec) * time.Second) }

func mwWrite(w int, seq int64, wid int32, val string, inv, ret int64) Op {
	return Op{
		Client: types.WriterIDN(w), Kind: KindWrite, Key: "k",
		Value:  types.Tagged{TS: types.TS(seq), W: types.WID(wid), Val: types.Value(val)},
		Invoke: at(inv), Return: at(ret),
	}
}

func mwRead(r int, seq int64, wid int32, val string, inv, ret int64) Op {
	return Op{
		Client: types.ReaderID(r), Kind: KindRead, Key: "k",
		Value:  types.Tagged{TS: types.TS(seq), W: types.WID(wid), Val: types.Value(val)},
		Invoke: at(inv), Return: at(ret),
	}
}

// A well-behaved contended run: two writers' stamps interleave in query
// order, reads return the freshest completed pair. Atomic.
func TestMWInterleavedWritersAtomic(t *testing.T) {
	ops := []Op{
		mwWrite(0, 1, 0, "a", 0, 1),
		mwWrite(1, 2, 1, "b", 2, 3),
		mwRead(0, 2, 1, "b", 4, 5),
		mwWrite(0, 3, 0, "c", 6, 7),
		mwRead(1, 3, 0, "c", 8, 9),
	}
	assertClean(t, CheckAtomicityPerKey(ops))
}

// The satellite case: a stale read between two writers' overlapping
// writes. w1's write 〈2.1, b〉 is still in flight while r0 already
// returned it and r1 then returns the older 〈1.0, a〉 — a new-old
// inversion. Every value is legitimately current-or-concurrent, so the
// history is regular, but the read hierarchy is broken: the checker
// must reject it as non-atomic.
func TestMWStaleReadIsRegularNotAtomic(t *testing.T) {
	ops := []Op{
		mwWrite(0, 1, 0, "a", 0, 1),
		mwWrite(1, 2, 1, "b", 2, 20), // overlaps both reads
		mwRead(0, 2, 1, "b", 3, 4),
		mwRead(1, 1, 0, "a", 5, 6), // stale: a preceding read saw 2.1
	}
	assertClean(t, CheckRegularityPerKey(ops))
	assertViolated(t, CheckAtomicityPerKey(ops), "read-hierarchy")
}

// The read hierarchy uses the full stamp order: same sequence number,
// writer tie-break. Returning 2.0 after a preceding read returned 2.1
// is an inversion even though the sequence numbers are equal.
func TestMWReadHierarchyTieBreaksOnWriter(t *testing.T) {
	ops := []Op{
		mwWrite(0, 2, 0, "x", 0, 30), // both writes in flight throughout
		mwWrite(1, 2, 1, "y", 1, 31),
		mwRead(0, 2, 1, "y", 2, 3),
		mwRead(1, 2, 0, "x", 4, 5),
	}
	assertViolated(t, CheckAtomicityPerKey(ops), "read-hierarchy")
}

// A writer that binds a stamp below an already-completed write lost an
// update: write precedence.
func TestMWWritePrecedenceViolation(t *testing.T) {
	ops := []Op{
		mwWrite(0, 2, 0, "a", 0, 1),
		mwWrite(1, 1, 1, "b", 2, 3), // bound 1.1 after 2 completed
	}
	assertViolated(t, CheckAtomicityPerKey(ops), "write-precedence")

	// Concurrent writes may order either way — no violation.
	concurrent := []Op{
		mwWrite(0, 2, 0, "a", 0, 10),
		mwWrite(1, 1, 1, "b", 2, 3),
	}
	assertClean(t, CheckAtomicityPerKey(concurrent))
}

// Two writes binding one stamp to different values violate stamp
// uniqueness; replaying the identical pair (the handoff path) is legal.
func TestMWStampUniqueness(t *testing.T) {
	ops := []Op{
		mwWrite(1, 3, 1, "x", 0, 1),
		mwWrite(0, 3, 1, "y", 2, 3), // same stamp 3.1, different value
	}
	assertViolated(t, CheckAtomicityPerKey(ops), "stamp-uniqueness")

	replay := []Op{
		mwWrite(1, 3, 1, "x", 0, 1),
		mwWrite(0, 3, 1, "x", 2, 3), // WriteAt handoff replays verbatim
		mwRead(0, 3, 1, "x", 4, 5),
	}
	assertClean(t, CheckAtomicityPerKey(replay))
}

// Stamps with equal sequence numbers from different writers are
// distinct values in the no-creation map: a read returning 〈2.1, b〉
// when only 〈2.0, a〉 was written is a forgery.
func TestMWNoCreationDistinguishesWriters(t *testing.T) {
	ops := []Op{
		mwWrite(0, 2, 0, "a", 0, 1),
		mwRead(0, 2, 1, "b", 2, 3),
	}
	assertViolated(t, CheckAtomicityPerKey(ops), "no-creation")
}
