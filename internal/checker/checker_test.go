package checker

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"luckystore/internal/types"
)

// hb ("history builder") makes sequential timelines readable: each call
// advances the clock by one tick.
type hb struct {
	now time.Time
	ops []Op
}

func newHB() *hb { return &hb{now: time.Unix(1000, 0)} }

func (b *hb) tick() time.Time {
	b.now = b.now.Add(time.Millisecond)
	return b.now
}

// write appends a complete write of 〈ts,val〉 spanning two ticks.
func (b *hb) write(ts int64, val string) *hb {
	inv := b.tick()
	ret := b.tick()
	b.ops = append(b.ops, Op{
		Client: types.WriterID(), Kind: KindWrite,
		Value:  types.Tagged{TS: types.TS(ts), Val: types.Value(val)},
		Invoke: inv, Return: ret,
	})
	return b
}

// crashWrite appends a write that never completed.
func (b *hb) crashWrite(ts int64, val string) *hb {
	inv := b.tick()
	b.ops = append(b.ops, Op{
		Client: types.WriterID(), Kind: KindWrite,
		Value:  types.Tagged{TS: types.TS(ts), Val: types.Value(val)},
		Invoke: inv, Return: inv, Err: errors.New("crashed"),
	})
	return b
}

// read appends a complete read by client r returning 〈ts,val〉.
func (b *hb) read(r int, ts int64, val string) *hb {
	inv := b.tick()
	ret := b.tick()
	v := types.Tagged{TS: types.TS(ts), Val: types.Value(val)}
	if ts == 0 {
		v = types.Bottom()
	}
	b.ops = append(b.ops, Op{
		Client: types.ReaderID(r), Kind: KindRead,
		Value: v, Invoke: inv, Return: ret,
	})
	return b
}

func assertClean(t *testing.T, vs []Violation) {
	t.Helper()
	for _, v := range vs {
		t.Errorf("unexpected violation: %v", v)
	}
}

func assertViolated(t *testing.T, vs []Violation, property string) {
	t.Helper()
	for _, v := range vs {
		if v.Property == property {
			return
		}
	}
	t.Errorf("expected a %q violation, got %v", property, vs)
}

func TestSequentialHistoryIsAtomic(t *testing.T) {
	b := newHB().write(1, "a").read(0, 1, "a").write(2, "b").read(1, 2, "b").read(0, 2, "b")
	assertClean(t, CheckAtomicity(b.ops))
	assertClean(t, CheckRegularity(b.ops))
	assertClean(t, CheckSafeness(b.ops))
}

func TestFreshRegisterBottomReadIsAtomic(t *testing.T) {
	b := newHB().read(0, 0, "").write(1, "a").read(0, 1, "a")
	assertClean(t, CheckAtomicity(b.ops))
}

func TestNoCreationViolation(t *testing.T) {
	b := newHB().write(1, "a").read(0, 7, "phantom")
	assertViolated(t, CheckAtomicity(b.ops), "no-creation")
	assertViolated(t, CheckRegularity(b.ops), "no-creation")
	assertViolated(t, CheckSafeness(b.ops), "no-creation")
}

func TestNoCreationWrongValueSameTS(t *testing.T) {
	b := newHB().write(3, "genuine").read(0, 3, "forged")
	assertViolated(t, CheckAtomicity(b.ops), "no-creation")
}

func TestStaleReadViolation(t *testing.T) {
	b := newHB().write(1, "a").write(2, "b").read(0, 1, "a")
	assertViolated(t, CheckAtomicity(b.ops), "read-sees-write")
	assertViolated(t, CheckRegularity(b.ops), "read-sees-write")
	assertViolated(t, CheckSafeness(b.ops), "safeness")
}

func TestReadHierarchyViolation(t *testing.T) {
	// Both reads are legal individually against writes (read of 1 is
	// concurrent with write 2)… construct overlap manually.
	b := newHB()
	b.write(1, "a")
	wInv := b.tick()
	// write 2 spans a long interval overlapping both reads.
	wRet := wInv.Add(10 * time.Millisecond)
	b.ops = append(b.ops, Op{
		Client: types.WriterID(), Kind: KindWrite,
		Value:  types.Tagged{TS: 2, Val: "b"},
		Invoke: wInv, Return: wRet,
	})
	r1Inv := wInv.Add(time.Millisecond)
	r1Ret := wInv.Add(2 * time.Millisecond)
	r2Inv := wInv.Add(3 * time.Millisecond)
	r2Ret := wInv.Add(4 * time.Millisecond)
	// rd1 returns the new value, rd2 (succeeding rd1) the old: the
	// classic new-old inversion — regular but not atomic.
	b.ops = append(b.ops,
		Op{Client: types.ReaderID(0), Kind: KindRead, Value: types.Tagged{TS: 2, Val: "b"}, Invoke: r1Inv, Return: r1Ret},
		Op{Client: types.ReaderID(1), Kind: KindRead, Value: types.Tagged{TS: 1, Val: "a"}, Invoke: r2Inv, Return: r2Ret},
	)
	assertViolated(t, CheckAtomicity(b.ops), "read-hierarchy")
	assertClean(t, CheckRegularity(b.ops))
}

func TestWriteFromFutureViolation(t *testing.T) {
	// The read completes before wr_2 is even invoked, yet returns it.
	b := newHB()
	b.write(1, "a")
	rInv := b.tick()
	rRet := b.tick()
	b.ops = append(b.ops, Op{
		Client: types.ReaderID(0), Kind: KindRead,
		Value:  types.Tagged{TS: 2, Val: "b"},
		Invoke: rInv, Return: rRet,
	})
	b.write(2, "b")
	assertViolated(t, CheckAtomicity(b.ops), "write-from-future")
}

func TestConcurrentReadMayReturnEitherValue(t *testing.T) {
	// A read overlapping wr_2 may return 〈1〉 or 〈2〉.
	for _, retTS := range []int64{1, 2} {
		b := newHB().write(1, "a")
		wInv := b.tick()
		wRet := wInv.Add(5 * time.Millisecond)
		b.ops = append(b.ops, Op{
			Client: types.WriterID(), Kind: KindWrite,
			Value:  types.Tagged{TS: 2, Val: "b"},
			Invoke: wInv, Return: wRet,
		})
		val := "a"
		if retTS == 2 {
			val = "b"
		}
		b.ops = append(b.ops, Op{
			Client: types.ReaderID(0), Kind: KindRead,
			Value:  types.Tagged{TS: types.TS(retTS), Val: types.Value(val)},
			Invoke: wInv.Add(time.Millisecond), Return: wInv.Add(2 * time.Millisecond),
		})
		assertClean(t, CheckAtomicity(b.ops))
	}
}

func TestCrashedWriteValueReadableByConcurrentReads(t *testing.T) {
	// The writer crashes during wr_2; later reads returning 〈2〉 are
	// legal (wr_2 is concurrent with everything after it), and reads
	// returning 〈1〉 before any read returned 〈2〉 are legal too.
	b := newHB().write(1, "a").crashWrite(2, "b").read(0, 2, "b").read(1, 2, "b")
	assertClean(t, CheckAtomicity(b.ops))

	b2 := newHB().write(1, "a").crashWrite(2, "b").read(0, 1, "a").read(1, 2, "b")
	assertClean(t, CheckAtomicity(b2.ops))

	// But the hierarchy still applies: once a read returned 〈2〉, a
	// later read may not return 〈1〉.
	b3 := newHB().write(1, "a").crashWrite(2, "b").read(0, 2, "b").read(1, 1, "a")
	assertViolated(t, CheckAtomicity(b3.ops), "read-hierarchy")
}

func TestSafenessIgnoresContendedReads(t *testing.T) {
	// A read concurrent with a write may return anything written.
	b := newHB().write(1, "a")
	wInv := b.tick()
	wRet := wInv.Add(5 * time.Millisecond)
	b.ops = append(b.ops, Op{
		Client: types.WriterID(), Kind: KindWrite,
		Value: types.Tagged{TS: 2, Val: "b"}, Invoke: wInv, Return: wRet,
	})
	b.ops = append(b.ops, Op{
		Client: types.ReaderID(0), Kind: KindRead,
		Value:  types.Tagged{TS: 1, Val: "a"},
		Invoke: wInv.Add(time.Millisecond), Return: wInv.Add(2 * time.Millisecond),
	})
	assertClean(t, CheckSafeness(b.ops))
	// After the writer crashes, every later read is contended (ghost).
	b.crashWrite(3, "c")
	b.read(0, 1, "a")
	assertClean(t, CheckSafeness(b.ops))
}

func TestFailedReadsAreIgnored(t *testing.T) {
	b := newHB().write(1, "a")
	inv := b.tick()
	b.ops = append(b.ops, Op{
		Client: types.ReaderID(0), Kind: KindRead,
		Value: types.Tagged{TS: 99, Val: "junk"}, Invoke: inv, Return: inv,
		Err: errors.New("timeout"),
	})
	assertClean(t, CheckAtomicity(b.ops))
}

func TestRecorderConcurrentAdd(t *testing.T) {
	r := NewRecorder()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				r.Add(Op{Kind: KindRead, Client: types.ReaderID(0)})
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	ops := r.Ops()
	if len(ops) != 800 {
		t.Fatalf("recorded %d ops, want 800", len(ops))
	}
	seen := make(map[int]bool, len(ops))
	for _, op := range ops {
		if seen[op.ID] {
			t.Fatalf("duplicate op ID %d", op.ID)
		}
		seen[op.ID] = true
	}
}

// Property test: random sequential (non-overlapping) histories that
// follow register semantics are always atomic; corrupting one read to
// a stale value is always caught.
func TestRandomSequentialHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := newHB()
		var lastTS int64
		nOps := 5 + rng.Intn(20)
		readIdx := []int{}
		for i := 0; i < nOps; i++ {
			if rng.Intn(2) == 0 {
				lastTS++
				b.write(lastTS, "v")
			} else {
				b.read(rng.Intn(3), lastTS, "v")
				if lastTS > 0 {
					readIdx = append(readIdx, len(b.ops)-1)
				}
			}
		}
		if vs := CheckAtomicity(b.ops); len(vs) != 0 {
			t.Fatalf("trial %d: clean history flagged: %v", trial, vs)
		}
		if len(readIdx) == 0 {
			continue
		}
		// Corrupt one read to a strictly newer, never-written value.
		i := readIdx[rng.Intn(len(readIdx))]
		b.ops[i].Value = types.Tagged{TS: types.TS(lastTS + 100), Val: "phantom"}
		if vs := CheckAtomicity(b.ops); len(vs) == 0 {
			t.Fatalf("trial %d: corrupted history passed", trial)
		}
	}
}
