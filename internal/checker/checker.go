// Package checker records operation histories and verifies them against
// the paper's correctness definitions (Section 2.2):
//
//   - atomicity: the register properties — (1) no-creation, (2) reads
//     see every preceding complete write, (3) a returned value's write
//     precedes or is concurrent with the read, (4) the read hierarchy
//     (a read never returns an older value than a preceding read), and,
//     with multiple writers, (5) write precedence (the stamp order
//     extends the real-time order of writes) and (6) stamp uniqueness;
//   - regularity (Appendix D): properties (1)–(3);
//   - safeness (Appendix B): a contention-free read that succeeds wr_k
//     returns val_l with l ≥ k.
//
// Stamp-based protocols make these definitions directly checkable
// without an NP-hard linearizability search: every write binds exactly
// one totally ordered 〈seq, writer〉 stamp, so the stamp of a returned
// pair identifies the write that bound it, and comparing stamps
// compares positions in the linearization. In the single-writer special
// case the stamps are simply 1, 2, 3, … in invocation order.
package checker

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"luckystore/internal/types"
)

// OpKind distinguishes writes from reads.
type OpKind int

// Operation kinds; values start at 1 so the zero value is invalid.
const (
	KindWrite OpKind = iota + 1
	KindRead
)

func (k OpKind) String() string {
	switch k {
	case KindWrite:
		return "WRITE"
	case KindRead:
		return "READ"
	default:
		return fmt.Sprintf("invalid-op-kind(%d)", int(k))
	}
}

// Op is one completed (or failed) operation as observed at its client.
type Op struct {
	ID     int
	Client types.ProcID
	Kind   OpKind
	// Key names the register the operation targeted in a multi-register
	// (KV) history; single-register histories leave it empty. Checks
	// apply per key: atomicity is a per-register property that composes
	// across keys.
	Key string
	// Value is the written pair (timestamp assigned by the writer) or
	// the returned pair.
	Value  types.Tagged
	Invoke time.Time
	Return time.Time
	// Err records an operation failure; failed operations are excluded
	// from precedence reasoning except as concurrency sources.
	Err error
	// Rounds is the operation's communication round-trip count.
	Rounds int
	// Fast mirrors Rounds == 1, recorded explicitly for table building.
	Fast bool
}

// precedes reports whether o completed before p was invoked (the
// paper's "op1 precedes op2").
func (o Op) precedes(p Op) bool { return o.Err == nil && o.Return.Before(p.Invoke) }

// Recorder accumulates operations from concurrent clients.
type Recorder struct {
	mu  sync.Mutex
	ops []Op
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add records one operation, assigning its ID. It is safe for
// concurrent use.
func (r *Recorder) Add(op Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op.ID = len(r.ops)
	r.ops = append(r.ops, op)
}

// Ops returns a copy of the recorded history.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Violation describes one broken property.
type Violation struct {
	Property string
	Detail   string
	Ops      []int // IDs of the offending operations
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violated: %s (ops %v)", v.Property, v.Detail, v.Ops)
}

// CheckAtomicity verifies the atomicity properties and returns every
// violation found (empty means the history is atomic). Multi-writer
// histories additionally get the write-precedence and stamp-uniqueness
// checks; both are vacuous for a single correct writer.
func CheckAtomicity(ops []Op) []Violation {
	h := buildHistory(ops)
	var vs []Violation
	vs = append(vs, h.checkStampUniqueness()...)
	vs = append(vs, h.checkNoCreation()...)
	vs = append(vs, h.checkReadsSeeWrites()...)
	vs = append(vs, h.checkWriteNotFromFuture()...)
	vs = append(vs, h.checkReadHierarchy()...)
	vs = append(vs, h.checkWriteOrder()...)
	return vs
}

// CheckRegularity verifies properties (1)–(3): like atomicity but
// without the read hierarchy, so new-old inversions between reads are
// permitted.
func CheckRegularity(ops []Op) []Violation {
	h := buildHistory(ops)
	var vs []Violation
	vs = append(vs, h.checkNoCreation()...)
	vs = append(vs, h.checkReadsSeeWrites()...)
	vs = append(vs, h.checkWriteNotFromFuture()...)
	return vs
}

// CheckSafeness verifies the Appendix B safe-storage property: every
// contention-free read that succeeds wr_k returns val_l with l ≥ k.
// Reads concurrent with any write may return anything that was written
// (no-creation still applies).
func CheckSafeness(ops []Op) []Violation {
	h := buildHistory(ops)
	var vs []Violation
	vs = append(vs, h.checkNoCreation()...)
	for _, rd := range h.reads {
		if h.contended(rd) {
			continue
		}
		for _, wr := range h.writes {
			if wr.precedes(rd) && rd.Value.Less(wr.Value) {
				vs = append(vs, Violation{
					Property: "safeness",
					Detail: fmt.Sprintf("contention-free read returned 〈%v〉 after write 〈%v〉 completed",
						rd.Value.Stamp(), wr.Value.Stamp()),
					Ops: []int{wr.ID, rd.ID},
				})
			}
		}
	}
	return vs
}

// ByKey splits a history into per-key histories, preserving operation
// order within each key.
func ByKey(ops []Op) map[string][]Op {
	out := make(map[string][]Op)
	for _, op := range ops {
		out[op.Key] = append(out[op.Key], op)
	}
	return out
}

// CheckAtomicityPerKey verifies the atomicity properties independently
// for every key of a multi-register history and returns all violations,
// each prefixed with its key. Atomic registers compose: the combined
// history is linearizable iff every per-key history is.
func CheckAtomicityPerKey(ops []Op) []Violation {
	return perKey(ops, CheckAtomicity)
}

// CheckRegularityPerKey is CheckRegularity applied per key.
func CheckRegularityPerKey(ops []Op) []Violation {
	return perKey(ops, CheckRegularity)
}

func perKey(ops []Op, check func([]Op) []Violation) []Violation {
	var vs []Violation
	keys := make([]string, 0, 8)
	byKey := ByKey(ops)
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic violation order
	for _, k := range keys {
		for _, v := range check(byKey[k]) {
			if k != "" {
				v.Detail = fmt.Sprintf("key %q: %s", k, v.Detail)
			}
			vs = append(vs, v)
		}
	}
	return vs
}

// history is the indexed form of an operation list.
type history struct {
	writes []Op // completed or failed writes, invocation order
	reads  []Op // completed reads only
	// written maps a stamp to the write that (or whose attempt) bound
	// it. Failed/crashed writes still bind their stamp: their value may
	// legitimately be returned by concurrent reads.
	written map[types.Stamp]Op
}

func buildHistory(ops []Op) *history {
	h := &history{written: make(map[types.Stamp]Op)}
	for _, op := range ops {
		switch op.Kind {
		case KindWrite:
			h.writes = append(h.writes, op)
			h.written[op.Value.Stamp()] = op
		case KindRead:
			if op.Err == nil {
				h.reads = append(h.reads, op)
			}
		}
	}
	sort.Slice(h.writes, func(i, j int) bool { return h.writes[i].Invoke.Before(h.writes[j].Invoke) })
	sort.Slice(h.reads, func(i, j int) bool { return h.reads[i].Invoke.Before(h.reads[j].Invoke) })
	return h
}

// checkNoCreation: a read returns ⊥ or a pair some write bound
// (property 1 / Lemma 1).
func (h *history) checkNoCreation() []Violation {
	var vs []Violation
	for _, rd := range h.reads {
		if rd.Value.IsBottom() {
			continue
		}
		wr, ok := h.written[rd.Value.Stamp()]
		if !ok {
			vs = append(vs, Violation{
				Property: "no-creation",
				Detail:   fmt.Sprintf("read returned %v, a stamp no write bound", rd.Value),
				Ops:      []int{rd.ID},
			})
			continue
		}
		if wr.Value != rd.Value {
			vs = append(vs, Violation{
				Property: "no-creation",
				Detail:   fmt.Sprintf("read returned %v but wr_%v wrote %v", rd.Value, wr.Value.Stamp(), wr.Value),
				Ops:      []int{wr.ID, rd.ID},
			})
		}
	}
	return vs
}

// checkReadsSeeWrites: a read succeeding complete wr_k returns l ≥ k
// (property 2 / Lemma 7).
func (h *history) checkReadsSeeWrites() []Violation {
	var vs []Violation
	for _, rd := range h.reads {
		for _, wr := range h.writes {
			if wr.precedes(rd) && rd.Value.Less(wr.Value) {
				vs = append(vs, Violation{
					Property: "read-sees-write",
					Detail: fmt.Sprintf("read returned 〈%v〉 although wr_%v completed before it",
						rd.Value.Stamp(), wr.Value.Stamp()),
					Ops: []int{wr.ID, rd.ID},
				})
			}
		}
	}
	return vs
}

// checkWriteNotFromFuture: if a read returns val_k, then wr_k precedes
// or is concurrent with the read — wr_k was invoked before the read
// returned (property 3).
func (h *history) checkWriteNotFromFuture() []Violation {
	var vs []Violation
	for _, rd := range h.reads {
		if rd.Value.IsBottom() {
			continue
		}
		wr, ok := h.written[rd.Value.Stamp()]
		if !ok {
			continue // flagged by no-creation
		}
		if rd.Return.Before(wr.Invoke) {
			vs = append(vs, Violation{
				Property: "write-from-future",
				Detail: fmt.Sprintf("read returned 〈%v〉 before wr_%v was invoked",
					rd.Value.Stamp(), wr.Value.Stamp()),
				Ops: []int{wr.ID, rd.ID},
			})
		}
	}
	return vs
}

// checkReadHierarchy: if rd1 precedes rd2, then rd2 returns a value at
// least as new (property 4 / Lemma 8).
func (h *history) checkReadHierarchy() []Violation {
	var vs []Violation
	for i, rd1 := range h.reads {
		for _, rd2 := range h.reads[i+1:] {
			if rd1.precedes(rd2) && rd2.Value.Less(rd1.Value) {
				vs = append(vs, Violation{
					Property: "read-hierarchy",
					Detail: fmt.Sprintf("read returned 〈%v〉 after a preceding read returned 〈%v〉",
						rd2.Value.Stamp(), rd1.Value.Stamp()),
					Ops: []int{rd1.ID, rd2.ID},
				})
			}
		}
	}
	return vs
}

// checkWriteOrder: the stamp order extends write precedence — if wr_a
// completes before wr_b is invoked, wr_b binds a strictly higher stamp
// (property 5). With one correct writer this is its monotone sequence;
// with contending writers a violation means a writer missed a completed
// write during its stamp query, i.e. a lost update. Re-binding the
// identical 〈stamp, value〉 pair is exempt — the rebalance handoff
// (WriteAt) replays a migrated pair verbatim, which installs no new
// write in the stamp order.
func (h *history) checkWriteOrder() []Violation {
	var vs []Violation
	for i, wa := range h.writes {
		for _, wb := range h.writes[i+1:] {
			if wa.precedes(wb) && wb.Err == nil && wb.Value != wa.Value && !wa.Value.Stamp().Less(wb.Value.Stamp()) {
				vs = append(vs, Violation{
					Property: "write-precedence",
					Detail: fmt.Sprintf("write bound 〈%v〉 although a write stamped 〈%v〉 completed before it",
						wb.Value.Stamp(), wa.Value.Stamp()),
					Ops: []int{wa.ID, wb.ID},
				})
			}
		}
	}
	return vs
}

// checkStampUniqueness: no two writes bind the same stamp to different
// values (property 6). Re-binding the same 〈stamp, value〉 pair is legal:
// the rebalance handoff (WriteAt) replays a migrated pair verbatim.
// Failed writes are skipped: their stamp is unspecified (recorded as
// zero), so two distinct crashed writes are not a shared binding.
func (h *history) checkStampUniqueness() []Violation {
	var vs []Violation
	seen := make(map[types.Stamp]Op, len(h.writes))
	for _, wr := range h.writes {
		if wr.Err != nil {
			continue
		}
		st := wr.Value.Stamp()
		prev, ok := seen[st]
		if ok && prev.Value != wr.Value {
			vs = append(vs, Violation{
				Property: "stamp-uniqueness",
				Detail: fmt.Sprintf("stamp 〈%v〉 bound to both %q and %q",
					st, prev.Value.Val, wr.Value.Val),
				Ops: []int{prev.ID, wr.ID},
			})
			continue
		}
		seen[st] = wr
	}
	return vs
}

// contended reports whether rd overlaps any write in time (including
// failed writes: an incomplete write whose client crashed keeps every
// later read "under contention with the ghost", Section 5).
func (h *history) contended(rd Op) bool {
	for _, wr := range h.writes {
		if wr.Err != nil {
			// A crashed write never completes: it is concurrent with
			// every operation invoked after it started.
			if wr.Invoke.Before(rd.Return) {
				return true
			}
			continue
		}
		if wr.Invoke.Before(rd.Return) && rd.Invoke.Before(wr.Return) {
			return true
		}
	}
	return false
}
